(** The litmus matrix: shapes × orderings × seeds × optional fault
    plans, run on both kernels.  Reports are deterministic — the same
    config produces byte-identical text and JSON on every run, which is
    what lets the serve job replay a CLI invocation bit-identically. *)

open Spec

type config = {
  cf_shapes : Shape.t list;
  cf_orderings : Sim.Memord.policy list;
  cf_seeds : int;  (** seeds 1..N per weak ordering; sc runs once *)
  cf_faults : bool;  (** also run the canned per-shape fault plans *)
  cf_backend : Sim.Runtime.backend option;
      (** engine-kernel leaf machine ([`Reference] always tree-walks);
          [None] = the process default *)
}

val default_config : unit -> config
(** All shapes, the three policies ([sc], [per-port-fifo],
    [relaxed]), 4 seeds, no faults. *)

type entry = {
  en_shape : string;
  en_ordering : string;
  en_seed : int;
  en_fault : string option;  (** {!Faults.Fault.describe} of the plan *)
  en_verdict : Classify.verdict;
  en_observed : (string * string) list;
  en_kernels_agree : bool;
      (** Engine and Reference produced the same verdict and vector *)
  en_diverted : int;
  en_reordered : int;
  en_deltas : int;
}

type report = {
  rp_entries : entry list;
  rp_sc_consistent : int;
  rp_weak_allowed : int;
  rp_forbidden : int;
  rp_deadlock : int;
  rp_corruption : int;
  rp_kernel_mismatches : int;
}

val fault_plans : Shape.t -> Faults.Fault.spec list list
(** The canned plans [cf_faults] enables: an out-of-domain bit flip on
    an observed register and a dropped first handshake edge. *)

val run : config -> report

val race003_code : string

val race_diagnostics : report -> Diagnostic.t list
(** [RACE003] for every shape whose fault-free runs are sc-consistent
    under [sc] but weak-allowed under some weak ordering — a racy
    access whose outcome changes with port ordering. *)

val to_text : report -> string
val to_json : report -> string
