(** Classifying a simulation result against a shape's enumerated
    allowed-outcome sets. *)

open Spec

type verdict =
  | Sc_consistent  (** the delta-cycle sc baseline could produce it *)
  | Weak_allowed  (** only a weak port ordering can produce it *)
  | Forbidden  (** in-domain but in neither allowed set *)
  | Deadlock  (** the run did not complete (deadlock or budget) *)
  | Corruption  (** an observed value left the shape's domain *)

val to_string : verdict -> string
(** The stable report spelling: ["sc-consistent"], ["weak-allowed"],
    ["forbidden"], ["deadlock"], ["corruption"]. *)

val all : verdict list

val observed :
  Shape.t -> Sim.Engine.result -> (string * Ast.value option) list
(** The observed variables' final values, in [sh_observed] order;
    [None] when a variable is missing from the final values (classified
    as corruption). *)

val classify : Shape.t -> Sim.Engine.result -> verdict
