(** The litmus shapes: small concurrent-access specifications with an
    enumerated allowed-outcome set, each annotated with the memory-port
    ownership of its signals.

    The four classic shapes (store buffering, message passing, load
    buffering, coherence) are written directly against signals standing
    in for memory locations; the [memory] shapes are auto-instantiated
    against {!Core.Memory_gen} output — a real two-port Model3 memory
    with two bus masters — so the harness also exercises the generated
    handshake machinery, hardened and not.

    Outcome sets are enumerated against the delta-cycle baseline: under
    [sc] the kernels commit simultaneously-scheduled updates in one
    delta, which is {e stronger} than interleaving sequential
    consistency — [sh_allowed_sc] is what the sequentially-consistent
    kernel itself can produce, and [sh_allowed_weak] the additional
    vectors a weak port ordering may legally expose.  Anything else in
    the domain is forbidden; values outside the domain are corruption
    (only reachable under fault injection). *)

open Spec
open Core

type t = {
  sh_name : string;
  sh_descr : string;
  sh_program : Ast.program;
  sh_ports : (string * string) list;  (** signal name -> owning port *)
  sh_observed : string list;  (** variables read from the final values *)
  sh_domain : (string * Ast.value list) list;
      (** per observed variable: the values any legal run may leave *)
  sh_allowed_sc : Ast.value list list;
  sh_allowed_weak : Ast.value list list;
      (** additional vectors allowed under weak orderings *)
}

let port_of shape name = List.assoc_opt name shape.sh_ports

let vi n = Ast.VInt n

(* --- store buffering (SB) --------------------------------------------- *)

(* T0: x := 1; r0 := y   |   T1: y := 1; r1 := x
   Each thread waits for its own write to become visible before reading
   the other location — under the delta-cycle sc baseline both writes
   commit in the same delta, so (1,1) is the only sc outcome.  A weak
   port ordering releases the two ports one at a time, so the woken
   thread reads the other location before its release: the classic
   (0,1) / (1,0) store-buffering outcomes. *)
let store_buffering () =
  let open Builder in
  let t0 =
    Behavior.leaf "T0"
      [ "x" <== Expr.int 1;
        wait_until Expr.(ref_ "x" = int 1);
        "r0" <-- Expr.ref_ "y" ]
  in
  let t1 =
    Behavior.leaf "T1"
      [ "y" <== Expr.int 1;
        wait_until Expr.(ref_ "y" = int 1);
        "r1" <-- Expr.ref_ "x" ]
  in
  {
    sh_name = "sb";
    sh_descr = "store buffering: two threads store, then load the other port";
    sh_program =
      (* Observed registers are program-level: leaf-local frames are
         released when the tree completes, program vars stay in
         [r_final]. *)
      Program.make "litmus_sb"
        ~vars:[ int_var ~init:0 "r0"; int_var ~init:0 "r1" ]
        ~signals:[ int_signal ~init:0 "x"; int_signal ~init:0 "y" ]
        (Behavior.par "TOP" [ t0; t1 ]);
    sh_ports = [ ("x", "px"); ("y", "py") ];
    sh_observed = [ "r0"; "r1" ];
    sh_domain = [ ("r0", [ vi 0; vi 1 ]); ("r1", [ vi 0; vi 1 ]) ];
    sh_allowed_sc = [ [ vi 1; vi 1 ] ];
    sh_allowed_weak = [ [ vi 0; vi 1 ]; [ vi 1; vi 0 ]; [ vi 0; vi 0 ] ];
  }

(* --- message passing (MP) ---------------------------------------------- *)

(* T0: data := 1; flag := 1   |   T1: await flag; r := data
   Producer issues both updates in one delta — one atomic group on one
   port.  [sc] and [per-port-fifo] deliver the group whole, so the
   consumer always reads the payload; [relaxed] may tear the group and
   release the flag first, exposing r = 0. *)
let message_passing () =
  let open Builder in
  let t0 =
    Behavior.leaf "T0" [ "data" <== Expr.int 1; "flag" <== Expr.int 1 ]
  in
  let t1 =
    Behavior.leaf "T1"
      [ wait_until Expr.(ref_ "flag" = int 1); "r" <-- Expr.ref_ "data" ]
  in
  {
    sh_name = "mp";
    sh_descr = "message passing: payload and flag on one port";
    sh_program =
      Program.make "litmus_mp"
        ~vars:[ int_var ~init:0 "r" ]
        ~signals:[ int_signal ~init:0 "data"; int_signal ~init:0 "flag" ]
        (Behavior.par "TOP" [ t0; t1 ]);
    sh_ports = [ ("data", "p"); ("flag", "p") ];
    sh_observed = [ "r" ];
    sh_domain = [ ("r", [ vi 0; vi 1 ]) ];
    sh_allowed_sc = [ [ vi 1 ] ];
    sh_allowed_weak = [ [ vi 0 ] ];
  }

(* --- load buffering (LB) ------------------------------------------------ *)

(* T0: r0 := y; x := 1   |   T1: r1 := x; y := 1
   Loads precede the stores in program order and the kernels never
   speculate, so (0,0) is the only outcome under every ordering; any
   (_,1)/(1,_) vector would need a load to see a store that its own
   thread's store enabled — forbidden. *)
let load_buffering () =
  let open Builder in
  let t0 =
    Behavior.leaf "T0" [ "r0" <-- Expr.ref_ "y"; "x" <== Expr.int 1 ]
  in
  let t1 =
    Behavior.leaf "T1" [ "r1" <-- Expr.ref_ "x"; "y" <== Expr.int 1 ]
  in
  {
    sh_name = "lb";
    sh_descr = "load buffering: loads must not see unissued stores";
    sh_program =
      Program.make "litmus_lb"
        ~vars:[ int_var ~init:0 "r0"; int_var ~init:0 "r1" ]
        ~signals:[ int_signal ~init:0 "x"; int_signal ~init:0 "y" ]
        (Behavior.par "TOP" [ t0; t1 ]);
    sh_ports = [ ("x", "px"); ("y", "py") ];
    sh_observed = [ "r0"; "r1" ];
    sh_domain = [ ("r0", [ vi 0; vi 1 ]); ("r1", [ vi 0; vi 1 ]) ];
    sh_allowed_sc = [ [ vi 0; vi 0 ] ];
    sh_allowed_weak = [];
  }

(* --- coherence (CO) ----------------------------------------------------- *)

(* T0: x := 1; x := 2   |   T1: a := x (once x >= 1); b := x (once x = 2)
   Same-location order is preserved under every policy (a release never
   overtakes an earlier same-signal entry), so the observer must see
   1 then 2 — (1,2) is the only legal vector, weak or not.  Anything
   else means the port FIFO let a location's updates pass each other. *)
let coherence () =
  let open Builder in
  let t0 =
    Behavior.leaf "T0"
      [ "x" <== Expr.int 1;
        wait_until Expr.(ref_ "x" = int 1);
        "x" <== Expr.int 2 ]
  in
  let t1 =
    Behavior.leaf "T1"
      [ wait_until Expr.(ref_ "x" >= int 1);
        "a" <-- Expr.ref_ "x";
        wait_until Expr.(ref_ "x" = int 2);
        "b" <-- Expr.ref_ "x" ]
  in
  {
    sh_name = "co";
    sh_descr = "coherence: same-location updates stay ordered";
    sh_program =
      Program.make "litmus_co"
        ~vars:[ int_var ~init:0 "a"; int_var ~init:0 "b" ]
        ~signals:[ int_signal ~init:0 "x" ]
        (Behavior.par "TOP" [ t0; t1 ]);
    sh_ports = [ ("x", "p") ];
    sh_observed = [ "a"; "b" ];
    sh_domain = [ ("a", [ vi 0; vi 1; vi 2 ]); ("b", [ vi 0; vi 1; vi 2 ]) ];
    sh_allowed_sc = [ [ vi 1; vi 2 ] ];
    sh_allowed_weak = [];
  }

(* --- Model3 two-port memory, via Core.Memory_gen ----------------------- *)

(* Two masters on their own buses of a shared two-port memory: each
   writes its tag to the one mapped location, then reads it back.
   Under sc and per-port-fifo every handshake is delivered whole, so
   each master reads a really-stored tag (the races between the ports
   stay sc-consistent); under relaxed a handshake can be torn — a port
   may raise [start] before the request lines, or complete [done]
   before the data line — and masters observe stale values.  Hardened
   memories survive this: the watchdog protocol reads its own lines
   back before starting and verifies data before done, so the TMR
   memory keeps its sc classification under every ordering. *)
let memory ~harden () =
  let naming = Naming.of_names [] in
  let hcfg =
    if harden then
      Some
        { Protocol.hd_tick = "wdg_tick"; hd_patience = 32; hd_retries = 6 }
    else None
  in
  let bus label =
    Protocol.make_bus_signals naming ~label ~addr_width:1 ~data_width:8
  in
  let b0 = bus "p0" and b1 = bus "p1" in
  let storage = [ Builder.int_var ~width:8 ~init:0 "m" ] in
  let mem =
    Memory_gen.memory ?harden:hcfg ~naming ~name:"MEM" ~vars:storage
      ~addr_of:(fun _ -> 0)
      ~buses:[ b0; b1 ] ()
  in
  let master name bs tag target =
    Behavior.leaf name
      [
        Protocol.master_write bs ~addr:0 ~value:(Expr.int tag);
        Protocol.master_read bs ~addr:0 ~target;
      ]
  in
  let program =
    Program.make
      (if harden then "litmus_mem_tmr" else "litmus_mem")
      ~vars:
        [
          Builder.int_var ~width:8 ~init:0 "r0";
          Builder.int_var ~width:8 ~init:0 "r1";
        ]
      ~signals:
        (Protocol.signal_decls b0 @ Protocol.signal_decls b1
        @
        match hcfg with
        | Some h -> [ Builder.bool_signal ~init:false h.Protocol.hd_tick ]
        | None -> [])
      ~procs:
        [
          Protocol.mst_send_proc ?harden:hcfg b0;
          Protocol.mst_receive_proc ?harden:hcfg b0;
          Protocol.mst_send_proc ?harden:hcfg b1;
          Protocol.mst_receive_proc ?harden:hcfg b1;
        ]
      ~servers:[ "MEM" ]
      (Behavior.par "TOP" [ master "M0" b0 1 "r0"; master "M1" b1 2 "r1"; mem ])
  in
  let port bs =
    List.map
      (fun s -> (s, bs.Protocol.bs_label))
      [
        bs.Protocol.bs_start; bs.Protocol.bs_done; bs.Protocol.bs_rd;
        bs.Protocol.bs_wr; bs.Protocol.bs_addr; bs.Protocol.bs_data;
      ]
  in
  let dom = [ vi 0; vi 1; vi 2 ] in
  (* Both masters hit the same location, so even sc races: a master may
     read its own tag or the other's, but never a vector claiming both
     storage orders at once — (2,1) needs m=2 before M0's read AND m=1
     before M1's, i.e. each write before the other. *)
  let allowed_sc = [ [ vi 1; vi 2 ]; [ vi 1; vi 1 ]; [ vi 2; vi 2 ] ] in
  let allowed_weak =
    (* Torn handshakes lose writes or latch stale lines: anything in
       the domain except the sc set and the contradictory (2,1). *)
    List.filter
      (fun v ->
        (not (List.mem v allowed_sc)) && v <> [ vi 2; vi 1 ])
      (List.concat_map (fun a -> List.map (fun b -> [ a; b ]) dom) dom)
  in
  {
    sh_name = (if harden then "mem-tmr" else "mem");
    sh_descr =
      (if harden then
         "hardened (TMR + watchdog) two-port Model3 memory, two masters"
       else "two-port Model3 memory, two masters, write-then-read");
    sh_program = program;
    sh_ports = port b0 @ port b1;
    sh_observed = [ "r0"; "r1" ];
    sh_domain = [ ("r0", dom); ("r1", dom) ];
    sh_allowed_sc = allowed_sc;
    sh_allowed_weak = allowed_weak;
  }

let all () =
  [
    store_buffering ();
    message_passing ();
    load_buffering ();
    coherence ();
    memory ~harden:false ();
    memory ~harden:true ();
  ]

let find name = List.find_opt (fun s -> String.equal s.sh_name name) (all ())
