(** The litmus matrix: shapes × orderings × seeds × optional fault
    plans, run on both kernels, with deterministic text/JSON reports
    and RACE003 evidence for the lint registry. *)

open Spec

type config = {
  cf_shapes : Shape.t list;
  cf_orderings : Sim.Memord.policy list;
  cf_seeds : int;  (** seeds 1..N per weak ordering; sc runs once *)
  cf_faults : bool;  (** also run the canned per-shape fault plans *)
  cf_backend : Sim.Runtime.backend option;
      (** engine-kernel leaf machine; [None] = the process default *)
}

let default_config () =
  {
    cf_shapes = Shape.all ();
    cf_orderings =
      [
        Sim.Memord.Sc;
        Sim.Memord.Per_port_fifo;
        Sim.Memord.Relaxed Sim.Memord.default_window;
      ];
    cf_seeds = 4;
    cf_faults = false;
    cf_backend = None;
  }

type entry = {
  en_shape : string;
  en_ordering : string;
  en_seed : int;
  en_fault : string option;  (** {!Faults.Fault.describe} of the plan *)
  en_verdict : Classify.verdict;
  en_observed : (string * string) list;
  en_kernels_agree : bool;
      (** Engine and Reference produced the same verdict and vector *)
  en_diverted : int;
  en_reordered : int;
  en_deltas : int;
}

type report = {
  rp_entries : entry list;
  rp_sc_consistent : int;
  rp_weak_allowed : int;
  rp_forbidden : int;
  rp_deadlock : int;
  rp_corruption : int;
  rp_kernel_mismatches : int;
}

(* Canned fault plans: a late bit flip pushing an observed register out
   of the shape's domain (corruption demo), and a dropped first update
   on a port signal — a lost handshake edge (deadlock demo on the
   unhardened shapes; the hardened memory's watchdog retries it). *)
let fault_plans (shape : Shape.t) =
  let obs = List.hd shape.Shape.sh_observed in
  let sig0 = fst (List.hd shape.Shape.sh_ports) in
  [
    [ Faults.Fault.Flip_bit { fl_var = obs; fl_bit = 2; fl_delta = 2 } ];
    [ Faults.Fault.Drop_update { du_signal = sig0; du_occurrence = 1 } ];
  ]

let value_string = function
  | Ast.VInt n -> string_of_int n
  | Ast.VBool b -> if b then "true" else "false"

let entry_of ?backend ~fault (shape : Shape.t) ~ordering ~seed =
  let faults = Option.value fault ~default:[] in
  let eng = Run.run ~kernel:`Engine ?backend ~faults ~ordering ~seed shape in
  let ref_ = Run.run ~kernel:`Reference ~faults ~ordering ~seed shape in
  let agree =
    eng.Run.o_verdict = ref_.Run.o_verdict
    && eng.Run.o_observed = ref_.Run.o_observed
  in
  {
    en_shape = shape.Shape.sh_name;
    en_ordering = Sim.Memord.policy_to_string ordering;
    en_seed = seed;
    en_fault =
      Option.map
        (fun fs -> String.concat "; " (List.map Faults.Fault.describe fs))
        fault;
    en_verdict = eng.Run.o_verdict;
    en_observed =
      List.map
        (fun (x, v) ->
          (x, match v with Some v -> value_string v | None -> "?"))
        eng.Run.o_observed;
    en_kernels_agree = agree;
    en_diverted = eng.Run.o_diverted;
    en_reordered = eng.Run.o_reordered;
    en_deltas = eng.Run.o_result.Sim.Engine.r_deltas;
  }

let seeds_for ordering n =
  match ordering with
  | Sim.Memord.Sc -> [ 0 ]  (* no scheduler: one run covers it *)
  | _ -> List.init (max 1 n) (fun i -> i + 1)

let run (cfg : config) =
  let entries =
    List.concat_map
      (fun shape ->
        let plans =
          if cfg.cf_faults then None :: List.map Option.some (fault_plans shape)
          else [ None ]
        in
        List.concat_map
          (fun fault ->
            List.concat_map
              (fun ordering ->
                List.map
                  (fun seed ->
                     entry_of ?backend:cfg.cf_backend ~fault shape
                       ~ordering ~seed)
                  (seeds_for ordering cfg.cf_seeds))
              cfg.cf_orderings)
          plans)
      cfg.cf_shapes
  in
  let count v =
    List.length (List.filter (fun e -> e.en_verdict = v) entries)
  in
  {
    rp_entries = entries;
    rp_sc_consistent = count Classify.Sc_consistent;
    rp_weak_allowed = count Classify.Weak_allowed;
    rp_forbidden = count Classify.Forbidden;
    rp_deadlock = count Classify.Deadlock;
    rp_corruption = count Classify.Corruption;
    rp_kernel_mismatches =
      List.length (List.filter (fun e -> not e.en_kernels_agree) entries);
  }

(* --- RACE003 evidence --------------------------------------------------- *)

(* A shape whose fault-free runs are sc-consistent under sc but
   weak-allowed under some weak ordering is a racy access pattern whose
   outcome depends on port ordering — exactly what refined designs
   silently assume away.  Built here (litmus has the evidence) with the
   registry's code/pass spelling so [Registry.code_table] documents it. *)
let race003_code = "RACE003"

let race_diagnostics (rp : report) =
  let no_fault = List.filter (fun e -> e.en_fault = None) rp.rp_entries in
  let shapes =
    List.sort_uniq String.compare (List.map (fun e -> e.en_shape) no_fault)
  in
  List.filter_map
    (fun shape ->
      let mine = List.filter (fun e -> e.en_shape = shape) no_fault in
      let sc_ok =
        List.for_all
          (fun e ->
            e.en_ordering <> "sc" || e.en_verdict = Classify.Sc_consistent)
          mine
      in
      let weak =
        List.filter (fun e -> e.en_verdict = Classify.Weak_allowed) mine
      in
      match (sc_ok, weak) with
      | true, w :: _ ->
        Some
          (Diagnostic.makef ~code:race003_code ~severity:Diagnostic.Warning
             ~pass:"race" ~loc:shape
             "racy access in shape %s: outcome {%s} appears under %s \
              ordering (seed %d) but is unreachable under sc"
             shape
             (String.concat ", "
                (List.map (fun (x, v) -> x ^ "=" ^ v) w.en_observed))
             w.en_ordering w.en_seed)
      | _ -> None)
    shapes

(* --- reports ------------------------------------------------------------ *)

let to_text (rp : report) =
  let buf = Buffer.create 1024 in
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "%-8s %-14s seed=%d %-14s {%s}%s%s\n" e.en_shape
           e.en_ordering e.en_seed
           (Classify.to_string e.en_verdict)
           (String.concat ", "
              (List.map (fun (x, v) -> x ^ "=" ^ v) e.en_observed))
           (match e.en_fault with None -> "" | Some f -> " fault: " ^ f)
           (if e.en_kernels_agree then "" else " KERNEL-MISMATCH")))
    rp.rp_entries;
  Buffer.add_string buf
    (Printf.sprintf
       "total %d: %d sc-consistent, %d weak-allowed, %d forbidden, %d \
        deadlock, %d corruption; %d kernel mismatches\n"
       (List.length rp.rp_entries)
       rp.rp_sc_consistent rp.rp_weak_allowed rp.rp_forbidden rp.rp_deadlock
       rp.rp_corruption rp.rp_kernel_mismatches);
  List.iter
    (fun d ->
      Buffer.add_string buf (Diagnostic.to_string d);
      Buffer.add_char buf '\n')
    (race_diagnostics rp);
  Buffer.contents buf

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json (rp : report) =
  let entry e =
    Printf.sprintf
      "{\"shape\":\"%s\",\"ordering\":\"%s\",\"seed\":%d,\"fault\":%s,\
       \"verdict\":\"%s\",\"observed\":{%s},\"kernels_agree\":%b,\
       \"diverted\":%d,\"reordered\":%d,\"deltas\":%d}"
      (json_escape e.en_shape) (json_escape e.en_ordering) e.en_seed
      (match e.en_fault with
      | None -> "null"
      | Some f -> "\"" ^ json_escape f ^ "\"")
      (Classify.to_string e.en_verdict)
      (String.concat ","
         (List.map
            (fun (x, v) ->
              Printf.sprintf "\"%s\":\"%s\"" (json_escape x) (json_escape v))
            e.en_observed))
      e.en_kernels_agree e.en_diverted e.en_reordered e.en_deltas
  in
  Printf.sprintf
    "{\"schema\":\"coref-litmus-1\",\"entries\":[%s],\"summary\":{\
     \"sc_consistent\":%d,\"weak_allowed\":%d,\"forbidden\":%d,\
     \"deadlock\":%d,\"corruption\":%d,\"kernel_mismatches\":%d},\
     \"race\":[%s]}\n"
    (String.concat "," (List.map entry rp.rp_entries))
    rp.rp_sc_consistent rp.rp_weak_allowed rp.rp_forbidden rp.rp_deadlock
    rp.rp_corruption rp.rp_kernel_mismatches
    (String.concat ","
       (List.map Diagnostic.to_json (race_diagnostics rp)))
