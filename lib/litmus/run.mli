(** Running one shape under one (ordering, seed, faults) point on a
    chosen kernel. *)

type kernel = [ `Engine | `Reference ]

type outcome = {
  o_shape : string;
  o_ordering : Sim.Memord.policy;
  o_seed : int;
  o_result : Sim.Engine.result;
  o_observed : (string * Spec.Ast.value option) list;
  o_verdict : Classify.verdict;
  o_diverted : int;  (** updates diverted into port FIFOs *)
  o_reordered : int;  (** relaxed releases that overtook an older entry *)
}

val run :
  ?kernel:kernel ->
  ?backend:Sim.Runtime.backend ->
  ?faults:Faults.Fault.spec list ->
  ordering:Sim.Memord.policy ->
  seed:int ->
  Shape.t ->
  outcome
(** Deterministic: the same (kernel, faults, ordering, seed, shape)
    point always yields the same outcome, and the two kernels classify
    identically (the litmus determinism tests enforce this).  [backend]
    selects the engine kernel's leaf machine (it is ignored by
    [`Reference], which always tree-walks); omitted, the process
    default applies.  [seed] is
    ignored under {!Sim.Memord.Sc}, where no ordering layer is
    installed at all. *)
