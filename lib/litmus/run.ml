(** Running one shape under one (ordering, seed, faults) point. *)

type kernel = [ `Engine | `Reference ]

type outcome = {
  o_shape : string;
  o_ordering : Sim.Memord.policy;
  o_seed : int;
  o_result : Sim.Engine.result;
  o_observed : (string * Spec.Ast.value option) list;
  o_verdict : Classify.verdict;
  o_diverted : int;  (** updates diverted into port FIFOs *)
  o_reordered : int;  (** relaxed releases that overtook an older entry *)
}

let run ?(kernel = `Engine) ?backend ?(faults = []) ~ordering ~seed
    (shape : Shape.t) =
  let hooks =
    match faults with
    | [] -> Sim.Engine.no_hooks
    | fs -> Faults.Inject.hooks fs
  in
  (* Under [Sc] no ordering layer is installed at all, so the kernel
     runs the literally unchanged commit path — byte-identity with
     pre-ordering behavior is structural, not just observed. *)
  let mo =
    match ordering with
    | Sim.Memord.Sc -> None
    | policy ->
      Some (Sim.Memord.make ~policy ~seed ~port_of:(Shape.port_of shape))
  in
  let result =
    match kernel with
    | `Engine -> Sim.Engine.run ~hooks ?ordering:mo ?backend shape.Shape.sh_program
    | `Reference -> Sim.Reference.run ~hooks ?ordering:mo shape.Shape.sh_program
  in
  {
    o_shape = shape.Shape.sh_name;
    o_ordering = ordering;
    o_seed = seed;
    o_result = result;
    o_observed = Classify.observed shape result;
    o_verdict = Classify.classify shape result;
    o_diverted = (match mo with Some m -> Sim.Memord.diverted m | None -> 0);
    o_reordered = (match mo with Some m -> Sim.Memord.reordered m | None -> 0);
  }
