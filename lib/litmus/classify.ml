(** Outcome classification against a shape's enumerated allowed sets. *)

open Spec

type verdict =
  | Sc_consistent  (** the delta-cycle sc baseline could produce it *)
  | Weak_allowed  (** only a weak port ordering can produce it *)
  | Forbidden  (** in-domain but in neither allowed set *)
  | Deadlock  (** the run did not complete (deadlock or budget) *)
  | Corruption  (** an observed value left the shape's domain *)

let to_string = function
  | Sc_consistent -> "sc-consistent"
  | Weak_allowed -> "weak-allowed"
  | Forbidden -> "forbidden"
  | Deadlock -> "deadlock"
  | Corruption -> "corruption"

let all = [ Sc_consistent; Weak_allowed; Forbidden; Deadlock; Corruption ]

(** The observed variables' final values, in [sh_observed] order. *)
let observed (shape : Shape.t) (r : Sim.Engine.result) =
  List.map
    (fun x -> (x, List.assoc_opt x r.Sim.Engine.r_final))
    shape.Shape.sh_observed

let classify (shape : Shape.t) (r : Sim.Engine.result) =
  match r.Sim.Engine.r_outcome with
  | Sim.Engine.Deadlock _ | Sim.Engine.Step_limit | Sim.Engine.Cancelled ->
    Deadlock
  | Sim.Engine.Completed ->
    let obs = observed shape r in
    let in_domain (x, v) =
      match (v, List.assoc_opt x shape.Shape.sh_domain) with
      | Some v, Some dom -> List.exists (Ast.equal_value v) dom
      | _ -> false
    in
    if not (List.for_all in_domain obs) then Corruption
    else begin
      let vector = List.filter_map snd obs in
      let mem set = List.exists (List.equal Ast.equal_value vector) set in
      if mem shape.Shape.sh_allowed_sc then Sc_consistent
      else if mem shape.Shape.sh_allowed_weak then Weak_allowed
      else Forbidden
    end
