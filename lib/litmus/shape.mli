(** The litmus shapes: small concurrent-access specifications with
    enumerated allowed-outcome sets and per-signal port ownership.

    The classic shapes (store buffering, message passing, load
    buffering, coherence) address signals standing in for memory
    locations; the [memory] shapes are instantiated against
    {!Core.Memory_gen} output — a real two-port Model3 memory behind
    the generated handshake protocol, hardened or not. *)

open Spec

type t = {
  sh_name : string;
  sh_descr : string;
  sh_program : Ast.program;
  sh_ports : (string * string) list;  (** signal name -> owning port *)
  sh_observed : string list;  (** variables read from the final values *)
  sh_domain : (string * Ast.value list) list;
      (** per observed variable: the values any legal run may leave;
          anything outside is corruption *)
  sh_allowed_sc : Ast.value list list;
      (** observed vectors the sequentially-consistent delta-cycle
          baseline can produce *)
  sh_allowed_weak : Ast.value list list;
      (** additional vectors legal under weak port orderings; vectors in
          neither set are forbidden *)
}

val port_of : t -> string -> string option
(** Ownership map for {!Sim.Memord.make}. *)

val store_buffering : unit -> t
val message_passing : unit -> t
val load_buffering : unit -> t
val coherence : unit -> t

val memory : harden:bool -> unit -> t
(** Two bus masters write-then-read one location of a shared two-port
    {!Core.Memory_gen} memory ([mem]); [~harden:true] is the TMR +
    watchdog variant ([mem-tmr]). *)

val all : unit -> t list
(** Every shape, in reporting order. *)

val find : string -> t option
