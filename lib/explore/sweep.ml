(** Sweep orchestration and reporting.  The deterministic-reduction rule:
    results are kept in candidate enumeration order (the {!Pool}
    preserves input order), the frontier is computed from that list and
    then sorted by objective vector with the candidate order as the tie
    break — no step depends on domain scheduling. *)

type config = {
  seeds : int list;
  biases : Partitioning.Design_search.bias list;
  models : Core.Model.t list;
  n_parts : int;
  steps : int;
  jobs : int;
}

let default_config =
  {
    seeds = [ 1; 2; 3 ];
    biases = Candidate.all_biases;
    models = Core.Model.all;
    n_parts = 2;
    steps = 4000;
    jobs = 1;
  }

type t = {
  sw_results : Evaluate.result list;
  sw_frontier : Evaluate.result list;
  sw_hits : int;
  sw_misses : int;
  sw_jobs : int;
}

(* Fourth axis: fragility (1 - robustness), so every objective is
   minimized uniformly. *)
let objectives (m : Evaluate.metrics) =
  [|
    m.Evaluate.e_max_bus_rate;
    m.Evaluate.e_growth;
    float_of_int (m.Evaluate.e_pins + m.Evaluate.e_gates);
    1.0 -. m.Evaluate.e_robustness;
  |]

let result_objectives (r : Evaluate.result) =
  match r.Evaluate.r_outcome with
  | Ok m -> objectives m
  | Error _ -> [| infinity; infinity; infinity; infinity |]

let run ?cache ?alloc config spec =
  let cache = match cache with Some c -> c | None -> Cache.create () in
  let before = Cache.stats cache in
  let ctx = Evaluate.make_ctx ?alloc spec in
  let candidates =
    Candidate.enumerate ~n_parts:config.n_parts ~steps:config.steps
      ~biases:config.biases ~seeds:config.seeds ~models:config.models ()
  in
  let results =
    Pool.map ~jobs:config.jobs ~f:(Evaluate.run ~cache ctx) candidates
  in
  let ok r = Result.is_ok r.Evaluate.r_outcome in
  let frontier =
    Pareto.frontier ~objectives:result_objectives (List.filter ok results)
    |> Pareto.sort ~objectives:result_objectives
  in
  let after = Cache.stats cache in
  {
    sw_results = results;
    sw_frontier = frontier;
    sw_hits = after.Cache.hits - before.Cache.hits;
    sw_misses = after.Cache.misses - before.Cache.misses;
    sw_jobs = config.jobs;
  }

let hit_rate t =
  let total = t.sw_hits + t.sw_misses in
  if total = 0 then 0.0 else float_of_int t.sw_hits /. float_of_int total

let take n xs =
  if n <= 0 then xs
  else List.filteri (fun i _ -> i < n) xs

(* --- text report -------------------------------------------------------- *)

let row_of (r : Evaluate.result) =
  let label = Candidate.label r.Evaluate.r_candidate in
  match r.Evaluate.r_outcome with
  | Error msg -> Printf.sprintf "%-24s FAILED: %s" label msg
  | Ok m ->
    Printf.sprintf
      "%-24s %2dL/%-2dG %8.1f Mbps %6.1fx %4d pins %6d gates rob:%.2f %s \
       lint:%dE/%dW%s"
      label m.Evaluate.e_locals m.Evaluate.e_globals m.Evaluate.e_max_bus_rate
      m.Evaluate.e_growth m.Evaluate.e_pins m.Evaluate.e_gates
      m.Evaluate.e_robustness
      (if m.Evaluate.e_check_ok then "ok" else "CHECK-FAILED")
      m.Evaluate.e_lint_errors m.Evaluate.e_lint_warnings
      (if r.Evaluate.r_cached then " (cached)" else "")

let to_text ?(top = 0) t =
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "design-space sweep: %d candidates, %d jobs, cache %d hits / %d misses (%.0f%% hit rate)"
    (List.length t.sw_results) t.sw_jobs t.sw_hits t.sw_misses
    (100.0 *. hit_rate t);
  line "%-24s %-7s %-13s %-7s %s" "candidate" "loc/glo" "max bus rate"
    "growth" "pins/gates";
  List.iter (fun r -> line "%s" (row_of r)) (take top t.sw_results);
  if top > 0 && List.length t.sw_results > top then
    line "... (%d more candidates)" (List.length t.sw_results - top);
  line "";
  line "Pareto frontier (minimizing max bus rate, growth, pins+gates, fragility): %d designs"
    (List.length t.sw_frontier);
  List.iter (fun r -> line "  %s" (row_of r)) t.sw_frontier;
  Buffer.contents buf

(* --- JSON report --------------------------------------------------------- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_of_result (r : Evaluate.result) =
  let c = r.Evaluate.r_candidate in
  let base =
    Printf.sprintf
      "\"candidate\":\"%s\",\"seed\":%d,\"bias\":\"%s\",\"model\":\"%s\",\"cached\":%b"
      (json_escape (Candidate.label c))
      c.Candidate.c_seed
      (Candidate.bias_name c.Candidate.c_bias)
      (Core.Model.name c.Candidate.c_model)
      r.Evaluate.r_cached
  in
  match r.Evaluate.r_outcome with
  | Error msg ->
    Printf.sprintf "{%s,\"error\":\"%s\"}" base (json_escape msg)
  | Ok m ->
    Printf.sprintf
      "{%s,\"locals\":%d,\"globals\":%d,\"comm_bits\":%d,\
       \"max_bus_rate_mbps\":%.4f,\"buses\":%d,\"memories\":%d,\
       \"lines\":%d,\"growth\":%.4f,\"pins\":%d,\"gates\":%d,\
       \"software_bytes\":%d,\"exec_seconds\":%.6f,\"check_ok\":%b,\
       \"lint_errors\":%d,\"lint_warnings\":%d,\"robustness\":%.4f}"
      base m.Evaluate.e_locals m.Evaluate.e_globals m.Evaluate.e_comm_bits
      m.Evaluate.e_max_bus_rate m.Evaluate.e_bus_count m.Evaluate.e_memories
      m.Evaluate.e_lines m.Evaluate.e_growth m.Evaluate.e_pins
      m.Evaluate.e_gates m.Evaluate.e_software_bytes
      m.Evaluate.e_exec_seconds m.Evaluate.e_check_ok
      m.Evaluate.e_lint_errors m.Evaluate.e_lint_warnings
      m.Evaluate.e_robustness

let to_json ?(top = 0) t =
  Printf.sprintf
    "{\"candidates\":%d,\"jobs\":%d,\"cache\":{\"hits\":%d,\"misses\":%d,\
     \"hit_rate\":%.4f},\"results\":[%s],\"pareto\":[%s]}"
    (List.length t.sw_results) t.sw_jobs t.sw_hits t.sw_misses (hit_rate t)
    (String.concat "," (List.map json_of_result (take top t.sw_results)))
    (String.concat "," (List.map json_of_result t.sw_frontier))
