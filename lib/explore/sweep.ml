(** Sweep orchestration and reporting.  The deterministic-reduction rule:
    results are kept in candidate enumeration order (the {!Pool}
    preserves input order), the frontier is computed from that list and
    then sorted by objective vector with the candidate order as the tie
    break — no step depends on domain scheduling.

    Resilience: evaluations run under {!Pool.supervise} (worker
    exceptions are confined to their candidate, retried with backoff,
    then quarantined), each candidate may carry a cooperative deadline,
    and every definitive outcome is checkpointed to an optional
    {!Checkpoint.Journal} the moment it completes — a killed sweep
    resumes by replaying the journal and evaluating only the
    remainder. *)

type config = {
  seeds : int list;
  biases : Partitioning.Design_search.bias list;
  models : Core.Model.t list;
  n_parts : int;
  steps : int;
  jobs : int;
  deadline_s : float option;
  retries : int;
  backoff_s : float;
}

let default_config =
  {
    seeds = [ 1; 2; 3 ];
    biases = Candidate.all_biases;
    models = Core.Model.all;
    n_parts = 2;
    steps = 4000;
    jobs = 1;
    deadline_s = None;
    retries = Pool.default_supervisor.Pool.sv_retries;
    backoff_s = Pool.default_supervisor.Pool.sv_backoff_s;
  }

type t = {
  sw_results : Evaluate.result list;
  sw_frontier : Evaluate.result list;
  sw_hits : int;
  sw_misses : int;
  sw_jobs : int;
  sw_replayed : int;
  sw_coverage : float;
  sw_failures : (string * int) list;
}

(* Fourth axis: fragility (1 - robustness), so every objective is
   minimized uniformly. *)
let objectives (m : Evaluate.metrics) =
  [|
    m.Evaluate.e_max_bus_rate;
    m.Evaluate.e_growth;
    float_of_int (m.Evaluate.e_pins + m.Evaluate.e_gates);
    1.0 -. m.Evaluate.e_robustness;
  |]

let result_objectives (r : Evaluate.result) =
  match r.Evaluate.r_outcome with
  | Ok m -> objectives m
  | Error _ -> [| infinity; infinity; infinity; infinity |]

(* The journal meta binds a sweep journal to everything that determines a
   candidate's outcome: the specification and the per-candidate search
   parameters.  Deliberately *not* the candidate list — resuming with
   more seeds or models reuses every overlapping result. *)
let journal_meta config spec =
  Checkpoint.Journal.meta_digest
    [
      "explore-sweep-2";
      Evaluate.spec_digest spec;
      string_of_int config.n_parts;
      string_of_int config.steps;
    ]

let decode_outcome blob =
  match
    (Marshal.from_string blob 0
      : (Evaluate.metrics, Evaluate.failure) Stdlib.result)
  with
  | outcome -> Some outcome
  | exception (Failure _ | Invalid_argument _) -> None

let run ?cache ?alloc ?journal ?evaluate config spec =
  let cache = match cache with Some c -> c | None -> Cache.create () in
  let before = Cache.stats cache in
  let ctx = Evaluate.make_ctx ?alloc spec in
  let evaluate =
    match evaluate with
    | Some f -> f
    | None -> Evaluate.run ~cache ?deadline_s:config.deadline_s ctx
  in
  let candidates =
    Candidate.enumerate ~n_parts:config.n_parts ~steps:config.steps
      ~biases:config.biases ~seeds:config.seeds ~models:config.models ()
  in
  (* Split the enumeration into journal replays and work to do, keeping
     the enumeration order for the merge below. *)
  let tagged =
    List.map
      (fun c ->
        let replayed =
          match journal with
          | None -> None
          | Some j ->
            Option.bind
              (Checkpoint.Journal.find j (Candidate.label c))
              decode_outcome
        in
        match replayed with
        | Some outcome ->
          Either.Left
            {
              Evaluate.r_candidate = c;
              r_outcome = outcome;
              r_cached = false;
              r_replayed = true;
            }
        | None -> Either.Right c)
      candidates
  in
  let todo =
    List.filter_map
      (function Either.Right c -> Some c | Either.Left _ -> None)
      tagged
  in
  let checkpointed c (r : Evaluate.result) =
    (match journal with
    | Some j when Evaluate.definitive r.Evaluate.r_outcome ->
      Checkpoint.Journal.append j
        ~key:(Candidate.label c)
        (Marshal.to_string r.Evaluate.r_outcome [])
    | _ -> ());
    r
  in
  let supervisor =
    {
      Pool.default_supervisor with
      Pool.sv_retries = config.retries;
      sv_backoff_s = config.backoff_s;
    }
  in
  let computed =
    ref
      (Pool.supervise ~supervisor ~jobs:config.jobs
         ~f:(fun c -> checkpointed c (evaluate c))
         todo)
  in
  let next_computed c =
    match !computed with
    | [] -> assert false (* one supervised result per Right tag *)
    | Ok r :: rest ->
      computed := rest;
      r
    | Error (fl : Pool.failure) :: rest ->
      computed := rest;
      {
        Evaluate.r_candidate = c;
        r_outcome =
          Error
            (Evaluate.Crashed
               {
                 cr_exn = fl.Pool.f_exn;
                 cr_backtrace = fl.Pool.f_backtrace;
                 cr_attempts = fl.Pool.f_attempts;
               });
        r_cached = false;
        r_replayed = false;
      }
  in
  let results =
    List.map
      (function Either.Left r -> r | Either.Right c -> next_computed c)
      tagged
  in
  let ok r = Result.is_ok r.Evaluate.r_outcome in
  let frontier =
    Pareto.frontier ~objectives:result_objectives (List.filter ok results)
    |> Pareto.sort ~objectives:result_objectives
  in
  let total = List.length results in
  let n_definitive =
    List.length
      (List.filter (fun r -> Evaluate.definitive r.Evaluate.r_outcome) results)
  in
  let failures =
    let counts = Hashtbl.create 4 in
    List.iter
      (fun r ->
        match r.Evaluate.r_outcome with
        | Ok _ -> ()
        | Error f ->
          let kind = Evaluate.failure_kind f in
          Hashtbl.replace counts kind
            (1 + Option.value ~default:0 (Hashtbl.find_opt counts kind)))
      results;
    List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) counts [])
  in
  let after = Cache.stats cache in
  {
    sw_results = results;
    sw_frontier = frontier;
    sw_hits = after.Cache.hits - before.Cache.hits;
    sw_misses = after.Cache.misses - before.Cache.misses;
    sw_jobs = config.jobs;
    sw_replayed =
      List.length (List.filter (fun r -> r.Evaluate.r_replayed) results);
    sw_coverage =
      (if total = 0 then 1.0
       else float_of_int n_definitive /. float_of_int total);
    sw_failures = failures;
  }

let hit_rate t =
  let total = t.sw_hits + t.sw_misses in
  if total = 0 then 0.0 else float_of_int t.sw_hits /. float_of_int total

let take n xs =
  if n <= 0 then xs
  else List.filteri (fun i _ -> i < n) xs

(* --- text report -------------------------------------------------------- *)

let row_of (r : Evaluate.result) =
  let label = Candidate.label r.Evaluate.r_candidate in
  match r.Evaluate.r_outcome with
  | Error f ->
    Printf.sprintf "%-24s FAILED[%s]: %s" label (Evaluate.failure_kind f)
      (Evaluate.failure_message f)
  | Ok m ->
    Printf.sprintf
      "%-24s %2dL/%-2dG %8.1f Mbps %6.1fx %4d pins %6d gates rob:%.2f %s \
       lint:%dE/%dW live:%dD/%dW%s%s"
      label m.Evaluate.e_locals m.Evaluate.e_globals m.Evaluate.e_max_bus_rate
      m.Evaluate.e_growth m.Evaluate.e_pins m.Evaluate.e_gates
      m.Evaluate.e_robustness
      (if m.Evaluate.e_check_ok then "ok" else "CHECK-FAILED")
      m.Evaluate.e_lint_errors m.Evaluate.e_lint_warnings
      m.Evaluate.e_live_dead_stores m.Evaluate.e_live_write_only
      (if r.Evaluate.r_cached then " (cached)" else "")
      (if r.Evaluate.r_replayed then " (replayed)" else "")

let to_text ?(top = 0) t =
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "design-space sweep: %d candidates, %d jobs, cache %d hits / %d misses (%.0f%% hit rate)"
    (List.length t.sw_results) t.sw_jobs t.sw_hits t.sw_misses
    (100.0 *. hit_rate t);
  line "coverage %.1f%% (%d of %d definitive%s)%s"
    (100.0 *. t.sw_coverage)
    (List.length t.sw_results
    - List.fold_left
        (fun acc (kind, n) ->
          if kind = "timeout" || kind = "crash" then acc + n else acc)
        0 t.sw_failures)
    (List.length t.sw_results)
    (if t.sw_replayed > 0 then
       Printf.sprintf ", %d replayed from journal" t.sw_replayed
     else "")
    (match t.sw_failures with
    | [] -> ""
    | fs ->
      "; failures: "
      ^ String.concat ", "
          (List.map (fun (kind, n) -> Printf.sprintf "%s=%d" kind n) fs));
  line "%-24s %-7s %-13s %-7s %s" "candidate" "loc/glo" "max bus rate"
    "growth" "pins/gates";
  List.iter (fun r -> line "%s" (row_of r)) (take top t.sw_results);
  if top > 0 && List.length t.sw_results > top then
    line "... (%d more candidates)" (List.length t.sw_results - top);
  line "";
  line "Pareto frontier (minimizing max bus rate, growth, pins+gates, fragility): %d designs"
    (List.length t.sw_frontier);
  List.iter (fun r -> line "  %s" (row_of r)) t.sw_frontier;
  Buffer.contents buf

(* --- JSON report --------------------------------------------------------- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_of_result (r : Evaluate.result) =
  let c = r.Evaluate.r_candidate in
  let base =
    Printf.sprintf
      "\"candidate\":\"%s\",\"seed\":%d,\"bias\":\"%s\",\"model\":\"%s\",\"cached\":%b,\"replayed\":%b"
      (json_escape (Candidate.label c))
      c.Candidate.c_seed
      (Candidate.bias_name c.Candidate.c_bias)
      (Core.Model.name c.Candidate.c_model)
      r.Evaluate.r_cached r.Evaluate.r_replayed
  in
  match r.Evaluate.r_outcome with
  | Error f ->
    Printf.sprintf "{%s,\"failure\":\"%s\",\"error\":\"%s\"}" base
      (Evaluate.failure_kind f)
      (json_escape (Evaluate.failure_message f))
  | Ok m ->
    Printf.sprintf
      "{%s,\"locals\":%d,\"globals\":%d,\"comm_bits\":%d,\
       \"max_bus_rate_mbps\":%.4f,\"buses\":%d,\"memories\":%d,\
       \"lines\":%d,\"growth\":%.4f,\"pins\":%d,\"gates\":%d,\
       \"software_bytes\":%d,\"exec_seconds\":%.6f,\"check_ok\":%b,\
       \"lint_errors\":%d,\"lint_warnings\":%d,\
       \"live_dead_stores\":%d,\"live_write_only\":%d,\
       \"robustness\":%.4f}"
      base m.Evaluate.e_locals m.Evaluate.e_globals m.Evaluate.e_comm_bits
      m.Evaluate.e_max_bus_rate m.Evaluate.e_bus_count m.Evaluate.e_memories
      m.Evaluate.e_lines m.Evaluate.e_growth m.Evaluate.e_pins
      m.Evaluate.e_gates m.Evaluate.e_software_bytes
      m.Evaluate.e_exec_seconds m.Evaluate.e_check_ok
      m.Evaluate.e_lint_errors m.Evaluate.e_lint_warnings
      m.Evaluate.e_live_dead_stores m.Evaluate.e_live_write_only
      m.Evaluate.e_robustness

let to_json ?(top = 0) t =
  Printf.sprintf
    "{\"candidates\":%d,\"jobs\":%d,\"cache\":{\"hits\":%d,\"misses\":%d,\
     \"hit_rate\":%.4f},\"coverage\":%.4f,\"replayed\":%d,\
     \"failures\":{%s},\"results\":[%s],\"pareto\":[%s]}"
    (List.length t.sw_results) t.sw_jobs t.sw_hits t.sw_misses (hit_rate t)
    t.sw_coverage t.sw_replayed
    (String.concat ","
       (List.map
          (fun (kind, n) -> Printf.sprintf "\"%s\":%d" (json_escape kind) n)
          t.sw_failures))
    (String.concat "," (List.map json_of_result (take top t.sw_results)))
    (String.concat "," (List.map json_of_result t.sw_frontier))
