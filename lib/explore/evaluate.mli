(** End-to-end evaluation of one design-space candidate: search the
    partition ({!Partitioning.Design_search}), refine it to the
    candidate's implementation model ({!Core.Refiner}), run the
    structural checks ({!Core.Check}), and measure quality — maximum
    required bus transfer rate ({!Estimate.Rates}), specification growth
    ({!Core.Metrics}) and pin/gate demand ({!Core.Quality}).

    The expensive tail (refine → check → quality) is memoized through
    {!Cache} under a content-hashed key of (spec digest, canonical
    partition, model), so two candidates whose annealing runs land on
    the same partition — or a repeated sweep in a later process, with a
    persistent cache — share one refinement.  Lint pass results are
    additionally memoized by the digest of the {e refined} program, next
    to the refinement entries, so candidates that refine to identical
    model skeletons are linted once.  Everything here is deterministic:
    same candidate, same result, cached or not. *)

type metrics = {
  e_locals : int;  (** local variables of the searched partition *)
  e_globals : int;  (** global variables of the searched partition *)
  e_comm_bits : int;  (** cross-partition traffic, bits *)
  e_max_bus_rate : float;  (** highest required bus rate, Mbit/s *)
  e_bus_count : int;  (** buses instantiated by the refinement *)
  e_memories : int;  (** memory behaviors generated *)
  e_lines : int;  (** lines of the refined specification *)
  e_growth : float;  (** refined-over-original line ratio *)
  e_pins : int;  (** summed component pin demand *)
  e_gates : int;  (** summed ASIC gate demand *)
  e_software_bytes : int;  (** summed processor code size *)
  e_exec_seconds : float;  (** summed estimated execution time *)
  e_check_ok : bool;  (** {!Core.Check} found no violation *)
  e_lint_errors : int;  (** error-severity lint diagnostics on the output *)
  e_lint_warnings : int;  (** warning-severity lint diagnostics *)
  e_live_dead_stores : int;
      (** flow-only [LIVE005] findings: reachable stores overwritten
          before any read *)
  e_live_write_only : int;
      (** flow-only [LIVE006] findings: variables written but never read *)
  e_robustness : float;
      (** survived-or-recovered fraction of a small fixed fault campaign
          ({!Faults.Campaign}); 0.0 when the design cannot be campaigned *)
}

(** Why a candidate has no metrics.  {!Refine_failed} is a {e definitive}
    property of the candidate (cacheable, journalable); {!Timed_out} and
    {!Crashed} describe one particular execution and are retried by a
    resumed sweep. *)
type failure =
  | Refine_failed of string  (** refinement itself rejected the candidate *)
  | Timed_out of float
      (** the per-candidate deadline fired; payload = seconds elapsed *)
  | Crashed of { cr_exn : string; cr_backtrace : string; cr_attempts : int }
      (** the evaluation raised on every supervised attempt and was
          quarantined (constructed by {!Sweep} from {!Pool.failure}) *)

val failure_kind : failure -> string
(** Stable taxonomy label: ["refine-error"], ["timeout"] or ["crash"]. *)

val failure_message : failure -> string

val definitive : (metrics, failure) Stdlib.result -> bool
(** Whether the outcome may be cached, journaled and replayed on resume. *)

type result = {
  r_candidate : Candidate.t;
  r_outcome : (metrics, failure) Stdlib.result;
  r_cached : bool;  (** the refine→quality tail came from the cache *)
  r_replayed : bool;  (** the outcome came from a resume journal *)
}

type ctx
(** Shared per-sweep context: the specification, its access graph, its
    printed-form digest and the allocation. *)

val make_ctx :
  ?alloc:Arch.Allocation.t -> Spec.Ast.program -> ctx
(** Derive the access graph and spec digest once for a whole sweep.
    Without [alloc], each candidate uses {!default_alloc} for its own
    part count. *)

val default_alloc : n_parts:int -> Arch.Allocation.t
(** The paper's shape: component 0 an Intel8086-class processor, every
    other component a 10k-gate ASIC. *)

val spec_digest : Spec.Ast.program -> string
(** Content digest of the printed specification. *)

val partition_of : ctx -> Candidate.t -> Partitioning.Partition.t
(** The candidate's partition: a fixed-seed {!Partitioning.Design_search}
    annealing run (deterministic). *)

val cache_key :
  spec_digest:string ->
  partition:Partitioning.Partition.t ->
  model:Core.Model.t ->
  string
(** The memoization key: hex digest over the spec digest, the canonical
    (sorted) object→partition assignment, and the model name. *)

val run :
  ?cache:Cache.t ->
  ?deadline_s:float ->
  ?poll:(unit -> bool) ->
  ctx ->
  Candidate.t ->
  result
(** Evaluate one candidate, consulting [cache] for the refinement tail.
    Never raises: refiner errors surface as [Error (Refine_failed _)].

    With [deadline_s], the evaluation carries a cooperative wall-clock
    budget: it is checked between pipeline stages and threaded into the
    robustness probe's simulation kernels ({!Sim.Runtime.hooks.h_poll}),
    so a runaway simulation is cancelled mid-run.  An expired candidate
    returns [Error (Timed_out elapsed)] and {e nothing} is cached — a
    later, unhurried evaluation recomputes it from scratch.

    [poll] is an external cooperative cancel signal checked at the same
    checkpoints (and or-ed into the kernels' [h_poll]): the [mrefine
    serve] scheduler threads a job's cancel flag through it so an
    explore job cancelled mid-sweep stops within one pipeline stage.
    A cancelled candidate also surfaces as [Error (Timed_out _)]. *)
