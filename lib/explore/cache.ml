(** Mutex-protected memo table with optional one-file-per-key disk
    persistence and an optional LRU residency cap.  See the interface
    for the concurrency contract. *)

(* Bump when the marshalled layout of cached values or the entry framing
   changes: stale disk entries from an older build then read as misses
   instead of garbage.  v5: length-prefixed, checksummed blobs. *)
let format_version = "coref-explore-cache-6\n"

type stats = { hits : int; misses : int }

type t = {
  table : (string, string) Hashtbl.t;  (* key -> marshalled value *)
  lock : Mutex.t;
  dir : string option;
  max_entries : int option;  (* in-memory residency caps; disk is unbounded *)
  max_bytes : int option;
  last_use : (string, int) Hashtbl.t;  (* key -> tick of last touch *)
  mutable tick : int;
  mutable bytes : int;  (* resident payload bytes (keys + blobs) *)
  mutable evictions : int;
  mutable hits : int;
  mutable misses : int;
}

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let rec mkdir_p path =
  if path <> "" && path <> "/" && path <> "." && not (Sys.file_exists path)
  then begin
    mkdir_p (Filename.dirname path);
    try Sys.mkdir path 0o755
    with Sys_error _ when Sys.file_exists path -> ()
  end

let create ?dir ?max_entries ?max_bytes () =
  (match max_entries with
  | Some n when n < 1 -> invalid_arg "Cache.create: max_entries < 1"
  | _ -> ());
  (match max_bytes with
  | Some n when n < 1 -> invalid_arg "Cache.create: max_bytes < 1"
  | _ -> ());
  Option.iter mkdir_p dir;
  {
    table = Hashtbl.create 64;
    lock = Mutex.create ();
    dir;
    max_entries;
    max_bytes;
    last_use = Hashtbl.create 64;
    tick = 0;
    bytes = 0;
    evictions = 0;
    hits = 0;
    misses = 0;
  }

let digest_key components =
  Digest.to_hex (Digest.string (String.concat "\x00" components))

let file_of t key =
  Option.map (fun dir -> Filename.concat dir (key ^ ".memo")) t.dir

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Write-to-temp + rename so concurrent processes never observe a
   half-written entry. *)
let write_file path data =
  let tmp =
    Printf.sprintf "%s.%d.tmp" path (Hashtbl.hash (path, data, Sys.time ()))
  in
  let oc = open_out_bin tmp in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () ->
      output_string oc data);
  Sys.rename tmp path

(* Entry framing behind the version prefix: [u32 length][16-byte MD5 of
   blob][blob].  A partially-written file that survived a crash — short
   of the declared length, or bit-rotted — fails the length or checksum
   check and reads as a miss, never as a [Marshal] exception. *)
let frame blob =
  let len = String.length blob in
  let b = Buffer.create (len + 20) in
  Buffer.add_char b (Char.chr ((len lsr 24) land 0xff));
  Buffer.add_char b (Char.chr ((len lsr 16) land 0xff));
  Buffer.add_char b (Char.chr ((len lsr 8) land 0xff));
  Buffer.add_char b (Char.chr (len land 0xff));
  Buffer.add_string b (Digest.string blob);
  Buffer.add_string b blob;
  Buffer.contents b

let unframe data =
  let vn = String.length format_version in
  if String.length data < vn + 20 then None
  else if not (String.equal (String.sub data 0 vn) format_version) then None
  else
    let len =
      (Char.code data.[vn] lsl 24)
      lor (Char.code data.[vn + 1] lsl 16)
      lor (Char.code data.[vn + 2] lsl 8)
      lor Char.code data.[vn + 3]
    in
    if String.length data <> vn + 20 + len then None
    else
      let digest = String.sub data (vn + 4) 16 in
      let blob = String.sub data (vn + 20) len in
      if String.equal (Digest.string blob) digest then Some blob else None

let disk_find t key =
  match file_of t key with
  | None -> None
  | Some path ->
    (try unframe (read_file path) with Sys_error _ | End_of_file -> None)

let disk_add t key blob =
  match file_of t key with
  | None -> ()
  | Some path ->
    (try write_file path (format_version ^ frame blob)
     with Sys_error _ -> ())

let entry_bytes key blob = String.length key + String.length blob

(* --- LRU residency (all under the lock) -------------------------------- *)

let touch t key =
  t.tick <- t.tick + 1;
  Hashtbl.replace t.last_use key t.tick

let drop_resident t key =
  match Hashtbl.find_opt t.table key with
  | None -> ()
  | Some blob ->
    Hashtbl.remove t.table key;
    Hashtbl.remove t.last_use key;
    t.bytes <- t.bytes - entry_bytes key blob

let over_cap t =
  (match t.max_entries with
  | Some cap -> Hashtbl.length t.table > cap
  | None -> false)
  ||
  match t.max_bytes with Some cap -> t.bytes > cap | None -> false

(* Evict least-recently-used entries until back under both caps.  The
   scan is O(resident) per eviction, but the resident set is bounded by
   the cap itself, so sustained traffic amortizes to O(cap) per insert.
   Entries persisted to [dir] were written at add time, so in-memory
   eviction only sheds the resident copy — a later lookup re-promotes it
   from disk ("evict to disk").  Without a [dir] the value is recomputed
   on the next miss. *)
let enforce_caps t =
  while over_cap t && Hashtbl.length t.table > 0 do
    let victim =
      Hashtbl.fold
        (fun key _ acc ->
          let tick =
            Option.value ~default:0 (Hashtbl.find_opt t.last_use key)
          in
          match acc with
          | Some (_, best) when best <= tick -> acc
          | _ -> Some (key, tick))
        t.table None
    in
    match victim with
    | None -> ()
    | Some (key, _) ->
      drop_resident t key;
      t.evictions <- t.evictions + 1
  done

let insert_resident t key blob =
  drop_resident t key;
  Hashtbl.replace t.table key blob;
  t.bytes <- t.bytes + entry_bytes key blob;
  touch t key;
  enforce_caps t

let lookup t ~count key =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.table key with
      | Some blob ->
        touch t key;
        if count then t.hits <- t.hits + 1;
        Some blob
      | None ->
        (match disk_find t key with
        | Some blob ->
          insert_resident t key blob;
          if count then t.hits <- t.hits + 1;
          Some blob
        | None ->
          if count then t.misses <- t.misses + 1;
          None))

(* A truncated or bit-rotted disk entry must read as a miss, not as a
   [Failure] escaping to the caller: evict it from both tiers so the
   recomputed value replaces the damaged file. *)
let evict t key =
  with_lock t (fun () ->
      drop_resident t key;
      match file_of t key with
      | None -> ()
      | Some path -> (try Sys.remove path with Sys_error _ -> ()))

let unmarshal_opt blob =
  match Marshal.from_string blob 0 with
  | v -> Some v
  | exception (Failure _ | Invalid_argument _) -> None

let find_or_add ?(count_stats = true) t key compute =
  let cached =
    match lookup t ~count:count_stats key with
    | Some blob ->
      let v = unmarshal_opt blob in
      if v = None && count_stats then begin
        (* Account the corrupt entry as the miss it really was. *)
        with_lock t (fun () ->
            t.hits <- t.hits - 1;
            t.misses <- t.misses + 1)
      end;
      v
    | None -> None
  in
  match cached with
  | Some v -> (v, true)
  | None ->
    evict t key;
    let v = compute () in
    let blob = Marshal.to_string v [] in
    with_lock t (fun () ->
        insert_resident t key blob;
        disk_add t key blob);
    (v, false)

let mem t key =
  with_lock t (fun () ->
      Hashtbl.mem t.table key || disk_find t key <> None)

let stats t = with_lock t (fun () -> { hits = t.hits; misses = t.misses })

let resident_entries t = with_lock t (fun () -> Hashtbl.length t.table)

let resident_bytes t = with_lock t (fun () -> t.bytes)

let evictions t = with_lock t (fun () -> t.evictions)

let hit_rate t =
  let s = stats t in
  let total = s.hits + s.misses in
  if total = 0 then 0.0 else float_of_int s.hits /. float_of_int total

let reset_stats t =
  with_lock t (fun () ->
      t.hits <- 0;
      t.misses <- 0)
