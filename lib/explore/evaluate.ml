(** Candidate evaluation: partition search, refinement, structural check
    and quality measurement, with the refinement tail memoized.  See the
    interface for the cache-key and determinism contracts. *)

open Partitioning

type metrics = {
  e_locals : int;
  e_globals : int;
  e_comm_bits : int;
  e_max_bus_rate : float;
  e_bus_count : int;
  e_memories : int;
  e_lines : int;
  e_growth : float;
  e_pins : int;
  e_gates : int;
  e_software_bytes : int;
  e_exec_seconds : float;
  e_check_ok : bool;
  e_lint_errors : int;
  e_lint_warnings : int;
  e_live_dead_stores : int;
  e_live_write_only : int;
  e_robustness : float;
}

type failure =
  | Refine_failed of string
  | Timed_out of float
  | Crashed of { cr_exn : string; cr_backtrace : string; cr_attempts : int }

let failure_kind = function
  | Refine_failed _ -> "refine-error"
  | Timed_out _ -> "timeout"
  | Crashed _ -> "crash"

let failure_message = function
  | Refine_failed msg -> msg
  | Timed_out elapsed ->
    Printf.sprintf "deadline exceeded after %.2fs" elapsed
  | Crashed c ->
    Printf.sprintf "%s (quarantined after %d attempts)" c.cr_exn
      c.cr_attempts

(* Definitive outcomes are properties of the candidate itself and may be
   cached, journaled and replayed; timeouts and crashes are properties of
   one particular execution and must be retried by a resumed sweep. *)
let definitive = function
  | Ok _ | Error (Refine_failed _) -> true
  | Error (Timed_out _ | Crashed _) -> false

type result = {
  r_candidate : Candidate.t;
  r_outcome : (metrics, failure) Stdlib.result;
  r_cached : bool;
  r_replayed : bool;
}

(* Cooperative per-candidate deadline: raised at evaluation checkpoints
   and converted to a [Timed_out] outcome in {!run} — never cached. *)
exception Deadline

type ctx = {
  cx_spec : Spec.Ast.program;
  cx_graph : Agraph.Access_graph.t;
  cx_digest : string;
  cx_alloc : Arch.Allocation.t option;
}

let spec_digest p =
  Digest.to_hex (Digest.string (Spec.Printer.program_to_string p))

let make_ctx ?alloc spec =
  {
    cx_spec = spec;
    cx_graph = Agraph.Access_graph.of_program spec;
    cx_digest = spec_digest spec;
    cx_alloc = alloc;
  }

let default_alloc ~n_parts =
  Arch.Allocation.make
    (List.init n_parts (fun i ->
         if i = 0 then Arch.Catalog.i8086 else Arch.Catalog.asic_10k))

let alloc_for ctx (c : Candidate.t) =
  match ctx.cx_alloc with
  | Some a -> a
  | None -> default_alloc ~n_parts:c.Candidate.c_n_parts

let partition_of ctx (c : Candidate.t) =
  Design_search.run ~seed:c.Candidate.c_seed ~steps:c.Candidate.c_steps
    ctx.cx_graph ~n_parts:c.Candidate.c_n_parts ~bias:c.Candidate.c_bias

(* Canonical partition text: [Partition.objects] is sorted by object, so
   two equal partitions print identically however they were built. *)
let partition_repr part =
  String.concat ";"
    (Printf.sprintf "n=%d" (Partition.n_parts part)
    :: List.map
         (fun (o, i) -> Printf.sprintf "%s=%d" (Partition.obj_name o) i)
         (Partition.objects part))

let cache_key ~spec_digest ~partition ~model =
  Cache.digest_key
    [ spec_digest; partition_repr partition; Core.Model.name model ]

let max_bus_rate env plan =
  List.fold_left
    (fun acc (b : Core.Bus_plan.bus) ->
      Float.max acc (Estimate.Rates.bus_rate_mbps env b.Core.Bus_plan.bus_edges))
    0.0 plan.Core.Bus_plan.bp_buses

let quality_totals (q : Core.Quality.t) =
  List.fold_left
    (fun (pins, gates, sw, secs) (cq : Core.Quality.component_quality) ->
      ( pins + cq.Core.Quality.cq_pins,
        gates + Option.value ~default:0 cq.Core.Quality.cq_gates,
        sw + Option.value ~default:0 cq.Core.Quality.cq_software_bytes,
        secs +. cq.Core.Quality.cq_exec_seconds ))
    (0, 0, 0, 0.0) q.Core.Quality.q_components

(* A small fixed fault campaign per candidate: two seeds over the two
   cheapest-to-classify classes.  Deterministic (seeded), so it belongs
   in the memoized tail; designs that cannot complete a golden run score
   0.0 rather than failing the evaluation.  [poll] threads the
   candidate's deadline into the simulation kernels — a runaway refined
   design is cancelled mid-run and surfaces as {!Deadline} rather than
   stalling the worker until the step limit. *)
let probe_robustness ?poll (r : Core.Refiner.t) =
  let config =
    {
      Faults.Campaign.default_config with
      Faults.Campaign.cf_seeds = 2;
      cf_classes = [ Faults.Fault.Drop_handshake; Faults.Fault.Bit_flip ];
      cf_poll = poll;
    }
  in
  let expired () = match poll with Some f -> f () | None -> false in
  match Faults.Campaign.run ~config r with
  | report ->
    if
      List.exists
        (fun rn ->
          rn.Faults.Campaign.run_outcome = Faults.Campaign.Timed_out)
        report.Faults.Campaign.rp_runs
    then raise Deadline
    else report.Faults.Campaign.rp_robustness
  | exception Deadline -> raise Deadline
  | exception _ -> if expired () then raise Deadline else 0.0

(* Lint pass results memoized by the *output* text: different partitions
   of the same spec routinely refine to structurally identical model
   skeletons, and the outer (spec, partition, model) key cannot see that.
   Keyed next to the refinement entries in the same cache, under a
   distinct key domain. *)
let lint_counts ?cache refined =
  let printed = Spec.Printer.program_to_string refined in
  let compute () =
    let lint =
      Lint.Registry.run ~phase:Lint.Registry.Post ~typecheck:false ~flow:true
        refined
    in
    let by_code c =
      List.length
        (List.filter
           (fun d -> String.equal d.Spec.Diagnostic.d_code c)
           lint)
    in
    ( Spec.Diagnostic.count Spec.Diagnostic.Error lint,
      Spec.Diagnostic.count Spec.Diagnostic.Warning lint,
      by_code "LIVE005",
      by_code "LIVE006" )
  in
  match cache with
  | None -> compute ()
  | Some cache ->
    let key =
      Cache.digest_key [ "lint"; Digest.to_hex (Digest.string printed) ]
    in
    fst (Cache.find_or_add ~count_stats:false cache key compute)

(* The memoized tail: everything downstream of the partition.  Pure in
   (spec, partition, model) — exactly what the cache key covers; the
   deadline checkpoints can only abort it (via {!Deadline}, which
   propagates out of the cache so nothing transient is ever stored),
   never change its value. *)
let refine_and_measure ?cache ?poll ~checkpoint ctx alloc part
    (model : Core.Model.t) =
  match Core.Refiner.refine ctx.cx_spec ctx.cx_graph part model with
  | exception Core.Refiner.Refine_error msg -> Error (Refine_failed msg)
  | r ->
    checkpoint ();
    let check_ok =
      match Core.Check.run ~original:ctx.cx_spec r with
      | Ok () -> true
      | Error _ -> false
    in
    checkpoint ();
    let refined = r.Core.Refiner.rf_program in
    (* Structural lint of the refined output (the typecheck part is
       already inside Check.run / e_check_ok), memoized by output text. *)
    let lint_errors, lint_warnings, live_dead_stores, live_write_only =
      lint_counts ?cache refined
    in
    checkpoint ();
    let env = Estimate.Rates.make_env ctx.cx_spec alloc part in
    let plan = r.Core.Refiner.rf_plan in
    let q = Core.Quality.of_refinement ~alloc r in
    let pins, gates, sw, secs = quality_totals q in
    let cls = Classify.report ctx.cx_graph part in
    Ok
      {
        e_locals = List.length cls.Classify.locals;
        e_globals = List.length cls.Classify.globals;
        e_comm_bits = Cost.comm_bits ctx.cx_graph part;
        e_max_bus_rate = max_bus_rate env plan;
        e_bus_count = List.length r.Core.Refiner.rf_buses;
        e_memories = List.length r.Core.Refiner.rf_memories;
        e_lines = Spec.Printer.line_count refined;
        e_growth = Core.Metrics.growth ~original:ctx.cx_spec ~refined;
        e_pins = pins;
        e_gates = gates;
        e_software_bytes = sw;
        e_exec_seconds = secs;
        e_check_ok = check_ok;
        e_lint_errors = lint_errors;
        e_lint_warnings = lint_warnings;
        e_live_dead_stores = live_dead_stores;
        e_live_write_only = live_write_only;
        e_robustness = probe_robustness ?poll r;
      }

let run ?cache ?deadline_s ?poll:external_poll ctx (c : Candidate.t) =
  let started = Unix.gettimeofday () in
  let elapsed () = Unix.gettimeofday () -. started in
  (* One combined cooperative-cancellation check: the per-candidate
     deadline or an external cancel signal (a served job being
     cancelled).  Either way the outcome is the non-definitive
     [Timed_out] — never cached, retried by an unhurried rerun. *)
  let poll =
    match (deadline_s, external_poll) with
    | None, None -> None
    | Some limit, None -> Some (fun () -> elapsed () > limit)
    | None, Some f -> Some f
    | Some limit, Some f -> Some (fun () -> f () || elapsed () > limit)
  in
  let checkpoint () =
    match poll with Some f when f () -> raise Deadline | _ -> ()
  in
  match
    let alloc = alloc_for ctx c in
    (* Check before the partition search too: a cancelled or expired
       candidate must not pay a full annealing run first. *)
    checkpoint ();
    let part = partition_of ctx c in
    checkpoint ();
    let model = c.Candidate.c_model in
    let compute () =
      refine_and_measure ?cache ?poll ~checkpoint ctx alloc part model
    in
    (match cache with
    | None -> (compute (), false)
    | Some cache ->
      let key = cache_key ~spec_digest:ctx.cx_digest ~partition:part ~model in
      Cache.find_or_add cache key compute)
  with
  | outcome, cached ->
    { r_candidate = c; r_outcome = outcome; r_cached = cached;
      r_replayed = false }
  | exception Deadline ->
    {
      r_candidate = c;
      r_outcome = Error (Timed_out (elapsed ()));
      r_cached = false;
      r_replayed = false;
    }
