(** Domain-based worker pool.  Determinism strategy: items live in an
    array; workers claim indices from one [Atomic.t] counter and write
    [results.(i)], so the output depends only on [f] and the input order,
    never on domain scheduling.  Per-item exceptions are captured with
    their index and backtrace; {!map} re-raises the one with the smallest
    index after the join, which makes even the failure mode independent
    of the worker count. *)

let default_jobs () = max 1 (Domain.recommended_domain_count ())

type error = {
  e_index : int;
  e_exn : exn;
  e_backtrace : Printexc.raw_backtrace;
}

let error_to_string e =
  let bt = Printexc.raw_backtrace_to_string e.e_backtrace in
  Printf.sprintf "item %d raised %s%s" e.e_index (Printexc.to_string e.e_exn)
    (if bt = "" then "" else "\n" ^ bt)

(* The shared core: claim indices from one counter, run [g] (which never
   raises — it captures), join.  [jobs <= 1] runs inline on the calling
   domain with identical results. *)
let run_indexed ~jobs ~g arr =
  let n = Array.length arr in
  let results = Array.make n None in
  if jobs <= 1 || n = 1 then
    Array.iteri (fun i x -> results.(i) <- Some (g i x)) arr
  else begin
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          results.(i) <- Some (g i arr.(i));
          loop ()
        end
      in
      loop ()
    in
    let spawned = List.init (min jobs n - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join spawned
  end;
  Array.to_list results
  |> List.map (function
       | Some r -> r
       | None -> assert false (* every index was claimed *))

let try_map ~jobs ~f items =
  if jobs < 1 then invalid_arg "Pool.map: jobs < 1";
  let arr = Array.of_list items in
  if Array.length arr = 0 then []
  else
    run_indexed ~jobs arr ~g:(fun i x ->
        match f x with
        | v -> Ok v
        | exception e ->
          let bt = Printexc.get_raw_backtrace () in
          Error { e_index = i; e_exn = e; e_backtrace = bt })

let map ~jobs ~f items =
  try_map ~jobs ~f items
  |> List.map (function
       | Ok v -> v
       | Error e -> Printexc.raise_with_backtrace e.e_exn e.e_backtrace)

let iter ~jobs ~f items = ignore (map ~jobs ~f:(fun x -> f x) items)

(* --- supervision -------------------------------------------------------- *)

type failure = {
  f_index : int;
  f_attempts : int;
  f_exn : string;
  f_backtrace : string;
}

type supervisor = {
  sv_retries : int;
  sv_backoff_s : float;
  sv_max_backoff_s : float;
}

let default_supervisor =
  { sv_retries = 2; sv_backoff_s = 0.05; sv_max_backoff_s = 1.0 }

let backoff_delay sv attempt =
  Float.min sv.sv_max_backoff_s
    (sv.sv_backoff_s *. (2.0 ** float_of_int (attempt - 1)))

let supervise ?(supervisor = default_supervisor) ~jobs ~f items =
  if jobs < 1 then invalid_arg "Pool.supervise: jobs < 1";
  if supervisor.sv_retries < 0 then
    invalid_arg "Pool.supervise: retries < 0";
  let arr = Array.of_list items in
  if Array.length arr = 0 then []
  else
    run_indexed ~jobs arr ~g:(fun i x ->
        let rec attempt k =
          match f x with
          | v -> Ok v
          | exception e ->
            let bt =
              Printexc.raw_backtrace_to_string (Printexc.get_raw_backtrace ())
            in
            if k > supervisor.sv_retries then
              (* Quarantined: the item failed its first run and every
                 retry — report it and leave the rest of the sweep
                 untouched. *)
              Error
                {
                  f_index = i;
                  f_attempts = k;
                  f_exn = Printexc.to_string e;
                  f_backtrace = bt;
                }
            else begin
              Unix.sleepf (backoff_delay supervisor k);
              attempt (k + 1)
            end
        in
        attempt 1)
