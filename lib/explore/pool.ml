(** Domain-based worker pool.  Determinism strategy: items live in an
    array; workers claim indices from one [Atomic.t] counter and write
    [results.(i)], so the output depends only on [f] and the input order,
    never on domain scheduling.  Per-item exceptions are captured and the
    one with the smallest index is re-raised after the join, which makes
    even the failure mode independent of the worker count. *)

let default_jobs () = max 1 (Domain.recommended_domain_count ())

let map ~jobs ~f items =
  if jobs < 1 then invalid_arg "Pool.map: jobs < 1";
  let arr = Array.of_list items in
  let n = Array.length arr in
  if n = 0 then []
  else if jobs = 1 || n = 1 then List.map f items
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          (results.(i) <-
             Some
               (match f arr.(i) with
               | v -> Ok v
               | exception e -> Error e));
          loop ()
        end
      in
      loop ()
    in
    let spawned =
      List.init (min jobs n - 1) (fun _ -> Domain.spawn worker)
    in
    worker ();
    List.iter Domain.join spawned;
    Array.to_list results
    |> List.map (function
         | Some (Ok v) -> v
         | Some (Error e) -> raise e
         | None -> assert false (* every index was claimed *))
  end

let iter ~jobs ~f items = ignore (map ~jobs ~f:(fun x -> f x) items)
