(** Content-hashed memoization of candidate evaluations.  A cache maps a
    key — the hex digest of (spec digest, canonical partition, model) as
    built by {!Evaluate} — to a marshalled value, in a mutex-protected
    in-memory table optionally backed by a directory on disk (one file
    per key, written atomically), so repeated sweeps and annealing
    restarts never re-refine identical candidates, across processes.

    The value type is the caller's: each {e key domain} must store one
    type only (the marshalling round-trip is untyped), so callers mixing
    entry kinds in one cache must separate them by a key-component
    prefix, as {!Evaluate} does for its refinement and lint entries.
    Values must be marshallable (no closures); {!Evaluate.metrics} is.

    Thread-safety: all operations may be called concurrently from
    multiple domains.  Two domains racing on the same missing key may
    both compute it; both observe the same (deterministic) value, so
    results never depend on the interleaving. *)

type t

val create :
  ?dir:string -> ?max_entries:int -> ?max_bytes:int -> unit -> t
(** A fresh, empty cache.  With [dir], entries are also persisted under
    that directory (created if missing) and looked up there on an
    in-memory miss.  Disk entries are length-prefixed and checksummed
    behind a format-version line, so an unreadable, truncated (e.g. a
    partial write surviving a crash) or bit-rotted file reads as a miss
    — never as a [Marshal] failure — and is evicted on recompute.

    [max_entries] / [max_bytes] bound the {e in-memory} resident set: a
    long-lived process (the [mrefine serve] daemon) cannot grow without
    limit under sustained traffic.  When either cap is exceeded the
    least-recently-used entries are shed from memory — entries backed by
    [dir] were already persisted at add time, so eviction demotes them
    to disk and a later lookup silently re-promotes them; without [dir]
    an evicted entry is recomputed on its next miss.  Disk usage is
    never bounded by these caps.
    @raise Invalid_argument when a cap is < 1. *)

val digest_key : string list -> string
(** Stable hex key of the given components (order-sensitive). *)

val find_or_add : ?count_stats:bool -> t -> string -> (unit -> 'a) -> 'a * bool
(** [find_or_add t key compute] returns the cached value for [key]
    ([..., true]) or runs [compute], stores the result, and returns it
    ([..., false]).  Each call counts as one lookup in {!stats} unless
    [~count_stats:false] — secondary entries (e.g. memoized lint passes)
    opt out so sweep hit/miss accounting keeps meaning evaluations. *)

val mem : t -> string -> bool
(** Whether [key] is resident in memory or on disk (not counted as a
    lookup). *)

type stats = { hits : int; misses : int }

val stats : t -> stats

val resident_entries : t -> int
(** Entries currently held in memory (excluding disk-only entries). *)

val resident_bytes : t -> int
(** Approximate resident payload size: summed key + blob bytes. *)

val evictions : t -> int
(** LRU evictions performed since creation. *)

val hit_rate : t -> float
(** [hits / (hits + misses)]; 0 when no lookups happened. *)

val reset_stats : t -> unit
(** Zero the hit/miss counters, keeping the entries. *)
