(** Content-hashed memoization of candidate evaluations.  A cache maps a
    key — the hex digest of (spec digest, canonical partition, model) as
    built by {!Evaluate} — to a marshalled value, in a mutex-protected
    in-memory table optionally backed by a directory on disk (one file
    per key, written atomically), so repeated sweeps and annealing
    restarts never re-refine identical candidates, across processes.

    The value type is the caller's: each {e key domain} must store one
    type only (the marshalling round-trip is untyped), so callers mixing
    entry kinds in one cache must separate them by a key-component
    prefix, as {!Evaluate} does for its refinement and lint entries.
    Values must be marshallable (no closures); {!Evaluate.metrics} is.

    Thread-safety: all operations may be called concurrently from
    multiple domains.  Two domains racing on the same missing key may
    both compute it; both observe the same (deterministic) value, so
    results never depend on the interleaving. *)

type t

val create : ?dir:string -> unit -> t
(** A fresh, empty cache.  With [dir], entries are also persisted under
    that directory (created if missing) and looked up there on an
    in-memory miss.  Disk entries are length-prefixed and checksummed
    behind a format-version line, so an unreadable, truncated (e.g. a
    partial write surviving a crash) or bit-rotted file reads as a miss
    — never as a [Marshal] failure — and is evicted on recompute. *)

val digest_key : string list -> string
(** Stable hex key of the given components (order-sensitive). *)

val find_or_add : ?count_stats:bool -> t -> string -> (unit -> 'a) -> 'a * bool
(** [find_or_add t key compute] returns the cached value for [key]
    ([..., true]) or runs [compute], stores the result, and returns it
    ([..., false]).  Each call counts as one lookup in {!stats} unless
    [~count_stats:false] — secondary entries (e.g. memoized lint passes)
    opt out so sweep hit/miss accounting keeps meaning evaluations. *)

val mem : t -> string -> bool
(** Whether [key] is resident in memory or on disk (not counted as a
    lookup). *)

type stats = { hits : int; misses : int }

val stats : t -> stats

val hit_rate : t -> float
(** [hits / (hits + misses)]; 0 when no lookups happened. *)

val reset_stats : t -> unit
(** Zero the hit/miss counters, keeping the entries. *)
