(** A fixed-size worker pool over OCaml 5 domains for embarrassingly
    parallel evaluation.  The pool guarantees a {e deterministic} result:
    [map ~jobs ~f items] returns exactly [List.map f items] — results in
    input order — no matter how many domains execute it or how the
    scheduler interleaves them.  Work is handed out through a shared
    atomic counter, so long and short jobs balance automatically.

    Two failure disciplines are offered: {!map}/{!try_map} treat an
    exception as fatal to the item (and {!map} to the whole call), while
    {!supervise} isolates worker exceptions, retries each failing item
    with bounded exponential backoff and quarantines repeat offenders as
    structured {!failure}s — the degraded-but-valid mode long sweeps
    run under. *)

val default_jobs : unit -> int
(** The runtime's recommended domain count for this machine (at least 1). *)

(** What a failed item raised, where, and from where: the input position
    survives into the payload so callers can report which item died. *)
type error = {
  e_index : int;  (** position of the item in the input list *)
  e_exn : exn;
  e_backtrace : Printexc.raw_backtrace;
      (** captured at the raise point inside the worker *)
}

val error_to_string : error -> string
(** ["item N raised exn"] plus the backtrace when one was recorded. *)

val map : jobs:int -> f:('a -> 'b) -> 'a list -> 'b list
(** Apply [f] to every item on [min jobs (length items)] domains (the
    calling domain counts as one; [jobs <= 1] runs everything inline).
    Results are returned in input order.  If [f] raises, the exception
    with the {e smallest input index} is re-raised after all domains have
    drained — with its original backtrace, also independent of the worker
    count.
    @raise Invalid_argument when [jobs < 1]. *)

val try_map :
  jobs:int -> f:('a -> 'b) -> 'a list -> ('b, error) result list
(** {!map} without the re-raise: every item's outcome in input order,
    exceptions captured as {!error}s.
    @raise Invalid_argument when [jobs < 1]. *)

val iter : jobs:int -> f:('a -> unit) -> 'a list -> unit
(** [map] for side effects only.  [f] must be safe to run concurrently. *)

(** {1 Supervised execution} *)

(** A quarantined item: it failed its first run and every retry. *)
type failure = {
  f_index : int;  (** position of the item in the input list *)
  f_attempts : int;  (** total attempts, first try included *)
  f_exn : string;  (** printed exception of the last attempt *)
  f_backtrace : string;  (** backtrace of the last attempt, possibly [""] *)
}

type supervisor = {
  sv_retries : int;  (** extra attempts after the first failure *)
  sv_backoff_s : float;  (** delay before the first retry *)
  sv_max_backoff_s : float;  (** cap on the doubling backoff *)
}

val default_supervisor : supervisor
(** 2 retries, 0.05 s initial backoff, 1 s cap. *)

val backoff_delay : supervisor -> int -> float
(** The delay slept after failed attempt [k] (1-based):
    [min max_backoff (backoff * 2^(k-1))]. *)

val supervise :
  ?supervisor:supervisor ->
  jobs:int ->
  f:('a -> 'b) ->
  'a list ->
  ('b, failure) result list
(** Run every item under supervision: an exception from [f] is confined
    to its item and retried up to [sv_retries] times with exponential
    backoff; an item that exhausts its retries is quarantined as a
    {!failure} while every other item still completes.  Results are in
    input order and — for a deterministic [f] — independent of [jobs].
    @raise Invalid_argument when [jobs < 1] or [sv_retries < 0]. *)
