(** A fixed-size worker pool over OCaml 5 domains for embarrassingly
    parallel evaluation.  The pool guarantees a {e deterministic} result:
    [map ~jobs ~f items] returns exactly [List.map f items] — results in
    input order — no matter how many domains execute it or how the
    scheduler interleaves them.  Work is handed out through a shared
    atomic counter, so long and short jobs balance automatically. *)

val default_jobs : unit -> int
(** The runtime's recommended domain count for this machine (at least 1). *)

val map : jobs:int -> f:('a -> 'b) -> 'a list -> 'b list
(** Apply [f] to every item on [min jobs (length items)] domains (the
    calling domain counts as one; [jobs <= 1] runs everything inline).
    Results are returned in input order.  If [f] raises, the exception
    with the {e smallest input index} is re-raised after all domains have
    drained — also independent of the worker count.
    @raise Invalid_argument when [jobs < 1]. *)

val iter : jobs:int -> f:('a -> unit) -> 'a list -> unit
(** [map] for side effects only.  [f] must be safe to run concurrently. *)
