(** A candidate point of the design space: which partition to search for
    (annealing seed and local/global bias, {!Partitioning.Design_search})
    and which of the paper's four implementation models to refine it to.
    The candidate space of a sweep is the cross product
    [seeds x biases x models]; enumeration order is fixed so every sweep
    — at any worker count — visits and reports candidates identically. *)

type t = {
  c_seed : int;  (** seed of the partition annealing run *)
  c_bias : Partitioning.Design_search.bias;
      (** target local/global variable balance *)
  c_model : Core.Model.t;  (** implementation model to refine to *)
  c_n_parts : int;  (** number of system components *)
  c_steps : int;  (** annealing steps of the partition search *)
}

val enumerate :
  ?n_parts:int ->
  ?steps:int ->
  ?biases:Partitioning.Design_search.bias list ->
  seeds:int list ->
  models:Core.Model.t list ->
  unit ->
  t list
(** The cross product in a fixed, deterministic order: seeds outermost,
    then biases (paper order: balanced, local, global), then models
    (paper order).  Duplicates in the inputs are preserved.  [n_parts]
    defaults to 2 (the paper's processor + ASIC), [steps] to 4000. *)

val bias_name : Partitioning.Design_search.bias -> string
(** ["balanced"], ["local"] or ["global"]. *)

val bias_of_string : string -> Partitioning.Design_search.bias option
(** Inverse of {!bias_name}, case-insensitive. *)

val all_biases : Partitioning.Design_search.bias list
(** The three biases in enumeration order. *)

val label : t -> string
(** Short stable identifier, e.g. ["seed5/local/model2"]. *)

val compare : t -> t -> int
(** Total order consistent with {!enumerate}'s output order for a given
    candidate space. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
