(** Candidate points of the design space; see the interface for the
    enumeration-order contract. *)

open Partitioning

type t = {
  c_seed : int;
  c_bias : Design_search.bias;
  c_model : Core.Model.t;
  c_n_parts : int;
  c_steps : int;
}

let all_biases =
  [ Design_search.Balanced; Design_search.Mostly_local;
    Design_search.Mostly_global ]

let bias_name = function
  | Design_search.Balanced -> "balanced"
  | Design_search.Mostly_local -> "local"
  | Design_search.Mostly_global -> "global"

let bias_of_string s =
  match String.lowercase_ascii s with
  | "balanced" -> Some Design_search.Balanced
  | "local" | "mostly-local" | "mostly_local" -> Some Design_search.Mostly_local
  | "global" | "mostly-global" | "mostly_global" ->
    Some Design_search.Mostly_global
  | _ -> None

let bias_rank = function
  | Design_search.Balanced -> 0
  | Design_search.Mostly_local -> 1
  | Design_search.Mostly_global -> 2

let model_rank m =
  match m with
  | Core.Model.Model1 -> 0
  | Core.Model.Model2 -> 1
  | Core.Model.Model3 -> 2
  | Core.Model.Model4 -> 3

let enumerate ?(n_parts = 2) ?(steps = 4000) ?(biases = all_biases) ~seeds
    ~models () =
  List.concat_map
    (fun seed ->
      List.concat_map
        (fun bias ->
          List.map
            (fun model ->
              {
                c_seed = seed;
                c_bias = bias;
                c_model = model;
                c_n_parts = n_parts;
                c_steps = steps;
              })
            models)
        biases)
    seeds

let label c =
  Printf.sprintf "seed%d/%s/%s" c.c_seed (bias_name c.c_bias)
    (Core.Model.name c.c_model)

let compare a b =
  let cmp =
    [
      Stdlib.compare a.c_seed b.c_seed;
      Stdlib.compare (bias_rank a.c_bias) (bias_rank b.c_bias);
      Stdlib.compare (model_rank a.c_model) (model_rank b.c_model);
      Stdlib.compare a.c_n_parts b.c_n_parts;
      Stdlib.compare a.c_steps b.c_steps;
    ]
  in
  match List.find_opt (fun c -> c <> 0) cmp with Some c -> c | None -> 0

let equal a b = compare a b = 0

let pp ppf c = Format.pp_print_string ppf (label c)
