(** Pareto-frontier computation over minimized float objectives.  All
    functions are pure and stable: output order is derived only from the
    input order and objective values, never from evaluation order, which
    keeps sweep reports identical across worker counts. *)

val dominates : float array -> float array -> bool
(** [dominates a b]: [a] is no worse than [b] in every objective and
    strictly better in at least one (minimization).
    @raise Invalid_argument on different lengths. *)

val frontier : objectives:('a -> float array) -> 'a list -> 'a list
(** The non-dominated subset, in input order.  Items with identical
    objective vectors do not dominate each other, so all of them stay on
    the frontier. *)

val sort : objectives:('a -> float array) -> 'a list -> 'a list
(** Stable sort by lexicographic comparison of the objective vectors
    (ascending); ties keep input order. *)

val rank : objectives:('a -> float array) -> 'a list -> ('a * int) list
(** Non-dominated sorting: every item with its frontier depth — 0 for
    the Pareto frontier, 1 for the frontier once layer 0 is removed, and
    so on.  Input order is preserved. *)
