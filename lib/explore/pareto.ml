(** Pareto dominance, frontier extraction and non-dominated sorting; the
    O(n^2) scans are fine at design-sweep sizes (tens to thousands). *)

let dominates a b =
  if Array.length a <> Array.length b then
    invalid_arg "Pareto.dominates: objective vectors of different lengths";
  let no_worse = ref true and better = ref false in
  Array.iteri
    (fun i x ->
      if x > b.(i) then no_worse := false
      else if x < b.(i) then better := true)
    a;
  !no_worse && !better

let frontier ~objectives items =
  let objs = List.map objectives items in
  List.filteri
    (fun i _ ->
      let oi = List.nth objs i in
      not (List.exists (fun oj -> dominates oj oi) objs))
    items

let compare_lex a b =
  let n = Array.length a and m = Array.length b in
  let rec go i =
    if i >= n || i >= m then Stdlib.compare n m
    else
      match Float.compare a.(i) b.(i) with 0 -> go (i + 1) | c -> c
  in
  go 0

let sort ~objectives items =
  List.stable_sort
    (fun x y -> compare_lex (objectives x) (objectives y))
    items

let rank ~objectives items =
  let arr = Array.of_list (List.map (fun x -> (x, objectives x)) items) in
  let n = Array.length arr in
  let depth = Array.make n (-1) in
  let remaining = ref n and layer = ref 0 in
  while !remaining > 0 do
    (* Frontier of the items not yet assigned a layer. *)
    let this_layer =
      List.filter
        (fun i ->
          depth.(i) < 0
          && not
               (List.exists
                  (fun j ->
                    depth.(j) < 0 && dominates (snd arr.(j)) (snd arr.(i)))
                  (List.init n Fun.id)))
        (List.init n Fun.id)
    in
    List.iter (fun i -> depth.(i) <- !layer) this_layer;
    remaining := !remaining - List.length this_layer;
    incr layer
  done;
  List.mapi (fun i (x, _) -> (x, depth.(i))) (Array.to_list arr)
