(** A whole design-space sweep: enumerate candidates, evaluate them on a
    supervised {!Pool} of domains through a shared {!Cache}, and report
    the Pareto frontier over (max bus rate, spec growth, pins + gates,
    fragility) — all minimized.

    Determinism guarantee: for a fixed configuration and specification,
    the result — candidate order, every metric, the frontier and both
    report formats — is identical at any [jobs] count.  Only [sw_hits] /
    [sw_misses] may differ run-to-run (a warm persistent cache turns
    misses into hits); the values themselves never change.  The same
    holds across a kill-and-resume: a sweep resumed from its checkpoint
    journal reports the same results and frontier the uninterrupted
    sweep would have (replayed outcomes are flagged, never altered).

    Degradation guarantee: per-candidate deadlines and worker crashes
    never abort the sweep — the affected candidates surface as
    [Timed_out] / [Crashed] rows, the frontier is computed from the
    survivors, and [sw_coverage] < 1.0 plus the [sw_failures] taxonomy
    make the degradation explicit in both report formats. *)

type config = {
  seeds : int list;  (** partition-search seeds *)
  biases : Partitioning.Design_search.bias list;
  models : Core.Model.t list;
  n_parts : int;
  steps : int;  (** annealing steps per partition search *)
  jobs : int;  (** worker domains; 1 = sequential *)
  deadline_s : float option;
      (** per-candidate wall-clock budget ({!Evaluate.run}) *)
  retries : int;  (** supervised retries per crashing candidate *)
  backoff_s : float;  (** initial retry backoff ({!Pool.supervise}) *)
}

val default_config : config
(** Seeds [1;2;3], all biases, all four models, 2 parts, 4000 steps,
    1 job, no deadline, the {!Pool.default_supervisor} retry policy. *)

type t = {
  sw_results : Evaluate.result list;  (** enumeration order *)
  sw_frontier : Evaluate.result list;
      (** Pareto-optimal successful candidates, sorted by objectives *)
  sw_hits : int;
  sw_misses : int;
  sw_jobs : int;
  sw_replayed : int;  (** results replayed from the resume journal *)
  sw_coverage : float;
      (** definitive results / candidates; < 1.0 when anything timed out
          or crashed *)
  sw_failures : (string * int) list;
      (** failure taxonomy: {!Evaluate.failure_kind} → count, sorted *)
}

val objectives : Evaluate.metrics -> float array
(** The minimized objective vector:
    [[| max bus rate; growth; pins + gates; fragility |]]. *)

val journal_meta : config -> Spec.Ast.program -> string
(** The {!Checkpoint.Journal} meta string binding a sweep journal to the
    specification and the per-candidate search parameters ([n_parts],
    [steps]) — not to the candidate list, so a resumed sweep with more
    seeds or models still reuses every overlapping result. *)

val run :
  ?cache:Cache.t ->
  ?alloc:Arch.Allocation.t ->
  ?journal:Checkpoint.Journal.t ->
  ?evaluate:(Candidate.t -> Evaluate.result) ->
  config ->
  Spec.Ast.program ->
  t
(** Run the sweep.  Without [cache] an in-memory cache private to this
    sweep is used (identical-partition candidates still share work);
    pass a persistent cache to reuse results across sweeps and
    processes.

    With [journal] (opened under {!journal_meta}), candidates already
    recorded replay without evaluation and every definitive new outcome
    is checkpointed (fsynced) the moment its evaluation completes —
    kill the process at any point and a rerun with the same journal
    continues from the frontier of completed work.

    [evaluate] overrides the per-candidate evaluation function — the
    supervision, checkpointing and reporting paths are exercised by
    tests through it.  It must be deterministic per candidate and safe
    to call concurrently; the default is {!Evaluate.run} with this
    sweep's cache and deadline. *)

val to_text : ?top:int -> t -> string
(** Human-readable report: a coverage/failure summary, a per-candidate
    table and the frontier.  [top] truncates the candidate table (0 or
    absent = all rows). *)

val to_json : ?top:int -> t -> string
(** The same report as a self-contained JSON document (including
    [coverage], [replayed] and the [failures] taxonomy). *)
