(** A whole design-space sweep: enumerate candidates, evaluate them on a
    {!Pool} of domains through a shared {!Cache}, and report the Pareto
    frontier over (max bus rate, spec growth, pins + gates) — all three
    minimized.

    Determinism guarantee: for a fixed configuration and specification,
    the result — candidate order, every metric, the frontier and both
    report formats — is identical at any [jobs] count.  Only [sw_hits] /
    [sw_misses] may differ run-to-run (a warm persistent cache turns
    misses into hits); the values themselves never change. *)

type config = {
  seeds : int list;  (** partition-search seeds *)
  biases : Partitioning.Design_search.bias list;
  models : Core.Model.t list;
  n_parts : int;
  steps : int;  (** annealing steps per partition search *)
  jobs : int;  (** worker domains; 1 = sequential *)
}

val default_config : config
(** Seeds [1;2;3], all biases, all four models, 2 parts, 4000 steps,
    1 job. *)

type t = {
  sw_results : Evaluate.result list;  (** enumeration order *)
  sw_frontier : Evaluate.result list;
      (** Pareto-optimal successful candidates, sorted by objectives *)
  sw_hits : int;
  sw_misses : int;
  sw_jobs : int;
}

val objectives : Evaluate.metrics -> float array
(** The minimized objective vector:
    [[| max bus rate; growth; pins + gates |]]. *)

val run :
  ?cache:Cache.t -> ?alloc:Arch.Allocation.t -> config ->
  Spec.Ast.program -> t
(** Run the sweep.  Without [cache] an in-memory cache private to this
    sweep is used (identical-partition candidates still share work);
    pass a persistent cache to reuse results across sweeps and
    processes. *)

val to_text : ?top:int -> t -> string
(** Human-readable report: a per-candidate table and the frontier.
    [top] truncates the candidate table (0 or absent = all rows). *)

val to_json : ?top:int -> t -> string
(** The same report as a self-contained JSON document. *)
