(** Turning fault specifications into simulation hooks. *)

val hooks : Fault.spec list -> Sim.Engine.hooks
(** Hooks injecting the given faults: the signal-update intercept applies
    drop / delay / stuck-at decisions (occurrence-counted per signal),
    the post-commit hook re-delivers delayed updates and flips memory
    bits.  The hooks carry mutable state — build a fresh value for every
    simulation run. *)

val counting : unit -> Sim.Engine.hooks * (string, int) Hashtbl.t
(** Pass-through hooks that count every signal's committed updates, for
    the golden (fault-free) run: the table tells the campaign how many
    occurrences each signal has to aim at. *)
