(** Fault specifications: the individual hardware faults a campaign
    injects into a simulated refined design, and the classes a campaign
    draws them from. *)

open Spec

type spec =
  | Flip_bit of { fl_var : string; fl_bit : int; fl_delta : int }
      (** flip bit [fl_bit] of memory storage [fl_var] right after delta
          cycle [fl_delta] commits *)
  | Drop_update of { du_signal : string; du_occurrence : int }
      (** lose the [du_occurrence]-th committed update of a signal
          (1-based) — a lost handshake edge *)
  | Delay_update of { dl_signal : string; dl_occurrence : int; dl_deltas : int }
      (** deliver the [dl_occurrence]-th update [dl_deltas] delta cycles
          late (dropped from its own commit and re-delivered) *)
  | Stuck_at of { st_signal : string; st_value : Ast.value; st_delta : int }
      (** from delta [st_delta] on, every commit of the signal is forced
          to [st_value] — a stuck bus line *)

type cls =
  | Bit_flip
  | Multi_bit_flip
  | Drop_handshake
  | Delay_handshake
  | Stuck_line
  | Grant_starvation

val all_classes : cls list
val cls_name : cls -> string
val cls_of_name : string -> cls option
val describe : spec -> string
