(** Deterministic, seeded fault-injection campaigns against a refined
    design.  A campaign first performs one golden (fault-free) run to
    learn the design's commit schedule and reference behavior, then for
    every seed and every fault class injects one randomly drawn (but
    seed-reproducible) fault and classifies the outcome against the
    golden run:

    - {!Survived} — same observable behavior, no recovery action needed;
    - {!Detected_recovered} — same observable behavior, reached through
      watchdog retries or TMR repairs (reserved-marker count grew);
    - {!Deadlock} — the design hung (including deliberate [WDG_ABORT]
      fail-stops of the hardened protocol);
    - {!Silent_corruption} — the design completed but its filtered trace
      or final memory state differs from the golden run: the worst case;
    - {!Step_limit} — the budget ran out before an outcome was reached.

    The classification filters the reserved recovery markers
    ({!Core.Protocol.reserved_tag_prefixes}) out of both traces and
    majority-votes TMR-shadowed storage before comparing, so a hardened
    design is judged on its observable behavior, not its bookkeeping. *)

open Spec

type outcome =
  | Survived
  | Detected_recovered
  | Deadlock
  | Silent_corruption
  | Step_limit
  | Timed_out

let outcome_name = function
  | Survived -> "survived"
  | Detected_recovered -> "recovered"
  | Deadlock -> "deadlock"
  | Silent_corruption -> "silent-corruption"
  | Step_limit -> "step-limit"
  | Timed_out -> "timed-out"

let all_outcomes =
  [
    Survived;
    Detected_recovered;
    Deadlock;
    Silent_corruption;
    Step_limit;
    Timed_out;
  ]

type run = {
  run_seed : int;
  run_class : Fault.cls;
  run_faults : Fault.spec list;
  run_outcome : outcome;
  run_deltas : int;
}

type report = {
  rp_design : string;  (** refined program name *)
  rp_hardened : bool;
  rp_seeds : int;
  rp_runs : run list;
  rp_robustness : float;
      (** fraction of runs classified survived or recovered *)
}

type config = {
  cf_seeds : int;  (** number of seeded rounds, one fault per class each *)
  cf_base_seed : int;
  cf_classes : Fault.cls list;
  cf_sim : Sim.Engine.config;  (** budget of the golden run *)
  cf_deadline_s : float option;
      (** wall-clock budget of the whole campaign: once exceeded, the
          running simulation is cancelled and every remaining run is
          classified {!Timed_out} *)
  cf_poll : (unit -> bool) option;
      (** external cooperative cancellation, polled with the deadline *)
  cf_ordering : Sim.Memord.policy;
      (** port-ordering semantics of the design's multi-port memories:
          every run of the campaign — golden and faulty alike — executes
          under this policy with the same scheduler seed, so a hardened
          design is judged on whether its observable behavior stays
          interleaving-independent *)
}

let default_config =
  {
    cf_seeds = 8;
    cf_base_seed = 1;
    cf_classes = Fault.all_classes;
    cf_sim = Sim.Engine.default_config;
    cf_deadline_s = None;
    cf_poll = None;
    cf_ordering = Sim.Memord.Sc;
  }

(* Port ownership under a weak ordering: every line of a refined bus
   belongs to the port named by its bus label. *)
let port_of_buses (buses : Core.Refiner.bus_inst list) name =
  List.find_map
    (fun (bi : Core.Refiner.bus_inst) ->
      let bs = bi.Core.Refiner.bi_signals in
      if
        List.exists (String.equal name)
          [
            bs.Core.Protocol.bs_start; bs.Core.Protocol.bs_done;
            bs.Core.Protocol.bs_rd; bs.Core.Protocol.bs_wr;
            bs.Core.Protocol.bs_addr; bs.Core.Protocol.bs_data;
          ]
      then Some bs.Core.Protocol.bs_label
      else None)
    buses

(* --- target enumeration ------------------------------------------------ *)

(** What a campaign can aim at, enumerated from the refined design. *)
type targets = {
  tg_handshakes : string list;
      (** [B_start] / [B_done] control signals and bus [start] / [done]
          lines with at least one golden commit *)
  tg_lines : (string * int) list;
      (** stuck-at candidates: bus control / address / data lines with
          their width (0 = boolean) *)
  tg_storage : (string * int) list;
      (** memory storage scalars with their width *)
  tg_acks : string list;  (** arbiter grant signals *)
}

let has_suffix suffix s =
  let ls = String.length suffix and l = String.length s in
  l >= ls && String.equal (String.sub s (l - ls) ls) suffix

let has_prefix prefix s =
  let lp = String.length prefix and l = String.length s in
  l >= lp && String.equal (String.sub s 0 lp) prefix

let rec find_behavior name (b : Ast.behavior) =
  if String.equal b.Ast.b_name name then Some b
  else List.find_map (find_behavior name) (Behavior.children b)

(* Storage of a generated memory: the declarations of the memory
   behavior's root node (a storage leaf or the shared [par] vars),
   excluding TMR shadows.  Scalars only — array flips would need indexed
   probe access. *)
let storage_of (p : Ast.program) mem_name =
  match find_behavior mem_name p.Ast.p_top with
  | None -> []
  | Some b ->
    List.filter_map
      (fun (v : Ast.var_decl) ->
        if
          has_suffix "_r1" v.Ast.v_name
          || has_suffix "_r2" v.Ast.v_name
          || has_prefix "wdg_" v.Ast.v_name
        then None
        else
          match v.Ast.v_ty with
          | Ast.TBool -> Some (v.Ast.v_name, 1)
          | Ast.TInt w -> Some (v.Ast.v_name, w)
          | Ast.TArray _ -> None)
      b.Ast.b_vars

let enumerate (r : Core.Refiner.t) occurrences =
  let committed s = Hashtbl.mem occurrences s in
  let bus_handshakes =
    List.concat_map
      (fun (bi : Core.Refiner.bus_inst) ->
        let bs = bi.Core.Refiner.bi_signals in
        [ bs.Core.Protocol.bs_start; bs.Core.Protocol.bs_done ])
      r.Core.Refiner.rf_buses
  in
  let ctrl_handshakes =
    List.filter_map
      (fun (s : Ast.sig_decl) ->
        if
          (has_suffix "_start" s.Ast.s_name || has_suffix "_done" s.Ast.s_name)
          && not (List.mem s.Ast.s_name bus_handshakes)
        then Some s.Ast.s_name
        else None)
      r.Core.Refiner.rf_program.Ast.p_signals
  in
  let lines =
    List.concat_map
      (fun (bi : Core.Refiner.bus_inst) ->
        let bs = bi.Core.Refiner.bi_signals in
        [
          (bs.Core.Protocol.bs_start, 0);
          (bs.Core.Protocol.bs_done, 0);
          (bs.Core.Protocol.bs_addr, bs.Core.Protocol.bs_addr_width);
          (bs.Core.Protocol.bs_data, bs.Core.Protocol.bs_data_width);
        ])
      r.Core.Refiner.rf_buses
  in
  let storage =
    List.concat_map
      (storage_of r.Core.Refiner.rf_program)
      r.Core.Refiner.rf_memories
  in
  let acks =
    List.concat_map
      (fun (bi : Core.Refiner.bus_inst) ->
        match bi.Core.Refiner.bi_arbiter with
        | None -> []
        | Some arb ->
          List.map
            (fun (rq : Core.Arbiter.requester) -> rq.Core.Arbiter.rq_ack)
            arb.Core.Arbiter.arb_requesters)
      r.Core.Refiner.rf_buses
  in
  {
    tg_handshakes =
      List.filter committed (bus_handshakes @ ctrl_handshakes);
    tg_lines = List.filter (fun (s, _) -> committed s) lines;
    tg_storage = storage;
    tg_acks = List.filter committed acks;
  }

(* --- fault drawing ----------------------------------------------------- *)

let count occurrences s =
  Option.value ~default:0 (Hashtbl.find_opt occurrences s)

let draw_flip rng ~golden_deltas ~storage =
  let name, width = Partitioning.Rng.choose rng storage in
  Fault.Flip_bit
    {
      fl_var = name;
      fl_bit = Partitioning.Rng.int rng (max 1 width);
      fl_delta = 1 + Partitioning.Rng.int rng (max 1 golden_deltas);
    }

(** Draw the fault list of one run.  [None] when the design offers no
    target of this class (e.g. no arbiter to starve). *)
let draw rng ~targets ~occurrences ~golden_deltas cls =
  match cls with
  | Fault.Bit_flip ->
    if targets.tg_storage = [] then None
    else Some [ draw_flip rng ~golden_deltas ~storage:targets.tg_storage ]
  | Fault.Multi_bit_flip ->
    if targets.tg_storage = [] then None
    else
      let n = 2 + Partitioning.Rng.int rng 2 in
      Some
        (List.init n (fun _ ->
             draw_flip rng ~golden_deltas ~storage:targets.tg_storage))
  | Fault.Drop_handshake ->
    if targets.tg_handshakes = [] then None
    else
      let s = Partitioning.Rng.choose rng targets.tg_handshakes in
      Some
        [
          Fault.Drop_update
            {
              du_signal = s;
              du_occurrence =
                1 + Partitioning.Rng.int rng (max 1 (count occurrences s));
            };
        ]
  | Fault.Delay_handshake ->
    if targets.tg_handshakes = [] then None
    else
      let s = Partitioning.Rng.choose rng targets.tg_handshakes in
      Some
        [
          Fault.Delay_update
            {
              dl_signal = s;
              dl_occurrence =
                1 + Partitioning.Rng.int rng (max 1 (count occurrences s));
              dl_deltas = 2 + Partitioning.Rng.int rng 40;
            };
        ]
  | Fault.Stuck_line ->
    if targets.tg_lines = [] then None
    else
      let s, width = Partitioning.Rng.choose rng targets.tg_lines in
      let value =
        if width = 0 then Ast.VBool (Partitioning.Rng.bool rng)
        else Ast.VInt (Partitioning.Rng.int rng (1 lsl min width 8))
      in
      Some
        [
          Fault.Stuck_at
            {
              st_signal = s;
              st_value = value;
              st_delta = Partitioning.Rng.int rng (max 1 golden_deltas);
            };
        ]
  | Fault.Grant_starvation ->
    if targets.tg_acks = [] then None
    else
      let s = Partitioning.Rng.choose rng targets.tg_acks in
      Some
        [
          Fault.Delay_update
            {
              dl_signal = s;
              dl_occurrence =
                1 + Partitioning.Rng.int rng (max 1 (count occurrences s));
              dl_deltas = 50 + Partitioning.Rng.int rng 200;
            };
        ]

(* --- classification ---------------------------------------------------- *)

let reserved tag =
  List.exists
    (fun p -> has_prefix p tag)
    Core.Protocol.reserved_tag_prefixes

let filter_trace events =
  List.filter (fun e -> not (reserved e.Sim.Trace.ev_tag)) events

let marker_count events =
  List.length (List.filter (fun e -> reserved e.Sim.Trace.ev_tag) events)

(* The effective final value of a storage scalar: TMR majority when the
   shadows exist (the vote a hardened memory would apply on its next
   read), the raw value otherwise. *)
let voted finals name =
  match List.assoc_opt name finals with
  | None -> None
  | Some primary ->
    begin match
      (List.assoc_opt (name ^ "_r1") finals, List.assoc_opt (name ^ "_r2") finals)
    with
    | Some a, Some b ->
      Some (if primary = a || primary = b then primary else a)
    | _ -> Some primary
    end

let classify ~storage ~(golden : Sim.Engine.result) (faulty : Sim.Engine.result)
    =
  match faulty.Sim.Engine.r_outcome with
  | Sim.Engine.Deadlock _ -> Deadlock
  | Sim.Engine.Step_limit -> Step_limit
  | Sim.Engine.Cancelled -> Timed_out
  | Sim.Engine.Completed ->
    let trace_ok =
      Sim.Trace.projection_equivalent
        (filter_trace golden.Sim.Engine.r_trace)
        (filter_trace faulty.Sim.Engine.r_trace)
    in
    let storage_ok =
      List.for_all
        (fun (name, _) ->
          voted golden.Sim.Engine.r_final name
          = voted faulty.Sim.Engine.r_final name)
        storage
    in
    if not (trace_ok && storage_ok) then Silent_corruption
    else if
      marker_count faulty.Sim.Engine.r_trace
      > marker_count golden.Sim.Engine.r_trace
    then Detected_recovered
    else Survived

(* --- the campaign ------------------------------------------------------ *)

exception Campaign_error of string

(* The default simulator; the benchmark harness passes {!Sim.Reference.run}
   instead to price the event-driven kernel against the polling one on an
   identical campaign (both kernels share result and hook types through
   {!Sim.Runtime}, so classifications are directly comparable). *)
let engine_simulate ~config ~hooks ?ordering p =
  Sim.Engine.run ~config ~hooks ?ordering p

(* The journal meta binds a checkpoint journal to everything that
   determines a run's outcome: the refined program text and the campaign
   configuration.  Resuming against a different design or configuration
   is refused by {!Checkpoint.Journal.open_}. *)
let journal_meta config (r : Core.Refiner.t) =
  Checkpoint.Journal.meta_digest
    [
      "faults-campaign-1";
      Spec.Printer.program_to_string r.Core.Refiner.rf_program;
      string_of_int config.cf_seeds;
      string_of_int config.cf_base_seed;
      String.concat "," (List.map Fault.cls_name config.cf_classes);
      string_of_int config.cf_sim.Sim.Engine.max_steps;
      string_of_int config.cf_sim.Sim.Engine.max_deltas;
      Sim.Memord.policy_to_string config.cf_ordering;
    ]

let decode_run blob =
  match (Marshal.from_string blob 0 : run) with
  | rn -> Some rn
  | exception (Failure _ | Invalid_argument _) -> None

let run ?(config = default_config) ?(simulate = engine_simulate) ?journal
    (r : Core.Refiner.t) =
  let program = r.Core.Refiner.rf_program in
  let started = Unix.gettimeofday () in
  let cancelled () =
    (match config.cf_poll with Some f -> f () | None -> false)
    || (match config.cf_deadline_s with
       | Some d -> Unix.gettimeofday () -. started > d
       | None -> false)
  in
  let with_poll hooks =
    if config.cf_deadline_s = None && config.cf_poll = None then hooks
    else { hooks with Sim.Engine.h_poll = Some cancelled }
  in
  (* A fresh ordering layer per simulation: same policy, same scheduler
     seed for every run of the campaign, so a faulty run's fault-free
     prefix replays the golden interleaving exactly. [None] under [Sc] —
     the kernels run their literally unchanged commit path. *)
  let ordering () =
    match config.cf_ordering with
    | Sim.Memord.Sc -> None
    | policy ->
      Some
        (Sim.Memord.make ~policy ~seed:config.cf_base_seed
           ~port_of:(port_of_buses r.Core.Refiner.rf_buses))
  in
  let counting_hooks, occurrences = Inject.counting () in
  let golden =
    simulate ~config:config.cf_sim
      ~hooks:(with_poll counting_hooks)
      ?ordering:(ordering ()) program
  in
  begin match golden.Sim.Engine.r_outcome with
  | Sim.Engine.Completed -> ()
  | o ->
    raise
      (Campaign_error
         (Printf.sprintf "golden run did not complete: %s"
            (Sim.Engine.outcome_to_string o)))
  end;
  let golden_deltas = golden.Sim.Engine.r_deltas in
  (* A faulty run may legitimately take longer than the golden run (the
     hardened protocol retries with exponential backoff before giving
     up), but far less than 10x: anything beyond is budget exhaustion. *)
  let budget =
    {
      config.cf_sim with
      Sim.Engine.max_deltas = (golden_deltas * 10) + 50_000;
    }
  in
  let targets = enumerate r occurrences in
  let storage = targets.tg_storage in
  let runs =
    List.concat_map
      (fun seed ->
        List.filter_map
          (fun cls ->
            let cls_code =
              String.fold_left
                (fun a c -> (a * 31) + Char.code c)
                7 (Fault.cls_name cls)
            in
            let rng =
              Partitioning.Rng.create
                ((config.cf_base_seed * 1_000_003) + (seed * 10_007) + cls_code)
            in
            match draw rng ~targets ~occurrences ~golden_deltas cls with
            | None -> None
            | Some faults ->
              let key =
                Printf.sprintf "seed%d/%s" seed (Fault.cls_name cls)
              in
              let replayed =
                match journal with
                | None -> None
                | Some j ->
                  Option.bind (Checkpoint.Journal.find j key) decode_run
              in
              (match replayed with
              | Some rn -> Some rn
              | None ->
                let result =
                  simulate ~config:budget
                    ~hooks:(with_poll (Inject.hooks faults))
                    ?ordering:(ordering ()) program
                in
                let rn =
                  {
                    run_seed = seed;
                    run_class = cls;
                    run_faults = faults;
                    run_outcome = classify ~storage ~golden result;
                    run_deltas = result.Sim.Engine.r_deltas;
                  }
                in
                (* Only definitive outcomes checkpoint: a timed-out run
                   must be retried by the resumed campaign, not replayed
                   as a result. *)
                (match journal with
                | Some j when rn.run_outcome <> Timed_out ->
                  Checkpoint.Journal.append j ~key
                    (Marshal.to_string rn [])
                | _ -> ());
                Some rn))
          config.cf_classes)
      (List.init config.cf_seeds Fun.id)
  in
  let good =
    List.length
      (List.filter
         (fun rn ->
           match rn.run_outcome with
           | Survived | Detected_recovered -> true
           | Deadlock | Silent_corruption | Step_limit | Timed_out -> false)
         runs)
  in
  {
    rp_design = program.Ast.p_name;
    rp_hardened = r.Core.Refiner.rf_harden <> None;
    rp_seeds = config.cf_seeds;
    rp_runs = runs;
    rp_robustness =
      (if runs = [] then 1.0
       else float_of_int good /. float_of_int (List.length runs));
  }

(* --- reporting --------------------------------------------------------- *)

let summary report =
  let classes =
    List.sort_uniq compare (List.map (fun rn -> rn.run_class) report.rp_runs)
  in
  List.map
    (fun cls ->
      let of_cls =
        List.filter (fun rn -> rn.run_class = cls) report.rp_runs
      in
      ( cls,
        List.map
          (fun o ->
            (o, List.length (List.filter (fun rn -> rn.run_outcome = o) of_cls)))
          all_outcomes ))
    classes

let survival_fraction report cls =
  let of_cls = List.filter (fun rn -> rn.run_class = cls) report.rp_runs in
  if of_cls = [] then 1.0
  else
    float_of_int
      (List.length
         (List.filter
            (fun rn ->
              match rn.run_outcome with
              | Survived | Detected_recovered -> true
              | Deadlock | Silent_corruption | Step_limit | Timed_out ->
                false)
            of_cls))
    /. float_of_int (List.length of_cls)

let to_text report =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "fault campaign: %s (%s), %d seeds, %d runs\n"
       report.rp_design
       (if report.rp_hardened then "hardened" else "unhardened")
       report.rp_seeds
       (List.length report.rp_runs));
  Buffer.add_string buf
    (Printf.sprintf "  %-18s %9s %9s %9s %9s %9s %9s\n" "class" "survived"
       "recovered" "deadlock" "corrupt" "limit" "timeout");
  List.iter
    (fun (cls, counts) ->
      let n o = List.assoc o counts in
      Buffer.add_string buf
        (Printf.sprintf "  %-18s %9d %9d %9d %9d %9d %9d\n"
           (Fault.cls_name cls) (n Survived) (n Detected_recovered)
           (n Deadlock) (n Silent_corruption) (n Step_limit) (n Timed_out)))
    (summary report);
  Buffer.add_string buf
    (Printf.sprintf "  robustness %.3f\n" report.rp_robustness);
  Buffer.contents buf

let to_json report =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"design\": %S,\n  \"hardened\": %b,\n  \"seeds\": %d,\n"
       report.rp_design report.rp_hardened report.rp_seeds);
  Buffer.add_string buf
    (Printf.sprintf "  \"robustness\": %.4f,\n" report.rp_robustness);
  Buffer.add_string buf "  \"classes\": [\n";
  let class_lines =
    List.map
      (fun (cls, counts) ->
        Printf.sprintf
          "    {\"class\": %S, \"survived\": %d, \"recovered\": %d, \
           \"deadlock\": %d, \"silent_corruption\": %d, \"step_limit\": %d, \
           \"timed_out\": %d}"
          (Fault.cls_name cls)
          (List.assoc Survived counts)
          (List.assoc Detected_recovered counts)
          (List.assoc Deadlock counts)
          (List.assoc Silent_corruption counts)
          (List.assoc Step_limit counts)
          (List.assoc Timed_out counts))
      (summary report)
  in
  Buffer.add_string buf (String.concat ",\n" class_lines);
  Buffer.add_string buf "\n  ],\n  \"runs\": [\n";
  let run_lines =
    List.map
      (fun rn ->
        Printf.sprintf
          "    {\"seed\": %d, \"class\": %S, \"outcome\": %S, \"deltas\": %d, \
           \"faults\": [%s]}"
          rn.run_seed
          (Fault.cls_name rn.run_class)
          (outcome_name rn.run_outcome)
          rn.run_deltas
          (String.concat ", "
             (List.map
                (fun f -> Printf.sprintf "%S" (Fault.describe f))
                rn.run_faults)))
      report.rp_runs
  in
  Buffer.add_string buf (String.concat ",\n" run_lines);
  Buffer.add_string buf "\n  ]\n}\n";
  Buffer.contents buf
