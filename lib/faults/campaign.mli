(** Deterministic, seeded fault-injection campaigns against a refined
    design.  One golden (fault-free) run learns the design's commit
    schedule and reference behavior; then, per seed and fault class, one
    randomly drawn (seed-reproducible) fault is injected and the outcome
    classified against the golden run. *)

type outcome =
  | Survived  (** same observable behavior, no recovery action needed *)
  | Detected_recovered
      (** same observable behavior, reached through watchdog retries or
          TMR repairs (the reserved-marker count grew) *)
  | Deadlock
      (** the design hung — including deliberate [WDG_ABORT] fail-stops
          of the hardened protocol *)
  | Silent_corruption
      (** completed, but the filtered trace or the (TMR-voted) final
          memory state differs from the golden run: the worst case *)
  | Step_limit  (** the simulation budget ran out *)
  | Timed_out
      (** the campaign's wall-clock deadline (or an external cancellation
          poll) fired during this run; the result is not definitive and a
          resumed campaign retries it *)

val outcome_name : outcome -> string
val all_outcomes : outcome list

type run = {
  run_seed : int;
  run_class : Fault.cls;
  run_faults : Fault.spec list;
  run_outcome : outcome;
  run_deltas : int;
}

type report = {
  rp_design : string;  (** refined program name *)
  rp_hardened : bool;
  rp_seeds : int;
  rp_runs : run list;
  rp_robustness : float;
      (** fraction of runs classified survived or recovered *)
}

type config = {
  cf_seeds : int;  (** seeded rounds, one fault per class each *)
  cf_base_seed : int;
  cf_classes : Fault.cls list;
  cf_sim : Sim.Engine.config;  (** budget of the golden run *)
  cf_deadline_s : float option;
      (** wall-clock budget of the whole campaign: once exceeded, the
          running simulation is cancelled ({!Sim.Runtime.hooks.h_poll})
          and the run classified {!Timed_out} *)
  cf_poll : (unit -> bool) option;
      (** external cooperative cancellation, polled with the deadline *)
  cf_ordering : Sim.Memord.policy;
      (** port-ordering semantics of the design's multi-port memories:
          every run — golden and faulty alike — executes under this
          policy with the same scheduler seed ([cf_base_seed]), so a
          hardened design is judged on whether its observable behavior
          stays interleaving-independent.  {!Sim.Memord.Sc} (the
          default) leaves the kernels' commit path untouched. *)
}

val default_config : config
(** 8 seeds, base seed 1, every class, default engine budget, no
    deadline, [sc] port ordering. *)

(** What a campaign can aim at, enumerated from the refined design. *)
type targets = {
  tg_handshakes : string list;
  tg_lines : (string * int) list;
  tg_storage : (string * int) list;
  tg_acks : string list;
}

val enumerate : Core.Refiner.t -> (string, int) Hashtbl.t -> targets
(** Enumerate injection targets, keeping only signals with at least one
    committed update in the golden run (the occurrence table of
    {!Inject.counting}). *)

val classify :
  storage:(string * int) list ->
  golden:Sim.Engine.result ->
  Sim.Engine.result ->
  outcome
(** Classify one faulty run against the golden run: reserved recovery
    markers are filtered from both traces and TMR-shadowed storage is
    majority-voted before comparison. *)

exception Campaign_error of string

val journal_meta : config -> Core.Refiner.t -> string
(** The {!Checkpoint.Journal} meta string binding a campaign journal to
    the refined program and every configuration field that determines an
    outcome — {!Checkpoint.Journal.open_} refuses to resume a journal
    written under different inputs. *)

val run :
  ?config:config ->
  ?simulate:
    (config:Sim.Engine.config ->
    hooks:Sim.Engine.hooks ->
    ?ordering:Sim.Memord.t ->
    Spec.Ast.program ->
    Sim.Engine.result) ->
  ?journal:Checkpoint.Journal.t ->
  Core.Refiner.t ->
  report
(** Execute the campaign.  Fully deterministic: same refined design, same
    configuration — same report.  [simulate] defaults to the event-driven
    kernel ({!Sim.Engine.run}); the benchmark harness passes the polling
    kernel ({!Sim.Reference.run}) to compare campaign wall-clock on the
    two — both classify identically, which the differential tests enforce.
    With [journal] (opened under {!journal_meta}), runs already recorded
    replay without simulating and every {e definitive} new run — any
    outcome but {!Timed_out} — is checkpointed as it completes, so a
    killed campaign resumes from where it died with an identical report.
    @raise Campaign_error when the golden run does not complete (including
    a deadline firing during the golden run). *)

val summary : report -> (Fault.cls * (outcome * int) list) list
(** Outcome counts per fault class, every outcome present. *)

val survival_fraction : report -> Fault.cls -> float
(** Fraction of the class's runs classified survived or recovered
    (1.0 when the class has no runs). *)

val to_text : report -> string
val to_json : report -> string
