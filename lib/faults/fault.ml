(** Fault specifications: the individual hardware faults a campaign
    injects into a simulated refined design, and the fault classes a
    campaign draws them from. *)

open Spec

(** One concrete fault.  Signal faults act on the delta-cycle commit
    stream (see {!Sim.Sigtable.action}); bit flips act on stored memory
    state between delta cycles. *)
type spec =
  | Flip_bit of { fl_var : string; fl_bit : int; fl_delta : int }
      (** flip bit [fl_bit] of memory storage [fl_var] right after delta
          cycle [fl_delta] commits *)
  | Drop_update of { du_signal : string; du_occurrence : int }
      (** lose the [du_occurrence]-th committed update of a signal
          (1-based) — a lost handshake edge *)
  | Delay_update of { dl_signal : string; dl_occurrence : int; dl_deltas : int }
      (** deliver the [dl_occurrence]-th update [dl_deltas] delta cycles
          late (it is dropped from its own commit and re-delivered) *)
  | Stuck_at of { st_signal : string; st_value : Ast.value; st_delta : int }
      (** from delta [st_delta] on, every commit of the signal is forced
          to [st_value] — a stuck bus line *)

(** The campaign's fault classes. *)
type cls =
  | Bit_flip  (** single bit flip in a memory storage location *)
  | Multi_bit_flip  (** several independent flips in one run *)
  | Drop_handshake  (** a lost [start] / [done] handshake edge *)
  | Delay_handshake  (** a late handshake edge *)
  | Stuck_line  (** a stuck bus control / address / data line *)
  | Grant_starvation  (** an arbiter grant held back *)

let all_classes =
  [
    Bit_flip;
    Multi_bit_flip;
    Drop_handshake;
    Delay_handshake;
    Stuck_line;
    Grant_starvation;
  ]

let cls_name = function
  | Bit_flip -> "bit-flip"
  | Multi_bit_flip -> "multi-bit-flip"
  | Drop_handshake -> "drop-handshake"
  | Delay_handshake -> "delay-handshake"
  | Stuck_line -> "stuck-line"
  | Grant_starvation -> "grant-starvation"

let cls_of_name s =
  List.find_opt (fun c -> String.equal (cls_name c) s) all_classes

let describe = function
  | Flip_bit f ->
    Printf.sprintf "flip bit %d of %s after delta %d" f.fl_bit f.fl_var
      f.fl_delta
  | Drop_update f ->
    Printf.sprintf "drop update #%d of %s" f.du_occurrence f.du_signal
  | Delay_update f ->
    Printf.sprintf "delay update #%d of %s by %d deltas" f.dl_occurrence
      f.dl_signal f.dl_deltas
  | Stuck_at f ->
    Printf.sprintf "stick %s at %s from delta %d" f.st_signal
      (Format.asprintf "%a" Expr.pp_value f.st_value)
      f.st_delta
