(** Turning fault specifications into simulation hooks.  The intercept
    counts every signal's committed updates (so occurrence-based faults
    hit the same edge on every run — the schedule is deterministic) and
    applies drop / delay / stuck-at decisions; the post-commit hook
    delivers delayed updates and flips memory bits. *)

open Spec

(* Stuck-at models a failed line and overrides transient faults on the
   same signal; drop and delay are checked in specification order. *)
let decide faults ~delta ~name ~occurrence value k =
  let stuck =
    List.find_map
      (function
        | Fault.Stuck_at f when String.equal f.st_signal name && delta >= f.st_delta
          ->
          Some (Sim.Sigtable.Rewrite f.st_value)
        | _ -> None)
      faults
  in
  match stuck with
  | Some action -> action
  | None ->
    let transient =
      List.find_map
        (function
          | Fault.Drop_update f
            when String.equal f.du_signal name && occurrence = f.du_occurrence
            ->
            Some Sim.Sigtable.Drop
          | Fault.Delay_update f
            when String.equal f.dl_signal name && occurrence = f.dl_occurrence
            ->
            k (delta + f.dl_deltas) value;
            Some Sim.Sigtable.Drop
          | _ -> None)
        faults
    in
    Option.value transient ~default:Sim.Sigtable.Pass

let hooks faults =
  let occ : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let delayed = ref [] in
  let intercept ~delta name value =
    let n = (Option.value ~default:0 (Hashtbl.find_opt occ name)) + 1 in
    Hashtbl.replace occ name n;
    decide faults ~delta ~name ~occurrence:n value (fun due v ->
        delayed := (due, name, v) :: !delayed)
  in
  let on_commit (probe : Sim.Engine.probe) =
    let now = probe.Sim.Engine.pr_delta in
    let due, keep = List.partition (fun (d, _, _) -> d <= now) !delayed in
    delayed := keep;
    List.iter
      (fun (_, s, v) ->
        ignore (Sim.Sigtable.poke probe.Sim.Engine.pr_signals s v))
      due;
    List.iter
      (function
        | Fault.Flip_bit f when f.fl_delta = now ->
          begin match probe.Sim.Engine.pr_read_var f.fl_var with
          | Some (Ast.VInt v) ->
            ignore
              (probe.Sim.Engine.pr_write_var f.fl_var
                 (Ast.VInt (v lxor (1 lsl f.fl_bit))))
          | Some (Ast.VBool b) ->
            ignore (probe.Sim.Engine.pr_write_var f.fl_var (Ast.VBool (not b)))
          | None -> ()
          end
        | _ -> ())
      faults
  in
  {
    Sim.Engine.h_intercept = Some intercept;
    h_on_commit = Some on_commit;
    h_poll = None;
  }

let counting () =
  let occ : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let intercept ~delta:_ name _ =
    Hashtbl.replace occ name
      ((Option.value ~default:0 (Hashtbl.find_opt occ name)) + 1);
    Sim.Sigtable.Pass
  in
  ( { Sim.Engine.h_intercept = Some intercept; h_on_commit = None; h_poll = None },
    occ )
