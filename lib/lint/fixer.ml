(** [mrefine lint --fix]: source-to-source rewrites for the mechanical
    diagnostics.

    Four codes are fixable.  [WIDTH001] widens narrowed destination
    declarations until width inference reports no loss (widths are
    bus-sizing hints, so widening never changes simulation).
    [PROTO003] inlines a waited-but-never-driven signal as the constant
    it is stuck at, drops the waits that become trivially true, and
    removes the declaration.  [PROTO002] synthesizes the missing
    handshake end for a driven-but-never-observed signal: a passive
    observer server that waits for the signal to leave its rest value
    and return, joining the top-level parallel composition.  [CONT001]
    synthesizes a request/grant arbiter for a multi-master bus: every
    offending caller is wrapped in an acquire/release pair and a server
    behavior granting one requester at a time (in site preorder) joins
    their parallel composition.

    Every rewrite is gated before it is kept: the candidate must pass
    {!Spec.Program.validate}, its printed source must re-parse, a
    re-lint must report zero findings for the fixed code, and
    {!Sim.Cosim.check} must prove it trace-equivalent to the {e
    original} input program (not merely the previous fix step).  A
    transform that fails any gate is reported as refused, with the
    reason, and the program is left untouched by it — [--fix] can
    never trade a diagnostic for a behavior change. *)

open Spec
open Ast

type applied = { fx_code : string; fx_loc : string; fx_note : string }
type refused = { fr_code : string; fr_loc : string; fr_reason : string }

type result = {
  x_program : program;  (** the fixed program (the input if nothing applied) *)
  x_source : string;  (** its printed source *)
  x_applied : applied list;
  x_refused : refused list;
  x_changed : bool;
}

let fixable_codes = [ "CONT001"; "PROTO002"; "PROTO003"; "WIDTH001" ]

exception Cancelled

(* --- the gate ----------------------------------------------------------- *)

let lint_hits ~code ?loc p =
  List.filter
    (fun (d : Diagnostic.t) ->
      String.equal d.Diagnostic.d_code code
      &&
      match loc with
      | None -> true
      | Some l -> String.equal d.Diagnostic.d_loc l)
    (Registry.run p)

(* Accept a candidate rewrite only if it validates, round-trips through
   the printer, re-lints clean for the fixed code (at [loc] if given)
   and cosimulates bit-identically with the pristine input.  [poll] is
   checked before each candidate's (expensive) gate run so a driver can
   cancel a long fix job between rewrites. *)
let gate ~poll ~original ~code ?loc candidate =
  if poll () then raise Cancelled;
  match Program.validate candidate with
  | Error msgs ->
    Error ("fix does not validate: " ^ String.concat "; " msgs)
  | Ok () -> (
    match Parser.program_of_string (Printer.program_to_string candidate) with
    | Error e -> Error ("fixed source does not re-parse: " ^ e)
    | Ok reparsed -> (
      match lint_hits ~code ?loc reparsed with
      | _ :: _ as hits ->
        Error
          (Printf.sprintf "%d %s finding(s) survive the fix"
             (List.length hits) code)
      | [] -> (
        match Sim.Cosim.check ~original ~refined:reparsed () with
        | v when v.Sim.Cosim.v_equivalent -> Ok reparsed
        | v ->
          Error
            ("fix is not simulation-equivalent: "
            ^ (match v.Sim.Cosim.v_problems with
              | m :: _ -> m
              | [] -> "traces differ"))
        | exception e ->
          Error ("cosimulation failed: " ^ Printexc.to_string e))))

(* --- WIDTH001: widen narrowed destinations ------------------------------ *)

(* Where a destination's declaration lives, so the rewrite knows which
   table to patch. *)
type locus =
  | Lvar  (** program-level variable *)
  | Lsig  (** signal *)
  | Lbvar of string  (** local of the named behavior *)
  | Lpvar of string  (** local of the named procedure *)
  | Lparam of string  (** parameter of the named procedure *)

(* Required destination widths, [(locus, name) -> bits], from exactly
   the transfers the width pass reports as WIDTH001. *)
let width_requirements p =
  let reqs = Hashtbl.create 16 in
  let demand locus name bits =
    let key = (locus, name) in
    match Hashtbl.find_opt reqs key with
    | Some b when b >= bits -> ()
    | _ -> Hashtbl.replace reqs key bits
  in
  (* scope: (name, ty, locus), innermost first *)
  let tys scope = List.map (fun (n, t, _) -> (n, t)) scope in
  let resolve scope x =
    List.find_opt (fun (n, _, _) -> String.equal n x) scope
  in
  let check_stmts scope stmts =
    let narrowing dest e =
      match (dest, Width.width_of (tys scope) e) with
      | Some dw, Some sw when sw > dw -> Some sw
      | _ -> None
    in
    let rec stmt s =
      match s with
      | Assign (x, e) -> (
        match resolve scope x with
        | Some (_, TInt dw, locus) -> (
          match narrowing (Some dw) e with
          | Some sw -> demand locus x sw
          | None -> ())
        | _ -> ())
      | Assign_idx (x, _, e) -> (
        match resolve scope x with
        | Some (_, TArray (dw, _), locus) -> (
          match narrowing (Some dw) e with
          | Some sw -> demand locus x sw
          | None -> ())
        | _ -> ())
      | Signal_assign (x, e) -> (
        match resolve scope x with
        | Some (_, TInt dw, locus) -> (
          match narrowing (Some dw) e with
          | Some sw -> demand locus x sw
          | None -> ())
        | _ -> ())
      | If (branches, els) ->
        List.iter (fun (_, body) -> List.iter stmt body) branches;
        List.iter stmt els
      | While (_, body) | For (_, _, _, body) -> List.iter stmt body
      | Wait_until _ | Call _ | Emit _ | Skip -> ()
    in
    List.iter stmt stmts
  in
  let base =
    List.map (fun (v : var_decl) -> (v.v_name, v.v_ty, Lvar)) p.p_vars
    @ List.map (fun (s : sig_decl) -> (s.s_name, s.s_ty, Lsig)) p.p_signals
  in
  let rec walk scope b =
    let scope =
      List.map
        (fun (v : var_decl) -> (v.v_name, v.v_ty, Lbvar b.b_name))
        b.b_vars
      @ scope
    in
    match b.b_body with
    | Leaf stmts -> check_stmts scope stmts
    | Par children -> List.iter (walk scope) children
    | Seq arms -> List.iter (fun a -> walk scope a.a_behavior) arms
  in
  walk base p.p_top;
  List.iter
    (fun pr ->
      let scope =
        List.map
          (fun (v : var_decl) -> (v.v_name, v.v_ty, Lpvar pr.prc_name))
          pr.prc_vars
        @ List.map
            (fun prm -> (prm.prm_name, prm.prm_ty, Lparam pr.prc_name))
            pr.prc_params
        @ base
      in
      check_stmts scope pr.prc_body)
    p.p_procs;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) reqs []

let widen_ty ty bits =
  match ty with
  | TInt w -> TInt (max w bits)
  | TArray (w, n) -> TArray (max w bits, n)
  | TBool -> TBool

let apply_widths reqs p =
  let find locus name = List.assoc_opt (locus, name) reqs in
  let var locus (v : var_decl) =
    match find locus v.v_name with
    | Some b -> { v with v_ty = widen_ty v.v_ty b }
    | None -> v
  in
  {
    p with
    p_vars = List.map (var Lvar) p.p_vars;
    p_signals =
      List.map
        (fun (s : sig_decl) ->
          match find Lsig s.s_name with
          | Some b -> { s with s_ty = widen_ty s.s_ty b }
          | None -> s)
        p.p_signals;
    p_top =
      Behavior.map
        (fun b ->
          { b with b_vars = List.map (var (Lbvar b.b_name)) b.b_vars })
        p.p_top;
    p_procs =
      List.map
        (fun pr ->
          {
            pr with
            prc_vars = List.map (var (Lpvar pr.prc_name)) pr.prc_vars;
            prc_params =
              List.map
                (fun prm ->
                  match find (Lparam pr.prc_name) prm.prm_name with
                  | Some b -> { prm with prm_ty = widen_ty prm.prm_ty b }
                  | None -> prm)
                pr.prc_params;
          })
        p.p_procs;
  }

(* Every declaration's type, keyed by locus, for before/after diffing. *)
let all_decls p =
  List.map (fun (v : var_decl) -> ((Lvar, v.v_name), v.v_ty)) p.p_vars
  @ List.map (fun (s : sig_decl) -> ((Lsig, s.s_name), s.s_ty)) p.p_signals
  @ Behavior.fold
      (fun acc b ->
        List.map
          (fun (v : var_decl) -> ((Lbvar b.b_name, v.v_name), v.v_ty))
          b.b_vars
        @ acc)
      [] p.p_top
  @ List.concat_map
      (fun pr ->
        List.map
          (fun (v : var_decl) -> ((Lpvar pr.prc_name, v.v_name), v.v_ty))
          pr.prc_vars
        @ List.map
            (fun prm -> ((Lparam pr.prc_name, prm.prm_name), prm.prm_ty))
            pr.prc_params)
      p.p_procs

let fix_width ~poll ~original current =
  (* Widen to a fixpoint: widening one declaration widens the inferred
     width of its references, which can surface a new narrowing
     downstream.  Widths only grow and are bounded by the widest width
     in the program, so this terminates; the cap is a backstop. *)
  let rec go n p =
    if n >= 32 then p
    else
      match width_requirements p with
      | [] -> p
      | reqs -> go (n + 1) (apply_widths reqs p)
  in
  let candidate = go 0 current in
  if equal_program candidate current then (current, [], [])
  else
    let changes =
      let before = all_decls current in
      List.filter_map
        (fun (key, ty) ->
          match List.assoc_opt key before with
          | Some ty0 when ty0 <> ty -> Some (key, ty0, ty)
          | _ -> None)
        (all_decls candidate)
    in
    match gate ~poll ~original ~code:"WIDTH001" candidate with
    | Ok fixed ->
      ( fixed,
        List.map
          (fun ((_, name), t0, t1) ->
            {
              fx_code = "WIDTH001";
              fx_loc = name;
              fx_note =
                Printf.sprintf "widened %s from %d to %d bits" name
                  (ty_width t0) (ty_width t1);
            })
          changes,
        [] )
    | Error reason ->
      ( current,
        [],
        [
          {
            fr_code = "WIDTH001";
            fr_loc =
              String.concat ", " (List.map (fun ((_, n), _, _) -> n) changes);
            fr_reason = reason;
          };
        ] )

(* --- PROTO003: inline undriven signals ---------------------------------- *)

let proto_signals p =
  List.filter_map
    (fun (d : Diagnostic.t) ->
      if String.equal d.Diagnostic.d_code "PROTO003" then
        Some d.Diagnostic.d_loc
      else None)
    (Registry.run p)
  |> List.sort_uniq String.compare

(* Replace every read of signal [s] with the constant [v], respecting
   shadowing (a behavior local or procedure parameter/local named [s]
   hides the signal in its scope), and drop the declaration. *)
let subst_signal s v p =
  let subst_e e = Expr.subst s (Const v) e in
  let shadows decls =
    List.exists (fun (d : var_decl) -> String.equal d.v_name s) decls
  in
  let rec beh b =
    if shadows b.b_vars then b
    else
      let body =
        match b.b_body with
        | Leaf stmts -> Leaf (Stmt.map_exprs subst_e stmts)
        | Par children -> Par (List.map beh children)
        | Seq arms ->
          Seq
            (List.map
               (fun a ->
                 {
                   a_behavior = beh a.a_behavior;
                   a_transitions =
                     List.map
                       (fun t ->
                         { t with t_cond = Option.map subst_e t.t_cond })
                       a.a_transitions;
                 })
               arms)
      in
      { b with b_body = body }
  in
  let proc pr =
    if
      shadows pr.prc_vars
      || List.exists
           (fun prm -> String.equal prm.prm_name s)
           pr.prc_params
    then pr
    else { pr with prc_body = Stmt.map_exprs subst_e pr.prc_body }
  in
  {
    p with
    p_top = beh p.p_top;
    p_procs = List.map proc p.p_procs;
    p_signals =
      List.filter
        (fun (sd : sig_decl) -> not (String.equal sd.s_name s))
        p.p_signals;
  }

(* Drop waits whose condition became constant-true; flag ones that
   became constant-false (the wait could never be satisfied). *)
let drop_true_waits ~unsat stmts =
  Stmt.map_stmts
    (fun st ->
      match st with
      | Wait_until c -> (
        match Expr.eval_const c with
        | Some (VBool true) -> []
        | Some (VBool false) ->
          unsat := true;
          [ st ]
        | _ -> [ st ])
      | _ -> [ st ])
    stmts

let fix_proto ~poll ~original current =
  let signals = proto_signals current in
  let p, applied, refused =
    List.fold_left
      (fun (p, applied, refused) s ->
        let refuse reason =
          ( p,
            applied,
            { fr_code = "PROTO003"; fr_loc = s; fr_reason = reason }
            :: refused )
        in
        match Program.lookup_signal p s with
        | None -> refuse "signal declaration not found"
        | Some sd -> (
          let v =
            match sd.s_init with
            | Some v -> v
            | None -> default_value sd.s_ty
          in
          let candidate = subst_signal s v p in
          let unsat = ref false in
          let candidate =
            {
              candidate with
              p_top =
                Behavior.map_leaf_stmts (drop_true_waits ~unsat)
                  candidate.p_top;
              p_procs =
                List.map
                  (fun pr ->
                    { pr with prc_body = drop_true_waits ~unsat pr.prc_body })
                  candidate.p_procs;
            }
          in
          if !unsat then
            refuse
              "a wait on the signal can never be satisfied at its initial \
               value"
          else
            match gate ~poll ~original ~code:"PROTO003" ~loc:s candidate with
            | Ok fixed ->
              ( fixed,
                {
                  fx_code = "PROTO003";
                  fx_loc = s;
                  fx_note =
                    Printf.sprintf
                      "inlined undriven signal %s as constant %s and \
                       removed its declaration"
                      s
                      (Expr.to_string (Const v));
                }
                :: applied,
                refused )
            | Error reason -> refuse reason))
      (current, [], []) signals
  in
  (p, List.rev applied, List.rev refused)

(* --- CONT001: synthesize an arbiter ------------------------------------- *)

let used_names p =
  let tbl = Hashtbl.create 64 in
  let add n = Hashtbl.replace tbl n () in
  List.iter (fun (v : var_decl) -> add v.v_name) p.p_vars;
  List.iter (fun (s : sig_decl) -> add s.s_name) p.p_signals;
  List.iter
    (fun pr ->
      add pr.prc_name;
      List.iter (fun prm -> add prm.prm_name) pr.prc_params;
      List.iter (fun (v : var_decl) -> add v.v_name) pr.prc_vars)
    p.p_procs;
  Behavior.fold
    (fun () b ->
      add b.b_name;
      List.iter (fun (v : var_decl) -> add v.v_name) b.b_vars)
    () p.p_top;
  tbl

let fresh used base =
  let claim n =
    Hashtbl.replace used n ();
    n
  in
  if not (Hashtbl.mem used base) then claim base
  else
    let rec go i =
      let cand = Printf.sprintf "%s_%d" base i in
      if Hashtbl.mem used cand then go (i + 1) else claim cand
    in
    go 1

(* --- PROTO002: synthesize the missing handshake end --------------------- *)

let proto2_signals p =
  List.filter_map
    (fun (d : Diagnostic.t) ->
      if String.equal d.Diagnostic.d_code "PROTO002" then
        Some d.Diagnostic.d_loc
      else None)
    (Registry.run p)
  |> List.sort_uniq String.compare

let fix_proto2 ~poll ~original current =
  let signals = proto2_signals current in
  let p, applied, refused =
    List.fold_left
      (fun (p, applied, refused) s ->
        let refuse reason =
          ( p,
            applied,
            { fr_code = "PROTO002"; fr_loc = s; fr_reason = reason }
            :: refused )
        in
        match Program.lookup_signal p s with
        | None -> refuse "signal declaration not found"
        | Some sd -> (
          match p.p_top.b_body with
          | Leaf _ | Seq _ ->
            refuse
              "the top-level behavior is not a parallel composition the \
               observer could join"
          | Par children -> (
            let v =
              match sd.s_init with
              | Some v -> v
              | None -> default_value sd.s_ty
            in
            let used = used_names p in
            let obs_name = fresh used ("OBS_" ^ s) in
            (* The missing handshake end, made passive: wait for the
               signal to leave its rest value, then to return — one
               transaction per iteration.  The observer never drives
               anything, so behavior is unchanged; registering it as a
               perpetual server exempts it from completion and from the
               race passes, like any protocol endpoint. *)
            let obs =
              Behavior.leaf obs_name
                [
                  While
                    ( Expr.tru,
                      [
                        Wait_until (Binop (Neq, Ref s, Const v));
                        Wait_until (Binop (Eq, Ref s, Const v));
                      ] );
                ]
            in
            let candidate =
              {
                p with
                p_top = { p.p_top with b_body = Par (children @ [ obs ]) };
                p_servers = p.p_servers @ [ obs_name ];
              }
            in
            match gate ~poll ~original ~code:"PROTO002" ~loc:s candidate with
            | Ok fixed ->
              ( fixed,
                {
                  fx_code = "PROTO002";
                  fx_loc = s;
                  fx_note =
                    Printf.sprintf
                      "synthesized passive observer %s for driven-but-never-\
                       observed signal %s"
                      obs_name s;
                }
                :: applied,
                refused )
            | Error reason -> refuse reason)))
      (current, [], []) signals
  in
  (p, List.rev applied, List.rev refused)

let fix_cont ~poll ~original current =
  let ctx = Pass.make_ctx ~phase:(Pass.infer_phase current) current in
  let buses =
    List.filter
      (fun b ->
        List.length b.Contention.bus_regions >= 2
        && b.Contention.bus_offenders <> [])
      (Contention.analyze ctx)
  in
  let fix_bus p (bus : Contention.bus) =
    let addr = bus.Contention.bus_addr in
    if
      List.length bus.Contention.bus_offenders
      <> List.length bus.Contention.bus_callers
    then
      Error
        "some callers already hold a grant; refusing to mix a synthesized \
         arbiter with existing arbitration"
    else
      (* The arbiter must join the parallel composition the contending
         regions are children of. *)
      let parents =
        List.sort_uniq String.compare
          (List.filter_map
             (fun site ->
               match Behavior.parent_of site.Pass.st_region p.p_top with
               | Some parent -> Some parent.b_name
               | None -> None)
             bus.Contention.bus_callers)
      in
      match parents with
      | [ parent_name ]
        when List.length
               (List.filter_map
                  (fun site ->
                    Behavior.parent_of site.Pass.st_region p.p_top)
                  bus.Contention.bus_callers)
             = List.length bus.Contention.bus_callers -> (
        let used = used_names p in
        let wires =
          List.map
            (fun site ->
              let b = site.Pass.st_behavior in
              (b, fresh used ("arb_req_" ^ b), fresh used ("arb_gnt_" ^ b)))
            bus.Contention.bus_offenders
        in
        let arb_name = fresh used ("ARB_" ^ addr) in
        (* Wrap each offending leaf in acquire/release. *)
        let wrap p (bname, req, gnt) =
          match Program.lookup_behavior p bname with
          | Some ({ b_body = Leaf stmts; _ } as b) ->
            let wrapped =
              Signal_assign (req, Expr.tru)
              :: Wait_until (Ref gnt)
              :: stmts
              @ [
                  Signal_assign (req, Expr.fls);
                  Wait_until (Unop (Not, Ref gnt));
                ]
            in
            Ok
              {
                p with
                p_top =
                  Behavior.replace bname
                    { b with b_body = Leaf wrapped }
                    p.p_top;
              }
          | Some _ -> Error (bname ^ " is not a leaf behavior")
          | None -> Error (bname ^ " not found")
        in
        let rec wrap_all p = function
          | [] -> Ok p
          | w :: rest -> (
            match wrap p w with
            | Ok p -> wrap_all p rest
            | Error _ as e -> e)
        in
        match wrap_all p wires with
        | Error e -> Error e
        | Ok p ->
          (* One grant at a time, requesters served in site preorder. *)
          let grant_arm (_, req, gnt) =
            ( Ref req,
              [
                Signal_assign (gnt, Expr.tru);
                Wait_until (Unop (Not, Ref req));
                Signal_assign (gnt, Expr.fls);
              ] )
          in
          let any_req =
            match wires with
            | (_, r, _) :: rest ->
              List.fold_left
                (fun e (_, r', _) -> Binop (Or, e, Ref r'))
                (Ref r) rest
            | [] -> Expr.fls
          in
          let arb =
            Behavior.leaf arb_name
              [
                While
                  ( Expr.tru,
                    [
                      If
                        ( List.map grant_arm wires,
                          [ Wait_until any_req ] );
                    ] );
              ]
          in
          let p_top =
            Behavior.map
              (fun b ->
                if String.equal b.b_name parent_name then
                  match b.b_body with
                  | Par children -> { b with b_body = Par (children @ [ arb ]) }
                  | Leaf _ | Seq _ -> b
                else b)
              p.p_top
          in
          let new_sigs =
            List.concat_map
              (fun (_, r, g) ->
                [
                  { s_name = r; s_ty = TBool; s_init = Some (VBool false) };
                  { s_name = g; s_ty = TBool; s_init = Some (VBool false) };
                ])
              wires
          in
          Ok
            ( {
                p with
                p_top;
                p_signals = p.p_signals @ new_sigs;
                p_servers = p.p_servers @ [ arb_name ];
              },
              arb_name,
              List.length wires ))
      | _ ->
        Error
          "the contending regions are not children of one parallel \
           composition"
  in
  let p, applied, refused =
    List.fold_left
      (fun (p, applied, refused) bus ->
        let addr = bus.Contention.bus_addr in
        let refuse reason =
          ( p,
            applied,
            { fr_code = "CONT001"; fr_loc = addr; fr_reason = reason }
            :: refused )
        in
        match fix_bus p bus with
        | Error reason -> refuse reason
        | Ok (candidate, arb_name, n) -> (
          match gate ~poll ~original ~code:"CONT001" ~loc:addr candidate with
          | Ok fixed ->
            ( fixed,
              {
                fx_code = "CONT001";
                fx_loc = addr;
                fx_note =
                  Printf.sprintf
                    "serialized %d caller(s) of bus %s behind synthesized \
                     arbiter %s"
                    n addr arb_name;
              }
              :: applied,
              refused )
          | Error reason -> refuse reason))
      (current, [], []) buses
  in
  (p, List.rev applied, List.rev refused)

(* --- driver -------------------------------------------------------------- *)

let fix ?(codes = fixable_codes) ?(poll = fun () -> false) (p0 : program) =
  let want c = List.exists (String.equal c) codes in
  let step code f (p, applied, refused) =
    if want code then
      let p', a, r = f ~poll ~original:p0 p in
      (p', applied @ a, refused @ r)
    else (p, applied, refused)
  in
  let p, applied, refused =
    (p0, [], [])
    |> step "WIDTH001" fix_width
    |> step "PROTO003" fix_proto
    |> step "PROTO002" fix_proto2
    |> step "CONT001" fix_cont
  in
  {
    x_program = p;
    x_source = Printer.program_to_string p;
    x_applied = applied;
    x_refused = refused;
    x_changed = not (equal_program p p0);
  }
