(** The pass registry and lint drivers. *)

open Spec

type phase = Pass.phase = Pre | Post

val all : Pass.pass list
(** Every default pass: race, conformance, liveness, contention,
    width. *)

val contextual : Pass.pass list
(** Passes registered (findable, in the code table) but not run by
    default: currently the fault-campaign [robust] pass. *)

val find_pass : string -> Pass.pass option
(** Finds default and contextual passes alike. *)

val code_table : (string * string) list
(** Every diagnostic code the tool can emit, with a one-line
    description, sorted by code — the passes' own codes plus those of
    the migrated type checker and refinement checks. *)

val infer_phase : Ast.program -> phase

(** Per-code severity policy: remap a diagnostic code's severity or
    silence it entirely. *)
type override = Severity of Diagnostic.severity | Off

val parse_override : string -> (string * override, string) result
(** Parse a ["CODE=error|warning|info|off"] override.  The code must be
    in {!code_table}; the level is case-insensitive. *)

val apply_overrides :
  (string * override) list -> Diagnostic.t list -> Diagnostic.t list
(** Apply per-code overrides (first binding of a code wins): [Off] drops
    the diagnostic, [Severity] remaps it; the result is re-sorted into
    stable order. *)

val run :
  ?phase:phase ->
  ?typecheck:bool ->
  ?passes:Pass.pass list ->
  ?overrides:(string * override) list ->
  ?flow:bool ->
  Ast.program ->
  Diagnostic.t list
(** Lint one program.  The phase defaults to {!infer_phase}; the type
    checker's diagnostics are folded in unless [~typecheck:false];
    [overrides] applies the per-code severity policy; [~flow:true]
    builds a {!Flow.summary} and switches the liveness, race and width
    passes to their flow-sensitive modes (default off — structural
    output is byte-stable); the result is in stable
    {!Spec.Diagnostic.compare} order. *)

val run_refinement :
  original:Ast.program -> Core.Refiner.t -> Diagnostic.t list
(** Lint a refinement result: {!Core.Check.diagnostics} plus {!run} on
    the refined program at phase [Post]. *)
