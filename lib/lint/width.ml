(** Width-narrowing pass.

    The type checker deliberately treats all integer widths as
    compatible (widths are bus-sizing hints); this pass reports the
    spots where that tolerance actually loses bits: assignments and
    signal assignments whose inferred source width exceeds the
    destination's declared width ([WIDTH001]), and procedure-call
    transfers that narrow — an [in] argument wider than its parameter,
    or an [out] parameter wider than the receiving variable
    ([WIDTH002]).  On refined output the latter is exactly a bus
    transfer wider than the wire it rides on.

    Width inference is structural, not value-range analysis: constants
    take the bits they need, references their declared width, [+ - * /]
    the widest operand, [mod k] the width of [k-1].  All findings are
    warnings in both phases. *)

open Spec
open Ast

let codes =
  [
    ("WIDTH001", "assignment narrows the source width");
    ("WIDTH002", "procedure-call transfer narrows the source width");
  ]

let warn = Diagnostic.Warning

let bits_for n =
  let n = abs n in
  let rec go acc v = if v = 0 then max acc 1 else go (acc + 1) (v lsr 1) in
  go 0 n

(* scope: name -> ty, innermost first *)
let rec width_of scope e =
  match e with
  | Const (VInt n) -> Some (bits_for n)
  | Const (VBool _) -> None
  | Ref x ->
    (match List.assoc_opt x scope with
    | Some (TInt w) -> Some w
    | Some (TBool | TArray _) | None -> None)
  | Index (x, _) ->
    (match List.assoc_opt x scope with
    | Some (TArray (w, _)) -> Some w
    | Some (TBool | TInt _) | None -> None)
  | Unop (Neg, a) -> width_of scope a
  | Unop (Not, _) -> None
  | Binop (Mod, _, Const (VInt k)) when k > 0 -> Some (bits_for (k - 1))
  | Binop ((Add | Sub | Mul | Div | Mod), a, b) ->
    (match (width_of scope a, width_of scope b) with
    | Some wa, Some wb -> Some (max wa wb)
    | Some w, None | None, Some w -> Some w
    | None, None -> None)
  | Binop ((Eq | Neq | Lt | Le | Gt | Ge | And | Or), _, _) -> None

let dest_width scope x =
  match List.assoc_opt x scope with Some (TInt w) -> Some w | _ -> None

let elem_width scope x =
  match List.assoc_opt x scope with Some (TArray (w, _)) -> Some w | _ -> None

let narrowing scope ~dest e =
  match (dest, width_of scope e) with
  | Some dw, Some sw when sw > dw -> Some (sw, dw)
  | _ -> None

module I = Dataflow.Interval

let run (ctx : Pass.t) =
  let p = ctx.Pass.lc_program in
  let acc = ref [] in
  let report ~code ~path ~loc fmt =
    Printf.ksprintf
      (fun s ->
        acc :=
          Diagnostic.make ~code ~severity:warn ~pass:"width" ~path ~loc s
          :: !acc)
      fmt
  in
  (* With flow on, a structurally narrowing transfer whose value range
     provably fits the destination is no loss of bits — suppress it. *)
  let fits env ~dw e =
    match env with
    | None -> false
    | Some env -> (
      match I.bits_needed (I.eval env e) with
      | Some b -> b <= dw
      | None -> false)
  in
  let check_prim scope ~env path = function
    | Assign (x, e) ->
      (match narrowing scope ~dest:(dest_width scope x) e with
      | Some (sw, dw) when not (fits env ~dw e) ->
        report ~code:"WIDTH001" ~path ~loc:x
          "assignment to %s narrows a %d-bit value to %d bits" x sw dw
      | _ -> ())
    | Assign_idx (x, _, e) ->
      (match narrowing scope ~dest:(elem_width scope x) e with
      | Some (sw, dw) when not (fits env ~dw e) ->
        report ~code:"WIDTH001" ~path ~loc:x
          "assignment to an element of %s narrows a %d-bit value to %d bits"
          x sw dw
      | _ -> ())
    | Signal_assign (s, e) ->
      (match narrowing scope ~dest:(dest_width scope s) e with
      | Some (sw, dw) when not (fits env ~dw e) ->
        report ~code:"WIDTH001" ~path ~loc:s
          "signal assignment to %s narrows a %d-bit value to %d bits" s sw dw
      | _ -> ())
    | Call (name, args) ->
      (match Program.lookup_proc p name with
      | None -> ()
      | Some pr when List.length pr.prc_params = List.length args ->
        List.iter2
          (fun prm arg ->
            match (prm.prm_mode, arg, prm.prm_ty) with
            | Mode_in, Arg_expr e, TInt dw ->
              (match narrowing scope ~dest:(Some dw) e with
              | Some (sw, _) when not (fits env ~dw e) ->
                report ~code:"WIDTH002" ~path ~loc:(Expr.to_string e)
                  "argument %s of %s narrows a %d-bit value to %d bits"
                  prm.prm_name name sw dw
              | _ -> ())
            | Mode_in, Arg_var x, TInt dw ->
              (match dest_width scope x with
              | Some sw when sw > dw && not (fits env ~dw (Ref x)) ->
                report ~code:"WIDTH002" ~path ~loc:x
                  "argument %s of %s narrows a %d-bit value to %d bits"
                  prm.prm_name name sw dw
              | _ -> ())
            | Mode_out, Arg_var x, TInt sw ->
              (match dest_width scope x with
              | Some dw when sw > dw ->
                report ~code:"WIDTH002" ~path ~loc:x
                  "out parameter %s of %s narrows a %d-bit result to %d \
                   bits in %s"
                  prm.prm_name name sw dw x
              | _ -> ())
            | _ -> ())
          pr.prc_params args
      | Some _ -> ())
    | If _ | While _ | For _ | Wait_until _ | Emit _ | Skip -> ()
  in
  let base_scope =
    List.map (fun (v : var_decl) -> (v.v_name, v.v_ty)) p.p_vars
    @ List.map (fun (s : sig_decl) -> (s.s_name, s.s_ty)) p.p_signals
  in
  (match ctx.Pass.lc_flow with
  | None ->
    (* Structural mode: recurse over the statement tree. *)
    let rec check_stmts scope path stmts =
      List.iter (check_stmt scope path) stmts
    and check_stmt scope path s =
      check_prim scope ~env:None path s;
      match s with
      | If (branches, els) ->
        List.iter (fun (_, body) -> check_stmts scope path body) branches;
        check_stmts scope path els
      | While (_, body) -> check_stmts scope path body
      | For (_, _, _, body) -> check_stmts scope path body
      | Assign _ | Assign_idx _ | Signal_assign _ | Wait_until _ | Call _
      | Emit _ | Skip ->
        ()
    in
    let rec walk scope path b =
      let scope =
        List.map (fun (v : var_decl) -> (v.v_name, v.v_ty)) b.b_vars @ scope
      in
      let path = path @ [ b.b_name ] in
      match b.b_body with
      | Leaf stmts -> check_stmts scope path stmts
      | Par children -> List.iter (walk scope path) children
      | Seq arms -> List.iter (fun a -> walk scope path a.a_behavior) arms
    in
    walk base_scope [] p.p_top;
    List.iter
      (fun pr ->
        let scope =
          List.map (fun (v : var_decl) -> (v.v_name, v.v_ty)) pr.prc_vars
          @ List.map (fun prm -> (prm.prm_name, prm.prm_ty)) pr.prc_params
          @ base_scope
        in
        check_stmts scope [ "procedure " ^ pr.prc_name ] pr.prc_body)
      p.p_procs
  | Some fl ->
    (* Flow mode: walk the CFGs — only reachable, hand-written nodes,
       each with its interval environment. *)
    let ty_scope scope =
      List.map
        (fun (name, b) ->
          match b with
          | Flow.Fvar { ty; _ } -> (name, ty)
          | Flow.Fsig { ty; _ } -> (name, ty))
        scope
    in
    let check_cfg scope path cfg reach env =
      Array.iteri
        (fun i (node : Cfg.node) ->
          if reach.(i) && not node.Cfg.n_synth then
            match node.Cfg.n_kind with
            | Cfg.Nstmt s -> check_prim scope ~env:(Some env.(i)) path s
            | Cfg.Nentry | Cfg.Nexit | Cfg.Nbranch _ -> ())
        cfg.Cfg.c_nodes
    in
    List.iter
      (fun (_, (li : Flow.leaf_info)) ->
        check_cfg (ty_scope li.Flow.li_scope) li.Flow.li_path li.Flow.li_cfg
          li.Flow.li_reach li.Flow.li_env)
      fl.Flow.fl_leaves;
    List.iter
      (fun (_, (pi : Flow.proc_info)) ->
        check_cfg (ty_scope pi.Flow.pi_scope)
          [ "procedure " ^ pi.Flow.pi_name ]
          pi.Flow.pi_cfg pi.Flow.pi_reach pi.Flow.pi_env)
      fl.Flow.fl_procs);
  !acc

let pass = { Pass.p_name = "width"; p_codes = codes; p_run = run }
