(** Liveness / usage pass (all warnings): [LIVE001] never-accessed
    variable, [LIVE002] never-used signal, [LIVE003] unreachable
    sequential arm, [LIVE004] variable read but never written with no
    initializer. *)

val pass : Pass.pass
