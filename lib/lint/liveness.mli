(** Liveness / usage pass (all warnings): [LIVE001] never-accessed
    variable, [LIVE002] never-used signal, [LIVE003] unreachable
    sequential arm, [LIVE004] variable read but never written with no
    initializer.

    In flow mode ({!Registry.run} with [~flow:true]) the pass consults
    the {!Flow} summary: reads on interval-unreachable paths no longer
    count as accesses (so a guard-dominated uninitialized read demotes
    from [LIVE004] to a precise [LIVE001]/[LIVE003]), TOC arms whose
    guard the constant environment refutes are reported unreachable,
    and two flow-only findings appear — [LIVE005] (a store overwritten
    before any read) and [LIVE006] (a variable written but never
    read). *)

val pass : Pass.pass
