(** Rendering of lint results over one or more targets — the single
    source of the report text and JSON shapes, shared by the [mrefine
    lint] subcommand and the [mrefine serve] lint jobs so a served lint
    result is byte-identical to the CLI's.

    Also the place where diagnostics acquire real [file:line] locations:
    {!locate} resolves each diagnostic's behavior path against the
    parser's source-line table ({!Spec.Parser.locations}). *)

open Spec

(** One lint target: a name (usually the spec path), the phase the
    severity policy ran under, and the filtered diagnostics. *)
type target = {
  t_name : string;
  t_phase : Registry.phase;
  t_diags : Diagnostic.t list;
}

val locate :
  file:string -> Parser.locations -> Diagnostic.t list -> Diagnostic.t list
(** Prefix every resolvable diagnostic's location with [file:line]: the
    diagnostic's behavior path is resolved through
    {!Spec.Parser.line_of_path} (falling back to the declaration table
    via [d_loc] for program-wide findings), and the existing location
    string, when any, is kept after the position.  A diagnostic with a
    behavior path no table can place (dataflow findings can anchor on
    synthesized nodes) degrades to [file: path/to/behavior] instead of
    a bogus line number; only diagnostics with no path at all pass
    through unchanged. *)

val errors : target list -> int
(** Total error-severity diagnostics across the targets. *)

val warnings : target list -> int

val to_text : target list -> string
(** The CLI's per-target report: a [== name: N error(s), M warning(s)]
    header per target, each diagnostic on its own indented line, and a
    final [total:] line. *)

val to_json : target list -> string
(** The same report as a JSON document:
    [{"targets":[...],"errors":N,"warnings":M}]. *)
