(** [mrefine lint --fix]: gated source-to-source rewrites for the
    mechanical diagnostic codes [WIDTH001] (widen narrowed destination
    declarations), [PROTO003] (inline a waited-but-never-driven signal
    as the constant it is stuck at), [PROTO002] (synthesize a passive
    observer server for a driven-but-never-observed signal) and
    [CONT001] (synthesize a request/grant arbiter for a multi-master
    bus).

    Every rewrite must pass four gates before it is kept: the candidate
    validates, its printed source re-parses, a re-lint reports zero
    findings for the fixed code, and cosimulation proves it
    trace-equivalent to the original input.  Failing transforms are
    reported as refused with the gate's reason. *)

open Spec

type applied = {
  fx_code : string;
  fx_loc : string;  (** the declaration, signal or bus that was fixed *)
  fx_note : string;  (** human-readable description of the rewrite *)
}

type refused = {
  fr_code : string;
  fr_loc : string;
  fr_reason : string;  (** which gate failed, and why *)
}

type result = {
  x_program : Ast.program;
      (** the fixed program (the input when nothing applied) *)
  x_source : string;  (** its printed source *)
  x_applied : applied list;
  x_refused : refused list;
  x_changed : bool;
}

val fixable_codes : string list
(** [["CONT001"; "PROTO002"; "PROTO003"; "WIDTH001"]]. *)

exception Cancelled
(** Raised by {!fix} when its [poll] callback reports cancellation. *)

val fix :
  ?codes:string list -> ?poll:(unit -> bool) -> Ast.program -> result
(** Apply every fixable transform (restricted to [codes] if given), in
    the order WIDTH001, PROTO003, PROTO002, CONT001; each accepted
    rewrite feeds
    the next, and the equivalence gate always compares against the
    pristine input program.  [poll] (default: never) is consulted
    before each candidate's validate/re-lint/cosimulate gate; when it
    returns [true] the fix run stops by raising {!Cancelled}. *)
