(** Program-level flow summary: the bridge between the generic
    {!Dataflow} machinery and the lint passes.

    For every leaf behavior the summary holds a {!Cfg}, the interval
    fixpoint (forward, havocking shared state at blocking nodes since
    concurrent siblings interleave only there, and assuming wait
    conditions on resume), interval-based reachability, a liveness
    fixpoint gated by interval edge feasibility, the dead stores, and
    the access sets restricted to reachable nodes.  Procedure bodies get
    the interval half (parameters unknown at entry).  Declarations never
    written anywhere in the program are constants and seed every
    boundary environment with their initializer — this is what lets the
    passes prune branches and TOC arms by value range.

    Summaries are cached per program digest (domain-local, bounded), so
    passes, CLI and the fixer can each call {!of_program} freely. *)

open Spec
open Ast
module I = Dataflow.Interval
module N = Dataflow.Names

type binding =
  | Fvar of { key : string; ty : ty; init : value option }
      (** a variable; [key] is its declaration key ([owner.name] for
          locals), matching {!Pass.site} keys *)
  | Fsig of { ty : ty; init : value option }

type leaf_info = {
  li_behavior : string;
  li_path : string list;
  li_scope : (string * binding) list;  (** innermost binding first *)
  li_cfg : Cfg.t;
  li_reach : bool array;  (** per node: reachable under intervals *)
  li_env : I.env array;  (** per node: interval state on entry *)
  li_live_out : N.t array;  (** per node: names live after it *)
  li_iterations : int;  (** interval worklist pops until fixpoint *)
  li_dead_stores : (int * string) list;
      (** (node id, variable): reachable hand-written assignments
          overwritten before any read *)
  li_var_reads : (string * string) list;
      (** reachable (decl key, name) reads — the flow-sensitive
          replacement for {!Pass.site.st_var_reads} *)
  li_var_writes : (string * string) list;
  li_sig_reads : string list;
  li_sig_writes : string list;
}

type proc_info = {
  pi_name : string;
  pi_scope : (string * binding) list;
  pi_cfg : Cfg.t;
  pi_reach : bool array;
  pi_env : I.env array;
}

type summary = {
  fl_program : program;
  fl_leaves : (string * leaf_info) list;  (** keyed by behavior name *)
  fl_procs : (string * proc_info) list;
  fl_consts : (string * value) list;
      (** program-level declarations never written anywhere, with the
          value they hold forever *)
  fl_const_env : I.env;
  fl_for_counters : N.t;  (** decl keys used as [for] counters *)
}

val of_program : program -> summary
(** Compute (or fetch from the domain-local digest cache). *)

val leaf : summary -> string -> leaf_info option
val proc : summary -> string -> proc_info option

val leaf_at : summary -> string list -> leaf_info option
(** Look a leaf up by its full behavior path (unambiguous even when
    behavior names repeat across the tree). *)

val cond_value : summary -> expr -> bool option
(** Truth value of a condition under the program-wide constants, when
    the interval analysis can decide it; [None] otherwise. *)

val is_for_counter : summary -> string -> bool
(** Whether the decl key is a [for] counter (written only by its loop —
    exempt from unread-write reporting). *)
