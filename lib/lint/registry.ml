(** The pass registry and lint drivers.

    [run] lints one program: it builds the analysis context once,
    executes the selected passes (all of them by default), optionally
    folds in the type checker's diagnostics, and returns the findings
    in stable {!Spec.Diagnostic.compare} order.  [run_refinement] lints
    a refinement result: the refinement-aware invariants of
    {!Core.Check} plus the structural passes on the refined program at
    phase [Post]. *)

open Spec

type phase = Pass.phase = Pre | Post

let all : Pass.pass list =
  [ Race.pass; Conformance.pass; Liveness.pass; Contention.pass; Width.pass ]

(* Registered but not part of the default run list: only meaningful in a
   fault-campaign context, where the campaign driver opts in. *)
let contextual : Pass.pass list = [ Robust.pass ]

let find_pass name =
  List.find_opt (fun p -> String.equal p.Pass.p_name name) (all @ contextual)

(* Codes emitted by the migrated checkers, so the code table is
   complete without those modules depending on lint. *)
let checker_codes =
  [
    ("TYPE001", "unbound name");
    ("TYPE002", "type class mismatch");
    ("TYPE003", "array misuse");
    ("TYPE004", "variable/signal kind confusion");
    ("TYPE005", "malformed procedure call");
    ("NAME001", "name-resolution failure");
    ("REF001", "refined program still declares top-level variables");
    ("REF002", "bus count above the model bound");
    ("REF003", "unregistered or missing server");
    ("REF004", "direct access to a partitioned variable");
  ]

let code_table =
  List.sort
    (fun (a, _) (b, _) -> String.compare a b)
    (List.concat_map (fun p -> p.Pass.p_codes) (all @ contextual)
    @ checker_codes)

let infer_phase = Pass.infer_phase

(* --- severity overrides ------------------------------------------------- *)

type override = Severity of Diagnostic.severity | Off

let known_code code =
  List.exists (fun (c, _) -> String.equal c code) code_table

let parse_override s =
  match String.index_opt s '=' with
  | None ->
    Error
      (Printf.sprintf "override %S is not of the form CODE=LEVEL" s)
  | Some i ->
    let code = String.sub s 0 i in
    let level = String.sub s (i + 1) (String.length s - i - 1) in
    if not (known_code code) then
      Error (Printf.sprintf "override names unknown diagnostic code %S" code)
    else begin
      match String.lowercase_ascii level with
      | "off" -> Ok (code, Off)
      | lv ->
        (match Diagnostic.severity_of_string lv with
        | Some sev -> Ok (code, Severity sev)
        | None ->
          Error
            (Printf.sprintf
               "override %S: level must be error, warning, info or off" s))
    end

let apply_overrides overrides ds =
  match overrides with
  | [] -> ds
  | _ ->
    Diagnostic.sort
      (List.filter_map
         (fun (d : Diagnostic.t) ->
           match List.assoc_opt d.Diagnostic.d_code overrides with
           | None -> Some d
           | Some Off -> None
           | Some (Severity sev) ->
             Some { d with Diagnostic.d_severity = sev })
         ds)

let run ?phase ?(typecheck = true) ?(passes = all) ?(overrides = [])
    ?(flow = false) (p : Ast.program) : Diagnostic.t list =
  let phase =
    match phase with Some ph -> ph | None -> Pass.infer_phase p
  in
  let flow = if flow then Some (Flow.of_program p) else None in
  let ctx = Pass.make_ctx ~phase ?flow p in
  let found = List.concat_map (fun ps -> ps.Pass.p_run ctx) passes in
  let found = if typecheck then Typecheck.diagnostics p @ found else found in
  apply_overrides overrides (Diagnostic.sort found)

let run_refinement ~original (r : Core.Refiner.t) : Diagnostic.t list =
  let check = Core.Check.diagnostics ~original r in
  let lint = run ~phase:Post ~typecheck:false r.Core.Refiner.rf_program in
  (* CONT002 has two reporters: {!Core.Check} from the bus metadata
     (located at the bus label, e.g. [b1]) and the structural contention
     pass from program text (located at the address signal, e.g.
     [b1_addr]).  On a refined program keep the refinement-aware copy
     and drop the structural one for the same bus. *)
  let label_of_addr loc =
    let n = String.length loc in
    if n > 5 && String.equal (String.sub loc (n - 5) 5) "_addr" then
      String.sub loc 0 (n - 5)
    else loc
  in
  let duplicate (d : Diagnostic.t) =
    String.equal d.Diagnostic.d_code "CONT002"
    && List.exists
         (fun (c : Diagnostic.t) ->
           String.equal c.Diagnostic.d_code "CONT002"
           && String.equal c.Diagnostic.d_loc
                (label_of_addr d.Diagnostic.d_loc))
         check
  in
  Diagnostic.sort (check @ List.filter (fun d -> not (duplicate d)) lint)
