(** Generic worklist fixpoint solving over {!Cfg} graphs, plus the two
    concrete lattices the flow-sensitive passes build on; see the
    interface. *)

open Spec
open Ast

(* ------------------------------------------------------------------ *)
(* The solver.                                                         *)

module type DOMAIN = sig
  type t

  val direction : [ `Forward | `Backward ]
  val bottom : t
  val is_bottom : t -> bool
  val boundary : t
  val equal : t -> t -> bool
  val join : t -> t -> t
  val widen : t -> t -> t
  val transfer : Cfg.node -> t -> t
  val edge : Cfg.node -> Cfg.edge -> t -> t option
end

(* A state's join count before [widen] replaces [join] at that node; the
   interval lattice has unbounded ascending chains (loop counters), and
   this is what guarantees termination on loop-heavy specs. *)
let widen_after = 16

module Solve (D : DOMAIN) = struct
  type result = { r_in : D.t array; r_out : D.t array; r_iterations : int }

  let run (g : Cfg.t) =
    let n = Cfg.size g in
    let r_in = Array.make n D.bottom and r_out = Array.make n D.bottom in
    let visits = Array.make n 0 in
    let queue = Queue.create () in
    let on_queue = Array.make n false in
    let push i =
      if not on_queue.(i) then begin
        on_queue.(i) <- true;
        Queue.push i queue
      end
    in
    (* Incoming labeled edges per node, for the pull-style join. *)
    let incoming = Array.make n [] in
    Array.iter
      (fun (node : Cfg.node) ->
        List.iter
          (fun (e, j) -> incoming.(j) <- (node.Cfg.n_id, e) :: incoming.(j))
          node.Cfg.n_succ)
      g.Cfg.c_nodes;
    let iterations = ref 0 in
    let merge_into cur contrib i =
      let merged =
        if visits.(i) >= widen_after then D.widen cur contrib
        else D.join cur contrib
      in
      merged
    in
    (match D.direction with
    | `Forward -> Array.iteri (fun i _ -> push i) r_in
    | `Backward ->
      for i = n - 1 downto 0 do
        push i
      done);
    while not (Queue.is_empty queue) do
      incr iterations;
      let i = Queue.pop queue in
      on_queue.(i) <- false;
      let node = Cfg.node g i in
      match D.direction with
      | `Forward ->
        let joined =
          List.fold_left
            (fun acc (p, e) ->
              let pn = Cfg.node g p in
              if D.is_bottom r_out.(p) then acc
              else
                match D.edge pn e r_out.(p) with
                | None -> acc
                | Some v -> D.join acc v)
            (if i = g.Cfg.c_entry then D.boundary else D.bottom)
            incoming.(i)
        in
        let in_ = merge_into r_in.(i) joined i in
        if not (D.equal in_ r_in.(i)) then begin
          r_in.(i) <- in_;
          visits.(i) <- visits.(i) + 1
        end;
        let out =
          if D.is_bottom r_in.(i) then D.bottom else D.transfer node r_in.(i)
        in
        if not (D.equal out r_out.(i)) then begin
          r_out.(i) <- out;
          List.iter (fun (_, j) -> push j) node.Cfg.n_succ
        end
      | `Backward ->
        let joined =
          List.fold_left
            (fun acc (e, j) ->
              if D.is_bottom r_in.(j) then acc
              else
                match D.edge node e r_in.(j) with
                | None -> acc
                | Some v -> D.join acc v)
            (if i = g.Cfg.c_exit then D.boundary else D.bottom)
            node.Cfg.n_succ
        in
        let out = merge_into r_out.(i) joined i in
        if not (D.equal out r_out.(i)) then begin
          r_out.(i) <- out;
          visits.(i) <- visits.(i) + 1
        end;
        let in_ =
          if D.is_bottom r_out.(i) then D.bottom else D.transfer node r_out.(i)
        in
        if not (D.equal in_ r_in.(i)) then begin
          r_in.(i) <- in_;
          List.iter push node.Cfg.n_pred
        end
    done;
    { r_in; r_out; r_iterations = !iterations }
end

(* ------------------------------------------------------------------ *)
(* Intervals.                                                          *)

module Interval = struct
  (* [min_int]/[max_int] are the two infinities; arithmetic saturates
     well before them so no overflow can wrap a bound. *)
  type itv = { lo : int; hi : int }

  let top = { lo = min_int; hi = max_int }
  let is_top v = v.lo = min_int && v.hi = max_int
  let const n = { lo = n; hi = n }
  let of_value = function VInt n -> const n | VBool b -> const (if b then 1 else 0)
  let itv_true = const 1
  let itv_false = const 0
  let itv_bool = { lo = 0; hi = 1 }

  (* Saturation bound: far above any spec-level value, far below
     [max_int]/2 so sums of two saturated bounds cannot overflow. *)
  let sat_bound = 1 lsl 40

  let sat n =
    if n >= sat_bound then max_int else if n <= -sat_bound then min_int else n

  let add_bound a b =
    if a = min_int || b = min_int then min_int
    else if a = max_int || b = max_int then max_int
    else sat (a + b)

  let neg_bound a =
    if a = min_int then max_int else if a = max_int then min_int else -a

  let join_itv a b = { lo = min a.lo b.lo; hi = max a.hi b.hi }

  let widen_itv a b =
    {
      lo = (if b.lo < a.lo then min_int else a.lo);
      hi = (if b.hi > a.hi then max_int else a.hi);
    }

  let meet_itv a b =
    let lo = max a.lo b.lo and hi = min a.hi b.hi in
    if lo > hi then None else Some { lo; hi }

  let add a b = { lo = add_bound a.lo b.lo; hi = add_bound a.hi b.hi }
  let neg a = { lo = neg_bound a.hi; hi = neg_bound a.lo }
  let sub a b = add a (neg b)

  let mul a b =
    if is_top a || is_top b then top
    else begin
      let mul_bound x y =
        if x = min_int || x = max_int || y = min_int || y = max_int then
          if (x > 0 && y > 0) || (x < 0 && y < 0) then max_int else min_int
        else sat (x * y)
      in
      let c1 = mul_bound a.lo b.lo
      and c2 = mul_bound a.lo b.hi
      and c3 = mul_bound a.hi b.lo
      and c4 = mul_bound a.hi b.hi in
      {
        lo = min (min c1 c2) (min c3 c4);
        hi = max (max c1 c2) (max c3 c4);
      }
    end

  let div a b =
    (* Conservative: only the easy all-positive case is sharpened. *)
    if a.lo >= 0 && b.lo >= 1 && b.hi < max_int && a.hi < max_int then
      { lo = a.lo / b.hi; hi = a.hi / b.lo }
    else top

  let modulo b =
    (* [x mod k] for positive k ranges over [-(k-1), k-1] (OCaml keeps
       the dividend's sign); nonnegative dividends land in [0, k-1]. *)
    if b.lo >= 1 && b.hi < max_int then
      { lo = -(b.hi - 1); hi = b.hi - 1 }
    else top

  let cmp_itv op a b =
    let known t f =
      if t then itv_true else if f then itv_false else itv_bool
    in
    match op with
    | Lt -> known (a.hi < b.lo) (a.lo >= b.hi)
    | Le -> known (a.hi <= b.lo) (a.lo > b.hi)
    | Gt -> known (a.lo > b.hi) (a.hi <= b.lo)
    | Ge -> known (a.lo >= b.hi) (a.hi < b.lo)
    | Eq ->
      known
        (a.lo = a.hi && b.lo = b.hi && a.lo = b.lo)
        (a.hi < b.lo || b.hi < a.lo)
    | Neq ->
      known
        (a.hi < b.lo || b.hi < a.lo)
        (a.lo = a.hi && b.lo = b.hi && a.lo = b.lo)
    | Add | Sub | Mul | Div | Mod | And | Or -> itv_bool

  let definitely_true v = v.lo >= 1
  let definitely_false v = v.hi <= 0

  module M = Map.Make (String)

  (* Environments bind only non-top names, so structural equality works
     as lattice equality. *)
  type env = itv M.t

  let env_empty : env = M.empty
  let env_find x (env : env) = try M.find x env with Not_found -> top

  let env_set x v (env : env) : env =
    if is_top v then M.remove x env else M.add x v env

  let env_join (a : env) (b : env) : env =
    M.merge
      (fun _ va vb ->
        match (va, vb) with
        | Some va, Some vb ->
          let j = join_itv va vb in
          if is_top j then None else Some j
        | _ -> None)
      a b

  let env_widen (a : env) (b : env) : env =
    M.merge
      (fun _ va vb ->
        match (va, vb) with
        | Some va, Some vb ->
          let w = widen_itv va vb in
          if is_top w then None else Some w
        | _ -> None)
      a b

  let env_equal (a : env) (b : env) =
    M.equal (fun x y -> x.lo = y.lo && x.hi = y.hi) a b

  let rec eval (env : env) e =
    match e with
    | Const v -> of_value v
    | Ref x -> env_find x env
    | Index _ -> top
    | Unop (Neg, a) -> neg (eval env a)
    | Unop (Not, a) ->
      let v = eval env a in
      if definitely_true v then itv_false
      else if definitely_false v then itv_true
      else itv_bool
    | Binop (op, a, b) -> (
      match op with
      | Add -> add (eval env a) (eval env b)
      | Sub -> sub (eval env a) (eval env b)
      | Mul -> mul (eval env a) (eval env b)
      | Div -> div (eval env a) (eval env b)
      | Mod -> modulo (eval env b)
      | And ->
        let va = eval env a and vb = eval env b in
        if definitely_false va || definitely_false vb then itv_false
        else if definitely_true va && definitely_true vb then itv_true
        else itv_bool
      | Or ->
        let va = eval env a and vb = eval env b in
        if definitely_true va || definitely_true vb then itv_true
        else if definitely_false va && definitely_false vb then itv_false
        else itv_bool
      | Eq | Neq | Lt | Le | Gt | Ge -> cmp_itv op (eval env a) (eval env b))

  (** Refine [env] under the assumption that [cond] evaluated to
      [outcome]; only simple shapes sharpen ([x], [not x], [x OP k],
      [k OP x], conjunctions on the true side, disjunctions on the
      false side).  Returns [None] when the assumption is infeasible. *)
  let rec assume (env : env) cond outcome =
    let bind x v =
      match meet_itv (env_find x env) v with
      | None -> None
      | Some m -> Some (env_set x m env)
    in
    let range_of op k outcome =
      (* the values of x for which [x op k] has the given outcome *)
      match (op, outcome) with
      | Lt, true | Ge, false -> `Range { lo = min_int; hi = k - 1 }
      | Le, true | Gt, false -> `Range { lo = min_int; hi = k }
      | Gt, true | Le, false -> `Range { lo = k + 1; hi = max_int }
      | Ge, true | Lt, false -> `Range { lo = k; hi = max_int }
      | Eq, true | Neq, false -> `Range (const k)
      | Eq, false | Neq, true -> `Exclude k
      | _ -> `Unknown
    in
    (* [x <> k] is non-convex, so a disequality usually cannot narrow an
       interval — except at the endpoints: excluding [k] from [[k,k]] is
       infeasible, and excluding it from [[k,hi]] or [[lo,k]] shaves the
       endpoint. *)
    let exclude x k =
      let cur = env_find x env in
      if cur.lo = k && cur.hi = k then None
      else if cur.lo = k then Some (env_set x { cur with lo = k + 1 } env)
      else if cur.hi = k then Some (env_set x { cur with hi = k - 1 } env)
      else Some env
    in
    let refine x = function
      | `Range r -> bind x r
      | `Exclude k -> exclude x k
      | `Unknown -> Some env
    in
    match cond with
    | Ref x -> bind x (if outcome then itv_true else itv_false)
    | Unop (Not, c) -> assume env c (not outcome)
    | Binop (op, Ref x, Const v) ->
      let k = match v with VInt n -> n | VBool b -> if b then 1 else 0 in
      refine x (range_of op k outcome)
    | Binop (op, Const v, Ref x) ->
      let flip = function
        | Lt -> Gt | Le -> Ge | Gt -> Lt | Ge -> Le | op -> op
      in
      let k = match v with VInt n -> n | VBool b -> if b then 1 else 0 in
      refine x (range_of (flip op) k outcome)
    | Binop (And, a, b) when outcome ->
      Option.bind (assume env a true) (fun env -> assume env b true)
    | Binop (Or, a, b) when not outcome ->
      Option.bind (assume env a false) (fun env -> assume env b false)
    | _ -> Some env

  (** Bits a value in the interval needs under the width pass's rule
      ([Width.bits_for] of the largest magnitude); [None] when either
      bound is unbounded. *)
  let bits_needed v =
    if v.lo = min_int || v.hi = max_int then None
    else begin
      let bits_for n =
        let n = abs n in
        let rec go acc v = if v = 0 then max acc 1 else go (acc + 1) (v lsr 1) in
        go 0 n
      in
      Some (max (bits_for v.lo) (bits_for v.hi))
    end

  let itv_to_string v =
    let b n =
      if n = min_int then "-inf" else if n = max_int then "+inf"
      else string_of_int n
    in
    Printf.sprintf "[%s,%s]" (b v.lo) (b v.hi)
end

(* ------------------------------------------------------------------ *)
(* Name sets (liveness / reaching flags).                              *)

module Names = struct
  module S = Set.Make (String)

  type t = S.t

  let empty = S.empty
  let union = S.union
  let equal = S.equal
  let mem = S.mem
  let of_list = S.of_list
  let add = S.add
  let remove = S.remove
  let elements = S.elements
  let diff = S.diff
end
