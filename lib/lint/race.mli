(** Race detector: [RACE001] (variable accessed from two parallel
    branches with at least one writer and no mediating protocol) and
    [RACE002] (signal driven from two parallel branches).  Severity is
    phase-dependent: warning pre-refinement, error post-refinement.

    In flow mode ({!Registry.run} with [~flow:true]) accesses on
    interval-unreachable nodes are ignored, so a "write" that can never
    execute no longer races with a concurrent reader. *)

val pass : Pass.pass
