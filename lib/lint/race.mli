(** Race detector: [RACE001] (variable accessed from two parallel
    branches with at least one writer and no mediating protocol) and
    [RACE002] (signal driven from two parallel branches).  Severity is
    phase-dependent: warning pre-refinement, error post-refinement. *)

val pass : Pass.pass
