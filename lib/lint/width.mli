(** Width-narrowing pass (all warnings): [WIDTH001] when an assignment
    or signal assignment narrows its inferred source width, [WIDTH002]
    when a procedure-call transfer does (an [in] argument wider than
    its parameter, or an [out] parameter wider than the receiving
    variable).  With a flow summary in the context, a structurally
    narrowing transfer is suppressed when interval analysis proves the
    value fits the destination. *)

val bits_for : int -> int
(** Bits needed to represent the magnitude of [n] (at least 1). *)

val width_of : (string * Spec.Ast.ty) list -> Spec.Ast.expr -> int option
(** Structural width inference against a scope of declared types
    (innermost first): constants take the bits they need, references
    their declared width, arithmetic the widest operand; [None] for
    boolean-valued or unresolvable expressions.  Shared with {!Fixer},
    which widens destinations until this inference reports no
    narrowing. *)

val pass : Pass.pass
