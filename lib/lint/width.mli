(** Width-narrowing pass (all warnings): [WIDTH001] when an assignment
    or signal assignment narrows its inferred source width, [WIDTH002]
    when a procedure-call transfer does (an [in] argument wider than
    its parameter, or an [out] parameter wider than the receiving
    variable). *)

val pass : Pass.pass
