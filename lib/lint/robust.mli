(** Robustness pass: [ROBUST001] when a refined design drives its buses
    through unhardened master procedures (no watchdog / bounded-retry
    machinery) — reported while a fault-injection campaign is configured,
    where a single lost handshake edge deadlocks the design.  Registered
    in the {!Registry} code table but not in the default run list; the
    fault-campaign driver opts in explicitly. *)

val pass : Pass.pass
