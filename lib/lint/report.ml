(** Shared lint-report rendering; see the interface. *)

open Spec

type target = {
  t_name : string;
  t_phase : Registry.phase;
  t_diags : Diagnostic.t list;
}

let locate ~file locs ds =
  List.map
    (fun (d : Diagnostic.t) ->
      let line =
        match Parser.line_of_path locs d.Diagnostic.d_path with
        | Some l when l > 0 -> Some l
        | Some _ | None -> (
          (* Program-wide findings often name a declaration (a signal or
             variable) as their location — the declaration table can
             still place those. *)
          match List.assoc_opt d.Diagnostic.d_loc locs.Parser.loc_decls with
          | Some l when l > 0 -> Some l
          | Some _ | None -> None)
      in
      match line with
      | None when d.Diagnostic.d_path <> [] ->
        (* Dataflow passes can anchor a finding on a synthesized node
           with no source line; degrade to the behavior path rather
           than reporting a bogus position. *)
        let position =
          Printf.sprintf "%s: %s" file
            (String.concat "/" d.Diagnostic.d_path)
        in
        let loc =
          if d.Diagnostic.d_loc = "" then position
          else position ^ ": " ^ d.Diagnostic.d_loc
        in
        { d with Diagnostic.d_loc = loc }
      | None -> d
      | Some line ->
        let position = Printf.sprintf "%s:%d" file line in
        let loc =
          if d.Diagnostic.d_loc = "" then position
          else position ^ ": " ^ d.Diagnostic.d_loc
        in
        { d with Diagnostic.d_loc = loc })
    ds

let count sev targets =
  List.fold_left
    (fun acc t -> acc + Diagnostic.count sev t.t_diags)
    0 targets

let errors = count Diagnostic.Error
let warnings = count Diagnostic.Warning

let phase_name = function Registry.Pre -> "pre" | Registry.Post -> "post"

let to_text targets =
  let buf = Buffer.create 1024 in
  List.iter
    (fun t ->
      Buffer.add_string buf
        (Printf.sprintf "== %s: %d error(s), %d warning(s)\n" t.t_name
           (Diagnostic.count Diagnostic.Error t.t_diags)
           (Diagnostic.count Diagnostic.Warning t.t_diags));
      List.iter
        (fun d ->
          Buffer.add_string buf ("  " ^ Diagnostic.to_string d);
          Buffer.add_char buf '\n')
        t.t_diags)
    targets;
  Buffer.add_string buf
    (Printf.sprintf "total: %d error(s), %d warning(s)\n" (errors targets)
       (warnings targets));
  Buffer.contents buf

let to_json targets =
  Printf.sprintf "{\"targets\":[%s],\"errors\":%d,\"warnings\":%d}"
    (String.concat ","
       (List.map
          (fun t ->
            Printf.sprintf
              "{\"name\":\"%s\",\"phase\":\"%s\",\"errors\":%d,\
               \"warnings\":%d,\"diagnostics\":[%s]}"
              (Diagnostic.json_escape t.t_name)
              (phase_name t.t_phase)
              (Diagnostic.count Diagnostic.Error t.t_diags)
              (Diagnostic.count Diagnostic.Warning t.t_diags)
              (String.concat "," (List.map Diagnostic.to_json t.t_diags)))
          targets))
    (errors targets) (warnings targets)
