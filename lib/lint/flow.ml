(** Program-level flow summary; see the interface.

    One {!Cfg} + interval fixpoint + liveness fixpoint per leaf behavior
    (and per procedure body, intervals only), stitched together with the
    program-wide constant environment (declarations never written
    anywhere keep their initializer).  Everything here is shared by the
    flow-sensitive modes of the lint passes and by the fixer; the
    summary is cached per program digest so the passes and the CLI can
    each ask for it without recomputing. *)

open Spec
open Ast
module I = Dataflow.Interval
module N = Dataflow.Names

type binding =
  | Fvar of { key : string; ty : ty; init : value option }
  | Fsig of { ty : ty; init : value option }

type leaf_info = {
  li_behavior : string;
  li_path : string list;
  li_scope : (string * binding) list;  (** innermost binding first *)
  li_cfg : Cfg.t;
  li_reach : bool array;
  li_env : I.env array;  (** interval state on node entry; valid where reachable *)
  li_live_out : N.t array;  (** variables live after each node *)
  li_iterations : int;  (** interval worklist pops until fixpoint *)
  li_dead_stores : (int * string) list;
      (** reachable non-synthesized assignments whose value is
          overwritten before any read *)
  li_var_reads : (string * string) list;  (** reachable (decl key, name) *)
  li_var_writes : (string * string) list;
  li_sig_reads : string list;
  li_sig_writes : string list;
}

type proc_info = {
  pi_name : string;
  pi_scope : (string * binding) list;
  pi_cfg : Cfg.t;
  pi_reach : bool array;
  pi_env : I.env array;
}

type summary = {
  fl_program : program;
  fl_leaves : (string * leaf_info) list;  (** keyed by behavior name *)
  fl_procs : (string * proc_info) list;
  fl_consts : (string * value) list;
      (** program-level declarations never written anywhere *)
  fl_const_env : I.env;
  fl_for_counters : N.t;  (** decl keys used as [for] counters *)
}

let leaf s name = List.assoc_opt name s.fl_leaves
let proc s name = List.assoc_opt name s.fl_procs

let leaf_at s path =
  Option.map snd
    (List.find_opt (fun (_, li) -> li.li_path = path) s.fl_leaves)

(* ------------------------------------------------------------------ *)
(* Scope walk: every leaf with its resolved scope, mirroring           *)
(* [Pass.make_ctx] (decl keys are [owner.name] for locals).            *)

type raw_leaf = {
  rl_name : string;
  rl_path : string list;
  rl_stmts : stmt list;
  rl_scope : (string * binding) list;
  rl_own : string list;  (** the leaf's own locals — private storage *)
}

let base_scope (p : program) =
  List.map
    (fun (v : var_decl) ->
      (v.v_name, Fvar { key = v.v_name; ty = v.v_ty; init = v.v_init }))
    p.p_vars
  @ List.map
      (fun (s : sig_decl) -> (s.s_name, Fsig { ty = s.s_ty; init = s.s_init }))
      p.p_signals

let collect_leaves (p : program) =
  let rec walk scope path b acc =
    let scope =
      List.map
        (fun (v : var_decl) ->
          ( v.v_name,
            Fvar { key = b.b_name ^ "." ^ v.v_name; ty = v.v_ty; init = v.v_init }
          ))
        b.b_vars
      @ scope
    in
    let path = path @ [ b.b_name ] in
    match b.b_body with
    | Leaf stmts ->
      {
        rl_name = b.b_name;
        rl_path = path;
        rl_stmts = stmts;
        rl_scope = scope;
        rl_own = List.map (fun (v : var_decl) -> v.v_name) b.b_vars;
      }
      :: acc
    | Par children -> List.fold_left (fun acc c -> walk scope path c acc) acc children
    | Seq arms ->
      List.fold_left (fun acc a -> walk scope path a.a_behavior acc) acc arms
  in
  List.rev (walk (base_scope p) [] p.p_top [])

let proc_scope (p : program) (pr : proc_decl) =
  List.map
    (fun prm ->
      ( prm.prm_name,
        Fvar { key = pr.prc_name ^ "." ^ prm.prm_name; ty = prm.prm_ty; init = None }
      ))
    pr.prc_params
  @ List.map
      (fun (v : var_decl) ->
        ( v.v_name,
          Fvar { key = pr.prc_name ^ "." ^ v.v_name; ty = v.v_ty; init = v.v_init }
        ))
      pr.prc_vars
  @ base_scope p

(* ------------------------------------------------------------------ *)
(* Which declarations are ever written (decl keys for variables, raw   *)
(* names for signals)?  Declarations outside both sets are constants   *)
(* and seed every boundary environment with their initializer.         *)

let written_sets (p : program) leaves =
  let vkeys = ref N.empty and snames = ref N.empty in
  let record scope stmts =
    List.iter
      (fun x ->
        match List.assoc_opt x scope with
        | Some (Fvar f) -> vkeys := N.add f.key !vkeys
        | Some (Fsig _) | None -> ())
      (Stmt.writes stmts);
    List.iter
      (fun x ->
        match List.assoc_opt x scope with
        | Some (Fsig _) -> snames := N.add x !snames
        | Some (Fvar _) | None -> ())
      (Stmt.signal_writes stmts)
  in
  List.iter (fun rl -> record rl.rl_scope rl.rl_stmts) leaves;
  List.iter
    (fun pr ->
      let scope = proc_scope p pr in
      record scope pr.prc_body;
      (* parameters are written by every call: never constants *)
      List.iter
        (fun prm -> vkeys := N.add (pr.prc_name ^ "." ^ prm.prm_name) !vkeys)
        pr.prc_params)
    p.p_procs;
  (!vkeys, !snames)

let for_counter_keys leaves =
  let acc = ref N.empty in
  let rec scan scope stmts =
    List.iter
      (fun s ->
        match s with
        | For (i, _, _, body) ->
          (match List.assoc_opt i scope with
          | Some (Fvar f) -> acc := N.add f.key !acc
          | _ -> ());
          scan scope body
        | If (branches, els) ->
          List.iter (fun (_, b) -> scan scope b) branches;
          scan scope els
        | While (_, body) -> scan scope body
        | Assign _ | Assign_idx _ | Signal_assign _ | Wait_until _ | Call _
        | Emit _ | Skip ->
          ())
      stmts
  in
  List.iter (fun rl -> scan rl.rl_scope rl.rl_stmts) leaves;
  !acc

(** Boundary environment of one scope: bindings never written anywhere
    hold their initializer (or the type default) forever. *)
let boundary_env ~written_vars ~written_sigs scope =
  (* outermost first so inner bindings overwrite *)
  List.fold_left
    (fun env (name, b) ->
      match b with
      | Fvar f when not (N.mem f.key written_vars) ->
        let v = match f.init with Some v -> v | None -> default_value f.ty in
        I.env_set name (I.of_value v) env
      | Fsig s when not (N.mem name written_sigs) ->
        let v = match s.init with Some v -> v | None -> default_value s.ty in
        I.env_set name (I.of_value v) env
      | _ -> env)
    I.env_empty (List.rev scope)

(* ------------------------------------------------------------------ *)
(* The interval analysis of one statement list.                        *)

let branch_filter env c e =
  let v = I.eval env c in
  match (e : Cfg.edge) with
  | Eseq -> Some env
  | Etrue -> if I.definitely_false v then None else I.assume env c true
  | Efalse -> if I.definitely_true v then None else I.assume env c false

(** Run the interval fixpoint over [cfg].  [boundary] seeds the entry
    state; at blocking nodes every binding is re-set to [boundary]
    except the [keep] names (private storage no concurrent sibling can
    touch), which keep their current interval. *)
let solve_intervals ~boundary ~keep cfg =
  let havoc env =
    List.fold_left (fun acc x -> I.env_set x (I.env_find x env) acc) boundary keep
  in
  let module D = struct
    type t = I.env option

    let direction = `Forward
    let bottom = None
    let is_bottom = Option.is_none
    let boundary = Some boundary

    let equal a b =
      match (a, b) with
      | None, None -> true
      | Some a, Some b -> I.env_equal a b
      | _ -> false

    let join a b =
      match (a, b) with
      | None, x | x, None -> x
      | Some a, Some b -> Some (I.env_join a b)

    let widen a b =
      match (a, b) with
      | None, x | x, None -> x
      | Some a, Some b -> Some (I.env_widen a b)

    let transfer (n : Cfg.node) st =
      match st with
      | None -> None
      | Some env -> (
        match n.n_kind with
        | Nentry | Nexit | Nbranch _ -> Some env
        | Nstmt s -> (
          match s with
          | Assign (x, e) -> Some (I.env_set x (I.eval env e) env)
          | Assign_idx _ | Emit _ | Skip -> Some env
          | Signal_assign (s, _) -> Some (I.env_set s I.top env)
          | Wait_until c ->
            (* suspension: concurrent siblings may run, then the wait
               condition holds when we resume *)
            I.assume (havoc env) c true
          | Call (_, args) ->
            let env = havoc env in
            Some
              (List.fold_left
                 (fun env -> function
                   | Arg_var x -> I.env_set x I.top env
                   | Arg_expr _ -> env)
                 env args)
          | If _ | While _ | For _ -> Some env))

    let edge (n : Cfg.node) e st =
      match st with
      | None -> None
      | Some env -> (
        match n.n_kind with
        | Nbranch c -> (
          match branch_filter env c e with
          | None -> None
          | Some env -> Some (Some env))
        | _ -> Some (Some env))
  end in
  let module S = Dataflow.Solve (D) in
  let r = S.run cfg in
  (r.S.r_in, r.S.r_out, r.S.r_iterations)

(* ------------------------------------------------------------------ *)
(* The liveness analysis, gated by interval edge feasibility.          *)

let solve_liveness ~exit_live ~feasible cfg =
  let module D = struct
    type t = N.t option

    let direction = `Backward
    let bottom = None
    let is_bottom = Option.is_none
    let boundary = Some exit_live

    let equal a b =
      match (a, b) with
      | None, None -> true
      | Some a, Some b -> N.equal a b
      | _ -> false

    let join a b =
      match (a, b) with
      | None, x | x, None -> x
      | Some a, Some b -> Some (N.union a b)

    let widen = join

    let transfer (n : Cfg.node) st =
      match st with
      | None -> None
      | Some live ->
        Some (N.union (N.of_list (Cfg.uses n)) (N.diff live (N.of_list (Cfg.defs n))))

    let edge (n : Cfg.node) e st =
      if feasible n.Cfg.n_id e then Some st else None
  end in
  let module S = Dataflow.Solve (D) in
  let r = S.run cfg in
  (r.S.r_in, r.S.r_out, r.S.r_iterations)

(* ------------------------------------------------------------------ *)
(* Assembly.                                                           *)

let edge_tag : Cfg.edge -> int = function Eseq -> 0 | Etrue -> 1 | Efalse -> 2

let analyze_leaf ~written_vars ~written_sigs ~global_reads rl =
  let cfg = Cfg.build rl.rl_stmts in
  let boundary = boundary_env ~written_vars ~written_sigs rl.rl_scope in
  let iv_in, iv_out, iterations = solve_intervals ~boundary ~keep:rl.rl_own cfg in
  let n = Cfg.size cfg in
  let reach = Array.map Option.is_some iv_in in
  let env = Array.map (function Some e -> e | None -> I.env_empty) iv_in in
  (* Interval-infeasible edges, for gating the backward pass. *)
  let feasible_tbl = Hashtbl.create 16 in
  for i = 0 to n - 1 do
    match iv_out.(i) with
    | None -> ()
    | Some out_env ->
      let node = Cfg.node cfg i in
      List.iter
        (fun (e, _) ->
          let ok =
            match node.Cfg.n_kind with
            | Nbranch c -> branch_filter out_env c e <> None
            | _ -> true
          in
          if ok then Hashtbl.replace feasible_tbl (i, edge_tag e) ())
        node.Cfg.n_succ
  done;
  let feasible i e = Hashtbl.mem feasible_tbl (i, edge_tag e) in
  let _, lv_out, _ = solve_liveness ~exit_live:global_reads ~feasible cfg in
  let live_out =
    Array.map (function Some s -> s | None -> N.empty) lv_out
  in
  (* Dead stores: a reachable, hand-written assignment to a variable
     that is read somewhere in the program, but whose stored value is
     overwritten before any read on every feasible path. *)
  let dead = ref [] in
  for i = 0 to n - 1 do
    let node = Cfg.node cfg i in
    if reach.(i) && not node.Cfg.n_synth then
      match node.Cfg.n_kind with
      | Nstmt (Assign (x, _)) ->
        if N.mem x global_reads && not (N.mem x live_out.(i)) then
          dead := (i, x) :: !dead
      | _ -> ()
  done;
  (* Accesses restricted to reachable nodes, resolved against scope. *)
  let var_reads = ref [] and var_writes = ref [] in
  let sig_reads = ref [] and sig_writes = ref [] in
  let resolve x = List.assoc_opt x rl.rl_scope in
  for i = 0 to n - 1 do
    if reach.(i) then begin
      let node = Cfg.node cfg i in
      List.iter
        (fun x ->
          match resolve x with
          | Some (Fvar f) -> var_reads := (f.key, x) :: !var_reads
          | Some (Fsig _) -> sig_reads := x :: !sig_reads
          | None -> ())
        (Cfg.uses node);
      List.iter
        (fun x ->
          match resolve x with
          | Some (Fvar f) -> var_writes := (f.key, x) :: !var_writes
          | _ -> ())
        (Cfg.defs node);
      (* partial array updates write too, they just do not kill *)
      (match node.Cfg.n_kind with
      | Nstmt (Assign_idx (x, _, _)) -> (
        match resolve x with
        | Some (Fvar f) -> var_writes := (f.key, x) :: !var_writes
        | _ -> ())
      | _ -> ());
      List.iter
        (fun x ->
          match resolve x with
          | Some (Fsig _) -> sig_writes := x :: !sig_writes
          | _ -> ())
        (Cfg.sig_defs node)
    end
  done;
  let uniq l = List.sort_uniq compare l in
  {
    li_behavior = rl.rl_name;
    li_path = rl.rl_path;
    li_scope = rl.rl_scope;
    li_cfg = cfg;
    li_reach = reach;
    li_env = env;
    li_live_out = live_out;
    li_iterations = iterations;
    li_dead_stores = List.rev !dead;
    li_var_reads = uniq !var_reads;
    li_var_writes = uniq !var_writes;
    li_sig_reads = uniq !sig_reads;
    li_sig_writes = uniq !sig_writes;
  }

let analyze_proc (p : program) ~written_vars ~written_sigs (pr : proc_decl) =
  let scope = proc_scope p pr in
  let cfg = Cfg.build pr.prc_body in
  let boundary = boundary_env ~written_vars ~written_sigs scope in
  (* Frame storage (in-parameters and locals) survives suspension; out
     parameters alias caller storage and are havocked with the rest. *)
  let keep =
    List.filter_map
      (fun prm -> if prm.prm_mode = Mode_in then Some prm.prm_name else None)
      pr.prc_params
    @ List.map (fun (v : var_decl) -> v.v_name) pr.prc_vars
  in
  let iv_in, _, _ = solve_intervals ~boundary ~keep cfg in
  {
    pi_name = pr.prc_name;
    pi_scope = scope;
    pi_cfg = cfg;
    pi_reach = Array.map Option.is_some iv_in;
    pi_env = Array.map (function Some e -> e | None -> I.env_empty) iv_in;
  }

let compute (p : program) =
  let leaves = collect_leaves p in
  let written_vars, written_sigs = written_sets p leaves in
  (* Raw names read anywhere: the sound live-at-exit set (a leaf can be
     re-entered through a TOC arc, so its storage may be read again). *)
  let global_reads =
    let acc = ref N.empty in
    let add names = List.iter (fun x -> acc := N.add x !acc) names in
    List.iter (fun rl -> add (Stmt.reads rl.rl_stmts)) leaves;
    List.iter (fun pr -> add (Stmt.reads pr.prc_body)) p.p_procs;
    Behavior.fold
      (fun () b ->
        match b.b_body with
        | Seq arms ->
          List.iter
            (fun a ->
              List.iter
                (fun tr ->
                  match tr.t_cond with
                  | Some c -> add (Expr.refs c)
                  | None -> ())
                a.a_transitions)
            arms
        | Leaf _ | Par _ -> ())
      () p.p_top;
    !acc
  in
  let fl_leaves =
    List.map
      (fun rl ->
        (rl.rl_name, analyze_leaf ~written_vars ~written_sigs ~global_reads rl))
      leaves
  in
  let fl_procs =
    List.map
      (fun pr -> (pr.prc_name, analyze_proc p ~written_vars ~written_sigs pr))
      p.p_procs
  in
  let fl_consts =
    List.filter_map
      (function
        | name, Fvar f when not (N.mem f.key written_vars) ->
          Some (name, match f.init with Some v -> v | None -> default_value f.ty)
        | name, Fsig s when not (N.mem name written_sigs) ->
          Some (name, match s.init with Some v -> v | None -> default_value s.ty)
        | _ -> None)
      (base_scope p)
  in
  let fl_const_env =
    List.fold_left
      (fun env (x, v) -> I.env_set x (I.of_value v) env)
      I.env_empty fl_consts
  in
  {
    fl_program = p;
    fl_leaves;
    fl_procs;
    fl_consts;
    fl_const_env;
    fl_for_counters = for_counter_keys leaves;
  }

(* ------------------------------------------------------------------ *)
(* Digest cache (domain-local, bounded).                               *)

let cache_key : (string, summary) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 4)

let of_program (p : program) =
  let tbl = Domain.DLS.get cache_key in
  let d = Digest.string (Marshal.to_string p []) in
  match Hashtbl.find_opt tbl d with
  | Some s when s.fl_program == p || equal_program s.fl_program p -> s
  | _ ->
    let s = compute p in
    if Hashtbl.length tbl >= 8 then Hashtbl.reset tbl;
    Hashtbl.replace tbl d s;
    s

(** Truth value of a condition under the program-wide constants, when
    the interval analysis can decide it. *)
let cond_value s c =
  let v = I.eval s.fl_const_env c in
  if I.definitely_true v then Some true
  else if I.definitely_false v then Some false
  else None

let is_for_counter s key = N.mem key s.fl_for_counters
