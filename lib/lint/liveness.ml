(** Liveness / usage pass.

    Structural usage checks, all warnings: storage nobody touches
    ([LIVE001]), wires nobody drives or reads ([LIVE002]), sequential
    arms no chain of TOC arcs or fall-throughs can reach ([LIVE003]),
    and variables that are read somewhere but never written anywhere
    and carry no initializer ([LIVE004] — the read can only ever see
    the type's default value).

    With a flow summary in the context ([lc_flow]), the pass becomes
    flow-sensitive: LIVE001/LIVE004 count only accesses at CFG nodes the
    interval analysis proves reachable (a read inside a branch that can
    never be taken no longer keeps a variable "live"), LIVE003
    additionally prunes TOC transitions whose guard is always false
    under the program-wide constants, and two new diagnostics appear:
    dead stores ([LIVE005], a reachable assignment whose value is
    overwritten before any read along every feasible path) and unread
    writes ([LIVE006], a variable that is written but never read —
    [for] counters exempt). *)

open Spec
open Ast

let codes =
  [
    ("LIVE001", "variable is never accessed");
    ("LIVE002", "signal is never driven nor read");
    ("LIVE003", "behavior is unreachable in its sequential composition");
    ("LIVE004", "variable read but never written, with no initializer");
    ("LIVE005", "assignment is dead: overwritten before any read (flow)");
    ("LIVE006", "variable is written but never read (flow)");
  ]

let warn = Diagnostic.Warning

let run (ctx : Pass.t) =
  let p = ctx.Pass.lc_program in
  let fl = ctx.Pass.lc_flow in
  let reads = Hashtbl.create 32 and writes = Hashtbl.create 32 in
  (* With flow on, a leaf site's accesses are the ones at reachable CFG
     nodes; TOC sites keep their guard reads either way. *)
  let site_accesses (site : Pass.site) =
    match fl with
    | Some s when site.Pass.st_stmts <> [] -> (
      match Flow.leaf_at s site.Pass.st_path with
      | Some li -> (li.Flow.li_var_reads, li.Flow.li_var_writes)
      | None -> (site.Pass.st_var_reads, site.Pass.st_var_writes))
    | _ -> (site.Pass.st_var_reads, site.Pass.st_var_writes)
  in
  List.iter
    (fun site ->
      let rs, ws = site_accesses site in
      List.iter (fun (key, _) -> Hashtbl.replace reads key ()) rs;
      List.iter (fun (key, _) -> Hashtbl.replace writes key ()) ws)
    ctx.Pass.lc_sites;
  let var_checks key name ~owner ~init acc =
    let is_read = Hashtbl.mem reads key and is_written = Hashtbl.mem writes key in
    let where =
      match owner with
      | None -> "program variable"
      | Some b -> Printf.sprintf "variable (local to %s)" b
    in
    let path = match owner with None -> [] | Some b -> [ b ] in
    if (not is_read) && not is_written then
      Diagnostic.makef ~code:"LIVE001" ~severity:warn ~pass:"liveness" ~path
        ~loc:name "%s %s is never accessed" where name
      :: acc
    else if is_read && (not is_written) && init = None then
      Diagnostic.makef ~code:"LIVE004" ~severity:warn ~pass:"liveness" ~path
        ~loc:name
        "%s %s is read but never written and has no initializer" where name
      :: acc
    else
      match fl with
      | Some s
        when is_written && (not is_read) && not (Flow.is_for_counter s key) ->
        Diagnostic.makef ~code:"LIVE006" ~severity:warn ~pass:"liveness" ~path
          ~loc:name "%s %s is written but its value is never read" where name
        :: acc
      | _ -> acc
  in
  let acc =
    List.fold_left
      (fun acc (v : var_decl) ->
        var_checks v.v_name v.v_name ~owner:None ~init:v.v_init acc)
      [] p.p_vars
  in
  let acc =
    List.fold_left
      (fun acc (owner, (v : var_decl)) ->
        var_checks
          (owner ^ "." ^ v.v_name)
          v.v_name ~owner:(Some owner) ~init:v.v_init acc)
      acc
      (Behavior.all_var_decls p.p_top)
  in
  (* Dead signals: neither driven nor read anywhere (procedure bodies
     included).  Partial uses are the conformance pass's business. *)
  let sig_used = Hashtbl.create 16 in
  List.iter
    (fun site ->
      List.iter (fun s -> Hashtbl.replace sig_used s ()) site.Pass.st_sig_writes;
      List.iter (fun s -> Hashtbl.replace sig_used s ()) site.Pass.st_sig_reads)
    ctx.Pass.lc_sites;
  List.iter
    (fun pr ->
      let written, read = Pass.proc_signal_uses p pr in
      List.iter (fun s -> Hashtbl.replace sig_used s ()) (written @ read))
    p.p_procs;
  let acc =
    List.fold_left
      (fun acc (sd : sig_decl) ->
        if Hashtbl.mem sig_used sd.s_name then acc
        else
          Diagnostic.makef ~code:"LIVE002" ~severity:warn ~pass:"liveness"
            ~loc:sd.s_name "signal %s is never driven nor read" sd.s_name
          :: acc)
      acc p.p_signals
  in
  (* Dead stores, straight from the flow summary. *)
  let acc =
    match fl with
    | None -> acc
    | Some s ->
      List.fold_left
        (fun acc (_, (li : Flow.leaf_info)) ->
          List.fold_left
            (fun acc (_, x) ->
              Diagnostic.makef ~code:"LIVE005" ~severity:warn ~pass:"liveness"
                ~path:li.Flow.li_path ~loc:x
                "assignment to %s in %s stores a value that is overwritten \
                 before any read"
                x li.Flow.li_behavior
              :: acc)
            acc li.Flow.li_dead_stores)
        acc s.fl_leaves
  in
  (* Unreachable sequential arms: fixpoint over fall-throughs (an arm
     with no transitions) and Goto targets.  The structural half treats
     every transition as takable; with flow on, a second pass prunes
     transitions whose guard is always false under the program-wide
     constants and reports the extra arms that become unreachable. *)
  Behavior.fold
    (fun acc b ->
      match b.b_body with
      | Seq arms ->
        let arms = Array.of_list arms in
        let n = Array.length arms in
        let index_of name =
          let rec go i =
            if i >= n then None
            else if String.equal arms.(i).a_behavior.b_name name then Some i
            else go (i + 1)
          in
          go 0
        in
        let reach_with takable =
          let reachable = Array.make n false in
          let rec visit i =
            if i < n && not reachable.(i) then begin
              reachable.(i) <- true;
              match List.filter takable arms.(i).a_transitions with
              | [] when arms.(i).a_transitions = [] -> visit (i + 1)
              | ts ->
                List.iter
                  (fun tr ->
                    match tr.t_target with
                    | Goto tgt ->
                      (match index_of tgt with Some j -> visit j | None -> ())
                    | Complete -> ())
                  ts
            end
          in
          if n > 0 then visit 0;
          reachable
        in
        let base = reach_with (fun _ -> true) in
        let flow_reach =
          match fl with
          | None -> base
          | Some s ->
            reach_with (fun tr ->
                match tr.t_cond with
                | Some c -> Flow.cond_value s c <> Some false
                | None -> true)
        in
        let acc = ref acc in
        Array.iteri
          (fun i reached ->
            if not reached then
              acc :=
                Diagnostic.makef ~code:"LIVE003" ~severity:warn
                  ~pass:"liveness" ~path:[ b.b_name ]
                  ~loc:arms.(i).a_behavior.b_name
                  "behavior %s is unreachable in sequential composition %s"
                  arms.(i).a_behavior.b_name b.b_name
                :: !acc
            else if not flow_reach.(i) then
              acc :=
                Diagnostic.makef ~code:"LIVE003" ~severity:warn
                  ~pass:"liveness" ~path:[ b.b_name ]
                  ~loc:arms.(i).a_behavior.b_name
                  "behavior %s is unreachable in sequential composition %s \
                   (every route to it is cut by an always-false transition \
                   guard)"
                  arms.(i).a_behavior.b_name b.b_name
                :: !acc)
          base;
        !acc
      | Leaf _ | Par _ -> acc)
    acc p.p_top

let pass = { Pass.p_name = "liveness"; p_codes = codes; p_run = run }
