(** Statement-level control-flow graphs over {!Spec.Ast.stmt} lists —
    the substrate of the dataflow passes.

    One graph covers one straight statement list: a leaf behavior's body
    or a procedure body (composition edges between behaviors — seq arms,
    TOC arcs, par forks — are handled one level up, in {!Flow}, which
    analyzes each leaf separately and reasons about TOC conditions with
    the program-wide constant environment).

    Compound statements are lowered to primitive nodes: every [If] /
    [While] condition becomes an {!Nbranch} node with [Etrue] / [Efalse]
    out-edges, a [While] body gets a back edge to its test, and a [For]
    desugars into synthesized init / test / increment nodes (flagged
    {!node.n_synth}; they carry no source position of their own). *)

open Spec
open Ast

type edge = Eseq | Etrue | Efalse

type kind =
  | Nentry
  | Nexit
  | Nstmt of stmt  (** primitive statement — never [If]/[While]/[For] *)
  | Nbranch of expr  (** decision point: an [If]/[While]/[For] test *)

type node = {
  n_id : int;
  n_kind : kind;
  n_synth : bool;  (** lowered from a [For]; anchors no diagnostics *)
  mutable n_succ : (edge * int) list;
  mutable n_pred : int list;
}

type t = { c_nodes : node array; c_entry : int; c_exit : int }

val build : stmt list -> t
(** Build the graph of one statement list.  Every node is reachable from
    [c_entry] by construction; [c_exit] collects all fall-off ends. *)

val size : t -> int
val node : t -> int -> node
val succs : t -> int -> (edge * int) list
val preds : t -> int -> int list

val uses : node -> string list
(** Names the node reads (its expressions' references, sorted, deduped).
    An indexed store reads its own array; a branch reads its test. *)

val defs : node -> string list
(** Variables the node fully overwrites: plain assignments and [out]
    call arguments.  Indexed stores are partial updates and signal
    assignment leaves the pre-delta value readable, so neither kills. *)

val sig_defs : node -> string list
(** Signals the node drives. *)

val blocks : node -> bool
(** Whether the node can suspend the process ([wait until], or a call —
    protocol procedures block internally); concurrent siblings may
    interleave at exactly these points. *)

val to_string : t -> string
(** One line per node: [id[*] kind -> succ,succ…], with [*] marking
    synthesized nodes and [t:]/[f:] labeling branch edges — the golden
    test format. *)
