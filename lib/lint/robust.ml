(** Robustness pass.

    [ROBUST001]: a refined design drives its buses through plain
    (unhardened) master procedures — no watchdog / bounded-retry
    machinery anywhere in their bodies.  That is perfectly fine for
    functional co-simulation, but when the design is about to face a
    fault-injection campaign, a single lost handshake edge deadlocks it;
    the hardened protocol variant ([--harden]) recovers instead.

    The pass is registered in the {!Registry} code table but not part of
    the default run list: it only makes sense in a fault-campaign
    context, so the [mrefine faults] driver opts in explicitly when a
    campaign is configured on an unhardened design. *)

open Spec
open Spec.Ast

let codes =
  [
    ( "ROBUST001",
      "unhardened handshake protocol under a fault campaign" );
  ]

(* Watchdog machinery is recognizable by its reserved marker emits
   (WDG_RETRY / WDG_ABORT) inside the loop bodies. *)
let rec stmts_emit_wdg stmts =
  List.exists
    (function
      | Emit (tag, _) ->
        String.length tag >= 4 && String.equal (String.sub tag 0 4) "WDG_"
      | If (branches, els) ->
        List.exists (fun (_, body) -> stmts_emit_wdg body) branches
        || stmts_emit_wdg els
      | While (_, body) | For (_, _, _, body) -> stmts_emit_wdg body
      | _ -> false)
    stmts

let run (ctx : Pass.t) =
  let p = ctx.Pass.lc_program in
  let masters = Pass.master_procs p in
  let soft =
    List.filter
      (fun (name, _) ->
        match List.find_opt (fun pr -> String.equal pr.prc_name name) p.p_procs with
        | Some pr -> not (stmts_emit_wdg pr.prc_body)
        | None -> false)
      masters
  in
  (* One diagnostic per bus (group by address signal), not per proc. *)
  let buses = List.sort_uniq String.compare (List.map snd soft) in
  List.map
    (fun addr ->
      let procs =
        List.filter_map
          (fun (name, a) -> if String.equal a addr then Some name else None)
          soft
      in
      Diagnostic.makef ~code:"ROBUST001" ~severity:Diagnostic.Warning
        ~pass:"robust" ~loc:addr
        "bus %s is driven by unhardened master protocol (%s) while a fault \
         campaign is configured; a single lost handshake edge deadlocks — \
         consider refining with --harden"
        addr
        (String.concat ", " procs))
    buses

let pass = { Pass.p_name = "robust"; p_codes = codes; p_run = run }
