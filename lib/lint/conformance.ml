(** Protocol-conformance pass.

    Checks the handshake structure refinement relies on: every bus
    transaction issued through a master procedure must target an address
    some slave statically decodes ([PROTO001]), and every handshake wire
    must have both ends — a driven signal somebody observes ([PROTO002],
    catching a [B_start] with no [B_NEW] waiter) and an observed signal
    somebody drives ([PROTO003], catching a missing [B_done] reply).

    [PROTO001] is always an error: a master procedure addressing a slave
    nobody implements is broken in any phase.  The pairing checks follow
    the phase policy (warning pre-refinement, error post-refinement),
    since an input spec may legitimately declare wires it only uses
    after later manual steps. *)

open Spec
open Ast

let codes =
  [
    ("PROTO001", "bus transaction address not decoded by any slave");
    ("PROTO002", "signal driven but never observed (unpaired handshake)");
    ("PROTO003", "signal waited on but never driven");
  ]

let run (ctx : Pass.t) =
  let p = ctx.Pass.lc_program in
  let severity = Pass.severity_for_phase ctx.Pass.lc_phase in
  let masters = Pass.master_procs p in
  let served = Pass.served_addresses p in
  (* A bus interface (Model4's BIF) decodes no constants: it forwards
     the incoming address wholesale onto another bus.  A bus whose
     address signal feeds the address argument of some master call is
     therefore served for every address. *)
  let forwarded =
    List.concat_map
      (fun site ->
        List.concat_map
          (fun (callee, args) ->
            match (List.assoc_opt callee masters, args) with
            | Some _, Arg_expr e :: _ ->
              List.filter
                (fun x ->
                  List.exists (fun (_, a) -> String.equal a x) masters)
                (Expr.refs e)
            | _ -> [])
          site.Pass.st_calls)
      ctx.Pass.lc_sites
  in
  (* PROTO001: constant-address master calls against the decode table. *)
  let addr_checks =
    List.fold_left
      (fun acc site ->
        List.fold_left
          (fun acc (callee, args) ->
            match (List.assoc_opt callee masters, args) with
            | Some addr_sig, Arg_expr e :: _
              when not (List.mem addr_sig forwarded) ->
              let decodes =
                List.filter_map
                  (fun (s, sv) ->
                    if String.equal s addr_sig then Some sv else None)
                  served
              in
              begin match Expr.eval_const e with
              | Some (VInt k) when decodes = [] ->
                Diagnostic.makef ~code:"PROTO001"
                  ~severity:Diagnostic.Error ~pass:"conformance"
                  ~path:site.Pass.st_path ~loc:(Expr.to_string e)
                  "call to %s addresses %d on bus %s, but no slave decodes \
                   any address on that bus"
                  callee k addr_sig
                :: acc
              | Some (VInt k)
                when not (List.exists (Pass.serves k) decodes) ->
                Diagnostic.makef ~code:"PROTO001"
                  ~severity:Diagnostic.Error ~pass:"conformance"
                  ~path:site.Pass.st_path ~loc:(Expr.to_string e)
                  "call to %s addresses %d on bus %s, which no slave decodes"
                  callee k addr_sig
                :: acc
              | _ -> acc
              end
            | _ -> acc)
          acc site.Pass.st_calls)
      [] ctx.Pass.lc_sites
  in
  (* Global drive/observe maps over behaviors, TOC conditions and
     procedure bodies. *)
  let driven = Hashtbl.create 16 and observed = Hashtbl.create 16 in
  let waited = Hashtbl.create 16 in
  List.iter
    (fun site ->
      List.iter (fun s -> Hashtbl.replace driven s ()) site.Pass.st_sig_writes;
      List.iter (fun s -> Hashtbl.replace observed s ()) site.Pass.st_sig_reads;
      List.iter
        (fun c ->
          List.iter
            (fun x -> if Pass.is_signal p x then Hashtbl.replace waited x ())
            (Expr.refs c))
        site.Pass.st_waits)
    ctx.Pass.lc_sites;
  List.iter
    (fun pr ->
      let written, read = Pass.proc_signal_uses p pr in
      List.iter (fun s -> Hashtbl.replace driven s ()) written;
      List.iter (fun s -> Hashtbl.replace observed s ()) read;
      List.iter
        (fun c ->
          List.iter
            (fun x -> if Pass.is_signal p x then Hashtbl.replace waited x ())
            (Expr.refs c))
        (Pass.waits_of_stmts [] pr.prc_body))
    p.p_procs;
  let pairing =
    List.fold_left
      (fun acc (sd : sig_decl) ->
        let s = sd.s_name in
        let is_driven = Hashtbl.mem driven s in
        let is_observed = Hashtbl.mem observed s in
        let acc =
          if is_driven && not is_observed then
            Diagnostic.makef ~code:"PROTO002" ~severity ~pass:"conformance"
              ~loc:s
              "signal %s is driven but never observed (unpaired handshake)" s
            :: acc
          else acc
        in
        if Hashtbl.mem waited s && not is_driven then
          Diagnostic.makef ~code:"PROTO003" ~severity ~pass:"conformance"
            ~loc:s "signal %s is waited on but never driven" s
          :: acc
        else acc)
      [] p.p_signals
  in
  addr_checks @ pairing

let pass = { Pass.p_name = "conformance"; p_codes = codes; p_run = run }
