(** Bus-contention pass.

    The paper's arbiter rule, applied structurally: when the master
    procedures of one bus are called from two or more distinct parallel
    regions, every caller must hold an arbitration grant around its
    transactions.  {!Core.Check} enforces the same rule exactly on a
    refinement result (it knows the requester lists); this pass
    re-derives it from program text alone, so it also covers
    hand-written or externally produced specs.

    Grant detection is a structural heuristic: an acquiring leaf both
    drives a request wire (a signal assignment outside the bus's wire
    set) and blocks on a grant wire (a [wait until] reading a signal
    outside the bus's wire set) — the shape of
    {!Core.Arbiter.acquire}.  A leaf that calls the bus without either
    is reported under [CONT001]. *)

open Spec

let codes =
  [
    ("CONT001", "multi-master bus without arbitration around its calls");
    ("CONT002", "arbiter on a single-master bus");
  ]

(** One bus with its call sites, as the pass (and the fixer) see it. *)
type bus = {
  bus_addr : string;
  bus_regions : string list;  (** distinct caller regions, sorted *)
  bus_callers : Pass.site list;  (** every calling site, preorder *)
  bus_offenders : Pass.site list;  (** callers holding no grant *)
}

let analyze (ctx : Pass.t) =
  let p = ctx.Pass.lc_program in
  let masters = Pass.master_procs p in
  (* Group master procedures into buses by address signal. *)
  let buses =
    List.sort_uniq String.compare (List.map snd masters)
    |> List.map (fun addr ->
           ( addr,
             List.filter (fun (_, a) -> String.equal a addr) masters ))
  in
  List.map
    (fun (addr, procs) ->
      let proc_names = List.map fst procs in
      let bus_sigs = Pass.bus_signal_set p ~addr ~procs in
      let callers =
        List.filter
          (fun site ->
            List.exists
              (fun (callee, _) -> List.mem callee proc_names)
              site.Pass.st_calls)
          ctx.Pass.lc_sites
      in
      let regions =
        List.sort_uniq String.compare
          (List.map (fun s -> s.Pass.st_region) callers)
      in
      let holds_grant site =
        let drives_request =
          List.exists
            (fun s -> not (List.mem s bus_sigs))
            site.Pass.st_sig_writes
        in
        let blocks_on_grant =
          List.exists
            (fun c ->
              List.exists
                (fun x -> Pass.is_signal p x && not (List.mem x bus_sigs))
                (Expr.refs c))
            site.Pass.st_waits
        in
        drives_request && blocks_on_grant
      in
      {
        bus_addr = addr;
        bus_regions = regions;
        bus_callers = callers;
        bus_offenders = List.filter (fun s -> not (holds_grant s)) callers;
      })
    buses

let run (ctx : Pass.t) =
  List.concat_map
    (fun b ->
      let addr = b.bus_addr and regions = b.bus_regions in
      let holds_grant site = not (List.memq site b.bus_offenders) in
      let callers = b.bus_callers in
      if List.length regions < 2 then begin
        (* One concurrent region (or none): arbitration around the calls
           is pure overhead — the structural side of {!Core.Check}'s
           CONT002, derivable from program text alone. *)
        match List.filter holds_grant callers with
        | [] -> []
        | grantees ->
          [
            Diagnostic.makef ~code:"CONT002" ~severity:Diagnostic.Warning
              ~pass:"contention" ~loc:addr
              "bus %s is mastered from a single parallel region but %s \
               around an arbitration grant nobody contends for"
              addr
              (match grantees with
              | [ g ] -> Printf.sprintf "%s wraps its calls" g.Pass.st_behavior
              | gs ->
                Printf.sprintf "%s wrap their calls"
                  (String.concat ", "
                     (List.sort_uniq String.compare
                        (List.map (fun g -> g.Pass.st_behavior) gs))));
          ]
      end
      else
        let offenders =
          List.filter (fun s -> not (holds_grant s)) callers
        in
        if offenders = [] then []
        else
          [
            Diagnostic.makef ~code:"CONT001" ~severity:Diagnostic.Error
              ~pass:"contention" ~loc:addr
              "bus %s is mastered from %d parallel regions (%s) but %s \
               without acquiring an arbitration grant"
              addr (List.length regions)
              (String.concat ", " regions)
              (match offenders with
              | [ o ] -> Printf.sprintf "%s calls it" o.Pass.st_behavior
              | os ->
                Printf.sprintf "%s call it"
                  (String.concat ", "
                     (List.sort_uniq String.compare
                        (List.map (fun o -> o.Pass.st_behavior) os))));
          ])
    (analyze ctx)

let pass = { Pass.p_name = "contention"; p_codes = codes; p_run = run }
