(** Shared infrastructure of the lint passes: the analysis context (a
    flattened view of every leaf's accesses with scoping resolved), the
    pass interface, phase inference, and a few structural helpers for
    recognizing refinement-generated protocol shapes (master procedures,
    decoded slave addresses).

    Scoping is resolved once, here: every variable access is keyed by
    its {e declaration} (program variable, or [owner.name] for a
    behavior-local), so passes compare declarations rather than raw
    names even in the presence of shadowing. *)

open Spec
open Ast

(** Whether the program is an unpartitioned input spec ([Pre]) or a
    refined / server-style output ([Post]).  The distinction drives
    severity: a race in an input spec is exactly what refinement will
    serialize (warning), the same race in a refined output is a broken
    refinement (error). *)
type phase = Pre | Post

(* A refined output has moved all storage into memory behaviors
   (p_vars = []) and introduced wires or servers; an input spec
   declares its partitionable variables at program level. *)
let infer_phase (p : program) =
  if p.p_vars = [] && (p.p_servers <> [] || p.p_signals <> []) then Post
  else Pre

(** One leaf behavior (or the TOC conditions of one sequential
    composition), with its accesses resolved against the scope. *)
type site = {
  st_behavior : string;  (** behavior owning the statements *)
  st_path : string list;  (** path from the top behavior, inclusive *)
  st_region : string;
      (** nearest enclosing Par-child ancestor (the concurrent region the
          site executes in); the top behavior when not under any Par *)
  st_server : bool;  (** inside a registered perpetual server subtree *)
  st_stmts : stmt list;  (** direct statements ([[]] for a TOC site) *)
  st_var_reads : (string * string) list;  (** (decl key, display name) *)
  st_var_writes : (string * string) list;
  st_sig_reads : string list;
  st_sig_writes : string list;
  st_waits : expr list;  (** all [wait until] conditions, nesting included *)
  st_calls : (string * arg list) list;  (** all procedure calls *)
}

type t = {
  lc_program : program;
  lc_phase : phase;
  lc_sites : site list;  (** every leaf and TOC site, preorder *)
  lc_flow : Flow.summary option;
      (** flow summary when the flow-sensitive modes are enabled *)
}

(** A named analysis pass: [p_codes] documents the diagnostic codes it
    can emit (code, one-line description). *)
type pass = {
  p_name : string;
  p_codes : (string * string) list;
  p_run : t -> Diagnostic.t list;
}

(* ------------------------------------------------------------------ *)
(* Statement collectors (recursive, unlike the flat Stmt helpers).    *)

let rec waits_of_stmts acc stmts =
  List.fold_left
    (fun acc s ->
      match s with
      | Wait_until c -> c :: acc
      | If (branches, els) ->
        let acc =
          List.fold_left (fun acc (_, b) -> waits_of_stmts acc b) acc branches
        in
        waits_of_stmts acc els
      | While (_, body) | For (_, _, _, body) -> waits_of_stmts acc body
      | Assign _ | Assign_idx _ | Signal_assign _ | Call _ | Emit _ | Skip ->
        acc)
    acc stmts

let rec calls_of_stmts acc stmts =
  List.fold_left
    (fun acc s ->
      match s with
      | Call (name, args) -> (name, args) :: acc
      | If (branches, els) ->
        let acc =
          List.fold_left (fun acc (_, b) -> calls_of_stmts acc b) acc branches
        in
        calls_of_stmts acc els
      | While (_, body) | For (_, _, _, body) -> calls_of_stmts acc body
      | Assign _ | Assign_idx _ | Signal_assign _ | Wait_until _ | Emit _
      | Skip ->
        acc)
    acc stmts

(* ------------------------------------------------------------------ *)
(* Context construction.                                              *)

type binding = Bvar of string  (** decl key *) | Bsig

let site_of scope ~path ~region ~server name stmts ~extra_reads =
  let resolve x = List.assoc_opt x scope in
  let var_reads = ref [] and sig_reads = ref [] in
  let var_writes = ref [] and sig_writes = ref [] in
  List.iter
    (fun x ->
      match resolve x with
      | Some (Bvar key) -> var_reads := (key, x) :: !var_reads
      | Some Bsig -> sig_reads := x :: !sig_reads
      | None -> ())
    (Stmt.reads stmts @ extra_reads);
  List.iter
    (fun x ->
      match resolve x with
      | Some (Bvar key) -> var_writes := (key, x) :: !var_writes
      | Some Bsig | None -> ())
    (Stmt.writes stmts);
  List.iter
    (fun x ->
      match resolve x with
      | Some Bsig -> sig_writes := x :: !sig_writes
      | Some (Bvar _) | None -> ())
    (Stmt.signal_writes stmts);
  {
    st_behavior = name;
    st_path = path;
    st_region = region;
    st_server = server;
    st_stmts = stmts;
    st_var_reads = List.rev !var_reads;
    st_var_writes = List.rev !var_writes;
    st_sig_reads = List.rev !sig_reads;
    st_sig_writes = List.rev !sig_writes;
    st_waits = List.rev (waits_of_stmts [] stmts);
    st_calls = List.rev (calls_of_stmts [] stmts);
  }

let make_ctx ~phase ?flow (p : program) =
  let base_scope =
    List.map (fun (v : var_decl) -> (v.v_name, Bvar v.v_name)) p.p_vars
    @ List.map (fun (s : sig_decl) -> (s.s_name, Bsig)) p.p_signals
  in
  let rec walk scope path region server b acc =
    let server = server || List.mem b.b_name p.p_servers in
    let scope =
      List.map
        (fun (v : var_decl) -> (v.v_name, Bvar (b.b_name ^ "." ^ v.v_name)))
        b.b_vars
      @ scope
    in
    let path = path @ [ b.b_name ] in
    match b.b_body with
    | Leaf stmts ->
      site_of scope ~path ~region ~server b.b_name stmts ~extra_reads:[]
      :: acc
    | Par children ->
      List.fold_left
        (fun acc c -> walk scope path c.b_name server c acc)
        acc children
    | Seq arms ->
      let toc_reads =
        List.concat_map
          (fun a ->
            List.concat_map
              (fun tr ->
                match tr.t_cond with Some c -> Expr.refs c | None -> [])
              a.a_transitions)
          arms
      in
      let acc =
        if toc_reads = [] then acc
        else
          site_of scope ~path ~region ~server b.b_name []
            ~extra_reads:toc_reads
          :: acc
      in
      List.fold_left
        (fun acc a -> walk scope path region server a.a_behavior acc)
        acc arms
  in
  let sites =
    List.rev (walk base_scope [] p.p_top.b_name false p.p_top [])
  in
  { lc_program = p; lc_phase = phase; lc_sites = sites; lc_flow = flow }

(* ------------------------------------------------------------------ *)
(* Protocol structure recognition.                                    *)

let is_signal (p : program) x =
  List.exists (fun (s : sig_decl) -> String.equal s.s_name x) p.p_signals

(** Procedures shaped like refinement-generated bus masters
    ([MST_send]/[MST_receive]): at least one parameter, a [wait until]
    in the body, and the first parameter driven onto a signal (the bus
    address).  Returns [(proc name, address signal)]. *)
let master_procs (p : program) : (string * string) list =
  List.filter_map
    (fun pr ->
      match pr.prc_params with
      | [] -> None
      | a0 :: _ ->
        if waits_of_stmts [] pr.prc_body = [] then None
        else
          let rec find_addr = function
            | [] -> None
            | Signal_assign (s, Ref x) :: _
              when String.equal x a0.prm_name && is_signal p s ->
              Some (pr.prc_name, s)
            | _ :: rest -> find_addr rest
          in
          find_addr pr.prc_body)
    p.p_procs

(** The wire set of the bus mastered through the given procedures: the
    address signal plus every signal the procedures drive or wait on. *)
let bus_signal_set (p : program) ~addr ~procs =
  let shadowed pr x =
    List.exists (fun prm -> String.equal prm.prm_name x) pr.prc_params
    || List.exists
         (fun (v : var_decl) -> String.equal v.v_name x)
         pr.prc_vars
  in
  List.fold_left
    (fun acc pr ->
      let keep x =
        if is_signal p x && not (shadowed pr x) && not (List.mem x acc) then
          true
        else false
      in
      let written = List.filter keep (Stmt.signal_writes pr.prc_body) in
      let acc = acc @ written in
      let waited =
        List.concat_map Expr.refs (waits_of_stmts [] pr.prc_body)
      in
      acc @ List.filter keep waited)
    [ addr ]
    (List.filter (fun pr -> List.mem_assoc pr.prc_name procs) p.p_procs)

(** A statically decoded slave address: an exact compare or an inclusive
    range, as generated by the memory builders. *)
type served = Single of int | Range of int * int

let serves addr = function
  | Single k -> addr = k
  | Range (lo, hi) -> addr >= lo && addr <= hi

(** Every [(signal, served)] address decode found anywhere in the
    program — behavior leaves, TOC conditions and procedure bodies.
    Recognizes [s = k] and [s >= lo && s <= hi]. *)
let served_addresses (p : program) : (string * served) list =
  let rec harvest acc e =
    let acc =
      match e with
      | Binop (Eq, Ref s, Const (VInt k)) | Binop (Eq, Const (VInt k), Ref s)
        when is_signal p s ->
        (s, Single k) :: acc
      | Binop
          ( And,
            Binop (Ge, Ref s, Const (VInt lo)),
            Binop (Le, Ref s', Const (VInt hi)) )
        when String.equal s s' && is_signal p s ->
        (s, Range (lo, hi)) :: acc
      | _ -> acc
    in
    match e with
    | Binop (_, a, b) -> harvest (harvest acc a) b
    | Unop (_, a) -> harvest acc a
    | Index (_, i) -> harvest acc i
    | Const _ | Ref _ -> acc
  in
  let of_stmts acc stmts = Stmt.fold_exprs harvest acc stmts in
  let acc =
    Behavior.fold
      (fun acc b ->
        match b.b_body with
        | Leaf stmts -> of_stmts acc stmts
        | Seq arms ->
          List.fold_left
            (fun acc a ->
              List.fold_left
                (fun acc tr ->
                  match tr.t_cond with
                  | Some c -> harvest acc c
                  | None -> acc)
                acc a.a_transitions)
            acc arms
        | Par _ -> acc)
      [] p.p_top
  in
  List.fold_left (fun acc pr -> of_stmts acc pr.prc_body) acc p.p_procs

(** Signal usage of one procedure body (parameters and locals masked):
    signals driven, signals read, and the wait conditions. *)
let proc_signal_uses (p : program) (pr : proc_decl) =
  let shadowed x =
    List.exists (fun prm -> String.equal prm.prm_name x) pr.prc_params
    || List.exists (fun (v : var_decl) -> String.equal v.v_name x) pr.prc_vars
  in
  let keep x = is_signal p x && not (shadowed x) in
  let written = List.filter keep (Stmt.signal_writes pr.prc_body) in
  let read = List.filter keep (Stmt.reads pr.prc_body) in
  (written, read)

let severity_for_phase = function
  | Pre -> Diagnostic.Warning
  | Post -> Diagnostic.Error
