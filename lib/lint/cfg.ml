(** Statement-level control-flow graphs; see the interface.

    The graph is built per statement list (one per leaf behavior or
    procedure body).  Compound statements are lowered: an [If] chain
    becomes one branch node per condition with true/false out-edges, a
    [While] becomes a branch node with a back edge from its body, and a
    [For] desugars into synthesized init / test / increment nodes so the
    dataflow transfer functions only ever see primitive statements.
    Synthesized nodes are flagged: they carry no source position and
    must not anchor diagnostics of their own. *)

open Spec
open Ast

type edge = Eseq | Etrue | Efalse

type kind =
  | Nentry
  | Nexit
  | Nstmt of stmt  (** primitive statement — never [If]/[While]/[For] *)
  | Nbranch of expr  (** decision point of an [If]/[While]/[For] test *)

type node = {
  n_id : int;
  n_kind : kind;
  n_synth : bool;
  mutable n_succ : (edge * int) list;
  mutable n_pred : int list;
}

type t = { c_nodes : node array; c_entry : int; c_exit : int }

let size g = Array.length g.c_nodes
let node g i = g.c_nodes.(i)
let succs g i = g.c_nodes.(i).n_succ
let preds g i = g.c_nodes.(i).n_pred

(* ------------------------------------------------------------------ *)
(* Construction.  A [frontier] is the set of dangling labeled          *)
(* out-edges waiting for the next node in execution order.             *)

let build stmts =
  let rev_nodes = ref [] and count = ref 0 in
  let add ?(synth = false) kind =
    let n =
      { n_id = !count; n_kind = kind; n_synth = synth; n_succ = []; n_pred = [] }
    in
    incr count;
    rev_nodes := n :: !rev_nodes;
    n
  in
  let connect frontier target =
    List.iter
      (fun (n, e) ->
        n.n_succ <- n.n_succ @ [ (e, target.n_id) ];
        target.n_pred <- target.n_pred @ [ n.n_id ])
      frontier
  in
  let entry = add Nentry in
  let rec seq frontier stmts = List.fold_left one frontier stmts
  and one frontier s =
    match s with
    | Assign _ | Assign_idx _ | Signal_assign _ | Wait_until _ | Call _
    | Emit _ | Skip ->
      let n = add (Nstmt s) in
      connect frontier n;
      [ (n, Eseq) ]
    | If (branches, els) ->
      let rec chain frontier = function
        | [] -> seq frontier els
        | (c, body) :: rest ->
          let b = add (Nbranch c) in
          connect frontier b;
          let after_body = seq [ (b, Etrue) ] body in
          let after_rest = chain [ (b, Efalse) ] rest in
          after_body @ after_rest
      in
      chain frontier branches
    | While (c, body) ->
      let t = add (Nbranch c) in
      connect frontier t;
      let after_body = seq [ (t, Etrue) ] body in
      connect after_body t;
      [ (t, Efalse) ]
    | For (i, lo, hi, body) ->
      let init = add ~synth:true (Nstmt (Assign (i, lo))) in
      connect frontier init;
      let t = add ~synth:true (Nbranch (Binop (Le, Ref i, hi))) in
      connect [ (init, Eseq) ] t;
      let after_body = seq [ (t, Etrue) ] body in
      let incr_n =
        add ~synth:true (Nstmt (Assign (i, Binop (Add, Ref i, Const (VInt 1)))))
      in
      connect after_body incr_n;
      connect [ (incr_n, Eseq) ] t;
      [ (t, Efalse) ]
  in
  let final = seq [ (entry, Eseq) ] stmts in
  let exit_n = add Nexit in
  connect final exit_n;
  let nodes = Array.of_list (List.rev !rev_nodes) in
  { c_nodes = nodes; c_entry = entry.n_id; c_exit = exit_n.n_id }

(* ------------------------------------------------------------------ *)
(* Per-node access sets for the dataflow domains.                      *)

let exprs_of_kind = function
  | Nentry | Nexit -> []
  | Nbranch c -> [ c ]
  | Nstmt s ->
    (match s with
    | Assign (_, e) | Signal_assign (_, e) | Emit (_, e) | Wait_until e ->
      [ e ]
    | Assign_idx (x, i, e) -> [ Ref x; i; e ]
    | Call (_, args) ->
      List.filter_map
        (function Arg_expr e -> Some e | Arg_var _ -> None)
        args
    | If _ | While _ | For _ | Skip -> [])

(** Names read by the node: every reference of its expressions.  An
    indexed store reads its own array (partial update), and a branch
    reads its condition. *)
let uses n =
  List.sort_uniq String.compare
    (List.concat_map Expr.refs (exprs_of_kind n.n_kind))

(** Variable names the node definitely (fully) overwrites.  Indexed
    stores are partial and kill nothing; signal assignment keeps the old
    value visible until the next delta, so it kills nothing either. *)
let defs n =
  match n.n_kind with
  | Nstmt (Assign (x, _)) -> [ x ]
  | Nstmt (Call (_, args)) ->
    List.sort_uniq String.compare
      (List.filter_map
         (function Arg_var x -> Some x | Arg_expr _ -> None)
         args)
  | _ -> []

(** Signals the node drives. *)
let sig_defs n =
  match n.n_kind with Nstmt (Signal_assign (s, _)) -> [ s ] | _ -> []

(** Whether the node can suspend the executing process: the leaves run
    to their next blocking point, so these nodes are where concurrent
    siblings may interleave. *)
let blocks n =
  match n.n_kind with
  | Nstmt (Wait_until _) | Nstmt (Call _) -> true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Rendering, for the golden tests.                                    *)

let kind_to_string = function
  | Nentry -> "entry"
  | Nexit -> "exit"
  | Nbranch c -> Printf.sprintf "branch %s" (Expr.to_string c)
  | Nstmt s ->
    (match s with
    | Assign (x, e) -> Printf.sprintf "%s := %s" x (Expr.to_string e)
    | Assign_idx (x, i, e) ->
      Printf.sprintf "%s[%s] := %s" x (Expr.to_string i) (Expr.to_string e)
    | Signal_assign (s, e) -> Printf.sprintf "%s <= %s" s (Expr.to_string e)
    | Wait_until c -> Printf.sprintf "wait until %s" (Expr.to_string c)
    | Call (f, args) ->
      Printf.sprintf "call %s/%d" f (List.length args)
    | Emit (tag, e) -> Printf.sprintf "emit %S %s" tag (Expr.to_string e)
    | Skip -> "skip"
    | If _ | While _ | For _ -> "<compound>")

let edge_to_string = function Eseq -> "" | Etrue -> "t:" | Efalse -> "f:"

let to_string g =
  let buf = Buffer.create 256 in
  Array.iter
    (fun n ->
      let succs =
        String.concat ","
          (List.map
             (fun (e, j) -> Printf.sprintf "%s%d" (edge_to_string e) j)
             n.n_succ)
      in
      Buffer.add_string buf
        (Printf.sprintf "%d%s %s -> %s\n" n.n_id
           (if n.n_synth then "*" else "")
           (kind_to_string n.n_kind) succs))
    g.c_nodes;
  Buffer.contents buf
