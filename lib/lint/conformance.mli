(** Protocol-conformance pass: [PROTO001] (bus transaction address not
    decoded by any slave — always an error), [PROTO002] (signal driven
    but never observed, e.g. a [B_start] with no waiter) and [PROTO003]
    (signal waited on but never driven, e.g. a missing [B_done] reply);
    the pairing checks are warnings pre-refinement and errors
    post-refinement. *)

val pass : Pass.pass
