(** Shared infrastructure of the lint passes: the analysis context, the
    pass interface, phase inference, and structural helpers for
    recognizing refinement-generated protocol shapes. *)

open Spec
open Ast

(** Whether the program is an unpartitioned input spec ([Pre]) or a
    refined / server-style output ([Post]); drives severity for the
    phase-sensitive passes. *)
type phase = Pre | Post

val infer_phase : program -> phase
(** [Post] when all storage has moved out of the program variable
    section and wires or servers are present; [Pre] otherwise. *)

(** One leaf behavior (or the TOC conditions of one sequential
    composition), with its accesses resolved against the scope.
    Variable accesses are keyed by declaration: a program variable by
    its name, a behavior-local by [owner.name]. *)
type site = {
  st_behavior : string;
  st_path : string list;  (** path from the top behavior, inclusive *)
  st_region : string;
      (** nearest enclosing Par-child ancestor; the top behavior when
          not under any Par *)
  st_server : bool;  (** inside a registered perpetual server subtree *)
  st_stmts : stmt list;  (** direct statements ([[]] for a TOC site) *)
  st_var_reads : (string * string) list;  (** (decl key, display name) *)
  st_var_writes : (string * string) list;
  st_sig_reads : string list;
  st_sig_writes : string list;
  st_waits : expr list;
  st_calls : (string * arg list) list;
}

type t = {
  lc_program : program;
  lc_phase : phase;
  lc_sites : site list;  (** every leaf and TOC site, preorder *)
  lc_flow : Flow.summary option;
      (** flow summary ({!Flow.of_program}) when the flow-sensitive pass
          modes are enabled; [None] keeps every pass structural *)
}

(** A named analysis pass; [p_codes] documents the diagnostic codes it
    can emit as (code, one-line description) pairs. *)
type pass = {
  p_name : string;
  p_codes : (string * string) list;
  p_run : t -> Diagnostic.t list;
}

val make_ctx : phase:phase -> ?flow:Flow.summary -> program -> t

val waits_of_stmts : expr list -> stmt list -> expr list
(** All [wait until] conditions, including nested ones, prepended in
    reverse source order. *)

val calls_of_stmts :
  (string * arg list) list -> stmt list -> (string * arg list) list
(** All procedure calls, including nested ones. *)

val is_signal : program -> string -> bool

val master_procs : program -> (string * string) list
(** Procedures shaped like refinement-generated bus masters
    ([MST_send]/[MST_receive]): [(proc name, address signal)]. *)

val bus_signal_set :
  program -> addr:string -> procs:(string * string) list -> string list
(** The wire set of the bus mastered through [procs]: the address signal
    plus every signal those procedures drive or wait on. *)

(** A statically decoded slave address: an exact compare or an inclusive
    range. *)
type served = Single of int | Range of int * int

val serves : int -> served -> bool

val served_addresses : program -> (string * served) list
(** Every address decode ([s = k] or [s >= lo && s <= hi]) found in
    behavior leaves, TOC conditions or procedure bodies. *)

val proc_signal_uses : program -> proc_decl -> string list * string list
(** Signals driven and signals read by a procedure body, with
    parameters and locals masked. *)

val severity_for_phase : phase -> Diagnostic.severity
(** [Warning] at [Pre], [Error] at [Post]. *)
