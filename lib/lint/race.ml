(** Race detector.

    A {e variable} race is a declaration accessed from two different
    children of one parallel composition with at least one writer: the
    interleaving of immediate assignments is unconstrained, so the
    observable behavior depends on scheduling.  A {e signal} race needs
    two concurrent {e drivers} — concurrent signal reads are
    deterministic under delta-delay semantics, but the last driver in a
    delta wins.

    Accesses mediated by a protocol procedure do not count: [Call]
    arguments are read at the call site, but reads and writes inside the
    procedure body belong to the protocol (serialized by its handshake),
    which is exactly the mediation refinement introduces.  Subtrees
    registered as perpetual servers (memories, arbiters, bus interfaces)
    are exempt for the same reason: they are protocol endpoints whose
    accesses are serialized by the request/acknowledge wires.

    Severity follows the phase: a race in an unpartitioned input is what
    refinement will serialize (warning); the same race in refined output
    is a broken refinement (error). *)

open Spec
open Ast

let codes =
  [
    ("RACE001",
     "variable accessed from two parallel branches with at least one \
      writer and no mediating protocol");
    ("RACE002", "signal driven from two parallel branches");
    ("RACE003",
     "racy access whose outcome changes under relaxed port ordering \
      (litmus evidence)");
  ]

(* Accesses of the non-server sites under one child subtree, as
   (decl key -> display name) maps for readers and writers.  With a
   flow summary, a leaf site contributes only the accesses at CFG nodes
   the interval analysis proves reachable — two accesses race only when
   both can actually execute; TOC guard reads are kept as-is. *)
let child_accesses ?flow sites child =
  let in_child s =
    (not s.Pass.st_server) && List.mem child s.Pass.st_path
  in
  let sites = List.filter in_child sites in
  let accesses (s : Pass.site) =
    match flow with
    | Some fl when s.Pass.st_stmts <> [] -> (
      match Flow.leaf_at fl s.Pass.st_path with
      | Some li ->
        (li.Flow.li_var_reads, li.Flow.li_var_writes, li.Flow.li_sig_writes)
      | None -> (s.Pass.st_var_reads, s.Pass.st_var_writes, s.Pass.st_sig_writes))
    | _ -> (s.Pass.st_var_reads, s.Pass.st_var_writes, s.Pass.st_sig_writes)
  in
  let sites = List.map (fun s -> (s, accesses s)) sites in
  let vars acc field =
    List.fold_left
      (fun acc (s, acs) ->
        List.fold_left
          (fun acc (key, name) ->
            if List.mem_assoc key acc then acc
            else (key, (name, s.Pass.st_behavior)) :: acc)
          acc (field acs))
      acc sites
  in
  let reads = vars [] (fun (r, _, _) -> r) in
  let writes = vars [] (fun (_, w, _) -> w) in
  let sig_writes =
    List.fold_left
      (fun acc (s, (_, _, sw)) ->
        List.fold_left
          (fun acc x ->
            if List.mem_assoc x acc then acc
            else (x, s.Pass.st_behavior) :: acc)
          acc sw)
      [] sites
  in
  (reads, writes, sig_writes)

let run (ctx : Pass.t) =
  let severity = Pass.severity_for_phase ctx.Pass.lc_phase in
  Behavior.fold
    (fun acc b ->
      match b.b_body with
      | Par children when List.length children >= 2 ->
        let per_child =
          List.map
            (fun c ->
              ( c.b_name,
                child_accesses ?flow:ctx.Pass.lc_flow ctx.Pass.lc_sites
                  c.b_name ))
            children
        in
        (* Variable races: a writer in one child, any accessor in
           another. *)
        let keys =
          List.sort_uniq String.compare
            (List.concat_map
               (fun (_, (reads, writes, _)) ->
                 List.map fst reads @ List.map fst writes)
               per_child)
        in
        let acc =
          List.fold_left
            (fun acc key ->
              let accessors =
                List.filter
                  (fun (_, (reads, writes, _)) ->
                    List.mem_assoc key reads || List.mem_assoc key writes)
                  per_child
              in
              let writers =
                List.filter
                  (fun (_, (_, writes, _)) -> List.mem_assoc key writes)
                  per_child
              in
              match (writers, accessors) with
              | (wc, (_, ww, _)) :: _, _ :: _ :: _ ->
                let name, writer_leaf = List.assoc key ww in
                let other =
                  List.find_map
                    (fun (c, (reads, writes, _)) ->
                      if String.equal c wc then None
                      else
                        match
                          (List.assoc_opt key reads, List.assoc_opt key writes)
                        with
                        | Some (_, leaf), _ | None, Some (_, leaf) ->
                          Some (c, leaf)
                        | None, None -> None)
                    per_child
                in
                begin match other with
                | None -> acc  (* all accesses in the writing child *)
                | Some (oc, other_leaf) ->
                  Diagnostic.makef ~code:"RACE001" ~severity ~pass:"race"
                    ~path:[ b.b_name ] ~loc:name
                    "variable %s is written in branch %s (%s) and accessed \
                     in branch %s (%s) of parallel composition %s with no \
                     mediating protocol"
                    name wc writer_leaf oc other_leaf b.b_name
                  :: acc
                end
              | _ -> acc)
            acc keys
        in
        (* Signal races: two concurrent drivers. *)
        let signals =
          List.sort_uniq String.compare
            (List.concat_map
               (fun (_, (_, _, sw)) -> List.map fst sw)
               per_child)
        in
        List.fold_left
          (fun acc x ->
            let drivers =
              List.filter
                (fun (_, (_, _, sw)) -> List.mem_assoc x sw)
                per_child
            in
            match drivers with
            | (c1, (_, _, sw1)) :: (c2, (_, _, sw2)) :: _ ->
              Diagnostic.makef ~code:"RACE002" ~severity ~pass:"race"
                ~path:[ b.b_name ] ~loc:x
                "signal %s is driven from branches %s (%s) and %s (%s) of \
                 parallel composition %s"
                x c1 (List.assoc x sw1) c2 (List.assoc x sw2) b.b_name
              :: acc
            | _ -> acc)
          acc signals
      | _ -> acc)
    [] ctx.Pass.lc_program.p_top

let pass = { Pass.p_name = "race"; p_codes = codes; p_run = run }
