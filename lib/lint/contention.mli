(** Bus-contention pass: [CONT001] when a bus's master procedures are
    called from two or more parallel regions and some caller does not
    hold an arbitration grant (no request drive + grant wait around the
    transaction), and [CONT002] when callers wrap an arbitration grant
    around a bus only one parallel region ever masters.  The
    refinement-aware twin of this rule lives in {!Core.Check}. *)

(** One bus with its call sites, as the pass (and {!Fixer}) see it. *)
type bus = {
  bus_addr : string;  (** the bus's address signal *)
  bus_regions : string list;  (** distinct caller regions, sorted *)
  bus_callers : Pass.site list;  (** every calling site, preorder *)
  bus_offenders : Pass.site list;  (** callers holding no grant *)
}

val analyze : Pass.t -> bus list
(** Group the program's master procedures into buses by address signal
    and classify each bus's call sites.  A bus needs arbitration when
    [bus_regions] has two or more entries and [bus_offenders] is
    non-empty. *)

val pass : Pass.pass
