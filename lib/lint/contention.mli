(** Bus-contention pass: [CONT001] when a bus's master procedures are
    called from two or more parallel regions and some caller does not
    hold an arbitration grant (no request drive + grant wait around the
    transaction).  The refinement-aware twin of this rule lives in
    {!Core.Check}. *)

val pass : Pass.pass
