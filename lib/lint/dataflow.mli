(** Generic worklist fixpoint solving over {!Cfg} graphs.

    The solver is parameterized over a {!DOMAIN}: an abstract lattice
    with a direction, join/widen, a per-node transfer function and a
    per-edge filter ([edge] returning [None] marks the edge infeasible,
    which is how constant propagation prunes branches).  Widening kicks
    in after a node's joined state has changed {!widen_after} times, so
    loop-heavy specs terminate even on lattices with infinite ascending
    chains (intervals).

    Two concrete lattices live here too: {!Interval} (value ranges with
    environment maps, expression evaluation and branch assumption) and
    {!Names} (plain string sets, the carrier of backward liveness). *)

open Spec
open Ast

module type DOMAIN = sig
  type t

  val direction : [ `Forward | `Backward ]

  val bottom : t
  (** Unreachable / no information yet. *)

  val is_bottom : t -> bool

  val boundary : t
  (** State at the graph boundary: entry for forward analyses, exit for
      backward ones.  Must not be [bottom]. *)

  val equal : t -> t -> bool
  val join : t -> t -> t

  val widen : t -> t -> t
  (** [widen old contrib] — must guarantee finite ascending chains. *)

  val transfer : Cfg.node -> t -> t
  (** Effect of executing the node.  Never applied to [bottom]. *)

  val edge : Cfg.node -> Cfg.edge -> t -> t option
  (** Filter the state crossing the given out-edge of [node]; [None]
      marks the edge infeasible.  For backward analyses the state is the
      successor's in-state flowing back. *)
end

val widen_after : int
(** Number of state changes at a node before [join] becomes [widen]. *)

module Solve (D : DOMAIN) : sig
  type result = {
    r_in : D.t array;  (** per node, state on entry (execution order) *)
    r_out : D.t array;  (** per node, state on exit (execution order) *)
    r_iterations : int;  (** worklist pops until the fixpoint *)
  }

  val run : Cfg.t -> result
end

(** Integer intervals with infinities, environment maps binding names to
    intervals (absent = top), expression evaluation and conditional
    assumption — the carrier of the constant/interval pass. *)
module Interval : sig
  type itv = { lo : int; hi : int }
  (** [min_int]/[max_int] bounds are the infinities; arithmetic
      saturates far below them and never wraps. *)

  val top : itv
  val is_top : itv -> bool
  val const : int -> itv
  val of_value : value -> itv
  val itv_bool : itv  (** [0, 1] *)

  val join_itv : itv -> itv -> itv
  val widen_itv : itv -> itv -> itv
  val meet_itv : itv -> itv -> itv option  (** [None] = empty *)

  val definitely_true : itv -> bool
  val definitely_false : itv -> bool

  val bits_needed : itv -> int option
  (** Bits required for every value in the range under the width pass's
      magnitude rule; [None] when unbounded. *)

  val itv_to_string : itv -> string

  type env
  (** Finite map from names to intervals; unbound = top. *)

  val env_empty : env
  val env_find : string -> env -> itv
  val env_set : string -> itv -> env -> env
  val env_join : env -> env -> env
  val env_widen : env -> env -> env
  val env_equal : env -> env -> bool

  val eval : env -> expr -> itv
  (** Abstract evaluation; array reads are top. *)

  val assume : env -> expr -> bool -> env option
  (** [assume env c outcome] refines [env] under "[c] evaluated to
      [outcome]"; [None] when that is infeasible.  Sharpens variables
      compared against constants; anything else is left unchanged. *)
end

(** String sets — the liveness lattice. *)
module Names : sig
  type t

  val empty : t
  val of_list : string list -> t
  val add : string -> t -> t
  val remove : string -> t -> t
  val union : t -> t -> t
  val diff : t -> t -> t
  val equal : t -> t -> bool
  val mem : string -> t -> bool
  val elements : t -> string list
end
