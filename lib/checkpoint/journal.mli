(** Crash-safe append-only checkpoint journals.

    A journal records every {e definitive} result of a long-running
    computation (a sweep evaluation, a fault-campaign run) as a
    [key -> blob] pair, so a killed process can be resumed: completed
    keys replay from the journal and only the remainder is recomputed.

    On-disk format (all integers big-endian):
    {v
    "coref-journal-1\n"                        magic line
    [u32 length][16-byte MD5 of payload][payload]   repeated
    v}
    The first record's payload is the {e meta} string — a digest binding
    the journal to the producing configuration; {!open_} refuses to
    resume when it does not match.  Every later payload is an opaque
    [(key, blob)] pair.

    Crash safety: records are appended in one [write] and fsynced, so
    after a [SIGKILL] the file is a valid journal followed by at most
    one torn record.  {!open_} stops at the first record whose length,
    checksum or decoding fails and truncates the file back to the last
    good record before reopening it for append — a torn tail costs one
    result, never the journal.

    All operations are thread-safe; worker domains may append
    concurrently. *)

type t

exception Journal_error of string

val open_ : path:string -> meta:string -> t
(** Open [path] for resume-and-append, creating it (and its parent
    directories) when missing.  Replays every intact record into memory
    and truncates any torn tail.
    @raise Journal_error when the file exists but is not a journal, or
    records a different [meta] (the journal belongs to a different
    specification or configuration). *)

val find : t -> string -> string option
(** The blob last recorded for a key, if any. *)

val append : t -> key:string -> string -> unit
(** Record one completed result: a single fsynced write.  Re-appending a
    key overrides earlier records on replay (last record wins). *)

val entries : t -> (string * string) list
(** Every replayed and appended [(key, blob)] pair, in append order. *)

val length : t -> int
(** Number of recorded entries (after last-wins dedup). *)

val meta : t -> string

val path : t -> string

val close : t -> unit
(** Close the underlying descriptor.  Later {!append}s raise. *)

val meta_digest : string list -> string
(** Canonical meta string: hex digest over the components — callers bind
    a journal to (spec digest, configuration fields, format version). *)
