(** Crash-safe append-only journal.  See the interface for the on-disk
    format and the torn-tail recovery contract. *)

let magic = "coref-journal-1\n"

exception Journal_error of string

type t = {
  j_path : string;
  j_meta : string;
  mutable j_fd : Unix.file_descr option;
  j_table : (string, string) Hashtbl.t;
  mutable j_seq : (string * string) list;  (* reversed append order *)
  j_lock : Mutex.t;
}

let errorf fmt = Printf.ksprintf (fun s -> raise (Journal_error s)) fmt

let meta_digest components =
  Digest.to_hex (Digest.string (String.concat "\x00" components))

let rec mkdir_p path =
  if path <> "" && path <> "/" && path <> "." && not (Sys.file_exists path)
  then begin
    mkdir_p (Filename.dirname path);
    try Unix.mkdir path 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* One record: [u32 length][MD5 of payload][payload], built as a single
   string so the append is one [write] — after a kill the file holds at
   most one torn record, which replay then truncates away. *)
let encode_record payload =
  let len = String.length payload in
  let b = Buffer.create (len + 20) in
  Buffer.add_char b (Char.chr ((len lsr 24) land 0xff));
  Buffer.add_char b (Char.chr ((len lsr 16) land 0xff));
  Buffer.add_char b (Char.chr ((len lsr 8) land 0xff));
  Buffer.add_char b (Char.chr (len land 0xff));
  Buffer.add_string b (Digest.string payload);
  Buffer.add_string b payload;
  Buffer.contents b

(* Read every intact record; stop at the first torn or corrupt one.
   Returns the payloads and the offset just past the last good record. *)
let read_records ic =
  let header = try really_input_string ic (String.length magic) with
    | End_of_file -> errorf "not a journal: file shorter than its magic"
  in
  if not (String.equal header magic) then
    errorf "not a journal: bad magic %S" header;
  let payloads = ref [] in
  let good_end = ref (pos_in ic) in
  (try
     while true do
       let hdr = really_input_string ic 4 in
       let len =
         (Char.code hdr.[0] lsl 24)
         lor (Char.code hdr.[1] lsl 16)
         lor (Char.code hdr.[2] lsl 8)
         lor Char.code hdr.[3]
       in
       let digest = really_input_string ic 16 in
       let payload = really_input_string ic len in
       if not (String.equal (Digest.string payload) digest) then
         raise Exit;  (* checksum mismatch: torn or rotted tail *)
       payloads := payload :: !payloads;
       good_end := pos_in ic
     done
   with End_of_file | Exit -> ());
  (List.rev !payloads, !good_end)

let decode_entry payload =
  match (Marshal.from_string payload 0 : string * string) with
  | kv -> Some kv
  | exception (Failure _ | Invalid_argument _) -> None

let record_entry t key blob =
  Hashtbl.replace t.j_table key blob;
  t.j_seq <- (key, blob) :: t.j_seq

let append_raw fd payload =
  let record = Bytes.of_string (encode_record payload) in
  let n = Bytes.length record in
  let written = Unix.write fd record 0 n in
  if written <> n then errorf "short write (%d of %d bytes)" written n;
  Unix.fsync fd

let open_ ~path ~meta =
  mkdir_p (Filename.dirname path);
  let t =
    {
      j_path = path;
      j_meta = meta;
      j_fd = None;
      j_table = Hashtbl.create 64;
      j_seq = [];
      j_lock = Mutex.create ();
    }
  in
  if Sys.file_exists path then begin
    let ic = open_in_bin path in
    let payloads, good_end =
      Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () ->
          read_records ic)
    in
    begin match payloads with
    | [] -> ()  (* magic only: a journal killed before its meta record *)
    | recorded_meta :: entries ->
      if not (String.equal recorded_meta meta) then
        errorf
          "journal %s records a different specification or configuration \
           (meta %s, expected %s) — resume with the original inputs or \
           start a fresh journal"
          path recorded_meta meta;
      List.iter
        (fun payload ->
          (* An undecodable-but-checksummed payload cannot happen short of
             a format change; skip it rather than fail the resume. *)
          match decode_entry payload with
          | Some (key, blob) -> record_entry t key blob
          | None -> ())
        entries
    end;
    let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
    t.j_fd <- Some fd;
    Unix.ftruncate fd good_end;  (* drop the torn tail, if any *)
    ignore (Unix.lseek fd good_end Unix.SEEK_SET);
    if payloads = [] then append_raw fd meta
  end
  else begin
    let fd =
      Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_EXCL ] 0o644
    in
    t.j_fd <- Some fd;
    let header = Bytes.of_string magic in
    ignore (Unix.write fd header 0 (Bytes.length header));
    append_raw fd meta
  end;
  t

let with_lock t f =
  Mutex.lock t.j_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.j_lock) f

let find t key = with_lock t (fun () -> Hashtbl.find_opt t.j_table key)

let append t ~key blob =
  with_lock t (fun () ->
      match t.j_fd with
      | None -> errorf "journal %s is closed" t.j_path
      | Some fd ->
        append_raw fd (Marshal.to_string (key, blob) []);
        record_entry t key blob)

let entries t =
  with_lock t (fun () ->
      (* Append order, each key at its first position with its winning
         (last-recorded) blob. *)
      let seen = Hashtbl.create 16 in
      List.filter_map
        (fun (key, _) ->
          if Hashtbl.mem seen key then None
          else begin
            Hashtbl.add seen key ();
            Some (key, Hashtbl.find t.j_table key)
          end)
        (List.rev t.j_seq))

let length t = with_lock t (fun () -> Hashtbl.length t.j_table)
let meta t = t.j_meta
let path t = t.j_path

let close t =
  with_lock t (fun () ->
      match t.j_fd with
      | None -> ()
      | Some fd ->
        t.j_fd <- None;
        (try Unix.close fd with Unix.Unix_error _ -> ()))
