(** The wire protocol of the [mrefine serve] daemon: newline-delimited
    JSON over a Unix-domain stream socket.

    Each request is one JSON object on one line; each reply is one JSON
    object on one line.  Replies always carry an ["ok"] boolean; error
    replies add ["error"] with a message and never terminate the
    connection — a malformed line costs one error reply, not the
    session.  Requests never embed raw newlines (the JSON escapes cover
    them), so framing is trivial and torn requests are detected as
    parse errors.

    The JSON values here are self-contained: a hand-rolled parser and
    printer (no external dependency), covering objects, arrays,
    strings with standard escapes (including [\uXXXX], encoded to
    UTF-8), integers, floats, booleans and null. *)

(** A JSON document. *)
type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of json list
  | Obj of (string * json) list

val parse : string -> (json, string) result
(** Parse one JSON document (surrounding whitespace allowed; trailing
    garbage is an error). *)

val to_string : json -> string
(** Compact one-line rendering; strings are escaped so the result never
    contains a raw newline. *)

(** {1 Accessors} *)

val member : string -> json -> json option
(** Field lookup on an object; [None] on missing field or non-object. *)

val string_field : ?default:string -> string -> json -> (string, string) result
val int_field : ?default:int -> string -> json -> (int, string) result
val float_field : ?default:float -> string -> json -> (float option, string) result
val bool_field : ?default:bool -> string -> json -> (bool, string) result

val string_list_field :
  ?default:string list -> string -> json -> (string list, string) result
(** A field holding an array of strings (numbers are stringified). *)

(** {1 Requests} *)

type request =
  | Auth of string
      (** present the shared-secret token; must be the first frame of a
          TCP connection when the daemon was started with a token *)
  | Submit of { sb_id : string option; sb_job : json }
      (** enqueue a job; [sb_id] makes the submit idempotent: resubmitting
          an existing id returns its current state instead of enqueueing
          a duplicate *)
  | Status of string
  | Result of { rs_id : string; rs_wait : bool }
      (** with [rs_wait], the reply is delayed until the job leaves the
          queue (done, failed or cancelled) *)
  | Cancel of string
  | Stats
  | Ping
  | Shutdown

val request_of_json : json -> (request, string) result
val request_to_json : request -> json

(** {1 Job states} *)

type state = Pending | Running | Done | Failed | Cancelled

val state_name : state -> string
(** ["pending"], ["running"], ["done"], ["failed"], ["cancelled"]. *)

val state_of_name : string -> state option

val terminal : state -> bool
(** Whether the state is final (done, failed or cancelled). *)

(** {1 Replies} *)

val ok : (string * json) list -> json
(** An [{"ok":true, ...}] reply. *)

val error : string -> json
(** An [{"ok":false,"error":msg}] reply. *)

val error_with : string -> (string * json) list -> json
(** {!error} with extra structured fields, e.g. the [retry_after_ms]
    backpressure hint attached to a busy rejection. *)
