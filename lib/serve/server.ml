(** Socket server; see the interface. *)

(* --- endpoints ---------------------------------------------------------- *)

type endpoint =
  | Unix_path of string
  | Tcp of { host : string; port : int }

let endpoint_of_string s =
  if s = "" then Error "empty endpoint"
  else if String.contains s '/' then Ok (Unix_path s)
  else
    match String.rindex_opt s ':' with
    | None -> Ok (Unix_path s)
    | Some i -> (
      let host = String.sub s 0 i in
      let port = String.sub s (i + 1) (String.length s - i - 1) in
      match int_of_string_opt port with
      | Some p when p >= 0 && p < 65536 && host <> "" ->
        Ok (Tcp { host; port = p })
      | _ -> Error (Printf.sprintf "bad HOST:PORT endpoint %S" s))

let endpoint_to_string = function
  | Unix_path p -> p
  | Tcp { host; port } -> Printf.sprintf "%s:%d" host port

let resolve_tcp ~host ~port =
  match
    Unix.getaddrinfo host (string_of_int port)
      [ Unix.AI_SOCKTYPE Unix.SOCK_STREAM; Unix.AI_FAMILY Unix.PF_INET ]
  with
  | ai :: _ -> Ok ai.Unix.ai_addr
  | [] | (exception Not_found) -> (
    (* No IPv4 binding; fall back to whatever the resolver offers. *)
    match
      Unix.getaddrinfo host (string_of_int port)
        [ Unix.AI_SOCKTYPE Unix.SOCK_STREAM ]
    with
    | ai :: _ -> Ok ai.Unix.ai_addr
    | [] | (exception Not_found) ->
      Error (Printf.sprintf "cannot resolve %s:%d" host port))

let sockaddr_of_endpoint = function
  | Unix_path p -> Ok (Unix.ADDR_UNIX p)
  | Tcp { host; port } -> resolve_tcp ~host ~port

let socket_for_sockaddr addr =
  let domain = Unix.domain_of_sockaddr addr in
  Unix.socket domain Unix.SOCK_STREAM 0

let connect_endpoint ep =
  match sockaddr_of_endpoint ep with
  | Error msg -> Error msg
  | Ok addr -> (
    let fd = socket_for_sockaddr addr in
    match Unix.connect fd addr with
    | () -> Ok fd
    | exception Unix.Unix_error (err, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error
        (Printf.sprintf "cannot connect to %s: %s" (endpoint_to_string ep)
           (Unix.error_message err)))

(* --- configuration ------------------------------------------------------ *)

type config = {
  cfg_token : string option;
  cfg_max_connections : int;
  cfg_max_frame_bytes : int;
  cfg_idle_timeout_s : float option;
  cfg_write_timeout_s : float option;
  cfg_drain_grace_s : float;
}

let default_config =
  {
    cfg_token = None;
    cfg_max_connections = 256;
    cfg_max_frame_bytes = 4 * 1024 * 1024;
    cfg_idle_timeout_s = Some 300.0;
    cfg_write_timeout_s = Some 30.0;
    cfg_drain_grace_s = 5.0;
  }

(* Timing-independent token comparison: every byte of the presented
   token is inspected whatever the stored secret looks like, so reply
   latency leaks neither length-prefix matches nor content. *)
let constant_time_equal presented secret =
  let lp = String.length presented and ls = String.length secret in
  let acc = ref (lp lxor ls) in
  for i = 0 to lp - 1 do
    let s = if ls = 0 then 0 else Char.code secret.[i mod ls] in
    acc := !acc lor (Char.code presented.[i] lxor s)
  done;
  !acc = 0

(* --- server state ------------------------------------------------------- *)

type counters = {
  mutable ct_accepted : int;
  mutable ct_accept_errors : int;
  mutable ct_auth_failures : int;
  mutable ct_oversized_frames : int;
  mutable ct_reaped_timeouts : int;
  mutable ct_rejected_capacity : int;
}

type conn = {
  cn_id : int;
  cn_fd : Unix.file_descr;
  cn_requires_auth : bool;
  mutable cn_authed : bool;
}

type t = {
  sv_socket : string;
  sv_listeners : Unix.file_descr list;
  sv_tcp_port : int option;
  sv_scheduler : Scheduler.t;
  sv_config : config;
  sv_stop : bool Atomic.t;
  sv_conns : (int, conn) Hashtbl.t;
  sv_counters : counters;
  sv_mutex : Mutex.t;
  mutable sv_conn_seq : int;
  mutable sv_acceptor : Thread.t option;
}

let locked t f =
  Mutex.lock t.sv_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.sv_mutex) f

let tcp_port t = t.sv_tcp_port

let server_stats t =
  locked t (fun () ->
      let c = t.sv_counters in
      [
        ("connections_open", Protocol.Int (Hashtbl.length t.sv_conns));
        ("connections_total", Protocol.Int c.ct_accepted);
        ("max_connections", Protocol.Int t.sv_config.cfg_max_connections);
        ("accept_errors", Protocol.Int c.ct_accept_errors);
        ("auth_failures", Protocol.Int c.ct_auth_failures);
        ("oversized_frames", Protocol.Int c.ct_oversized_frames);
        ("reaped_timeouts", Protocol.Int c.ct_reaped_timeouts);
        ("rejected_capacity", Protocol.Int c.ct_rejected_capacity);
      ])

(* --- request dispatch --------------------------------------------------- *)

let dispatch t req =
  match req with
  | Protocol.Auth _ -> assert false (* handled by the connection loop *)
  | Protocol.Ping -> Protocol.ok [ ("pong", Protocol.Bool true) ]
  | Protocol.Stats ->
    Protocol.ok
      (Scheduler.stats t.sv_scheduler
      @ [ ("server", Protocol.Obj (server_stats t)) ])
  | Protocol.Submit { sb_id; sb_job } -> (
    match Scheduler.submit t.sv_scheduler ?id:sb_id sb_job with
    | Ok view -> Protocol.ok (Scheduler.view_fields view)
    | Error rj -> (
      match rj.Scheduler.rj_retry_after_ms with
      | Some ms ->
        Protocol.error_with rj.Scheduler.rj_reason
          [ ("busy", Protocol.Bool true); ("retry_after_ms", Protocol.Int ms) ]
      | None -> Protocol.error rj.Scheduler.rj_reason))
  | Protocol.Status id -> (
    match Scheduler.status t.sv_scheduler id with
    | Some view -> Protocol.ok (Scheduler.view_fields view)
    | None -> Protocol.error (Printf.sprintf "unknown job %S" id))
  | Protocol.Result { rs_id; rs_wait } -> (
    match Scheduler.result t.sv_scheduler ~wait:rs_wait rs_id with
    | Some view -> Protocol.ok (Scheduler.view_fields view)
    | None -> Protocol.error (Printf.sprintf "unknown job %S" rs_id))
  | Protocol.Cancel id -> (
    match Scheduler.cancel t.sv_scheduler id with
    | Ok view -> Protocol.ok (Scheduler.view_fields view)
    | Error msg -> Protocol.error msg)
  | Protocol.Shutdown ->
    Atomic.set t.sv_stop true;
    Protocol.ok [ ("stopping", Protocol.Bool true) ]

let token_ok t presented =
  match t.sv_config.cfg_token with
  | None -> true
  | Some secret -> constant_time_equal presented secret

(* The per-frame step: [`Reply] keeps the connection, [`Close] sends one
   last reply and hangs up (failed or missing authentication). *)
let process t conn line =
  let decoded =
    match Protocol.parse line with
    | Error msg -> Error msg
    | Ok json -> Protocol.request_of_json json
  in
  match decoded with
  | Ok (Protocol.Auth token) ->
    if token_ok t token then begin
      conn.cn_authed <- true;
      `Reply (Protocol.ok [ ("authenticated", Protocol.Bool true) ])
    end
    else begin
      locked t (fun () ->
          t.sv_counters.ct_auth_failures <-
            t.sv_counters.ct_auth_failures + 1);
      `Close (Protocol.error "authentication failed")
    end
  | Ok _ | Error _ when conn.cn_requires_auth && not conn.cn_authed ->
    locked t (fun () ->
        t.sv_counters.ct_auth_failures <- t.sv_counters.ct_auth_failures + 1);
    `Close
      (Protocol.error "authentication required: send {\"op\":\"auth\"} first")
  | Ok req ->
    `Reply
      (try dispatch t req
       with exn ->
         Protocol.error
           (Printf.sprintf "request raised %s" (Printexc.to_string exn)))
  | Error msg -> `Reply (Protocol.error ("bad request: " ^ msg))

(* --- connection handling ------------------------------------------------ *)

(* A connection the server gives up on: the peer sat idle past the read
   timeout or would not drain our replies past the write timeout. *)
exception Reap of string

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off < n then
      match Unix.write fd b off (n - off) with
      | w -> go (off + w)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        raise (Reap "write timeout")
  in
  go 0

let set_timeouts config fd =
  let set opt v =
    try Unix.setsockopt_float fd opt v with Unix.Unix_error _ -> ()
  in
  Option.iter (set Unix.SO_RCVTIMEO) config.cfg_idle_timeout_s;
  Option.iter (set Unix.SO_SNDTIMEO) config.cfg_write_timeout_s

let handle_connection t conn =
  let fd = conn.cn_fd in
  set_timeouts t.sv_config fd;
  let max_frame = t.sv_config.cfg_max_frame_bytes in
  let chunk_len = 8192 in
  let chunk = Bytes.create chunk_len in
  let pending = Buffer.create 256 in
  let searched = ref 0 in
  let discarding = ref false in
  let reply j = write_all fd (Protocol.to_string j ^ "\n") in
  (* Pull the next newline-terminated frame, enforcing the frame-size
     cap: an unterminated frame past the cap costs one error reply, the
     rest of it is swallowed up to its newline, and the connection stays
     protocol-correct for the next frame. *)
  let rec take_line () =
    let len = Buffer.length pending in
    let nl = ref (-1) in
    let i = ref !searched in
    while !nl < 0 && !i < len do
      if Buffer.nth pending !i = '\n' then nl := !i;
      incr i
    done;
    if !nl >= 0 then begin
      let line = Buffer.sub pending 0 !nl in
      let rest = Buffer.sub pending (!nl + 1) (len - !nl - 1) in
      Buffer.clear pending;
      Buffer.add_string pending rest;
      searched := 0;
      if !discarding then begin
        (* the tail of an oversized frame, already answered *)
        discarding := false;
        take_line ()
      end
      else if String.length line > max_frame then begin
        (* a terminated frame can still arrive over the cap in one
           burst — same answer as the unterminated case *)
        locked t (fun () ->
            t.sv_counters.ct_oversized_frames <-
              t.sv_counters.ct_oversized_frames + 1);
        reply
          (Protocol.error
             (Printf.sprintf "frame exceeds %d byte limit" max_frame));
        take_line ()
      end
      else `Line line
    end
    else begin
      searched := len;
      if (not !discarding) && len > max_frame then begin
        locked t (fun () ->
            t.sv_counters.ct_oversized_frames <-
              t.sv_counters.ct_oversized_frames + 1);
        reply
          (Protocol.error
             (Printf.sprintf "frame exceeds %d byte limit" max_frame));
        Buffer.clear pending;
        searched := 0;
        discarding := true
      end
      else if !discarding then begin
        Buffer.clear pending;
        searched := 0
      end;
      match Unix.read fd chunk 0 chunk_len with
      | 0 ->
        if Buffer.length pending > 0 && not !discarding then begin
          (* A torn final line (no trailing newline before the peer
             died) still gets its one reply before the close. *)
          let line = Buffer.contents pending in
          Buffer.clear pending;
          `Last line
        end
        else `Eof
      | n ->
        Buffer.add_subbytes pending chunk 0 n;
        take_line ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> take_line ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        raise (Reap "idle timeout")
      | exception Unix.Unix_error _ -> `Eof
    end
  in
  let rec loop () =
    match take_line () with
    | `Eof -> ()
    | `Last line -> (
      match process t conn line with
      | `Reply j | `Close j -> reply j)
    | `Line line -> (
      match process t conn line with
      | `Reply j ->
        reply j;
        loop ()
      | `Close j -> reply j)
  in
  try loop () with
  | Reap _ ->
    locked t (fun () ->
        t.sv_counters.ct_reaped_timeouts <-
          t.sv_counters.ct_reaped_timeouts + 1)
  | Unix.Unix_error _ | Sys_error _ -> ()

let register_conn t ~requires_auth fd =
  locked t (fun () ->
      if Hashtbl.length t.sv_conns >= t.sv_config.cfg_max_connections then begin
        t.sv_counters.ct_rejected_capacity <-
          t.sv_counters.ct_rejected_capacity + 1;
        None
      end
      else begin
        t.sv_conn_seq <- t.sv_conn_seq + 1;
        t.sv_counters.ct_accepted <- t.sv_counters.ct_accepted + 1;
        let conn =
          {
            cn_id = t.sv_conn_seq;
            cn_fd = fd;
            cn_requires_auth = requires_auth;
            cn_authed = not requires_auth;
          }
        in
        Hashtbl.replace t.sv_conns conn.cn_id conn;
        Some conn
      end)

let unregister_conn t conn =
  locked t (fun () -> Hashtbl.remove t.sv_conns conn.cn_id)

let serve_conn t conn =
  Fun.protect
    ~finally:(fun () ->
      unregister_conn t conn;
      try Unix.close conn.cn_fd with Unix.Unix_error _ -> ())
    (fun () -> handle_connection t conn)

let reject_capacity t fd =
  set_timeouts t.sv_config fd;
  (try
     write_all fd
       (Protocol.to_string
          (Protocol.error_with "server at connection capacity"
             [
               ("busy", Protocol.Bool true);
               ( "retry_after_ms",
                 Protocol.Int (Scheduler.retry_after_ms t.sv_scheduler) );
             ])
       ^ "\n")
   with Reap _ | Unix.Unix_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

(* --- accept loop -------------------------------------------------------- *)

let accept_loop t =
  (* Transient accept failures (EMFILE/ENFILE under fd exhaustion,
     ENOBUFS, ...) must never kill the acceptor: count them, back off
     and keep accepting — a daemon that silently stops answering its
     socket is worse than one that sheds load for a while. *)
  let backoff = ref 0.05 in
  let accept_one lfd =
    match Unix.accept lfd with
    | fd, peer ->
      backoff := 0.05;
      let requires_auth =
        t.sv_config.cfg_token <> None
        && match peer with Unix.ADDR_INET _ -> true | Unix.ADDR_UNIX _ -> false
      in
      (match register_conn t ~requires_auth fd with
      | Some conn ->
        ignore (Thread.create (fun () -> serve_conn t conn) () : Thread.t)
      | None -> reject_capacity t fd)
    | exception
        Unix.Unix_error
          ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.ECONNABORTED
           | Unix.EBADF), _, _) ->
      ()
    | exception Unix.Unix_error (_, _, _) ->
      locked t (fun () ->
          t.sv_counters.ct_accept_errors <-
            t.sv_counters.ct_accept_errors + 1);
      Thread.delay !backoff;
      backoff := Float.min 1.0 (!backoff *. 2.0)
  in
  let rec loop () =
    if Atomic.get t.sv_stop then ()
    else
      (* Poll with a timeout so a shutdown requested on a connection
         thread is noticed without another client connecting. *)
      match Unix.select t.sv_listeners [] [] 0.2 with
      | [], _, _ -> loop ()
      | ready, _, _ ->
        List.iter accept_one ready;
        loop ()
      | exception Unix.Unix_error ((Unix.EINTR | Unix.EBADF), _, _) ->
        if Atomic.get t.sv_stop then () else loop ()
      | exception Unix.Unix_error _ ->
        locked t (fun () ->
            t.sv_counters.ct_accept_errors <-
              t.sv_counters.ct_accept_errors + 1);
        Thread.delay !backoff;
        backoff := Float.min 1.0 (!backoff *. 2.0);
        loop ()
  in
  loop ()

(* --- lifecycle ---------------------------------------------------------- *)

let start ?(config = default_config) ?listen ~socket scheduler =
  let unix_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.unlink socket with Unix.Unix_error _ -> ());
  (try
     Unix.bind unix_fd (Unix.ADDR_UNIX socket);
     Unix.listen unix_fd 64
   with exn ->
     (try Unix.close unix_fd with Unix.Unix_error _ -> ());
     raise exn);
  let tcp =
    match listen with
    | None -> None
    | Some (Unix_path _) ->
      (try Unix.close unix_fd with Unix.Unix_error _ -> ());
      (try Unix.unlink socket with Unix.Unix_error _ -> ());
      invalid_arg "Server.start: listen endpoint must be HOST:PORT"
    | Some (Tcp { host; port }) -> (
      match resolve_tcp ~host ~port with
      | Error msg ->
        (try Unix.close unix_fd with Unix.Unix_error _ -> ());
        (try Unix.unlink socket with Unix.Unix_error _ -> ());
        raise (Unix.Unix_error (Unix.EADDRNOTAVAIL, "bind", msg))
      | Ok addr -> (
        let fd = socket_for_sockaddr addr in
        try
          Unix.setsockopt fd Unix.SO_REUSEADDR true;
          Unix.bind fd addr;
          Unix.listen fd 64;
          let bound_port =
            match Unix.getsockname fd with
            | Unix.ADDR_INET (_, p) -> p
            | _ -> port
          in
          Some (fd, bound_port)
        with exn ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          (try Unix.close unix_fd with Unix.Unix_error _ -> ());
          (try Unix.unlink socket with Unix.Unix_error _ -> ());
          raise exn))
  in
  let t =
    {
      sv_socket = socket;
      sv_listeners =
        (unix_fd :: match tcp with Some (fd, _) -> [ fd ] | None -> []);
      sv_tcp_port = Option.map snd tcp;
      sv_scheduler = scheduler;
      sv_config = config;
      sv_stop = Atomic.make false;
      sv_conns = Hashtbl.create 64;
      sv_counters =
        {
          ct_accepted = 0;
          ct_accept_errors = 0;
          ct_auth_failures = 0;
          ct_oversized_frames = 0;
          ct_reaped_timeouts = 0;
          ct_rejected_capacity = 0;
        };
      sv_mutex = Mutex.create ();
      sv_conn_seq = 0;
      sv_acceptor = None;
    }
  in
  t.sv_acceptor <- Some (Thread.create accept_loop t);
  t

let stop t = Atomic.set t.sv_stop true

let run t =
  (match t.sv_acceptor with
  | Some acceptor ->
    let rec wait () =
      if Atomic.get t.sv_stop then ()
      else begin
        Thread.delay 0.05;
        wait ()
      end
    in
    wait ();
    Thread.join acceptor;
    t.sv_acceptor <- None
  | None -> ());
  (* Graceful drain: stop accepting first, then finish the in-flight
     batch (pending jobs stay journaled for the next lifetime), then
     give connection threads a grace period to flush final replies
     before severing the stragglers. *)
  List.iter
    (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
    t.sv_listeners;
  (try Unix.unlink t.sv_socket with Unix.Unix_error _ -> ());
  Scheduler.shutdown t.sv_scheduler;
  let deadline = Unix.gettimeofday () +. t.sv_config.cfg_drain_grace_s in
  let rec drain () =
    let remaining = locked t (fun () -> Hashtbl.length t.sv_conns) in
    if remaining > 0 && Unix.gettimeofday () < deadline then begin
      Thread.delay 0.02;
      drain ()
    end
  in
  drain ();
  locked t (fun () ->
      Hashtbl.iter
        (fun _ conn ->
          try Unix.shutdown conn.cn_fd Unix.SHUTDOWN_ALL
          with Unix.Unix_error _ -> ())
        t.sv_conns)

let serve ?config ?listen ~socket scheduler =
  run (start ?config ?listen ~socket scheduler)
