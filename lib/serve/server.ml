(** Socket server; see the interface. *)

type t = {
  sv_socket : string;
  sv_fd : Unix.file_descr;
  sv_scheduler : Scheduler.t;
  sv_stop : bool Atomic.t;
  mutable sv_acceptor : Thread.t option;
}

(* --- request dispatch --------------------------------------------------- *)

let dispatch t req =
  match req with
  | Protocol.Ping -> Protocol.ok [ ("pong", Protocol.Bool true) ]
  | Protocol.Stats -> Protocol.ok (Scheduler.stats t.sv_scheduler)
  | Protocol.Submit { sb_id; sb_job } -> (
    match Scheduler.submit t.sv_scheduler ?id:sb_id sb_job with
    | Ok view -> Protocol.ok (Scheduler.view_fields view)
    | Error msg -> Protocol.error msg)
  | Protocol.Status id -> (
    match Scheduler.status t.sv_scheduler id with
    | Some view -> Protocol.ok (Scheduler.view_fields view)
    | None -> Protocol.error (Printf.sprintf "unknown job %S" id))
  | Protocol.Result { rs_id; rs_wait } -> (
    match Scheduler.result t.sv_scheduler ~wait:rs_wait rs_id with
    | Some view -> Protocol.ok (Scheduler.view_fields view)
    | None -> Protocol.error (Printf.sprintf "unknown job %S" rs_id))
  | Protocol.Cancel id -> (
    match Scheduler.cancel t.sv_scheduler id with
    | Ok view -> Protocol.ok (Scheduler.view_fields view)
    | Error msg -> Protocol.error msg)
  | Protocol.Shutdown ->
    Atomic.set t.sv_stop true;
    Protocol.ok [ ("stopping", Protocol.Bool true) ]

let reply_for t line =
  match Protocol.parse line with
  | Error msg -> Protocol.error ("bad request: " ^ msg)
  | Ok json -> (
    match Protocol.request_of_json json with
    | Error msg -> Protocol.error ("bad request: " ^ msg)
    | Ok req -> (
      try dispatch t req
      with exn ->
        Protocol.error
          (Printf.sprintf "request raised %s" (Printexc.to_string exn))))

(* --- connection handling ------------------------------------------------ *)

let handle_connection t fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let rec loop () =
    match input_line ic with
    | exception End_of_file -> ()
    | exception Sys_error _ -> ()
    | line ->
      let reply = reply_for t line in
      (match
         output_string oc (Protocol.to_string reply);
         output_char oc '\n';
         flush oc
       with
      | () -> ()
      | exception Sys_error _ -> ());
      (* A torn final line (no trailing newline before the peer died)
         still got its error reply above; keep reading until EOF. *)
      loop ()
  in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    loop

(* --- accept loop -------------------------------------------------------- *)

let accept_loop t =
  let rec loop () =
    if Atomic.get t.sv_stop then ()
    else
      (* Poll with a timeout so a shutdown requested on a connection
         thread is noticed without another client connecting. *)
      match Unix.select [ t.sv_fd ] [] [] 0.2 with
      | [], _, _ -> loop ()
      | _ :: _, _, _ -> (
        match Unix.accept t.sv_fd with
        | fd, _ ->
          ignore (Thread.create (fun () -> handle_connection t fd) () : Thread.t);
          loop ()
        | exception Unix.Unix_error ((EINTR | EAGAIN | ECONNABORTED), _, _) ->
          loop ()
        | exception Unix.Unix_error (EBADF, _, _) -> ())
      | exception Unix.Unix_error ((EINTR | EBADF), _, _) ->
        if Atomic.get t.sv_stop then () else loop ()
  in
  loop ()

let start ~socket scheduler =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.unlink socket with Unix.Unix_error _ -> ());
  (try
     Unix.bind fd (Unix.ADDR_UNIX socket);
     Unix.listen fd 64
   with exn ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise exn);
  let t =
    {
      sv_socket = socket;
      sv_fd = fd;
      sv_scheduler = scheduler;
      sv_stop = Atomic.make false;
      sv_acceptor = None;
    }
  in
  t.sv_acceptor <- Some (Thread.create accept_loop t);
  t

let stop t = Atomic.set t.sv_stop true

let run t =
  (match t.sv_acceptor with
  | Some acceptor ->
    let rec wait () =
      if Atomic.get t.sv_stop then ()
      else begin
        Thread.delay 0.05;
        wait ()
      end
    in
    wait ();
    Thread.join acceptor;
    t.sv_acceptor <- None
  | None -> ());
  Scheduler.shutdown t.sv_scheduler;
  (try Unix.close t.sv_fd with Unix.Unix_error _ -> ());
  (try Unix.unlink t.sv_socket with Unix.Unix_error _ -> ())

let serve ~socket scheduler = run (start ~socket scheduler)
