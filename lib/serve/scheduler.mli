(** The daemon's job scheduler: an id-keyed job table whose pending jobs
    a dispatcher thread drains in batches through the supervised domain
    pool ({!Explore.Pool.supervise}) — a worker crash is confined to its
    job and surfaces as a [failed] state, never as a dead daemon.

    {b Lifecycle.}  [pending → running → done | failed | cancelled].
    Submits are idempotent under client-supplied ids: resubmitting an id
    already in the table returns its current state instead of enqueueing
    a duplicate — the retry idiom for clients surviving a daemon
    restart.

    {b Cancellation and deadlines.}  Every job carries an atomic cancel
    flag, or-ed with its deadline into the cooperative poll that
    {!Jobs.run} threads down to the simulation kernels
    ({!Sim.Runtime.hooks.h_poll}).  Cancelling a pending job is
    immediate; cancelling a running job stops it at its next poll.

    {b Crash safety.}  With a journal, every submitted job's JSON is
    checkpointed before it is acknowledged (["spec/<id>"]), every
    terminal outcome when it is reached (["done/<id>"]), and every
    cancellation (["cancel/<id>"]).  A restarted scheduler replays the
    journal: finished jobs come back with their results, and jobs that
    were pending or running when the process died are {e re-enqueued}
    and run again — a SIGKILL mid-batch costs the partial batch, never
    an acknowledged result. *)

type t

val create :
  ?journal:Checkpoint.Journal.t ->
  ?jobs:int ->
  ?max_jobs:int ->
  ?max_pending:int ->
  ?default_deadline_s:float ->
  Session.t ->
  t
(** Start a scheduler (and its dispatcher thread) over the shared
    session.  [jobs] is the domain count per batch (default 1 — inline
    in the dispatcher's domain, which keeps the simulator's domain-local
    session cache hot across batches; raise it to trade that warmth for
    intra-batch parallelism); [max_jobs] bounds the retained job
    table (default 4096; submits beyond it are rejected until old jobs
    age out — the hard stop that keeps a daemon's memory bounded);
    [max_pending] is the admission-control soft cap (default 256): when
    the queue is that deep, submits are turned away with a
    [retry_after_ms] hint instead of being enqueued, so clients back off
    while the queue drains; [default_deadline_s] applies to jobs that
    set no deadline of their own.  With [journal], previously recorded
    jobs are replayed as described above — in-flight ones are
    re-enqueued immediately (replay is exempt from [max_pending]).
    @raise Invalid_argument when [jobs < 1], [max_jobs < 1] or
    [max_pending < 1]. *)

val journal_meta : string
(** The {!Checkpoint.Journal} meta string of scheduler journals (binds
    the file to the serve journal format version). *)

(** A snapshot of one job, as rendered into replies. *)
type view = {
  v_id : string;
  v_state : Protocol.state;
  v_output : string option;  (** the report, in terminal [Done] state *)
  v_error : string option;  (** failure or cancellation message *)
  v_meta : (string * Protocol.json) list;
  v_replayed : bool;  (** the outcome was restored from the journal *)
}

val view_fields : view -> (string * Protocol.json) list
(** The reply-envelope fields of a snapshot ([id], [state], and when
    present [output] / [error] / [meta] / [replayed]). *)

(** Why a submit was refused.  [rj_retry_after_ms] is the backpressure
    hint of a queue-depth rejection: the queue is draining, come back in
    roughly that long (queue depth × recent mean per-job latency ÷
    worker count, clamped to [25 ms, 60 s]).  Hard rejections (table
    full, shutting down) carry no hint. *)
type reject = {
  rj_reason : string;
  rj_retry_after_ms : int option;
}

val submit :
  t -> ?id:string -> Protocol.json -> (view, reject) result
(** Enqueue a job (or return the existing state under an already-used
    id — idempotent resubmits bypass admission control).  Refused with a
    [retry_after_ms] hint when the pending queue is at [max_pending],
    and without one when the job table is full or the scheduler is
    shutting down. *)

val retry_after_ms : t -> int
(** The backpressure hint for the current queue depth — what a busy
    rejection would advise right now.  Used by the server when turning
    away work for non-queue reasons (e.g. the connection cap). *)

val status : t -> string -> view option

val result : t -> wait:bool -> string -> view option
(** Like {!status}, but with [wait] the call blocks until the job
    reaches a terminal state.  [None] for unknown ids. *)

val cancel : t -> string -> (view, string) result
(** Request cancellation.  Terminal jobs are returned unchanged (a
    cancel is not an error twice); unknown ids fail. *)

val stats : t -> (string * Protocol.json) list
(** Counters for the [stats] reply: jobs by state, batches dispatched,
    busy/full submit rejections, the recent mean per-job latency behind
    the backpressure hint, the session's elaboration-cache and the
    shared evaluation cache's hit/miss/resident/eviction figures. *)

val shutdown : t -> unit
(** Stop accepting submits, wake every waiter, finish the in-flight
    batch and join the dispatcher.  Idempotent. *)
