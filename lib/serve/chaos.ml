(** Seeded fault-injecting proxy; see the interface. *)

module Rng = Partitioning.Rng

type fault =
  | Pass
  | Delay of { dl_every_bytes : int; dl_ms : int }
  | Drop_after of { dr_bytes : int }
  | Torn_write of { tw_bytes : int }
  | Garbage of { gb_bytes : int }
  | Reset

let fault_to_string = function
  | Pass -> "pass"
  | Delay { dl_every_bytes; dl_ms } ->
    Printf.sprintf "delay(%dms per %dB)" dl_ms dl_every_bytes
  | Drop_after { dr_bytes } -> Printf.sprintf "drop-after(%dB)" dr_bytes
  | Torn_write { tw_bytes } -> Printf.sprintf "torn-write(%dB)" tw_bytes
  | Garbage { gb_bytes } -> Printf.sprintf "garbage(%dB)" gb_bytes
  | Reset -> "reset"

(* The schedule is pure in (seed, index): each connection mixes its
   accept-order index into the seed and draws its fault from a private
   generator, so replaying a run needs only the seed — no shared RNG
   state to race on, no dependence on timing. *)
let plan ~seed i =
  let rng = Rng.create (seed lxor ((i + 1) * 0x9E3779B9)) in
  let roll = Rng.int rng 100 in
  if roll < 40 then Pass
  else if roll < 55 then
    Delay
      { dl_every_bytes = 256 + Rng.int rng 1792; dl_ms = 1 + Rng.int rng 20 }
  else if roll < 70 then Drop_after { dr_bytes = 64 + Rng.int rng 4096 }
  else if roll < 80 then Torn_write { tw_bytes = 1 + Rng.int rng 64 }
  else if roll < 90 then Garbage { gb_bytes = 1 + Rng.int rng 32 }
  else Reset

(* --- proxy -------------------------------------------------------------- *)

type t = {
  ch_fd : Unix.file_descr;
  ch_port : int option;
  ch_listen_path : string option;
  ch_upstream : Server.endpoint;
  ch_seed : int;
  ch_log : (int -> fault -> unit) option;
  ch_stop : bool Atomic.t;
  mutable ch_next : int;
  mutable ch_acceptor : Thread.t option;
}

let port t = t.ch_port

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

let write_all fd buf off len =
  let rec go off len =
    if len > 0 then begin
      let w = Unix.write fd buf off len in
      go (off + w) (len - w)
    end
  in
  go off len

(* Copy [src] to [dst] under the connection's fault: [torn_limit] cuts
   the copy after that many bytes, [delay] sleeps every so many bytes,
   and [budget] is the byte allowance shared by both directions of a
   [Drop_after] connection — once spent, the link goes dark without a
   FIN the peer can trust. *)
let pump ~torn_limit ~delay ~budget src dst =
  let buf = Bytes.create 4096 in
  let sent = ref 0 in
  let rec loop () =
    if !sent < torn_limit then begin
      let want = min (Bytes.length buf) (torn_limit - !sent) in
      match Unix.read src buf 0 want with
      | 0 -> ()
      | n ->
        let allowed =
          match budget with
          | None -> true
          | Some b -> Atomic.fetch_and_add b (-n) > 0
        in
        if allowed then begin
          write_all dst buf 0 n;
          sent := !sent + n;
          (match delay with
          | Some (every, ms) when !sent / every <> (!sent - n) / every ->
            Thread.delay (float_of_int ms /. 1000.0)
          | _ -> ());
          loop ()
        end
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | exception Unix.Unix_error _ -> ()
    end
  in
  loop ();
  (try Unix.shutdown src Unix.SHUTDOWN_RECEIVE with Unix.Unix_error _ -> ());
  try Unix.shutdown dst Unix.SHUTDOWN_SEND with Unix.Unix_error _ -> ()

let handle t client fault =
  match fault with
  | Reset -> close_quietly client
  | _ -> (
    match Server.connect_endpoint t.ch_upstream with
    | Error _ -> close_quietly client
    | Ok up ->
      (match fault with
      | Garbage { gb_bytes } -> (
        (* poison the first frame: the server answers with a parse
           error, which the client must treat as a failed attempt *)
        let junk = Bytes.make gb_bytes 'x' in
        try write_all up junk 0 gb_bytes with Unix.Unix_error _ -> ())
      | _ -> ());
      let budget =
        match fault with
        | Drop_after { dr_bytes } -> Some (Atomic.make dr_bytes)
        | _ -> None
      in
      let torn_limit =
        match fault with
        | Torn_write { tw_bytes } -> tw_bytes
        | _ -> max_int
      in
      let delay =
        match fault with
        | Delay { dl_every_bytes; dl_ms } -> Some (dl_every_bytes, dl_ms)
        | _ -> None
      in
      let down =
        Thread.create
          (fun () -> pump ~torn_limit:max_int ~delay:None ~budget up client)
          ()
      in
      pump ~torn_limit ~delay ~budget client up;
      if torn_limit <> max_int then begin
        (* a torn write dies outright: no reply ever reaches the client *)
        (try Unix.shutdown up Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
        try Unix.shutdown client Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ()
      end;
      Thread.join down;
      close_quietly up;
      close_quietly client)

let accept_loop t =
  (* Poll with a timeout so {!stop} is noticed without one last client
     having to connect (a plain [accept] would block through a close). *)
  let rec loop () =
    if Atomic.get t.ch_stop then ()
    else
      match Unix.select [ t.ch_fd ] [] [] 0.2 with
      | [], _, _ -> loop ()
      | _ :: _, _, _ -> (
        match Unix.accept t.ch_fd with
        | client, _ ->
          let i = t.ch_next in
          t.ch_next <- t.ch_next + 1;
          let fault = plan ~seed:t.ch_seed i in
          (match t.ch_log with Some f -> f i fault | None -> ());
          ignore
            (Thread.create (fun () -> handle t client fault) () : Thread.t);
          loop ()
        | exception
            Unix.Unix_error
              (( Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK
               | Unix.ECONNABORTED ), _, _) ->
          loop ()
        | exception Unix.Unix_error _ -> ())
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | exception Unix.Unix_error _ -> ()
  in
  loop ()

let start ?log ~listen ~upstream ~seed () =
  let path, addr =
    match listen with
    | Server.Unix_path p ->
      (try Unix.unlink p with Unix.Unix_error _ -> ());
      (Some p, Unix.ADDR_UNIX p)
    | Server.Tcp { host; port } -> (
      match Server.sockaddr_of_endpoint (Server.Tcp { host; port }) with
      | Ok addr -> (None, addr)
      | Error msg -> raise (Unix.Unix_error (Unix.EADDRNOTAVAIL, "bind", msg)))
  in
  let fd = Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
  (try
     (match addr with
     | Unix.ADDR_INET _ -> Unix.setsockopt fd Unix.SO_REUSEADDR true
     | Unix.ADDR_UNIX _ -> ());
     Unix.bind fd addr;
     Unix.listen fd 64
   with exn ->
     close_quietly fd;
     raise exn);
  let bound_port =
    match Unix.getsockname fd with Unix.ADDR_INET (_, p) -> Some p | _ -> None
  in
  let t =
    {
      ch_fd = fd;
      ch_port = bound_port;
      ch_listen_path = path;
      ch_upstream = upstream;
      ch_seed = seed;
      ch_log = log;
      ch_stop = Atomic.make false;
      ch_next = 0;
      ch_acceptor = None;
    }
  in
  t.ch_acceptor <- Some (Thread.create accept_loop t);
  t

let stop t =
  Atomic.set t.ch_stop true;
  (match t.ch_acceptor with
  | Some acceptor ->
    Thread.join acceptor;
    t.ch_acceptor <- None
  | None -> ());
  close_quietly t.ch_fd;
  match t.ch_listen_path with
  | Some p -> ( try Unix.unlink p with Unix.Unix_error _ -> ())
  | None -> ()
