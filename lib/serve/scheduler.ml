(** Job scheduler; see the interface. *)

let journal_meta = Checkpoint.Journal.meta_digest [ "mrefine-serve-journal"; "1" ]

type job = {
  j_id : string;
  j_spec : Protocol.json;
  mutable j_state : Protocol.state;
  mutable j_output : string option;
  mutable j_error : string option;
  mutable j_meta : (string * Protocol.json) list;
  mutable j_replayed : bool;
  mutable j_started : float;  (* 0.0 until the job leaves the queue *)
  j_cancel : bool Atomic.t;
  j_deadline_hit : bool Atomic.t;
  j_deadline_s : float option;
}

(* Recent terminal-job latencies, the signal behind the retry_after_ms
   backpressure hint.  Fixed ring so a long-lived daemon tracks the
   current workload, not its lifetime average. *)
let latency_ring = 32

type t = {
  sc_session : Session.t;
  sc_jobs : int;
  sc_max : int;
  sc_max_pending : int;
  sc_default_deadline : float option;
  sc_journal : Checkpoint.Journal.t option;
  sc_table : (string, job) Hashtbl.t;
  sc_pending : string Queue.t;
  sc_latencies : float array;
  mutable sc_lat_next : int;
  mutable sc_lat_count : int;
  mutable sc_busy_rejects : int;
  mutable sc_full_rejects : int;
  mutable sc_running : int;
  mutable sc_counter : int;
  mutable sc_batches : int;
  mutable sc_stopping : bool;
  sc_mutex : Mutex.t;
  sc_cond : Condition.t;
  mutable sc_dispatcher : Thread.t option;
}

let locked t f =
  Mutex.lock t.sc_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.sc_mutex) f

(* --- views -------------------------------------------------------------- *)

type view = {
  v_id : string;
  v_state : Protocol.state;
  v_output : string option;
  v_error : string option;
  v_meta : (string * Protocol.json) list;
  v_replayed : bool;
}

let view_of_job j =
  {
    v_id = j.j_id;
    v_state = j.j_state;
    v_output = j.j_output;
    v_error = j.j_error;
    v_meta = j.j_meta;
    v_replayed = j.j_replayed;
  }

let view_fields v =
  [
    ("id", Protocol.String v.v_id);
    ("state", Protocol.String (Protocol.state_name v.v_state));
  ]
  @ (match v.v_output with
    | Some s -> [ ("output", Protocol.String s) ]
    | None -> [])
  @ (match v.v_error with
    | Some s -> [ ("error", Protocol.String s) ]
    | None -> [])
  @ (match v.v_meta with
    | [] -> []
    | meta -> [ ("meta", Protocol.Obj meta) ])
  @ if v.v_replayed then [ ("replayed", Protocol.Bool true) ] else []

(* --- journal encoding --------------------------------------------------- *)

let spec_key id = "spec/" ^ id
let done_key id = "done/" ^ id
let cancel_key id = "cancel/" ^ id

let outcome_blob j =
  Protocol.to_string
    (Protocol.Obj
       ([ ("state", Protocol.String (Protocol.state_name j.j_state)) ]
       @ (match j.j_output with
         | Some s -> [ ("output", Protocol.String s) ]
         | None -> [])
       @ (match j.j_error with
         | Some s -> [ ("error", Protocol.String s) ]
         | None -> [])
       @ match j.j_meta with
         | [] -> []
         | meta -> [ ("meta", Protocol.Obj meta) ]))

let journal_append t ~key blob =
  match t.sc_journal with
  | None -> ()
  | Some jr -> Checkpoint.Journal.append jr ~key blob

(* --- job completion (mutex held) ---------------------------------------- *)

let record_latency t j =
  if j.j_started > 0.0 then begin
    t.sc_latencies.(t.sc_lat_next) <- Unix.gettimeofday () -. j.j_started;
    t.sc_lat_next <- (t.sc_lat_next + 1) mod latency_ring;
    t.sc_lat_count <- min latency_ring (t.sc_lat_count + 1)
  end

(* Mean recent per-job wall clock; a conservative floor stands in until
   the first job completes. *)
let recent_latency_s t =
  if t.sc_lat_count = 0 then 0.05
  else begin
    let sum = ref 0.0 in
    for i = 0 to t.sc_lat_count - 1 do
      sum := !sum +. t.sc_latencies.(i)
    done;
    !sum /. float_of_int t.sc_lat_count
  end

let retry_hint_ms t ~depth =
  let s = float_of_int (max 1 depth) *. recent_latency_s t
          /. float_of_int t.sc_jobs in
  max 25 (min 60_000 (int_of_float (ceil (s *. 1e3))))

let finish t j outcome =
  record_latency t j;
  if j.j_started > 0.0 then t.sc_running <- max 0 (t.sc_running - 1);
  (match outcome with
  | Ok (o : Jobs.outcome) ->
    j.j_state <- Protocol.Done;
    j.j_output <- Some o.Jobs.o_output;
    j.j_meta <- o.Jobs.o_meta
  | Error msg ->
    if Atomic.get j.j_cancel then begin
      j.j_state <- Protocol.Cancelled;
      j.j_error <- Some Jobs.cancelled_message
    end
    else if Atomic.get j.j_deadline_hit && msg = Jobs.cancelled_message
    then begin
      j.j_state <- Protocol.Failed;
      j.j_error <- Some "deadline exceeded"
    end
    else begin
      j.j_state <- Protocol.Failed;
      j.j_error <- Some msg
    end);
  journal_append t ~key:(done_key j.j_id) (outcome_blob j);
  Condition.broadcast t.sc_cond

(* --- dispatcher --------------------------------------------------------- *)

let make_poll j =
  let started = Unix.gettimeofday () in
  fun () ->
    if Atomic.get j.j_cancel then true
    else
      match j.j_deadline_s with
      | Some limit when Unix.gettimeofday () -. started > limit ->
        Atomic.set j.j_deadline_hit true;
        true
      | _ -> false

let run_batch t batch =
  t.sc_batches <- t.sc_batches + 1;
  let results =
    Explore.Pool.supervise
      ~jobs:(min t.sc_jobs (max 1 (List.length batch)))
      ~f:(fun j -> Jobs.run ~session:t.sc_session ~poll:(make_poll j) j.j_spec)
      batch
  in
  locked t (fun () ->
      List.iter2
        (fun j result ->
          match result with
          | Ok outcome -> finish t j outcome
          | Error (fl : Explore.Pool.failure) ->
            finish t j
              (Error
                 (Printf.sprintf "crashed after %d attempt(s): %s"
                    fl.Explore.Pool.f_attempts fl.Explore.Pool.f_exn)))
        batch results)

let rec dispatcher_loop t =
  let batch =
    locked t (fun () ->
        while (not t.sc_stopping) && Queue.is_empty t.sc_pending do
          Condition.wait t.sc_cond t.sc_mutex
        done;
        if t.sc_stopping then None
        else begin
          let batch = ref [] in
          Queue.iter
            (fun id ->
              match Hashtbl.find_opt t.sc_table id with
              | Some j when j.j_state = Protocol.Pending ->
                j.j_state <- Protocol.Running;
                j.j_started <- Unix.gettimeofday ();
                t.sc_running <- t.sc_running + 1;
                batch := j :: !batch
              | _ -> () (* cancelled while pending, or aged out *))
            t.sc_pending;
          Queue.clear t.sc_pending;
          Some (List.rev !batch)
        end)
  in
  match batch with
  | None -> ()
  | Some [] -> dispatcher_loop t
  | Some batch ->
    run_batch t batch;
    dispatcher_loop t

(* --- construction and journal replay ------------------------------------ *)

let numeric_suffix id =
  if String.length id > 1 && id.[0] = 'j' then
    int_of_string_opt (String.sub id 1 (String.length id - 1))
  else None

let replay t =
  match t.sc_journal with
  | None -> ()
  | Some jr ->
    (* Last record wins per key; spec order decides the re-enqueue
       order of in-flight jobs. *)
    let specs = ref [] in
    let dones = Hashtbl.create 64 in
    let cancels = Hashtbl.create 16 in
    List.iter
      (fun (key, blob) ->
        let strip prefix =
          String.sub key (String.length prefix)
            (String.length key - String.length prefix)
        in
        if String.starts_with ~prefix:"spec/" key then begin
          let id = strip "spec/" in
          if not (List.mem_assoc id !specs) then specs := (id, blob) :: !specs
        end
        else if String.starts_with ~prefix:"done/" key then
          Hashtbl.replace dones (strip "done/") blob
        else if String.starts_with ~prefix:"cancel/" key then
          Hashtbl.replace cancels (strip "cancel/") ())
      (Checkpoint.Journal.entries jr);
    List.iter
      (fun (id, spec_blob) ->
        match Protocol.parse spec_blob with
        | Error _ -> () (* an undecodable record costs one job, not the daemon *)
        | Ok spec ->
          let j =
            {
              j_id = id;
              j_spec = spec;
              j_state = Protocol.Pending;
              j_output = None;
              j_error = None;
              j_meta = [];
              j_replayed = true;
              j_started = 0.0;
              j_cancel = Atomic.make false;
              j_deadline_hit = Atomic.make false;
              j_deadline_s = t.sc_default_deadline;
            }
          in
          (match Hashtbl.find_opt dones id with
          | Some blob -> (
            match Protocol.parse blob with
            | Ok outcome ->
              (match Protocol.string_field ~default:"failed" "state" outcome with
              | Ok name -> (
                match Protocol.state_of_name name with
                | Some s when Protocol.terminal s -> j.j_state <- s
                | _ -> j.j_state <- Protocol.Failed)
              | Error _ -> j.j_state <- Protocol.Failed);
              (match Protocol.member "output" outcome with
              | Some (Protocol.String s) -> j.j_output <- Some s
              | _ -> ());
              (match Protocol.member "error" outcome with
              | Some (Protocol.String s) -> j.j_error <- Some s
              | _ -> ());
              (match Protocol.member "meta" outcome with
              | Some (Protocol.Obj fields) -> j.j_meta <- fields
              | _ -> ())
            | Error _ ->
              j.j_state <- Protocol.Failed;
              j.j_error <- Some "journal outcome unreadable")
          | None ->
            if Hashtbl.mem cancels id then begin
              j.j_state <- Protocol.Cancelled;
              j.j_error <- Some Jobs.cancelled_message
            end);
          Hashtbl.replace t.sc_table id j;
          if j.j_state = Protocol.Pending then Queue.add id t.sc_pending;
          (match numeric_suffix id with
          | Some n when n > t.sc_counter -> t.sc_counter <- n
          | _ -> ()))
      (List.rev !specs)

let create ?journal ?(jobs = 1) ?(max_jobs = 4096) ?(max_pending = 256)
    ?default_deadline_s session =
  if jobs < 1 then invalid_arg "Scheduler.create: jobs < 1";
  if max_jobs < 1 then invalid_arg "Scheduler.create: max_jobs < 1";
  if max_pending < 1 then invalid_arg "Scheduler.create: max_pending < 1";
  let t =
    {
      sc_session = session;
      sc_jobs = jobs;
      sc_max = max_jobs;
      sc_max_pending = max_pending;
      sc_default_deadline = default_deadline_s;
      sc_journal = journal;
      sc_table = Hashtbl.create 64;
      sc_pending = Queue.create ();
      sc_latencies = Array.make latency_ring 0.0;
      sc_lat_next = 0;
      sc_lat_count = 0;
      sc_busy_rejects = 0;
      sc_full_rejects = 0;
      sc_running = 0;
      sc_counter = 0;
      sc_batches = 0;
      sc_stopping = false;
      sc_mutex = Mutex.create ();
      sc_cond = Condition.create ();
      sc_dispatcher = None;
    }
  in
  replay t;
  t.sc_dispatcher <- Some (Thread.create dispatcher_loop t);
  t

(* --- client operations -------------------------------------------------- *)

let job_deadline t spec =
  match Protocol.float_field "job_deadline" spec with
  | Ok (Some d) -> Some d
  | _ -> t.sc_default_deadline

type reject = {
  rj_reason : string;
  rj_retry_after_ms : int option;
}

let retry_after_ms t =
  locked t (fun () ->
      retry_hint_ms t ~depth:(Queue.length t.sc_pending + t.sc_running))

let submit t ?id spec =
  locked t (fun () ->
      if t.sc_stopping then
        Error
          { rj_reason = "scheduler is shutting down"; rj_retry_after_ms = None }
      else
        match id with
        | Some id when Hashtbl.mem t.sc_table id ->
          Ok (view_of_job (Hashtbl.find t.sc_table id))
        | _ ->
          let depth = Queue.length t.sc_pending + t.sc_running in
          if Hashtbl.length t.sc_table >= t.sc_max then begin
            t.sc_full_rejects <- t.sc_full_rejects + 1;
            Error { rj_reason = "job table full"; rj_retry_after_ms = None }
          end
          else if depth >= t.sc_max_pending then begin
            (* Backpressure before hard rejection: the queue is deep but
               draining, so tell the client when to come back instead of
               turning it away for good. *)
            t.sc_busy_rejects <- t.sc_busy_rejects + 1;
            Error
              {
                rj_reason =
                  Printf.sprintf "server busy: %d jobs queued" depth;
                rj_retry_after_ms = Some (retry_hint_ms t ~depth);
              }
          end
          else begin
            let id =
              match id with
              | Some id -> id
              | None ->
                t.sc_counter <- t.sc_counter + 1;
                Printf.sprintf "j%d" t.sc_counter
            in
            let j =
              {
                j_id = id;
                j_spec = spec;
                j_state = Protocol.Pending;
                j_output = None;
                j_error = None;
                j_meta = [];
                j_replayed = false;
                j_started = 0.0;
                j_cancel = Atomic.make false;
                j_deadline_hit = Atomic.make false;
                j_deadline_s = job_deadline t spec;
              }
            in
            (* Journal before acknowledging: an acked id must survive a
               SIGKILL into the restarted daemon's table. *)
            journal_append t ~key:(spec_key id) (Protocol.to_string spec);
            Hashtbl.replace t.sc_table id j;
            Queue.add id t.sc_pending;
            Condition.broadcast t.sc_cond;
            Ok (view_of_job j)
          end)

let status t id =
  locked t (fun () -> Option.map view_of_job (Hashtbl.find_opt t.sc_table id))

let result t ~wait id =
  locked t (fun () ->
      match Hashtbl.find_opt t.sc_table id with
      | None -> None
      | Some j ->
        if wait then
          while (not (Protocol.terminal j.j_state)) && not t.sc_stopping do
            Condition.wait t.sc_cond t.sc_mutex
          done;
        Some (view_of_job j))

let cancel t id =
  locked t (fun () ->
      match Hashtbl.find_opt t.sc_table id with
      | None -> Error (Printf.sprintf "unknown job %S" id)
      | Some j ->
        (match j.j_state with
        | Protocol.Pending ->
          j.j_state <- Protocol.Cancelled;
          j.j_error <- Some Jobs.cancelled_message;
          journal_append t ~key:(cancel_key id) "";
          journal_append t ~key:(done_key id) (outcome_blob j);
          Condition.broadcast t.sc_cond
        | Protocol.Running ->
          Atomic.set j.j_cancel true;
          journal_append t ~key:(cancel_key id) ""
        | Protocol.Done | Protocol.Failed | Protocol.Cancelled -> ());
        Ok (view_of_job j))

let stats t =
  let session_stats = Session.stats t.sc_session in
  let cache = Session.cache t.sc_session in
  let cache_stats = Explore.Cache.stats cache in
  locked t (fun () ->
      let count s =
        Hashtbl.fold
          (fun _ j acc -> if j.j_state = s then acc + 1 else acc)
          t.sc_table 0
      in
      [
        ("jobs", Protocol.Int (Hashtbl.length t.sc_table));
        ("max_jobs", Protocol.Int t.sc_max);
        ("max_pending", Protocol.Int t.sc_max_pending);
        ("pending", Protocol.Int (count Protocol.Pending));
        ("running", Protocol.Int (count Protocol.Running));
        ("done", Protocol.Int (count Protocol.Done));
        ("failed", Protocol.Int (count Protocol.Failed));
        ("cancelled", Protocol.Int (count Protocol.Cancelled));
        ("batches", Protocol.Int t.sc_batches);
        ("busy_rejects", Protocol.Int t.sc_busy_rejects);
        ("full_rejects", Protocol.Int t.sc_full_rejects);
        ( "recent_job_ms",
          Protocol.Float (1e3 *. recent_latency_s t) );
        ( "elab_cache",
          Protocol.Obj
            [
              ("hits", Protocol.Int session_stats.Session.st_elab_hits);
              ("misses", Protocol.Int session_stats.Session.st_elab_misses);
              ("entries", Protocol.Int session_stats.Session.st_elab_entries);
            ] );
        ( "eval_cache",
          Protocol.Obj
            [
              ("hits", Protocol.Int cache_stats.Explore.Cache.hits);
              ("misses", Protocol.Int cache_stats.Explore.Cache.misses);
              ("resident_entries", Protocol.Int (Explore.Cache.resident_entries cache));
              ("resident_bytes", Protocol.Int (Explore.Cache.resident_bytes cache));
              ("evictions", Protocol.Int (Explore.Cache.evictions cache));
            ] );
      ])

let shutdown t =
  let dispatcher =
    locked t (fun () ->
        if t.sc_stopping then None
        else begin
          t.sc_stopping <- true;
          Condition.broadcast t.sc_cond;
          let d = t.sc_dispatcher in
          t.sc_dispatcher <- None;
          d
        end)
  in
  Option.iter Thread.join dispatcher
