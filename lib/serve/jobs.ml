(** Job execution; see the interface. *)

type outcome = {
  o_output : string;
  o_meta : (string * Protocol.json) list;
}

let cancelled_message = "cancelled"

let ( let* ) = Result.bind

let check_poll poll = if poll () then Error cancelled_message else Ok ()

(* --- shared parameter decoding ----------------------------------------- *)

let model_field j =
  let* name = Protocol.string_field ~default:"model2" "model" j in
  match Core.Model.of_string name with
  | Some m -> Ok m
  | None -> Error (Printf.sprintf "unknown model %S (use 1-4)" name)

let algo_field j =
  let* name = Protocol.string_field ~default:"greedy" "algo" j in
  match name with
  | "greedy" -> Ok `Greedy
  | "kl" -> Ok `Kl
  | "annealing" -> Ok `Annealing
  | "clustering" -> Ok `Clustering
  | a ->
    Error
      (Printf.sprintf
         "unknown algo %S (use greedy, kl, annealing or clustering)" a)

let protocol_field j =
  let* name = Protocol.string_field ~default:"four-phase" "protocol" j in
  match name with
  | "four-phase" -> Ok Core.Protocol.Four_phase
  | "two-phase" -> Ok Core.Protocol.Two_phase
  | p ->
    Error (Printf.sprintf "unknown protocol %S (use four-phase or two-phase)" p)

let assign_field j =
  match Protocol.member "assign" j with
  | Some (Protocol.String s) -> Some s
  | _ -> None

(* The CLI's partition construction ([mrefine --assign] / [--algo]),
   against a served graph. *)
let partition_of_assign g n_parts assign =
  let parse_entry e =
    match String.split_on_char '=' (String.trim e) with
    | [ name; idx ] ->
      let name = String.trim name in
      let idx = int_of_string (String.trim idx) in
      let obj =
        if List.mem name g.Agraph.Access_graph.g_objects then
          Partitioning.Partition.Obj_behavior name
        else if List.mem name g.Agraph.Access_graph.g_variables then
          Partitioning.Partition.Obj_variable name
        else failwith (Printf.sprintf "unknown object %s" name)
      in
      (obj, idx)
    | _ -> failwith (Printf.sprintf "bad assignment entry %S" e)
  in
  match List.map parse_entry (String.split_on_char ',' assign) with
  | assocs ->
    let part = Partitioning.Partition.make ~n_parts assocs in
    begin match Partitioning.Partition.complete_for g part with
    | Ok () -> Ok part
    | Error msgs -> Error (String.concat "; " msgs)
    end
  | exception Failure msg -> Error msg
  | exception _ -> Error (Printf.sprintf "bad assignment %S" assign)

let make_partition g ~n_parts ~algo ~seed ~assign =
  if n_parts < 1 then Error "parts must be >= 1"
  else
    match assign with
    | Some a -> partition_of_assign g n_parts a
    | None ->
      Ok
        (match algo with
        | `Greedy -> Partitioning.Greedy.run g ~n_parts
        | `Kl -> Partitioning.Kl.run_from_scratch g ~n_parts
        | `Annealing ->
          Partitioning.Annealing.run
            ~config:{ Partitioning.Annealing.default_config with seed }
            g ~n_parts
        | `Clustering -> Partitioning.Clustering.run g ~n_parts)

(* One refinement from decoded CLI-style parameters.  Shared by the
   refine and faults kinds. *)
let refine_design (elab : Session.elab) ~n_parts ~algo ~seed ~assign ~protocol
    ~harden ~model =
  let* part =
    make_partition elab.Session.el_graph ~n_parts ~algo ~seed ~assign
  in
  let options = { Core.Refiner.default_options with protocol; harden } in
  match Core.Refiner.refine ~options elab.Session.el_program
          elab.Session.el_graph part model
  with
  | r -> Ok (part, r)
  | exception Core.Refiner.Refine_error msg -> Error msg

(* Parameter digests keying served-result memoization in the shared
   cache.  Key domains are prefixed so they never collide with
   {!Explore.Evaluate}'s refinement and lint entries. *)
let refine_key (elab : Session.elab) ~n_parts ~algo ~seed ~assign ~protocol
    ~harden ~model =
  Explore.Cache.digest_key
    [
      "serve-refine-1";
      elab.Session.el_digest;
      string_of_int n_parts;
      (match algo with
      | `Greedy -> "greedy"
      | `Kl -> "kl"
      | `Annealing -> "annealing"
      | `Clustering -> "clustering");
      string_of_int seed;
      (match assign with Some a -> a | None -> "");
      (match protocol with
      | Core.Protocol.Four_phase -> "four-phase"
      | Core.Protocol.Two_phase -> "two-phase");
      string_of_bool harden;
      Core.Model.name model;
    ]

(* --- refine ------------------------------------------------------------- *)

let run_refine ~session ~poll elab j =
  let* model = model_field j in
  let* n_parts = Protocol.int_field ~default:2 "parts" j in
  let* algo = algo_field j in
  let* seed = Protocol.int_field ~default:42 "seed" j in
  let* protocol = protocol_field j in
  let* harden = Protocol.bool_field ~default:false "harden" j in
  let assign = assign_field j in
  let* () = check_poll poll in
  let key =
    refine_key elab ~n_parts ~algo ~seed ~assign ~protocol ~harden ~model
  in
  let compute () =
    let* _part, r =
      refine_design elab ~n_parts ~algo ~seed ~assign ~protocol ~harden ~model
    in
    let* () =
      match Core.Check.run ~original:elab.Session.el_program r with
      | Ok () -> Ok ()
      | Error msgs -> Error ("check failed: " ^ String.concat "; " msgs)
    in
    Ok (Spec.Printer.program_to_string r.Core.Refiner.rf_program)
  in
  let* text, cached =
    match
      Explore.Cache.find_or_add ~count_stats:false (Session.cache session) key
        (fun () ->
          match compute () with Ok t -> Ok t | Error _ as e -> e)
    with
    | Ok t, cached -> Ok (t, cached)
    | (Error _ as e), _ -> (match e with Error m -> Error m | Ok _ -> assert false)
  in
  Ok
    {
      o_output = text;
      o_meta =
        [
          ("model", Protocol.String (Core.Model.name model));
          ("cached", Protocol.Bool cached);
        ];
    }

(* --- lint --------------------------------------------------------------- *)

let severity_field j =
  let* name = Protocol.string_field ~default:"info" "severity" j in
  match Spec.Diagnostic.severity_of_string name with
  | Some s -> Ok s
  | None ->
    Error
      (Printf.sprintf "unknown severity %S (use info, warning or error)" name)

let phase_field j =
  let* name = Protocol.string_field ~default:"auto" "phase" j in
  match name with
  | "auto" -> Ok None
  | "pre" -> Ok (Some Lint.Registry.Pre)
  | "post" -> Ok (Some Lint.Registry.Post)
  | p -> Error (Printf.sprintf "unknown phase %S (use auto, pre or post)" p)

let overrides_field j =
  let* raw = Protocol.string_list_field ~default:[] "overrides" j in
  List.fold_left
    (fun acc s ->
      let* acc = acc in
      let* ov = Lint.Registry.parse_override s in
      Ok (ov :: acc))
    (Ok []) raw
  |> Result.map List.rev

let run_lint ~session:_ ~poll (elab : Session.elab) j =
  let* file = Protocol.string_field ~default:"<spec>" "file" j in
  let* severity = severity_field j in
  let* codes = Protocol.string_list_field ~default:[] "codes" j in
  let* phase = phase_field j in
  let* overrides = overrides_field j in
  let* json = Protocol.bool_field ~default:false "json" j in
  let* flow = Protocol.bool_field ~default:false "flow" j in
  let* fix = Protocol.bool_field ~default:false "fix" j in
  let* () = check_poll poll in
  let p = elab.Session.el_program in
  if fix then begin
    (* The fixer runs the full pass set on its own candidates and emits
       a rewrite report, so the lint-report knobs have no effect here:
       reject them loudly rather than silently ignoring them. *)
    let* () =
      match
        List.filter
          (fun k -> Option.is_some (Protocol.member k j))
          [ "severity"; "phase"; "overrides"; "json"; "flow" ]
      with
      | [] -> Ok ()
      | ks ->
        Error
          (Printf.sprintf "field(s) %s do not apply when fix is true"
             (String.concat ", " ks))
    in
    let* fix_codes =
      if codes = [] then Ok Lint.Fixer.fixable_codes
      else
        match
          List.filter
            (fun c -> not (List.mem c Lint.Fixer.fixable_codes))
            codes
        with
        | [] -> Ok codes
        | bad ->
          Error
            (Printf.sprintf "code(s) %s are not fixable (fixable: %s)"
               (String.concat ", " bad)
               (String.concat ", " Lint.Fixer.fixable_codes))
    in
    let* r =
      match Lint.Fixer.fix ~codes:fix_codes ~poll p with
      | r -> Ok r
      | exception Lint.Fixer.Cancelled -> Error cancelled_message
    in
    let applied =
      List.map
        (fun (a : Lint.Fixer.applied) ->
          Printf.sprintf "{\"code\":\"%s\",\"loc\":\"%s\",\"note\":\"%s\"}"
            (Spec.Diagnostic.json_escape a.Lint.Fixer.fx_code)
            (Spec.Diagnostic.json_escape a.Lint.Fixer.fx_loc)
            (Spec.Diagnostic.json_escape a.Lint.Fixer.fx_note))
        r.Lint.Fixer.x_applied
    in
    let refused =
      List.map
        (fun (f : Lint.Fixer.refused) ->
          Printf.sprintf "{\"code\":\"%s\",\"loc\":\"%s\",\"reason\":\"%s\"}"
            (Spec.Diagnostic.json_escape f.Lint.Fixer.fr_code)
            (Spec.Diagnostic.json_escape f.Lint.Fixer.fr_loc)
            (Spec.Diagnostic.json_escape f.Lint.Fixer.fr_reason))
        r.Lint.Fixer.x_refused
    in
    Ok
      {
        o_output =
          Printf.sprintf
            "{\"changed\":%b,\"applied\":[%s],\"refused\":[%s],\
             \"source\":\"%s\"}"
            r.Lint.Fixer.x_changed
            (String.concat "," applied)
            (String.concat "," refused)
            (Spec.Diagnostic.json_escape r.Lint.Fixer.x_source);
        o_meta =
          [
            ("applied", Protocol.Int (List.length r.Lint.Fixer.x_applied));
            ("refused", Protocol.Int (List.length r.Lint.Fixer.x_refused));
          ];
      }
  end
  else
  let ds = Lint.Registry.run ?phase ~overrides ~flow p in
  let keep d =
    Spec.Diagnostic.severity_rank d.Spec.Diagnostic.d_severity
    <= Spec.Diagnostic.severity_rank severity
    && (codes = [] || List.mem d.Spec.Diagnostic.d_code codes)
  in
  let ds = List.filter keep ds in
  let ds = Lint.Report.locate ~file elab.Session.el_locations ds in
  let resolved =
    match phase with Some ph -> ph | None -> Lint.Registry.infer_phase p
  in
  let targets =
    [ { Lint.Report.t_name = file; t_phase = resolved; t_diags = ds } ]
  in
  let text =
    if json then Lint.Report.to_json targets else Lint.Report.to_text targets
  in
  Ok
    {
      o_output = text;
      o_meta =
        [
          ("errors", Protocol.Int (Lint.Report.errors targets));
          ("warnings", Protocol.Int (Lint.Report.warnings targets));
        ];
    }

(* --- explore ------------------------------------------------------------ *)

let models_field j =
  let* raw =
    Protocol.string_list_field
      ~default:(List.map Core.Model.name Core.Model.all)
      "models" j
  in
  List.fold_left
    (fun acc s ->
      let* acc = acc in
      match Core.Model.of_string s with
      | Some m -> Ok (m :: acc)
      | None -> Error (Printf.sprintf "unknown model %S (use 1-4)" s))
    (Ok []) raw
  |> Result.map List.rev

let biases_field j =
  let* raw =
    Protocol.string_list_field
      ~default:(List.map Explore.Candidate.bias_name
                  Explore.Candidate.all_biases)
      "biases" j
  in
  List.fold_left
    (fun acc s ->
      let* acc = acc in
      match Explore.Candidate.bias_of_string s with
      | Some b -> Ok (b :: acc)
      | None ->
        Error
          (Printf.sprintf "unknown bias %S (use balanced, local or global)" s))
    (Ok []) raw
  |> Result.map List.rev

let int_list_field ~default key j =
  match Protocol.member key j with
  | None -> Ok default
  | Some (Protocol.List xs) ->
    List.fold_left
      (fun acc x ->
        let* acc = acc in
        match x with
        | Protocol.Int n -> Ok (n :: acc)
        | _ -> Error (Printf.sprintf "field %S must hold integers" key))
      (Ok []) xs
    |> Result.map List.rev
  | Some _ -> Error (Printf.sprintf "field %S must be an array" key)

let run_explore ~session ~poll (elab : Session.elab) j =
  let* models = models_field j in
  let* seeds = int_list_field ~default:[ 1; 2; 3 ] "seeds" j in
  let* biases = biases_field j in
  let* n_parts = Protocol.int_field ~default:2 "parts" j in
  let* steps = Protocol.int_field ~default:4000 "steps" j in
  let* jobs = Protocol.int_field ~default:1 "jobs" j in
  let* top = Protocol.int_field ~default:0 "top" j in
  let* deadline = Protocol.float_field "deadline" j in
  let* retries = Protocol.int_field ~default:2 "retries" j in
  let* json = Protocol.bool_field ~default:false "json" j in
  if jobs < 1 then Error "jobs must be >= 1"
  else if retries < 0 then Error "retries must be >= 0"
  else if models = [] || seeds = [] || biases = [] then
    Error "models, seeds and biases must be non-empty"
  else
    let* () = check_poll poll in
    let config =
      {
        Explore.Sweep.seeds;
        biases;
        models;
        n_parts;
        steps;
        jobs;
        deadline_s = deadline;
        retries;
        backoff_s = Explore.Sweep.default_config.Explore.Sweep.backoff_s;
      }
    in
    let cache = Session.cache session in
    (* The override threads the daemon's cancel poll into every
       candidate while reusing the session's shared context, so two
       explore jobs over one spec share partition searches and
       refinements through the hot cache. *)
    let evaluate cand =
      Explore.Evaluate.run ~cache ?deadline_s:deadline ~poll
        elab.Session.el_ctx cand
    in
    let sw = Explore.Sweep.run ~cache ~evaluate config elab.Session.el_program in
    let* () = check_poll poll in
    let text =
      if json then Explore.Sweep.to_json ~top sw
      else Explore.Sweep.to_text ~top sw
    in
    Ok
      {
        o_output = text;
        o_meta =
          [
            ("candidates", Protocol.Int (List.length sw.Explore.Sweep.sw_results));
            ("coverage", Protocol.Float sw.Explore.Sweep.sw_coverage);
            ("hits", Protocol.Int sw.Explore.Sweep.sw_hits);
            ("misses", Protocol.Int sw.Explore.Sweep.sw_misses);
          ];
      }

(* --- faults ------------------------------------------------------------- *)

let classes_field j =
  let* raw =
    Protocol.string_list_field
      ~default:(List.map Faults.Fault.cls_name Faults.Fault.all_classes)
      "classes" j
  in
  List.fold_left
    (fun acc s ->
      let* acc = acc in
      match Faults.Fault.cls_of_name s with
      | Some c -> Ok (c :: acc)
      | None ->
        Error
          (Printf.sprintf "unknown fault class %S (use %s)" s
             (String.concat ", "
                (List.map Faults.Fault.cls_name Faults.Fault.all_classes))))
    (Ok []) raw
  |> Result.map List.rev

let ordering_field j =
  let* name = Protocol.string_field ~default:"sc" "ordering" j in
  Sim.Memord.policy_of_string name

(* The daemon serves concurrent jobs, so the backend is threaded
   explicitly per job rather than through the process-wide default the
   CLI flag sets. *)
let backend_field j =
  let* name = Protocol.string_field ~default:"vm" "backend" j in
  Sim.Runtime.backend_of_string name

let run_faults ~session:_ ~poll (elab : Session.elab) j =
  let* model = model_field j in
  let* n_parts = Protocol.int_field ~default:2 "parts" j in
  let* algo = algo_field j in
  let* seed = Protocol.int_field ~default:42 "seed" j in
  let* protocol = protocol_field j in
  let* harden = Protocol.bool_field ~default:false "harden" j in
  let assign = assign_field j in
  let* classes = classes_field j in
  let* seeds = Protocol.int_field ~default:8 "seeds" j in
  let* base_seed = Protocol.int_field ~default:1 "base_seed" j in
  let* deadline = Protocol.float_field "deadline" j in
  let* ordering = ordering_field j in
  let* backend = backend_field j in
  let* json = Protocol.bool_field ~default:false "json" j in
  if seeds < 1 then Error "seeds must be >= 1"
  else if classes = [] then Error "classes must be non-empty"
  else
    let* () = check_poll poll in
    let* _part, r =
      refine_design elab ~n_parts ~algo ~seed ~assign ~protocol ~harden ~model
    in
    let* () = check_poll poll in
    let config =
      {
        Faults.Campaign.default_config with
        Faults.Campaign.cf_seeds = seeds;
        cf_base_seed = base_seed;
        cf_classes = classes;
        cf_deadline_s = deadline;
        cf_poll = Some poll;
        cf_ordering = ordering;
      }
    in
    let simulate ~config ~hooks ?ordering p =
      Sim.Engine.run ~config ~hooks ?ordering ~backend p
    in
    match Faults.Campaign.run ~config ~simulate r with
    | report ->
      let* () = check_poll poll in
      let text =
        if json then Faults.Campaign.to_json report
        else Faults.Campaign.to_text report
      in
      Ok { o_output = text; o_meta = [] }
    | exception Faults.Campaign.Campaign_error msg ->
      Error ("fault campaign: " ^ msg)

(* --- litmus ------------------------------------------------------------- *)

let orderings_field j =
  let* raw =
    Protocol.string_list_field
      ~default:[ "sc"; "per-port-fifo"; "relaxed" ]
      "orderings" j
  in
  List.fold_left
    (fun acc s ->
      let* acc = acc in
      let* p = Sim.Memord.policy_of_string s in
      Ok (p :: acc))
    (Ok []) raw
  |> Result.map List.rev

(* The litmus job runs the built-in weak-memory shapes — no spec to
   elaborate — and returns the same deterministic report as the CLI, so
   a served run replays a [mrefine litmus --json] bit-identically. *)
let run_litmus ~session:_ ~poll j =
  let* orderings = orderings_field j in
  let* shape_names = Protocol.string_list_field ~default:[] "shapes" j in
  let* seeds = Protocol.int_field ~default:4 "seeds" j in
  let* faults = Protocol.bool_field ~default:false "faults" j in
  let* backend = backend_field j in
  let* json = Protocol.bool_field ~default:false "json" j in
  if seeds < 1 then Error "seeds must be >= 1"
  else if orderings = [] then Error "orderings must be non-empty"
  else
    let* shapes =
      match shape_names with
      | [] -> Ok (Litmus.Shape.all ())
      | names ->
        List.fold_left
          (fun acc n ->
            let* acc = acc in
            match Litmus.Shape.find n with
            | Some s -> Ok (s :: acc)
            | None ->
              Error
                (Printf.sprintf
                   "unknown litmus shape %S (use sb, mp, lb, co, mem or \
                    mem-tmr)"
                   n))
          (Ok []) names
        |> Result.map List.rev
    in
    let* () = check_poll poll in
    let rp =
      Litmus.Suite.run
        {
          Litmus.Suite.cf_shapes = shapes;
          cf_orderings = orderings;
          cf_seeds = seeds;
          cf_faults = faults;
          cf_backend = Some backend;
        }
    in
    let* () = check_poll poll in
    let text =
      if json then Litmus.Suite.to_json rp else Litmus.Suite.to_text rp
    in
    Ok
      {
        o_output = text;
        o_meta =
          [
            ("entries", Protocol.Int (List.length rp.Litmus.Suite.rp_entries));
            ("weak_allowed", Protocol.Int rp.Litmus.Suite.rp_weak_allowed);
            ("forbidden", Protocol.Int rp.Litmus.Suite.rp_forbidden);
            ("corruption", Protocol.Int rp.Litmus.Suite.rp_corruption);
            ( "kernel_mismatches",
              Protocol.Int rp.Litmus.Suite.rp_kernel_mismatches );
          ];
      }

(* --- dispatch ----------------------------------------------------------- *)

let run ~session ~poll job =
  match Protocol.string_field "kind" job with
  | Error msg -> Error msg
  | Ok "litmus" -> (
    (* Litmus runs the built-in shapes: no spec, no elaboration. *)
    try run_litmus ~session ~poll job
    with exn ->
      Error (Printf.sprintf "job raised %s" (Printexc.to_string exn)))
  | Ok kind -> (
    match Protocol.string_field "spec" job with
    | Error msg -> Error msg
    | Ok source -> (
      match Session.elaborate session ~source with
      | Error msg -> Error msg
      | Ok elab -> (
        let dispatch =
          match kind with
          | "refine" -> Some run_refine
          | "lint" -> Some run_lint
          | "explore" -> Some run_explore
          | "faults" -> Some run_faults
          | _ -> None
        in
        match dispatch with
        | None ->
          Error
            (Printf.sprintf
               "unknown job kind %S (use refine, lint, explore, faults or \
                litmus)"
               kind)
        | Some f -> (
          try f ~session ~poll elab job
          with exn ->
            Error
              (Printf.sprintf "job raised %s" (Printexc.to_string exn))))))
