(** Wire protocol: see the interface. *)

type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of json list
  | Obj of (string * json) list

(* ------------------------------------------------------------------ *)
(* Printer                                                             *)
(* ------------------------------------------------------------------ *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let float_repr f =
  if Float.is_integer f && Float.abs f < 1e16 then
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f ->
    if Float.is_finite f then Buffer.add_string buf (float_repr f)
    else Buffer.add_string buf "null" (* nan/inf have no JSON form *)
  | String s ->
    Buffer.add_char buf '"';
    Buffer.add_string buf (escape s);
    Buffer.add_char buf '"'
  | List xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        write buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape k);
        Buffer.add_string buf "\":";
        write buf v)
      fields;
    Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  write buf j;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

exception Bad of string

type cursor = { src : string; mutable pos : int }

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let skip_ws c =
  let continue = ref true in
  while !continue do
    match peek c with
    | Some (' ' | '\t' | '\n' | '\r') -> advance c
    | _ -> continue := false
  done

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | Some x -> raise (Bad (Printf.sprintf "expected '%c', found '%c'" ch x))
  | None -> raise (Bad (Printf.sprintf "expected '%c', found end of input" ch))

let expect_word c w =
  if
    c.pos + String.length w <= String.length c.src
    && String.sub c.src c.pos (String.length w) = w
  then c.pos <- c.pos + String.length w
  else raise (Bad (Printf.sprintf "invalid token (expected %s)" w))

(* Append a Unicode scalar value as UTF-8. *)
let add_utf8 buf u =
  if u < 0x80 then Buffer.add_char buf (Char.chr u)
  else if u < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (u lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end
  else if u < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (u lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (u lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end

let hex4 c =
  if c.pos + 4 > String.length c.src then raise (Bad "truncated \\u escape");
  let s = String.sub c.src c.pos 4 in
  c.pos <- c.pos + 4;
  match int_of_string_opt ("0x" ^ s) with
  | Some n -> n
  | None -> raise (Bad ("bad \\u escape: " ^ s))

let parse_string c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek c with
    | None -> raise (Bad "unterminated string")
    | Some '"' -> advance c
    | Some '\\' -> (
      advance c;
      match peek c with
      | None -> raise (Bad "unterminated escape")
      | Some e ->
        advance c;
        (match e with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'u' ->
          let u = hex4 c in
          (* Surrogate pair: a high surrogate must be followed by
             [\uDC00-\uDFFF]; anything else is kept as-is (replacement
             would lose information the client sent). *)
          let u =
            if u >= 0xD800 && u <= 0xDBFF
               && c.pos + 6 <= String.length c.src
               && c.src.[c.pos] = '\\' && c.src.[c.pos + 1] = 'u'
            then begin
              let saved = c.pos in
              c.pos <- c.pos + 2;
              let lo = hex4 c in
              if lo >= 0xDC00 && lo <= 0xDFFF then
                0x10000 + ((u - 0xD800) lsl 10) + (lo - 0xDC00)
              else begin
                c.pos <- saved;
                u
              end
            end
            else u
          in
          add_utf8 buf u
        | e -> raise (Bad (Printf.sprintf "bad escape '\\%c'" e)));
        loop ())
    | Some ch ->
      advance c;
      Buffer.add_char buf ch;
      loop ()
  in
  loop ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let is_float = ref false in
  let continue = ref true in
  while !continue do
    match peek c with
    | Some ('0' .. '9' | '-' | '+') -> advance c
    | Some ('.' | 'e' | 'E') ->
      is_float := true;
      advance c
    | _ -> continue := false
  done;
  let s = String.sub c.src start (c.pos - start) in
  if !is_float then
    match float_of_string_opt s with
    | Some f -> Float f
    | None -> raise (Bad ("bad number: " ^ s))
  else
    match int_of_string_opt s with
    | Some n -> Int n
    | None -> (
      match float_of_string_opt s with
      | Some f -> Float f
      | None -> raise (Bad ("bad number: " ^ s)))

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> raise (Bad "empty input")
  | Some '"' -> String (parse_string c)
  | Some '{' ->
    advance c;
    skip_ws c;
    if peek c = Some '}' then begin
      advance c;
      Obj []
    end
    else begin
      let fields = ref [] in
      let rec fields_loop () =
        skip_ws c;
        let k = parse_string c in
        skip_ws c;
        expect c ':';
        let v = parse_value c in
        fields := (k, v) :: !fields;
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          fields_loop ()
        | Some '}' -> advance c
        | _ -> raise (Bad "expected ',' or '}' in object")
      in
      fields_loop ();
      Obj (List.rev !fields)
    end
  | Some '[' ->
    advance c;
    skip_ws c;
    if peek c = Some ']' then begin
      advance c;
      List []
    end
    else begin
      let items = ref [] in
      let rec items_loop () =
        let v = parse_value c in
        items := v :: !items;
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          items_loop ()
        | Some ']' -> advance c
        | _ -> raise (Bad "expected ',' or ']' in array")
      in
      items_loop ();
      List (List.rev !items)
    end
  | Some 't' ->
    expect_word c "true";
    Bool true
  | Some 'f' ->
    expect_word c "false";
    Bool false
  | Some 'n' ->
    expect_word c "null";
    Null
  | Some ('-' | '0' .. '9') -> parse_number c
  | Some ch -> raise (Bad (Printf.sprintf "unexpected character '%c'" ch))

let parse src =
  let c = { src; pos = 0 } in
  match parse_value c with
  | v ->
    skip_ws c;
    if c.pos <> String.length src then
      Error
        (Printf.sprintf "trailing garbage at offset %d" c.pos)
    else Ok v
  | exception Bad msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let string_field ?default key j =
  match (member key j, default) with
  | Some (String s), _ -> Ok s
  | Some _, _ -> Error (Printf.sprintf "field %S must be a string" key)
  | None, Some d -> Ok d
  | None, None -> Error (Printf.sprintf "missing field %S" key)

let int_field ?default key j =
  match (member key j, default) with
  | Some (Int n), _ -> Ok n
  | Some _, _ -> Error (Printf.sprintf "field %S must be an integer" key)
  | None, Some d -> Ok d
  | None, None -> Error (Printf.sprintf "missing field %S" key)

let float_field ?default key j =
  match member key j with
  | Some (Float f) -> Ok (Some f)
  | Some (Int n) -> Ok (Some (float_of_int n))
  | Some Null -> Ok None
  | Some _ -> Error (Printf.sprintf "field %S must be a number" key)
  | None -> Ok (match default with Some d -> Some d | None -> None)

let bool_field ?default key j =
  match (member key j, default) with
  | Some (Bool b), _ -> Ok b
  | Some _, _ -> Error (Printf.sprintf "field %S must be a boolean" key)
  | None, Some d -> Ok d
  | None, None -> Error (Printf.sprintf "missing field %S" key)

let string_list_field ?default key j =
  match (member key j, default) with
  | Some (List xs), _ ->
    let rec conv acc = function
      | [] -> Ok (List.rev acc)
      | String s :: rest -> conv (s :: acc) rest
      | Int n :: rest -> conv (string_of_int n :: acc) rest
      | Float f :: rest -> conv (float_repr f :: acc) rest
      | _ -> Error (Printf.sprintf "field %S must hold strings" key)
    in
    conv [] xs
  | Some _, _ -> Error (Printf.sprintf "field %S must be an array" key)
  | None, Some d -> Ok d
  | None, None -> Error (Printf.sprintf "missing field %S" key)

(* ------------------------------------------------------------------ *)
(* Requests                                                            *)
(* ------------------------------------------------------------------ *)

type request =
  | Auth of string
  | Submit of { sb_id : string option; sb_job : json }
  | Status of string
  | Result of { rs_id : string; rs_wait : bool }
  | Cancel of string
  | Stats
  | Ping
  | Shutdown

let ( let* ) = Result.bind

let request_of_json j =
  let* op = string_field "op" j in
  match op with
  | "auth" ->
    let* token = string_field "token" j in
    Ok (Auth token)
  | "submit" -> (
    match member "job" j with
    | None -> Error "submit needs a \"job\" object"
    | Some job ->
      let id =
        match member "id" j with Some (String s) -> Some s | _ -> None
      in
      Ok (Submit { sb_id = id; sb_job = job }))
  | "status" ->
    let* id = string_field "id" j in
    Ok (Status id)
  | "result" ->
    let* id = string_field "id" j in
    let* wait = bool_field ~default:false "wait" j in
    Ok (Result { rs_id = id; rs_wait = wait })
  | "cancel" ->
    let* id = string_field "id" j in
    Ok (Cancel id)
  | "stats" -> Ok Stats
  | "ping" -> Ok Ping
  | "shutdown" -> Ok Shutdown
  | op -> Error (Printf.sprintf "unknown op %S" op)

let request_to_json = function
  | Auth token -> Obj [ ("op", String "auth"); ("token", String token) ]
  | Submit { sb_id; sb_job } ->
    Obj
      ((("op", String "submit") :: ("job", sb_job)
        ::
        (match sb_id with
        | Some id -> [ ("id", String id) ]
        | None -> [])))
  | Status id -> Obj [ ("op", String "status"); ("id", String id) ]
  | Result { rs_id; rs_wait } ->
    Obj
      [
        ("op", String "result");
        ("id", String rs_id);
        ("wait", Bool rs_wait);
      ]
  | Cancel id -> Obj [ ("op", String "cancel"); ("id", String id) ]
  | Stats -> Obj [ ("op", String "stats") ]
  | Ping -> Obj [ ("op", String "ping") ]
  | Shutdown -> Obj [ ("op", String "shutdown") ]

(* ------------------------------------------------------------------ *)
(* Job states and replies                                              *)
(* ------------------------------------------------------------------ *)

type state = Pending | Running | Done | Failed | Cancelled

let state_name = function
  | Pending -> "pending"
  | Running -> "running"
  | Done -> "done"
  | Failed -> "failed"
  | Cancelled -> "cancelled"

let state_of_name = function
  | "pending" -> Some Pending
  | "running" -> Some Running
  | "done" -> Some Done
  | "failed" -> Some Failed
  | "cancelled" -> Some Cancelled
  | _ -> None

let terminal = function
  | Done | Failed | Cancelled -> true
  | Pending | Running -> false

let ok fields = Obj (("ok", Bool true) :: fields)

let error msg = Obj [ ("ok", Bool false); ("error", String msg) ]

let error_with msg fields =
  Obj (("ok", Bool false) :: ("error", String msg) :: fields)
