(** Execution of one job against the shared {!Session}.

    A job is a JSON object with a ["kind"] — [refine], [lint],
    [explore] or [faults] — plus the same knobs the matching [mrefine]
    subcommand exposes.  The specification travels as source text in
    the ["spec"] field (the daemon need not share a filesystem view
    with its clients), and the produced report is {e byte-identical} to
    the corresponding cold CLI invocation's output:

    - [refine] → the printed refined program ([mrefine refine -q]);
    - [lint] → {!Lint.Report} text or JSON ([mrefine lint]), with the
      ["file"] field standing in for the spec path in the report;
    - [explore] → {!Explore.Sweep.to_text} / [to_json];
    - [faults] → {!Faults.Campaign.to_text} / [to_json].

    Job field reference (defaults match the CLI):
    {v
    refine : spec, model, parts, algo, seed, assign, protocol, harden
    lint   : spec, file, severity, codes, phase, overrides, json, flow,
             fix — [fix=true] runs the [mrefine lint --fix] pipeline:
             [codes] restricts the fixable set (non-fixable codes are
             an error) and the report-only knobs (severity, phase,
             overrides, json, flow) are rejected rather than ignored
    explore: spec, models, seeds, biases, parts, steps, jobs, top,
             deadline, retries, json
    faults : spec, model, parts, algo, seed, assign, protocol, harden,
             classes, seeds, base_seed, deadline, json
    v} *)

(** A finished job: the report text plus structured facts about it for
    the reply envelope (e.g. lint error counts, sweep coverage). *)
type outcome = {
  o_output : string;
  o_meta : (string * Protocol.json) list;
}

val run :
  session:Session.t ->
  poll:(unit -> bool) ->
  Protocol.json ->
  (outcome, string) result
(** Execute one job.  [poll] is the scheduler's cooperative cancel /
    deadline signal: it is checked between stages of every kind and
    threaded into the simulation kernels of [explore]
    ({!Explore.Evaluate.run}'s [poll]) and [faults]
    ({!Faults.Campaign.config.cf_poll}) jobs, so a cancelled job stops
    mid-simulation.  A cancelled job returns [Error "cancelled"].
    Never raises on malformed job JSON — that is an [Error]. *)

val cancelled_message : string
(** The [Error] payload of a job stopped by its poll. *)
