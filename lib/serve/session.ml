(** Daemon shared state; see the interface. *)

type elab = {
  el_digest : string;
  el_program : Spec.Ast.program;
  el_locations : Spec.Parser.locations;
  el_graph : Agraph.Access_graph.t;
  el_ctx : Explore.Evaluate.ctx;
}

type t = {
  s_cache : Explore.Cache.t;
  s_elab : (string, elab) Hashtbl.t;
  s_last_use : (string, int) Hashtbl.t;
  s_cap : int;
  mutable s_tick : int;
  mutable s_hits : int;
  mutable s_misses : int;
  s_mutex : Mutex.t;
}

let create ?cache_dir ?cache_entries ?cache_bytes ?(elab_entries = 64)
    ?(sim_sessions = 8) () =
  if elab_entries < 1 then
    invalid_arg "Session.create: elab_entries < 1";
  Sim.Engine.set_session_cap sim_sessions;
  let s_cache =
    Explore.Cache.create ?dir:cache_dir ?max_entries:cache_entries
      ?max_bytes:cache_bytes ()
  in
  {
    s_cache;
    s_elab = Hashtbl.create 64;
    s_last_use = Hashtbl.create 64;
    s_cap = elab_entries;
    s_tick = 0;
    s_hits = 0;
    s_misses = 0;
    s_mutex = Mutex.create ();
  }

let cache t = t.s_cache

let locked t f =
  Mutex.lock t.s_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.s_mutex) f

let touch t digest =
  t.s_tick <- t.s_tick + 1;
  Hashtbl.replace t.s_last_use digest t.s_tick

let evict_to_cap t =
  while Hashtbl.length t.s_elab > t.s_cap do
    let victim =
      Hashtbl.fold
        (fun key tick acc ->
          match acc with
          | Some (_, best) when best <= tick -> acc
          | _ -> Some (key, tick))
        t.s_last_use None
    in
    match victim with
    | None -> Hashtbl.reset t.s_elab (* unreachable: tables move together *)
    | Some (key, _) ->
      Hashtbl.remove t.s_elab key;
      Hashtbl.remove t.s_last_use key
  done

let elaborate t ~source =
  let digest = Digest.to_hex (Digest.string source) in
  match
    locked t (fun () ->
        match Hashtbl.find_opt t.s_elab digest with
        | Some e ->
          t.s_hits <- t.s_hits + 1;
          touch t digest;
          Some e
        | None ->
          t.s_misses <- t.s_misses + 1;
          None)
  with
  | Some e -> Ok e
  | None -> (
    (* Elaborate outside the lock: parsing and graph derivation are the
       expensive part and must not serialize unrelated connections.  Two
       racing threads may both elaborate; last insert wins and both
       results are identical. *)
    match Spec.Parser.program_of_string_located source with
    | Error msg -> Error msg
    | Ok (p, locs) -> (
      match Spec.Program.validate p with
      | Error msgs ->
        Error ("invalid specification: " ^ String.concat "; " msgs)
      | Ok () ->
        let g = Agraph.Access_graph.of_program p in
        let ctx = Explore.Evaluate.make_ctx p in
        let e =
          {
            el_digest = digest;
            el_program = p;
            el_locations = locs;
            el_graph = g;
            el_ctx = ctx;
          }
        in
        let e =
          locked t (fun () ->
              match Hashtbl.find_opt t.s_elab digest with
              | Some winner ->
                (* A racing thread elaborated first: keep its value so
                   every job shares one physical program. *)
                touch t digest;
                winner
              | None ->
                Hashtbl.replace t.s_elab digest e;
                touch t digest;
                evict_to_cap t;
                e)
        in
        Ok e))

type stats = {
  st_elab_hits : int;
  st_elab_misses : int;
  st_elab_entries : int;
}

let stats t =
  locked t (fun () ->
      {
        st_elab_hits = t.s_hits;
        st_elab_misses = t.s_misses;
        st_elab_entries = Hashtbl.length t.s_elab;
      })
