(** A seeded fault-injecting TCP/Unix proxy for torturing the serve
    stack: it sits between a client and the daemon and breaks each
    connection in a way drawn deterministically from a seed, so a chaos
    run that finds a bug is replayable from two integers (seed,
    connection index).

    Determinism mirrors {!Faults}/{!Partitioning.Rng} discipline: the
    fault schedule is a pure function {!plan} of the seed and the
    connection's accept-order index — no shared generator state, no
    timing dependence.  The same seed always yields the same schedule.

    The proxy never touches job semantics; it only damages transport.
    Clients with idempotent retries (journaled ids) must converge to
    exactly the same results as a fault-free run — that is the property
    the chaos harness checks. *)

(** What happens to one proxied connection. *)
type fault =
  | Pass  (** forward faithfully *)
  | Delay of { dl_every_bytes : int; dl_ms : int }
      (** trickle: sleep [dl_ms] every [dl_every_bytes] towards the
          server *)
  | Drop_after of { dr_bytes : int }
      (** forward a shared byte budget across both directions, then go
          dark mid-frame (no trustworthy FIN) *)
  | Torn_write of { tw_bytes : int }
      (** forward only the first [tw_bytes] of the client's stream,
          then sever both directions — a write cut mid-frame *)
  | Garbage of { gb_bytes : int }
      (** prepend junk bytes to the client's stream, corrupting the
          first frame into a parse error *)
  | Reset  (** close the client immediately on accept *)

val plan : seed:int -> int -> fault
(** [plan ~seed i] is the fault of connection [i] (accept order) under
    [seed].  Pure: the whole schedule of a run is reproducible from the
    seed alone. *)

val fault_to_string : fault -> string

type t

val start :
  ?log:(int -> fault -> unit) ->
  listen:Server.endpoint ->
  upstream:Server.endpoint ->
  seed:int ->
  unit ->
  t
(** Bind [listen] and proxy every accepted connection to [upstream]
    under its planned fault.  [log] observes (index, fault) at accept
    time.
    @raise Unix.Unix_error when [listen] cannot be bound. *)

val port : t -> int option
(** The bound TCP port when [listen] was TCP (kernel-chosen for port
    0). *)

val stop : t -> unit
(** Stop accepting and join the acceptor.  Already-proxied connections
    finish on their own. *)
