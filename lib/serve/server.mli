(** The daemon's front door: a Unix-domain stream socket speaking the
    newline-delimited JSON protocol of {!Protocol}, one thread per
    connection, all connections multiplexed onto one {!Scheduler}.

    Error containment: a malformed or truncated request line costs one
    [{"ok":false,...}] reply — the connection survives, and so does the
    daemon.  A [shutdown] request stops the accept loop, drains the
    scheduler (in-flight batch included) and returns from {!run}. *)

type t

val start :
  socket:string -> Scheduler.t -> t
(** Bind and listen on [socket] (an existing stale socket file is
    replaced) and start accepting in background threads.
    @raise Unix.Unix_error when the path cannot be bound. *)

val run : t -> unit
(** Block until a [shutdown] request (or {!stop}) terminates the
    server, then shut the scheduler down and remove the socket file. *)

val stop : t -> unit
(** Request termination from another thread (e.g. a signal handler);
    idempotent.  {!run} performs the actual teardown. *)

val serve : socket:string -> Scheduler.t -> unit
(** [start] + [run]. *)
