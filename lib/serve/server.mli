(** The daemon's front door: a Unix-domain stream socket — and
    optionally a TCP listener — speaking the newline-delimited JSON
    protocol of {!Protocol}, one thread per connection, all connections
    multiplexed onto one {!Scheduler}.

    Error containment: a malformed or truncated request line costs one
    [{"ok":false,...}] reply — the connection survives, and so does the
    daemon.  A frame that grows past {!config.cfg_max_frame_bytes}
    without a newline costs one error reply and the rest of that frame
    is discarded; the connection stays protocol-correct.  Transient
    accept failures (fd exhaustion and friends) are counted, backed off
    and retried — they never kill the acceptor.

    Authentication: with a configured token, TCP connections must
    present [{"op":"auth","token":...}] as their first frame
    (constant-time comparison); anything else gets one error reply and
    the connection is closed.  Unix-socket connections are trusted by
    file permissions and never required to authenticate, though an
    offered token is still validated.

    Shutdown is a graceful drain: a [shutdown] request (or {!stop})
    stops the accept loop, finishes the in-flight batch (pending jobs
    stay journaled for the next lifetime), gives connection threads a
    grace period to flush final replies, then severs stragglers and
    returns from {!run}. *)

(** Where a listener binds or a client connects: a Unix-socket path or
    a TCP host/port. *)
type endpoint =
  | Unix_path of string
  | Tcp of { host : string; port : int }

val endpoint_of_string : string -> (endpoint, string) result
(** Parse an endpoint: a string containing ['/'] or without a
    [:port] suffix is a Unix-socket path; [HOST:PORT] with a numeric
    port is TCP.  Port [0] asks the kernel for an ephemeral port (see
    {!tcp_port}). *)

val endpoint_to_string : endpoint -> string

val sockaddr_of_endpoint : endpoint -> (Unix.sockaddr, string) result
(** Resolve an endpoint to a bindable/connectable address (IPv4
    preferred for TCP hosts). *)

val connect_endpoint : endpoint -> (Unix.file_descr, string) result
(** Client-side connect to either endpoint kind (used by the CLI client
    and the chaos proxy). *)

(** Serving limits and the shared-secret token.  All fields have
    production defaults in {!default_config}. *)
type config = {
  cfg_token : string option;
      (** shared secret required (TCP only) as the first frame *)
  cfg_max_connections : int;
      (** accepted connections beyond this get one structured error
          reply with a [retry_after_ms] hint and are closed *)
  cfg_max_frame_bytes : int;
      (** cap on one request frame; an unterminated frame past it costs
          one error reply and is discarded up to its newline *)
  cfg_idle_timeout_s : float option;
      (** reap a connection that sends nothing for this long *)
  cfg_write_timeout_s : float option;
      (** reap a connection that will not drain our replies *)
  cfg_drain_grace_s : float;
      (** how long {!run} waits for connections to finish on shutdown *)
}

val default_config : config
(** No token, 256 connections, 4 MiB frames, 300 s idle timeout, 30 s
    write timeout, 5 s drain grace. *)

type t

val start :
  ?config:config -> ?listen:endpoint -> socket:string -> Scheduler.t -> t
(** Bind and listen on [socket] (an existing stale socket file is
    replaced) — and, with [listen], additionally on a TCP endpoint
    (with [SO_REUSEADDR]) — and start accepting in background threads.
    @raise Unix.Unix_error when a path or address cannot be bound.
    @raise Invalid_argument when [listen] is a [Unix_path]. *)

val tcp_port : t -> int option
(** The bound TCP port, when started with [listen] — the actual kernel
    choice when the requested port was [0]. *)

val run : t -> unit
(** Block until a [shutdown] request (or {!stop}) terminates the
    server, then drain: stop accepting, shut the scheduler down, wait
    out the drain grace for open connections, remove the socket file. *)

val stop : t -> unit
(** Request termination from another thread (e.g. a signal handler);
    idempotent.  {!run} performs the actual teardown. *)

val serve :
  ?config:config -> ?listen:endpoint -> socket:string -> Scheduler.t -> unit
(** [start] + [run]. *)
