(** The daemon's shared hot state: one {!Explore.Cache} for every job
    the process ever runs, plus a cross-request {e elaboration cache} —
    the promotion of the simulator's domain-local session cache to the
    whole daemon.

    The elaboration cache memoizes, under the content digest of the
    specification {e source text}, everything a job derives before doing
    real work: the parsed program, its source-line table, the access
    graph and the {!Explore.Evaluate} context.  Two requests carrying
    the same source — the common case for a client iterating on
    parameters — share one physical [Ast.program] value, which is
    exactly what {!Sim.Engine}'s domain-local session cache keys on, so
    repeated simulations of a served spec rewind a live kernel instead
    of re-elaborating it.

    All operations are thread-safe; connection handlers and pool workers
    share one session. *)

type elab = {
  el_digest : string;  (** content digest of the source text *)
  el_program : Spec.Ast.program;
  el_locations : Spec.Parser.locations;
  el_graph : Agraph.Access_graph.t;
  el_ctx : Explore.Evaluate.ctx;
}

type t

val create :
  ?cache_dir:string ->
  ?cache_entries:int ->
  ?cache_bytes:int ->
  ?elab_entries:int ->
  ?sim_sessions:int ->
  unit ->
  t
(** A fresh session.  [cache_dir] / [cache_entries] / [cache_bytes] feed
    the shared {!Explore.Cache.create}; [elab_entries] bounds the
    elaboration cache (default 64, LRU-evicted); [sim_sessions] widens
    the per-domain simulator session cap ({!Sim.Engine.set_session_cap},
    default 8 — a daemon juggles more concurrent programs than a CLI
    run).
    @raise Invalid_argument when a cap is < 1.
    @raise Sys_error when the cache directory cannot be created. *)

val cache : t -> Explore.Cache.t
(** The shared evaluation cache, hot across every request. *)

val elaborate : t -> source:string -> (elab, string) result
(** Parse, validate and elaborate [source], or return the cached
    elaboration of an identical source.  Parse and validation errors
    are returned (never cached — they are cheap to rediscover and keep
    the table small). *)

type stats = {
  st_elab_hits : int;
  st_elab_misses : int;
  st_elab_entries : int;  (** resident elaborations *)
}

val stats : t -> stats
