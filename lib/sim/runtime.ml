(** The process-tree runtime shared by the simulation kernels: behavior
    instantiation, structural advancement over TOC arcs, completion and
    deadlock analysis, and final-value readout.

    Two kernels drive this machinery: the event-driven scheduler
    ({!Engine}) and the retained round-robin polling scheduler
    ({!Reference}), which exists as the differential-testing baseline.
    Everything observable — traces, final values, deadlock reports, delta
    counts — is produced by this shared code, so the kernels can only
    differ in scheduling, and the differential tests check they do not. *)

open Spec
open Spec.Ast

type config = {
  max_steps : int;  (** total interpreter steps across all processes *)
  max_deltas : int;
  slice : int;  (** interpreter steps per process per scheduling round *)
  trace_signals : bool;
      (** record every committed signal change (for waveform dumps) *)
}

let default_config =
  {
    max_steps = 5_000_000;
    max_deltas = 200_000;
    slice = 10_000;
    trace_signals = false;
  }

type outcome =
  | Completed
  | Deadlock of string list  (** blocked process descriptions *)
  | Step_limit
  | Cancelled  (** the [h_poll] hook asked the kernel to stop *)

type result = {
  r_outcome : outcome;
  r_trace : Trace.event list;
  r_deltas : int;
  r_steps : int;
  r_final : (string * value) list;
      (** variable values at the end, preorder, first occurrence first *)
  r_signal_trace : (int * (string * value) list) list;
      (** with [trace_signals]: per delta cycle, the committed changes *)
}

(** Post-commit access to the live simulation state, handed to the
    [h_on_commit] hook: the signal store plus read/write access to the
    behavior-frame variables anywhere in the process tree (fault
    injection flips bits in generated memory storage through this). *)
type probe = {
  pr_delta : int;  (** the delta cycle just committed *)
  pr_signals : Sigtable.t;
  pr_read_var : string -> value option;
  pr_write_var : string -> value -> bool;
}

type hooks = {
  h_intercept : (delta:int -> string -> value -> Sigtable.action) option;
      (** sees every scheduled signal update at commit time;
          [delta] is the cycle being committed *)
  h_on_commit : (probe -> unit) option;  (** runs after every commit *)
  h_poll : (unit -> bool) option;
      (** cooperative cancellation: checked once per scheduling round;
          returning [true] stops the run with {!Cancelled} *)
}

let no_hooks = { h_intercept = None; h_on_commit = None; h_poll = None }

(* The round-boundary cancellation check both kernels share. *)
let poll_cancelled hooks =
  match hooks.h_poll with None -> false | Some f -> f ()

(** Which leaf machine the kernels drive: the bytecode register VM
    ({!Vm}, the default) or the retained tree-walking interpreter
    ({!Interp}, the differential oracle).  Both produce bit-identical
    observables — traces, final values, step counts, error messages —
    which the differential tests enforce. *)
type backend = [ `Bytecode | `Treewalk ]

(* The process-wide default the kernels fall back to when a caller does
   not pass [?backend] explicitly.  The CLI's [--backend] flag sets it
   once at startup so every simulation an invocation performs — cosim
   gates, fault campaigns, litmus runs — honors one switch; the serve
   daemon instead threads an explicit backend per job and never touches
   this. *)
let default_backend_cell : backend Atomic.t = Atomic.make `Bytecode
let default_backend () = Atomic.get default_backend_cell
let set_default_backend b = Atomic.set default_backend_cell b

let backend_of_string = function
  | "vm" | "bytecode" -> Ok `Bytecode
  | "tree" | "treewalk" -> Ok `Treewalk
  | s -> Error (Printf.sprintf "unknown backend %S (use vm or tree)" s)

let backend_to_string = function `Bytecode -> "vm" | `Treewalk -> "tree"

(** One leaf process machine of either backend. *)
type machine = Mtree of Interp.exec | Mvm of Vm.thread

let machine_owner = function
  | Mtree exec -> exec.Interp.ex_owner
  | Mvm t -> Vm.owner t

let machine_gen = function
  | Mtree exec -> exec.Interp.ex_gen
  | Mvm t -> Vm.gen t

(** Finished, as the structural advance observes it: the tree-walker's
    empty task stack, the VM's halt flag — both become true the moment
    the body's last step completes, even mid-slice. *)
let machine_finished = function
  | Mtree exec -> exec.Interp.stack = []
  | Mvm t -> Vm.halted t

let reset_machine = function
  | Mtree exec -> Interp.reset_exec exec
  | Mvm t -> Vm.reset t

type nstate =
  | Nleaf of machine
  | Nseq of seq_run
  | Npar of node list
  | Ndone

and seq_run = {
  mutable s_idx : int;
  mutable s_child : node;
  s_arms : seq_arm array;  (** the composition's arms, for O(1) indexing *)
  s_pool : node option array;
      (** per arm, the subtree built when the arm was last entered;
          re-entering an arm resets that subtree in place instead of
          instantiating a fresh one *)
  mutable s_conds : (expr * Vm.cond_prog) list;
      (** TOC-arc conditions compiled for the bytecode backend, keyed by
          physical expression — a composition re-evaluates the same few
          conditions at every arm completion *)
}

and node = {
  nd_behavior : behavior;
  nd_frame : Env.frame;
  nd_backend : backend;
  mutable nd_state : nstate;
  nd_keep : keep;
      (** the structure behind [nd_state], retained past completion so a
          re-entered arm can be rewound instead of rebuilt *)
}

and keep =
  | Kleaf of machine
  | Kseq of seq_run
  | Kpar of node list
  | Knone  (** empty composition: born done *)

let rec instantiate ?(backend = `Bytecode) parent_frame b =
  let frame = Env.make ~parent:parent_frame ~owner:b.b_name b.b_vars in
  let state, keep =
    match b.b_body with
    | Leaf stmts ->
      let m =
        match backend with
        | `Treewalk -> Mtree (Interp.make_exec ~owner:b.b_name ~frame stmts)
        | `Bytecode -> Mvm (Vm.make ~owner:b.b_name ~frame stmts)
      in
      (Nleaf m, Kleaf m)
    | Seq [] -> (Ndone, Knone)
    | Seq (first :: _ as arms) ->
      let s =
        {
          s_idx = 0;
          s_child = instantiate ~backend frame first.a_behavior;
          s_arms = Array.of_list arms;
          s_pool = Array.make (List.length arms) None;
          s_conds = [];
        }
      in
      s.s_pool.(0) <- Some s.s_child;
      (Nseq s, Kseq s)
    | Par [] -> (Ndone, Knone)
    | Par children ->
      let nodes = List.map (instantiate ~backend frame) children in
      (Npar nodes, Kpar nodes)
  in
  {
    nd_behavior = b;
    nd_frame = frame;
    nd_backend = backend;
    nd_state = state;
    nd_keep = keep;
  }

(* Rewind a previously-built subtree to its freshly-instantiated state,
   in place: variables take their initializers again (cells and arrays
   are overwritten, never replaced, so memoized resolutions and staged
   closures stay valid), leaf machines restart at the top of their
   compiled bodies, sequential compositions re-enter their first arm.
   Observably identical to [instantiate] — same values, same steps —
   without rebuilding any frame, table or compiled body. *)
let rec reset_node node =
  Env.reinitialize node.nd_frame node.nd_behavior.b_vars;
  match node.nd_keep with
  | Kleaf m ->
    reset_machine m;
    node.nd_state <- Nleaf m
  | Kseq s ->
    s.s_idx <- 0;
    s.s_child <- arm_child ~backend:node.nd_backend s node.nd_frame 0;
    node.nd_state <- Nseq s
  | Kpar children ->
    List.iter reset_node children;
    node.nd_state <- Npar children
  | Knone -> node.nd_state <- Ndone

(* The subtree for entering arm [j]: the pooled instance rewound, or a
   fresh instantiation on first entry. *)
and arm_child ~backend s frame j =
  match s.s_pool.(j) with
  | Some child ->
    reset_node child;
    child
  | None ->
    let child = instantiate ~backend frame s.s_arms.(j).a_behavior in
    s.s_pool.(j) <- Some child;
    child

let is_done node = match node.nd_state with Ndone -> true | _ -> false

let rec collect_leaves acc node =
  match node.nd_state with
  | Ndone -> acc
  | Nleaf m -> m :: acc
  | Nseq s -> collect_leaves acc s.s_child
  | Npar children -> List.fold_left collect_leaves acc children

(** All live leaves in preorder. *)
let leaves root = List.rev (collect_leaves [] root)

let eval_cond cx frame c =
  let lookup name =
    match Env.lookup frame name with
    | Some v -> Some v
    | None -> Sigtable.read cx.Interp.cx_signals name
  in
  let lookup_idx name i =
    match Env.find_array frame name with
    | Some arr when i >= 0 && i < Array.length arr -> Some arr.(i)
    | Some _ | None -> None
  in
  match Expr.eval ~lookup_idx ~lookup c with
  | VBool b -> b
  | VInt _ ->
    raise
      (Interp.Run_error
         (Printf.sprintf "TOC condition %s is not boolean" (Expr.to_string c)))

(* A TOC-arc condition under the bytecode backend: compiled once per
   (composition, condition) site, evaluated by the VM's condition
   interpreter.  Operand resolution order (frame chain before signal
   table) and every error message match [eval_cond] exactly. *)
let eval_cond_seq cx node s c =
  match node.nd_backend with
  | `Treewalk -> eval_cond cx node.nd_frame c
  | `Bytecode ->
    let cp =
      match List.assq_opt c s.s_conds with
      | Some cp -> cp
      | None ->
        let cp =
          Vm.compile_cond ~frame:node.nd_frame
            ~signals:cx.Interp.cx_signals c
        in
        s.s_conds <- (c, cp) :: s.s_conds;
        cp
    in
    begin match Vm.eval_cond cx cp with
    | VBool b -> b
    | VInt _ ->
      raise
        (Interp.Run_error
           (Printf.sprintf "TOC condition %s is not boolean"
              (Expr.to_string c)))
    end

(* Advance structural state after leaves have run: leaves with an empty
   stack become done; a sequential composition whose child completed takes
   its TOC arc; a parallel composition completes with all children.
   Returns true when anything changed. *)
let rec advance cx node =
  match node.nd_state with
  | Ndone -> false
  | Nleaf m ->
    if machine_finished m then begin
      node.nd_state <- Ndone;
      true
    end
    else false
  | Npar children ->
    let changed =
      List.fold_left (fun acc c -> advance cx c || acc) false children
    in
    if List.for_all is_done children then begin
      node.nd_state <- Ndone;
      true
    end
    else changed
  | Nseq s ->
    let changed = advance cx s.s_child in
    if not (is_done s.s_child) then changed
    else begin
      let arms = s.s_arms in
      let arm = arms.(s.s_idx) in
      let fired =
        let rec first_true = function
          | [] -> None
          | t :: rest ->
            begin match t.t_cond with
            | None -> Some t.t_target
            | Some c ->
              if eval_cond_seq cx node s c then Some t.t_target
              else first_true rest
            end
        in
        match arm.a_transitions with
        | [] ->
          (* fall through to the next arm in the list *)
          if s.s_idx + 1 < Array.length arms then
            Some (Goto arms.(s.s_idx + 1).a_behavior.b_name)
          else Some Complete
        | ts ->
          (* no arc firing completes the composition *)
          begin match first_true ts with
          | Some target -> Some target
          | None -> Some Complete
          end
      in
      begin match fired with
      | Some Complete | None -> node.nd_state <- Ndone
      | Some (Goto name) ->
        let j =
          let found = ref (-1) in
          Array.iteri
            (fun i a ->
              if !found < 0 && String.equal a.a_behavior.b_name name then
                found := i)
            arms;
          if !found < 0 then
            raise
              (Interp.Run_error
                 (Printf.sprintf "behavior %s: transition to unknown arm %s"
                    node.nd_behavior.b_name name));
          !found
        in
        s.s_idx <- j;
        s.s_child <- arm_child ~backend:node.nd_backend s node.nd_frame j
      end;
      true
    end

let rec advance_fixpoint cx node =
  if advance cx node then begin
    ignore (advance_fixpoint cx node);
    true
  end
  else false

(* A node is effectively done when it finished, is a registered server, or
   is a parallel composition of effectively done children (a component
   whose only remaining activity is its perpetual servers counts as
   finished). *)
let rec effectively_done servers node =
  match node.nd_state with
  | Ndone -> true
  | _ when List.mem node.nd_behavior.b_name servers -> true
  | Nleaf _ | Nseq _ -> false
  | Npar children -> List.for_all (effectively_done servers) children

(* What a blocked wait is stuck on, with current values: the signals the
   condition reads, and also the frame variables it reads (a wait on a
   variable that no other process ever writes is a deadlock too, and the
   report must name it) — fault-campaign deadlocks are diagnosed from
   these. *)
let waited_signals cx frame c =
  List.filter_map
    (fun x ->
      match Env.lookup frame x with
      | Some v -> Some (Format.asprintf "%s=%a" x Expr.pp_value v)
      | None ->
        begin match Sigtable.read cx.Interp.cx_signals x with
        | Some v -> Some (Format.asprintf "%s=%a" x Expr.pp_value v)
        | None -> None
        end)
    (Expr.refs c)

let describe_wait cx owner frame c acc =
  let sigs = waited_signals cx frame c in
  Printf.sprintf "%s waiting until %s%s" owner (Expr.to_string c)
    (match sigs with
    | [] -> ""
    | _ -> Printf.sprintf " [%s]" (String.concat ", " sigs))
  :: acc

let rec blocked_descriptions cx acc node =
  match node.nd_state with
  | Ndone -> acc
  | Nleaf (Mtree exec) ->
    begin match exec.Interp.stack with
    | Interp.Twait ce :: _ ->
      describe_wait cx exec.Interp.ex_owner exec.Interp.frame
        ce.Interp.ce_expr acc
    | _ -> Printf.sprintf "%s runnable" exec.Interp.ex_owner :: acc
    end
  | Nleaf (Mvm t) ->
    begin match Vm.blocked_site t with
    | Some ws ->
      describe_wait cx (Vm.owner t) ws.Opcode.ws_frame ws.Opcode.ws_expr acc
    | None -> Printf.sprintf "%s runnable" (Vm.owner t) :: acc
    end
  | Nseq s -> blocked_descriptions cx acc s.s_child
  | Npar children -> List.fold_left (blocked_descriptions cx) acc children

(* Final variable values: the root frame (program variables) first, then
   every live node's own declarations in preorder. *)
let final_values root_frame root =
  let acc = ref [] in
  let seen = Hashtbl.create 32 in
  let add name value =
    if not (Hashtbl.mem seen name) then begin
      Hashtbl.add seen name ();
      acc := (name, value) :: !acc
    end
  in
  Hashtbl.iter (fun name cell -> add name !cell) root_frame.Env.f_vars;
  let add_array name arr =
    Array.iteri (fun i v -> add (Printf.sprintf "%s[%d]" name i) v) arr
  in
  Hashtbl.iter add_array root_frame.Env.f_arrays;
  let rec walk node =
    List.iter
      (fun (d : var_decl) ->
        match d.v_ty with
        | TArray _ ->
          begin match Env.find_array node.nd_frame d.v_name with
          | Some arr -> add_array d.v_name arr
          | None -> ()
          end
        | TBool | TInt _ ->
          begin match Env.lookup node.nd_frame d.v_name with
          | Some v -> add d.v_name v
          | None -> ()
          end)
      node.nd_behavior.b_vars;
    begin match node.nd_state with
    | Nseq s -> walk s.s_child
    | Npar children -> List.iter walk children
    | Nleaf _ | Ndone -> ()
    end
  in
  walk root;
  List.rev !acc

(* Frame-variable access for the on-commit probe: the root frame first,
   then every live node's own cell, preorder (matching [final_values]'
   first-occurrence-wins order). *)
let find_cell root_frame root name =
  match Hashtbl.find_opt root_frame.Env.f_vars name with
  | Some cell -> Some cell
  | None ->
    let rec walk node =
      let here =
        if
          List.exists
            (fun (d : var_decl) -> String.equal d.v_name name)
            node.nd_behavior.b_vars
        then Hashtbl.find_opt node.nd_frame.Env.f_vars name
        else None
      in
      match here with
      | Some _ -> here
      | None ->
        begin match node.nd_state with
        | Nseq s -> walk s.s_child
        | Npar children -> List.find_map walk children
        | Nleaf _ | Ndone -> None
        end
    in
    walk root

let outcome_to_string = function
  | Completed -> "completed"
  | Deadlock who ->
    Printf.sprintf "deadlock (%s)" (String.concat "; " who)
  | Step_limit -> "step limit exceeded"
  | Cancelled -> "cancelled"
