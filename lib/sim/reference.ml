(** The retained polling scheduler: every scheduling round walks the whole
    process tree, gives every live leaf a slice (blocked leaves re-evaluate
    their wait condition and consume no steps), and re-runs the structural
    advancement to fixpoint.  This was the production kernel before the
    event-driven scheduler ({!Engine}) replaced it; it is kept as the
    differential-testing baseline — both kernels share {!Runtime}, so any
    observable divergence is a scheduling bug. *)

open Spec
open Runtime

let run ?(config = default_config) ?(hooks = no_hooks) ?ordering
    (p : Ast.program) =
  let cx =
    {
      Interp.cx_signals = Sigtable.make p.Ast.p_signals;
      cx_trace = Trace.make ();
      cx_procs = p.Ast.p_procs;
      cx_delta = 0;
    }
  in
  let root_frame = Env.make ~owner:p.Ast.p_name p.Ast.p_vars in
  (* The polling oracle drives the tree-walking interpreter: with the
     engine defaulting to the bytecode VM, the differential suite then
     crosses kernels {e and} leaf backends in one comparison. *)
  let root = instantiate ~backend:`Treewalk root_frame p.Ast.p_top in
  let total_steps = ref 0 in
  let outcome = ref None in
  let signal_trace = ref [] in
  (* Same intercept composition as the event-driven kernel: the fault
     hook decides first, then the ordering layer may divert the write
     into a port FIFO.  The two kernels see identical capture/release
     sequences, so a (policy, seed) pair replays bit-identically. *)
  let base_intercept =
    match hooks.h_intercept with
    | None -> None
    | Some f -> Some (fun name v -> f ~delta:cx.Interp.cx_delta name v)
  in
  begin match (base_intercept, ordering) with
  | None, None -> ()
  | Some f, None -> Sigtable.set_intercept cx.Interp.cx_signals (Some f)
  | base, Some mo ->
    Sigtable.set_intercept cx.Interp.cx_signals
      (Some
         (fun name v ->
           let act =
             match base with None -> Sigtable.Pass | Some f -> f name v
           in
           let capture v =
             Memord.capture mo ~delta:cx.Interp.cx_delta name v
           in
           match act with
           | Sigtable.Drop -> Sigtable.Drop
           | Sigtable.Pass ->
             if capture v then Sigtable.Drop else Sigtable.Pass
           | Sigtable.Rewrite v' ->
             if capture v' then Sigtable.Drop else Sigtable.Rewrite v'))
  end;
  (* Same release points as the event-driven kernel (post-commit and
     quiescent rounds), so the scheduler consumes its seed identically
     and a (policy, seed) pair replays bit-identically on both. *)
  let release_ordered () =
    match ordering with
    | Some mo when Memord.pending mo ->
      List.iter
        (fun (name, v) -> ignore (Sigtable.poke cx.Interp.cx_signals name v))
        (Memord.release mo)
    | _ -> ()
  in
  let probe () =
    {
      pr_delta = cx.Interp.cx_delta;
      pr_signals = cx.Interp.cx_signals;
      pr_read_var =
        (fun name -> Option.map ( ! ) (find_cell root_frame root name));
      pr_write_var =
        (fun name v ->
          match find_cell root_frame root name with
          | Some cell ->
            cell := v;
            true
          | None -> false);
    }
  in
  while !outcome = None do
    if poll_cancelled hooks then outcome := Some Cancelled
    else begin
    (* Run every runnable leaf for one slice. *)
    let ran = ref false in
    List.iter
      (fun m ->
        if not (machine_finished m) then begin
          let steps =
            match m with
            | Mtree exec -> snd (Interp.run cx exec ~fuel:config.slice)
            | Mvm t ->
              ignore (Vm.run cx t ~fuel:config.slice);
              t.Vm.th_steps
          in
          total_steps := !total_steps + steps;
          if steps > 0 then ran := true
        end)
      (leaves root);
    let structural = advance_fixpoint cx root in
    if !total_steps > config.max_steps then outcome := Some Step_limit
    else if (not !ran) && not structural then begin
      if Sigtable.pending cx.Interp.cx_signals then begin
        let changes = Sigtable.commit_changes cx.Interp.cx_signals in
        cx.Interp.cx_delta <- cx.Interp.cx_delta + 1;
        if config.trace_signals && changes <> [] then
          signal_trace := (cx.Interp.cx_delta, changes) :: !signal_trace;
        Option.iter (fun f -> f (probe ())) hooks.h_on_commit;
        release_ordered ();
        if cx.Interp.cx_delta > config.max_deltas then
          outcome := Some Step_limit
      end
      else begin
        match ordering with
        | Some mo when Memord.pending mo ->
          (* Quiescent: release diverted port updates as pokes — the
             polling walk re-evaluates every wait condition next round
             anyway. *)
          release_ordered ()
        | _ ->
          if effectively_done p.Ast.p_servers root then
            outcome := Some Completed
          else
            outcome :=
              Some (Deadlock (List.rev (blocked_descriptions cx [] root)))
      end
    end
    end
  done;
  let outcome = Option.get !outcome in
  {
    r_outcome = outcome;
    r_trace = Trace.events cx.Interp.cx_trace;
    r_deltas = cx.Interp.cx_delta;
    r_steps = !total_steps;
    r_final = final_values root_frame root;
    r_signal_trace = List.rev !signal_trace;
  }
