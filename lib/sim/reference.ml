(** The retained polling scheduler: every scheduling round walks the whole
    process tree, gives every live leaf a slice (blocked leaves re-evaluate
    their wait condition and consume no steps), and re-runs the structural
    advancement to fixpoint.  This was the production kernel before the
    event-driven scheduler ({!Engine}) replaced it; it is kept as the
    differential-testing baseline — both kernels share {!Runtime}, so any
    observable divergence is a scheduling bug. *)

open Spec
open Runtime

let run ?(config = default_config) ?(hooks = no_hooks) (p : Ast.program) =
  let cx =
    {
      Interp.cx_signals = Sigtable.make p.Ast.p_signals;
      cx_trace = Trace.make ();
      cx_procs = p.Ast.p_procs;
      cx_delta = 0;
    }
  in
  let root_frame = Env.make ~owner:p.Ast.p_name p.Ast.p_vars in
  let root = instantiate root_frame p.Ast.p_top in
  let total_steps = ref 0 in
  let outcome = ref None in
  let signal_trace = ref [] in
  begin match hooks.h_intercept with
  | None -> ()
  | Some f ->
    Sigtable.set_intercept cx.Interp.cx_signals
      (Some (fun name v -> f ~delta:cx.Interp.cx_delta name v))
  end;
  let probe () =
    {
      pr_delta = cx.Interp.cx_delta;
      pr_signals = cx.Interp.cx_signals;
      pr_read_var =
        (fun name -> Option.map ( ! ) (find_cell root_frame root name));
      pr_write_var =
        (fun name v ->
          match find_cell root_frame root name with
          | Some cell ->
            cell := v;
            true
          | None -> false);
    }
  in
  while !outcome = None do
    if poll_cancelled hooks then outcome := Some Cancelled
    else begin
    (* Run every runnable leaf for one slice. *)
    let ran = ref false in
    List.iter
      (fun exec ->
        match exec.Interp.stack with
        | [] -> ()
        | _ ->
          let _, steps = Interp.run cx exec ~fuel:config.slice in
          total_steps := !total_steps + steps;
          if steps > 0 then ran := true)
      (leaves root);
    let structural = advance_fixpoint cx root in
    if !total_steps > config.max_steps then outcome := Some Step_limit
    else if (not !ran) && not structural then begin
      if Sigtable.pending cx.Interp.cx_signals then begin
        let changes = Sigtable.commit_changes cx.Interp.cx_signals in
        cx.Interp.cx_delta <- cx.Interp.cx_delta + 1;
        if config.trace_signals && changes <> [] then
          signal_trace := (cx.Interp.cx_delta, changes) :: !signal_trace;
        Option.iter (fun f -> f (probe ())) hooks.h_on_commit;
        if cx.Interp.cx_delta > config.max_deltas then
          outcome := Some Step_limit
      end
      else if effectively_done p.Ast.p_servers root then
        outcome := Some Completed
      else
        outcome := Some (Deadlock (List.rev (blocked_descriptions cx [] root)))
    end
    end
  done;
  let outcome = Option.get !outcome in
  {
    r_outcome = outcome;
    r_trace = Trace.events cx.Interp.cx_trace;
    r_deltas = cx.Interp.cx_delta;
    r_steps = !total_steps;
    r_final = final_values root_frame root;
    r_signal_trace = List.rev !signal_trace;
  }
