(** The signal store: current values plus the delta-delayed update queue
    (VHDL-style signal semantics). *)

open Spec

type t

val make : Ast.sig_decl list -> t
(** Signals start at their declared initial value (or the type default). *)

val is_signal : t -> string -> bool

val read : t -> string -> Ast.value option

val schedule : t -> string -> Ast.value -> bool
(** Schedule a delta-delayed update; false if the name is not a signal.
    The last schedule of a delta wins. *)

val pending : t -> bool

(** What an update intercept decides about one scheduled update (fault
    injection): let it through, lose it, or corrupt it in flight. *)
type action =
  | Pass
  | Drop
  | Rewrite of Ast.value

val set_intercept : t -> (string -> Ast.value -> action) option -> unit
(** Install (or clear) an update intercept.  During {!commit_changes} the
    intercept sees every scheduled update in sorted name order and may
    drop or rewrite it; normal operation has no intercept installed. *)

val poke : t -> string -> Ast.value -> bool
(** Force a signal's current value immediately, bypassing the delta-cycle
    queue (fault injection: stuck lines, delayed re-delivery).  False if
    the name is not a signal. *)

val commit_changes : t -> (string * Ast.value) list
(** Apply all scheduled updates; returns the signals whose value actually
    changed, sorted by name. *)

val commit : t -> bool
(** Apply all scheduled updates; true iff any signal value changed. *)

val snapshot : t -> (string * Ast.value) list
(** Current value of every signal, sorted by name. *)
