(** The signal store: current values plus the delta-delayed update queue
    (VHDL-style signal semantics).

    Signal names are interned to dense integer ids at construction; ids
    are assigned in sorted name order, so ascending-id iteration
    reproduces the name-sorted commit and snapshot orders.  Values are
    array-backed, and the scheduled queue is a worklist of written ids, so
    both the per-read cost and the per-commit cost are independent of the
    total signal count. *)

open Spec

type t

val make : Ast.sig_decl list -> t
(** Signals start at their declared initial value (or the type default). *)

val reset : t -> unit
(** Rewind to the construction state: declaration-time values, empty
    update queue, no intercept or notify hooks.  Observably a fresh
    {!make} of the same declarations. *)

val is_signal : t -> string -> bool

(** {1 Interned ids} *)

val n_signals : t -> int

val id_of : t -> string -> int option
(** The dense id of a signal name; ids are [0 .. n_signals - 1] in sorted
    name order, stable for the lifetime of the table. *)

val name_of : t -> int -> string

val read_id : t -> int -> Ast.value
(** Current value, by id — a single array read. *)

val schedule_id : t -> int -> Ast.value -> unit
(** Schedule a delta-delayed update, by id. *)

(** {1 Name-keyed interface} *)

val read : t -> string -> Ast.value option

val schedule : t -> string -> Ast.value -> bool
(** Schedule a delta-delayed update; false if the name is not a signal.
    The last schedule of a delta wins. *)

val pending : t -> bool

(** What an update intercept decides about one scheduled update (fault
    injection): let it through, lose it, or corrupt it in flight. *)
type action =
  | Pass
  | Drop
  | Rewrite of Ast.value

val set_intercept : t -> (string -> Ast.value -> action) option -> unit
(** Install (or clear) an update intercept.  During {!commit_changes} the
    intercept sees every scheduled update in sorted name order and may
    drop or rewrite it; normal operation has no intercept installed. *)

val set_notify : t -> (int -> unit) option -> unit
(** Install (or clear) the out-of-band change hook: {!poke} calls it with
    the signal's id whenever it changes a current value.  The event-driven
    scheduler uses this to wake waiters on poked signals; commits do not
    fire it (their changes are returned from {!commit_ids}). *)

val poke : t -> string -> Ast.value -> bool
(** Force a signal's current value immediately, bypassing the delta-cycle
    queue (fault injection: stuck lines, delayed re-delivery).  False if
    the name is not a signal. *)

val commit_ids : t -> int list
(** Apply all scheduled updates (in ascending id = sorted name order,
    each filtered through the intercept); returns the ids whose current
    value actually changed, ascending. *)

val commit_iter : t -> (int -> unit) -> unit
(** Apply all scheduled updates exactly as {!commit_ids}, calling the
    callback on each changed id (ascending) as it commits instead of
    materializing the list. *)

val commit_changes : t -> (string * Ast.value) list
(** Apply all scheduled updates; returns the signals whose value actually
    changed, sorted by name. *)

val commit : t -> bool
(** Apply all scheduled updates; true iff any signal value changed. *)

val snapshot : t -> (string * Ast.value) list
(** Current value of every signal, sorted by name. *)
