(** The register machine executing {!Opcode} programs.

    One {!thread} per leaf process: a stack of activations (the leaf
    body plus any live procedure calls), each holding its compiled
    program, its register file and its frame.  Registers carry boxed
    {!Spec.Ast.value}s and persist across suspensions, so a thread
    blocked at a wait (or out of fuel) resumes mid-construct with loop
    counters and bounds intact.

    The dispatch loop keeps the code array, register file and pc in
    locals and charges steps only at the instructions the tree-walker
    counts as steps ({!Opcode.charges}), so [run ~fuel] returns
    bit-identical (status, steps) to {!Interp.run} on the same body.
    All effects go through the same shared machinery — {!Sigtable} for
    reads, schedules and commits, {!Trace} for events, {!Env} frames for
    variables — so hooks, fault pokes, and ordering policies observe the
    two backends identically.

    Compilation is lazy (first run) because it needs the signal table
    and procedure list from the run context; the compiled root program
    survives {!reset} — a session rewind reuses frames and cells in
    place, which is exactly the invariant the baked operands rely on. *)

open Spec
open Spec.Ast
open Opcode

(* [Blocked] carries no payload: the site is published through
   [th_blocked], so a park costs one box (the [Some]) rather than two. *)
type status = Progress | Blocked | Finished

type activation = {
  act_prog : prog;
  act_regs : value array;
  mutable act_pc : int;
  act_frame : Env.frame;
  act_pool : vpool option;  (** released (not busy) when this returns *)
}

type thread = {
  th_owner : string;
  th_body : stmt list;  (** source, compiled at first run *)
  th_base_frame : Env.frame;
  mutable th_root : activation option;
  mutable th_cur : activation option;
  mutable th_callers : activation list;  (** innermost caller first *)
  mutable th_halted : bool;
  mutable th_gen : int;  (** bumped by {!reset} *)
  mutable th_blocked : wait_site option;  (** site of the last block *)
  mutable th_steps : int;
      (** steps consumed by the last {!run} — returned out-of-band so an
          activation completes without allocating a result tuple *)
}

let make ~owner ~frame stmts =
  {
    th_owner = owner;
    th_body = stmts;
    th_base_frame = frame;
    th_root = None;
    th_cur = None;
    th_callers = [];
    th_halted = false;
    th_gen = 0;
    th_blocked = None;
    th_steps = 0;
  }

(** Rewind to the top of the compiled body.  Mirrors
    {!Interp.reset_exec}: the compiled program and its baked operands
    survive (the frames are being reused in place), the generation
    bumps, and a pooled procedure frame abandoned mid-call stays busy —
    later calls through that site fall back to fresh frames, exactly as
    the tree-walker's pool does. *)
let reset t =
  begin match t.th_root with
  | Some act ->
    act.act_pc <- 0;
    t.th_cur <- t.th_root
  | None -> ()
  end;
  t.th_callers <- [];
  t.th_halted <- false;
  t.th_blocked <- None;
  t.th_gen <- t.th_gen + 1

let owner t = t.th_owner
let gen t = t.th_gen
let halted t = t.th_halted
let blocked_site t = t.th_blocked

let run_error fmt = Printf.ksprintf (fun s -> raise (Interp.Run_error s)) fmt

(* Inline the all-integer fast paths: {!Spec.Expr.apply_binop} builds
   two closures per call, and comparisons and counter arithmetic are the
   bulk of leaf work.  Anything else — type errors, division — falls
   back to the shared applier for bit-identical results and messages. *)
let[@inline] apply_fast op va vb =
  match (op, va, vb) with
  | Ast.Add, Ast.VInt x, Ast.VInt y -> Expr.vint (x + y)
  | Sub, VInt x, VInt y -> Expr.vint (x - y)
  | Mul, VInt x, VInt y -> Expr.vint (x * y)
  | Lt, VInt x, VInt y -> Expr.vbool (x < y)
  | Le, VInt x, VInt y -> Expr.vbool (x <= y)
  | Gt, VInt x, VInt y -> Expr.vbool (x > y)
  | Ge, VInt x, VInt y -> Expr.vbool (x >= y)
  | Eq, _, _ -> Expr.vbool (equal_value va vb)
  | Neq, _, _ -> Expr.vbool (not (equal_value va vb))
  | _ -> Expr.apply_binop op va vb

let fresh_regs prog = Array.make (max prog.pr_nregs 1) (Expr.vbool false)

let ensure_cur cx t =
  match t.th_cur with
  | Some act -> act
  | None ->
    let prog =
      Compile.body ~owner:t.th_owner ~frame:t.th_base_frame
        ~signals:cx.Interp.cx_signals ~procs:cx.Interp.cx_procs
        ~epilogue:`Halt t.th_body
    in
    let act =
      {
        act_prog = prog;
        act_regs = fresh_regs prog;
        act_pc = 0;
        act_frame = t.th_base_frame;
        act_pool = None;
      }
    in
    t.th_root <- Some act;
    t.th_cur <- Some act;
    act

(* Enter a call site: reuse the pooled frame when free, else build a
   fresh frame (and, on the site's first completed setup, the pool).
   In-arguments were evaluated into registers by the preceding
   instructions; out-parameters were resolved at compile time. *)
let enter_call cx t site (regs : value array) =
  let pr = site.vs_proc in
  match site.vs_pool with
  | VPpool p when not p.vp_busy ->
    Array.iter (fun (r, cell) -> cell := regs.(r)) p.vp_in_cells;
    Env.reinitialize p.vp_frame pr.prc_vars;
    p.vp_busy <- true;
    {
      act_prog = p.vp_prog;
      act_regs = p.vp_regs;
      act_pc = 0;
      act_frame = p.vp_frame;
      act_pool = Some p;
    }
  | (VPnone | VPineligible | VPpool _) as st ->
    let frame =
      Env.make ~parent:site.vs_frame ~owner:site.vs_name pr.prc_vars
    in
    let in_cells = ref [] in
    Array.iter
      (function
        | Bin (name, r) ->
          let cell = ref regs.(r) in
          Env.bind frame name cell;
          in_cells := (r, cell) :: !in_cells
        | Bout (name, cell) -> Env.bind frame name cell)
      site.vs_bindings;
    let prog =
      Compile.body ~owner:site.vs_owner ~frame
        ~signals:cx.Interp.cx_signals ~procs:cx.Interp.cx_procs
        ~epilogue:`Ret pr.prc_body
    in
    let regs' = fresh_regs prog in
    let pool =
      match st with
      | VPnone when site.vs_pool_ok ->
        let p =
          {
            vp_frame = frame;
            vp_prog = prog;
            vp_regs = regs';
            vp_in_cells = Array.of_list (List.rev !in_cells);
            vp_busy = true;
          }
        in
        site.vs_pool <- VPpool p;
        Some p
      | VPnone ->
        site.vs_pool <- VPineligible;
        None
      | VPineligible | VPpool _ -> None
    in
    ignore t;
    {
      act_prog = prog;
      act_regs = regs';
      act_pc = 0;
      act_frame = frame;
      act_pool = pool;
    }

(* The dispatch loop.  [exec]/[charge]/[block] are top-level (not nested
   in [run]) so an activation costs no closure-group allocation; all the
   shared state travels as explicit arguments, which the native compiler
   keeps in registers across the known-function self-calls. *)
let rec exec cx sigs t fuel act (code : instr array) (regs : value array)
    pc steps =
  match Array.unsafe_get code pc with
      | Iconst (d, v) ->
        Array.unsafe_set regs d v;
        exec cx sigs t fuel act code regs (pc + 1) steps
      | Iload_cell (d, cell, _) ->
        Array.unsafe_set regs d !cell;
        exec cx sigs t fuel act code regs (pc + 1) steps
      | Iload_sig (d, id, _) ->
        Array.unsafe_set regs d (Sigtable.read_id sigs id);
        exec cx sigs t fuel act code regs (pc + 1) steps
      | Iload_arr (d, arr, ri, name) ->
        let i = Expr.as_int regs.(ri) in
        if i < 0 || i >= Array.length arr then
          run_error "%s: index %d out of bounds for %s (size %d)"
            act.act_prog.pr_owner i name (Array.length arr)
        else begin
          Array.unsafe_set regs d arr.(i);
          exec cx sigs t fuel act code regs (pc + 1) steps
        end
      | Iload_arr_cond (d, arr, ri, name) ->
        let i = Expr.as_int regs.(ri) in
        if i < 0 || i >= Array.length arr then
          raise
            (Expr.Eval_error (Printf.sprintf "array access %s failed" name))
        else begin
          Array.unsafe_set regs d arr.(i);
          exec cx sigs t fuel act code regs (pc + 1) steps
        end
      | Ibinop (op, d, a, b) ->
        Array.unsafe_set regs d (apply_fast op regs.(a) regs.(b));
        exec cx sigs t fuel act code regs (pc + 1) steps
      | Ibinop_rc (op, d, a, v) ->
        Array.unsafe_set regs d (apply_fast op regs.(a) v);
        exec cx sigs t fuel act code regs (pc + 1) steps
      | Ibinop_cr (op, d, v, a) ->
        Array.unsafe_set regs d (apply_fast op v regs.(a));
        exec cx sigs t fuel act code regs (pc + 1) steps
      | Ibinop_cell (op, d, cell, v, _) ->
        Array.unsafe_set regs d (apply_fast op !cell v);
        exec cx sigs t fuel act code regs (pc + 1) steps
      | Ibinop_sig (op, d, id, v, _) ->
        Array.unsafe_set regs d (apply_fast op (Sigtable.read_id sigs id) v);
        exec cx sigs t fuel act code regs (pc + 1) steps
      | Iunop (op, d, a) ->
        Array.unsafe_set regs d (Expr.apply_unop op regs.(a));
        exec cx sigs t fuel act code regs (pc + 1) steps
      | Iand_jmp (r, target) ->
        begin match regs.(r) with
        | VBool false -> exec cx sigs t fuel act code regs target steps
        | VBool true -> exec cx sigs t fuel act code regs (pc + 1) steps
        | VInt _ -> raise (Expr.Eval_error "expected a boolean value")
        end
      | Ior_jmp (r, target) ->
        begin match regs.(r) with
        | VBool true -> exec cx sigs t fuel act code regs target steps
        | VBool false -> exec cx sigs t fuel act code regs (pc + 1) steps
        | VInt _ -> raise (Expr.Eval_error "expected a boolean value")
        end
      | Ijmp target -> exec cx sigs t fuel act code regs target steps
      | Icheck_int_run (r, msg) ->
        begin match regs.(r) with
        | VInt _ -> exec cx sigs t fuel act code regs (pc + 1) steps
        | VBool _ -> raise (Interp.Run_error msg)
        end
      | Icheck_int_eval r ->
        begin match regs.(r) with
        | VInt _ -> exec cx sigs t fuel act code regs (pc + 1) steps
        | VBool _ -> raise (Expr.Eval_error "expected an integer value")
        end
      | Ifail_run msg -> raise (Interp.Run_error msg)
      | Ifail_eval msg -> raise (Expr.Eval_error msg)
      | Iyield _ -> assert false (* condition programs only *)
      | Icharge -> charge cx sigs t fuel act code regs (pc + 1) steps
      | Iend_jmp target -> charge cx sigs t fuel act code regs target steps
      | Istore_cell (cell, r, _) ->
        cell := regs.(r);
        charge cx sigs t fuel act code regs (pc + 1) steps
      | Istore_cell_const (cell, v, _) ->
        cell := v;
        charge cx sigs t fuel act code regs (pc + 1) steps
      | Istore_arr (arr, ri, rv, name) ->
        let i = Expr.as_int regs.(ri) in
        if i < 0 || i >= Array.length arr then
          run_error "%s: index %d out of bounds for %s (size %d)"
            act.act_prog.pr_owner i name (Array.length arr)
        else begin
          arr.(i) <- regs.(rv);
          charge cx sigs t fuel act code regs (pc + 1) steps
        end
      | Istore_sig (id, r, _) ->
        Sigtable.schedule_id sigs id regs.(r);
        charge cx sigs t fuel act code regs (pc + 1) steps
      | Istore_sig_const (id, v, _) ->
        Sigtable.schedule_id sigs id v;
        charge cx sigs t fuel act code regs (pc + 1) steps
      | Iemit (tag, r) ->
        Trace.record cx.Interp.cx_trace ~delta:cx.Interp.cx_delta ~tag
          ~value:regs.(r);
        charge cx sigs t fuel act code regs (pc + 1) steps
      | Iemit_const (tag, v) ->
        Trace.record cx.Interp.cx_trace ~delta:cx.Interp.cx_delta ~tag
          ~value:v;
        charge cx sigs t fuel act code regs (pc + 1) steps
      | Iif_jmp (r, target, msg) ->
        begin match regs.(r) with
        | VBool true -> charge cx sigs t fuel act code regs target steps
        | VBool false -> exec cx sigs t fuel act code regs (pc + 1) steps
        | VInt _ -> raise (Interp.Run_error msg)
        end
      | Iwhile_jmp (r, exit_, msg) ->
        begin match regs.(r) with
        | VBool true -> charge cx sigs t fuel act code regs (pc + 1) steps
        | VBool false -> charge cx sigs t fuel act code regs exit_ steps
        | VInt _ -> raise (Interp.Run_error msg)
        end
      | Ifor_test fs ->
        let cur = Expr.as_int regs.(fs.fs_cur) in
        if cur > Expr.as_int regs.(fs.fs_hi) then
          charge cx sigs t fuel act code regs fs.fs_exit steps
        else begin
          match fs.fs_cell with
          | Some cell ->
            cell := Expr.vint cur;
            charge cx sigs t fuel act code regs (pc + 1) steps
          | None -> raise (Interp.Run_error fs.fs_err)
        end
      | Ifor_end (r, head) ->
        regs.(r) <- Expr.vint (Expr.as_int regs.(r) + 1);
        charge cx sigs t fuel act code regs head steps
      | Iwait (r, site, msg) ->
        begin match regs.(r) with
        | VBool true -> charge cx sigs t fuel act code regs (pc + 1) steps
        | VBool false -> block t act site steps
        | VInt _ -> raise (Interp.Run_error msg)
        end
      | Iwait_sig (id, site, msg) ->
        begin match Sigtable.read_id sigs id with
        | VBool true -> charge cx sigs t fuel act code regs (pc + 1) steps
        | VBool false -> block t act site steps
        | VInt _ -> raise (Interp.Run_error msg)
        end
      | Iwait_sig_eq (id, v, site) ->
        (* Pointer test first: compiled constants are interned into the
           {!Spec.Expr} caches, so the committed box and the compiled box
           coincide for bools and small ints. *)
        let v' = Sigtable.read_id sigs id in
        if v' == v || equal_value v' v then
          charge cx sigs t fuel act code regs (pc + 1) steps
        else block t act site steps
      | Iwait_never site -> block t act site steps
      | Icall site ->
        act.act_pc <- pc + 1;
        let callee = enter_call cx t site regs in
        t.th_callers <- act :: t.th_callers;
        t.th_cur <- Some callee;
        charge cx sigs t fuel callee callee.act_prog.pr_code callee.act_regs 0 steps
      | Iret ->
        begin match act.act_pool with
        | Some p -> p.vp_busy <- false
        | None -> ()
        end;
        begin match t.th_callers with
        | caller :: rest ->
          t.th_callers <- rest;
          t.th_cur <- Some caller;
          charge cx sigs t fuel caller caller.act_prog.pr_code
            caller.act_regs caller.act_pc steps
        | [] -> run_error "%s: frame underflow" t.th_owner
        end
      | Ihalt ->
        t.th_halted <- true;
        t.th_steps <- steps;
        Finished

and charge cx sigs t fuel act code regs pc steps =
      let steps = steps + 1 in
      if steps >= fuel then begin
        act.act_pc <- pc;
        (* The tree-walker's finished state (empty task stack) becomes
           true the moment the last step completes, even when the fuel
           boundary makes [run] report [Progress] — and the structural
           advance observes it.  The VM equivalent: the body is complete
           exactly when the resume point is [Ihalt]. *)
        begin match Array.unsafe_get code pc with
        | Ihalt -> t.th_halted <- true
        | _ -> ()
        end;
        t.th_steps <- steps;
        Progress
      end
      else exec cx sigs t fuel act code regs pc steps

and block t act site steps =
  act.act_pc <- site.ws_resume;
  t.th_blocked <- Some site;
  t.th_steps <- steps;
  Blocked

(** Run until the thread blocks, finishes, or exhausts [fuel] steps.
    Returns the status; the step count lands in {!th_steps} so the
    scheduler's inner loop stays allocation-free (the [Blocked] box is
    the one exception, and it doubles as the park request).  The
    (status, th_steps) pair is bit-identical to {!Interp.run} on the
    same body. *)
let run cx t ~fuel =
  if fuel <= 0 then begin
    t.th_steps <- 0;
    Progress
  end
  else if t.th_halted then begin
    t.th_steps <- 0;
    Finished
  end
  else begin
    let act0 = ensure_cur cx t in
    t.th_blocked <- None;
    let sigs = cx.Interp.cx_signals in
    exec cx sigs t fuel act0 act0.act_prog.pr_code act0.act_regs act0.act_pc 0
  end

(* ------------------------------------------------------------------ *)
(* Compiled TOC / transition conditions.                               *)
(* ------------------------------------------------------------------ *)

(** A compiled condition with its (reused) register file.  Sessions are
    domain-local and single-threaded, so reusing the registers across
    evaluations is safe and keeps re-evaluation allocation-free. *)
type cond_prog = { cp_prog : prog; cp_regs : value array }

let compile_cond ~frame ~signals e =
  let p = Compile.cond ~frame ~signals e in
  { cp_prog = p; cp_regs = fresh_regs p }

let eval_cond cx cp =
  let sigs = cx.Interp.cx_signals in
  let code = cp.cp_prog.pr_code in
  let regs = cp.cp_regs in
  let rec go pc =
    match Array.unsafe_get code pc with
    | Iconst (d, v) ->
      regs.(d) <- v;
      go (pc + 1)
    | Iload_cell (d, cell, _) ->
      regs.(d) <- !cell;
      go (pc + 1)
    | Iload_sig (d, id, _) ->
      regs.(d) <- Sigtable.read_id sigs id;
      go (pc + 1)
    | Iload_arr_cond (d, arr, ri, name) ->
      let i = Expr.as_int regs.(ri) in
      if i < 0 || i >= Array.length arr then
        raise
          (Expr.Eval_error (Printf.sprintf "array access %s failed" name))
      else begin
        regs.(d) <- arr.(i);
        go (pc + 1)
      end
    | Ibinop (op, d, a, b) ->
      regs.(d) <- apply_fast op regs.(a) regs.(b);
      go (pc + 1)
    | Ibinop_rc (op, d, a, v) ->
      regs.(d) <- apply_fast op regs.(a) v;
      go (pc + 1)
    | Ibinop_cr (op, d, v, a) ->
      regs.(d) <- apply_fast op v regs.(a);
      go (pc + 1)
    | Ibinop_cell (op, d, cell, v, _) ->
      regs.(d) <- apply_fast op !cell v;
      go (pc + 1)
    | Ibinop_sig (op, d, id, v, _) ->
      regs.(d) <- apply_fast op (Sigtable.read_id sigs id) v;
      go (pc + 1)
    | Iunop (op, d, a) ->
      regs.(d) <- Expr.apply_unop op regs.(a);
      go (pc + 1)
    | Iand_jmp (r, target) ->
      begin match regs.(r) with
      | VBool false -> go target
      | VBool true -> go (pc + 1)
      | VInt _ -> raise (Expr.Eval_error "expected a boolean value")
      end
    | Ior_jmp (r, target) ->
      begin match regs.(r) with
      | VBool true -> go target
      | VBool false -> go (pc + 1)
      | VInt _ -> raise (Expr.Eval_error "expected a boolean value")
      end
    | Ijmp target -> go target
    | Icheck_int_eval r ->
      begin match regs.(r) with
      | VInt _ -> go (pc + 1)
      | VBool _ -> raise (Expr.Eval_error "expected an integer value")
      end
    | Ifail_eval msg -> raise (Expr.Eval_error msg)
    | Iyield r -> regs.(r)
    | _ -> assert false (* leaf-only instructions never appear *)
  in
  go 0
