(** The leaf-statement interpreter: an explicit task-stack machine so a
    process can suspend at any [wait until] and resume later.  Variable
    assignments take effect immediately; signal assignments are scheduled
    on the {!Sigtable} and commit at the next delta cycle.

    Process bodies are compiled once into a [cstmt] tree whose sites
    carry their own staging caches (resolved cells, staged expression
    closures, interned signal ids).  The caches are keyed by the physical
    frame they were filled in, so they are observably transparent —
    including error messages and the point at which a dynamic error
    fires. *)

open Spec

(** Dynamic error: unbound name, non-boolean condition, bad call. *)
exception Run_error of string

(** How a name read by a process resolves: a frame cell, an interned
    signal id, or nothing. *)
type resolution = Rcell of Ast.value ref | Rsig of int | Rnone

(** Staging state of an expression site — internal. *)
type staging = CSnone | CSframe of Env.frame | CSdynamic

type cexpr = {
  ce_expr : Ast.expr;  (** the source expression *)
  mutable ce_state : staging;
  mutable ce_fn : unit -> Ast.value;
}
(** An expression site with its staged closure — internal, managed by
    {!run}; [ce_expr] is stable and physical, so schedulers can key on
    it. *)

type cell_cache = (Env.frame * Ast.value ref) option ref
type arr_cache = (Env.frame * Ast.value array) option ref

type cstmt =
  | Cskip
  | Cassign of string * cexpr * cell_cache
  | Cassign_idx of string * cexpr * cexpr * arr_cache
  | Csignal_assign of string * cexpr * int ref
  | Cif of (cexpr * cstmt list) list * cstmt list
  | Cwhile of cexpr * cstmt list
  | Cfor of string * cell_cache * cexpr * cexpr * cstmt list
  | Cwait of cexpr
  | Ccall of call_site
  | Cemit of string * cexpr

and call_site = {
  cs_name : string;
  cs_args : carg list;
  mutable cs_proc : Ast.proc_decl option;
  mutable cs_body : cstmt list;
  mutable cs_pool : pool_state;
      (** the frame of the site's first completed call, kept for reuse *)
}

and pool_state = PSnone | PSineligible | PSpool of pool

and pool = {
  p_frame : Env.frame;
  p_parent : Env.frame;  (** caller frame the pooled frame hangs under *)
  p_cells : Ast.value ref array;  (** parameter cells, declaration order *)
  mutable p_busy : bool;  (** a call is live in the frame (recursion) *)
}

and carg = Carg_expr of cexpr | Carg_var of string

type task =
  | Tstmts of cstmt list
  | Twhile of cexpr * cstmt list
  | Tfor of string * cell_cache * int * int * cstmt list
      (** index, its resolved cell, next value, upper bound *)
  | Twait of cexpr
  | Tpop_frame
  | Tpop_pool of pool  (** pop and release the pooled frame *)

type exec = {
  mutable stack : task list;  (** empty = finished *)
  mutable frame : Env.frame;
  ex_owner : string;  (** behavior name, for diagnostics *)
  ex_body : cstmt list;  (** the compiled body, for {!reset_exec} *)
  ex_base : Env.frame;  (** the instantiation frame *)
  mutable ex_gen : int;  (** bumped by {!reset_exec} *)
  ex_res : (string, Env.frame * resolution) Hashtbl.t;
      (** per-frame name resolutions — internal, managed by {!run} *)
  mutable ex_eval : (context * (Ast.expr -> Ast.value)) option;
      (** cached dynamic evaluator — internal, managed by {!run} *)
}

and context = {
  cx_signals : Sigtable.t;
  cx_trace : Trace.t;
  cx_procs : Ast.proc_decl list;
  mutable cx_delta : int;  (** current delta cycle, stamped onto events *)
}

val resolve : context -> exec -> string -> resolution
(** Resolve a name in the exec's current frame, through the per-exec
    resolution cache — the same resolution {!run} uses to evaluate. *)

val make_exec : owner:string -> frame:Env.frame -> Ast.stmt list -> exec

val reset_exec : exec -> unit
(** Rewind the machine to the top of its compiled body in its
    instantiation frame, bumping [ex_gen].  With the frame's variables
    reinitialized (see {!Env.reinitialize}), the machine is observably a
    fresh {!make_exec} — but keeps its staged sites. *)

type status =
  | Progress  (** executed at least one step and can continue *)
  | Blocked of Ast.expr  (** stopped at an unsatisfied wait *)
  | Finished

val step : context -> exec -> status
(** One machine step. *)

val run : context -> exec -> fuel:int -> status * int
(** Run until the machine blocks, finishes, or exhausts [fuel] steps;
    returns the final status and the steps consumed. *)
