(** The leaf-statement interpreter: an explicit task-stack machine so a
    process can suspend at any [wait until] and resume later.  Variable
    assignments take effect immediately; signal assignments are scheduled
    on the {!Sigtable} and take effect at the next delta cycle.

    The machine runs {e compiled} statements: each process body is copied
    once into a [cstmt] tree whose expression and assignment sites carry
    their own staging caches.  The first visit to a site resolves its
    names against the current frame (through {!Expr.compile}) and stores
    the staged closure in the site; every later visit under the same
    physical frame is a bare closure call — no name hashing, no
    environment walks.  A site revisited under a different frame (a
    procedure called again, a recursive call) restages itself, so the
    caches are transparent: observable behavior is exactly that of a
    direct tree-walking evaluator, error messages and failure points
    included. *)

open Spec
open Spec.Ast

exception Run_error of string

let run_error fmt = Printf.ksprintf (fun s -> raise (Run_error s)) fmt

(** How a name read by this process resolves: a frame cell, an interned
    signal id, or nothing.  Cached per process and per frame — behavior
    and procedure frames never change their bindings once their body
    runs, so the resolution is a loop invariant of the process. *)
type resolution = Rcell of value ref | Rsig of int | Rnone

let uninit : unit -> value = fun () -> assert false

(** Staging state of an expression site. *)
type staging =
  | CSnone  (** not yet visited *)
  | CSframe of Env.frame  (** staged closure, valid in this frame *)
  | CSdynamic
      (** the site runs under transient frames (procedure bodies) where
          staging would not amortize; [ce_fn] is a dynamic evaluator *)

type cexpr = {
  ce_expr : expr;  (** the source expression, for diagnostics and refs *)
  mutable ce_state : staging;
  mutable ce_fn : unit -> value;
}

type cell_cache = (Env.frame * value ref) option ref
(** A resolved assignment target, with the frame it was resolved in. *)

type arr_cache = (Env.frame * value array) option ref

type cstmt =
  | Cskip
  | Cassign of string * cexpr * cell_cache
  | Cassign_idx of string * cexpr * cexpr * arr_cache
  | Csignal_assign of string * cexpr * int ref
      (** the ref holds the interned signal id, [-1] until resolved *)
  | Cif of (cexpr * cstmt list) list * cstmt list
  | Cwhile of cexpr * cstmt list
  | Cfor of string * cell_cache * cexpr * cexpr * cstmt list
  | Cwait of cexpr
  | Ccall of call_site
  | Cemit of string * cexpr

and call_site = {
  cs_name : string;
  cs_args : carg list;
  mutable cs_proc : proc_decl option;  (** resolved at first call *)
  mutable cs_body : cstmt list;  (** compiled body, filled with cs_proc *)
  mutable cs_pool : pool_state;
      (** the frame of the site's first completed call, kept for reuse *)
}

and pool_state =
  | PSnone  (** no call has completed yet *)
  | PSineligible
      (** the callee's parameter names shadow each other or a local, so
          in-place rebinding could clobber an aliased cell — never pool *)
  | PSpool of pool

and pool = {
  p_frame : Env.frame;
  p_parent : Env.frame;  (** caller frame the pooled frame hangs under *)
  p_cells : value ref array;  (** parameter cells, in declaration order *)
  mutable p_busy : bool;  (** a call is live in the frame (recursion) *)
}

and carg = Carg_expr of cexpr | Carg_var of string

let cex e = { ce_expr = e; ce_state = CSnone; ce_fn = uninit }

(* Compilation is purely structural — no name is resolved, so a program
   that would only fail on a path it never takes keeps not failing. *)
let rec cstmts_of stmts = List.map cstmt_of stmts

and cstmt_of = function
  | Skip -> Cskip
  | Assign (x, e) -> Cassign (x, cex e, ref None)
  | Assign_idx (x, i, e) -> Cassign_idx (x, cex i, cex e, ref None)
  | Signal_assign (sg, e) -> Csignal_assign (sg, cex e, ref (-1))
  | If (branches, els) ->
    Cif
      ( List.map (fun (c, body) -> (cex c, cstmts_of body)) branches,
        cstmts_of els )
  | While (c, body) -> Cwhile (cex c, cstmts_of body)
  | For (i, lo, hi, body) -> Cfor (i, ref None, cex lo, cex hi, cstmts_of body)
  | Wait_until c -> Cwait (cex c)
  | Call (name, args) ->
    Ccall
      {
        cs_name = name;
        cs_args = List.map carg_of args;
        cs_proc = None;
        cs_body = [];
        cs_pool = PSnone;
      }
  | Emit (tag, e) -> Cemit (tag, cex e)

and carg_of = function
  | Arg_expr e -> Carg_expr (cex e)
  | Arg_var x -> Carg_var x

type task =
  | Tstmts of cstmt list
  | Twhile of cexpr * cstmt list
  | Tfor of string * cell_cache * int * int * cstmt list
      (** index, its resolved cell, next value, upper bound *)
  | Twait of cexpr
  | Tpop_frame
  | Tpop_pool of pool  (** pop and release the pooled frame *)

type exec = {
  mutable stack : task list;
  mutable frame : Env.frame;
  ex_owner : string;  (** behavior name, for diagnostics *)
  ex_body : cstmt list;  (** the compiled body, for {!reset_exec} *)
  ex_base : Env.frame;  (** the instantiation frame *)
  mutable ex_gen : int;
      (** bumped by {!reset_exec}; schedulers use it to tell a recycled
          machine from the run it replaced *)
  ex_res : (string, Env.frame * resolution) Hashtbl.t;
      (** name resolutions, valid while the frame is physically the one
          they were computed in *)
  mutable ex_eval : (context * (expr -> value)) option;
      (** cached dynamic evaluator; its lookups read [frame] at call
          time, so it survives frame pushes and pops *)
}

and context = {
  cx_signals : Sigtable.t;
  cx_trace : Trace.t;
  cx_procs : proc_decl list;
  mutable cx_delta : int;  (** current delta cycle, stamped onto events *)
}

let make_exec ~owner ~frame stmts =
  let body = cstmts_of stmts in
  {
    stack = [ Tstmts body ];
    frame;
    ex_owner = owner;
    ex_body = body;
    ex_base = frame;
    ex_gen = 0;
    ex_res = Hashtbl.create 16;
    ex_eval = None;
  }

(** Rewind the machine to the top of its compiled body, in its
    instantiation frame.  The staging caches survive — they are keyed by
    physical frames, and the frames are being reused. *)
let reset_exec exec =
  exec.stack <- [ Tstmts exec.ex_body ];
  exec.frame <- exec.ex_base;
  exec.ex_gen <- exec.ex_gen + 1

let resolve cx exec name =
  let fr = exec.frame in
  match Hashtbl.find exec.ex_res name with
  | fr', r when fr' == fr -> r
  | _ | (exception Not_found) ->
    let r =
      match Env.find_cell fr name with
      | Some cell -> Rcell cell
      | None ->
        begin match Sigtable.id_of cx.cx_signals name with
        | Some id -> Rsig id
        | None -> Rnone
        end
    in
    Hashtbl.replace exec.ex_res name (fr, r);
    r

let lookup cx exec name =
  match resolve cx exec name with
  | Rcell cell -> Some !cell
  | Rsig id -> Some (Sigtable.read_id cx.cx_signals id)
  | Rnone -> None

let lookup_idx exec name i =
  match Env.find_array exec.frame name with
  | Some arr ->
    if i < 0 || i >= Array.length arr then
      run_error "%s: index %d out of bounds for %s (size %d)" exec.ex_owner i
        name (Array.length arr)
    else Some arr.(i)
  | None -> run_error "%s: %s is not an array" exec.ex_owner name

let eval_plain cx exec e =
  match exec.ex_eval with
  | Some (cx', f) when cx' == cx -> f e
  | Some _ | None ->
    let f = Expr.eval ~lookup_idx:(lookup_idx exec) ~lookup:(lookup cx exec) in
    exec.ex_eval <- Some (cx, f);
    f e

(* Stage an expression: resolutions are computed once, error thunks keep
   {!Expr.eval}'s lazy failure behavior for short-circuited operands. *)
let compile cx exec e =
  let resolve_ref x =
    match resolve cx exec x with
    | Rcell cell -> fun () -> !cell
    | Rsig id ->
      let sigs = cx.cx_signals in
      fun () -> Sigtable.read_id sigs id
    | Rnone -> fun () -> Expr.eval ~lookup:(fun _ -> None) (Ref x)
  in
  let resolve_idx x =
    match Env.find_array exec.frame x with
    | Some arr ->
      let owner = exec.ex_owner in
      fun i ->
        if i < 0 || i >= Array.length arr then
          run_error "%s: index %d out of bounds for %s (size %d)" owner i x
            (Array.length arr)
        else arr.(i)
    | None -> fun _ -> run_error "%s: %s is not an array" exec.ex_owner x
  in
  Expr.compile ~resolve_idx ~resolve_ref e

let ce_eval cx exec ce =
  match ce.ce_state with
  | CSframe fr when fr == exec.frame -> ce.ce_fn ()
  | CSdynamic -> ce.ce_fn ()
  | CSnone ->
    let f = compile cx exec ce.ce_expr in
    ce.ce_state <- CSframe exec.frame;
    ce.ce_fn <- f;
    f ()
  | CSframe _ ->
    (* Second distinct frame at this site: it runs under per-call
       procedure frames, where a staged closure dies with the call.
       Switch to the dynamic evaluator for good. *)
    let e = ce.ce_expr in
    let f () = eval_plain cx exec e in
    ce.ce_state <- CSdynamic;
    ce.ce_fn <- f;
    f ()

let ce_bool cx exec ce =
  match ce_eval cx exec ce with
  | VBool b -> b
  | VInt _ ->
    run_error "%s: condition %s is not boolean" exec.ex_owner
      (Expr.to_string ce.ce_expr)

let ce_int cx exec ce =
  match ce_eval cx exec ce with
  | VInt n -> n
  | VBool _ ->
    run_error "%s: expression %s is not an integer" exec.ex_owner
      (Expr.to_string ce.ce_expr)

(* The target cell of an assignment site, resolved once per frame. *)
let assign_cell cx exec x cache =
  match !cache with
  | Some (fr, cell) when fr == exec.frame -> cell
  | _ ->
    begin match resolve cx exec x with
    | Rcell cell ->
      cache := Some (exec.frame, cell);
      cell
    | Rsig _ | Rnone ->
      run_error "%s: assignment to unbound variable %s" exec.ex_owner x
    end

let for_cell cx exec x cache =
  match !cache with
  | Some (fr, cell) when fr == exec.frame -> cell
  | _ ->
    begin match resolve cx exec x with
    | Rcell cell ->
      cache := Some (exec.frame, cell);
      cell
    | Rsig _ | Rnone ->
      run_error "%s: for index %s is not a variable" exec.ex_owner x
    end

let target_array exec x cache =
  match !cache with
  | Some (fr, arr) when fr == exec.frame -> arr
  | _ ->
    begin match Env.find_array exec.frame x with
    | Some arr ->
      cache := Some (exec.frame, arr);
      arr
    | None -> run_error "%s: %s is not an array" exec.ex_owner x
    end

let find_proc cx name =
  match List.find_opt (fun pr -> String.equal pr.prc_name name) cx.cx_procs with
  | Some pr -> pr
  | None -> run_error "call to unknown procedure %s" name

(* A pooled frame is rebound purely by mutating cell contents, never by
   [Env.bind], so chain resolutions memoized in descendants stay valid.
   That only holds when no parameter name collides with another parameter
   or with a local the reinitializer touches. *)
let pool_eligible pr =
  let locals = List.map (fun (d : var_decl) -> d.v_name) pr.prc_vars in
  let rec distinct seen = function
    | [] -> true
    | prm :: rest ->
      (not (List.mem prm.prm_name seen))
      && (not (List.mem prm.prm_name locals))
      && distinct (prm.prm_name :: seen) rest
  in
  distinct [] pr.prc_params

(* First call through a site (or pooling declined): build a fresh frame.
   In-parameters get fresh cells with the evaluated arguments,
   out-parameters alias the caller's cell, locals get fresh cells.  The
   procedure frame's parent is the caller frame, so globals and signals
   stay reachable.  When [pool] is set, the frame is recorded in the call
   site for reuse by later calls from the same caller frame. *)
let fresh_call cx exec site pr ~pool stack =
  let caller = exec.frame in
  let frame = Env.make ~parent:caller ~owner:site.cs_name pr.prc_vars in
  let cells =
    List.map2
      (fun prm arg ->
        match (prm.prm_mode, arg) with
        | Mode_in, Carg_expr ce ->
          let cell = ref (ce_eval cx exec ce) in
          Env.bind frame prm.prm_name cell;
          cell
        | Mode_in, Carg_var x ->
          begin match lookup cx exec x with
          | Some v ->
            let cell = ref v in
            Env.bind frame prm.prm_name cell;
            cell
          | None -> run_error "%s: unbound argument %s" exec.ex_owner x
          end
        | Mode_out, Carg_var x ->
          begin match Env.find_cell caller x with
          | Some cell ->
            Env.bind frame prm.prm_name cell;
            cell
          | None ->
            run_error "%s: out argument %s is not a variable" exec.ex_owner x
          end
        | Mode_out, Carg_expr _ ->
          run_error "%s: expression passed to out parameter %s of %s"
            exec.ex_owner prm.prm_name site.cs_name)
      pr.prc_params site.cs_args
  in
  exec.frame <- frame;
  if pool then begin
    let p =
      {
        p_frame = frame;
        p_parent = caller;
        p_cells = Array.of_list cells;
        p_busy = true;
      }
    in
    site.cs_pool <- PSpool p;
    Tstmts site.cs_body :: Tpop_pool p :: stack
  end
  else Tstmts site.cs_body :: Tpop_frame :: stack

(* Re-enter the pooled frame: same physical frame, same parameter cells,
   so every staged closure and memoized resolution keyed on it stays hot.
   Argument processing mirrors [fresh_call]'s order exactly, so a dynamic
   error fires at the same point with the same message.  Returns [None]
   (pool untouched, in-parameter cells may hold the new arguments but the
   frame is not live) when an out-argument no longer resolves to the cell
   the pool aliases — the caller falls back to a fresh frame. *)
let reuse_pool cx exec site pr pool stack =
  let ok = ref true in
  let idx = ref 0 in
  List.iter2
    (fun prm arg ->
      let i = !idx in
      incr idx;
      match (prm.prm_mode, arg) with
      | Mode_in, Carg_expr ce -> pool.p_cells.(i) := ce_eval cx exec ce
      | Mode_in, Carg_var x ->
        begin match lookup cx exec x with
        | Some v -> pool.p_cells.(i) := v
        | None -> run_error "%s: unbound argument %s" exec.ex_owner x
        end
      | Mode_out, Carg_var x ->
        begin match Env.find_cell exec.frame x with
        | Some cell -> if cell != pool.p_cells.(i) then ok := false
        | None ->
          run_error "%s: out argument %s is not a variable" exec.ex_owner x
        end
      | Mode_out, Carg_expr _ ->
        run_error "%s: expression passed to out parameter %s of %s"
          exec.ex_owner prm.prm_name site.cs_name)
    pr.prc_params site.cs_args;
  if not !ok then None
  else begin
    Env.reinitialize pool.p_frame pr.prc_vars;
    pool.p_busy <- true;
    exec.frame <- pool.p_frame;
    Some (Tstmts site.cs_body :: Tpop_pool pool :: stack)
  end

(* Enter a procedure, reusing the site's pooled frame when the call comes
   from the same caller frame and the previous activation has returned.
   The callee's declaration and compiled body are cached in the call
   site. *)
let enter_proc cx exec site stack =
  let pr =
    match site.cs_proc with
    | Some pr -> pr
    | None ->
      let pr = find_proc cx site.cs_name in
      site.cs_proc <- Some pr;
      site.cs_body <- cstmts_of pr.prc_body;
      pr
  in
  if List.length pr.prc_params <> List.length site.cs_args then
    run_error "%s: call to %s with wrong arity" exec.ex_owner site.cs_name;
  match site.cs_pool with
  | PSpool pool when (not pool.p_busy) && pool.p_parent == exec.frame ->
    begin match reuse_pool cx exec site pr pool stack with
    | Some stack -> stack
    | None -> fresh_call cx exec site pr ~pool:false stack
    end
  | PSpool _ | PSineligible -> fresh_call cx exec site pr ~pool:false stack
  | PSnone -> fresh_call cx exec site pr ~pool:(pool_eligible pr) stack

type status =
  | Progress  (** executed at least one step and can continue *)
  | Blocked of expr  (** stopped at an unsatisfied wait *)
  | Finished

(* Execute one statement (already popped off the stack); returns the new
   stack.  The stack is threaded as a value so the step loop can keep it
   in a register instead of paying a mutable-field write per step. *)
let exec_cstmt cx exec s stack =
  match s with
  | Cskip -> stack
  | Cassign (x, ce, cache) ->
    let v = ce_eval cx exec ce in
    assign_cell cx exec x cache := v;
    stack
  | Cassign_idx (x, ci, ce, cache) ->
    let i = ce_int cx exec ci in
    let v = ce_eval cx exec ce in
    let arr = target_array exec x cache in
    if i < 0 || i >= Array.length arr then
      run_error "%s: index %d out of bounds for %s (size %d)" exec.ex_owner i
        x (Array.length arr)
    else arr.(i) <- v;
    stack
  | Csignal_assign (sg, ce, idr) ->
    let v = ce_eval cx exec ce in
    let id = !idr in
    if id >= 0 then Sigtable.schedule_id cx.cx_signals id v
    else begin
      match Sigtable.id_of cx.cx_signals sg with
      | Some id ->
        idr := id;
        Sigtable.schedule_id cx.cx_signals id v
      | None ->
        run_error "%s: signal assignment to non-signal %s" exec.ex_owner sg
    end;
    stack
  | Cif (branches, els) ->
    let rec choose = function
      | [] -> Tstmts els :: stack
      | (c, body) :: rest ->
        if ce_bool cx exec c then Tstmts body :: stack else choose rest
    in
    choose branches
  | Cwhile (c, body) -> Twhile (c, body) :: stack
  | Cfor (i, cache, lo, hi, body) ->
    let lo = ce_int cx exec lo and hi = ce_int cx exec hi in
    Tfor (i, cache, lo, hi, body) :: stack
  | Cwait c -> Twait c :: stack
  | Ccall site -> enter_proc cx exec site stack
  | Cemit (tag, ce) ->
    Trace.record cx.cx_trace ~delta:cx.cx_delta ~tag
      ~value:(ce_eval cx exec ce);
    stack

(* Terminal states surface as an exception so the step loop's common case
   returns the new stack unboxed — a per-step [Ok] wrapper was the loop's
   only allocation besides the stack cells themselves.  Terminals are rare
   (once per activation, against several steps), so the raise is off the
   hot path. *)
exception Terminal of status

(* One machine step over a threaded stack: returns the new stack, or
   raises {!Terminal} with the machine's final status. *)
let step_stack cx exec stack =
  match stack with
  | [] -> raise_notrace (Terminal Finished)
  | task :: rest ->
    begin match task with
    | Tstmts [] -> rest
    | Tstmts (s :: more) -> exec_cstmt cx exec s (Tstmts more :: rest)
    | Twhile (c, body) ->
      if ce_bool cx exec c then Tstmts body :: stack
      else rest
    | Tfor (i, cache, cur, hi, body) ->
      if cur > hi then rest
      else begin
        for_cell cx exec i cache := Expr.vint cur;
        Tstmts body :: Tfor (i, cache, cur + 1, hi, body) :: rest
      end
    | Twait c ->
      if ce_bool cx exec c then rest
      else raise_notrace (Terminal (Blocked c.ce_expr))
    | Tpop_frame ->
      begin match exec.frame.Env.f_parent with
      | Some parent ->
        exec.frame <- parent;
        rest
      | None -> run_error "%s: frame underflow" exec.ex_owner
      end
    | Tpop_pool pool ->
      begin match exec.frame.Env.f_parent with
      | Some parent ->
        pool.p_busy <- false;
        exec.frame <- parent;
        rest
      | None -> run_error "%s: frame underflow" exec.ex_owner
      end
    end

(* One machine step.  Returns [Progress] unless the machine is blocked or
   finished. *)
let step cx exec =
  match step_stack cx exec exec.stack with
  | stack ->
    exec.stack <- stack;
    Progress
  | exception Terminal status -> status

(** Run the machine until it blocks, finishes, or exhausts [fuel] steps.
    Returns the final status and the number of steps consumed.  The stack
    lives in the loop, not in [exec], between steps — one field write per
    suspension instead of one per step. *)
let run cx exec ~fuel =
  let rec go stack steps =
    if steps >= fuel then begin
      exec.stack <- stack;
      (Progress, steps)
    end
    else
      match step_stack cx exec stack with
      | stack -> go stack (steps + 1)
      | exception Terminal status ->
        exec.stack <- stack;
        (status, steps)
  in
  go exec.stack 0
