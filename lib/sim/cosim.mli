(** Co-simulation: run an original specification and its refinement and
    decide functional equivalence — the correctness requirement of the
    refinement task (paper, Section 4). *)

type verdict = {
  v_equivalent : bool;
  v_original : Engine.result;
  v_refined : Engine.result;
  v_problems : string list;  (** human-readable divergences, if any *)
}

type trace_mode =
  | Total  (** traces must match event for event *)
  | Per_tag
      (** each tag's value sequence must match; use for specifications
          with parallel branches, whose cross-branch interleaving is
          scheduling-dependent and not preserved by refinement *)

val check :
  ?config:Engine.config ->
  ?trace_mode:trace_mode ->
  ?ignore_prefixes:string list ->
  original:Spec.Ast.program ->
  refined:Spec.Ast.program ->
  unit ->
  verdict
(** Run both programs and compare: both must complete, the observable
    traces must agree (under [trace_mode], default [Total]), and the final
    value of every original program variable must survive in the refined
    design (booleans are decoded from their int<1> bus encoding).
    [ignore_prefixes] drops emit tags with the given prefixes from both
    traces before comparing — hardened refinements emit reserved
    watchdog/recovery markers ([WDG_*], [FLT_*]) with no counterpart in
    the original. *)

val pp_verdict : Format.formatter -> verdict -> unit
