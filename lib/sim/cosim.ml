(** Co-simulation: run an original specification and its refinement and
    decide functional equivalence — the correctness requirement of the
    refinement task ("the refined implementation model is functionally
    equivalent to the original one", paper Section 4).

    Equivalence is judged on (1) the observable [emit] trace and (2) the
    final values of the original program variables, read out of the
    refined design's memory behaviors. *)

open Spec

type verdict = {
  v_equivalent : bool;
  v_original : Engine.result;
  v_refined : Engine.result;
  v_problems : string list;
}

let value_to_string v = Format.asprintf "%a" Expr.pp_value v

(* Refined designs store booleans bus-encoded as int<1> (1/0); decode
   before comparing. *)
let values_match ov rv =
  ov = rv
  ||
  match (ov, rv) with
  | Ast.VBool b, Ast.VInt n -> b = (n <> 0)
  | _ -> false

(* The final-value names to compare: scalars by name, arrays
   element-wise. *)
let final_names (p : Ast.program) =
  List.concat_map
    (fun (v : Ast.var_decl) ->
      match v.Ast.v_ty with
      | Ast.TArray (_, size) ->
        List.init size (fun i -> Printf.sprintf "%s[%d]" v.Ast.v_name i)
      | Ast.TBool | Ast.TInt _ -> [ v.Ast.v_name ])
    p.Ast.p_vars

let compare_finals ~vars ~original ~refined =
  List.filter_map
    (fun name ->
      let o = List.assoc_opt name original.Engine.r_final in
      let r = List.assoc_opt name refined.Engine.r_final in
      match (o, r) with
      | Some ov, Some rv when values_match ov rv -> None
      | Some ov, Some rv ->
        Some
          (Printf.sprintf "variable %s: original %s, refined %s" name
             (value_to_string ov) (value_to_string rv))
      | Some _, None ->
        Some (Printf.sprintf "variable %s missing from refined design" name)
      | None, _ -> None)
    vars

type trace_mode =
  | Total  (** traces must match event for event *)
  | Per_tag
      (** each tag's value sequence must match; use for specifications
          with parallel branches, whose cross-branch interleaving is
          scheduling-dependent *)

let has_prefix prefixes tag =
  List.exists
    (fun p ->
      String.length tag >= String.length p
      && String.equal (String.sub tag 0 (String.length p)) p)
    prefixes

let check ?config ?(trace_mode = Total) ?(ignore_prefixes = []) ~original
    ~refined () =
  let ro = Engine.run ?config original in
  let rr = Engine.run ?config refined in
  (* Hardened refinements emit reserved watchdog/recovery markers
     (WDG_/FLT_ prefixed) that have no counterpart in the original;
     callers filter them out of the equivalence judgement by prefix. *)
  let filter_trace r =
    match ignore_prefixes with
    | [] -> r
    | _ ->
      {
        r with
        Engine.r_trace =
          List.filter
            (fun e -> not (has_prefix ignore_prefixes e.Trace.ev_tag))
            r.Engine.r_trace;
      }
  in
  let ro = filter_trace ro and rr = filter_trace rr in
  let problems = ref [] in
  let note fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  begin match ro.Engine.r_outcome with
  | Engine.Completed -> ()
  | o -> note "original did not complete: %s" (Engine.outcome_to_string o)
  end;
  begin match rr.Engine.r_outcome with
  | Engine.Completed -> ()
  | o -> note "refined did not complete: %s" (Engine.outcome_to_string o)
  end;
  begin match trace_mode with
  | Total ->
    let strip r =
      List.map (fun e -> (e.Trace.ev_tag, e.Trace.ev_value)) r.Engine.r_trace
    in
    if strip ro <> strip rr then begin
      match Trace.first_divergence ro.Engine.r_trace rr.Engine.r_trace with
      | Some i -> note "traces diverge at event %d" i
      | None -> note "traces diverge"
    end
  | Per_tag ->
    if not (Trace.projection_equivalent ro.Engine.r_trace rr.Engine.r_trace)
    then note "per-tag trace projections diverge"
  end;
  List.iter
    (fun msg -> note "%s" msg)
    (compare_finals ~vars:(final_names original) ~original:ro ~refined:rr);
  {
    v_equivalent = !problems = [];
    v_original = ro;
    v_refined = rr;
    v_problems = List.rev !problems;
  }

let pp_verdict ppf v =
  if v.v_equivalent then Format.fprintf ppf "equivalent"
  else
    Format.fprintf ppf "NOT equivalent:@,%a"
      (Format.pp_print_list Format.pp_print_string)
      v.v_problems
