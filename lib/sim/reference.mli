(** The retained round-robin polling scheduler, kept as the
    differential-testing baseline for the event-driven {!Engine}.  Same
    semantics, same hooks, same result type; every scheduling round polls
    every live leaf and re-walks the tree, so it is the slow path — use
    {!Engine.run} everywhere except in differential tests and kernel
    benchmarks. *)

open Spec

val run :
  ?config:Runtime.config ->
  ?hooks:Runtime.hooks ->
  ?ordering:Memord.t ->
  Ast.program ->
  Runtime.result
(** Simulate with the polling scheduler.  Observable behavior (outcome,
    trace, final values, delta and step counts, signal trace, deadlock
    reports, fault classifications) is identical to {!Engine.run},
    including under a weak [ordering] ({!Memord}) with the same policy
    and seed.
    @raise Interp.Run_error on dynamic errors. *)
