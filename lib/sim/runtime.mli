(** The process-tree runtime shared by the simulation kernels:
    instantiation, TOC-arc advancement, completion/deadlock analysis and
    final-value readout.  {!Engine} (event-driven) and {!Reference}
    (round-robin polling, kept as the differential baseline) both drive
    exactly this machinery, so all observable behavior is common code. *)

open Spec

type config = {
  max_steps : int;  (** total interpreter steps across all processes *)
  max_deltas : int;
  slice : int;  (** interpreter steps per process per scheduling round *)
  trace_signals : bool;
      (** record every committed signal change (for waveform dumps) *)
}

val default_config : config

type outcome =
  | Completed
  | Deadlock of string list  (** blocked process descriptions *)
  | Step_limit
  | Cancelled  (** the [h_poll] hook asked the kernel to stop *)

type result = {
  r_outcome : outcome;
  r_trace : Trace.event list;
  r_deltas : int;
  r_steps : int;
  r_final : (string * Ast.value) list;
  r_signal_trace : (int * (string * Ast.value) list) list;
}

type probe = {
  pr_delta : int;
  pr_signals : Sigtable.t;
  pr_read_var : string -> Ast.value option;
  pr_write_var : string -> Ast.value -> bool;
}

type hooks = {
  h_intercept : (delta:int -> string -> Ast.value -> Sigtable.action) option;
  h_on_commit : (probe -> unit) option;
  h_poll : (unit -> bool) option;
      (** cooperative cancellation: checked once per scheduling round;
          returning [true] stops the run with {!Cancelled}.  The {e exact}
          interruption point is kernel-dependent (rounds differ between
          the event-driven and polling schedulers), so only the outcome —
          never the partial trace — is comparable across kernels. *)
}

val no_hooks : hooks

val poll_cancelled : hooks -> bool
(** The round-boundary cancellation check both kernels share: [false]
    without an [h_poll] hook. *)

(** {1 The instantiated process tree} *)

(** Which leaf machine the kernels drive: the bytecode register VM
    ({!Vm}, the default) or the retained tree-walking interpreter
    ({!Interp}, the differential oracle).  Both produce bit-identical
    observables — the differential tests enforce it. *)
type backend = [ `Bytecode | `Treewalk ]

val default_backend : unit -> backend
(** The backend the kernels use when a caller does not pass [?backend]
    explicitly; [`Bytecode] unless {!set_default_backend} changed it. *)

val set_default_backend : backend -> unit
(** Set the process-wide default backend.  The CLI's [--backend] flag
    calls this once at startup; long-lived daemons should thread an
    explicit backend per job instead of mutating a process global. *)

val backend_of_string : string -> (backend, string) Stdlib.result
(** Accepts ["vm"]/["bytecode"] and ["tree"]/["treewalk"]. *)

val backend_to_string : backend -> string

(** One leaf process machine of either backend. *)
type machine = Mtree of Interp.exec | Mvm of Vm.thread

val machine_owner : machine -> string
val machine_gen : machine -> int

val machine_finished : machine -> bool
(** Finished as the structural advance observes it: the tree-walker's
    empty task stack, the VM's halt flag — both become true the moment
    the body's last step completes, even mid-slice. *)

type nstate =
  | Nleaf of machine
  | Nseq of seq_run
  | Npar of node list
  | Ndone

and seq_run = {
  mutable s_idx : int;
  mutable s_child : node;
  s_arms : Ast.seq_arm array;
  s_pool : node option array;
      (** per arm, the subtree built when the arm was last entered;
          re-entering an arm rewinds it in place instead of
          instantiating a fresh one *)
  mutable s_conds : (Ast.expr * Vm.cond_prog) list;
      (** TOC-arc conditions compiled for the bytecode backend, keyed by
          physical expression *)
}

and node = {
  nd_behavior : Ast.behavior;
  nd_frame : Env.frame;
  nd_backend : backend;
  mutable nd_state : nstate;
  nd_keep : keep;
      (** the structure behind [nd_state], retained past completion so a
          re-entered arm can be rewound instead of rebuilt *)
}

and keep =
  | Kleaf of machine
  | Kseq of seq_run
  | Kpar of node list
  | Knone  (** empty composition: born done *)

val instantiate : ?backend:backend -> Env.frame -> Ast.behavior -> node
(** Build the process tree with the given leaf backend (default
    [`Bytecode]). *)

val reset_node : node -> unit
(** Rewind a previously-built subtree to its freshly-instantiated state,
    in place: cells and arrays are overwritten (never replaced), leaf
    machines restart at the top of their compiled bodies, sequential
    compositions re-enter their first arm.  Observably identical to
    {!instantiate} without rebuilding any frame, table or compiled
    body. *)

val is_done : node -> bool

val leaves : node -> machine list
(** All live leaf machines, in preorder — the deterministic scheduling
    order of both kernels. *)

val eval_cond : Interp.context -> Env.frame -> Ast.expr -> bool
(** Evaluate a TOC-arc condition in a behavior's frame.
    @raise Interp.Run_error when the condition is not boolean. *)

val advance : Interp.context -> node -> bool
(** One structural step: finished leaves become done, completed [seq]
    children take their TOC arc, completed [par] compositions close.
    True when anything changed. *)

val advance_fixpoint : Interp.context -> node -> bool
(** Iterate {!advance} to quiescence; true when anything changed at all.
    After it returns, no further structural change is possible until
    another leaf finishes. *)

val effectively_done : string list -> node -> bool
(** Completion up to registered servers: done, a server, or a parallel
    composition of effectively done children. *)

val waited_signals : Interp.context -> Env.frame -> Ast.expr -> string list
(** ["name=value"] for every signal {e and frame variable} a blocked wait
    condition reads — deadlock reports are built from these. *)

val blocked_descriptions :
  Interp.context -> string list -> node -> string list

val final_values : Env.frame -> node -> (string * Ast.value) list

val find_cell : Env.frame -> node -> string -> Ast.value ref option
(** Probe access: the cell of a declared variable, root frame first, then
    preorder over the live tree (first occurrence wins, matching
    {!final_values}).  A full tree walk — the engine caches it per name
    and invalidates on structural change. *)

val outcome_to_string : outcome -> string
