(** Port-ordering semantics for multi-port memories.

    The delta-cycle kernels commit every scheduled signal update at the
    end of a delta, in sorted-name order — sequentially consistent by
    construction.  Real multi-port memories give a weaker guarantee:
    each port's traffic commits in order, but traffic through different
    ports may be observed in either order, and some fabrics reorder
    within a bounded window even on one port (as long as same-location
    order is kept).

    [Memord] interposes on the commit path: updates to signals owned by
    a memory port are diverted into that port's FIFO instead of
    committing, and are released at the kernels' release points — right
    after a committed delta, and at quiescent rounds where the kernel
    would otherwise conclude the network has settled.  Under
    [Per_port_fifo] a release applies one port's oldest delta-group
    atomically (same-port traffic keeps exactly its sequential
    semantics; only the inter-port interleaving is scheduler-chosen);
    under [Relaxed] a release applies a single update picked from a
    bounded window, so simultaneous same-port updates can be torn apart
    and observed out of order.  Which port (and which window slot) is
    released is chosen by a seeded deterministic scheduler, so a
    (policy, seed) pair replays bit-identically, across both kernels.

    Propagation delay is bounded: each release point serves the
    scheduler's chosen port {e and} every port whose oldest queued
    update has waited {!force_bound} release points — no port is
    starved indefinitely.  This is what keeps hardened (watchdog)
    protocols live under weak orderings: their own-line readback checks
    see the write commit within a few watchdog rounds, well inside the
    retry budget, while unhardened designs still observe the stale
    window.

    Same-signal order is always preserved, under every policy: a
    release never overtakes an earlier queued update to the same
    signal.  This is the per-location ("coherence") guarantee that even
    relaxed hardware provides, and it keeps the coherence litmus shape
    meaningful. *)

open Spec

type policy =
  | Sc  (** today's behavior: nothing is diverted, byte-identical *)
  | Per_port_fifo
      (** a port's delta-groups commit atomically, in issue order;
          inter-port interleavings are chosen by the seeded scheduler *)
  | Relaxed of int
      (** per-port reordering within a bounded window (>= 1), releasing
          one update at a time — simultaneous updates tear apart *)

let default_window = 2

let policy_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "sc" -> Ok Sc
  | "per-port-fifo" | "fifo" -> Ok Per_port_fifo
  | "relaxed" -> Ok (Relaxed default_window)
  | other -> (
    (* relaxed:N selects the window explicitly *)
    match String.index_opt other ':' with
    | Some i when String.equal (String.sub other 0 i) "relaxed" -> (
      let n = String.sub other (i + 1) (String.length other - i - 1) in
      match int_of_string_opt n with
      | Some w when w >= 1 -> Ok (Relaxed w)
      | _ -> Error (Printf.sprintf "bad relaxed window %S" n))
    | _ ->
      Error
        (Printf.sprintf
           "unknown ordering %S (use sc, per-port-fifo or relaxed[:N])" s))

let policy_to_string = function
  | Sc -> "sc"
  | Per_port_fifo -> "per-port-fifo"
  | Relaxed w when w = default_window -> "relaxed"
  | Relaxed w -> Printf.sprintf "relaxed:%d" w

(* --- seeded deterministic scheduler (splitmix64) --------------------- *)

let gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

(* A queued update: the delta cycle that issued it tags its group —
   updates captured out of the same commit form one atomic group under
   [Per_port_fifo] — and the release round it arrived in drives the
   bounded-staleness forcing. *)
type entry = {
  en_delta : int;
  en_round : int;
  en_name : string;
  en_value : Ast.value;
}

let force_bound = 3

type port = {
  pt_name : string;
  mutable pt_queue : entry list;  (* oldest first *)
}

type t = {
  mo_policy : policy;
  mo_port_of : string -> string option;
  mutable mo_state : int64;
  mutable mo_rounds : int;  (* release points seen so far *)
  mutable mo_ports : port list;  (* sorted by port name *)
  mutable mo_queued : int;
  mutable mo_diverted : int;  (* total updates ever diverted *)
  mutable mo_reordered : int;  (* releases that overtook an older entry *)
}

let make ~policy ~seed ~port_of =
  {
    mo_policy = policy;
    mo_port_of = port_of;
    mo_state = Int64.mul (Int64.of_int (seed + 1)) gamma;
    mo_rounds = 0;
    mo_ports = [];
    mo_queued = 0;
    mo_diverted = 0;
    mo_reordered = 0;
  }

let policy t = t.mo_policy
let pending t = t.mo_queued > 0
let diverted t = t.mo_diverted
let reordered t = t.mo_reordered

(* Next scheduler choice in [0, bound). *)
let next t bound =
  if bound <= 1 then 0
  else begin
    t.mo_state <- Int64.add t.mo_state gamma;
    let r = Int64.rem (mix64 t.mo_state) (Int64.of_int bound) in
    Int64.to_int (if Int64.compare r 0L < 0 then Int64.neg r else r)
  end

let find_port t name =
  match List.find_opt (fun p -> String.equal p.pt_name name) t.mo_ports with
  | Some p -> p
  | None ->
    let p = { pt_name = name; pt_queue = [] } in
    t.mo_ports <-
      List.sort
        (fun a b -> String.compare a.pt_name b.pt_name)
        (p :: t.mo_ports);
    p

(** Offer an update about to commit in delta [delta].  [true] means it
    was diverted into a port FIFO and the kernel must drop it; [false]
    passes it through untouched (non-port signals, and everything under
    [Sc]). *)
let capture t ~delta name v =
  match t.mo_policy with
  | Sc -> false
  | Per_port_fifo | Relaxed _ -> (
    match t.mo_port_of name with
    | None -> false
    | Some port_name ->
      let p = find_port t port_name in
      p.pt_queue <-
        p.pt_queue
        @ [
            {
              en_delta = delta;
              en_round = t.mo_rounds;
              en_name = name;
              en_value = v;
            };
          ];
      t.mo_queued <- t.mo_queued + 1;
      t.mo_diverted <- t.mo_diverted + 1;
      true)

(* Indices in the first [window] entries of [q] that are eligible for
   release: no earlier queued entry updates the same signal (preserves
   same-location order). *)
let eligible window q =
  let rec go i seen acc = function
    | [] -> List.rev acc
    | _ when i >= window -> List.rev acc
    | e :: rest ->
      let acc = if List.mem e.en_name seen then acc else i :: acc in
      go (i + 1) (e.en_name :: seen) acc rest
  in
  go 0 [] [] q

let remove_nth q n =
  let rec go i acc = function
    | [] -> invalid_arg "Memord.remove_nth"
    | x :: rest ->
      if i = n then (x, List.rev_append acc rest)
      else go (i + 1) (x :: acc) rest
  in
  go 0 [] q

(* One port's release.  Under [Per_port_fifo] the oldest delta-group
   comes out atomically; under [Relaxed] a single entry picked from the
   eligibility window — the scheduler chooses the slot for the chosen
   port, forced (aged) ports give up their oldest entry. *)
let release_from t ~forced p =
  match t.mo_policy with
  | Sc -> [] (* unreachable: Sc never captures *)
  | Per_port_fifo ->
    let tag =
      match p.pt_queue with e :: _ -> e.en_delta | [] -> assert false
    in
    let group, rest =
      let rec split acc = function
        | e :: rest when e.en_delta = tag -> split (e :: acc) rest
        | rest -> (List.rev acc, rest)
      in
      split [] p.pt_queue
    in
    p.pt_queue <- rest;
    t.mo_queued <- t.mo_queued - List.length group;
    List.map (fun e -> (e.en_name, e.en_value)) group
  | Relaxed w ->
    let idx =
      if forced then 0
      else begin
        let slots = eligible (max 1 w) p.pt_queue in
        List.nth slots (next t (List.length slots))
      end
    in
    let entry, rest = remove_nth p.pt_queue idx in
    if idx > 0 then t.mo_reordered <- t.mo_reordered + 1;
    p.pt_queue <- rest;
    t.mo_queued <- t.mo_queued - 1;
    [ (entry.en_name, entry.en_value) ]

(** Release queued updates at a kernel release point; [[]] when every
    FIFO is empty.  The scheduler picks one port to serve, and every
    other port whose oldest entry has waited {!force_bound} release
    points is served too (bounded propagation delay — no port starves).
    The caller applies the updates to the signal store out-of-band
    (pokes, not schedules). *)
let release t =
  let nonempty = List.filter (fun p -> p.pt_queue <> []) t.mo_ports in
  match nonempty with
  | [] -> []
  | ports ->
    t.mo_rounds <- t.mo_rounds + 1;
    let chosen = List.nth ports (next t (List.length ports)) in
    List.concat_map
      (fun p ->
        if p == chosen then release_from t ~forced:false p
        else
          match p.pt_queue with
          | e :: _ when t.mo_rounds - e.en_round >= force_bound ->
            release_from t ~forced:true p
          | _ -> [])
      ports
