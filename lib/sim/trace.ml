(** Observable traces: the sequence of [emit] events a simulation
    produces.  Functional equivalence of an original and a refined
    specification is judged on this sequence plus the final values of the
    partitioned variables. *)

open Spec

type event = {
  ev_tag : string;
  ev_value : Ast.value;
  ev_delta : int;  (** delta cycle at which the event fired *)
}

type t = { mutable events : event list }

let make () = { events = [] }

(** Drop all recorded events — the session cache reuses one trace buffer
    across runs of the same program. *)
let clear t = t.events <- []

let record t ~delta ~tag ~value =
  t.events <- { ev_tag = tag; ev_value = value; ev_delta = delta } :: t.events

let events t = List.rev t.events

(** Equality up to timing: same tags and values in the same order. *)
let equivalent a b =
  let strip evs = List.map (fun e -> (e.ev_tag, e.ev_value)) evs in
  strip a = strip b

let pp_event ppf e =
  Format.fprintf ppf "@%d %s=%a" e.ev_delta e.ev_tag Expr.pp_value e.ev_value

let pp ppf t =
  Format.fprintf ppf "@[<v>%a@]" (Format.pp_print_list pp_event) (events t)

(** Per-tag projection: the ordered value sequence of each tag.  Two
    traces are projection-equivalent when every tag carries the same
    value sequence — the right notion for programs with parallel
    branches, whose cross-branch interleaving is scheduling-dependent and
    not preserved (nor required to be) by refinement. *)
let projections evs =
  let tags =
    List.fold_left
      (fun acc e -> if List.mem e.ev_tag acc then acc else e.ev_tag :: acc)
      [] evs
    |> List.rev
  in
  List.map
    (fun tag ->
      ( tag,
        List.filter_map
          (fun e -> if String.equal e.ev_tag tag then Some e.ev_value else None)
          evs ))
    tags

let projection_equivalent a b =
  let pa = projections a and pb = projections b in
  List.sort compare pa = List.sort compare pb

(** First index where the traces diverge, if any — for diagnostics. *)
let first_divergence a b =
  let rec go i xs ys =
    match (xs, ys) with
    | [], [] -> None
    | x :: xs, y :: ys ->
      if (x.ev_tag, x.ev_value) = (y.ev_tag, y.ev_value) then go (i + 1) xs ys
      else Some i
    | _ :: _, [] | [], _ :: _ -> Some i
  in
  go 0 a b
