(** Observable traces: the sequence of [emit] events a simulation
    produces, and the equivalences used to compare them. *)

open Spec

type event = {
  ev_tag : string;
  ev_value : Ast.value;
  ev_delta : int;  (** delta cycle at which the event fired *)
}

type t

val make : unit -> t

val clear : t -> unit
(** Drop all recorded events, reusing the buffer (session cache). *)

val record : t -> delta:int -> tag:string -> value:Ast.value -> unit

val events : t -> event list
(** In emission order. *)

val equivalent : event list -> event list -> bool
(** Equality up to timing: same tags and values in the same order. *)

val projections : event list -> (string * Ast.value list) list
(** Per-tag projection: the ordered value sequence of each tag, tags in
    order of first occurrence. *)

val projection_equivalent : event list -> event list -> bool
(** Same per-tag value sequences (cross-tag interleaving ignored) — the
    right equivalence for concurrent specifications. *)

val first_divergence : event list -> event list -> int option
(** Index of the first differing event, for diagnostics. *)

val pp_event : Format.formatter -> event -> unit
val pp : Format.formatter -> t -> unit
