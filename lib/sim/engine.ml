(** The event-driven simulation kernel.

    The polling kernel (retained as {!Reference}) walked the whole process
    tree every scheduling round and re-evaluated every blocked wait.  This
    kernel only ever touches work that can actually proceed:

    - a {e maintained runnable queue}: leaves enter it when instantiated,
      when their wait condition's signals change, or when they still have
      fuel-limited work left; a round runs exactly the queued leaves, in
      preorder (so scheduling order — and therefore every observable
      artifact — matches the polling kernel bit for bit);
    - {e sensitivity sets}: a leaf blocking on [wait until c] is parked
      under the interned ids of the signals [c] reads (from the memoized
      {!Spec.Expr.refs}), and each signal keeps a wait-set of parked
      leaves; a delta-cycle commit wakes only the leaves sensitive to a
      signal that actually changed.  A condition that reads frame
      {e variables} (which can change without any commit) keeps its leaf
      in a small polled set instead, preserving the polling kernel's
      wake-up semantics exactly;
    - {e structural dirtiness}: the TOC-arc advancement walk runs only
      when a leaf finished this round (plus once at startup) — between
      finishes the tree is at its advancement fixpoint, so the walk would
      be a no-op;
    - fault-injection {!Sigtable.poke}s report through the store's notify
      hook, so out-of-band value forcing re-arms waiters exactly like a
      commit does.

    Determinism argument: rounds are assembled as the sorted union of
    (progressing leaves, woken leaves, polled leaves), so within a round
    leaves run in preorder exactly as the polling kernel ran them; a leaf
    missing from the round is one whose wait condition cannot have changed
    since it blocked (no signal it reads changed, and it reads no
    variables), so running it would consume zero steps and change
    nothing.  Commits, intercept order, probe order and delta accounting
    are shared {!Runtime} code. *)

open Spec
include Runtime

(* Index of an isolated bit (a power of two) — the runnable-mask scan
   extracts slots lowest-bit-first, which is ascending slot order. *)
let bit_index b =
  let i = ref 0 and b = ref b in
  if !b land 0xFFFFFFFF = 0 then begin
    i := 32;
    b := !b lsr 32
  end;
  if !b land 0xFFFF = 0 then begin
    i := !i + 16;
    b := !b lsr 16
  end;
  if !b land 0xFF = 0 then begin
    i := !i + 8;
    b := !b lsr 8
  end;
  if !b land 0xF = 0 then begin
    i := !i + 4;
    b := !b lsr 4
  end;
  if !b land 0x3 = 0 then begin
    i := !i + 2;
    b := !b lsr 2
  end;
  if !b land 0x1 = 0 then incr i;
  !i

type sched_stats = {
  st_rounds : int;  (** scheduling rounds executed *)
  st_leaf_runs : int;  (** interpreter activations across all rounds *)
  st_wakes : int;  (** parked leaves re-armed by a signal change *)
  st_rebuilds : int;  (** leaf-table rebuilds after structural change *)
}

type lstate =
  | Lrunnable  (** queued to run next round *)
  | Lparked  (** blocked; wait-sets of its condition's signals hold it *)
  | Lpolled  (** blocked on a condition that reads frame variables *)
  | Lfinished

type slot = {
  sl_machine : machine;
  sl_uid : int;
      (** session-unique slot identity; wait sites stamp it when their
          registration is recorded, so a repeat park is an O(1) check
          that survives slot turnover (a revived machine gets a fresh
          slot, hence a fresh uid, and re-registers) *)
  mutable sl_gen : int;
      (** machine generation at last rebuild: a recycled leaf (same
          machine, bumped generation) is a fresh process — it restarts
          runnable — but its wait-site classifications and wait-set
          registrations stay, since recycling reuses the same physical
          frames and cells *)
  mutable sl_state : lstate;
  mutable sl_idx : int;
      (** position in [ss_slots] as of the last rebuild — the wake path
          uses it to set the slot's runnable-mask bit without a search *)
  mutable sl_sites : (Spec.Ast.expr * Env.frame * lstate * int list) list;
      (** classification per wait site already parked at (physical
          condition and frame), with the signal ids the condition reads —
          a leaf blocks at its few wait sites over and over, and wait-set
          registrations persist, so a repeat park is a state flip.  The
          ids let a recycled leaf (whose registrations may have been
          purged while it was retired) re-register without
          re-classifying. *)
}

(* A session: one program's fully elaborated simulation state — frames,
   compiled bodies with their staged closures, scheduler slots and
   wait-set registrations — kept between runs and rewound in place.  The
   co-simulation checks, fault campaigns and explore sweeps run the same
   physical program hundreds to thousands of times; rebuilding all of
   that per run (and re-warming every cache from cold) dominated the
   kernel's profile.  Rewinding reuses the arm-pool discipline
   ({!Runtime.reset_node}) that already guarantees a rewound subtree is
   observably a fresh instantiation.  Sessions are domain-local: the
   explore pool runs simulations on several domains at once, and a
   shared store would be a data race. *)
type session = {
  ss_cx : Interp.context;
  ss_root_frame : Env.frame;
  ss_root : node;
  mutable ss_slots : slot array;
  ss_wait_sets : slot list array;
  mutable ss_busy : bool;
      (** a run is live in this session (reentrancy guard); a session
          abandoned mid-run by an exception is evicted, never reused *)
}

(* The default cap suits one-shot CLI runs (cosim originals + refined
   pairs).  A long-lived daemon serving many distinct specs widens it —
   the store is per-domain, so the cap bounds memory per worker. *)
let session_cap_atomic = Atomic.make 4

(* Slot uids are drawn from a process-wide counter: sessions are
   domain-local but the explore pool runs several domains, and a shared
   counter must not hand out duplicates. *)
let slot_uid_counter = Atomic.make 0
let fresh_slot_uid () = Atomic.fetch_and_add slot_uid_counter 1

let session_cap () = Atomic.get session_cap_atomic

let set_session_cap n =
  if n < 1 then invalid_arg "Engine.set_session_cap: cap < 1";
  Atomic.set session_cap_atomic n

(* Sessions are keyed by physical program {e and} backend: the two
   backends elaborate different leaf machines over the same program, and
   a differential run alternating them must not rewind one into the
   other. *)
let session_store_key :
    ((Ast.program * backend) * session) list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

(* Check a session out of the domain-local store: rewind the stored one,
   or elaborate from scratch on a miss.  A hit is only taken when the
   session is idle — a reentrant run of the same program (or a run racing
   a store eviction) gets a throwaway fresh session instead. *)
let checkout_session ~(backend : backend) (p : Ast.program) =
  let store = Domain.DLS.get session_store_key in
  let fresh () =
    let cx =
      {
        Interp.cx_signals = Sigtable.make p.Ast.p_signals;
        cx_trace = Trace.make ();
        cx_procs = p.Ast.p_procs;
        cx_delta = 0;
      }
    in
    let root_frame = Env.make ~owner:p.Ast.p_name p.Ast.p_vars in
    {
      ss_cx = cx;
      ss_root_frame = root_frame;
      ss_root = instantiate ~backend root_frame p.Ast.p_top;
      ss_slots = [||];
      ss_wait_sets = Array.make (Sigtable.n_signals cx.Interp.cx_signals) [];
      ss_busy = true;
    }
  in
  match
    List.find_opt (fun ((p', be'), _) -> p' == p && be' = backend) !store
  with
  | Some (_, ss) when not ss.ss_busy ->
    ss.ss_busy <- true;
    (* Rewind to the freshly-elaborated state.  Hooks are cleared here
       and re-installed per run; variables, signals, trace and delta
       counter take their construction-time values; the scheduler slots
       stay and are reconciled by the first [rebuild]. *)
    Sigtable.reset ss.ss_cx.Interp.cx_signals;
    Trace.clear ss.ss_cx.Interp.cx_trace;
    ss.ss_cx.Interp.cx_delta <- 0;
    Env.reinitialize ss.ss_root_frame p.Ast.p_vars;
    reset_node ss.ss_root;
    ss
  | Some _ -> fresh ()
  | None ->
    let ss = fresh () in
    let rec take n = function
      | [] -> []
      | _ when n <= 0 -> []
      | e :: rest -> e :: take (n - 1) rest
    in
    store := ((p, backend), ss) :: take (session_cap () - 1) !store;
    ss

let evict_session (p : Ast.program) ss =
  let store = Domain.DLS.get session_store_key in
  store := List.filter (fun ((p', _), ss') -> p' != p || ss' != ss) !store

let run_in_session ~(config : config) ~(hooks : hooks) ~ordering
    (p : Ast.program) ss =
  let cx = ss.ss_cx in
  let sigs = cx.Interp.cx_signals in
  let n_sig = Sigtable.n_signals sigs in
  let root_frame = ss.ss_root_frame in
  let root = ss.ss_root in
  let total_steps = ref 0 in
  let outcome = ref None in
  let signal_trace = ref [] in
  let rounds = ref 0
  and leaf_runs = ref 0
  and wakes = ref 0
  and rebuilds = ref 0 in
  (* The ordering layer sees every update the fault intercept lets
     through (post-rewrite), and may divert it into a port FIFO. *)
  let base_intercept =
    match hooks.h_intercept with
    | None -> None
    | Some f -> Some (fun name v -> f ~delta:cx.Interp.cx_delta name v)
  in
  begin match (base_intercept, ordering) with
  | None, None -> ()
  | Some f, None -> Sigtable.set_intercept sigs (Some f)
  | base, Some mo ->
    Sigtable.set_intercept sigs
      (Some
         (fun name v ->
           let act =
             match base with None -> Sigtable.Pass | Some f -> f name v
           in
           let capture v =
             Memord.capture mo ~delta:cx.Interp.cx_delta name v
           in
           match act with
           | Sigtable.Drop -> Sigtable.Drop
           | Sigtable.Pass ->
             if capture v then Sigtable.Drop else Sigtable.Pass
           | Sigtable.Rewrite v' ->
             if capture v' then Sigtable.Drop else Sigtable.Rewrite v'))
  end;
  (* Apply one scheduler-chosen release of diverted port updates: pokes,
     not schedules, so the delta counter is untouched and waiters wake
     through the notify hook exactly as fault pokes do. *)
  let release_ordered () =
    match ordering with
    | Some mo when Memord.pending mo ->
      List.iter
        (fun (name, v) -> ignore (Sigtable.poke sigs name v))
        (Memord.release mo)
    | _ -> ()
  in
  (* --- scheduler state ------------------------------------------------ *)
  let wait_sets = ss.ss_wait_sets in
  (* Probe name->cell resolutions are stable between structural changes:
     cache them (fault campaigns poke the same storage cells at every
     commit) and drop the cache whenever the tree changes shape. *)
  let probe_cache : (string, Ast.value ref option) Hashtbl.t =
    Hashtbl.create 32
  in
  (* The runnable set is the slots whose state is [Lrunnable] or
     [Lpolled]; a round visits them in ascending index order — the
     preorder the polling kernel used — by scanning the slot array
     directly.  A maintained index queue used to shadow this set, but
     per-round list building, sorting and merging of woken indices was
     pure allocator churn: the scan is branch-per-slot, allocation-free,
     and identical in visit order (wakes only happen between rounds, so
     the set is stable while a round scans it).  [n_active] counts that
     set, so the every-other round in a handshake exchange — every leaf
     parked, one commit pending — skips the scan entirely. *)
  let n_active = ref 0 in
  (* The same set as a bitmask over slot indices, for sessions of at most
     62 slots (an OCaml int's worth, sign bit spared): a round then visits
     exactly the runnable and polled slots, lowest index first, instead of
     filtering the whole slot array.  Wider sessions fall back to the
     scan. *)
  let run_mask = ref 0 in
  let mask_ok = ref true in
  let mask_set sl =
    if !mask_ok then run_mask := !run_mask lor (1 lsl sl.sl_idx)
  in
  let mask_clear sl =
    if !mask_ok then run_mask := !run_mask land lnot (1 lsl sl.sl_idx)
  in
  (* Incremental rebuild after a structural change.  A TOC transition
     replaces one subtree; every other leaf keeps its exec, and with it
     its slot: park state, classification cache and wait-set registrations
     all stay valid, because advancing the tree of control touches no
     signal value — a parked leaf's pure-signal condition cannot have
     become true.  Only genuinely new leaves enter runnable.  (The polling
     kernel instead re-ran {e every} leaf after a change; for the
     survivors that visit was a guaranteed no-op, so skipping it is
     observationally identical.)  Slots of vanished leaves are retired to
     [Lfinished] so their stale wait-set entries can never wake. *)
  let rebuild () =
    incr rebuilds;
    let old = ss.ss_slots in
    let taken = Array.make (Array.length old) false in
    let find_old m =
      let n = Array.length old in
      let rec go i =
        if i >= n then None
        else if (not taken.(i)) && old.(i).sl_machine == m then begin
          taken.(i) <- true;
          Some old.(i)
        end
        else go (i + 1)
      in
      go 0
    in
    ss.ss_slots <-
      Array.of_list
        (List.map
           (fun m ->
             match find_old m with
             | Some sl ->
               (* A bumped generation means the leaf was recycled — by a
                  TOC re-entry, or by a session rewind.  Observably a
                  fresh process, so it restarts runnable.  Its [sl_sites]
                  classifications are kept: recycling reuses the same
                  physical frames and cells ({!Interp.reset_exec},
                  {!Env.reinitialize}), so a condition resolves exactly as
                  it did last generation.  Its wait-set registrations may
                  have been purged while it was retired, so parked sites
                  re-register from their recorded ids. *)
               if sl.sl_gen <> machine_gen m then begin
                 sl.sl_gen <- machine_gen m;
                 sl.sl_state <- Lrunnable;
                 List.iter
                   (fun (_, _, cls, ids) ->
                     match cls with
                     | Lparked ->
                       List.iter
                         (fun id ->
                           if not (List.memq sl wait_sets.(id)) then
                             wait_sets.(id) <- sl :: wait_sets.(id))
                         ids
                     | Lrunnable | Lpolled | Lfinished -> ())
                   sl.sl_sites
               end;
               sl
             | None ->
               {
                 sl_machine = m;
                 sl_uid = fresh_slot_uid ();
                 sl_gen = machine_gen m;
                 sl_state = Lrunnable;
                 sl_idx = -1;
                 sl_sites = [];
               })
           (leaves root));
    Array.iteri (fun i sl -> if not taken.(i) then sl.sl_state <- Lfinished) old;
    let active = ref 0 in
    mask_ok := Array.length ss.ss_slots <= 62;
    run_mask := 0;
    Array.iteri
      (fun i sl ->
        sl.sl_idx <- i;
        match sl.sl_state with
        | Lrunnable | Lpolled ->
          incr active;
          if !mask_ok then run_mask := !run_mask lor (1 lsl i)
        | Lparked | Lfinished -> ())
      ss.ss_slots;
    n_active := !active;
    let dead sl =
      match sl.sl_state with
      | Lfinished -> true
      | Lrunnable | Lparked | Lpolled -> false
    in
    for id = 0 to n_sig - 1 do
      match wait_sets.(id) with
      | [] -> ()
      | ws ->
        if List.exists dead ws then
          wait_sets.(id) <- List.filter (fun sl -> not (dead sl)) ws
    done;
    Hashtbl.reset probe_cache
  in
  (* Park a leaf blocked on [c]: compute its sensitivity set once (refs
     are memoized per expression node).  Names that resolve to frame
     cells or arrays — or to nothing at all — can change without a
     commit, so such a leaf is polled; a pure signal condition is parked
     under its signals' wait-sets. *)
  let register sl cls ids =
    match cls with
    | Lparked ->
      List.iter
        (fun id ->
          if not (List.memq sl wait_sets.(id)) then
            wait_sets.(id) <- sl :: wait_sets.(id))
        ids
    | Lrunnable | Lpolled | Lfinished -> ()
  in
  (* A wait inside a procedure body sees a fresh frame every call, so its
     old entry can never hit again — replace it rather than letting the
     site list grow (and every later scan pay for it) per call. *)
  let record_site sl c frame cls ids =
    sl.sl_state <- cls;
    let rec replace = function
      | [] -> [ (c, frame, cls, ids) ]
      | (c', _, _, _) :: rest when c' == c -> (c, frame, cls, ids) :: rest
      | site :: rest -> site :: replace rest
    in
    sl.sl_sites <- replace sl.sl_sites
  in
  let known_site sl c frame =
    let rec go = function
      | [] -> None
      | (c', frame', cls, _) :: rest ->
        if c' == c && frame' == frame then Some cls else go rest
    in
    go sl.sl_sites
  in
  let park_tree sl exec c =
    let frame = exec.Interp.frame in
    match known_site sl c frame with
    | Some cls ->
      (* Seen wait site: the classification is unchanged and the wait-set
         registrations are still in place. *)
      sl.sl_state <- cls
    | None ->
      (* Classify each name the way evaluation resolves it (the per-exec
         resolution cache): a frame cell can change without a commit, so
         it forces polling; a signal read can only change at a commit (or
         poke), so it parks; anything else — arrays, unbound names that a
         short-circuit skipped — is conservatively polled. *)
      let var_dep = ref false in
      let sig_ids =
        List.filter_map
          (fun x ->
            match Interp.resolve cx exec x with
            | Interp.Rsig id -> Some id
            | Interp.Rcell _ | Interp.Rnone ->
              var_dep := true;
              None)
          (Expr.refs c)
      in
      let cls = if !var_dep then Lpolled else Lparked in
      register sl cls sig_ids;
      record_site sl c frame cls sig_ids
  in
  (* The VM precomputed the classification per wait site at compile time
     — by the same resolution rule — so parking is just the wait-set
     registration. *)
  let park_vm sl (ws : Opcode.wait_site) =
    (* After the first park the classification is recorded on the site
       itself and the wait-set registrations are in place, so a repeat
       park — the steady state of a handshake loop — is one flag test
       and a state flip. *)
    if ws.Opcode.ws_reg_uid = sl.sl_uid then
      sl.sl_state <- (if ws.Opcode.ws_polled then Lpolled else Lparked)
    else begin
      let cls = if ws.Opcode.ws_polled then Lpolled else Lparked in
      register sl cls ws.Opcode.ws_ids;
      record_site sl ws.Opcode.ws_expr ws.Opcode.ws_frame cls
        ws.Opcode.ws_ids;
      ws.Opcode.ws_reg_uid <- sl.sl_uid
    end
  in
  let wake id =
    List.iter
      (fun sl ->
        match sl.sl_state with
        | Lparked ->
          sl.sl_state <- Lrunnable;
          incr n_active;
          mask_set sl;
          incr wakes
        | Lrunnable | Lpolled | Lfinished -> ())
      wait_sets.(id)
  in
  Sigtable.set_notify sigs (Some wake);
  let find_cell_cached name =
    match Hashtbl.find_opt probe_cache name with
    | Some res -> res
    | None ->
      let res = find_cell root_frame root name in
      Hashtbl.replace probe_cache name res;
      res
  in
  let probe () =
    {
      pr_delta = cx.Interp.cx_delta;
      pr_signals = sigs;
      pr_read_var = (fun name -> Option.map ( ! ) (find_cell_cached name));
      pr_write_var =
        (fun name v ->
          match find_cell_cached name with
          | Some cell ->
            cell := v;
            true
          | None -> false);
    }
  in
  rebuild ();
  rebuilds := 0;
  (* The first round must advance unconditionally, like the polling
     kernel's first round: instantiation can produce already-done nodes
     (empty compositions) whose completion has to propagate.  After that,
     the tree sits at its advancement fixpoint until a leaf finishes. *)
  let first_round = ref true in
  (* Reused across rounds: a couple of thousand rounds per run would
     otherwise each allocate a fresh pair of refs. *)
  let ran = ref false and finished_any = ref false in
  let visit sl =
    match sl.sl_state with
    | Lfinished | Lparked -> ()
    | Lrunnable | Lpolled ->
      incr leaf_runs;
      begin match sl.sl_machine with
      | Mtree exec ->
        let status, steps = Interp.run cx exec ~fuel:config.slice in
        total_steps := !total_steps + steps;
        if steps > 0 then ran := true;
        begin match status with
        | Interp.Progress -> sl.sl_state <- Lrunnable
        | Interp.Finished ->
          sl.sl_state <- Lfinished;
          decr n_active;
          mask_clear sl;
          finished_any := true
        | Interp.Blocked c ->
          park_tree sl exec c;
          (match sl.sl_state with
          | Lparked ->
            decr n_active;
            mask_clear sl
          | Lrunnable | Lpolled | Lfinished -> ())
        end
      | Mvm t ->
        let status = Vm.run cx t ~fuel:config.slice in
        let steps = t.Vm.th_steps in
        total_steps := !total_steps + steps;
        if steps > 0 then ran := true;
        begin match status with
        | Vm.Progress -> sl.sl_state <- Lrunnable
        | Vm.Finished ->
          sl.sl_state <- Lfinished;
          decr n_active;
          mask_clear sl;
          finished_any := true
        | Vm.Blocked ->
          (match t.Vm.th_blocked with
          | Some ws -> park_vm sl ws
          | None -> assert false);
          (match sl.sl_state with
          | Lparked ->
            decr n_active;
            mask_clear sl
          | Lrunnable | Lpolled | Lfinished -> ())
        end
      end
  in
  while !outcome = None do
    incr rounds;
    if poll_cancelled hooks then outcome := Some Cancelled
    else begin
    (* One round: visit the queued leaves in ascending index order — the
       preorder the polling kernel used.  A leaf stays queued while it is
       runnable or polled; parking or finishing drops it.  Every leaf not
       on the queue is one whose visit would have been a no-op, so the
       round is observably identical to a full preorder walk. *)
    ran := false;
    finished_any := false;
    if !n_active > 0 then begin
      let slot_arr = ss.ss_slots in
      if !mask_ok then begin
        (* No leaf's run can change another slot's state (bodies only
           schedule updates; commits, pokes and structural advancement
           all happen between scans), so the mask snapshot taken bit by
           bit here is exactly the runnable set, in ascending order. *)
        let m = ref !run_mask in
        while !m <> 0 do
          let b = !m land (- !m) in
          m := !m lxor b;
          visit (Array.unsafe_get slot_arr (bit_index b))
        done
      end
      else
        for i = 0 to Array.length slot_arr - 1 do
          visit (Array.unsafe_get slot_arr i)
        done
    end;
    let structural =
      if !finished_any || !first_round then advance_fixpoint cx root
      else false
    in
    if structural then rebuild ();
    first_round := false;
    if !total_steps > config.max_steps then outcome := Some Step_limit
    else if ((not !ran) || !n_active = 0) && not structural then begin
      (* Quiescent.  [not ran] is the polling kernel's test — a full
         round made no progress.  [n_active = 0] reaches the same
         verdict one round early: every leaf is parked or finished, so
         the next scan is a guaranteed no-op and the round that would
         discover it can be skipped.  In the handshake steady state
         this fuses run-round and commit-round into one. *)
      if Sigtable.pending sigs then begin
        if config.trace_signals then begin
          let changed = Sigtable.commit_ids sigs in
          cx.Interp.cx_delta <- cx.Interp.cx_delta + 1;
          if changed <> [] then
            signal_trace :=
              ( cx.Interp.cx_delta,
                List.map
                  (fun id ->
                    (Sigtable.name_of sigs id, Sigtable.read_id sigs id))
                  changed )
              :: !signal_trace;
          List.iter wake changed
        end
        else begin
          (* Wake waiters straight from the commit walk — same ascending
             id order as the materialized list, without allocating it. *)
          Sigtable.commit_iter sigs wake;
          cx.Interp.cx_delta <- cx.Interp.cx_delta + 1
        end;
        (* [match] rather than [Option.iter (fun f -> ...)]: the latter
           allocates the closure every commit even with no hook set. *)
        (match hooks.h_on_commit with
        | None -> ()
        | Some f -> f (probe ()));
        (* Post-commit release point: keeps diverted updates draining
           while watchdog ticks (or other self-pacing traffic) prevent
           the network from ever going quiescent. *)
        release_ordered ();
        if cx.Interp.cx_delta > config.max_deltas then
          outcome := Some Step_limit
      end
      else begin
        (* Quiescent: no runnable leaf and no scheduled update.  Diverted
           port updates release here, one scheduler choice per round,
           before the kernel may conclude Completed or Deadlock. *)
        match ordering with
        | Some mo when Memord.pending mo -> release_ordered ()
        | _ ->
          if effectively_done p.Ast.p_servers root then
            outcome := Some Completed
          else
            outcome :=
              Some (Deadlock (List.rev (blocked_descriptions cx [] root)))
      end
    end
    end
  done;
  let outcome = Option.get !outcome in
  ( {
      r_outcome = outcome;
      r_trace = Trace.events cx.Interp.cx_trace;
      r_deltas = cx.Interp.cx_delta;
      r_steps = !total_steps;
      r_final = final_values root_frame root;
      r_signal_trace = List.rev !signal_trace;
    },
    {
      st_rounds = !rounds;
      st_leaf_runs = !leaf_runs;
      st_wakes = !wakes;
      st_rebuilds = !rebuilds;
    } )

let run_internal ~(config : config) ~(hooks : hooks) ~ordering ~backend
    (p : Ast.program) =
  let ss = checkout_session ~backend p in
  match run_in_session ~config ~hooks ~ordering p ss with
  | res ->
    ss.ss_busy <- false;
    res
  | exception e ->
    (* An abandoned mid-run session is in an unknown state: never reuse
       it. *)
    evict_session p ss;
    raise e

let run_stats ?(config = default_config) ?(hooks = no_hooks) ?ordering
    ?backend p =
  let backend =
    match backend with Some b -> b | None -> Runtime.default_backend ()
  in
  run_internal ~config ~hooks ~ordering ~backend p

let run ?(config = default_config) ?(hooks = no_hooks) ?ordering ?backend p =
  let backend =
    match backend with Some b -> b | None -> Runtime.default_backend ()
  in
  fst (run_internal ~config ~hooks ~ordering ~backend p)
