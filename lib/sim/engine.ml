(** The discrete-event simulation engine: instantiates the behavior tree
    as a tree of processes, runs every runnable leaf until it blocks,
    advances sequential compositions over their TOC arcs, and commits
    delta cycles until the program completes, deadlocks, or exhausts its
    budget. *)

open Spec
open Spec.Ast

type config = {
  max_steps : int;  (** total interpreter steps across all processes *)
  max_deltas : int;
  slice : int;  (** interpreter steps per process per scheduling round *)
  trace_signals : bool;
      (** record every committed signal change (for waveform dumps) *)
}

let default_config =
  {
    max_steps = 5_000_000;
    max_deltas = 200_000;
    slice = 10_000;
    trace_signals = false;
  }

type outcome =
  | Completed
  | Deadlock of string list  (** blocked process descriptions *)
  | Step_limit

type result = {
  r_outcome : outcome;
  r_trace : Trace.event list;
  r_deltas : int;
  r_steps : int;
  r_final : (string * value) list;
      (** variable values at the end, preorder, first occurrence first *)
  r_signal_trace : (int * (string * value) list) list;
      (** with [trace_signals]: per delta cycle, the committed changes *)
}

(** Post-commit access to the live simulation state, handed to the
    [h_on_commit] hook: the signal store plus read/write access to the
    behavior-frame variables anywhere in the process tree (fault
    injection flips bits in generated memory storage through this). *)
type probe = {
  pr_delta : int;  (** the delta cycle just committed *)
  pr_signals : Sigtable.t;
  pr_read_var : string -> value option;
  pr_write_var : string -> value -> bool;
}

type hooks = {
  h_intercept : (delta:int -> string -> value -> Sigtable.action) option;
      (** sees every scheduled signal update at commit time;
          [delta] is the cycle being committed *)
  h_on_commit : (probe -> unit) option;  (** runs after every commit *)
}

let no_hooks = { h_intercept = None; h_on_commit = None }

type nstate =
  | Nleaf of Interp.exec
  | Nseq of seq_run
  | Npar of node list
  | Ndone

and seq_run = { mutable s_idx : int; mutable s_child : node }

and node = {
  nd_behavior : behavior;
  nd_frame : Env.frame;
  mutable nd_state : nstate;
}

let rec instantiate parent_frame b =
  let frame = Env.make ~parent:parent_frame ~owner:b.b_name b.b_vars in
  let state =
    match b.b_body with
    | Leaf stmts -> Nleaf (Interp.make_exec ~owner:b.b_name ~frame stmts)
    | Seq [] -> Ndone
    | Seq (first :: _) ->
      Nseq { s_idx = 0; s_child = instantiate frame first.a_behavior }
    | Par [] -> Ndone
    | Par children -> Npar (List.map (instantiate frame) children)
  in
  { nd_behavior = b; nd_frame = frame; nd_state = state }

let is_done node = match node.nd_state with Ndone -> true | _ -> false

let rec collect_leaves acc node =
  match node.nd_state with
  | Ndone -> acc
  | Nleaf exec -> exec :: acc
  | Nseq s -> collect_leaves acc s.s_child
  | Npar children -> List.fold_left collect_leaves acc children

let eval_cond cx frame c =
  let lookup name =
    match Env.lookup frame name with
    | Some v -> Some v
    | None -> Sigtable.read cx.Interp.cx_signals name
  in
  let lookup_idx name i =
    match Env.find_array frame name with
    | Some arr when i >= 0 && i < Array.length arr -> Some arr.(i)
    | Some _ | None -> None
  in
  match Expr.eval ~lookup_idx ~lookup c with
  | VBool b -> b
  | VInt _ ->
    raise
      (Interp.Run_error
         (Printf.sprintf "TOC condition %s is not boolean" (Expr.to_string c)))

(* Advance structural state after leaves have run: leaves with an empty
   stack become done; a sequential composition whose child completed takes
   its TOC arc; a parallel composition completes with all children.
   Returns true when anything changed. *)
let rec advance cx node =
  match node.nd_state with
  | Ndone -> false
  | Nleaf exec ->
    if exec.Interp.stack = [] then begin
      node.nd_state <- Ndone;
      true
    end
    else false
  | Npar children ->
    let changed =
      List.fold_left (fun acc c -> advance cx c || acc) false children
    in
    if List.for_all is_done children then begin
      node.nd_state <- Ndone;
      true
    end
    else changed
  | Nseq s ->
    let changed = advance cx s.s_child in
    if not (is_done s.s_child) then changed
    else begin
      let arms =
        match node.nd_behavior.b_body with
        | Seq arms -> arms
        | Leaf _ | Par _ -> assert false
      in
      let arm = List.nth arms s.s_idx in
      let fired =
        let rec first_true = function
          | [] -> None
          | t :: rest ->
            begin match t.t_cond with
            | None -> Some t.t_target
            | Some c ->
              if eval_cond cx node.nd_frame c then Some t.t_target
              else first_true rest
            end
        in
        match arm.a_transitions with
        | [] ->
          (* fall through to the next arm in the list *)
          if s.s_idx + 1 < List.length arms then
            Some (Goto (List.nth arms (s.s_idx + 1)).a_behavior.b_name)
          else Some Complete
        | ts ->
          (* no arc firing completes the composition *)
          begin match first_true ts with
          | Some target -> Some target
          | None -> Some Complete
          end
      in
      begin match fired with
      | Some Complete | None -> node.nd_state <- Ndone
      | Some (Goto name) ->
        let rec index i = function
          | [] ->
            raise
              (Interp.Run_error
                 (Printf.sprintf "behavior %s: transition to unknown arm %s"
                    node.nd_behavior.b_name name))
          | a :: rest ->
            if String.equal a.a_behavior.b_name name then i
            else index (i + 1) rest
        in
        let j = index 0 arms in
        s.s_idx <- j;
        s.s_child <- instantiate node.nd_frame (List.nth arms j).a_behavior
      end;
      true
    end

let rec advance_fixpoint cx node =
  if advance cx node then begin
    ignore (advance_fixpoint cx node);
    true
  end
  else false

(* A node is effectively done when it finished, is a registered server, or
   is a parallel composition of effectively done children (a component
   whose only remaining activity is its perpetual servers counts as
   finished). *)
let rec effectively_done servers node =
  match node.nd_state with
  | Ndone -> true
  | _ when List.mem node.nd_behavior.b_name servers -> true
  | Nleaf _ | Nseq _ -> false
  | Npar children -> List.for_all (effectively_done servers) children

(* The signals a blocked wait is stuck on, with their current values —
   fault-campaign deadlocks are diagnosed from these. *)
let waited_signals cx c =
  List.filter_map
    (fun x ->
      match Sigtable.read cx.Interp.cx_signals x with
      | Some v ->
        Some (Format.asprintf "%s=%a" x Expr.pp_value v)
      | None -> None)
    (Expr.refs c)

let rec blocked_descriptions cx acc node =
  match node.nd_state with
  | Ndone -> acc
  | Nleaf exec ->
    begin match exec.Interp.stack with
    | Interp.Twait c :: _ ->
      let sigs = waited_signals cx c in
      Printf.sprintf "%s waiting until %s%s" exec.Interp.ex_owner
        (Expr.to_string c)
        (match sigs with
        | [] -> ""
        | _ -> Printf.sprintf " [%s]" (String.concat ", " sigs))
      :: acc
    | _ -> Printf.sprintf "%s runnable" exec.Interp.ex_owner :: acc
    end
  | Nseq s -> blocked_descriptions cx acc s.s_child
  | Npar children -> List.fold_left (blocked_descriptions cx) acc children

(* Final variable values: the root frame (program variables) first, then
   every live node's own declarations in preorder. *)
let final_values root_frame root =
  let acc = ref [] in
  let seen = Hashtbl.create 32 in
  let add name value =
    if not (Hashtbl.mem seen name) then begin
      Hashtbl.add seen name ();
      acc := (name, value) :: !acc
    end
  in
  Hashtbl.iter (fun name cell -> add name !cell) root_frame.Env.f_vars;
  let add_array name arr =
    Array.iteri (fun i v -> add (Printf.sprintf "%s[%d]" name i) v) arr
  in
  Hashtbl.iter add_array root_frame.Env.f_arrays;
  let rec walk node =
    List.iter
      (fun (d : var_decl) ->
        match d.v_ty with
        | TArray _ ->
          begin match Env.find_array node.nd_frame d.v_name with
          | Some arr -> add_array d.v_name arr
          | None -> ()
          end
        | TBool | TInt _ ->
          begin match Env.lookup node.nd_frame d.v_name with
          | Some v -> add d.v_name v
          | None -> ()
          end)
      node.nd_behavior.b_vars;
    begin match node.nd_state with
    | Nseq s -> walk s.s_child
    | Npar children -> List.iter walk children
    | Nleaf _ | Ndone -> ()
    end
  in
  walk root;
  List.rev !acc

let run ?(config = default_config) ?(hooks = no_hooks) (p : program) =
  let cx =
    {
      Interp.cx_signals = Sigtable.make p.p_signals;
      cx_trace = Trace.make ();
      cx_procs = p.p_procs;
      cx_delta = 0;
    }
  in
  let root_frame = Env.make ~owner:p.p_name p.p_vars in
  let root = instantiate root_frame p.p_top in
  let total_steps = ref 0 in
  let outcome = ref None in
  let signal_trace = ref [] in
  begin match hooks.h_intercept with
  | None -> ()
  | Some f ->
    Sigtable.set_intercept cx.Interp.cx_signals
      (Some (fun name v -> f ~delta:cx.Interp.cx_delta name v))
  end;
  (* Frame-variable access for the on-commit probe: the root frame first,
     then every live node's own cell, preorder (matching [final_values]'
     first-occurrence-wins order). *)
  let find_cell name =
    match Hashtbl.find_opt root_frame.Env.f_vars name with
    | Some cell -> Some cell
    | None ->
      let rec walk node =
        let here =
          if
            List.exists
              (fun (d : var_decl) -> String.equal d.v_name name)
              node.nd_behavior.b_vars
          then Hashtbl.find_opt node.nd_frame.Env.f_vars name
          else None
        in
        match here with
        | Some _ -> here
        | None ->
          begin match node.nd_state with
          | Nseq s -> walk s.s_child
          | Npar children -> List.find_map walk children
          | Nleaf _ | Ndone -> None
          end
      in
      walk root
  in
  let probe () =
    {
      pr_delta = cx.Interp.cx_delta;
      pr_signals = cx.Interp.cx_signals;
      pr_read_var = (fun name -> Option.map ( ! ) (find_cell name));
      pr_write_var =
        (fun name v ->
          match find_cell name with
          | Some cell ->
            cell := v;
            true
          | None -> false);
    }
  in
  while !outcome = None do
    (* Run every runnable leaf for one slice. *)
    let ran = ref false in
    List.iter
      (fun exec ->
        match exec.Interp.stack with
        | [] -> ()
        | _ ->
          let _, steps = Interp.run cx exec ~fuel:config.slice in
          total_steps := !total_steps + steps;
          if steps > 0 then ran := true)
      (List.rev (collect_leaves [] root));
    let structural = advance_fixpoint cx root in
    if !total_steps > config.max_steps then outcome := Some Step_limit
    else if (not !ran) && not structural then begin
      if Sigtable.pending cx.Interp.cx_signals then begin
        let changes = Sigtable.commit_changes cx.Interp.cx_signals in
        cx.Interp.cx_delta <- cx.Interp.cx_delta + 1;
        if config.trace_signals && changes <> [] then
          signal_trace := (cx.Interp.cx_delta, changes) :: !signal_trace;
        Option.iter (fun f -> f (probe ())) hooks.h_on_commit;
        if cx.Interp.cx_delta > config.max_deltas then
          outcome := Some Step_limit
      end
      else if effectively_done p.p_servers root then outcome := Some Completed
      else
        outcome := Some (Deadlock (List.rev (blocked_descriptions cx [] root)))
    end
  done;
  let outcome = Option.get !outcome in
  {
    r_outcome = outcome;
    r_trace = Trace.events cx.Interp.cx_trace;
    r_deltas = cx.Interp.cx_delta;
    r_steps = !total_steps;
    r_final = final_values root_frame root;
    r_signal_trace = List.rev !signal_trace;
  }

let outcome_to_string = function
  | Completed -> "completed"
  | Deadlock who ->
    Printf.sprintf "deadlock (%s)" (String.concat "; " who)
  | Step_limit -> "step limit exceeded"
