(** The event-driven simulation kernel.

    The polling kernel (retained as {!Reference}) walked the whole process
    tree every scheduling round and re-evaluated every blocked wait.  This
    kernel only ever touches work that can actually proceed:

    - a {e maintained runnable queue}: leaves enter it when instantiated,
      when their wait condition's signals change, or when they still have
      fuel-limited work left; a round runs exactly the queued leaves, in
      preorder (so scheduling order — and therefore every observable
      artifact — matches the polling kernel bit for bit);
    - {e sensitivity sets}: a leaf blocking on [wait until c] is parked
      under the interned ids of the signals [c] reads (from the memoized
      {!Spec.Expr.refs}), and each signal keeps a wait-set of parked
      leaves; a delta-cycle commit wakes only the leaves sensitive to a
      signal that actually changed.  A condition that reads frame
      {e variables} (which can change without any commit) keeps its leaf
      in a small polled set instead, preserving the polling kernel's
      wake-up semantics exactly;
    - {e structural dirtiness}: the TOC-arc advancement walk runs only
      when a leaf finished this round (plus once at startup) — between
      finishes the tree is at its advancement fixpoint, so the walk would
      be a no-op;
    - fault-injection {!Sigtable.poke}s report through the store's notify
      hook, so out-of-band value forcing re-arms waiters exactly like a
      commit does.

    Determinism argument: rounds are assembled as the sorted union of
    (progressing leaves, woken leaves, polled leaves), so within a round
    leaves run in preorder exactly as the polling kernel ran them; a leaf
    missing from the round is one whose wait condition cannot have changed
    since it blocked (no signal it reads changed, and it reads no
    variables), so running it would consume zero steps and change
    nothing.  Commits, intercept order, probe order and delta accounting
    are shared {!Runtime} code. *)

open Spec
include Runtime

type sched_stats = {
  st_rounds : int;  (** scheduling rounds executed *)
  st_leaf_runs : int;  (** interpreter activations across all rounds *)
  st_wakes : int;  (** parked leaves re-armed by a signal change *)
  st_rebuilds : int;  (** leaf-table rebuilds after structural change *)
}

type lstate =
  | Lrunnable  (** queued to run next round *)
  | Lparked  (** blocked; wait-sets of its condition's signals hold it *)
  | Lpolled  (** blocked on a condition that reads frame variables *)
  | Lfinished

type slot = {
  mutable sl_idx : int;
      (** preorder position; round order = ascending index.  Updated on
          structural rebuilds, where surviving leaves can shift. *)
  sl_exec : Interp.exec;
  mutable sl_gen : int;
      (** [ex_gen] at last rebuild: a recycled leaf (same exec, bumped
          generation) is a fresh process — it restarts runnable — but its
          wait-site classifications and wait-set registrations stay, since
          recycling reuses the same physical frames and cells *)
  mutable sl_state : lstate;
  mutable sl_sites : (Spec.Ast.expr * Env.frame * lstate * int list) list;
      (** classification per wait site already parked at (physical
          condition and frame), with the signal ids the condition reads —
          a leaf blocks at its few wait sites over and over, and wait-set
          registrations persist, so a repeat park is a state flip.  The
          ids let a recycled leaf (whose registrations may have been
          purged while it was retired) re-register without
          re-classifying. *)
}

(* A session: one program's fully elaborated simulation state — frames,
   compiled bodies with their staged closures, scheduler slots and
   wait-set registrations — kept between runs and rewound in place.  The
   co-simulation checks, fault campaigns and explore sweeps run the same
   physical program hundreds to thousands of times; rebuilding all of
   that per run (and re-warming every cache from cold) dominated the
   kernel's profile.  Rewinding reuses the arm-pool discipline
   ({!Runtime.reset_node}) that already guarantees a rewound subtree is
   observably a fresh instantiation.  Sessions are domain-local: the
   explore pool runs simulations on several domains at once, and a
   shared store would be a data race. *)
type session = {
  ss_cx : Interp.context;
  ss_root_frame : Env.frame;
  ss_root : node;
  mutable ss_slots : slot array;
  ss_wait_sets : slot list array;
  mutable ss_busy : bool;
      (** a run is live in this session (reentrancy guard); a session
          abandoned mid-run by an exception is evicted, never reused *)
}

(* The default cap suits one-shot CLI runs (cosim originals + refined
   pairs).  A long-lived daemon serving many distinct specs widens it —
   the store is per-domain, so the cap bounds memory per worker. *)
let session_cap_atomic = Atomic.make 4

let session_cap () = Atomic.get session_cap_atomic

let set_session_cap n =
  if n < 1 then invalid_arg "Engine.set_session_cap: cap < 1";
  Atomic.set session_cap_atomic n

let session_store_key : (Ast.program * session) list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

(* Check a session out of the domain-local store: rewind the stored one,
   or elaborate from scratch on a miss.  A hit is only taken when the
   session is idle — a reentrant run of the same program (or a run racing
   a store eviction) gets a throwaway fresh session instead. *)
let checkout_session (p : Ast.program) =
  let store = Domain.DLS.get session_store_key in
  let fresh () =
    let cx =
      {
        Interp.cx_signals = Sigtable.make p.Ast.p_signals;
        cx_trace = Trace.make ();
        cx_procs = p.Ast.p_procs;
        cx_delta = 0;
      }
    in
    let root_frame = Env.make ~owner:p.Ast.p_name p.Ast.p_vars in
    {
      ss_cx = cx;
      ss_root_frame = root_frame;
      ss_root = instantiate root_frame p.Ast.p_top;
      ss_slots = [||];
      ss_wait_sets = Array.make (Sigtable.n_signals cx.Interp.cx_signals) [];
      ss_busy = true;
    }
  in
  match List.find_opt (fun (p', _) -> p' == p) !store with
  | Some (_, ss) when not ss.ss_busy ->
    ss.ss_busy <- true;
    (* Rewind to the freshly-elaborated state.  Hooks are cleared here
       and re-installed per run; variables, signals, trace and delta
       counter take their construction-time values; the scheduler slots
       stay and are reconciled by the first [rebuild]. *)
    Sigtable.reset ss.ss_cx.Interp.cx_signals;
    Trace.clear ss.ss_cx.Interp.cx_trace;
    ss.ss_cx.Interp.cx_delta <- 0;
    Env.reinitialize ss.ss_root_frame p.Ast.p_vars;
    reset_node ss.ss_root;
    ss
  | Some _ -> fresh ()
  | None ->
    let ss = fresh () in
    let rec take n = function
      | [] -> []
      | _ when n <= 0 -> []
      | e :: rest -> e :: take (n - 1) rest
    in
    store := (p, ss) :: take (session_cap () - 1) !store;
    ss

let evict_session (p : Ast.program) ss =
  let store = Domain.DLS.get session_store_key in
  store := List.filter (fun (p', ss') -> p' != p || ss' != ss) !store

let run_in_session ~(config : config) ~(hooks : hooks) ~ordering
    (p : Ast.program) ss =
  let cx = ss.ss_cx in
  let sigs = cx.Interp.cx_signals in
  let n_sig = Sigtable.n_signals sigs in
  let root_frame = ss.ss_root_frame in
  let root = ss.ss_root in
  let total_steps = ref 0 in
  let outcome = ref None in
  let signal_trace = ref [] in
  let rounds = ref 0
  and leaf_runs = ref 0
  and wakes = ref 0
  and rebuilds = ref 0 in
  (* The ordering layer sees every update the fault intercept lets
     through (post-rewrite), and may divert it into a port FIFO. *)
  let base_intercept =
    match hooks.h_intercept with
    | None -> None
    | Some f -> Some (fun name v -> f ~delta:cx.Interp.cx_delta name v)
  in
  begin match (base_intercept, ordering) with
  | None, None -> ()
  | Some f, None -> Sigtable.set_intercept sigs (Some f)
  | base, Some mo ->
    Sigtable.set_intercept sigs
      (Some
         (fun name v ->
           let act =
             match base with None -> Sigtable.Pass | Some f -> f name v
           in
           let capture v =
             Memord.capture mo ~delta:cx.Interp.cx_delta name v
           in
           match act with
           | Sigtable.Drop -> Sigtable.Drop
           | Sigtable.Pass ->
             if capture v then Sigtable.Drop else Sigtable.Pass
           | Sigtable.Rewrite v' ->
             if capture v' then Sigtable.Drop else Sigtable.Rewrite v'))
  end;
  (* Apply one scheduler-chosen release of diverted port updates: pokes,
     not schedules, so the delta counter is untouched and waiters wake
     through the notify hook exactly as fault pokes do. *)
  let release_ordered () =
    match ordering with
    | Some mo when Memord.pending mo ->
      List.iter
        (fun (name, v) -> ignore (Sigtable.poke sigs name v))
        (Memord.release mo)
    | _ -> ()
  in
  (* --- scheduler state ------------------------------------------------ *)
  let wait_sets = ss.ss_wait_sets in
  (* Probe name->cell resolutions are stable between structural changes:
     cache them (fault campaigns poke the same storage cells at every
     commit) and drop the cache whenever the tree changes shape. *)
  let probe_cache : (string, Ast.value ref option) Hashtbl.t =
    Hashtbl.create 32
  in
  (* The maintained runnable queue: ascending slot indices still worth
     visiting this round (runnable or polled leaves).  Parked and finished
     leaves drop out; a commit merges the woken leaves back in.  Wakes
     only happen between rounds (commits, fault pokes from the on-commit
     probe), so the queue is stable while a round scans it. *)
  let active : int list ref = ref [] in
  let pending_wakes : int list ref = ref [] in
  (* Incremental rebuild after a structural change.  A TOC transition
     replaces one subtree; every other leaf keeps its exec, and with it
     its slot: park state, classification cache and wait-set registrations
     all stay valid, because advancing the tree of control touches no
     signal value — a parked leaf's pure-signal condition cannot have
     become true.  Only genuinely new leaves enter runnable.  (The polling
     kernel instead re-ran {e every} leaf after a change; for the
     survivors that visit was a guaranteed no-op, so skipping it is
     observationally identical.)  Slots of vanished leaves are retired to
     [Lfinished] so their stale wait-set entries can never wake. *)
  let rebuild () =
    incr rebuilds;
    let old = ss.ss_slots in
    let taken = Array.make (Array.length old) false in
    let find_old exec =
      let n = Array.length old in
      let rec go i =
        if i >= n then None
        else if (not taken.(i)) && old.(i).sl_exec == exec then begin
          taken.(i) <- true;
          Some old.(i)
        end
        else go (i + 1)
      in
      go 0
    in
    ss.ss_slots <-
      Array.of_list
        (List.mapi
           (fun i exec ->
             match find_old exec with
             | Some sl ->
               sl.sl_idx <- i;
               (* A bumped generation means the leaf was recycled — by a
                  TOC re-entry, or by a session rewind.  Observably a
                  fresh process, so it restarts runnable.  Its [sl_sites]
                  classifications are kept: recycling reuses the same
                  physical frames and cells ({!Interp.reset_exec},
                  {!Env.reinitialize}), so a condition resolves exactly as
                  it did last generation.  Its wait-set registrations may
                  have been purged while it was retired, so parked sites
                  re-register from their recorded ids. *)
               if sl.sl_gen <> exec.Interp.ex_gen then begin
                 sl.sl_gen <- exec.Interp.ex_gen;
                 sl.sl_state <- Lrunnable;
                 List.iter
                   (fun (_, _, cls, ids) ->
                     match cls with
                     | Lparked ->
                       List.iter
                         (fun id ->
                           if not (List.memq sl wait_sets.(id)) then
                             wait_sets.(id) <- sl :: wait_sets.(id))
                         ids
                     | Lrunnable | Lpolled | Lfinished -> ())
                   sl.sl_sites
               end;
               sl
             | None ->
               {
                 sl_idx = i;
                 sl_exec = exec;
                 sl_gen = exec.Interp.ex_gen;
                 sl_state = Lrunnable;
                 sl_sites = [];
               })
           (leaves root));
    Array.iteri (fun i sl -> if not taken.(i) then sl.sl_state <- Lfinished) old;
    let dead sl =
      match sl.sl_state with
      | Lfinished -> true
      | Lrunnable | Lparked | Lpolled -> false
    in
    for id = 0 to n_sig - 1 do
      match wait_sets.(id) with
      | [] -> ()
      | ws ->
        if List.exists dead ws then
          wait_sets.(id) <- List.filter (fun sl -> not (dead sl)) ws
    done;
    let acc = ref [] in
    let arr = ss.ss_slots in
    for i = Array.length arr - 1 downto 0 do
      match arr.(i).sl_state with
      | Lrunnable | Lpolled -> acc := i :: !acc
      | Lparked | Lfinished -> ()
    done;
    active := !acc;
    pending_wakes := [];
    Hashtbl.reset probe_cache
  in
  (* Park a leaf blocked on [c]: compute its sensitivity set once (refs
     are memoized per expression node).  Names that resolve to frame
     cells or arrays — or to nothing at all — can change without a
     commit, so such a leaf is polled; a pure signal condition is parked
     under its signals' wait-sets. *)
  let park sl c =
    let frame = sl.sl_exec.Interp.frame in
    let rec known = function
      | [] -> None
      | (c', frame', cls, _) :: rest ->
        if c' == c && frame' == frame then Some cls else known rest
    in
    match known sl.sl_sites with
    | Some cls ->
      (* Seen wait site: the classification is unchanged and the wait-set
         registrations are still in place. *)
      sl.sl_state <- cls
    | None ->
      (* Classify each name the way evaluation resolves it (the per-exec
         resolution cache): a frame cell can change without a commit, so
         it forces polling; a signal read can only change at a commit (or
         poke), so it parks; anything else — arrays, unbound names that a
         short-circuit skipped — is conservatively polled. *)
      let var_dep = ref false in
      let sig_ids =
        List.filter_map
          (fun x ->
            match Interp.resolve cx sl.sl_exec x with
            | Interp.Rsig id -> Some id
            | Interp.Rcell _ | Interp.Rnone ->
              var_dep := true;
              None)
          (Expr.refs c)
      in
      let cls =
        if !var_dep then Lpolled
        else begin
          List.iter
            (fun id ->
              if not (List.memq sl wait_sets.(id)) then
                wait_sets.(id) <- sl :: wait_sets.(id))
            sig_ids;
          Lparked
        end
      in
      sl.sl_state <- cls;
      (* A wait inside a procedure body sees a fresh frame every call, so
         its old entry can never hit again — replace it rather than letting
         the site list grow (and every later scan pay for it) per call. *)
      let rec replace = function
        | [] -> [ (c, frame, cls, sig_ids) ]
        | (c', _, _, _) :: rest when c' == c -> (c, frame, cls, sig_ids) :: rest
        | site :: rest -> site :: replace rest
      in
      sl.sl_sites <- replace sl.sl_sites
  in
  let wake id =
    List.iter
      (fun sl ->
        match sl.sl_state with
        | Lparked ->
          sl.sl_state <- Lrunnable;
          pending_wakes := sl.sl_idx :: !pending_wakes;
          incr wakes
        | Lrunnable | Lpolled | Lfinished -> ())
      wait_sets.(id)
  in
  Sigtable.set_notify sigs (Some wake);
  let find_cell_cached name =
    match Hashtbl.find_opt probe_cache name with
    | Some res -> res
    | None ->
      let res = find_cell root_frame root name in
      Hashtbl.replace probe_cache name res;
      res
  in
  let probe () =
    {
      pr_delta = cx.Interp.cx_delta;
      pr_signals = sigs;
      pr_read_var = (fun name -> Option.map ( ! ) (find_cell_cached name));
      pr_write_var =
        (fun name v ->
          match find_cell_cached name with
          | Some cell ->
            cell := v;
            true
          | None -> false);
    }
  in
  rebuild ();
  rebuilds := 0;
  (* The first round must advance unconditionally, like the polling
     kernel's first round: instantiation can produce already-done nodes
     (empty compositions) whose completion has to propagate.  After that,
     the tree sits at its advancement fixpoint until a leaf finishes. *)
  let first_round = ref true in
  while !outcome = None do
    incr rounds;
    if poll_cancelled hooks then outcome := Some Cancelled
    else begin
    (* One round: visit the queued leaves in ascending index order — the
       preorder the polling kernel used.  A leaf stays queued while it is
       runnable or polled; parking or finishing drops it.  Every leaf not
       on the queue is one whose visit would have been a no-op, so the
       round is observably identical to a full preorder walk. *)
    if !pending_wakes <> [] then begin
      let icmp (a : int) b = Stdlib.compare a b in
      active := List.merge icmp (List.sort icmp !pending_wakes) !active;
      pending_wakes := []
    end;
    let ran = ref false and finished_any = ref false in
    let slot_arr = ss.ss_slots in
    let rec visit acc = function
      | [] -> List.rev acc
      | i :: rest ->
        let sl = Array.unsafe_get slot_arr i in
        begin match sl.sl_state with
        | Lfinished | Lparked -> visit acc rest
        | Lrunnable | Lpolled ->
          incr leaf_runs;
          let status, steps = Interp.run cx sl.sl_exec ~fuel:config.slice in
          total_steps := !total_steps + steps;
          if steps > 0 then ran := true;
          begin match status with
          | Interp.Progress -> sl.sl_state <- Lrunnable
          | Interp.Finished ->
            sl.sl_state <- Lfinished;
            finished_any := true
          | Interp.Blocked c -> park sl c
          end;
          begin match sl.sl_state with
          | Lrunnable | Lpolled -> visit (i :: acc) rest
          | Lparked | Lfinished -> visit acc rest
          end
        end
    in
    active := visit [] !active;
    let structural =
      if !finished_any || !first_round then advance_fixpoint cx root
      else false
    in
    first_round := false;
    if structural then rebuild ();
    if !total_steps > config.max_steps then outcome := Some Step_limit
    else if (not !ran) && not structural then begin
      if Sigtable.pending sigs then begin
        let changed = Sigtable.commit_ids sigs in
        cx.Interp.cx_delta <- cx.Interp.cx_delta + 1;
        if config.trace_signals && changed <> [] then
          signal_trace :=
            ( cx.Interp.cx_delta,
              List.map
                (fun id -> (Sigtable.name_of sigs id, Sigtable.read_id sigs id))
                changed )
            :: !signal_trace;
        List.iter wake changed;
        Option.iter (fun f -> f (probe ())) hooks.h_on_commit;
        (* Post-commit release point: keeps diverted updates draining
           while watchdog ticks (or other self-pacing traffic) prevent
           the network from ever going quiescent. *)
        release_ordered ();
        if cx.Interp.cx_delta > config.max_deltas then
          outcome := Some Step_limit
      end
      else begin
        (* Quiescent: no runnable leaf and no scheduled update.  Diverted
           port updates release here, one scheduler choice per round,
           before the kernel may conclude Completed or Deadlock. *)
        match ordering with
        | Some mo when Memord.pending mo -> release_ordered ()
        | _ ->
          if effectively_done p.Ast.p_servers root then
            outcome := Some Completed
          else
            outcome :=
              Some (Deadlock (List.rev (blocked_descriptions cx [] root)))
      end
    end
    end
  done;
  let outcome = Option.get !outcome in
  ( {
      r_outcome = outcome;
      r_trace = Trace.events cx.Interp.cx_trace;
      r_deltas = cx.Interp.cx_delta;
      r_steps = !total_steps;
      r_final = final_values root_frame root;
      r_signal_trace = List.rev !signal_trace;
    },
    {
      st_rounds = !rounds;
      st_leaf_runs = !leaf_runs;
      st_wakes = !wakes;
      st_rebuilds = !rebuilds;
    } )

let run_internal ~(config : config) ~(hooks : hooks) ~ordering
    (p : Ast.program) =
  let ss = checkout_session p in
  match run_in_session ~config ~hooks ~ordering p ss with
  | res ->
    ss.ss_busy <- false;
    res
  | exception e ->
    (* An abandoned mid-run session is in an unknown state: never reuse
       it. *)
    evict_session p ss;
    raise e

let run_stats ?(config = default_config) ?(hooks = no_hooks) ?ordering p =
  run_internal ~config ~hooks ~ordering p

let run ?(config = default_config) ?(hooks = no_hooks) ?ordering p =
  fst (run_internal ~config ~hooks ~ordering p)
