(** Port-ordering semantics for multi-port memories.

    Interposes on the kernels' commit path: updates to signals owned by
    a memory port are diverted into that port's write FIFO and released
    at the kernels' release points (after each committed delta, and at
    quiescent rounds), in an order chosen by a seeded deterministic
    scheduler.  A (policy, seed, program) triple replays
    bit-identically, on both the event-driven {!Engine} and the polling
    {!Reference}.  Same-signal (per-location) order is preserved under
    every policy. *)

open Spec

type policy =
  | Sc  (** sequentially consistent — today's behavior, nothing diverted *)
  | Per_port_fifo
      (** each port's delta-groups commit atomically in issue order;
          inter-port interleavings chosen by the seeded scheduler *)
  | Relaxed of int
      (** per-port reordering within a bounded window (>= 1), one
          update at a time — simultaneous updates tear apart *)

val default_window : int
(** Window selected by the bare ["relaxed"] spelling. *)

val policy_of_string : string -> (policy, string) result
(** Accepts ["sc"], ["per-port-fifo"] (or ["fifo"]), ["relaxed"] and
    ["relaxed:N"]. *)

val policy_to_string : policy -> string

type t

val make :
  policy:policy -> seed:int -> port_of:(string -> string option) -> t
(** [port_of] classifies a committed signal update: [Some port] diverts
    it into that port's FIFO, [None] passes it through untouched. *)

val policy : t -> policy

val capture : t -> delta:int -> string -> Ast.value -> bool
(** Offer an update about to commit.  [true] = diverted (the kernel
    must drop the update); [false] = commit normally.  Updates captured
    from the same delta form one atomic group under [Per_port_fifo]. *)

val pending : t -> bool
(** Are any diverted updates still queued? *)

val release : t -> (string * Ast.value) list
(** Release queued updates at a kernel release point, scheduler's
    choice: one port's oldest delta-group ([Per_port_fifo]) or a single
    windowed update ([Relaxed]).  [[]] when all FIFOs are empty. *)

val diverted : t -> int
(** Total updates ever diverted into a FIFO. *)

val reordered : t -> int
(** Releases that overtook an older same-port entry (relaxed only). *)
