(** Variable environments: a chain of frames, one per behavior instance or
    procedure activation.  Variables are mutable cells; [out] procedure
    parameters alias the caller's cell.

    Name resolution walks the parent chain once and memoizes the result
    (the cell, the array, or a definitive miss) in every frame it passed
    through, so the steady-state cost of a leaf-local read is a single
    hashtable probe instead of one probe per ancestor frame. *)

open Spec

type frame = {
  f_vars : (string, Ast.value ref) Hashtbl.t;
  f_arrays : (string, Ast.value array) Hashtbl.t;
  f_parent : frame option;
  f_behavior : string;  (** name of the owning behavior / procedure *)
  f_memo_cell : (string, Ast.value ref option) Hashtbl.t;
      (** memoized chain resolution for scalars; [None] = miss everywhere *)
  f_memo_arr : (string, Ast.value array option) Hashtbl.t;
      (** memoized chain resolution for arrays *)
}

let init_of (d : Ast.var_decl) =
  match d.Ast.v_init with
  | Some v -> v
  | None -> Ast.default_value d.Ast.v_ty

let make ?parent ~owner decls =
  let f =
    {
      f_vars = Hashtbl.create 8;
      f_arrays = Hashtbl.create 2;
      f_parent = parent;
      f_behavior = owner;
      f_memo_cell = Hashtbl.create 8;
      f_memo_arr = Hashtbl.create 2;
    }
  in
  List.iter
    (fun (d : Ast.var_decl) ->
      match d.Ast.v_ty with
      | Ast.TArray (_, size) ->
        Hashtbl.replace f.f_arrays d.Ast.v_name (Array.make size (init_of d))
      | Ast.TBool | Ast.TInt _ ->
        Hashtbl.replace f.f_vars d.Ast.v_name (ref (init_of d)))
    decls;
  f

(* [bind] installs new cells after frame creation (procedure entry), so a
   memoized miss or an ancestor's cell cached under that name in this
   frame would go stale: drop it.  Descendant frames are created after
   their parent's bindings are complete, so only this frame's memo can be
   stale. *)
let bind f name cell =
  Hashtbl.replace f.f_vars name cell;
  Hashtbl.remove f.f_memo_cell name

(* Steady-state resolutions return the option stored in the memo table
   via [Hashtbl.find], so a hit performs one string hash and allocates
   nothing. *)
let rec find_cell f name =
  match Hashtbl.find f.f_memo_cell name with
  | res -> res
  | exception Not_found ->
    let res =
      match Hashtbl.find_opt f.f_vars name with
      | Some _ as cell -> cell
      | None ->
        begin match f.f_parent with
        | Some parent -> find_cell parent name
        | None -> None
        end
    in
    Hashtbl.replace f.f_memo_cell name res;
    res

let lookup f name = Option.map (fun cell -> !cell) (find_cell f name)

let assign f name v =
  match find_cell f name with
  | Some cell ->
    cell := v;
    true
  | None -> false

(** The innermost array binding for the name, walking the parent chain. *)
let rec find_array f name =
  match Hashtbl.find f.f_memo_arr name with
  | res -> res
  | exception Not_found ->
    let res =
      match Hashtbl.find_opt f.f_arrays name with
      | Some _ as arr -> arr
      | None ->
        begin match f.f_parent with
        | Some parent -> find_array parent name
        | None -> None
        end
    in
    Hashtbl.replace f.f_memo_arr name res;
    res

(** Re-run the initializers of the given declarations in this exact frame
    (used when a sequential arm is re-entered).  Existing cells and arrays
    are overwritten in place, so resolutions memoized by this frame's
    descendants stay valid. *)
let reinitialize f decls =
  List.iter
    (fun (d : Ast.var_decl) ->
      let init = init_of d in
      match d.Ast.v_ty with
      | Ast.TArray (_, size) ->
        begin match Hashtbl.find_opt f.f_arrays d.Ast.v_name with
        | Some arr when Array.length arr = size -> Array.fill arr 0 size init
        | Some _ | None ->
          Hashtbl.replace f.f_arrays d.Ast.v_name (Array.make size init);
          Hashtbl.remove f.f_memo_arr d.Ast.v_name
        end
      | Ast.TBool | Ast.TInt _ ->
        begin match Hashtbl.find_opt f.f_vars d.Ast.v_name with
        | Some cell -> cell := init
        | None ->
          Hashtbl.replace f.f_vars d.Ast.v_name (ref init);
          Hashtbl.remove f.f_memo_cell d.Ast.v_name
        end)
    decls
