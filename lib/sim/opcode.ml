(** The flat instruction set of the bytecode simulation backend.

    A compiled program ({!prog}) is an array of instructions over {e
    dense operands}: frame variable cells and arrays resolved to their
    physical storage at compile time, signals to their {!Sigtable}
    interned ids, expression temporaries to indices into a small
    per-activation register file.  Control flow is jump-patched —
    if/while/for lower to conditional branches with explicit targets.

    Step accounting is carried by the instructions themselves: every
    instruction that completes one tree-walker step ({!Interp}) is a
    {e charging} instruction, so the VM's step counts — an observable
    compared bit-for-bit by the differential tests — match the
    tree-walker without a per-dispatch tick.  The charge map mirrors
    {!Interp.step_stack} exactly: one step per simple statement, per
    taken if-branch (or else entry), per loop check, per block exit,
    per call entry and frame pop; a failed wait check charges nothing.

    Error operands ([Ifail_run], [Ifail_eval], prebuilt message
    strings) keep the tree-walker's lazy failure discipline: a name
    that does not resolve compiles to an instruction that raises {e
    when executed}, never at compile time, so a program that only
    fails on a path it never takes keeps not failing. *)

open Spec
open Spec.Ast

(** A wait site: one [wait until] occurrence in a compiled body, with
    its sensitivity classification precomputed.  The event-driven
    scheduler parks a leaf blocked here under [ws_ids]' wait-sets (or
    polls it when [ws_polled]); the classification rule is the one the
    tree-walker's park computes per block: a name resolving to a frame
    cell — or to nothing — forces polling, a pure signal condition
    parks. *)
type wait_site = {
  ws_expr : expr;  (** the source condition, for diagnostics and park keying *)
  ws_frame : Env.frame;  (** the frame the condition evaluates under *)
  ws_ids : int list;  (** interned ids of the signals the condition reads *)
  ws_polled : bool;  (** reads frame cells, arrays or unbound names *)
  ws_resume : int;  (** pc of the condition's first instruction *)
  mutable ws_reg_uid : int;
      (** uid of the scheduler slot that classified and
          wait-set-registered this site ([-1] when none yet): a repeat
          park from the same slot is then a bare state flip, while a
          revived machine under a fresh slot re-registers *)
}

type for_site = {
  fs_cur : int;  (** register holding the current index value *)
  fs_hi : int;  (** register holding the upper bound *)
  fs_cell : value ref option;  (** the index variable's cell; [None] raises *)
  fs_err : string;  (** prebuilt unbound-index message *)
  mutable fs_exit : int;  (** jump target once the bound check fails *)
}

type prog = {
  pr_code : instr array;
  pr_nregs : int;  (** register-file size the code assumes *)
  pr_owner : string;
      (** the executing leaf — error prefixes, which stay the leaf's name
          even inside procedure bodies *)
}

(** A compiled call site.  The callee is resolved statically (the
    procedure list is fixed per program); a call to an unknown
    procedure or with wrong arity compiles to [Ifail_run] instead, at
    the exact point the tree-walker would raise.  The pooled frame
    discipline mirrors {!Interp}: the first completed call's frame and
    compiled body are kept and re-entered by mutating parameter cells,
    so descendants' baked resolutions stay valid. *)
and call_site = {
  vs_name : string;
  vs_proc : proc_decl;
  vs_frame : Env.frame;  (** the caller frame *)
  vs_owner : string;  (** the executing leaf, for error messages *)
  vs_bindings : binding array;  (** parameter plumbing, declaration order *)
  vs_pool_ok : bool;  (** parameter names distinct and shadow-free *)
  mutable vs_pool : vpool_state;
}

and binding =
  | Bin of string * int  (** in-parameter: name, register holding the value *)
  | Bout of string * value ref  (** out-parameter: name, caller cell aliased *)

and vpool_state = VPnone | VPineligible | VPpool of vpool

and vpool = {
  vp_frame : Env.frame;
  vp_prog : prog;  (** callee body compiled against [vp_frame] *)
  vp_regs : value array;
  vp_in_cells : (int * value ref) array;  (** (arg register, param cell) *)
  mutable vp_busy : bool;  (** a call is live in the frame (recursion) *)
}

and instr =
  (* -- expression instructions: uncharged ---------------------------- *)
  | Iconst of int * value  (** [r <- v] *)
  | Iload_cell of int * value ref * string  (** [r <- !cell] *)
  | Iload_sig of int * int * string  (** [r <- signal id] *)
  | Iload_arr of int * value array * int * string
      (** [rd <- arr.(ri)]; non-integer index and bounds errors exactly
          as the leaf interpreter's [lookup_idx] *)
  | Iload_arr_cond of int * value array * int * string
      (** TOC-condition indexing: out-of-bounds raises the condition
          evaluator's ["array access _ failed"] instead *)
  | Ibinop of binop * int * int * int  (** [rd <- ra op rb] *)
  | Ibinop_rc of binop * int * int * value  (** [rd <- ra op v] *)
  | Ibinop_cr of binop * int * value * int  (** [rd <- v op ra] *)
  | Ibinop_cell of binop * int * value ref * value * string
      (** [rd <- !cell op v]: operand-fused variable-against-constant
          compare/arithmetic — the bulk of wait conditions and counter
          updates *)
  | Ibinop_sig of binop * int * int * value * string
      (** [rd <- signal op v] *)
  | Iunop of unop * int * int
  | Iand_jmp of int * int  (** short-circuit: [r] false jumps, keeps false *)
  | Ior_jmp of int * int  (** short-circuit: [r] true jumps, keeps true *)
  | Ijmp of int
  | Icheck_int_run of int * string  (** [ce_int]: Run_error unless VInt *)
  | Icheck_int_eval of int  (** [as_int]: Eval_error unless VInt *)
  | Ifail_run of string  (** raise Run_error when executed *)
  | Ifail_eval of string  (** raise Eval_error when executed *)
  | Iyield of int  (** condition programs: return [r] *)
  (* -- charging instructions: each completes one interpreter step ---- *)
  | Icharge  (** bare step: skip, loop/wait entry, constant-true wait check *)
  | Iend_jmp of int  (** block exit: charge, then jump *)
  | Istore_cell of value ref * int * string
  | Istore_cell_const of value ref * value * string
  | Istore_arr of value array * int * int * string  (** arr, ri, rv, name *)
  | Istore_sig of int * int * string  (** signal id, rv, name *)
  | Istore_sig_const of int * value * string
  | Iemit of string * int
  | Iemit_const of string * value
  | Iif_jmp of int * int * string
      (** if-chain branch: non-boolean [r] raises the prebuilt message;
          true charges and jumps to the branch body; false falls through
          uncharged (the whole dispatch is one step) *)
  | Iwhile_jmp of int * int * string
      (** loop check: always charges; false exits to the target *)
  | Ifor_test of for_site
      (** loop check: always charges; past the bound exits, otherwise
          stores the index value into its cell *)
  | Ifor_end of int * int  (** body block exit: charge, bump r, jump *)
  | Iwait of int * wait_site * string
      (** non-boolean [r] raises; true charges and falls through; false
          blocks at the site, uncharged *)
  | Iwait_sig of int * wait_site * string  (** fused [wait until s] *)
  | Iwait_sig_eq of int * value * wait_site  (** fused [wait until s = k] *)
  | Iwait_never of wait_site  (** constant-false condition: always blocks *)
  | Icall of call_site  (** push the callee activation; charges *)
  | Iret  (** pop the activation (and release its pool); charges *)
  | Ihalt  (** leaf body finished; uncharged *)

(* ------------------------------------------------------------------ *)
(* Disassembly, for the golden tests and debugging.                    *)
(* ------------------------------------------------------------------ *)

let value_to_string = function
  | VBool true -> "true"
  | VBool false -> "false"
  | VInt n -> string_of_int n

let instr_to_string = function
  | Iconst (d, v) -> Printf.sprintf "const      r%d <- %s" d (value_to_string v)
  | Iload_cell (d, _, x) -> Printf.sprintf "load_cell  r%d <- %s" d x
  | Iload_sig (d, id, x) -> Printf.sprintf "load_sig   r%d <- %s#%d" d x id
  | Iload_arr (d, _, i, x) -> Printf.sprintf "load_arr   r%d <- %s[r%d]" d x i
  | Iload_arr_cond (d, _, i, x) ->
    Printf.sprintf "load_arrc  r%d <- %s[r%d]" d x i
  | Ibinop (op, d, a, b) ->
    Printf.sprintf "binop      r%d <- r%d %s r%d" d a
      (Expr.binop_symbol op) b
  | Ibinop_rc (op, d, a, v) ->
    Printf.sprintf "binop      r%d <- r%d %s %s" d a (Expr.binop_symbol op)
      (value_to_string v)
  | Ibinop_cr (op, d, v, a) ->
    Printf.sprintf "binop      r%d <- %s %s r%d" d (value_to_string v)
      (Expr.binop_symbol op) a
  | Ibinop_cell (op, d, _, v, x) ->
    Printf.sprintf "binop      r%d <- %s %s %s" d x (Expr.binop_symbol op)
      (value_to_string v)
  | Ibinop_sig (op, d, id, v, x) ->
    Printf.sprintf "binop      r%d <- %s#%d %s %s" d x id
      (Expr.binop_symbol op) (value_to_string v)
  | Iunop (Neg, d, a) -> Printf.sprintf "unop       r%d <- -r%d" d a
  | Iunop (Not, d, a) -> Printf.sprintf "unop       r%d <- not r%d" d a
  | Iand_jmp (r, t) -> Printf.sprintf "and_jmp    r%d false -> %d" r t
  | Ior_jmp (r, t) -> Printf.sprintf "or_jmp     r%d true -> %d" r t
  | Ijmp t -> Printf.sprintf "jmp        %d" t
  | Icheck_int_run (r, _) -> Printf.sprintf "check_int  r%d" r
  | Icheck_int_eval r -> Printf.sprintf "as_int     r%d" r
  | Ifail_run msg -> Printf.sprintf "fail_run   %S" msg
  | Ifail_eval msg -> Printf.sprintf "fail_eval  %S" msg
  | Iyield r -> Printf.sprintf "yield      r%d" r
  | Icharge -> "charge"
  | Iend_jmp t -> Printf.sprintf "end_jmp    %d" t
  | Istore_cell (_, r, x) -> Printf.sprintf "store      %s <- r%d" x r
  | Istore_cell_const (_, v, x) ->
    Printf.sprintf "store      %s <- %s" x (value_to_string v)
  | Istore_arr (_, i, v, x) -> Printf.sprintf "store_arr  %s[r%d] <- r%d" x i v
  | Istore_sig (id, r, x) -> Printf.sprintf "store_sig  %s#%d <- r%d" x id r
  | Istore_sig_const (id, v, x) ->
    Printf.sprintf "store_sig  %s#%d <- %s" x id (value_to_string v)
  | Iemit (tag, r) -> Printf.sprintf "emit       %S r%d" tag r
  | Iemit_const (tag, v) ->
    Printf.sprintf "emit       %S %s" tag (value_to_string v)
  | Iif_jmp (r, t, _) -> Printf.sprintf "if_jmp     r%d -> %d" r t
  | Iwhile_jmp (r, t, _) -> Printf.sprintf "while_jmp  r%d exit %d" r t
  | Ifor_test fs ->
    Printf.sprintf "for_test   r%d <= r%d exit %d" fs.fs_cur fs.fs_hi
      fs.fs_exit
  | Ifor_end (r, t) -> Printf.sprintf "for_end    r%d++ -> %d" r t
  | Iwait (r, _, _) -> Printf.sprintf "wait       r%d" r
  | Iwait_sig (id, ws, _) ->
    Printf.sprintf "wait_sig   %s#%d"
      (match ws.ws_expr with Ref x -> x | _ -> "?")
      id
  | Iwait_sig_eq (id, v, _) ->
    Printf.sprintf "wait_sig   #%d = %s" id (value_to_string v)
  | Iwait_never _ -> "wait_never"
  | Icall site -> Printf.sprintf "call       %s/%d" site.vs_name
      (Array.length site.vs_bindings)
  | Iret -> "ret"
  | Ihalt -> "halt"

let charges = function
  | Iconst _ | Iload_cell _ | Iload_sig _ | Iload_arr _ | Iload_arr_cond _
  | Ibinop _ | Ibinop_rc _ | Ibinop_cr _ | Ibinop_cell _ | Ibinop_sig _
  | Iunop _ | Iand_jmp _ | Ior_jmp _ | Ijmp _ | Icheck_int_run _
  | Icheck_int_eval _ | Ifail_run _ | Ifail_eval _ | Iyield _ | Ihalt ->
    false
  | Icharge | Iend_jmp _ | Istore_cell _ | Istore_cell_const _ | Istore_arr _
  | Istore_sig _ | Istore_sig_const _ | Iemit _ | Iemit_const _ | Iif_jmp _
  | Iwhile_jmp _ | Ifor_test _ | Ifor_end _ | Iwait _ | Iwait_sig _
  | Iwait_sig_eq _ | Iwait_never _ | Icall _ | Iret ->
    true

let to_string prog =
  let b = Buffer.create 256 in
  Array.iteri
    (fun i instr ->
      Buffer.add_string b
        (Printf.sprintf "%3d  %s%s\n" i (instr_to_string instr)
           (if charges instr then "  *" else "")))
    prog.pr_code;
  Buffer.contents b
