(** Variable environments: a chain of frames, one per behavior instance or
    procedure activation.  Variables are mutable cells; [out] procedure
    parameters alias the caller's cell. *)

open Spec

type frame = {
  f_vars : (string, Ast.value ref) Hashtbl.t;
  f_arrays : (string, Ast.value array) Hashtbl.t;
  f_parent : frame option;
  f_behavior : string;  (** name of the owning behavior / procedure *)
  f_memo_cell : (string, Ast.value ref option) Hashtbl.t;
      (** memoized parent-chain resolutions; maintained by {!find_cell},
          invalidated by {!bind} *)
  f_memo_arr : (string, Ast.value array option) Hashtbl.t;
}

val make : ?parent:frame -> owner:string -> Ast.var_decl list -> frame
(** Fresh frame with one cell per declaration, initialized to the declared
    value or the type default. *)

val bind : frame -> string -> Ast.value ref -> unit
(** Bind a name to an existing cell (aliasing, used for [out] params). *)

val find_cell : frame -> string -> Ast.value ref option
(** Innermost cell for the name, walking the parent chain. *)

val find_array : frame -> string -> Ast.value array option
(** Innermost array binding for the name, walking the parent chain. *)

val lookup : frame -> string -> Ast.value option

val assign : frame -> string -> Ast.value -> bool
(** False when the name is unbound in the whole chain. *)

val reinitialize : frame -> Ast.var_decl list -> unit
(** Re-run the initializers of the given declarations in this frame. *)
