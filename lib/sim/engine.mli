(** The event-driven simulation kernel.

    Signals are interned to dense integer ids at startup; blocked leaves
    are parked under per-signal sensitivity sets; a maintained runnable
    queue replaces per-round tree walks; the structural advancement runs
    only when a leaf finishes.  Observable behavior — traces, final
    values, deadlock reports, delta and step counts, fault-campaign
    classifications — is bit-identical to the retained polling kernel
    ({!Reference}); the differential tests enforce this.

    All result/hook types are shared with {!Reference} through
    {!Runtime} and re-exported here so existing callers are unaffected. *)

open Spec

type config = Runtime.config = {
  max_steps : int;  (** total interpreter steps across all processes *)
  max_deltas : int;
  slice : int;  (** interpreter steps per process per scheduling round *)
  trace_signals : bool;
      (** record every committed signal change (for waveform dumps) *)
}

val default_config : config

type outcome = Runtime.outcome =
  | Completed
      (** every process that is not a registered server finished *)
  | Deadlock of string list
      (** blocked process descriptions, each including the waited-on
          signals and frame variables with their current values *)
  | Step_limit  (** the step or delta budget ran out *)
  | Cancelled  (** the [h_poll] hook asked the kernel to stop *)

type result = Runtime.result = {
  r_outcome : outcome;
  r_trace : Trace.event list;  (** the observable [emit] events, in order *)
  r_deltas : int;
  r_steps : int;
  r_final : (string * Ast.value) list;
      (** variable values at the end: program variables first, then every
          live behavior's declarations in preorder (first occurrence
          wins) *)
  r_signal_trace : (int * (string * Ast.value) list) list;
      (** with [trace_signals]: per delta cycle, the committed changes *)
}

(** Post-commit access to the live simulation state, handed to the
    [h_on_commit] hook: the signal store plus read/write access to the
    behavior-frame variables anywhere in the process tree.  Fault
    campaigns flip bits in generated memory storage through this. *)
type probe = Runtime.probe = {
  pr_delta : int;  (** the delta cycle just committed *)
  pr_signals : Sigtable.t;
  pr_read_var : string -> Ast.value option;
  pr_write_var : string -> Ast.value -> bool;
}

(** Fault-injection and supervision hooks.  [h_intercept] is installed as
    the signal store's update intercept (it sees every scheduled update at
    commit time and may drop or rewrite it); [h_on_commit] runs after
    every committed delta cycle; [h_poll] is the cooperative cancellation
    check, polled once per scheduling round — when it returns [true] the
    run stops with {!Cancelled} instead of spinning to the step limit. *)
type hooks = Runtime.hooks = {
  h_intercept : (delta:int -> string -> Ast.value -> Sigtable.action) option;
  h_on_commit : (probe -> unit) option;
  h_poll : (unit -> bool) option;
}

val no_hooks : hooks

(** Scheduler-internal counters, exposed for the kernel's own tests and
    benchmarks (e.g. proving that a parked leaf is not busy-polled while
    nothing it waits on changes). *)
type sched_stats = {
  st_rounds : int;  (** scheduling rounds executed *)
  st_leaf_runs : int;  (** interpreter activations across all rounds *)
  st_wakes : int;  (** parked leaves re-armed by a signal change *)
  st_rebuilds : int;  (** leaf-table rebuilds after structural change *)
}

val session_cap : unit -> int
(** Capacity of the per-domain session cache: how many distinct physical
    programs keep their fully elaborated simulation state (frames,
    compiled bodies, scheduler slots, wait-set registrations) alive
    between runs.  Defaults to 4 — enough for a CLI invocation's cosim
    pairs. *)

val set_session_cap : int -> unit
(** Widen (or narrow) the session cache, e.g. for a long-lived daemon
    serving many distinct specifications; takes effect on the next
    insertion in each domain.  The cap bounds elaborated state {e per
    worker domain}.
    @raise Invalid_argument when the cap is < 1. *)

val run :
  ?config:config ->
  ?hooks:hooks ->
  ?ordering:Memord.t ->
  ?backend:Runtime.backend ->
  Ast.program ->
  result
(** Simulate a validated program.  [ordering] interposes weak
    port-ordering semantics on the commit path ({!Memord}); omitted, the
    kernel is sequentially consistent and byte-identical to before.
    [backend] selects the leaf machine: the bytecode register VM
    ([`Bytecode]) or the retained tree-walking interpreter
    ([`Treewalk]) — observables are bit-identical, the tree-walker exists
    as the differential oracle.  Omitted, the process-wide
    {!Runtime.default_backend} applies ([`Bytecode] unless the CLI's
    [--backend] flag changed it).  Sessions are cached per (program,
    backend), so alternating backends over the same program does not
    thrash the cache.
    @raise Interp.Run_error on dynamic errors (unbound names, type
    confusion) — run {!Spec.Program.validate} and {!Spec.Typecheck.check}
    first to rule these out statically. *)

val run_stats :
  ?config:config ->
  ?hooks:hooks ->
  ?ordering:Memord.t ->
  ?backend:Runtime.backend ->
  Ast.program ->
  result * sched_stats
(** {!run}, also returning the scheduler counters. *)

val outcome_to_string : outcome -> string
