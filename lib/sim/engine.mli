(** The discrete-event simulation engine.

    The behavior tree is instantiated as a tree of processes; every
    runnable leaf executes until it blocks on a [wait until], sequential
    compositions advance over their TOC arcs, and when everything is
    quiescent the scheduler commits the pending signal updates (one delta
    cycle) and re-evaluates the blocked waits.  Simulation ends when the
    design completes (every non-server process finished), deadlocks, or
    exhausts its step/delta budget. *)

open Spec

type config = {
  max_steps : int;  (** total interpreter steps across all processes *)
  max_deltas : int;
  slice : int;  (** interpreter steps per process per scheduling round *)
  trace_signals : bool;
      (** record every committed signal change (for waveform dumps) *)
}

val default_config : config

type outcome =
  | Completed
      (** every process that is not a registered server finished *)
  | Deadlock of string list
      (** blocked process descriptions, each including the waited-on
          signals and their current values *)
  | Step_limit  (** the step or delta budget ran out *)

type result = {
  r_outcome : outcome;
  r_trace : Trace.event list;  (** the observable [emit] events, in order *)
  r_deltas : int;
  r_steps : int;
  r_final : (string * Ast.value) list;
      (** variable values at the end: program variables first, then every
          live behavior's declarations in preorder (first occurrence
          wins) *)
  r_signal_trace : (int * (string * Ast.value) list) list;
      (** with [trace_signals]: per delta cycle, the committed changes *)
}

(** Post-commit access to the live simulation state, handed to the
    [h_on_commit] hook: the signal store plus read/write access to the
    behavior-frame variables anywhere in the process tree.  Fault
    campaigns flip bits in generated memory storage through this. *)
type probe = {
  pr_delta : int;  (** the delta cycle just committed *)
  pr_signals : Sigtable.t;
  pr_read_var : string -> Ast.value option;
  pr_write_var : string -> Ast.value -> bool;
}

(** Fault-injection hooks.  [h_intercept] is installed as the signal
    store's update intercept (it sees every scheduled update at commit
    time and may drop or rewrite it); [h_on_commit] runs after every
    committed delta cycle. *)
type hooks = {
  h_intercept : (delta:int -> string -> Ast.value -> Sigtable.action) option;
  h_on_commit : (probe -> unit) option;
}

val no_hooks : hooks

val run : ?config:config -> ?hooks:hooks -> Ast.program -> result
(** Simulate a validated program.
    @raise Interp.Run_error on dynamic errors (unbound names, type
    confusion) — run {!Spec.Program.validate} and {!Spec.Typecheck.check}
    first to rule these out statically. *)

val outcome_to_string : outcome -> string
