(** Lowering elaborated bodies and conditions to {!Opcode} programs.

    Compilation runs against a {e fixed} physical frame — the same
    invariant the tree-walker's staged closures rely on — so every name
    is resolved here, once: variables to their [value ref] cells, arrays
    to their storage, signals to {!Sigtable} ids, procedures to their
    declarations.  Constant subexpressions fold at compile time through
    the very {!Spec.Expr.apply_binop} the VM dispatches through, so a
    folded result (or a folded failure) is bit-identical to the
    evaluated one.

    Names that do not resolve lower to [Ifail_*] instructions placed
    exactly where the tree-walker would have raised, preserving its lazy
    failure discipline: position in the evaluation order decides which
    of several possible errors fires, and code on a never-taken path
    never fails.

    Two modes differ only at array reads: leaf bodies raise the
    interpreter's owner-prefixed [Run_error]s on missing arrays and
    out-of-bounds indices, while TOC/wait conditions evaluated by
    {!Runtime.eval_cond} raise [Eval_error "array access _ failed"]. *)

open Spec
open Spec.Ast
open Opcode

type mode = Mleaf | Mcond

type env = {
  md : mode;
  owner : string;  (** the leaf behavior, for error prefixes *)
  frame : Env.frame;
  signals : Sigtable.t;
  procs : proc_decl list;
}

(* ------------------------------------------------------------------ *)
(* Code buffer with jump patching.                                     *)
(* ------------------------------------------------------------------ *)

type buf = {
  mutable b_code : instr array;
  mutable b_len : int;
  mutable b_regs : int;  (** register high-water mark *)
}

let max_reg = function
  | Iconst (d, _) | Iload_cell (d, _, _) | Iload_sig (d, _, _) -> d
  | Iload_arr (d, _, i, _) | Iload_arr_cond (d, _, i, _) -> max d i
  | Ibinop (_, d, a, b) -> max d (max a b)
  | Ibinop_rc (_, d, a, _) | Ibinop_cr (_, d, _, a) | Iunop (_, d, a) ->
    max d a
  | Ibinop_cell (_, d, _, _, _) | Ibinop_sig (_, d, _, _, _) -> d
  | Iand_jmp (r, _)
  | Ior_jmp (r, _)
  | Icheck_int_run (r, _)
  | Icheck_int_eval r
  | Iyield r
  | Istore_cell (_, r, _)
  | Istore_sig (_, r, _)
  | Iemit (_, r)
  | Iif_jmp (r, _, _)
  | Iwhile_jmp (r, _, _)
  | Iwait (r, _, _)
  | Ifor_end (r, _) ->
    r
  | Istore_arr (_, i, v, _) -> max i v
  | Ifor_test fs -> max fs.fs_cur fs.fs_hi
  | Icall site ->
    Array.fold_left
      (fun acc -> function Bin (_, r) -> max acc r | Bout _ -> acc)
      (-1) site.vs_bindings
  | Ijmp _ | Ifail_run _ | Ifail_eval _ | Icharge | Iend_jmp _
  | Istore_cell_const _ | Istore_sig_const _ | Iemit_const _ | Iwait_sig _
  | Iwait_sig_eq _ | Iwait_never _ | Iret | Ihalt ->
    -1

let new_buf () = { b_code = Array.make 16 Ihalt; b_len = 0; b_regs = 0 }

let emit b i =
  if b.b_len = Array.length b.b_code then begin
    let code = Array.make (2 * b.b_len) Ihalt in
    Array.blit b.b_code 0 code 0 b.b_len;
    b.b_code <- code
  end;
  b.b_code.(b.b_len) <- i;
  b.b_len <- b.b_len + 1;
  let r = max_reg i in
  if r >= b.b_regs then b.b_regs <- r + 1

let here b = b.b_len

(* Emit a placeholder to patch once the jump target is known. *)
let reserve b =
  emit b (Ijmp (-1));
  b.b_len - 1

let patch b at i =
  b.b_code.(at) <- i;
  let r = max_reg i in
  if r >= b.b_regs then b.b_regs <- r + 1

let finish b ~owner =
  { pr_code = Array.sub b.b_code 0 b.b_len; pr_nregs = b.b_regs;
    pr_owner = owner }

(* ------------------------------------------------------------------ *)
(* Expressions.                                                        *)
(* ------------------------------------------------------------------ *)

(** Result of lowering one expression: a compile-time constant (no code
    emitted), code leaving the value in the target register, or code
    guaranteed to raise before producing a value. *)
type folded = Fv of value | Fcode | Fraise

let msg_not_bool_cond env c =
  Printf.sprintf "%s: condition %s is not boolean" env.owner
    (Expr.to_string c)

let msg_not_int env e =
  Printf.sprintf "%s: expression %s is not an integer" env.owner
    (Expr.to_string e)

(* Constants embedded in instructions go through the {!Spec.Expr} value
   caches: every bool and small int the compiled code mentions is then
   the {e same physical box} as the one runtime arithmetic produces, so
   the pointer test in {!Spec.Ast.equal_value} (wait-site compares,
   commit change detection) resolves without inspecting the payload. *)
let intern (v : value) =
  match v with
  | VBool b -> Expr.vbool b
  | VInt n -> if n >= 0 && n < 1024 then Expr.vint n else v

(* [emit_expr b env ~dst ~sp e] leaves [e]'s value in register [dst],
   using registers [>= sp] as scratch.  [dst < sp] always. *)
let rec emit_expr b env ~dst ~sp e : folded =
  match e with
  | Const v -> Fv (intern v)
  | Ref x ->
    begin match Env.find_cell env.frame x with
    | Some cell ->
      emit b (Iload_cell (dst, cell, x));
      Fcode
    | None ->
      begin match Sigtable.id_of env.signals x with
      | Some id ->
        emit b (Iload_sig (dst, id, x));
        Fcode
      | None ->
        emit b (Ifail_eval (Printf.sprintf "unbound reference %s" x));
        Fraise
      end
    end
  | Index (x, i) ->
    (* The index evaluates first, then coerces, then the array is
       consulted — so an index error beats a missing array, in both the
       staged and the dynamic evaluators. *)
    begin match emit_expr b env ~dst ~sp i with
    | Fraise -> Fraise
    | Fv (VBool _) ->
      emit b (Ifail_eval "expected an integer value");
      Fraise
    | (Fv (VInt _) | Fcode) as fi ->
      begin match fi with
      | Fv v -> emit b (Iconst (dst, v))
      | _ -> emit b (Icheck_int_eval dst)
      end;
      begin match (Env.find_array env.frame x, env.md) with
      | Some arr, Mleaf ->
        emit b (Iload_arr (dst, arr, dst, x));
        Fcode
      | Some arr, Mcond ->
        emit b (Iload_arr_cond (dst, arr, dst, x));
        Fcode
      | None, Mleaf ->
        emit b
          (Ifail_run (Printf.sprintf "%s: %s is not an array" env.owner x));
        Fraise
      | None, Mcond ->
        emit b
          (Ifail_eval (Printf.sprintf "array access %s failed" x));
        Fraise
      end
    end
  | Binop (And, l, r) ->
    (* Short-circuit: left first, and the right operand's value is NOT
       bool-checked (exactly {!Expr.eval}: [true and 3] is [3]). *)
    begin match emit_expr b env ~dst ~sp l with
    | Fraise -> Fraise
    | Fv (VBool false) -> Fv (Expr.vbool false)
    | Fv (VBool true) -> emit_expr b env ~dst ~sp r
    | Fv (VInt _) ->
      emit b (Ifail_eval "expected a boolean value");
      Fraise
    | Fcode ->
      let p = reserve b in
      begin match emit_expr b env ~dst ~sp r with
      | Fv v -> emit b (Iconst (dst, v))
      | Fcode | Fraise -> ()
      end;
      patch b p (Iand_jmp (dst, here b));
      Fcode
    end
  | Binop (Or, l, r) ->
    begin match emit_expr b env ~dst ~sp l with
    | Fraise -> Fraise
    | Fv (VBool true) -> Fv (Expr.vbool true)
    | Fv (VBool false) -> emit_expr b env ~dst ~sp r
    | Fv (VInt _) ->
      emit b (Ifail_eval "expected a boolean value");
      Fraise
    | Fcode ->
      let p = reserve b in
      begin match emit_expr b env ~dst ~sp r with
      | Fv v -> emit b (Iconst (dst, v))
      | Fcode | Fraise -> ()
      end;
      patch b p (Ior_jmp (dst, here b));
      Fcode
    end
  | Binop (op, Ref x, Const v)
    when (match Env.find_cell env.frame x with
         | Some _ -> true
         | None -> Sigtable.id_of env.signals x <> None) ->
    (* Operand-fused variable-against-constant form: the constant right
       operand emits no code, so the load + const + binop triple
       collapses to one instruction with identical evaluation order and
       failure behavior (the applier is shared). *)
    begin match Env.find_cell env.frame x with
    | Some cell -> emit b (Ibinop_cell (op, dst, cell, intern v, x))
    | None ->
      let id = Option.get (Sigtable.id_of env.signals x) in
      emit b (Ibinop_sig (op, dst, id, intern v, x))
    end;
    Fcode
  | Binop (op, l, Const vr) when (match l with Const _ -> false | _ -> true) ->
    (* Constant right operand: fold it into the binop instruction. *)
    begin match emit_expr b env ~dst ~sp l with
    | Fraise -> Fraise
    | Fv vl ->
      begin match Expr.apply_binop op vl vr with
      | v -> Fv v
      | exception Expr.Eval_error m ->
        emit b (Ifail_eval m);
        Fraise
      end
    | Fcode ->
      emit b (Ibinop_rc (op, dst, dst, intern vr));
      Fcode
    end
  | Binop (op, Const vl, r) ->
    (* Constant left operand: the right operand's code still comes
       first ({!Spec.Expr.apply_binop}'s application order), then the
       constant folds into the instruction. *)
    begin match emit_expr b env ~dst ~sp r with
    | Fraise -> Fraise
    | Fv vr ->
      begin match Expr.apply_binop op vl vr with
      | v -> Fv v
      | exception Expr.Eval_error m ->
        emit b (Ifail_eval m);
        Fraise
      end
    | Fcode ->
      emit b (Ibinop_cr (op, dst, intern vl, dst));
      Fcode
    end
  | Binop (op, l, r) ->
    (* The evaluators apply [apply_binop op (gl ()) (gr ())] — OCaml
       function application evaluates the RIGHT operand first, so the
       right operand's code (and its errors) come first here too. *)
    begin match emit_expr b env ~dst:sp ~sp:(sp + 1) r with
    | Fraise -> Fraise
    | fr ->
      begin match emit_expr b env ~dst ~sp:(sp + 1) l with
      | Fraise -> Fraise
      | Fv vl when (match fr with Fv _ -> true | _ -> false) ->
        let vr = match fr with Fv v -> v | _ -> assert false in
        begin match Expr.apply_binop op vl vr with
        | v -> Fv v
        | exception Expr.Eval_error m ->
          emit b (Ifail_eval m);
          Fraise
        end
      | fl ->
        begin match fr with
        | Fv v -> emit b (Iconst (sp, v))
        | _ -> ()
        end;
        begin match fl with
        | Fv v -> emit b (Iconst (dst, v))
        | _ -> ()
        end;
        emit b (Ibinop (op, dst, dst, sp));
        Fcode
      end
    end
  | Unop (op, a) ->
    begin match emit_expr b env ~dst ~sp a with
    | Fraise -> Fraise
    | Fv v ->
      begin match Expr.apply_unop op v with
      | v -> Fv v
      | exception Expr.Eval_error m ->
        emit b (Ifail_eval m);
        Fraise
      end
    | Fcode ->
      emit b (Iunop (op, dst, dst));
      Fcode
    end

(* ------------------------------------------------------------------ *)
(* Wait sites.                                                         *)
(* ------------------------------------------------------------------ *)

(* Sensitivity classification, exactly as the event-driven scheduler's
   park computes it per wait: each referenced name is resolved the way
   evaluation resolves it — a frame cell (or an unbound name, or an
   array base) can change without a commit and forces polling; pure
   signal reads park under the signals' wait-sets. *)
let make_site env c ~resume =
  let polled = ref false in
  let ids =
    List.filter_map
      (fun x ->
        match Env.find_cell env.frame x with
        | Some _ ->
          polled := true;
          None
        | None ->
          begin match Sigtable.id_of env.signals x with
          | Some id -> Some id
          | None ->
            polled := true;
            None
          end)
      (Expr.refs c)
  in
  {
    ws_expr = c;
    ws_frame = env.frame;
    ws_ids = ids;
    ws_polled = !polled;
    ws_resume = resume;
    ws_reg_uid = -1;
  }

(* A name that reads as a signal and nothing else — eligible for the
   fused wait forms. *)
let pure_signal env x =
  match Env.find_cell env.frame x with
  | Some _ -> None
  | None -> Sigtable.id_of env.signals x

(* ------------------------------------------------------------------ *)
(* Statements.                                                         *)
(* ------------------------------------------------------------------ *)

(* Interp.pool_eligible: a pooled frame is rebound purely by mutating
   cell contents, which is only sound when no parameter name collides
   with another parameter or with a local. *)
let pool_eligible pr =
  let locals = List.map (fun (d : var_decl) -> d.v_name) pr.prc_vars in
  let rec distinct seen = function
    | [] -> true
    | prm :: rest ->
      (not (List.mem prm.prm_name seen))
      && (not (List.mem prm.prm_name locals))
      && distinct (prm.prm_name :: seen) rest
  in
  distinct [] pr.prc_params

(* Force an expression into [dst], materializing folded constants.
   Returns false when the code is guaranteed to raise first. *)
let force b env ~dst ~sp e =
  match emit_expr b env ~dst ~sp e with
  | Fv v ->
    emit b (Iconst (dst, v));
    true
  | Fcode -> true
  | Fraise -> false

(* One step of the tree-walker = one charging instruction; see the
   charge map in {!Opcode}.  [sp] is the first free register —
   statements inside a [for] body must not clobber the loop's bound and
   counter registers, so it is threaded structurally. *)
let rec emit_stmt b env ~sp s =
  match s with
  | Skip -> emit b Icharge
  | Assign (x, e) ->
    begin match Env.find_cell env.frame x with
    | Some cell ->
      begin match emit_expr b env ~dst:sp ~sp:(sp + 1) e with
      | Fv v -> emit b (Istore_cell_const (cell, v, x))
      | Fcode -> emit b (Istore_cell (cell, sp, x))
      | Fraise -> ()
      end
    | None ->
      (* The value evaluates before the target resolves (and fails). *)
      begin match emit_expr b env ~dst:sp ~sp:(sp + 1) e with
      | Fv _ | Fcode ->
        emit b
          (Ifail_run
             (Printf.sprintf "%s: assignment to unbound variable %s"
                env.owner x))
      | Fraise -> ()
      end
    end
  | Assign_idx (x, i, e) ->
    (* Evaluation order: index (int-coerced), value, target array,
       bounds. *)
    begin match emit_expr b env ~dst:sp ~sp:(sp + 1) i with
    | Fraise -> ()
    | Fv (VBool _) -> emit b (Ifail_run (msg_not_int env i))
    | (Fv (VInt _) | Fcode) as fi ->
      begin match fi with
      | Fv v -> emit b (Iconst (sp, v))
      | _ -> emit b (Icheck_int_run (sp, msg_not_int env i))
      end;
      if force b env ~dst:(sp + 1) ~sp:(sp + 2) e then begin
        match Env.find_array env.frame x with
        | Some arr -> emit b (Istore_arr (arr, sp, sp + 1, x))
        | None ->
          emit b
            (Ifail_run
               (Printf.sprintf "%s: %s is not an array" env.owner x))
      end
    end
  | Signal_assign (sg, e) ->
    begin match emit_expr b env ~dst:sp ~sp:(sp + 1) e with
    | Fraise -> ()
    | fe ->
      begin match Sigtable.id_of env.signals sg with
      | Some id ->
        begin match fe with
        | Fv v -> emit b (Istore_sig_const (id, v, sg))
        | _ -> emit b (Istore_sig (id, sp, sg))
        end
      | None ->
        emit b
          (Ifail_run
             (Printf.sprintf "%s: signal assignment to non-signal %s"
                env.owner sg))
      end
    end
  | Emit (tag, e) ->
    begin match emit_expr b env ~dst:sp ~sp:(sp + 1) e with
    | Fv v -> emit b (Iemit_const (tag, v))
    | Fcode -> emit b (Iemit (tag, sp))
    | Fraise -> ()
    end
  | If (branches, els) ->
    (* Trunk: conditions evaluate in order; a statically-true condition
       commits to its branch, a statically-false one disappears, a
       statically-ill-typed (or raising) one ends the chain.  Dynamic
       branch bodies are placed after the trunk; the whole dispatch
       charges exactly once — at the taken [Iif_jmp] or at the else
       entry's [Icharge]. *)
    let ends = ref [] in
    let deferred = ref [] in
    let rec trunk = function
      | [] ->
        emit b Icharge;
        emit_stmts b env ~sp els;
        ends := reserve b :: !ends
      | (c, body) :: rest ->
        begin match emit_expr b env ~dst:sp ~sp:(sp + 1) c with
        | Fv (VBool true) ->
          emit b Icharge;
          emit_stmts b env ~sp body;
          ends := reserve b :: !ends
        | Fv (VBool false) -> trunk rest
        | Fv (VInt _) -> emit b (Ifail_run (msg_not_bool_cond env c))
        | Fraise -> ()
        | Fcode ->
          let p = reserve b in
          deferred := (p, msg_not_bool_cond env c, body) :: !deferred;
          trunk rest
        end
    in
    trunk branches;
    List.iter
      (fun (p, msg, body) ->
        patch b p (Iif_jmp (sp, here b, msg));
        emit_stmts b env ~sp body;
        ends := reserve b :: !ends)
      (List.rev !deferred);
    let lend = here b in
    List.iter (fun p -> patch b p (Iend_jmp lend)) !ends
  | While (c, body) ->
    emit b Icharge;
    let head = here b in
    begin match emit_expr b env ~dst:sp ~sp:(sp + 1) c with
    | Fv (VBool true) ->
      emit b Icharge;
      emit_stmts b env ~sp body;
      emit b (Iend_jmp head)
    | Fv (VBool false) -> emit b Icharge
    | Fv (VInt _) -> emit b (Ifail_run (msg_not_bool_cond env c))
    | Fraise -> ()
    | Fcode ->
      let p = reserve b in
      emit_stmts b env ~sp body;
      emit b (Iend_jmp head);
      patch b p (Iwhile_jmp (sp, here b, msg_not_bool_cond env c))
    end
  | For (ix, lo, hi, body) ->
    (* Bounds evaluate left to right, each int-coerced as it goes; the
       loop keeps them in two registers the body must not touch. *)
    let emit_bound ~dst ~scratch e =
      match emit_expr b env ~dst ~sp:scratch e with
      | Fraise -> false
      | Fv (VBool _) ->
        emit b (Ifail_run (msg_not_int env e));
        false
      | Fv v ->
        emit b (Iconst (dst, v));
        true
      | Fcode ->
        emit b (Icheck_int_run (dst, msg_not_int env e));
        true
    in
    if emit_bound ~dst:sp ~scratch:(sp + 1) lo then
      if emit_bound ~dst:(sp + 1) ~scratch:(sp + 2) hi then begin
        emit b Icharge;
        let fs =
          {
            fs_cur = sp;
            fs_hi = sp + 1;
            fs_cell = Env.find_cell env.frame ix;
            fs_err =
              Printf.sprintf "%s: for index %s is not a variable" env.owner
                ix;
            fs_exit = -1;
          }
        in
        let head = here b in
        emit b (Ifor_test fs);
        emit_stmts b env ~sp:(sp + 2) body;
        emit b (Ifor_end (sp, head));
        fs.fs_exit <- here b
      end
  | Wait_until c ->
    emit b Icharge;
    let resume = here b in
    let fused =
      match c with
      | Ref x ->
        begin match pure_signal env x with
        | Some id ->
          let site = make_site env c ~resume in
          emit b (Iwait_sig (id, site, msg_not_bool_cond env c));
          true
        | None -> false
        end
      | Binop (Eq, Ref x, Const v) | Binop (Eq, Const v, Ref x) ->
        begin match pure_signal env x with
        | Some id ->
          let site = make_site env c ~resume in
          emit b (Iwait_sig_eq (id, intern v, site));
          true
        | None -> false
        end
      | _ -> false
    in
    if not fused then begin
      match emit_expr b env ~dst:sp ~sp:(sp + 1) c with
      | Fv (VBool true) -> emit b Icharge
      | Fv (VBool false) -> emit b (Iwait_never (make_site env c ~resume))
      | Fv (VInt _) -> emit b (Ifail_run (msg_not_bool_cond env c))
      | Fraise -> ()
      | Fcode ->
        emit b (Iwait (sp, make_site env c ~resume, msg_not_bool_cond env c))
    end
  | Call (name, args) ->
    begin match
      List.find_opt (fun pr -> String.equal pr.prc_name name) env.procs
    with
    | None ->
      emit b (Ifail_run (Printf.sprintf "call to unknown procedure %s" name))
    | Some pr when List.length pr.prc_params <> List.length args ->
      emit b
        (Ifail_run
           (Printf.sprintf "%s: call to %s with wrong arity" env.owner name))
    | Some pr ->
      (* Parameters process in declaration order, argument evaluation
         interleaved with out-parameter resolution, so a failure fires
         at exactly the parameter position it would in the
         tree-walker. *)
      let closed = ref false in
      let bindings = ref [] in
      let k = ref 0 in
      List.iter2
        (fun prm arg ->
          if not !closed then begin
            let r = sp + !k in
            incr k;
            match (prm.prm_mode, arg) with
            | Mode_in, Arg_expr e ->
              if force b env ~dst:r ~sp:(r + 1) e then
                bindings := Bin (prm.prm_name, r) :: !bindings
              else closed := true
            | Mode_in, Arg_var x ->
              begin match Env.find_cell env.frame x with
              | Some cell ->
                emit b (Iload_cell (r, cell, x));
                bindings := Bin (prm.prm_name, r) :: !bindings
              | None ->
                begin match Sigtable.id_of env.signals x with
                | Some id ->
                  emit b (Iload_sig (r, id, x));
                  bindings := Bin (prm.prm_name, r) :: !bindings
                | None ->
                  emit b
                    (Ifail_run
                       (Printf.sprintf "%s: unbound argument %s" env.owner
                          x));
                  closed := true
                end
              end
            | Mode_out, Arg_var x ->
              begin match Env.find_cell env.frame x with
              | Some cell -> bindings := Bout (prm.prm_name, cell) :: !bindings
              | None ->
                emit b
                  (Ifail_run
                     (Printf.sprintf "%s: out argument %s is not a variable"
                        env.owner x));
                closed := true
              end
            | Mode_out, Arg_expr _ ->
              emit b
                (Ifail_run
                   (Printf.sprintf
                      "%s: expression passed to out parameter %s of %s"
                      env.owner prm.prm_name name));
              closed := true
          end)
        pr.prc_params args;
      if not !closed then
        emit b
          (Icall
             {
               vs_name = name;
               vs_proc = pr;
               vs_frame = env.frame;
               vs_owner = env.owner;
               vs_bindings = Array.of_list (List.rev !bindings);
               vs_pool_ok = pool_eligible pr;
               vs_pool = VPnone;
             })
    end

and emit_stmts b env ~sp stmts = List.iter (emit_stmt b env ~sp) stmts

(* ------------------------------------------------------------------ *)
(* Entry points.                                                       *)
(* ------------------------------------------------------------------ *)

let body ~owner ~frame ~signals ~procs ~epilogue stmts =
  let b = new_buf () in
  let env = { md = Mleaf; owner; frame; signals; procs } in
  emit_stmts b env ~sp:0 stmts;
  (* The body block's own pop is a step; then the machine either halts
     (leaf) or pops its activation (procedure). *)
  emit b Icharge;
  (match epilogue with `Halt -> emit b Ihalt | `Ret -> emit b Iret);
  finish b ~owner

let cond ~frame ~signals e =
  let b = new_buf () in
  let env = { md = Mcond; owner = ""; frame; signals; procs = [] } in
  begin match emit_expr b env ~dst:0 ~sp:1 e with
  | Fv v -> emit b (Iconst (0, v))
  | Fcode | Fraise -> ()
  end;
  emit b (Iyield 0);
  finish b ~owner:""
