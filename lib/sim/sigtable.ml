(** The signal store: current values plus the delta-delayed update queue.
    A signal assignment schedules the new value; {!commit_changes} applies
    all scheduled updates at once (one delta cycle) and reports what
    changed.

    Names are interned to dense integer ids at construction: the id order
    is the sorted name order, so iterating ids ascending reproduces the
    name-sorted commit order the string-keyed store had.  Values live in
    flat arrays indexed by id; the scheduled queue is a validity mask plus
    a worklist of scheduled ids, so a commit touches only the signals that
    were actually written. *)

open Spec

(** What an update intercept decides about one scheduled update (fault
    injection): let it through, lose it, or corrupt it in flight. *)
type action =
  | Pass
  | Drop
  | Rewrite of Ast.value

type t = {
  names : string array;  (** id -> name; sorted, so id order = name order *)
  ids : (string, int) Hashtbl.t;  (** name -> id *)
  initial : Ast.value array;  (** declaration-time values, for {!reset} *)
  current : Ast.value array;
  sched_val : Ast.value array;  (** valid only where [sched_mark] is set *)
  sched_mark : bool array;
  sched_q : int array;  (** first [n_sched] entries: scheduled ids, unsorted, no duplicates *)
  sched_scratch : int array;  (** commit-order staging, so a commit survives re-schedules *)
  mutable n_sched : int;
  mutable intercept : (string -> Ast.value -> action) option;
  mutable notify : (int -> unit) option;
      (** called when {!poke} changes a current value outside a commit —
          the event-driven scheduler re-arms the signal's waiters *)
}

let make (decls : Ast.sig_decl list) =
  (* Last declaration of a name wins, as Hashtbl.replace used to. *)
  let by_name = Hashtbl.create 16 in
  List.iter
    (fun (d : Ast.sig_decl) ->
      let init =
        match d.Ast.s_init with
        | Some v -> v
        | None -> Ast.default_value d.Ast.s_ty
      in
      Hashtbl.replace by_name d.Ast.s_name init)
    decls;
  let names =
    Hashtbl.fold (fun name _ acc -> name :: acc) by_name []
    |> List.sort String.compare
    |> Array.of_list
  in
  let n = Array.length names in
  let ids = Hashtbl.create (max 16 n) in
  Array.iteri (fun i name -> Hashtbl.replace ids name i) names;
  let initial = Array.map (fun name -> Hashtbl.find by_name name) names in
  {
    names;
    ids;
    initial;
    current = Array.copy initial;
    sched_val = Array.make n (Ast.VBool false);
    sched_mark = Array.make n false;
    sched_q = Array.make (max 1 n) 0;
    sched_scratch = Array.make (max 1 n) 0;
    n_sched = 0;
    intercept = None;
    notify = None;
  }

(** Rewind the store to its construction state: declaration-time values,
    empty update queue, no hooks.  Observably a fresh {!make} of the same
    declarations — the session cache uses it to reuse one store across
    runs of the same program. *)
let reset t =
  Array.blit t.initial 0 t.current 0 (Array.length t.initial);
  for k = 0 to t.n_sched - 1 do
    t.sched_mark.(t.sched_q.(k)) <- false
  done;
  t.n_sched <- 0;
  t.intercept <- None;
  t.notify <- None

let n_signals t = Array.length t.names
let id_of t name = Hashtbl.find_opt t.ids name
let name_of t id = t.names.(id)
let is_signal t name = Hashtbl.mem t.ids name

let read_id t id = t.current.(id)

let read t name =
  match Hashtbl.find t.ids name with
  | id -> Some t.current.(id)
  | exception Not_found -> None

let schedule_id t id v =
  if not t.sched_mark.(id) then begin
    t.sched_mark.(id) <- true;
    t.sched_q.(t.n_sched) <- id;
    t.n_sched <- t.n_sched + 1
  end;
  t.sched_val.(id) <- v

(** Schedule a delta-delayed update.  Returns false if the name is not a
    signal.  The last schedule of a delta wins. *)
let schedule t name v =
  match Hashtbl.find t.ids name with
  | id ->
    schedule_id t id v;
    true
  | exception Not_found -> false

let pending t = t.n_sched > 0

let set_intercept t f = t.intercept <- f
let set_notify t f = t.notify <- f

(** Force a signal's current value immediately, outside the delta-cycle
    discipline (fault injection: stuck lines, delayed re-delivery).
    Returns false if the name is not a signal.  Fires the notify hook when
    the value actually changed. *)
let poke t name v =
  match id_of t name with
  | Some id ->
    if not (Ast.equal_value t.current.(id) v) then begin
      t.current.(id) <- v;
      match t.notify with None -> () | Some f -> f id
    end;
    true
  | None -> false

(** Apply all scheduled updates in ascending id order, calling [f] on
    each id whose current value actually changed, as it commits.  The
    allocation-free form of {!commit_ids} — the event-driven kernel
    wakes waiters straight from the callback instead of materializing
    the changed-id list every delta cycle. *)
(* One scheduled update: clear the mark, run the intercept, write the
   current value, and call [f] on an actual change.  Top-level (not
   nested in {!commit_iter}) so the single-signal fast path commits
   without allocating a closure. *)
let commit_one t f id =
  t.sched_mark.(id) <- false;
  let v = t.sched_val.(id) in
  let verdict =
    match t.intercept with None -> Pass | Some g -> g t.names.(id) v
  in
  match verdict with
  | Drop -> ()
  | Pass | Rewrite _ ->
    let v = match verdict with Rewrite v' -> v' | Pass | Drop -> v in
    if not (Ast.equal_value t.current.(id) v) then begin
      t.current.(id) <- v;
      f id
    end
    else t.current.(id) <- v

let commit_iter t f =
  (* Ascending id order = sorted name order.  Most deltas schedule one
     signal (a handshake edge) — no ordering needed at all; a handful
     insertion-sorts the short worklist in place; a wide delta flips to
     the mask scan, which is linear in the signal count rather than
     n log n.  The ids commit from [sched_scratch], and the live queue
     is emptied first, so an intercept or callback that schedules new
     updates mid-commit lands them cleanly in the next delta. *)
  let n = t.n_sched in
  if n = 0 then ()
  else if n = 1 then begin
    t.n_sched <- 0;
    commit_one t f t.sched_q.(0)
  end
  else begin
    let q = t.sched_q and sc = t.sched_scratch in
    if n <= 8 then begin
      Array.blit q 0 sc 0 n;
      for i = 1 to n - 1 do
        let x = sc.(i) in
        let j = ref (i - 1) in
        while !j >= 0 && sc.(!j) > x do
          sc.(!j + 1) <- sc.(!j);
          decr j
        done;
        sc.(!j + 1) <- x
      done
    end
    else begin
      let k = ref 0 in
      for id = 0 to Array.length t.names - 1 do
        if t.sched_mark.(id) then begin
          sc.(!k) <- id;
          incr k
        end
      done
    end;
    t.n_sched <- 0;
    for k = 0 to n - 1 do
      commit_one t f sc.(k)
    done
  end

let commit_ids t =
  let changed = ref [] in
  commit_iter t (fun id -> changed := id :: !changed);
  List.rev !changed

(** Apply all scheduled updates; returns the signals whose value actually
    changed (sorted by name). *)
let commit_changes t =
  List.map (fun id -> (t.names.(id), t.current.(id))) (commit_ids t)

(** Apply all scheduled updates; true iff any signal value changed. *)
let commit t = commit_ids t <> []

(** Current value of every signal, sorted by name — id order and name
    order coincide, so this is a single pass over the value array. *)
let snapshot t =
  Array.to_list (Array.mapi (fun id v -> (t.names.(id), v)) t.current)
