(** The signal store: current values plus the delta-delayed update queue.
    A signal assignment schedules the new value; {!commit} applies all
    scheduled updates at once (one delta cycle) and reports whether
    anything changed. *)

open Spec

(** What an update intercept decides about one scheduled update (fault
    injection): let it through, lose it, or corrupt it in flight. *)
type action =
  | Pass
  | Drop
  | Rewrite of Ast.value

type t = {
  current : (string, Ast.value) Hashtbl.t;
  scheduled : (string, Ast.value) Hashtbl.t;
  mutable intercept : (string -> Ast.value -> action) option;
}

let make (decls : Ast.sig_decl list) =
  let t =
    {
      current = Hashtbl.create 16;
      scheduled = Hashtbl.create 16;
      intercept = None;
    }
  in
  List.iter
    (fun (d : Ast.sig_decl) ->
      let init =
        match d.Ast.s_init with
        | Some v -> v
        | None -> Ast.default_value d.Ast.s_ty
      in
      Hashtbl.replace t.current d.Ast.s_name init)
    decls;
  t

let is_signal t name = Hashtbl.mem t.current name
let read t name = Hashtbl.find_opt t.current name

(** Schedule a delta-delayed update.  Returns false if the name is not a
    signal. *)
let schedule t name v =
  if is_signal t name then begin
    Hashtbl.replace t.scheduled name v;
    true
  end
  else false

let pending t = Hashtbl.length t.scheduled > 0

let set_intercept t f = t.intercept <- f

(** Force a signal's current value immediately, outside the delta-cycle
    discipline (fault injection: stuck lines, delayed re-delivery).
    Returns false if the name is not a signal. *)
let poke t name v =
  if is_signal t name then begin
    Hashtbl.replace t.current name v;
    true
  end
  else false

(** Apply all scheduled updates; returns the signals whose value actually
    changed (sorted by name, for determinism).  An installed intercept
    sees every scheduled update — in sorted name order, so injection
    campaigns are deterministic — and may drop or rewrite it. *)
let commit_changes t =
  let changed = ref [] in
  let updates =
    Hashtbl.fold (fun name v acc -> (name, v) :: acc) t.scheduled []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  List.iter
    (fun (name, v) ->
      let verdict =
        match t.intercept with None -> Pass | Some f -> f name v
      in
      match verdict with
      | Drop -> ()
      | Pass | Rewrite _ ->
        let v = match verdict with Rewrite v' -> v' | Pass | Drop -> v in
        begin match Hashtbl.find_opt t.current name with
        | Some old when old = v -> ()
        | Some _ | None -> changed := (name, v) :: !changed
        end;
        Hashtbl.replace t.current name v)
    updates;
  Hashtbl.reset t.scheduled;
  List.sort (fun (a, _) (b, _) -> String.compare a b) !changed

(** Apply all scheduled updates; true iff any signal value changed. *)
let commit t = commit_changes t <> []

let snapshot t =
  Hashtbl.fold (fun name v acc -> (name, v) :: acc) t.current []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
