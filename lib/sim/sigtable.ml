(** The signal store: current values plus the delta-delayed update queue.
    A signal assignment schedules the new value; {!commit_changes} applies
    all scheduled updates at once (one delta cycle) and reports what
    changed.

    Names are interned to dense integer ids at construction: the id order
    is the sorted name order, so iterating ids ascending reproduces the
    name-sorted commit order the string-keyed store had.  Values live in
    flat arrays indexed by id; the scheduled queue is a validity mask plus
    a worklist of scheduled ids, so a commit touches only the signals that
    were actually written. *)

open Spec

(** What an update intercept decides about one scheduled update (fault
    injection): let it through, lose it, or corrupt it in flight. *)
type action =
  | Pass
  | Drop
  | Rewrite of Ast.value

type t = {
  names : string array;  (** id -> name; sorted, so id order = name order *)
  ids : (string, int) Hashtbl.t;  (** name -> id *)
  initial : Ast.value array;  (** declaration-time values, for {!reset} *)
  current : Ast.value array;
  sched_val : Ast.value array;  (** valid only where [sched_mark] is set *)
  sched_mark : bool array;
  mutable sched_ids : int list;  (** scheduled ids, unsorted, no duplicates *)
  mutable n_sched : int;
  mutable intercept : (string -> Ast.value -> action) option;
  mutable notify : (int -> unit) option;
      (** called when {!poke} changes a current value outside a commit —
          the event-driven scheduler re-arms the signal's waiters *)
}

let make (decls : Ast.sig_decl list) =
  (* Last declaration of a name wins, as Hashtbl.replace used to. *)
  let by_name = Hashtbl.create 16 in
  List.iter
    (fun (d : Ast.sig_decl) ->
      let init =
        match d.Ast.s_init with
        | Some v -> v
        | None -> Ast.default_value d.Ast.s_ty
      in
      Hashtbl.replace by_name d.Ast.s_name init)
    decls;
  let names =
    Hashtbl.fold (fun name _ acc -> name :: acc) by_name []
    |> List.sort String.compare
    |> Array.of_list
  in
  let n = Array.length names in
  let ids = Hashtbl.create (max 16 n) in
  Array.iteri (fun i name -> Hashtbl.replace ids name i) names;
  let initial = Array.map (fun name -> Hashtbl.find by_name name) names in
  {
    names;
    ids;
    initial;
    current = Array.copy initial;
    sched_val = Array.make n (Ast.VBool false);
    sched_mark = Array.make n false;
    sched_ids = [];
    n_sched = 0;
    intercept = None;
    notify = None;
  }

(** Rewind the store to its construction state: declaration-time values,
    empty update queue, no hooks.  Observably a fresh {!make} of the same
    declarations — the session cache uses it to reuse one store across
    runs of the same program. *)
let reset t =
  Array.blit t.initial 0 t.current 0 (Array.length t.initial);
  List.iter (fun id -> t.sched_mark.(id) <- false) t.sched_ids;
  t.sched_ids <- [];
  t.n_sched <- 0;
  t.intercept <- None;
  t.notify <- None

let n_signals t = Array.length t.names
let id_of t name = Hashtbl.find_opt t.ids name
let name_of t id = t.names.(id)
let is_signal t name = Hashtbl.mem t.ids name

let read_id t id = t.current.(id)

let read t name =
  match Hashtbl.find t.ids name with
  | id -> Some t.current.(id)
  | exception Not_found -> None

let schedule_id t id v =
  if not t.sched_mark.(id) then begin
    t.sched_mark.(id) <- true;
    t.sched_ids <- id :: t.sched_ids;
    t.n_sched <- t.n_sched + 1
  end;
  t.sched_val.(id) <- v

(** Schedule a delta-delayed update.  Returns false if the name is not a
    signal.  The last schedule of a delta wins. *)
let schedule t name v =
  match Hashtbl.find t.ids name with
  | id ->
    schedule_id t id v;
    true
  | exception Not_found -> false

let pending t = t.n_sched > 0

let set_intercept t f = t.intercept <- f
let set_notify t f = t.notify <- f

(** Force a signal's current value immediately, outside the delta-cycle
    discipline (fault injection: stuck lines, delayed re-delivery).
    Returns false if the name is not a signal.  Fires the notify hook when
    the value actually changed. *)
let poke t name v =
  match id_of t name with
  | Some id ->
    if not (Ast.equal_value t.current.(id) v) then begin
      t.current.(id) <- v;
      match t.notify with None -> () | Some f -> f id
    end;
    true
  | None -> false

(** Apply all scheduled updates in ascending id order (= sorted name
    order, for determinism).  An installed intercept sees every scheduled
    update and may drop or rewrite it.  Returns the ids whose current
    value actually changed, ascending. *)
let commit_ids t =
  (* Ascending id order = sorted name order.  A typical delta schedules a
     handful of signals: sorting that short worklist beats scanning the
     whole validity mask; a wide delta flips to the mask scan, which is
     linear in the signal count rather than n log n. *)
  if t.n_sched = 0 then []
  else begin
    let ids =
      if t.n_sched <= 8 then
        List.sort (fun (a : int) b -> Stdlib.compare a b) t.sched_ids
      else begin
        let acc = ref [] in
        for id = Array.length t.names - 1 downto 0 do
          if t.sched_mark.(id) then acc := id :: !acc
        done;
        !acc
      end
    in
    t.sched_ids <- [];
    t.n_sched <- 0;
    let changed = ref [] in
    List.iter
      (fun id ->
        t.sched_mark.(id) <- false;
        let v = t.sched_val.(id) in
        let verdict =
          match t.intercept with None -> Pass | Some f -> f t.names.(id) v
        in
        match verdict with
        | Drop -> ()
        | Pass | Rewrite _ ->
          let v = match verdict with Rewrite v' -> v' | Pass | Drop -> v in
          if not (Ast.equal_value t.current.(id) v) then
            changed := id :: !changed;
          t.current.(id) <- v)
      ids;
    List.rev !changed
  end

(** Apply all scheduled updates; returns the signals whose value actually
    changed (sorted by name). *)
let commit_changes t =
  List.map (fun id -> (t.names.(id), t.current.(id))) (commit_ids t)

(** Apply all scheduled updates; true iff any signal value changed. *)
let commit t = commit_ids t <> []

(** Current value of every signal, sorted by name — id order and name
    order coincide, so this is a single pass over the value array. *)
let snapshot t =
  Array.to_list (Array.mapi (fun id v -> (t.names.(id), v)) t.current)
