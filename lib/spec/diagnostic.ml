(** Structured analysis diagnostics.

    Every static check in the code base — the type checker, the
    refinement invariant checks and the lint passes — reports its
    findings as values of {!t}: a stable machine-readable code
    ([RACE001], [PROTO002], ...), a severity, the pass that produced
    it, a behavior path locating the finding in the hierarchy, and a
    human-readable message.  Diagnostics render both as one-line text
    and as JSON, and sort by (severity, code, path, location) so that
    reported lists are stable across runs. *)

type severity = Info | Warning | Error

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2
let severity_name = function Error -> "error" | Warning -> "warning" | Info -> "info"

let severity_of_string = function
  | "error" -> Some Error
  | "warning" -> Some Warning
  | "info" -> Some Info
  | _ -> None

type t = {
  d_code : string;  (** stable code, e.g. ["RACE001"] *)
  d_severity : severity;
  d_pass : string;  (** producing pass or checker, e.g. ["race"] *)
  d_path : string list;
      (** behavior path from the top (or ["procedure f"]); [[]] when the
          finding is program-wide *)
  d_loc : string;  (** offending declaration / statement / expression, or "" *)
  d_message : string;
}

let make ~code ~severity ~pass ?(path = []) ?(loc = "") message =
  { d_code = code; d_severity = severity; d_pass = pass;
    d_path = path; d_loc = loc; d_message = message }

let makef ~code ~severity ~pass ?path ?loc fmt =
  Printf.ksprintf (fun s -> make ~code ~severity ~pass ?path ?loc s) fmt

let compare a b =
  let c = compare (severity_rank a.d_severity) (severity_rank b.d_severity) in
  if c <> 0 then c
  else
    let c = String.compare a.d_code b.d_code in
    if c <> 0 then c
    else
      let c = compare a.d_path b.d_path in
      if c <> 0 then c
      else
        let c = String.compare a.d_loc b.d_loc in
        if c <> 0 then c else String.compare a.d_message b.d_message

let sort ds = List.sort_uniq compare ds

let path_string d = String.concat "/" d.d_path

let to_string d =
  let buf = Buffer.create 96 in
  Buffer.add_string buf (severity_name d.d_severity);
  Buffer.add_string buf "[";
  Buffer.add_string buf d.d_code;
  Buffer.add_string buf "] ";
  if d.d_path <> [] then begin
    Buffer.add_string buf (path_string d);
    Buffer.add_string buf ": "
  end;
  Buffer.add_string buf d.d_message;
  if d.d_loc <> "" then begin
    Buffer.add_string buf " (at ";
    Buffer.add_string buf d.d_loc;
    Buffer.add_string buf ")"
  end;
  Buffer.contents buf

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json d =
  Printf.sprintf
    "{\"code\":\"%s\",\"severity\":\"%s\",\"pass\":\"%s\",\"path\":[%s],\
     \"loc\":\"%s\",\"message\":\"%s\"}"
    (json_escape d.d_code)
    (severity_name d.d_severity)
    (json_escape d.d_pass)
    (String.concat ","
       (List.map (fun p -> "\"" ^ json_escape p ^ "\"") d.d_path))
    (json_escape d.d_loc)
    (json_escape d.d_message)

let count sev ds =
  List.length (List.filter (fun d -> d.d_severity = sev) ds)

let errors ds = List.filter (fun d -> d.d_severity = Error) ds
let warnings ds = List.filter (fun d -> d.d_severity = Warning) ds
let has_errors ds = List.exists (fun d -> d.d_severity = Error) ds

let at_least sev ds =
  List.filter (fun d -> severity_rank d.d_severity <= severity_rank sev) ds
