(** Static type checking of specifications.

    The language has two type families: booleans and sized integers.
    Widths are implementation hints for bus sizing, so any integer width
    is compatible with any other; booleans and integers never mix.  The
    checker validates expressions, statements, TOC conditions and
    procedure calls under proper scoping, and returns every violation
    found as a {!Diagnostic.t} (codes [TYPE001]–[TYPE005]).  Refined
    outputs of {!Core.Refiner} are expected to typecheck — the test
    suite asserts it. *)

open Ast

type ty_class = Cbool | Cint | Carray

let class_of_ty = function
  | TBool -> Cbool
  | TInt _ -> Cint
  | TArray _ -> Carray

let class_name = function Cbool -> "bool" | Cint -> "int" | Carray -> "array"

let class_of_value = function VBool _ -> Cbool | VInt _ -> Cint

(* Scoped environment: name -> (type class, kind).  Shadowing = closest
   binding wins.  Signals and variables live in one namespace for
   reading; assignment statements check the kind of the innermost
   binding. *)
type kind = Kvar | Ksignal

type env = {
  bindings : (string * (ty_class * kind)) list;  (** innermost first *)
  procs : proc_decl list;
  path : string list;  (** behavior path, for diagnostic locations *)
}

let lookup env x = Option.map fst (List.assoc_opt x env.bindings)
let lookup_kind env x = Option.map snd (List.assoc_opt x env.bindings)

let bind_vars env vars =
  {
    env with
    bindings =
      List.map (fun v -> (v.v_name, (class_of_ty v.v_ty, Kvar))) vars
      @ env.bindings;
  }

type error = string

(* Diagnostic codes: TYPE001 unbound name, TYPE002 class mismatch,
   TYPE003 array misuse, TYPE004 variable/signal kind confusion,
   TYPE005 malformed procedure call. *)
let errf env ~code ?loc fmt =
  Printf.ksprintf
    (fun s ->
      Diagnostic.make ~code ~severity:Diagnostic.Error ~pass:"typecheck"
        ~path:(List.rev env.path) ?loc s)
    fmt

(* Infer the class of an expression, accumulating errors; [None] when the
   expression is too broken to classify. *)
let rec infer env errs e =
  match e with
  | Const v -> (Some (class_of_value v), errs)
  | Ref x ->
    begin match lookup env x with
    | Some Carray ->
      (None, errf env ~code:"TYPE003" ~loc:x "array %s used without an index" x :: errs)
    | Some c -> (Some c, errs)
    | None -> (None, errf env ~code:"TYPE001" ~loc:x "unbound reference %s" x :: errs)
    end
  | Index (x, i) ->
    let errs = expect env errs Cint i "array index" in
    begin match lookup env x with
    | Some Carray -> (Some Cint, errs)
    | Some c ->
      (None,
       errf env ~code:"TYPE003" ~loc:x "%s indexed but has type %s" x
         (class_name c)
       :: errs)
    | None -> (None, errf env ~code:"TYPE001" ~loc:x "unbound reference %s" x :: errs)
    end
  | Unop (Neg, a) ->
    let errs = expect env errs Cint a "operand of unary minus" in
    (Some Cint, errs)
  | Unop (Not, a) ->
    let errs = expect env errs Cbool a "operand of not" in
    (Some Cbool, errs)
  | Binop ((Add | Sub | Mul | Div | Mod), a, b) ->
    let errs = expect env errs Cint a "arithmetic operand" in
    let errs = expect env errs Cint b "arithmetic operand" in
    (Some Cint, errs)
  | Binop ((Lt | Le | Gt | Ge), a, b) ->
    let errs = expect env errs Cint a "comparison operand" in
    let errs = expect env errs Cint b "comparison operand" in
    (Some Cbool, errs)
  | Binop ((Eq | Neq), a, b) ->
    let ca, errs = infer env errs a in
    let cb, errs = infer env errs b in
    let errs =
      match (ca, cb) with
      | Some ca, Some cb when ca <> cb ->
        errf env ~code:"TYPE002" ~loc:(Expr.to_string e)
          "equality between %s and %s in %s" (class_name ca) (class_name cb)
          (Expr.to_string e)
        :: errs
      | _ -> errs
    in
    (Some Cbool, errs)
  | Binop ((And | Or), a, b) ->
    let errs = expect env errs Cbool a "logical operand" in
    let errs = expect env errs Cbool b "logical operand" in
    (Some Cbool, errs)

and expect env errs want e what =
  let got, errs = infer env errs e in
  match got with
  | Some got when got <> want ->
    errf env ~code:"TYPE002" ~loc:(Expr.to_string e)
      "%s %s has type %s, expected %s" what (Expr.to_string e)
      (class_name got) (class_name want)
    :: errs
  | Some _ | None -> errs

let check_assignable env errs ~what x e =
  match lookup env x with
  | None -> errf env ~code:"TYPE001" ~loc:x "%s to unbound name %s" what x :: errs
  | Some want ->
    let got, errs = infer env errs e in
    begin match got with
    | Some got when got <> want ->
      errf env ~code:"TYPE002" ~loc:x "%s: %s is %s but the value is %s" what x
        (class_name want) (class_name got)
      :: errs
    | Some _ | None -> errs
    end

let rec check_stmts env errs stmts = List.fold_left (check_stmt env) errs stmts

and check_stmt env errs = function
  | Skip -> errs
  | Assign (x, e) ->
    let errs =
      match lookup_kind env x with
      | Some Ksignal ->
        errf env ~code:"TYPE004" ~loc:x
          "variable assignment to signal %s (use <=)" x
        :: errs
      | Some Kvar | None -> errs
    in
    let errs =
      match lookup env x with
      | Some Carray ->
        errf env ~code:"TYPE003" ~loc:x "array %s assigned without an index" x
        :: errs
      | Some _ | None -> errs
    in
    if lookup env x = Some Carray then errs
    else check_assignable env errs ~what:"assignment" x e
  | Assign_idx (x, i, e) ->
    let errs =
      match lookup env x with
      | Some Carray -> errs
      | Some c ->
        errf env ~code:"TYPE003" ~loc:x "%s indexed but has type %s" x
          (class_name c)
        :: errs
      | None ->
        errf env ~code:"TYPE001" ~loc:x "assignment to unbound name %s" x :: errs
    in
    let errs = expect env errs Cint i "array index" in
    expect env errs Cint e "array element value"
  | Signal_assign (s, e) ->
    let errs =
      match lookup_kind env s with
      | Some Ksignal -> errs
      | Some Kvar ->
        errf env ~code:"TYPE004" ~loc:s
          "signal assignment to variable %s (use :=)" s
        :: errs
      | None -> errs  (* unbound: reported by check_assignable *)
    in
    check_assignable env errs ~what:"signal assignment" s e
  | If (branches, els) ->
    let errs =
      List.fold_left
        (fun errs (c, body) ->
          let errs = expect env errs Cbool c "if condition" in
          check_stmts env errs body)
        errs branches
    in
    check_stmts env errs els
  | While (c, body) ->
    let errs = expect env errs Cbool c "while condition" in
    check_stmts env errs body
  | For (i, lo, hi, body) ->
    let errs =
      match lookup env i with
      | Some Cint -> errs
      | Some (Cbool | Carray) ->
        errf env ~code:"TYPE002" ~loc:i "for index %s is not an integer" i
        :: errs
      | None -> errf env ~code:"TYPE001" ~loc:i "for index %s is unbound" i :: errs
    in
    let errs = expect env errs Cint lo "for lower bound" in
    let errs = expect env errs Cint hi "for upper bound" in
    check_stmts env errs body
  | Wait_until c -> expect env errs Cbool c "wait condition"
  | Call (name, args) ->
    begin match
      List.find_opt (fun pr -> String.equal pr.prc_name name) env.procs
    with
    | None ->
      errf env ~code:"TYPE005" ~loc:name "call to unknown procedure %s" name
      :: errs
    | Some pr ->
      if List.length pr.prc_params <> List.length args then
        errf env ~code:"TYPE005" ~loc:name
          "call to %s with %d arguments, expected %d" name (List.length args)
          (List.length pr.prc_params)
        :: errs
      else
        List.fold_left2
          (fun errs prm arg ->
            let want = class_of_ty prm.prm_ty in
            match (prm.prm_mode, arg) with
            | Mode_in, Arg_expr e ->
              expect env errs want e
                (Printf.sprintf "argument %s of %s" prm.prm_name name)
            | Mode_in, Arg_var x | Mode_out, Arg_var x ->
              begin match lookup env x with
              | Some got when got <> want ->
                errf env ~code:"TYPE002" ~loc:x
                  "argument %s of %s: %s is %s, expected %s" prm.prm_name name
                  x (class_name got) (class_name want)
                :: errs
              | Some _ -> errs
              | None ->
                errf env ~code:"TYPE001" ~loc:x "argument %s of %s is unbound"
                  x name
                :: errs
              end
            | Mode_out, Arg_expr _ ->
              errf env ~code:"TYPE005" ~loc:name
                "expression bound to out parameter %s of %s" prm.prm_name name
              :: errs)
          errs pr.prc_params args
    end
  | Emit (_, e) ->
    let _, errs = infer env errs e in
    errs

let rec check_behavior env errs b =
  let env = bind_vars { env with path = b.b_name :: env.path } b.b_vars in
  match b.b_body with
  | Leaf stmts -> check_stmts env errs stmts
  | Par children -> List.fold_left (check_behavior env) errs children
  | Seq arms ->
    List.fold_left
      (fun errs a ->
        let errs =
          List.fold_left
            (fun errs t ->
              match t.t_cond with
              | Some c -> expect env errs Cbool c "transition condition"
              | None -> errs)
            errs a.a_transitions
        in
        check_behavior env errs a.a_behavior)
      errs arms

let check_proc env errs pr =
  let env = { env with path = [ "procedure " ^ pr.prc_name ] } in
  let env =
    {
      env with
      bindings =
        List.map
          (fun prm -> (prm.prm_name, (class_of_ty prm.prm_ty, Kvar)))
          pr.prc_params
        @ env.bindings;
    }
  in
  let env = bind_vars env pr.prc_vars in
  List.fold_left (check_stmt env) errs pr.prc_body
  |> List.map (fun (d : Diagnostic.t) ->
         {
           d with
           Diagnostic.d_message =
             Printf.sprintf "procedure %s: %s" pr.prc_name
               d.Diagnostic.d_message;
         })

let check_decl_sites env (p : program) errs =
  (* Arrays are storage only: never signals, never parameters. *)
  let errs =
    List.fold_left
      (fun errs (sd : sig_decl) ->
        match sd.s_ty with
        | TArray _ ->
          errf env ~code:"TYPE003" ~loc:sd.s_name
            "signal %s has an array type" sd.s_name
          :: errs
        | TBool | TInt _ -> errs)
      errs p.p_signals
  in
  List.fold_left
    (fun errs pr ->
      List.fold_left
        (fun errs prm ->
          match prm.prm_ty with
          | TArray _ ->
            errf env ~code:"TYPE003" ~loc:prm.prm_name
              "parameter %s of %s has an array type" prm.prm_name pr.prc_name
            :: errs
          | TBool | TInt _ -> errs)
        errs pr.prc_params)
    errs p.p_procs

(** Typecheck a whole program; returns all violations as sorted
    diagnostics (empty = well typed).  Run {!Program.validate} first for
    name-resolution errors — this checker reports unbound names too, but
    with less context. *)
let diagnostics (p : program) : Diagnostic.t list =
  let base =
    {
      bindings =
        List.map (fun v -> (v.v_name, (class_of_ty v.v_ty, Kvar))) p.p_vars
        @ List.map
            (fun s -> (s.s_name, (class_of_ty s.s_ty, Ksignal)))
            p.p_signals;
      procs = p.p_procs;
      path = [];
    }
  in
  let errs = check_decl_sites base p [] in
  let errs =
    errs @ List.concat_map (fun pr -> check_proc base [] pr) p.p_procs
  in
  let errs = check_behavior base errs p.p_top in
  Diagnostic.sort errs

let check (p : program) : (unit, error list) result =
  match diagnostics p with
  | [] -> Ok ()
  | ds -> Error (List.map (fun d -> d.Diagnostic.d_message) ds)

let check_exn p =
  match check p with
  | Ok () -> p
  | Error errs -> invalid_arg (String.concat "; " errs)
