(** Structured analysis diagnostics.

    Shared currency of the type checker, the refinement invariant
    checks and the lint passes: a stable code, a severity, the
    producing pass, a behavior path, a location string and a message.
    Diagnostics sort by (severity, code, path, location) so reported
    lists are stable across runs, and render as one-line text or
    JSON. *)

type severity = Info | Warning | Error

val severity_rank : severity -> int
(** [Error] ranks 0 (first), then [Warning], then [Info]. *)

val severity_name : severity -> string
(** ["error"], ["warning"] or ["info"]. *)

val severity_of_string : string -> severity option

type t = {
  d_code : string;  (** stable code, e.g. ["RACE001"] *)
  d_severity : severity;
  d_pass : string;  (** producing pass or checker, e.g. ["race"] *)
  d_path : string list;
      (** behavior path from the top (or [["procedure f"]]); [[]] when
          the finding is program-wide *)
  d_loc : string;  (** offending declaration / statement / expression, or [""] *)
  d_message : string;
}

val make :
  code:string ->
  severity:severity ->
  pass:string ->
  ?path:string list ->
  ?loc:string ->
  string ->
  t

val makef :
  code:string ->
  severity:severity ->
  pass:string ->
  ?path:string list ->
  ?loc:string ->
  ('a, unit, string, t) format4 ->
  'a
(** [Printf]-style constructor. *)

val compare : t -> t -> int
(** Orders by (severity, code, path, location, message). *)

val sort : t list -> t list
(** Stable report order; also drops exact duplicates. *)

val path_string : t -> string
(** The path joined with ["/"]. *)

val to_string : t -> string
(** One line: [severity[CODE] path: message (at loc)]. *)

val to_json : t -> string
(** A JSON object with fields [code], [severity], [pass], [path],
    [loc], [message]. *)

val json_escape : string -> string
(** Escape a string for embedding in a JSON literal. *)

val count : severity -> t list -> int
val errors : t list -> t list
val warnings : t list -> t list
val has_errors : t list -> bool

val at_least : severity -> t list -> t list
(** Diagnostics whose severity is at least the given one. *)
