open Ast

let int n = Const (VInt n)
let bool b = Const (VBool b)
let tru = bool true
let fls = bool false
let ref_ x = Ref x

let binop op a b = Binop (op, a, b)
let ( + ) a b = binop Add a b
let ( - ) a b = binop Sub a b
let ( * ) a b = binop Mul a b
let ( / ) a b = binop Div a b
let ( mod ) a b = binop Mod a b
let ( = ) a b = binop Eq a b
let ( <> ) a b = binop Neq a b
let ( < ) a b = binop Lt a b
let ( <= ) a b = binop Le a b
let ( > ) a b = binop Gt a b
let ( >= ) a b = binop Ge a b
let ( && ) a b = binop And a b
let ( || ) a b = binop Or a b
let neg e = Unop (Neg, e)
let not_ e = Unop (Not, e)

exception Eval_error of string

let eval_error fmt = Format.kasprintf (fun s -> raise (Eval_error s)) fmt

let as_bool = function
  | VBool b -> b
  | VInt _ -> eval_error "expected a boolean value"

let as_int = function
  | VInt n -> n
  | VBool _ -> eval_error "expected an integer value"

(* The two boolean blocks, interned: condition evaluation is the
   simulator's hottest loop and must not allocate its result. *)
let vtrue = VBool true
let vfalse = VBool false
let vbool b = if b then vtrue else vfalse

(* Small integers likewise: loop counters and protocol data values live
   in a narrow range, and arithmetic re-boxing them was the next biggest
   allocation after booleans. *)
let vint_small = Array.init 1024 (fun n -> VInt n)

let vint n =
  if Stdlib.( && ) (Stdlib.( >= ) n 0) (Stdlib.( < ) n 1024) then
    Array.unsafe_get vint_small n
  else VInt n

let apply_binop op va vb =
  let arith f =
    vint (f (as_int va) (as_int vb))
  and cmp f =
    vbool (f (as_int va) (as_int vb))
  in
  match op with
  | Add -> arith Stdlib.( + )
  | Sub -> arith Stdlib.( - )
  | Mul -> arith Stdlib.( * )
  | Div ->
    if Stdlib.( = ) (as_int vb) 0 then eval_error "division by zero"
    else arith Stdlib.( / )
  | Mod ->
    if Stdlib.( = ) (as_int vb) 0 then eval_error "modulo by zero"
    else arith Stdlib.( mod )
  | Eq -> vbool (equal_value va vb)
  | Neq -> vbool (Stdlib.not (equal_value va vb))
  | Lt -> cmp Stdlib.( < )
  | Le -> cmp Stdlib.( <= )
  | Gt -> cmp Stdlib.( > )
  | Ge -> cmp Stdlib.( >= )
  | And -> vbool (Stdlib.( && ) (as_bool va) (as_bool vb))
  | Or -> vbool (Stdlib.( || ) (as_bool va) (as_bool vb))

let apply_unop op v =
  match op with
  | Neg -> vint (Stdlib.( - ) 0 (as_int v))
  | Not -> vbool (Stdlib.not (as_bool v))

let eval ?(lookup_idx = fun x _ -> eval_error "cannot index %s here" x)
    ~lookup =
  (* The recursion captures the lookups once instead of re-applying the
     optional argument at every node — this is the simulator's innermost
     loop, and per-node partial applications dominated its allocation.
     Partially applying [eval ~lookup_idx ~lookup] yields a reusable
     evaluator; {!Sim.Interp} caches one per process. *)
  let rec go e =
    match e with
    | Const v -> v
    | Ref x ->
      begin match lookup x with
      | Some v -> v
      | None -> eval_error "unbound reference %s" x
      end
    | Index (x, i) ->
      begin match lookup_idx x (as_int (go i)) with
      | Some v -> v
      | None -> eval_error "array access %s failed" x
      end
    | Binop (And, a, b) ->
      (* Short-circuit, so protocol guards such as [started && data = k]
         never evaluate the right operand on an idle bus. *)
      if as_bool (go a) then go b else vfalse
    | Binop (Or, a, b) ->
      if as_bool (go a) then vtrue else go b
    | Binop (op, a, b) -> apply_binop op (go a) (go b)
    | Unop (op, a) -> apply_unop op (go a)
  in
  go

let compile ?(resolve_idx = fun x -> fun _ -> eval_error "cannot index %s here" x)
    ~resolve_ref e =
  (* Stage the traversal: resolve every reference once, up front, and
     return a closure tree that only dereferences.  The thunks returned
     by [resolve_ref] may themselves raise on call — an unbound name
     under a short-circuited operand must not fail any earlier than
     {!eval} would have. *)
  let rec go e =
    match e with
    | Const v -> fun () -> v
    | Ref x -> resolve_ref x
    | Index (x, i) ->
      let gi = go i and f = resolve_idx x in
      fun () -> f (as_int (gi ()))
    | Binop (And, a, b) ->
      let ga = go a and gb = go b in
      fun () -> if as_bool (ga ()) then gb () else vfalse
    | Binop (Or, a, b) ->
      let ga = go a and gb = go b in
      fun () -> if as_bool (ga ()) then vtrue else gb ()
    | Binop (op, a, b) ->
      let ga = go a and gb = go b in
      fun () -> apply_binop op (ga ()) (gb ())
    | Unop (op, a) ->
      let ga = go a in
      fun () -> apply_unop op (ga ())
  in
  go e

let eval_const e =
  match eval ~lookup:(fun _ -> None) e with
  | v -> Some v
  | exception Eval_error _ -> None

let refs_uncached e =
  (* Deduplicated on the fly: one entry per name, first occurrence first,
     however many times the name occurs in the expression. *)
  let rec go acc = function
    | Const _ -> acc
    | Ref x -> if List.mem x acc then acc else x :: acc
    | Index (x, i) ->
      let acc = if List.mem x acc then acc else x :: acc in
      go acc i
    | Binop (_, a, b) -> go (go acc a) b
    | Unop (_, a) -> go acc a
  in
  List.rev (go [] e)

(* [refs] is on the hot path of both the simulator (sensitivity sets of
   blocked waits) and the lint passes, which call it repeatedly on the
   same physical AST nodes; memoize per node.  Keys are compared
   physically — [Hashtbl.hash] is structural, so physically equal keys
   land in the same bucket — and the table is dropped wholesale when it
   grows past a bound, so it cannot leak across many programs.  The memo
   is domain-local: the explore sweeps run simulations on a domain pool,
   and a shared table would be a data race. *)
module Phys_tbl = Hashtbl.Make (struct
  type t = expr

  let equal = ( == )
  let hash = Hashtbl.hash
end)

let refs_memo_key : string list Phys_tbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Phys_tbl.create 1024)

let refs_memo_limit = 65_536

let refs e =
  match e with
  | Const _ -> []
  | Ref x -> [ x ]
  | Index _ | Binop _ | Unop _ ->
    let refs_memo = Domain.DLS.get refs_memo_key in
    begin match Phys_tbl.find_opt refs_memo e with
    | Some names -> names
    | None ->
      if Stdlib.( >= ) (Phys_tbl.length refs_memo) refs_memo_limit then
        Phys_tbl.reset refs_memo;
      let names = refs_uncached e in
      Phys_tbl.replace refs_memo e names;
      names
    end

let rec rename f = function
  | Const v -> Const v
  | Ref x -> Ref (f x)
  | Index (x, i) -> Index (f x, rename f i)
  | Binop (op, a, b) -> Binop (op, rename f a, rename f b)
  | Unop (op, a) -> Unop (op, rename f a)

let rec subst x r = function
  | Const v -> Const v
  | Ref y -> if String.equal x y then r else Ref y
  | Index (y, i) -> Index (y, subst x r i)
  | Binop (op, a, b) -> Binop (op, subst x r a, subst x r b)
  | Unop (op, a) -> Unop (op, subst x r a)

let rec size = function
  | Const _ | Ref _ -> 1
  | Index (_, i) -> Stdlib.( + ) 1 (size i)
  | Binop (_, a, b) -> Stdlib.( + ) (Stdlib.( + ) 1 (size a)) (size b)
  | Unop (_, a) -> Stdlib.( + ) 1 (size a)

(* Precedence levels, loosest binding first: or(1) and(2) cmp(3) add(4)
   mul(5) unary(6) atom(7). *)
let prec_of_binop = function
  | Or -> 1
  | And -> 2
  | Eq | Neq | Lt | Le | Gt | Ge -> 3
  | Add | Sub -> 4
  | Mul | Div | Mod -> 5

let binop_symbol = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Mod -> "%"
  | Eq -> "=" | Neq -> "/=" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="
  | And -> "and" | Or -> "or"

let pp_value ppf = function
  | VBool true -> Format.pp_print_string ppf "true"
  | VBool false -> Format.pp_print_string ppf "false"
  | VInt n -> Format.pp_print_int ppf n

let pp ppf e =
  let open Format in
  let rec go ctx ppf e =
    match e with
    | Const v -> pp_value ppf v
    | Ref x -> pp_print_string ppf x
    | Index (x, i) -> fprintf ppf "%s[%a]" x (go 0) i
    | Unop (op, a) ->
      (* The operand prints at level 7 so a nested unary parenthesizes:
         [neg (neg x)] must not print as [--x], which would lex as a
         comment. *)
      let s = match op with Neg -> "-" | Not -> "not " in
      if Stdlib.( > ) ctx 6 then fprintf ppf "(%s%a)" s (go 7) a
      else fprintf ppf "%s%a" s (go 7) a
    | Binop (op, a, b) ->
      let p = prec_of_binop op in
      (* Arithmetic and logical operators are left associative (left child
         at [p], right at [p+1]); comparisons are non-associative, so both
         children parenthesize nested comparisons. *)
      let lctx =
        match op with
        | Eq | Neq | Lt | Le | Gt | Ge -> Stdlib.( + ) p 1
        | Add | Sub | Mul | Div | Mod | And | Or -> p
      in
      let body ppf () =
        fprintf ppf "%a %s %a" (go lctx) a (binop_symbol op)
          (go (Stdlib.( + ) p 1)) b
      in
      if Stdlib.( > ) ctx p then fprintf ppf "(%a)" body ()
      else body ppf ()
  in
  go 0 ppf e

let to_string e = Format.asprintf "%a" pp e
