(** Abstract syntax of the SpecCharts-like specification language.

    The language follows the structure described in the paper: a program is
    a hierarchy of behaviors.  A behavior is either a {e leaf} (a list of
    VHDL-style sequential statements), a {e sequential} composition of
    sub-behaviors connected by transition-on-completion (TOC) arcs, or a
    {e parallel} composition of concurrently executing sub-behaviors.
    Programs also declare variables (storage, partitionable objects),
    signals (wires, introduced by refinement for buses and handshakes) and
    procedures (used to encapsulate bus protocols). *)

(** Value types.  [TInt w] is a [w]-bit integer; the width only matters for
    bus sizing and transfer-rate estimation, runtime arithmetic is plain
    [int]. *)
type ty =
  | TBool
  | TInt of int
  | TArray of int * int
      (** [TArray (width, size)]: an array of [size] integers of [width]
          bits.  Arrays are storage, not wires: only variables (never
          signals, parameters or expressions) may carry an array type. *)

(** Runtime constants. *)
type value =
  | VBool of bool
  | VInt of int

type binop =
  | Add | Sub | Mul | Div | Mod
  | Eq | Neq | Lt | Le | Gt | Ge
  | And | Or

type unop =
  | Neg
  | Not

(** Expressions.  [Ref] reads a variable or a signal; which one it is, is
    resolved by scoping (see {!Analysis}). *)
type expr =
  | Const of value
  | Ref of string
  | Index of string * expr
      (** [x[e]] — read one element of an array variable. *)
  | Binop of binop * expr * expr
  | Unop of unop * expr

(** A variable declaration.  Variables declared at program level are the
    partitionable data objects of the paper; variables declared inside a
    behavior are local scratch storage. *)
type var_decl = {
  v_name : string;
  v_ty : ty;
  v_init : value option;
}

(** A signal declaration.  Signals are global wires with delta-delay
    assignment semantics; refinement introduces them for buses and for
    [B_start]/[B_done] handshakes. *)
type sig_decl = {
  s_name : string;
  s_ty : ty;
  s_init : value option;
}

type param_mode =
  | Mode_in
  | Mode_out

type param = {
  prm_name : string;
  prm_mode : param_mode;
  prm_ty : ty;
}

(** Procedure call arguments: [Arg_expr] for [in] parameters, [Arg_var]
    (a variable name, passed by reference) for [out] parameters. *)
type arg =
  | Arg_expr of expr
  | Arg_var of string

(** VHDL-style sequential statements. *)
type stmt =
  | Assign of string * expr
      (** [x := e] — immediate variable assignment. *)
  | Assign_idx of string * expr * expr
      (** [x[i] := e] — immediate assignment to one array element. *)
  | Signal_assign of string * expr
      (** [s <= e] — signal assignment, takes effect at the next delta. *)
  | If of (expr * stmt list) list * stmt list
      (** [if c1 then .. elsif c2 then .. else .. end if]; the list holds
          the [if]/[elsif] branches in order, the second component is the
          [else] branch (possibly empty). *)
  | While of expr * stmt list
  | For of string * expr * expr * stmt list
      (** [for i := lo to hi do .. end for]; [i] must be a declared
          variable; the loop body runs for [lo..hi] inclusive. *)
  | Wait_until of expr
      (** Suspend the executing process until the condition holds. *)
  | Call of string * arg list
      (** Procedure call. *)
  | Emit of string * expr
      (** [emit "tag" e] — append [(tag, value of e)] to the observable
          trace; used to compare original and refined specifications. *)
  | Skip

type proc_decl = {
  prc_name : string;
  prc_params : param list;
  prc_vars : var_decl list;
  prc_body : stmt list;
}

(** Transition-on-completion arc of a sequential composition: when the arm
    completes, the first transition whose condition holds (or whose
    condition is [None]) is taken.  If no transition fires, the enclosing
    sequential behavior completes. *)
type target =
  | Goto of string
  | Complete

type transition = {
  t_cond : expr option;
  t_target : target;
}

type behavior = {
  b_name : string;
  b_vars : var_decl list;
  b_body : body;
}

and body =
  | Leaf of stmt list
  | Seq of seq_arm list
      (** Execution starts at the first arm.  An arm with an empty
          transition list falls through to the next arm in the list (the
          last arm completes the composition). *)
  | Par of behavior list
      (** All children start together; the composition completes when all
          children have completed. *)

and seq_arm = {
  a_behavior : behavior;
  a_transitions : transition list;
}

(** A whole specification.  [p_servers] names behaviors that are perpetual
    servers (memories, arbiters, bus interfaces inserted by refinement);
    the simulator does not require them to terminate. *)
type program = {
  p_name : string;
  p_vars : var_decl list;
  p_signals : sig_decl list;
  p_procs : proc_decl list;
  p_top : behavior;
  p_servers : string list;
}

(** [ty_width t] is the bit width of [t] (1 for booleans), used by the
    transfer-rate estimator and the bus builders. *)
let ty_width = function
  | TBool -> 1
  | TInt w -> w
  | TArray (w, _) -> w

(** [default_value t] is the value a declaration of type [t] starts with
    when no initializer is given. *)
let default_value = function
  | TBool -> VBool false
  | TInt _ -> VInt 0
  | TArray _ -> VInt 0
      (** arrays initialize element-wise; declarations may give a fill
          value, which defaults to 0 *)

let equal_ty (a : ty) (b : ty) = a = b
(* Specialized — the simulator compares values on every wait-site test
   and every signal commit, and the polymorphic [=] there is a C call.
   Cached boxes ({!Expr.vbool}, small {!Expr.vint}) make the pointer
   test hit first for almost all runtime values. *)
let equal_value (a : value) (b : value) =
  a == b
  ||
  match (a, b) with
  | VInt x, VInt y -> x = y
  | VBool x, VBool y -> x = y
  | VBool _, VInt _ | VInt _, VBool _ -> false
let equal_expr (a : expr) (b : expr) = a = b
let equal_stmt (a : stmt) (b : stmt) = a = b
let equal_behavior (a : behavior) (b : behavior) = a = b
let equal_program (a : program) (b : program) = a = b
