(** Recursive-descent parser for the SpecCharts-like concrete syntax
    produced by {!Printer}. *)

open Ast

exception Parse_error of string * int
(** Message and line number. *)

(** Source lines (1-based) of every named construct, recorded as the
    program is parsed: behaviors, procedures, and variable/signal
    declarations.  The printed AST carries no positions, so this side
    table is how diagnostics recover real [file:line] locations. *)
type locations = {
  loc_behaviors : (string * int) list;
  loc_procedures : (string * int) list;
  loc_decls : (string * int) list;  (** program and behavior vars, signals *)
}

val no_locations : locations

val program_of_string : string -> (program, string) result
(** Parse a whole program.  The error string includes the line number. *)

val program_of_string_located :
  string -> (program * locations, string) result
(** {!program_of_string}, also returning the source-line table. *)

val line_of_path : locations -> string list -> int option
(** Resolve a diagnostic behavior path (see {!Diagnostic.d_path}) to a
    source line: the deepest path element with a recorded location wins.
    Elements are behavior names or ["procedure f"] markers. *)

val program_of_string_exn : string -> program
(** @raise Parse_error / Lexer.Lex_error on malformed input. *)

val expr_of_string_exn : string -> expr
(** Parse a standalone expression (used by tests and the round-trip
    property). *)

val stmts_of_string_exn : string -> stmt list
(** Parse a standalone statement list. *)
