(** Static type checking of specifications.

    Two type families: booleans and sized integers.  Widths are
    implementation hints for bus sizing, so any integer width is
    compatible with any other; booleans and integers never mix.  The
    checker validates expressions, statements, TOC conditions and
    procedure calls under proper scoping, and returns every violation
    found.  Refined outputs of the refiner are expected to typecheck —
    {!Core.Check.run} asserts it.

    Violations carry stable codes: [TYPE001] unbound name, [TYPE002]
    class mismatch, [TYPE003] array misuse, [TYPE004] variable/signal
    kind confusion, [TYPE005] malformed procedure call. *)

type error = string

val diagnostics : Ast.program -> Diagnostic.t list
(** All violations found, sorted by {!Diagnostic.compare} (empty = well
    typed).  Run {!Program.validate} first for name-resolution errors
    with better context. *)

val check : Ast.program -> (unit, error list) result
(** String-compatible shim over {!diagnostics}: the diagnostic messages
    in the same sorted order. *)

val check_exn : Ast.program -> Ast.program
(** Identity when well typed.
    @raise Invalid_argument with the concatenated messages otherwise. *)
