open Ast

exception Parse_error of string * int

type locations = {
  loc_behaviors : (string * int) list;
  loc_procedures : (string * int) list;
  loc_decls : (string * int) list;
}

let no_locations = { loc_behaviors = []; loc_procedures = []; loc_decls = [] }

type state = {
  toks : Lexer.located array;
  mutable pos : int;
  (* Source lines of every named construct, recorded as declarations are
     parsed (reverse order; reversed once at the end).  Diagnostics
     resolve their behavior paths against these to render file:line. *)
  mutable l_behaviors : (string * int) list;
  mutable l_procedures : (string * int) list;
  mutable l_decls : (string * int) list;
}

let cur st = st.toks.(st.pos)
let peek_tok st = (cur st).tok

let error st fmt =
  Printf.ksprintf (fun msg -> raise (Parse_error (msg, (cur st).lnum))) fmt

let advance st = if st.pos < Array.length st.toks - 1 then st.pos <- st.pos + 1

let expect st tok =
  if peek_tok st = tok then advance st
  else
    error st "expected %s, found %s" (Lexer.token_to_string tok)
      (Lexer.token_to_string (peek_tok st))

let expect_kw st kw = expect st (Lexer.KW kw)

let accept st tok =
  if peek_tok st = tok then begin advance st; true end else false

let accept_kw st kw = accept st (Lexer.KW kw)

let ident st =
  match peek_tok st with
  | Lexer.IDENT x -> advance st; x
  | t -> error st "expected an identifier, found %s" (Lexer.token_to_string t)

(* --- types and literals ----------------------------------------------- *)

let parse_ty st =
  if accept_kw st "bool" then TBool
  else if accept_kw st "int" then begin
    expect st Lexer.LT;
    let w =
      match peek_tok st with
      | Lexer.INT n -> advance st; n
      | t -> error st "expected a width, found %s" (Lexer.token_to_string t)
    in
    expect st Lexer.GT;
    if accept st Lexer.LBRACKET then begin
      let n =
        match peek_tok st with
        | Lexer.INT n -> advance st; n
        | t -> error st "expected an array size, found %s" (Lexer.token_to_string t)
      in
      expect st Lexer.RBRACKET;
      TArray (w, n)
    end
    else TInt w
  end
  else error st "expected a type, found %s" (Lexer.token_to_string (peek_tok st))

let parse_literal st =
  match peek_tok st with
  | Lexer.INT n -> advance st; VInt n
  | Lexer.MINUS ->
    advance st;
    begin match peek_tok st with
    | Lexer.INT n -> advance st; VInt (-n)
    | t -> error st "expected an integer, found %s" (Lexer.token_to_string t)
    end
  | Lexer.KW "true" -> advance st; VBool true
  | Lexer.KW "false" -> advance st; VBool false
  | t -> error st "expected a literal, found %s" (Lexer.token_to_string t)

(* --- expressions ------------------------------------------------------- *)

let rec parse_expr st = parse_or st

and parse_or st =
  let rec loop acc =
    if accept_kw st "or" then loop (Binop (Or, acc, parse_and st)) else acc
  in
  loop (parse_and st)

and parse_and st =
  let rec loop acc =
    if accept_kw st "and" then loop (Binop (And, acc, parse_cmp st)) else acc
  in
  loop (parse_cmp st)

and parse_cmp st =
  let lhs = parse_add st in
  let op =
    match peek_tok st with
    | Lexer.EQ -> Some Eq
    | Lexer.NEQ -> Some Neq
    | Lexer.LT -> Some Lt
    | Lexer.LE -> Some Le
    | Lexer.GT -> Some Gt
    | Lexer.GE -> Some Ge
    | _ -> None
  in
  match op with
  | None -> lhs
  | Some op ->
    advance st;
    Binop (op, lhs, parse_add st)

and parse_add st =
  let rec loop acc =
    match peek_tok st with
    | Lexer.PLUS -> advance st; loop (Binop (Add, acc, parse_mul st))
    | Lexer.MINUS -> advance st; loop (Binop (Sub, acc, parse_mul st))
    | _ -> acc
  in
  loop (parse_mul st)

and parse_mul st =
  let rec loop acc =
    match peek_tok st with
    | Lexer.STAR -> advance st; loop (Binop (Mul, acc, parse_unary st))
    | Lexer.SLASH -> advance st; loop (Binop (Div, acc, parse_unary st))
    | Lexer.PERCENT -> advance st; loop (Binop (Mod, acc, parse_unary st))
    | _ -> acc
  in
  loop (parse_unary st)

and parse_unary st =
  match peek_tok st with
  | Lexer.MINUS -> advance st; Unop (Neg, parse_unary st)
  | Lexer.KW "not" -> advance st; Unop (Not, parse_unary st)
  | _ -> parse_atom st

and parse_atom st =
  match peek_tok st with
  | Lexer.INT n -> advance st; Const (VInt n)
  | Lexer.KW "true" -> advance st; Const (VBool true)
  | Lexer.KW "false" -> advance st; Const (VBool false)
  | Lexer.IDENT x ->
    advance st;
    if accept st Lexer.LBRACKET then begin
      let i = parse_expr st in
      expect st Lexer.RBRACKET;
      Index (x, i)
    end
    else Ref x
  | Lexer.LPAREN ->
    advance st;
    let e = parse_expr st in
    expect st Lexer.RPAREN;
    e
  | t -> error st "expected an expression, found %s" (Lexer.token_to_string t)

(* --- statements -------------------------------------------------------- *)

let starts_stmt = function
  | Lexer.IDENT _ -> true
  | Lexer.KW ("if" | "while" | "for" | "wait" | "call" | "emit" | "skip") ->
    true
  | _ -> false

let rec parse_stmts st =
  let rec loop acc =
    if starts_stmt (peek_tok st) then loop (parse_stmt st :: acc)
    else List.rev acc
  in
  loop []

and parse_stmt st =
  match peek_tok st with
  | Lexer.IDENT x ->
    advance st;
    begin match peek_tok st with
    | Lexer.LBRACKET ->
      advance st;
      let i = parse_expr st in
      expect st Lexer.RBRACKET;
      expect st Lexer.ASSIGN;
      let e = parse_expr st in
      expect st Lexer.SEMI;
      Assign_idx (x, i, e)
    | Lexer.ASSIGN ->
      advance st;
      let e = parse_expr st in
      expect st Lexer.SEMI;
      Assign (x, e)
    | Lexer.LE ->
      advance st;
      let e = parse_expr st in
      expect st Lexer.SEMI;
      Signal_assign (x, e)
    | t ->
      error st "expected := or <= after %s, found %s" x
        (Lexer.token_to_string t)
    end
  | Lexer.KW "if" ->
    advance st;
    let c0 = parse_expr st in
    expect_kw st "then";
    let body0 = parse_stmts st in
    let rec elsifs acc =
      if accept_kw st "elsif" then begin
        let c = parse_expr st in
        expect_kw st "then";
        let body = parse_stmts st in
        elsifs ((c, body) :: acc)
      end
      else List.rev acc
    in
    let branches = (c0, body0) :: elsifs [] in
    let els = if accept_kw st "else" then parse_stmts st else [] in
    expect_kw st "end";
    expect_kw st "if";
    expect st Lexer.SEMI;
    If (branches, els)
  | Lexer.KW "while" ->
    advance st;
    let c = parse_expr st in
    expect_kw st "do";
    let body = parse_stmts st in
    expect_kw st "end";
    expect_kw st "while";
    expect st Lexer.SEMI;
    While (c, body)
  | Lexer.KW "for" ->
    advance st;
    let i = ident st in
    expect st Lexer.ASSIGN;
    let lo = parse_expr st in
    expect_kw st "to";
    let hi = parse_expr st in
    expect_kw st "do";
    let body = parse_stmts st in
    expect_kw st "end";
    expect_kw st "for";
    expect st Lexer.SEMI;
    For (i, lo, hi, body)
  | Lexer.KW "wait" ->
    advance st;
    expect_kw st "until";
    let c = parse_expr st in
    expect st Lexer.SEMI;
    Wait_until c
  | Lexer.KW "call" ->
    advance st;
    let name = ident st in
    expect st Lexer.LPAREN;
    let args =
      if peek_tok st = Lexer.RPAREN then []
      else begin
        let parse_arg st =
          if accept_kw st "out" then Arg_var (ident st)
          else Arg_expr (parse_expr st)
        in
        let rec loop acc =
          if accept st Lexer.COMMA then loop (parse_arg st :: acc)
          else List.rev acc
        in
        loop [ parse_arg st ]
      end
    in
    expect st Lexer.RPAREN;
    expect st Lexer.SEMI;
    Call (name, args)
  | Lexer.KW "emit" ->
    advance st;
    let tag =
      match peek_tok st with
      | Lexer.STRING s -> advance st; s
      | t -> error st "expected a string tag, found %s" (Lexer.token_to_string t)
    in
    let e = parse_expr st in
    expect st Lexer.SEMI;
    Emit (tag, e)
  | Lexer.KW "skip" ->
    advance st;
    expect st Lexer.SEMI;
    Skip
  | t -> error st "expected a statement, found %s" (Lexer.token_to_string t)

(* --- declarations ------------------------------------------------------ *)

let parse_var_decl st =
  (* "var" already consumed by the caller *)
  let lnum = (cur st).Lexer.lnum in
  let name = ident st in
  st.l_decls <- (name, lnum) :: st.l_decls;
  expect st Lexer.COLON;
  let ty = parse_ty st in
  let init = if accept st Lexer.ASSIGN then Some (parse_literal st) else None in
  expect st Lexer.SEMI;
  { v_name = name; v_ty = ty; v_init = init }

let parse_var_decls st =
  let rec loop acc =
    if accept_kw st "var" then loop (parse_var_decl st :: acc)
    else List.rev acc
  in
  loop []

let parse_signal_decl st =
  let lnum = (cur st).Lexer.lnum in
  let name = ident st in
  st.l_decls <- (name, lnum) :: st.l_decls;
  expect st Lexer.COLON;
  let ty = parse_ty st in
  let init = if accept st Lexer.ASSIGN then Some (parse_literal st) else None in
  expect st Lexer.SEMI;
  { s_name = name; s_ty = ty; s_init = init }

let parse_param st =
  let name = ident st in
  expect st Lexer.COLON;
  let mode =
    if accept_kw st "in" then Mode_in
    else if accept_kw st "out" then Mode_out
    else error st "expected in or out, found %s" (Lexer.token_to_string (peek_tok st))
  in
  let ty = parse_ty st in
  { prm_name = name; prm_mode = mode; prm_ty = ty }

let parse_proc st =
  let lnum = (cur st).Lexer.lnum in
  let name = ident st in
  st.l_procedures <- (name, lnum) :: st.l_procedures;
  expect st Lexer.LPAREN;
  let params =
    if peek_tok st = Lexer.RPAREN then []
    else begin
      let rec loop acc =
        if accept st Lexer.SEMI then loop (parse_param st :: acc)
        else List.rev acc
      in
      loop [ parse_param st ]
    end
  in
  expect st Lexer.RPAREN;
  expect_kw st "is";
  let vars = parse_var_decls st in
  expect_kw st "begin";
  let body = parse_stmts st in
  expect_kw st "end";
  expect_kw st "procedure";
  expect st Lexer.SEMI;
  { prc_name = name; prc_params = params; prc_vars = vars; prc_body = body }

(* --- behaviors ---------------------------------------------------------- *)

let rec parse_behavior st =
  let lnum = (cur st).Lexer.lnum in
  expect_kw st "behavior";
  let name = ident st in
  st.l_behaviors <- (name, lnum) :: st.l_behaviors;
  expect st Lexer.COLON;
  let kind =
    if accept_kw st "leaf" then `Leaf
    else if accept_kw st "seq" then `Seq
    else if accept_kw st "par" then `Par
    else
      error st "expected leaf, seq or par, found %s"
        (Lexer.token_to_string (peek_tok st))
  in
  expect_kw st "is";
  let vars = parse_var_decls st in
  expect_kw st "begin";
  let body =
    match kind with
    | `Leaf -> Leaf (parse_stmts st)
    | `Par ->
      let rec loop acc =
        if peek_tok st = Lexer.KW "behavior" then begin
          let b = parse_behavior st in
          expect st Lexer.SEMI;
          loop (b :: acc)
        end
        else List.rev acc
      in
      Par (loop [])
    | `Seq ->
      let rec loop acc =
        if peek_tok st = Lexer.KW "behavior" then begin
          let b = parse_behavior st in
          let transitions =
            if accept st Lexer.ARROW then parse_transitions st else []
          in
          expect st Lexer.SEMI;
          loop ({ a_behavior = b; a_transitions = transitions } :: acc)
        end
        else List.rev acc
      in
      Seq (loop [])
  in
  expect_kw st "end";
  expect_kw st "behavior";
  { b_name = name; b_vars = vars; b_body = body }

and parse_transitions st =
  let parse_transition st =
    let cond =
      if accept st Lexer.LPAREN then begin
        let c = parse_expr st in
        expect st Lexer.RPAREN;
        Some c
      end
      else None
    in
    let target =
      if accept_kw st "complete" then Complete else Goto (ident st)
    in
    { t_cond = cond; t_target = target }
  in
  let rec loop acc =
    if accept st Lexer.COMMA then loop (parse_transition st :: acc)
    else List.rev acc
  in
  loop [ parse_transition st ]

(* --- program ------------------------------------------------------------ *)

let parse_program st =
  expect_kw st "program";
  let name = ident st in
  expect_kw st "is";
  let vars = ref [] and signals = ref [] and procs = ref [] in
  let servers = ref [] in
  let rec decls () =
    if accept_kw st "var" then begin
      vars := parse_var_decl st :: !vars;
      decls ()
    end
    else if accept_kw st "signal" then begin
      signals := parse_signal_decl st :: !signals;
      decls ()
    end
    else if accept_kw st "servers" then begin
      let rec loop acc =
        if accept st Lexer.COMMA then loop (ident st :: acc) else List.rev acc
      in
      servers := !servers @ loop [ ident st ];
      expect st Lexer.SEMI;
      decls ()
    end
    else if accept_kw st "procedure" then begin
      procs := parse_proc st :: !procs;
      decls ()
    end
  in
  decls ();
  let top = parse_behavior st in
  expect_kw st "end";
  expect_kw st "program";
  expect st Lexer.EOF;
  {
    p_name = name;
    p_vars = List.rev !vars;
    p_signals = List.rev !signals;
    p_procs = List.rev !procs;
    p_top = top;
    p_servers = !servers;
  }

let state_of_string src =
  {
    toks = Array.of_list (Lexer.tokenize src);
    pos = 0;
    l_behaviors = [];
    l_procedures = [];
    l_decls = [];
  }

let locations_of st =
  {
    loc_behaviors = List.rev st.l_behaviors;
    loc_procedures = List.rev st.l_procedures;
    loc_decls = List.rev st.l_decls;
  }

let program_of_string_exn src = parse_program (state_of_string src)

let program_of_string_located src =
  match
    let st = state_of_string src in
    let p = parse_program st in
    (p, locations_of st)
  with
  | result -> Ok result
  | exception Parse_error (msg, lnum) ->
    Error (Printf.sprintf "parse error at line %d: %s" lnum msg)
  | exception Lexer.Lex_error (msg, lnum) ->
    Error (Printf.sprintf "lex error at line %d: %s" lnum msg)

let program_of_string src =
  Result.map fst (program_of_string_located src)

(* Resolve a diagnostic's behavior path to a source line: deepest path
   element with a recorded location wins — it is the most specific
   position the diagnostic names.  Elements are either behavior names or
   ["procedure f"] markers (see {!Diagnostic.d_path}). *)
let line_of_path locs path =
  let resolve element =
    match String.index_opt element ' ' with
    | Some i when String.sub element 0 i = "procedure" ->
      let name =
        String.sub element (i + 1) (String.length element - i - 1)
      in
      List.assoc_opt name locs.loc_procedures
    | _ -> List.assoc_opt element locs.loc_behaviors
  in
  List.fold_left
    (fun acc element ->
      match resolve element with Some l -> Some l | None -> acc)
    None path

let expr_of_string_exn src =
  let st = state_of_string src in
  let e = parse_expr st in
  expect st Lexer.EOF;
  e

let stmts_of_string_exn src =
  let st = state_of_string src in
  let stmts = parse_stmts st in
  expect st Lexer.EOF;
  stmts
