(** Operations on expressions: smart constructors, evaluation, traversal,
    substitution and pretty-printing. *)

open Ast

(** {1 Smart constructors} *)

val int : int -> expr
val bool : bool -> expr
val tru : expr
val fls : expr
val ref_ : string -> expr

val ( + ) : expr -> expr -> expr
val ( - ) : expr -> expr -> expr
val ( * ) : expr -> expr -> expr
val ( / ) : expr -> expr -> expr
val ( mod ) : expr -> expr -> expr
val ( = ) : expr -> expr -> expr
val ( <> ) : expr -> expr -> expr
val ( < ) : expr -> expr -> expr
val ( <= ) : expr -> expr -> expr
val ( > ) : expr -> expr -> expr
val ( >= ) : expr -> expr -> expr
val ( && ) : expr -> expr -> expr
val ( || ) : expr -> expr -> expr
val neg : expr -> expr
val not_ : expr -> expr

(** {1 Evaluation} *)

exception Eval_error of string
(** Raised on unbound references, type mismatches or division by zero. *)

val eval :
  ?lookup_idx:(string -> int -> value option) ->
  lookup:(string -> value option) ->
  expr ->
  value
(** [eval ~lookup e] evaluates [e], resolving references through [lookup]
    and array reads through [lookup_idx] (which defaults to failing).
    @raise Eval_error on unbound references or ill-typed operations. *)

val compile :
  ?resolve_idx:(string -> int -> value) ->
  resolve_ref:(string -> unit -> value) ->
  expr ->
  unit ->
  value
(** [compile ~resolve_ref e] stages [e]: every reference is resolved once
    through [resolve_ref] (which returns a read thunk), and the result is
    a closure evaluating [e] with no further name lookups.  Sound only
    while the resolutions stay valid — the simulator uses it for wait and
    loop conditions, whose frame never changes across re-evaluations.
    Short-circuit and error behavior match {!eval} exactly: a resolver
    thunk that raises does so only when its operand is actually
    demanded. *)

val vint : int -> Ast.value
(** [VInt n], interned for small [n] — structurally identical to a fresh
    [VInt n], but hot loops reuse one block. *)

val vbool : bool -> Ast.value
(** The interned [VBool] blocks. *)

val apply_binop : Ast.binop -> Ast.value -> Ast.value -> Ast.value
(** One binary operation on values, exactly as {!eval} applies it —
    including the [And]/[Or] strict forms (both operands already
    evaluated).  The bytecode backend dispatches through this so value
    interning and error messages stay shared.
    @raise Eval_error on type mismatches, division or modulo by zero. *)

val apply_unop : Ast.unop -> Ast.value -> Ast.value
(** @raise Eval_error on type mismatches. *)

val eval_const : expr -> value option
(** [eval_const e] is [Some v] when [e] contains no references and
    evaluates without error. *)

val as_bool : value -> bool
(** @raise Eval_error if the value is not a boolean. *)

val as_int : value -> int
(** @raise Eval_error if the value is not an integer. *)

(** {1 Traversal} *)

val refs : expr -> string list
(** All referenced names (including indexed array bases), in order of
    first occurrence, without duplicates.  Memoized per physical
    expression node: the simulator's sensitivity sets and the lint passes
    ask for the same node's references over and over. *)

val rename : (string -> string) -> expr -> expr
(** [rename f e] replaces every [Ref x] with [Ref (f x)]. *)

val subst : string -> expr -> expr -> expr
(** [subst x r e] replaces every [Ref x] in [e] with [r]. *)

val size : expr -> int
(** Number of AST nodes, used by the size metrics. *)

(** {1 Printing} *)

val pp : Format.formatter -> expr -> unit
(** Concrete syntax, with minimal parentheses; the output re-parses to the
    same expression. *)

val pp_value : Format.formatter -> value -> unit

val to_string : expr -> string

val binop_symbol : binop -> string
(** Concrete-syntax spelling of a binary operator. *)
