open Spec
open Spec.Ast

type options = {
  force_nonleaf : bool;
  protocol : Protocol.style;
  harden : bool;
}

let default_options =
  { force_nonleaf = false; protocol = Protocol.Four_phase; harden = false }

(* Watchdog parameters of the hardened protocol: one bus transfer
   completes within a handful of delta cycles, so 32 fruitless cycles is
   already a confident timeout; six retries of exponential backoff give a
   total patience of 32 * 63 ~ 2000 cycles, far below the default delta
   budget, so a persistent fault fail-stops long before [Step_limit]. *)
let harden_patience = 32
let harden_retries = 6

type bus_inst = {
  bi_role : Bus_plan.bus_role;
  bi_signals : Protocol.bus_signals;
  bi_requesters : (string * int) list;
  bi_arbiter : Arbiter.t option;
}

type t = {
  rf_program : program;
  rf_model : Model.t;
  rf_plan : Bus_plan.t;
  rf_buses : bus_inst list;
  rf_memories : string list;
  rf_arbiters : string list;
  rf_moved : string list;
  rf_top_home : int;
  rf_processes : (string * int) list;
      (** every concurrent process (main tree and B_NEW wrappers) with its
          partition *)
  rf_harden : Protocol.harden_cfg option;
      (** the watchdog configuration when the design was hardened *)
}

exception Refine_error of string

let refine_error fmt = Printf.ksprintf (fun s -> raise (Refine_error s)) fmt

(* A concurrent process of the refined design: the main control tree of
   the top-home component, or one B_NEW wrapper. *)
type process = {
  ps_name : string;
  ps_partition : int;
  ps_behavior : behavior;
  ps_server : bool;
}

(* The sequential regions of a behavior tree and the partitioned
   variables each accesses.  A region is a maximal Par-free subtree:
   every child of a parallel composition starts its own region (named
   after that child), because its leaves run concurrently with its
   siblings' and need their own bus grant.  TOC-condition reads belong to
   the region of the enclosing sequential composition.  Local
   declarations shadow partitioned variables for their subtree. *)
let regions_of program_vars (root : behavior) =
  let tbl = Hashtbl.create 8 in
  let order = ref [] in
  let ensure region =
    match Hashtbl.find_opt tbl region with
    | Some cell -> cell
    | None ->
      let cell = ref [] in
      Hashtbl.add tbl region cell;
      order := region :: !order;
      cell
  in
  let note region shadowed x =
    if List.mem x program_vars && not (List.mem x shadowed) then begin
      let cell = ensure region in
      if not (List.mem x !cell) then cell := x :: !cell
    end
  in
  let rec walk region shadowed b =
    let shadowed = List.map (fun v -> v.v_name) b.b_vars @ shadowed in
    ignore (ensure region);
    match b.b_body with
    | Leaf stmts ->
      List.iter (note region shadowed) (Stmt.reads stmts);
      List.iter (note region shadowed) (Stmt.writes stmts)
    | Seq arms ->
      List.iter
        (fun a ->
          List.iter
            (fun t ->
              match t.t_cond with
              | Some c -> List.iter (note region shadowed) (Expr.refs c)
              | None -> ())
            a.a_transitions;
          walk region shadowed a.a_behavior)
        arms
    | Par children -> List.iter (fun c -> walk c.b_name shadowed c) children
  in
  walk root.b_name [] root;
  List.rev_map (fun r -> (r, List.rev !(Hashtbl.find tbl r))) !order

(* Reject specifications whose user procedures touch partitioned
   variables: the procedure body is shared between call sites that may
   live on different components, so there is no single bus to route the
   access through. *)
let check_procs p =
  let program_vars = Program.var_names p in
  List.iter
    (fun pr ->
      let local_names =
        List.map (fun prm -> prm.prm_name) pr.prc_params
        @ List.map (fun v -> v.v_name) pr.prc_vars
      in
      let touched =
        List.filter
          (fun x -> List.mem x program_vars && not (List.mem x local_names))
          (Stmt.reads pr.prc_body @ Stmt.writes pr.prc_body)
      in
      match touched with
      | [] -> ()
      | x :: _ ->
        refine_error "procedure %s accesses partitioned variable %s"
          pr.prc_name x)
    p.p_procs

let refine ?(options = default_options) p g part model =
  begin match Program.validate p with
  | Ok () -> ()
  | Error msgs ->
    refine_error "input specification is invalid: %s" (String.concat "; " msgs)
  end;
  check_procs p;
  let program_vars0 = Program.var_names p in
  (* TOC conditions are re-evaluated by the home partition of their
     sequential composition (that is where the refined loader runs); when
     that differs from a variable's home, the variable must live in a
     globally reachable memory, so the bus plan is told about these extra
     readers. *)
  let is_object0 name = List.mem name g.Agraph.Access_graph.g_objects in
  let home_of_object0 name =
    match Partitioning.Partition.part_of_behavior part name with
    | Some i -> i
    | None -> refine_error "object behavior %s is not assigned" name
  in
  let extra_readers =
    let acc = ref [] in
    let rec walk shadowed b =
      let shadowed = List.map (fun v -> v.v_name) b.b_vars @ shadowed in
      begin match b.b_body with
      | Seq arms ->
        let reader =
          Control_refine.home ~is_object:is_object0 ~home_of:home_of_object0 b
        in
        begin match reader with
        | None -> ()
        | Some reader ->
          List.iter
            (fun a ->
              List.iter
                (fun t ->
                  match t.t_cond with
                  | Some c ->
                    List.iter
                      (fun x ->
                        if
                          List.mem x program_vars0
                          && not (List.mem x shadowed)
                        then acc := (x, reader) :: !acc)
                      (Expr.refs c)
                  | None -> ())
                a.a_transitions)
            arms
        end
      | Leaf _ | Par _ -> ()
      end;
      List.iter (walk shadowed) (Behavior.children b)
    in
    walk [] p.p_top;
    List.sort_uniq compare !acc
  in
  let plan = Bus_plan.build ~extra_readers model g part in
  let address = Address.build p in
  let naming = Naming.of_program p in
  let program_vars = Program.var_names p in
  let n_parts = Partitioning.Partition.n_parts part in
  let hcfg =
    if options.harden then
      Some
        {
          Protocol.hd_tick = Naming.fresh naming "wdg_tick";
          hd_patience = harden_patience;
          hd_retries = harden_retries;
        }
    else None
  in

  (* 1. Control-related refinement: distribute the behavior tree. *)
  let is_object name = List.mem name g.Agraph.Access_graph.g_objects in
  let home_of_object name =
    match Partitioning.Partition.part_of_behavior part name with
    | Some i -> i
    | None -> refine_error "object behavior %s is not assigned" name
  in
  let ctrl =
    Control_refine.run ~naming ~force_nonleaf:options.force_nonleaf
      ?harden:hcfg ~is_object ~home_of_object p.p_top
  in
  let processes =
    {
      ps_name = ctrl.Control_refine.cr_main.b_name;
      ps_partition = ctrl.Control_refine.cr_top_home;
      ps_behavior = ctrl.Control_refine.cr_main;
      ps_server = false;
    }
    :: List.map
         (fun (m : Control_refine.moved) ->
           {
             ps_name = m.Control_refine.mv_behavior.b_name;
             ps_partition = m.Control_refine.mv_partition;
             ps_behavior = m.Control_refine.mv_behavior;
             ps_server = true;
           })
         ctrl.Control_refine.cr_moved
  in

  (* 2. Which sequential region masters which bus.  Regions, not whole
     processes, are the arbitration grain: two parallel branches inside
     one component must each hold their own request/acknowledge pair. *)
  let accesses =
    List.concat_map
      (fun ps ->
        List.map
          (fun (region, vars) ->
            ( region,
              ps.ps_partition,
              List.map
                (fun v ->
                  ( v,
                    Bus_plan.bus_of_access plan ~master:ps.ps_partition
                      ~variable:v ))
                vars ))
          (regions_of program_vars ps.ps_behavior))
      processes
  in
  let masters_of role =
    List.filter_map
      (fun (region, _, vbs) ->
        if List.exists (fun (_, r) -> Bus_plan.equal_role r role) vbs then
          Some region
        else None)
      accesses
  in
  (* Model4 plumbing: partitions with outgoing remote traffic master the
     inter bus through their outbound interface; their home partitions
     serve inbound traffic. *)
  let outgoing_partitions =
    List.sort_uniq compare
      (List.concat_map
         (fun (_, partition, vbs) ->
           if
             List.exists
               (fun (_, r) ->
                 match r with
                 | Bus_plan.Chain_request _ -> true
                 | Bus_plan.Shared_global | Bus_plan.Local _
                 | Bus_plan.Dedicated _ | Bus_plan.Chain_inter -> false)
               vbs
           then [ partition ]
           else [])
         accesses)
  in
  let inbound_partitions =
    List.sort_uniq compare
      (List.concat_map
         (fun (_, _, vbs) ->
           List.filter_map
             (fun (v, r) ->
               match r with
               | Bus_plan.Chain_request _ ->
                 begin match Bus_plan.memory_of plan v with
                 | Bus_plan.Lmem h -> Some h
                 | Bus_plan.Gmem | Bus_plan.Gmem_part _ -> None
                 end
               | Bus_plan.Shared_global | Bus_plan.Local _
               | Bus_plan.Dedicated _ | Bus_plan.Chain_inter -> None)
             vbs)
         accesses)
  in
  let bif_out_name i = Printf.sprintf "BIF_out_master_%d" i in
  let inter_masters = List.map bif_out_name outgoing_partitions in

  (* 3. Instantiate buses (only those with masters) with their signals and
     arbiters. *)
  let instantiate (bus : Bus_plan.bus) =
    let role = bus.Bus_plan.bus_role in
    let masters =
      match role with
      | Bus_plan.Chain_inter -> inter_masters
      | _ -> masters_of role
    in
    if masters = [] then None
    else begin
      let label = "bus_" ^ Bus_plan.role_label role in
      let signals =
        Protocol.make_bus_signals naming ~label
          ~addr_width:address.Address.addr_width
          ~data_width:address.Address.data_width
      in
      let arbiter =
        if List.length masters >= 2 then
          Some (Arbiter.make naming ~bus_label:label ~n:(List.length masters))
        else None
      in
      Some
        {
          bi_role = role;
          bi_signals = signals;
          bi_requesters = List.mapi (fun i m -> (m, i)) masters;
          bi_arbiter = arbiter;
        }
    end
  in
  let buses = List.filter_map instantiate plan.Bus_plan.bp_buses in
  let find_bus role =
    List.find_opt (fun b -> Bus_plan.equal_role b.bi_role role) buses
  in
  let bus_exn role =
    match find_bus role with
    | Some b -> b
    | None ->
      refine_error "internal: bus %s was not instantiated"
        (Bus_plan.role_label role)
  in
  let requester_for bi name =
    match bi.bi_arbiter with
    | None -> None
    | Some arb ->
      begin match List.assoc_opt name bi.bi_requesters with
      | Some i -> Some (Arbiter.requester arb i)
      | None ->
        refine_error "internal: process %s is not a master of bus %s" name
          bi.bi_signals.Protocol.bs_label
      end
  in

  (* 4. Data-related refinement of every process. *)
  let ty_of v =
    match Program.lookup_var p v with
    | Some d -> d.v_ty
    | None -> refine_error "internal: unknown variable %s" v
  in
  let refine_process ps =
    let ctx =
      {
        Data_refine.dr_naming = naming;
        dr_is_program_var = (fun x -> List.mem x program_vars);
        dr_ty_of = ty_of;
        dr_addr_of = (fun v -> Address.address address v);
        dr_bus_of =
          (fun v ->
            let role =
              Bus_plan.bus_of_access plan ~master:ps.ps_partition ~variable:v
            in
            (bus_exn role).bi_signals);
        dr_arb_of =
          (fun ~region v ->
            let role =
              Bus_plan.bus_of_access plan ~master:ps.ps_partition ~variable:v
            in
            requester_for (bus_exn role) region);
      }
    in
    {
      ps with
      ps_behavior =
        Data_refine.refine_behavior ctx
          ~root_region:ps.ps_behavior.b_name ps.ps_behavior;
    }
  in
  let processes = List.map refine_process processes in

  (* 5. Memories.  Boolean variables are stored bus-encoded (int<1>,
     1/0), matching the integer data bus the masters use. *)
  let decl_of v =
    match Program.lookup_var p v with
    | Some d ->
      begin match d.v_ty with
      | TBool ->
        let init =
          match d.v_init with
          | Some (VBool true) -> Some (VInt 1)
          | Some (VBool false) | None -> Some (VInt 0)
          | Some (VInt _) as i -> i
        in
        { d with v_ty = TInt 1; v_init = init }
      | TInt _ | TArray _ -> d
      end
    | None -> refine_error "internal: unknown variable %s" v
  in
  let addr_of v = Address.address address v in
  let memories = ref [] in
  let add_memory b =
    memories := b :: !memories;
    b.b_name
  in
  let mem_names =
    List.filter_map
      (fun mem ->
        let vars = List.map decl_of (Bus_plan.vars_of_memory plan mem) in
        if vars = [] then None
        else
          match mem with
          | Bus_plan.Gmem ->
            let port =
              match find_bus Bus_plan.Shared_global with
              | Some bi -> [ bi.bi_signals ]
              | None -> []
            in
            Some
              (add_memory
                 (Memory_gen.memory ~style:options.protocol ?harden:hcfg
                    ~naming
                    ~name:(Naming.fresh naming "GMEM")
                    ~vars ~addr_of ~buses:port ()))
          | Bus_plan.Gmem_part gp ->
            let ports =
              List.filter_map
                (fun bi ->
                  match bi.bi_role with
                  | Bus_plan.Dedicated { mem = m; _ } when m = gp ->
                    Some bi.bi_signals
                  | _ -> None)
                buses
            in
            Some
              (add_memory
                 (Memory_gen.memory ~style:options.protocol ?harden:hcfg
                    ~naming
                    ~name:(Naming.fresh naming (Printf.sprintf "GMEM_%d" gp))
                    ~vars ~addr_of ~buses:ports ()))
          | Bus_plan.Lmem h when model = Model.Model4 ->
            (* Handled below: Model4 local memories live inside the
               per-partition memory subsystems. *)
            ignore h;
            None
          | Bus_plan.Lmem h ->
            let port =
              match find_bus (Bus_plan.Local h) with
              | Some bi -> [ bi.bi_signals ]
              | None -> []
            in
            Some
              (add_memory
                 (Memory_gen.memory ~style:options.protocol ?harden:hcfg
                    ~naming
                    ~name:(Naming.fresh naming (Printf.sprintf "LMEM_%d" h))
                    ~vars ~addr_of ~buses:port ())))
      (Bus_plan.memories plan)
  in
  let memsys_names =
    if model <> Model.Model4 then []
    else
      List.filter_map
        (fun i ->
          let vars =
            List.map decl_of (Bus_plan.vars_of_memory plan (Bus_plan.Lmem i))
          in
          let local_bus =
            Option.map (fun b -> b.bi_signals) (find_bus (Bus_plan.Local i))
          in
          let request_bus =
            Option.map
              (fun b -> b.bi_signals)
              (find_bus (Bus_plan.Chain_request i))
          in
          let inter = find_bus Bus_plan.Chain_inter in
          if vars = [] && local_bus = None && request_bus = None then None
          else begin
            let inter_requester =
              match (request_bus, inter) with
              | Some _, Some bi -> requester_for bi (bif_out_name i)
              | _ -> None
            in
            let cfg =
              {
                Bus_interface.bif_partition = i;
                bif_vars = vars;
                bif_addr_of = addr_of;
                bif_local_bus = local_bus;
                bif_request_bus = request_bus;
                bif_inter_bus = Option.map (fun b -> b.bi_signals) inter;
                bif_inter_requester = inter_requester;
                bif_serves_inbound = List.mem i inbound_partitions;
              }
            in
            Some
              (add_memory
                 (Bus_interface.memsys ~style:options.protocol ?harden:hcfg
                    ~naming cfg))
          end)
        (List.init n_parts Fun.id)
  in
  let memory_behaviors = List.rev !memories in

  (* 6. Arbiters. *)
  let arbiter_behaviors =
    List.filter_map (fun bi -> Option.map Arbiter.behavior bi.bi_arbiter) buses
  in

  (* 7. Assemble the refined program. *)
  let components =
    List.filter_map
      (fun i ->
        match List.filter (fun ps -> ps.ps_partition = i) processes with
        | [] -> None
        | [ ps ] -> Some ps.ps_behavior
        | many ->
          let name = Naming.fresh naming (Printf.sprintf "COMP_%d" i) in
          Some (Behavior.par name (List.map (fun ps -> ps.ps_behavior) many)))
      (List.init n_parts Fun.id)
  in
  let top_name = Naming.fresh naming "SYSTEM" in
  let top =
    Behavior.par top_name (components @ memory_behaviors @ arbiter_behaviors)
  in
  let bus_signal_decls =
    List.concat_map (fun bi -> Protocol.signal_decls bi.bi_signals) buses
  in
  let arb_signal_decls =
    List.concat_map
      (fun bi ->
        match bi.bi_arbiter with
        | Some arb -> Arbiter.signal_decls arb
        | None -> [])
      buses
  in
  let protocol_procs =
    List.concat_map
      (fun bi ->
        [
          Protocol.mst_send_proc ~style:options.protocol ?harden:hcfg
            bi.bi_signals;
          Protocol.mst_receive_proc ~style:options.protocol ?harden:hcfg
            bi.bi_signals;
        ])
      buses
  in
  let servers =
    p.p_servers
    @ List.filter_map (fun ps -> if ps.ps_server then Some ps.ps_name else None)
        processes
    @ mem_names @ memsys_names
    @ List.map (fun b -> b.b_name) arbiter_behaviors
  in
  let refined =
    {
      p_name = p.p_name ^ "_" ^ String.lowercase_ascii (Model.name model);
      p_vars = [];
      p_signals =
        p.p_signals @ ctrl.Control_refine.cr_signals @ bus_signal_decls
        @ arb_signal_decls
        @ (match hcfg with
          | Some h -> [ Builder.bool_signal ~init:false h.Protocol.hd_tick ]
          | None -> []);
      p_procs = p.p_procs @ protocol_procs;
      p_top = top;
      p_servers = servers;
    }
  in
  begin match Program.validate refined with
  | Ok () -> ()
  | Error msgs ->
    refine_error "refined specification is invalid (refiner bug): %s"
      (String.concat "; " msgs)
  end;
  {
    rf_program = refined;
    rf_model = model;
    rf_plan = plan;
    rf_buses = buses;
    rf_memories = mem_names @ memsys_names;
    rf_arbiters = List.map (fun b -> b.b_name) arbiter_behaviors;
    rf_moved =
      List.filter_map (fun ps -> if ps.ps_server then Some ps.ps_name else None)
        processes;
    rf_top_home = ctrl.Control_refine.cr_top_home;
    rf_processes = List.map (fun ps -> (ps.ps_name, ps.ps_partition)) processes;
    rf_harden = hcfg;
  }
