open Spec
open Spec.Ast

type moved = {
  mv_partition : int;
  mv_behavior : behavior;
  mv_original_name : string;
  mv_start : string;
  mv_done : string;
}

type result = {
  cr_top_home : int;
  cr_main : behavior;
  cr_moved : moved list;
  cr_signals : sig_decl list;
}

(* Home of a behavior: its own partition when it is an object, otherwise
   the home of its first object-bearing child.  [None] for subtrees that
   contain no object at all (they stay with their context). *)
let rec home ~is_object ~home_of b =
  if is_object b.b_name then Some (home_of b.b_name)
  else
    let rec first_child = function
      | [] -> None
      | c :: rest ->
        begin match home ~is_object ~home_of c with
        | Some h -> Some h
        | None -> first_child rest
        end
    in
    first_child (Behavior.children b)

(* The control handshake spans whole behavior-body executions, which take
   many more delta cycles than one bus transfer; the hardened watchdogs at
   this level get proportionally more patience so that fault-free long
   bodies do not trigger (harmless but noisy) spurious retries. *)
let ctrl_patience (h : Protocol.harden_cfg) = h.Protocol.hd_patience * 8

(* The B_CTRL leaf: a four-phase handshake activating the remote B_NEW.
   Hardened, each phase is a bounded watchdog loop re-driving [start]
   (catching a dropped rise/fall quickly through own-line readback). *)
let ctrl_leaf ?harden name ~start ~done_ =
  match harden with
  | None ->
    Behavior.leaf name
      [
        Builder.(start <== Expr.tru);
        Builder.wait_until Expr.(ref_ done_ = tru);
        Builder.(start <== Expr.fls);
        Builder.wait_until Expr.(ref_ done_ = fls);
      ]
  | Some h ->
    Behavior.leaf ~vars:Protocol.wdg_vars name
      ((Builder.(start <== Expr.tru)
        :: Protocol.watch h ~patience:(ctrl_patience h) ~label:start
             ~cond:Expr.(ref_ done_ = tru)
             ~bad:Expr.(ref_ start = fls)
             ~redrive:[ Builder.(start <== Expr.tru) ]
             ())
      @ (Builder.(start <== Expr.fls)
         :: Protocol.watch h ~label:start
              ~cond:Expr.(ref_ done_ = fls)
              ~bad:Expr.(ref_ start = tru)
              ~redrive:[ Builder.(start <== Expr.fls) ]
              ()))

(* The wrapper-side completion handshake: signal [done], wait for the
   controller to release [start], release [done].  Hardened, the [done]
   rise is re-asserted (never re-executing the body) while [start] stays
   high, and the fall is verified in a bounded loop. *)
let completion ?harden ~start ~done_ () =
  match harden with
  | None ->
    [
      Builder.(done_ <== Expr.tru);
      Builder.wait_until Expr.(ref_ start = fls);
      Builder.(done_ <== Expr.fls);
    ]
  | Some h ->
    (Builder.(done_ <== Expr.tru)
     :: Protocol.watch h ~label:done_
          ~cond:Expr.(ref_ start = fls)
          ~bad:Expr.(ref_ done_ = fls)
          ~redrive:[ Builder.(done_ <== Expr.tru) ]
          ())
    @ (Builder.(done_ <== Expr.fls)
       :: Protocol.watch h ~label:done_
            ~cond:Expr.(ref_ done_ = fls)
            ~redrive:[ Builder.(done_ <== Expr.fls) ]
            ())

(* Watchdog locals, avoiding accidental capture when a wrapped behavior
   already declares a same-named local. *)
let add_wdg_vars vars =
  vars
  @ List.filter
      (fun (v : var_decl) ->
        not (List.exists (fun (w : var_decl) -> w.v_name = v.v_name) vars))
      Protocol.wdg_vars

(* The leaf wrapper scheme (Figure 4b): the original statements inside a
   perpetual serve loop bracketed by the handshake.  The locals are
   re-initialized on every activation, because a fresh instance of the
   original behavior would have started from its initial values. *)
let leaf_scheme ?harden ~new_name ~start ~done_ inner =
  let stmts = match inner.b_body with Leaf s -> s | Seq _ | Par _ -> [] in
  let reinit =
    List.map
      (fun (v : var_decl) ->
        let init =
          match v.v_init with Some i -> i | None -> default_value v.v_ty
        in
        Assign (v.v_name, Const init))
      inner.b_vars
  in
  let vars =
    match harden with
    | None -> inner.b_vars
    | Some _ -> add_wdg_vars inner.b_vars
  in
  Behavior.leaf ~vars new_name
    [
      Builder.while_ Expr.tru
        (Builder.wait_until Expr.(ref_ start = tru)
         :: reinit
        @ stmts
        @ completion ?harden ~start ~done_ ());
    ]

(* The non-leaf wrapper scheme (Figure 4c): a sequential composition of a
   wait leaf, the original behavior and a completion leaf looping back. *)
let nonleaf_scheme ~naming ?harden ~new_name ~start ~done_ inner =
  let wait_name = Naming.fresh naming (inner.b_name ^ "_wait") in
  let fin_name = Naming.fresh naming (inner.b_name ^ "_fin") in
  let wait_leaf =
    Behavior.leaf wait_name [ Builder.wait_until Expr.(ref_ start = tru) ]
  in
  let fin_vars =
    match harden with None -> [] | Some _ -> Protocol.wdg_vars
  in
  let fin_leaf =
    Behavior.leaf ~vars:fin_vars fin_name
      (completion ?harden ~start ~done_ ())
  in
  Behavior.seq new_name
    [
      Behavior.arm wait_leaf;
      Behavior.arm inner;
      Behavior.arm fin_leaf ~transitions:[ Builder.goto wait_name ];
    ]

let retarget renames t =
  match t.t_target with
  | Complete -> t
  | Goto name ->
    begin match List.assoc_opt name renames with
    | Some name' -> { t with t_target = Goto name' }
    | None -> t
    end

let run ~naming ?(force_nonleaf = false) ?harden ~is_object ~home_of_object
    top =
  let signals = ref [] in
  let moved_acc = ref [] in
  let home = home ~is_object ~home_of:home_of_object in
  let rec refine_tree ctx b =
    match home b with
    | None -> descend ctx b
    | Some h when h = ctx -> descend ctx b
    | Some h ->
      let inner = descend h b in
      let start = Naming.start_signal naming b.b_name in
      let done_ = Naming.done_signal naming b.b_name in
      (* Accumulated in reverse; the final [List.rev] restores
         declaration order: start before done. *)
      signals :=
        Builder.bool_signal ~init:false done_
        :: Builder.bool_signal ~init:false start
        :: !signals;
      let ctrl_name = Naming.ctrl naming b.b_name in
      let new_name = Naming.moved naming b.b_name in
      let wrapper =
        if Behavior.is_leaf inner && not force_nonleaf then
          leaf_scheme ?harden ~new_name ~start ~done_ inner
        else nonleaf_scheme ~naming ?harden ~new_name ~start ~done_ inner
      in
      moved_acc :=
        {
          mv_partition = h;
          mv_behavior = wrapper;
          mv_original_name = b.b_name;
          mv_start = start;
          mv_done = done_;
        }
        :: !moved_acc;
      ctrl_leaf ?harden ctrl_name ~start ~done_
  (* Refine the children of a behavior that stays (or has just moved) to
     context [ctx].  Objects are atomic: their interior never splits. *)
  and descend ctx b =
    if is_object b.b_name then b
    else
      match b.b_body with
      | Leaf _ -> b
      | Par children ->
        { b with b_body = Par (List.map (refine_tree ctx) children) }
      | Seq arms ->
        let refined =
          List.map
            (fun a ->
              let b' = refine_tree ctx a.a_behavior in
              (a, b'))
            arms
        in
        let renames =
          List.filter_map
            (fun (a, b') ->
              if String.equal a.a_behavior.b_name b'.b_name then None
              else Some (a.a_behavior.b_name, b'.b_name))
            refined
        in
        let arms' =
          List.map
            (fun (a, b') ->
              {
                a_behavior = b';
                a_transitions = List.map (retarget renames) a.a_transitions;
              })
            refined
        in
        { b with b_body = Seq arms' }
  in
  let top_home = match home top with Some h -> h | None -> 0 in
  let main = descend top_home top in
  {
    cr_top_home = top_home;
    cr_main = main;
    cr_moved = List.rev !moved_acc;
    cr_signals = List.rev !signals;
  }
