(** Generation of memory-module behaviors.  A memory holds the variables
    mapped to it (with their original initial values) and serves
    read/write requests on its port buses with the slave side of the
    handshake protocol (the paper's [Memory] behavior of Figure 5c).  A
    multi-port memory (Model3) runs one serving process per port, all
    sharing the same storage.

    Hardened memories additionally keep each scalar triplicated (TMR):
    two shadow copies are refreshed on every write, and every read first
    majority-votes the primary against the shadows — a flipped primary is
    repaired in place (with an [FLT_MEMFIX_*] marker), a flipped shadow
    is silently re-synchronized, so any {e single} storage bit flip
    between accesses is survivable. *)

open Spec
open Spec.Ast

(* TMR vote-and-repair statements prepended to a hardened scalar read:
   if the primary disagrees with both shadows, the shadows (which agree
   under a single-fault assumption) are authoritative. *)
let vote_stmts bs ~addr ~store (r1, r2) =
  [
    Builder.if_
      Expr.(ref_ store = ref_ r1 || ref_ store = ref_ r2)
      []
      [
        Builder.(store <-- Expr.ref_ r1);
        Builder.emit ("FLT_MEMFIX_" ^ bs.Protocol.bs_label) (Expr.int addr);
      ];
    Builder.(r1 <-- Expr.ref_ store);
    Builder.(r2 <-- Expr.ref_ store);
  ]

(** Response branches serving every variable of [vars] (declaration
    order: read branch then write branch per variable).  A scalar is
    served at its single address; an array is served over its address
    range, the element selected by [bus_addr - base].  [shadows] maps a
    scalar to its TMR shadow pair (hardened memories only; arrays are not
    triplicated). *)
let branches_for ?style ?harden ?(shadows = []) bs ~addr_of vars =
  List.concat_map
    (fun v ->
      let addr = addr_of v.v_name in
      match v.v_ty with
      | TBool | TInt _ ->
        begin match (harden, List.assoc_opt v.v_name shadows) with
        | Some h, Some pair ->
          let read_guard =
            Expr.(ref_ bs.Protocol.bs_rd = tru && ref_ bs.Protocol.bs_addr = int addr)
          in
          let write_guard =
            Expr.(ref_ bs.Protocol.bs_wr = tru && ref_ bs.Protocol.bs_addr = int addr)
          in
          let r1, r2 = pair in
          [
            ( read_guard,
              vote_stmts bs ~addr ~store:v.v_name pair
              @ Protocol.slv_drive_data h bs (Expr.ref_ v.v_name)
              @ Protocol.slv_complete ?style ~harden:h bs );
            ( write_guard,
              [
                Builder.(v.v_name <-- Expr.ref_ bs.Protocol.bs_data);
                Builder.(r1 <-- Expr.ref_ v.v_name);
                Builder.(r2 <-- Expr.ref_ v.v_name);
              ]
              @ Protocol.slv_complete ?style ~harden:h bs );
          ]
        | _ ->
          [
            Protocol.slv_send_branch ?style ?harden bs ~addr ~var:v.v_name;
            Protocol.slv_receive_branch ?style ?harden bs ~addr ~var:v.v_name;
          ]
        end
      | TArray (_, size) ->
        let a = Ref bs.Protocol.bs_addr in
        let last = addr + size - 1 in
        let in_range = Expr.(a >= int addr && a <= int last) in
        let element = Expr.(a - int addr) in
        let drive_element =
          match harden with
          | None ->
            [ Builder.(bs.Protocol.bs_data <== Index (v.v_name, element)) ]
          | Some h -> Protocol.slv_drive_data h bs (Index (v.v_name, element))
        in
        [
          ( Expr.(ref_ bs.Protocol.bs_rd = tru && in_range),
            drive_element @ Protocol.slv_complete ?style ?harden bs );
          ( Expr.(ref_ bs.Protocol.bs_wr = tru && in_range),
            Assign_idx (v.v_name, element, Ref bs.Protocol.bs_data)
            :: Protocol.slv_complete ?style ?harden bs );
        ])
    vars

(** Allocate TMR shadow declarations for the scalars of [vars]: for every
    scalar [x], fresh [x_r1] / [x_r2] copies with the same type and
    initial value.  Returns the shadow map and the declarations to append
    to the memory's storage. *)
let make_shadows ~naming vars =
  let pairs =
    List.filter_map
      (fun v ->
        match v.v_ty with
        | TArray _ -> None
        | TBool | TInt _ ->
          let r1 = Naming.fresh naming (v.v_name ^ "_r1") in
          let r2 = Naming.fresh naming (v.v_name ^ "_r2") in
          Some (v, r1, r2))
      vars
  in
  let shadows = List.map (fun (v, r1, r2) -> (v.v_name, (r1, r2))) pairs in
  let decls =
    List.concat_map
      (fun (v, r1, r2) -> [ { v with v_name = r1 }; { v with v_name = r2 } ])
      pairs
  in
  (shadows, decls)

(** A memory behavior named [name] holding [vars] and serving the port
    buses [buses].  With no port the memory is pure storage (an empty
    leaf); with one port it is a single serving leaf; with several ports
    it is a parallel composition of per-port serving leaves sharing the
    storage.  Hardened memories get TMR shadows for their scalars and
    watchdog locals for their serving loops. *)
let memory ?style ?harden ~naming ~name ~vars ~addr_of ~buses () =
  let shadows, storage =
    match harden with
    | None -> ([], vars)
    | Some _ ->
      let shadows, decls = make_shadows ~naming vars in
      (shadows, vars @ decls)
  in
  let wdg = match harden with None -> [] | Some _ -> Protocol.wdg_vars in
  let branches bs = branches_for ?style ?harden ~shadows bs ~addr_of vars in
  match buses with
  | [] -> Behavior.leaf ~vars:storage name []
  | [ bs ] ->
    Behavior.leaf ~vars:(storage @ wdg) name
      (Protocol.slave_loop ?style ?harden bs (branches bs))
  | _ ->
    let ports =
      List.map
        (fun bs ->
          let port_name =
            Naming.fresh naming
              (Printf.sprintf "%s_port_%s" name bs.Protocol.bs_label)
          in
          Behavior.leaf ~vars:wdg port_name
            (Protocol.slave_loop ?style ?harden bs (branches bs)))
        buses
    in
    Behavior.par ~vars:storage name ports
