(** Generation of memory-module behaviors (the paper's [Memory] behavior
    of Figure 5c).  A memory holds the variables mapped to it, with their
    original initial values (booleans bus-encoded as int<1>), and serves
    read/write requests on its port buses with the slave side of the
    handshake protocol.  A multi-port memory (Model3) runs one serving
    process per port, all sharing the storage.

    Hardened memories triplicate each scalar (TMR): shadows are refreshed
    on writes and majority-voted against the primary on reads, repairing
    any single storage bit flip (an [FLT_MEMFIX_*] marker exposes the
    repair in the trace). *)

open Spec

val branches_for :
  ?style:Protocol.style ->
  ?harden:Protocol.harden_cfg ->
  ?shadows:(string * (string * string)) list ->
  Protocol.bus_signals ->
  addr_of:(string -> int) ->
  Ast.var_decl list ->
  (Ast.expr * Ast.stmt list) list
(** Read + write response branches for every variable, in declaration
    order.  [shadows] maps a scalar's name to its TMR shadow pair
    (hardened memories only). *)

val make_shadows :
  naming:Naming.t ->
  Ast.var_decl list ->
  (string * (string * string)) list * Ast.var_decl list
(** Fresh [x_r1] / [x_r2] TMR shadow declarations for every scalar:
    the shadow map plus the declarations to append to the storage. *)

val memory :
  ?style:Protocol.style ->
  ?harden:Protocol.harden_cfg ->
  naming:Naming.t ->
  name:string ->
  vars:Ast.var_decl list ->
  addr_of:(string -> int) ->
  buses:Protocol.bus_signals list ->
  unit ->
  Ast.behavior
(** No port: pure storage.  One port: a single serving leaf.  Several
    ports: a parallel composition of per-port serving leaves. *)
