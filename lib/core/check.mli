(** Structural invariant checks on a refinement result, beyond
    {!Spec.Program.validate}: no leftover top-level variables, an arbiter
    exactly when a bus has several masters, the model's bus-count bound,
    registered servers, no remaining direct accesses to partitioned
    variables outside the memories, validity and well-typedness of the
    refined output.  Exercised directly by the failure-injection tests.

    Codes: [REF001] leftover program variables, [REF002] bus-count bound
    exceeded, [REF003] unregistered or missing server, [REF004] direct
    access to a partitioned variable, [CONT001] multi-master bus without
    an arbiter, [CONT002] arbiter on a single-master bus, [NAME001]
    name-resolution failure, plus the [TYPE00x] codes of
    {!Spec.Typecheck}. *)

type violation = string

val diagnostics :
  original:Spec.Ast.program -> Refiner.t -> Spec.Diagnostic.t list
(** All violations found, sorted by {!Spec.Diagnostic.compare}
    (empty = sound refinement result). *)

val run : original:Spec.Ast.program -> Refiner.t -> (unit, violation list) result
(** String shim over {!diagnostics}: the messages in the same sorted
    (severity, code, location) order.  Any diagnostic makes the result
    [Error]. *)
