(** The top-level model-refinement procedure (paper, Sections 4–5): given
    a functional specification, its access graph, an allocation, a
    partition and a chosen implementation model, produce the refined
    implementation-model specification — functionally equivalent, with the
    emerging architecture (components, memories, buses, protocols,
    arbiters and bus interfaces) made explicit. *)

open Spec

type options = {
  force_nonleaf : bool;
      (** use the non-leaf control scheme (Figure 4c) even for leaves *)
  protocol : Protocol.style;
      (** bus handshake style: the paper's four-phase handshake of
          Figure 5d, or the faster transition-signalled two-phase
          variant *)
  harden : bool;
      (** generate the hardened protocol variant: watchdog timeouts with
          bounded retry and exponential backoff on every handshake,
          idempotent line re-driving, own-line readback self checks and
          TMR-protected memory scalars; persistent faults fail-stop
          (emitting [WDG_ABORT_*]) instead of corrupting silently *)
}

val default_options : options

type bus_inst = {
  bi_role : Bus_plan.bus_role;
  bi_signals : Protocol.bus_signals;
  bi_requesters : (string * int) list;
      (** master process name -> requester index *)
  bi_arbiter : Arbiter.t option;  (** present when >= 2 requesters *)
}

type t = {
  rf_program : Ast.program;  (** the refined specification, validated *)
  rf_model : Model.t;
  rf_plan : Bus_plan.t;
  rf_buses : bus_inst list;  (** instantiated buses, plan order *)
  rf_memories : string list;  (** generated memory behavior names *)
  rf_arbiters : string list;  (** generated arbiter behavior names *)
  rf_moved : string list;  (** generated [B_NEW] behavior names *)
  rf_top_home : int;
  rf_processes : (string * int) list;
      (** every concurrent process (the main control tree and the [B_NEW]
          wrappers) with the partition it executes on *)
  rf_harden : Protocol.harden_cfg option;
      (** the watchdog configuration when the design was hardened *)
}

exception Refine_error of string

val refine :
  ?options:options ->
  Ast.program ->
  Agraph.Access_graph.t ->
  Partitioning.Partition.t ->
  Model.t ->
  t
(** Refine [program] under the given partition and model.  The access
    graph must have been derived from the same program; the partition must
    cover all of its objects and variables.
    @raise Refine_error on untranslatable constructs (see
    {!Data_refine.Refine_error}) or an invalid input program. *)
