(** Structural invariant checks on a refinement result, beyond
    {!Spec.Program.validate}: they catch refiner bugs early and are also
    exercised directly by the failure-injection tests.

    Findings are reported as {!Spec.Diagnostic.t} values with stable
    codes ([REF001]–[REF004], [CONT001]/[CONT002], [NAME001], plus the
    [TYPE00x] codes of {!Spec.Typecheck}); {!run} is the historical
    string-list shim over {!diagnostics}. *)

open Spec

type violation = string

let diag ~code ?(severity = Diagnostic.Error) ?path ?loc pass fmt =
  Printf.ksprintf
    (fun s -> Diagnostic.make ~code ~severity ~pass ?path ?loc s)
    fmt

(* Every partitioned variable of the original program must have
   disappeared from the refined program's variable section — all storage
   now lives inside memory behaviors. *)
let check_no_program_vars (r : Refiner.t) acc =
  match r.Refiner.rf_program.Ast.p_vars with
  | [] -> acc
  | vs ->
    diag ~code:"REF001" "check"
      "refined program still declares top-level variables: %s"
      (String.concat ", " (List.map (fun v -> v.Ast.v_name) vs))
    :: acc

(* Every bus with two or more requesters must have an arbiter, and
   single-requester buses must not (paper: an arbiter is required when
   more than one behavior wants the bus). *)
let check_arbiters (r : Refiner.t) acc =
  List.fold_left
    (fun acc (bi : Refiner.bus_inst) ->
      let n = List.length bi.Refiner.bi_requesters in
      let label = bi.Refiner.bi_signals.Protocol.bs_label in
      match bi.Refiner.bi_arbiter with
      | None when n >= 2 ->
        diag ~code:"CONT001" ~loc:label "check"
          "bus %s has %d masters but no arbiter" label n
        :: acc
      | Some _ when n < 2 ->
        diag ~code:"CONT002" ~loc:label "check"
          "bus %s has %d master(s) but an arbiter" label n
        :: acc
      | _ -> acc)
    acc r.Refiner.rf_buses

(* The number of instantiated buses must respect the model's bound. *)
let check_bus_bound (r : Refiner.t) acc =
  let p = r.Refiner.rf_plan.Bus_plan.bp_parts in
  let bound = Model.max_buses r.Refiner.rf_model ~p in
  let n = List.length r.Refiner.rf_buses in
  if n > bound then
    diag ~code:"REF002" "check"
      "%s instantiates %d buses, above the model bound %d"
      (Model.name r.Refiner.rf_model) n bound
    :: acc
  else acc

(* Every generated server must exist and be registered. *)
let check_servers (r : Refiner.t) acc =
  let prog = r.Refiner.rf_program in
  List.fold_left
    (fun acc name ->
      match Program.lookup_behavior prog name with
      | Some _ ->
        if Program.is_server prog name then acc
        else
          diag ~code:"REF003" ~loc:name "check"
            "generated behavior %s is not a server" name
          :: acc
      | None ->
        diag ~code:"REF003" ~loc:name "check" "server %s does not exist" name
        :: acc)
    acc
    (r.Refiner.rf_memories @ r.Refiner.rf_arbiters @ r.Refiner.rf_moved)

(* No leaf of the refined program may still reference an original
   partitioned variable by name (they were all renamed to tmps or routed
   through protocols); memory behaviors hold the storage and are the only
   legal place for those names. *)
let check_no_direct_access (original : Ast.program) (r : Refiner.t) acc =
  let program_vars = Program.var_names original in
  let memory_scope =
    List.concat_map
      (fun m ->
        match Program.lookup_behavior r.Refiner.rf_program m with
        | Some b -> Behavior.names b
        | None -> [])
      r.Refiner.rf_memories
  in
  Behavior.fold
    (fun acc b ->
      if List.mem b.Ast.b_name memory_scope then acc
      else
        match b.Ast.b_body with
        | Ast.Leaf stmts ->
          let touched =
            List.filter
              (fun x ->
                List.mem x program_vars
                && not
                     (List.exists
                        (fun v -> String.equal v.Ast.v_name x)
                        b.Ast.b_vars))
              (Stmt.reads stmts @ Stmt.writes stmts)
          in
          List.fold_left
            (fun acc x ->
              diag ~code:"REF004" ~path:[ b.Ast.b_name ] ~loc:x "check"
                "behavior %s still accesses partitioned variable %s directly"
                b.Ast.b_name x
              :: acc)
            acc touched
        | Ast.Seq _ | Ast.Par _ -> acc)
    acc r.Refiner.rf_program.Ast.p_top

let diagnostics ~original (r : Refiner.t) : Diagnostic.t list =
  let acc = [] in
  let acc = check_no_program_vars r acc in
  let acc = check_arbiters r acc in
  let acc = check_bus_bound r acc in
  let acc = check_servers r acc in
  let acc = check_no_direct_access original r acc in
  let acc =
    match Program.validate r.Refiner.rf_program with
    | Ok () -> acc
    | Error msgs ->
      List.map (fun m -> diag ~code:"NAME001" "validate" "%s" m) msgs @ acc
  in
  let acc = Typecheck.diagnostics r.Refiner.rf_program @ acc in
  Diagnostic.sort acc

(* Sorted by (severity, code, location) via {!Diagnostic.compare}, so
   failure output is stable across runs.  Any diagnostic — including a
   warning-severity one — makes the refinement result unsound. *)
let run ~original (r : Refiner.t) : (unit, violation list) result =
  match diagnostics ~original r with
  | [] -> Ok ()
  | ds ->
    Error
      (List.map
         (fun (d : Diagnostic.t) ->
           if String.equal d.Diagnostic.d_pass "typecheck" then
             "type error: " ^ d.Diagnostic.d_message
           else d.Diagnostic.d_message)
         ds)
