(** Bus handshake protocols (paper, Figure 5d).  Each bus consists of four
    control lines ([start], [done], [rd], [wr]), an address bus and a data
    bus.  The master side is encapsulated in generated [MST_send_*] /
    [MST_receive_*] procedures; the slave side ([SLV_send] /
    [SLV_receive]) is inlined into the generated memory behaviors as
    response branches.

    Two protocol styles are provided, as the paper anticipates ("generally
    we can select different protocols to exchange data"): the four-phase
    return-to-zero handshake of Figure 5d, and a transition-signalled
    two-phase variant that roughly halves the delta cycles per transfer. *)

open Spec

type style =
  | Four_phase  (** the paper's Figure 5d handshake *)
  | Two_phase
      (** [start]/[done] as parity toggles, idle when equal; two signal
          edges per transfer *)

val style_name : style -> string

type bus_signals = {
  bs_label : string;  (** bus label, e.g. [bus_global] *)
  bs_start : string;
  bs_done : string;
  bs_rd : string;
  bs_wr : string;
  bs_addr : string;
  bs_data : string;
  bs_addr_width : int;
  bs_data_width : int;
}

val make_bus_signals :
  Naming.t -> label:string -> addr_width:int -> data_width:int -> bus_signals
(** Allocate the six signals of a bus. *)

val signal_decls : bus_signals -> Ast.sig_decl list

val mst_send_name : bus_signals -> string
val mst_receive_name : bus_signals -> string

(** Configuration of the hardened (watchdog + bounded-retry) protocol
    variant.  Every blocking handshake wait becomes a self-paced watchdog
    loop: after [hd_patience] fruitless delta cycles (doubling on every
    retry — exponential backoff) the waiting party idempotently re-drives
    its request/acknowledge lines, and after [hd_retries] retries it
    emits a [WDG_ABORT_*] marker and fail-stops — a persistent fault
    becomes an honest deadlock, never silent corruption.  All hardened
    parties pace themselves on the shared [hd_tick] signal. *)
type harden_cfg = {
  hd_tick : string;  (** the shared watchdog tick signal *)
  hd_patience : int;  (** delta cycles before the first retry *)
  hd_retries : int;  (** retries before the process fail-stops *)
}

val retry_tag : string -> string
(** [retry_tag label] is the [WDG_RETRY_<label>] marker tag. *)

val abort_tag : string -> string
(** [abort_tag label] is the [WDG_ABORT_<label>] marker tag. *)

val reserved_tag_prefixes : string list
(** Emit-tag prefixes reserved for generated recovery machinery
    ([WDG_], [FLT_], [MEM_UNMAPPED_]); equivalence judgements and fault
    classification filter these out. *)

val wdg_vars : Ast.var_decl list
(** Watchdog bookkeeping locals ([wdg_t], [wdg_w], [wdg_lim], [wdg_n]);
    declare in every procedure or behavior leaf whose body contains a
    {!watch} loop. *)

val watch :
  harden_cfg ->
  ?patience:int ->
  ?bad:Ast.expr ->
  label:string ->
  cond:Ast.expr ->
  redrive:Ast.stmt list ->
  unit ->
  Ast.stmt list
(** A bounded watchdog wait until [cond]: one delta cycle passes per
    round (tick toggling); after [patience] (default [hd_patience])
    fruitless cycles or as soon as [bad] holds (own-line readback check),
    the [redrive] statements re-issue the request and patience doubles;
    after [hd_retries] retries the process emits [WDG_ABORT_<label>] and
    fail-stops. *)

val mst_send_proc :
  ?style:style -> ?harden:harden_cfg -> bus_signals -> Ast.proc_decl
(** The master-side write protocol as a procedure [MST_send_<bus>(a, d)].
    Hardened: request lines are driven and read back before [start] is
    raised; every wait is a bounded watchdog loop. *)

val mst_receive_proc :
  ?style:style -> ?harden:harden_cfg -> bus_signals -> Ast.proc_decl
(** The master-side read protocol [MST_receive_<bus>(a, out d)]. *)

val master_read : bus_signals -> addr:int -> target:string -> Ast.stmt
(** [call MST_receive_<bus>(addr, out target)]. *)

val master_write : bus_signals -> addr:int -> value:Ast.expr -> Ast.stmt

val slv_complete :
  ?style:style -> ?harden:harden_cfg -> bus_signals -> Ast.stmt list
(** The slave-side completion handshake.  Hardened: the [done] rise is
    re-driven (not re-executed) while [start] stays high, and the fall is
    verified in a bounded loop. *)

val slv_drive_data :
  harden_cfg -> bus_signals -> Ast.expr -> Ast.stmt list
(** Drive the data bus and verify the committed value before completing
    the handshake (hardened slaves only). *)

val slv_pending : ?style:style -> bus_signals -> Ast.expr
(** A transaction is pending on the bus. *)

val slv_idle : ?style:style -> bus_signals -> Ast.expr
(** The current transaction (served by another slave) is over. *)

val slv_send_branch :
  ?style:style -> ?harden:harden_cfg -> bus_signals -> addr:int ->
  var:string -> Ast.expr * Ast.stmt list
(** Response branch serving a read of the storage location (the paper's
    [SLV_send]). *)

val slv_receive_branch :
  ?style:style -> ?harden:harden_cfg -> bus_signals -> addr:int ->
  var:string -> Ast.expr * Ast.stmt list
(** Response branch serving a write (the paper's [SLV_receive]). *)

val slave_loop :
  ?style:style -> ?harden:harden_cfg -> bus_signals ->
  (Ast.expr * Ast.stmt list) list ->
  Ast.stmt list
(** A perpetual single-slave serving loop; unmapped addresses answer with
    an [emit] marker plus a completed handshake, so masters never
    deadlock but co-simulation exposes the fault. *)

val slave_loop_selective :
  ?style:style -> bus_signals -> (Ast.expr * Ast.stmt list) list ->
  Ast.stmt list
(** A serving loop for a bus with several slaves (Model4's
    inter-interface bus): requests for other slaves' addresses are waited
    out, not answered. *)
