(** Bus interfaces for the message-passing model (paper, Section 4.3,
    Figure 8; Model4).  Each partition gets a memory subsystem holding the
    variables homed there, with up to three concurrent serving processes:
    a local-memory server on the partition's local bus, an outbound
    interface forwarding remote requests over the inter-interface bus
    (the paper's [Bus_interface_1]), and an inbound interface answering
    other partitions' requests from the shared storage
    ([Bus_interface_2]). *)

open Spec

type config = {
  bif_partition : int;
  bif_vars : Ast.var_decl list;  (** variables homed in this partition *)
  bif_addr_of : string -> int;
  bif_local_bus : Protocol.bus_signals option;
      (** present when the partition has local traffic *)
  bif_request_bus : Protocol.bus_signals option;
      (** present when the partition has outgoing remote traffic *)
  bif_inter_bus : Protocol.bus_signals option;
      (** present when any cross-partition traffic exists *)
  bif_inter_requester : Arbiter.requester option;
      (** this interface's grant pair on the inter bus, when arbitrated *)
  bif_serves_inbound : bool;
      (** whether remote partitions access variables homed here *)
}

val memsys :
  ?style:Protocol.style ->
  ?harden:Protocol.harden_cfg ->
  naming:Naming.t ->
  config ->
  Ast.behavior
(** The whole memory subsystem of one partition.  With [harden] every
    serving process uses the watchdog slave handshake and the shared
    storage is TMR-protected ({!Memory_gen.make_shadows}).
    @raise Invalid_argument on a request bus without an inter bus. *)
