(** Bus handshake protocols (paper, Figure 5d).  Each bus consists of four
    control lines ([start], [done], [rd], [wr]), an address bus and a data
    bus.  The master-side protocol is encapsulated in generated
    [MST_send_*] / [MST_receive_*] procedures; the slave side
    ([SLV_send] / [SLV_receive]) is inlined into the generated memory
    behaviors as response branches.

    Two protocol styles are provided, as the paper anticipates ("generally
    we can select different protocols to exchange data ... the content in
    the subroutines will change correspondingly"):

    - {!Four_phase} — the full return-to-zero handshake of Figure 5d:
      request, acknowledge, release, acknowledge-release (four signal
      edges per transfer);
    - {!Two_phase} — a transition-signalled (non-return-to-zero) variant:
      [start] and [done] are parity toggles, idle when equal; the master
      flips [start] to request and the slave copies [start] into [done] to
      complete (two signal edges per transfer, roughly halving the delta
      cycles each transfer costs). *)

open Spec
open Spec.Ast

type style =
  | Four_phase
  | Two_phase

let style_name = function
  | Four_phase -> "four-phase"
  | Two_phase -> "two-phase"

type bus_signals = {
  bs_label : string;  (** bus label, e.g. [b1] *)
  bs_start : string;
  bs_done : string;
  bs_rd : string;
  bs_wr : string;
  bs_addr : string;
  bs_data : string;
  bs_addr_width : int;
  bs_data_width : int;
}

(** Allocate the six signals of a bus. *)
let make_bus_signals naming ~label ~addr_width ~data_width =
  let sig_name suffix = Naming.fresh naming (label ^ "_" ^ suffix) in
  {
    bs_label = label;
    bs_start = sig_name "start";
    bs_done = sig_name "done";
    bs_rd = sig_name "rd";
    bs_wr = sig_name "wr";
    bs_addr = sig_name "addr";
    bs_data = sig_name "data";
    bs_addr_width = addr_width;
    bs_data_width = data_width;
  }

let signal_decls bs =
  [
    Builder.bool_signal ~init:false bs.bs_start;
    Builder.bool_signal ~init:false bs.bs_done;
    Builder.bool_signal ~init:false bs.bs_rd;
    Builder.bool_signal ~init:false bs.bs_wr;
    Builder.int_signal ~width:bs.bs_addr_width ~init:0 bs.bs_addr;
    Builder.int_signal ~width:bs.bs_data_width ~init:0 bs.bs_data;
  ]

let mst_send_name bs = "MST_send_" ^ bs.bs_label
let mst_receive_name bs = "MST_receive_" ^ bs.bs_label

(* --- protocol hardening ------------------------------------------------ *)

(** Configuration of the hardened (watchdog + bounded-retry) protocol
    variant.  All hardened parties share one [hd_tick] signal: a waiting
    process passes exactly one delta cycle per watchdog round by latching
    the toggled tick in a local first ([wdg_t := not tick; tick <= wdg_t;
    wait until cond or tick = wdg_t]) — concurrent togglers are safe
    because every same-delta reader computes the same target parity. *)
type harden_cfg = {
  hd_tick : string;  (** the shared watchdog tick signal *)
  hd_patience : int;
      (** fruitless delta cycles before the first retry; doubles on every
          retry (exponential backoff) *)
  hd_retries : int;  (** retries before the process fail-stops *)
}

let retry_tag label = "WDG_RETRY_" ^ label
let abort_tag label = "WDG_ABORT_" ^ label

(** Reserved emit-tag prefixes of the hardened protocol machinery and the
    generated memories ([WDG_RETRY]/[WDG_ABORT] watchdog markers,
    [FLT_MEMFIX] TMR repairs, [MEM_UNMAPPED] decode fallbacks).
    Equivalence judgements and fault classification filter these. *)
let reserved_tag_prefixes = [ "WDG_"; "FLT_"; "MEM_UNMAPPED_" ]

(** Watchdog bookkeeping locals; add to every procedure or behavior leaf
    whose body contains a {!watch} loop.  The names are reserved for the
    generated code ([wdg_] prefix). *)
let wdg_vars =
  [
    Builder.bool_var "wdg_t";
    Builder.int_var ~init:0 "wdg_w";
    Builder.int_var ~init:0 "wdg_lim";
    Builder.int_var ~init:0 "wdg_n";
  ]

(** [watch h ~patience ~label ~cond ~redrive ()] — a bounded watchdog
    wait until [cond].  Every round passes one delta cycle via the shared
    tick; after [patience] fruitless cycles — or immediately when [bad]
    holds (the driver's own-line self check, catching dropped or stuck-at
    updates) — the [redrive] statements re-issue the request idempotently
    and the patience doubles.  After [hd_retries] retries the process
    emits [WDG_ABORT_<label>] and fail-stops, turning a persistent fault
    into an honest deadlock instead of silent corruption. *)
let watch h ?(patience = 0) ?(bad = Expr.fls) ~label ~cond ~redrive () =
  let patience = if patience > 0 then patience else h.hd_patience in
  [
    Builder.("wdg_w" <-- Expr.int 0);
    Builder.("wdg_lim" <-- Expr.int patience);
    Builder.("wdg_n" <-- Expr.int 0);
    Builder.while_ (Expr.not_ cond)
      [
        Builder.("wdg_t" <-- Expr.not_ (Expr.ref_ h.hd_tick));
        Builder.(h.hd_tick <== Expr.ref_ "wdg_t");
        Builder.wait_until Expr.(cond || ref_ h.hd_tick = ref_ "wdg_t");
        Builder.if_ (Expr.not_ cond)
          [
            Builder.if_
              Expr.(ref_ "wdg_w" >= ref_ "wdg_lim" || bad)
              [
                Builder.if_
                  Expr.(ref_ "wdg_n" >= int h.hd_retries)
                  [
                    Builder.emit (abort_tag label) (Expr.int 1);
                    Builder.wait_until Expr.fls;
                  ]
                  (Builder.("wdg_n" <-- Expr.(ref_ "wdg_n" + int 1))
                   :: Builder.("wdg_w" <-- Expr.int 0)
                   :: Builder.("wdg_lim" <-- Expr.(ref_ "wdg_lim" * int 2))
                   :: redrive
                  @ [ Builder.emit (retry_tag label) (Expr.ref_ "wdg_n") ]);
              ]
              [ Builder.("wdg_w" <-- Expr.(ref_ "wdg_w" + int 1)) ];
          ]
          [];
      ];
  ]

(** The master-side write protocol.  Four-phase: drive address, data and
    [wr], raise [start], wait for the slave's [done], then release the
    bus.  Two-phase: drive the request lines, flip [start], and wait for
    [done] to catch up.

    With [harden] every blocking wait becomes a {!watch} loop and the
    request lines are driven {e and read back} before [start] is raised,
    so a dropped or stuck line is re-driven (or fail-stopped) before the
    slave can act on stale values. *)
let mst_send_proc ?(style = Four_phase) ?harden bs =
  let body =
    match (style, harden) with
    | Four_phase, None ->
      [
        Builder.(bs.bs_addr <== Expr.ref_ "a");
        Builder.(bs.bs_data <== Expr.ref_ "d");
        Builder.(bs.bs_wr <== Expr.tru);
        Builder.(bs.bs_start <== Expr.tru);
        Builder.wait_until Expr.(ref_ bs.bs_done = tru);
        Builder.(bs.bs_start <== Expr.fls);
        Builder.(bs.bs_wr <== Expr.fls);
        Builder.wait_until Expr.(ref_ bs.bs_done = fls);
      ]
    | Two_phase, None ->
      (* The target parity is latched in a local first: [start] only
         commits at the next delta, so waiting on [done = start] directly
         would satisfy itself with the stale value. *)
      [
        Builder.(bs.bs_addr <== Expr.ref_ "a");
        Builder.(bs.bs_data <== Expr.ref_ "d");
        Builder.(bs.bs_wr <== Expr.tru);
        Builder.(bs.bs_rd <== Expr.fls);
        Builder.("t" <-- Expr.not_ (Expr.ref_ bs.bs_done));
        Builder.(bs.bs_start <== Expr.ref_ "t");
        Builder.wait_until Expr.(ref_ bs.bs_done = ref_ "t");
      ]
    | Four_phase, Some h ->
      let label = mst_send_name bs in
      let drive =
        [
          Builder.(bs.bs_addr <== Expr.ref_ "a");
          Builder.(bs.bs_data <== Expr.ref_ "d");
          Builder.(bs.bs_wr <== Expr.tru);
        ]
      in
      let lines_ok =
        Expr.(
          ref_ bs.bs_addr = ref_ "a"
          && ref_ bs.bs_data = ref_ "d"
          && ref_ bs.bs_wr = tru)
      in
      drive
      @ watch h ~label ~cond:lines_ok ~redrive:drive ()
      @ [ Builder.(bs.bs_start <== Expr.tru) ]
      @ watch h ~label
          ~cond:Expr.(ref_ bs.bs_done = tru)
          ~bad:Expr.(ref_ bs.bs_start = fls)
          ~redrive:[ Builder.(bs.bs_start <== Expr.tru) ]
          ()
      @ [
          Builder.(bs.bs_start <== Expr.fls); Builder.(bs.bs_wr <== Expr.fls);
        ]
      @ watch h ~label
          ~cond:Expr.(ref_ bs.bs_done = fls)
          ~bad:Expr.(ref_ bs.bs_start = tru || ref_ bs.bs_wr = tru)
          ~redrive:
            [
              Builder.(bs.bs_start <== Expr.fls);
              Builder.(bs.bs_wr <== Expr.fls);
            ]
          ()
    | Two_phase, Some h ->
      let label = mst_send_name bs in
      let drive =
        [
          Builder.(bs.bs_addr <== Expr.ref_ "a");
          Builder.(bs.bs_data <== Expr.ref_ "d");
          Builder.(bs.bs_wr <== Expr.tru);
          Builder.(bs.bs_rd <== Expr.fls);
        ]
      in
      let lines_ok =
        Expr.(
          ref_ bs.bs_addr = ref_ "a"
          && ref_ bs.bs_data = ref_ "d"
          && ref_ bs.bs_wr = tru
          && ref_ bs.bs_rd = fls)
      in
      drive
      @ watch h ~label ~cond:lines_ok ~redrive:drive ()
      @ [
          Builder.("t" <-- Expr.not_ (Expr.ref_ bs.bs_done));
          Builder.(bs.bs_start <== Expr.ref_ "t");
        ]
      @ watch h ~label
          ~cond:Expr.(ref_ bs.bs_done = ref_ "t")
          ~bad:Expr.(ref_ bs.bs_start <> ref_ "t")
          ~redrive:[ Builder.(bs.bs_start <== Expr.ref_ "t") ]
          ()
  in
  Builder.proc (mst_send_name bs)
    ~params:
      [
        Builder.param_in "a" (TInt bs.bs_addr_width);
        Builder.param_in "d" (TInt bs.bs_data_width);
      ]
    ~vars:
      ((match style with
       | Four_phase -> []
       | Two_phase -> [ Builder.bool_var "t" ])
      @ match harden with None -> [] | Some _ -> wdg_vars)
    body

(** The master-side read protocol.  The hardened variant reads back its
    own request lines before raising [start] (see {!mst_send_proc}); the
    returned data line itself is verified slave-side
    ({!slv_send_branch}), which commits and checks [data] {e before}
    signalling [done], so a hardened master never latches a value the
    slave has not confirmed. *)
let mst_receive_proc ?(style = Four_phase) ?harden bs =
  let body =
    match (style, harden) with
    | Four_phase, None ->
      [
        Builder.(bs.bs_addr <== Expr.ref_ "a");
        Builder.(bs.bs_rd <== Expr.tru);
        Builder.(bs.bs_start <== Expr.tru);
        Builder.wait_until Expr.(ref_ bs.bs_done = tru);
        Builder.("d" <-- Expr.ref_ bs.bs_data);
        Builder.(bs.bs_start <== Expr.fls);
        Builder.(bs.bs_rd <== Expr.fls);
        Builder.wait_until Expr.(ref_ bs.bs_done = fls);
      ]
    | Two_phase, None ->
      [
        Builder.(bs.bs_addr <== Expr.ref_ "a");
        Builder.(bs.bs_rd <== Expr.tru);
        Builder.(bs.bs_wr <== Expr.fls);
        Builder.("t" <-- Expr.not_ (Expr.ref_ bs.bs_done));
        Builder.(bs.bs_start <== Expr.ref_ "t");
        Builder.wait_until Expr.(ref_ bs.bs_done = ref_ "t");
        Builder.("d" <-- Expr.ref_ bs.bs_data);
      ]
    | Four_phase, Some h ->
      let label = mst_receive_name bs in
      let drive =
        [
          Builder.(bs.bs_addr <== Expr.ref_ "a");
          Builder.(bs.bs_rd <== Expr.tru);
        ]
      in
      let lines_ok =
        Expr.(ref_ bs.bs_addr = ref_ "a" && ref_ bs.bs_rd = tru)
      in
      drive
      @ watch h ~label ~cond:lines_ok ~redrive:drive ()
      @ [ Builder.(bs.bs_start <== Expr.tru) ]
      @ watch h ~label
          ~cond:Expr.(ref_ bs.bs_done = tru)
          ~bad:Expr.(ref_ bs.bs_start = fls)
          ~redrive:[ Builder.(bs.bs_start <== Expr.tru) ]
          ()
      @ [
          Builder.("d" <-- Expr.ref_ bs.bs_data);
          Builder.(bs.bs_start <== Expr.fls);
          Builder.(bs.bs_rd <== Expr.fls);
        ]
      @ watch h ~label
          ~cond:Expr.(ref_ bs.bs_done = fls)
          ~bad:Expr.(ref_ bs.bs_start = tru || ref_ bs.bs_rd = tru)
          ~redrive:
            [
              Builder.(bs.bs_start <== Expr.fls);
              Builder.(bs.bs_rd <== Expr.fls);
            ]
          ()
    | Two_phase, Some h ->
      let label = mst_receive_name bs in
      let drive =
        [
          Builder.(bs.bs_addr <== Expr.ref_ "a");
          Builder.(bs.bs_rd <== Expr.tru);
          Builder.(bs.bs_wr <== Expr.fls);
        ]
      in
      let lines_ok =
        Expr.(
          ref_ bs.bs_addr = ref_ "a"
          && ref_ bs.bs_rd = tru
          && ref_ bs.bs_wr = fls)
      in
      drive
      @ watch h ~label ~cond:lines_ok ~redrive:drive ()
      @ [
          Builder.("t" <-- Expr.not_ (Expr.ref_ bs.bs_done));
          Builder.(bs.bs_start <== Expr.ref_ "t");
        ]
      @ watch h ~label
          ~cond:Expr.(ref_ bs.bs_done = ref_ "t")
          ~bad:Expr.(ref_ bs.bs_start <> ref_ "t")
          ~redrive:[ Builder.(bs.bs_start <== Expr.ref_ "t") ]
          ()
      @ [ Builder.("d" <-- Expr.ref_ bs.bs_data) ]
  in
  Builder.proc (mst_receive_name bs)
    ~params:
      [
        Builder.param_in "a" (TInt bs.bs_addr_width);
        Builder.param_out "d" (TInt bs.bs_data_width);
      ]
    ~vars:
      ((match style with
       | Four_phase -> []
       | Two_phase -> [ Builder.bool_var "t" ])
      @ match harden with None -> [] | Some _ -> wdg_vars)
    body

(** Statements for the master: [call MST_receive_b(addr, out target)]. *)
let master_read bs ~addr ~target =
  Call (mst_receive_name bs, [ Arg_expr (Expr.int addr); Arg_var target ])

let master_write bs ~addr ~value =
  Call (mst_send_name bs, [ Arg_expr (Expr.int addr); Arg_expr value ])

(** The slave-side completion handshake.  Four-phase: raise [done], wait
    for the master to release [start], lower [done].  Two-phase: copy
    [start] into [done].

    Hardened: each phase is a {!watch} loop with own-line readback — a
    dropped [done] rise is re-driven while [start] is still high (the
    slave does {e not} re-execute the request body, the level is simply
    re-asserted), and a dropped [done] fall is re-driven in a bounded
    verify loop, so the bus is guaranteed idle (or the slave has
    fail-stopped) before the next transaction. *)
let slv_complete ?(style = Four_phase) ?harden bs =
  match (style, harden) with
  | Four_phase, None ->
    [
      Builder.(bs.bs_done <== Expr.tru);
      Builder.wait_until Expr.(ref_ bs.bs_start = fls);
      Builder.(bs.bs_done <== Expr.fls);
    ]
  | Two_phase, None ->
    (* Wait for the completion to commit, otherwise the serving loop would
       still see the request pending and re-serve it within the same
       delta. *)
    [
      Builder.(bs.bs_done <== Expr.ref_ bs.bs_start);
      Builder.wait_until Expr.(ref_ bs.bs_done = ref_ bs.bs_start);
    ]
  | Four_phase, Some h ->
    let label = "SLV_" ^ bs.bs_label in
    [ Builder.(bs.bs_done <== Expr.tru) ]
    @ watch h ~label
        ~cond:Expr.(ref_ bs.bs_start = fls)
        ~bad:Expr.(ref_ bs.bs_done = fls)
        ~redrive:[ Builder.(bs.bs_done <== Expr.tru) ]
        ()
    @ [ Builder.(bs.bs_done <== Expr.fls) ]
    @ watch h ~label
        ~cond:Expr.(ref_ bs.bs_done = fls)
        ~redrive:[ Builder.(bs.bs_done <== Expr.fls) ]
        ()
  | Two_phase, Some h ->
    let label = "SLV_" ^ bs.bs_label in
    [ Builder.(bs.bs_done <== Expr.ref_ bs.bs_start) ]
    @ watch h ~label
        ~cond:Expr.(ref_ bs.bs_done = ref_ bs.bs_start)
        ~redrive:[ Builder.(bs.bs_done <== Expr.ref_ bs.bs_start) ]
        ()

(** The slave-side request condition: a transaction is pending. *)
let slv_pending ?(style = Four_phase) bs =
  match style with
  | Four_phase -> Expr.(ref_ bs.bs_start = tru)
  | Two_phase -> Expr.(ref_ bs.bs_start <> ref_ bs.bs_done)

(** The condition a non-addressed slave waits for before re-arming: the
    transaction (served by another slave) is over. *)
let slv_idle ?(style = Four_phase) bs =
  match style with
  | Four_phase -> Expr.(ref_ bs.bs_start = fls)
  | Two_phase -> Expr.(ref_ bs.bs_start = ref_ bs.bs_done)

(** Hardened data drive: commit [bs_data] and read it back in a bounded
    verify loop {e before} the completion handshake raises [done], so a
    hardened master never latches an uncommitted or corrupted data line
    (a stuck data bus exhausts the retries and fail-stops the slave
    instead of completing with a wrong value). *)
let slv_drive_data h bs value =
  [ Builder.(bs.bs_data <== value) ]
  @ watch h ~label:("SLV_" ^ bs.bs_label)
      ~cond:Expr.(ref_ bs.bs_data = value)
      ~redrive:[ Builder.(bs.bs_data <== value) ]
      ()

(** A slave response branch serving a read of the storage location [var]
    at [addr] (the paper's [SLV_send]). *)
let slv_send_branch ?style ?harden bs ~addr ~var:store =
  let drive =
    match harden with
    | None -> [ Builder.(bs.bs_data <== Expr.ref_ store) ]
    | Some h -> slv_drive_data h bs (Expr.ref_ store)
  in
  ( Expr.(ref_ bs.bs_rd = tru && ref_ bs.bs_addr = int addr),
    drive @ slv_complete ?style ?harden bs )

(** A slave response branch serving a write (the paper's
    [SLV_receive]). *)
let slv_receive_branch ?style ?harden bs ~addr ~var:store =
  ( Expr.(ref_ bs.bs_wr = tru && ref_ bs.bs_addr = int addr),
    (Builder.(store <-- Expr.ref_ bs.bs_data) :: slv_complete ?style ?harden bs)
  )

(** One full slave serving loop over the given response branches.  The
    final branch answers unmapped addresses with an [emit] marker and a
    completed handshake, so a master is never dead-locked but the
    co-simulation trace exposes the fault. *)
let slave_loop ?style ?harden bs branches =
  let unmapped =
    Emit ("MEM_UNMAPPED_" ^ bs.bs_label, Ref bs.bs_addr)
    :: slv_complete ?style ?harden bs
  in
  [
    Builder.while_ Expr.tru
      (Builder.wait_until (slv_pending ?style bs) :: [ If (branches, unmapped) ]);
  ]

(** A slave serving loop for a bus with {e several} slaves (Model4's
    inter-interface bus): requests whose address is not served by this
    slave are left for another slave — the loop just waits out the
    transaction instead of answering. *)
let slave_loop_selective ?style bs branches =
  let leave_alone = [ Builder.wait_until (slv_idle ?style bs) ] in
  [
    Builder.while_ Expr.tru
      (Builder.wait_until (slv_pending ?style bs) :: [ If (branches, leave_alone) ]);
  ]
