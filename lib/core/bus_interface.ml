(** Bus interfaces for the message-passing model (paper, Section 4.3,
    Figure 8; Model4).  Each partition gets a memory subsystem holding the
    variables homed there, with up to three concurrent serving processes:

    - a local-memory server answering the partition's local bus;
    - an outbound interface: a slave on the partition's request bus that
      forwards any request for a remote address over the inter-interface
      bus (the paper's [Bus_interface_1] asking [Bus_interface_2]);
    - an inbound interface: a slave on the inter-interface bus answering
      requests for this partition's variables directly from the shared
      storage (the paper's [Bus_interface_2] reading [LM2]).

    The outbound interface forwards addresses generically (it copies the
    requester's address onto the inter bus), so a single pair of response
    branches serves every remote variable.

    When hardened, every serving process uses the watchdog slave
    handshake and the shared storage is TMR-protected exactly as in
    {!Memory_gen} — the local server and the inbound interface share one
    shadow set, since they serve the same storage. *)

open Spec
open Spec.Ast

type config = {
  bif_partition : int;
  bif_vars : var_decl list;  (** variables homed in this partition *)
  bif_addr_of : string -> int;
  bif_local_bus : Protocol.bus_signals option;
      (** present when the partition has local traffic *)
  bif_request_bus : Protocol.bus_signals option;
      (** present when the partition has outgoing remote traffic *)
  bif_inter_bus : Protocol.bus_signals option;
      (** present when any cross-partition traffic exists *)
  bif_inter_requester : Arbiter.requester option;
      (** this interface's grant pair on the inter bus, when arbitrated *)
  bif_serves_inbound : bool;
      (** whether remote partitions access variables homed here *)
}

let bracket req stmts =
  match req with
  | None -> stmts
  | Some r -> Arbiter.acquire r @ stmts @ Arbiter.release r

(* Outbound interface: generic forwarding of the request bus onto the
   inter bus.  The forwarded address is whatever the master drove.  The
   inter-bus master protocol is provided by the generated MST procedures,
   which are themselves hardened when the design is; only the slave side
   on the request bus needs watchdog treatment here. *)
let outbound_leaf ?style ?harden ~naming ~partition
    ~(req : Protocol.bus_signals) ~(inter : Protocol.bus_signals)
    ~inter_requester () =
  let name = Naming.fresh naming (Printf.sprintf "BIF_out_%d" partition) in
  let fwd = Naming.fresh naming (Printf.sprintf "bif_fwd_%d" partition) in
  let drive_reply =
    match harden with
    | None -> [ Builder.(req.Protocol.bs_data <== Expr.ref_ fwd) ]
    | Some h -> Protocol.slv_drive_data h req (Expr.ref_ fwd)
  in
  let read_branch =
    ( Expr.(ref_ req.Protocol.bs_rd = tru),
      bracket inter_requester
        [
          Call
            ( Protocol.mst_receive_name inter,
              [ Arg_expr (Ref req.Protocol.bs_addr); Arg_var fwd ] );
        ]
      @ drive_reply
      @ Protocol.slv_complete ?style ?harden req )
  in
  let write_branch =
    ( Expr.(ref_ req.Protocol.bs_wr = tru),
      (Builder.(fwd <-- Expr.ref_ req.Protocol.bs_data)
      :: bracket inter_requester
           [
             Call
               ( Protocol.mst_send_name inter,
                 [
                   Arg_expr (Ref req.Protocol.bs_addr);
                   Arg_expr (Ref fwd);
                 ] );
           ])
      @ Protocol.slv_complete ?style ?harden req )
  in
  let wdg = match harden with None -> [] | Some _ -> Protocol.wdg_vars in
  Behavior.leaf
    ~vars:(Builder.var fwd (TInt inter.Protocol.bs_data_width) :: wdg)
    name
    (Protocol.slave_loop ?style ?harden req [ read_branch; write_branch ])

(* Inbound interface: a selective slave on the inter bus serving this
   partition's variables directly. *)
let inbound_leaf ?style ?harden ?shadows ~naming ~partition
    ~(inter : Protocol.bus_signals) ~addr_of ~vars () =
  let name = Naming.fresh naming (Printf.sprintf "BIF_in_%d" partition) in
  let wdg = match harden with None -> [] | Some _ -> Protocol.wdg_vars in
  Behavior.leaf ~vars:wdg name
    (Protocol.slave_loop_selective ?style inter
       (Memory_gen.branches_for ?style ?harden ?shadows inter ~addr_of vars))

(* Local-memory server on the local bus. *)
let local_server_leaf ?style ?harden ?shadows ~naming ~partition
    ~(local : Protocol.bus_signals) ~addr_of ~vars () =
  let name = Naming.fresh naming (Printf.sprintf "LM_serve_%d" partition) in
  let wdg = match harden with None -> [] | Some _ -> Protocol.wdg_vars in
  Behavior.leaf ~vars:wdg name
    (Protocol.slave_loop ?style ?harden local
       (Memory_gen.branches_for ?style ?harden ?shadows local ~addr_of vars))

(** The whole memory subsystem of one partition. *)
let memsys ?style ?harden ~naming cfg =
  let name = Naming.fresh naming (Printf.sprintf "MEMSYS_%d" cfg.bif_partition) in
  let shadows, storage =
    match harden with
    | None -> ([], cfg.bif_vars)
    | Some _ ->
      let shadows, decls = Memory_gen.make_shadows ~naming cfg.bif_vars in
      (shadows, cfg.bif_vars @ decls)
  in
  let children =
    List.filter_map Fun.id
      [
        Option.map
          (fun local ->
            local_server_leaf ?style ?harden ~shadows ~naming
              ~partition:cfg.bif_partition ~local ~addr_of:cfg.bif_addr_of
              ~vars:cfg.bif_vars ())
          cfg.bif_local_bus;
        Option.map
          (fun req ->
            match cfg.bif_inter_bus with
            | Some inter ->
              outbound_leaf ?style ?harden ~naming
                ~partition:cfg.bif_partition ~req ~inter
                ~inter_requester:cfg.bif_inter_requester ()
            | None ->
              invalid_arg
                "Bus_interface.memsys: request bus without inter bus")
          cfg.bif_request_bus;
        (match cfg.bif_inter_bus with
        | Some inter when cfg.bif_serves_inbound && cfg.bif_vars <> [] ->
          Some
            (inbound_leaf ?style ?harden ~shadows ~naming
               ~partition:cfg.bif_partition ~inter ~addr_of:cfg.bif_addr_of
               ~vars:cfg.bif_vars ())
        | Some _ | None -> None);
      ]
  in
  match children with
  | [] -> Behavior.leaf ~vars:storage name []
  | _ -> Behavior.par ~vars:storage name children
