(** Control-related refinement (paper, Section 4.1, Figure 4): when a
    behavior [B] is partitioned away from the composite that sequences it,
    it is replaced in place by a [B_CTRL] leaf and re-created on its home
    partition as a perpetual [B_NEW] wrapper; the pair synchronizes over
    fresh [B_start] / [B_done] signals so the original execution order is
    preserved. *)

open Spec

type moved = {
  mv_partition : int;  (** home partition of the moved behavior *)
  mv_behavior : Ast.behavior;  (** the generated [B_NEW] process *)
  mv_original_name : string;
  mv_start : string;
  mv_done : string;
}

type result = {
  cr_top_home : int;  (** partition hosting the refined main control tree *)
  cr_main : Ast.behavior;  (** the refined original tree, with [B_CTRL]s *)
  cr_moved : moved list;  (** in generation order *)
  cr_signals : Ast.sig_decl list;  (** the [B_start] / [B_done] signals *)
}

val home :
  is_object:(string -> bool) ->
  home_of:(string -> int) ->
  Ast.behavior ->
  int option
(** The partition a behavior executes on: its own partition when it is an
    object, otherwise the home of its first object-bearing descendant;
    [None] for subtrees containing no object. *)

val run :
  naming:Naming.t ->
  ?force_nonleaf:bool ->
  ?harden:Protocol.harden_cfg ->
  is_object:(string -> bool) ->
  home_of_object:(string -> int) ->
  Ast.behavior ->
  result
(** Distribute the behavior tree.  [is_object] marks the partitionable
    behaviors, [home_of_object] gives their partitions.  The home of a
    composite is the home of its first object descendant.  With
    [force_nonleaf] the non-leaf wrapper scheme (Figure 4c) is used even
    for leaves (the paper notes both are legal for leaves; the leaf scheme
    of Figure 4b is the default because it is simpler).  With [harden]
    every [B_start] / [B_done] handshake phase becomes a bounded watchdog
    loop with idempotent level re-driving (see {!Protocol.watch}). *)
