(** Automated refinement verification at scale: generate random
    terminating specifications, partition them automatically (greedy + KL
    improvement), refine them under every implementation model — including
    the forced non-leaf control scheme of Figure 4c — and co-simulate each
    refinement against its original.

    Run with: [dune exec examples/cosimulate.exe] *)

open Workloads

let () =
  let total = ref 0 and failed = ref 0 in
  for seed = 1 to 10 do
    let cfg =
      {
        Generator.default_config with
        gen_seed = seed;
        gen_vars = 4 + (seed mod 4);
        gen_leaves = 5 + (seed mod 5);
        gen_par_branches = (if seed mod 3 = 0 then 2 else 0);
      }
    in
    let spec = Generator.program cfg in
    let graph = Agraph.Access_graph.of_program spec in
    let n_parts = 2 + (seed mod 2) in
    let part = Partitioning.Kl.run_from_scratch graph ~n_parts in
    let report = Partitioning.Classify.report graph part in
    Printf.printf
      "spec seed=%d: %d leaves, %d vars (%d local / %d global), p=%d\n" seed
      (List.length graph.Agraph.Access_graph.g_objects)
      (List.length graph.Agraph.Access_graph.g_variables)
      (List.length report.Partitioning.Classify.locals)
      (List.length report.Partitioning.Classify.globals)
      n_parts;
    List.iter
      (fun model ->
        List.iter
          (fun (force_nonleaf, protocol) ->
            incr total;
            let options = { Core.Refiner.default_options with force_nonleaf; protocol } in
            let refined = Core.Refiner.refine ~options spec graph part model in
            let trace_mode =
              if cfg.Generator.gen_par_branches >= 2 then Sim.Cosim.Per_tag
              else Sim.Cosim.Total
            in
            let verdict =
              Sim.Cosim.check ~trace_mode ~original:spec
                ~refined:refined.Core.Refiner.rf_program ()
            in
            let scheme =
              Printf.sprintf "%s/%s"
                (if force_nonleaf then "fig4c" else "fig4b")
                (Core.Protocol.style_name protocol)
            in
            if verdict.Sim.Cosim.v_equivalent then
              Printf.printf "  %-7s %-16s ok (%d lines)\n" (Core.Model.name model)
                scheme
                (Spec.Printer.line_count refined.Core.Refiner.rf_program)
            else begin
              incr failed;
              Printf.printf "  %-7s %-16s FAILED: %s\n" (Core.Model.name model)
                scheme
                (String.concat "; " verdict.Sim.Cosim.v_problems)
            end)
          [
            (false, Core.Protocol.Four_phase);
            (true, Core.Protocol.Four_phase);
            (false, Core.Protocol.Two_phase);
          ])
        Core.Model.all
  done;
  Printf.printf "\n%d/%d refinements equivalent\n" (!total - !failed) !total;
  if !failed > 0 then exit 1
