(** Implementation-style exploration on the paper's Figure 2 example:
    four behaviors (B1–B4) and seven variables (v1–v7) partitioned
    between a processor and an ASIC, refined to all four implementation
    models (Figure 3a–d).  For each model we show the emerging
    architecture: memories, buses and their masters, arbiters and bus
    interfaces.  Also writes the access graph as Graphviz to
    [fig2_access_graph.dot].

    The second half turns the same question over to the design-space
    exploration engine ([lib/explore]): instead of one hand-picked
    partition, it sweeps partition seeds x local/global biases x the four
    models, evaluates every candidate through a memoized parallel
    pipeline, and reports the Pareto frontier over max bus rate,
    specification growth and pins+gates.

    Run with: [dune exec examples/explore_models.exe] *)

open Workloads

let memory_name = function
  | Core.Bus_plan.Gmem -> "Gmem"
  | Core.Bus_plan.Gmem_part i -> Printf.sprintf "Gmem%d" i
  | Core.Bus_plan.Lmem i -> Printf.sprintf "Lmem%d" i

let () =
  let spec = Smallspecs.fig2 in
  let graph = Agraph.Access_graph.of_program spec in
  let part = Smallspecs.fig2_partition in

  let report = Partitioning.Classify.report graph part in
  Printf.printf "Figure 2 example: local variables {%s}, global variables {%s}\n"
    (String.concat ", " report.Partitioning.Classify.locals)
    (String.concat ", " report.Partitioning.Classify.globals);

  let oc = open_out "fig2_access_graph.dot" in
  output_string oc (Agraph.Access_graph.to_dot graph);
  close_out oc;
  print_endline "wrote fig2_access_graph.dot";

  List.iter
    (fun model ->
      Printf.printf "\n=== %s: %s ===\n" (Core.Model.name model)
        (Core.Model.description model);
      let refined = Core.Refiner.refine spec graph part model in
      let plan = refined.Core.Refiner.rf_plan in
      (* Variable-to-memory mapping (Figure 3's memory boxes). *)
      List.iter
        (fun mem ->
          Printf.printf "  %-6s holds: %s\n" (memory_name mem)
            (String.concat ", " (Core.Bus_plan.vars_of_memory plan mem)))
        (Core.Bus_plan.memories plan);
      (* Buses, their masters and arbitration. *)
      List.iter
        (fun (b : Core.Refiner.bus_inst) ->
          Printf.printf "  bus %-14s masters [%s]%s\n"
            b.Core.Refiner.bi_signals.Core.Protocol.bs_label
            (String.concat "; " (List.map fst b.Core.Refiner.bi_requesters))
            (match b.Core.Refiner.bi_arbiter with
            | Some arb ->
              Printf.sprintf " arbitrated by %s" arb.Core.Arbiter.arb_behavior_name
            | None -> ""))
        refined.Core.Refiner.rf_buses;
      Printf.printf
        "  buses used: %d (model bound for p=2: %d); memories: %d; size %d lines\n"
        (List.length refined.Core.Refiner.rf_buses)
        (Core.Model.max_buses model ~p:2)
        (List.length refined.Core.Refiner.rf_memories)
        (Spec.Printer.line_count refined.Core.Refiner.rf_program);
      let verdict =
        Sim.Cosim.check ~original:spec ~refined:refined.Core.Refiner.rf_program
          ()
      in
      Printf.printf "  cosimulation: %s\n"
        (if verdict.Sim.Cosim.v_equivalent then "equivalent" else "FAILED"))
    Core.Model.all;

  (* --- automatic design-space exploration over the same example ------- *)
  print_endline "";
  print_endline "=== design-space exploration (lib/explore) ===";
  let config =
    {
      Explore.Sweep.default_config with
      Explore.Sweep.seeds = [ 1; 2 ];
      steps = 1000;
      jobs = Explore.Pool.default_jobs ();
    }
  in
  let sweep = Explore.Sweep.run config spec in
  print_string (Explore.Sweep.to_text ~top:8 sweep)
