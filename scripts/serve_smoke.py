#!/usr/bin/env python3
"""Smoke test for the mrefine serve daemon.

Drives a live daemon over its Unix-domain socket with ~200 concurrent
mixed jobs (refine / lint / explore / faults) from several client
threads, SIGKILLs the daemon mid-load, restarts it on the same journal,
and then requires:

  - every job converges to a terminal state after the restart
    (idempotent resubmission under client-chosen ids);
  - every refine and lint result is bit-identical to the cold CLI run
    of the same parameters;
  - every explore job completes at coverage 1.0.

Usage: serve_smoke.py [path/to/mrefine.exe]
"""

import json
import os
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time

MR = sys.argv[1] if len(sys.argv) > 1 else "_build/default/bin/mrefine.exe"
SPECS = ["examples/specs/fig1.sc", "examples/specs/fig2.sc"]

WORKDIR = tempfile.mkdtemp(prefix="serve_smoke_")
SOCK = os.path.join(WORKDIR, "daemon.sock")
JOURNAL = os.path.join(WORKDIR, "serve.journal")


def start_daemon():
    proc = subprocess.Popen(
        [MR, "serve", "--socket", SOCK, "--journal", JOURNAL],
        stderr=subprocess.DEVNULL,
    )
    deadline = time.time() + 20.0
    while time.time() < deadline:
        if os.path.exists(SOCK):
            try:
                s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                s.connect(SOCK)
                s.close()
                return proc
            except OSError:
                pass
        if proc.poll() is not None:
            raise SystemExit(f"daemon exited early with {proc.returncode}")
        time.sleep(0.05)
    raise SystemExit("daemon did not come up within 20s")


class Client:
    def __init__(self):
        self.sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self.sock.connect(SOCK)
        self.f = self.sock.makefile("rwb")

    def rpc(self, obj):
        self.f.write((json.dumps(obj) + "\n").encode())
        self.f.flush()
        line = self.f.readline()
        if not line:
            raise ConnectionError("daemon closed the connection")
        return json.loads(line)

    def close(self):
        try:
            self.sock.close()
        except OSError:
            pass


def spec_text(path):
    with open(path) as f:
        return f.read()


def make_jobs():
    """~200 mixed jobs, keyed by deterministic ids for idempotent
    resubmission across the daemon restart."""
    jobs = {}

    def add(kind, job, path):
        jobs[f"smoke-{len(jobs)}"] = (kind, job, path)

    texts = [spec_text(p) for p in SPECS]
    for i in range(160):
        add(
            "refine",
            {
                "kind": "refine",
                "spec": texts[i % 2],
                "model": f"model{1 + i % 4}",
                "parts": 2,
                "seed": 42 + (i // 8) % 2,
            },
            SPECS[i % 2],
        )
    for i in range(30):
        add(
            "lint",
            {
                "kind": "lint",
                "spec": texts[i % 2],
                "file": SPECS[i % 2],
                "json": True,
            },
            SPECS[i % 2],
        )
    for i in range(6):
        add(
            "explore",
            {
                "kind": "explore",
                "spec": texts[i % 2],
                "seeds": [1],
                "models": ["model2"],
                "steps": 200,
                "json": True,
            },
            SPECS[i % 2],
        )
    for i in range(4):
        add(
            "faults",
            {
                "kind": "faults",
                "spec": texts[i % 2],
                "model": "model2",
                "seeds": 2,
                "json": True,
            },
            SPECS[i % 2],
        )
    return jobs


def submit_some(ids, jobs, submitted):
    """Submit a slice of the job mix, polling status along the way.
    Connection errors are expected — the daemon is SIGKILLed mid-load."""
    try:
        c = Client()
        for n, job_id in enumerate(ids):
            _kind, job, _path = jobs[job_id]
            r = c.rpc({"op": "submit", "id": job_id, "job": job})
            if r.get("ok"):
                submitted.append(job_id)
            if n % 5 == 0:
                c.rpc({"op": "status", "id": job_id})
        c.close()
    except (ConnectionError, OSError):
        pass


def cold_refine(spec_path, model, parts, seed):
    return subprocess.run(
        [MR, "refine", "-q", "-m", model[-1], "-p", str(parts),
         "--seed", str(seed), spec_path],
        check=True, capture_output=True,
    ).stdout.decode()


def cold_lint(spec_path):
    r = subprocess.run(
        [MR, "lint", "--json", spec_path], capture_output=True
    )
    return r.stdout.decode()


def main():
    jobs = make_jobs()
    ids = sorted(jobs, key=lambda s: int(s.split("-")[1]))
    print(f"job mix: {len(ids)} jobs "
          f"({sum(1 for k, *_ in jobs.values() if k == 'refine')} refine, "
          f"{sum(1 for k, *_ in jobs.values() if k == 'lint')} lint, "
          f"{sum(1 for k, *_ in jobs.values() if k == 'explore')} explore, "
          f"{sum(1 for k, *_ in jobs.values() if k == 'faults')} faults)")

    # Phase 1: concurrent submits, then SIGKILL mid-load.
    proc = start_daemon()
    submitted = []
    n_threads = 8
    slices = [ids[i::n_threads] for i in range(n_threads)]
    threads = [
        threading.Thread(target=submit_some, args=(s, jobs, submitted))
        for s in slices
    ]
    for t in threads:
        t.start()
    # Kill mid-load: once a chunk of submits is acknowledged but before
    # the queue can drain.
    deadline = time.time() + 10.0
    while len(submitted) < 60 and any(t.is_alive() for t in threads) \
            and time.time() < deadline:
        time.sleep(0.002)
    os.kill(proc.pid, signal.SIGKILL)
    proc.wait()
    for t in threads:
        t.join()
    print(f"SIGKILL after {len(submitted)} acknowledged submits")

    # Phase 2: restart on the same journal; resubmit everything
    # (idempotent), then wait every job to a terminal state.
    proc = start_daemon()
    c = Client()
    states, outputs, metas, replayed = {}, {}, {}, 0
    for job_id in ids:
        r = c.rpc({"op": "submit", "id": job_id, "job": jobs[job_id][1]})
        assert r.get("ok"), f"{job_id}: resubmit failed: {r}"
    for job_id in ids:
        r = c.rpc({"op": "result", "id": job_id, "wait": True})
        assert r.get("ok"), f"{job_id}: result failed: {r}"
        states[job_id] = r["state"]
        outputs[job_id] = r.get("output", "")
        metas[job_id] = r.get("meta", {})
        replayed += bool(r.get("replayed"))
    stats = c.rpc({"op": "stats"})
    c.rpc({"op": "shutdown"})
    c.close()
    proc.wait(timeout=30)

    bad = {i: s for i, s in states.items()
           if s not in ("done", "failed", "cancelled")}
    assert not bad, f"non-terminal jobs after restart: {bad}"
    failed = {i: s for i, s in states.items() if s != "done"}
    assert not failed, f"jobs did not complete: {failed}"
    print(f"all {len(ids)} jobs done after restart "
          f"({replayed} served from the journal)")

    # Byte-identity of served refine/lint results against the cold CLI.
    cli_cache = {}
    checked = 0
    for job_id in ids:
        kind, job, spec_path = jobs[job_id]
        if kind == "refine":
            key = (spec_path, job["model"], job["parts"], job["seed"])
            if key not in cli_cache:
                cli_cache[key] = cold_refine(
                    spec_path, job["model"], job["parts"], job["seed"])
            assert outputs[job_id] == cli_cache[key], \
                f"{job_id}: served refine differs from cold CLI"
            checked += 1
        elif kind == "lint":
            key = ("lint", job["file"])
            if key not in cli_cache:
                cli_cache[key] = cold_lint(job["file"])
            assert outputs[job_id] == cli_cache[key], \
                f"{job_id}: served lint differs from cold CLI"
            checked += 1
        elif kind == "explore":
            cov = metas[job_id].get("coverage")
            assert cov == 1.0, f"{job_id}: explore coverage {cov} != 1.0"
    print(f"{checked} refine/lint results bit-identical to the cold CLI; "
          f"explore jobs at coverage 1.0")
    print("serve smoke ok:", json.dumps(
        {k: stats[k] for k in ("jobs", "done", "batches") if k in stats}))


if __name__ == "__main__":
    main()
