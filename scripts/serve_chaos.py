#!/usr/bin/env python3
"""Chaos smoke test for the mrefine serve daemon.

Runs a token-guarded TCP daemon behind the seeded fault-injecting
`mrefine chaos` proxy (connections dropped mid-frame, torn writes,
trickle delays, garbage bytes, resets), drives ~200 mixed jobs through
the proxy from retrying client threads, SIGTERMs the daemon mid-load
(graceful drain), restarts it on the same journal, and then requires:

  - the drained daemon exits 0;
  - every job converges to done after the restart (idempotent
    resubmission under deterministic client ids — no lost and no
    double-executed work);
  - every refine and lint result is bit-identical to the cold CLI run
    of the same parameters;
  - every explore job completes at coverage 1.0.

Usage: serve_chaos.py [path/to/mrefine.exe]
"""

import json
import os
import random
import re
import signal
import socket
import subprocess
import sys
import tempfile
import time
import threading

MR = sys.argv[1] if len(sys.argv) > 1 else "_build/default/bin/mrefine.exe"
SPECS = ["examples/specs/fig1.sc", "examples/specs/fig2.sc"]
TOKEN = "chaos-smoke-token"
SEED = 1234

WORKDIR = tempfile.mkdtemp(prefix="serve_chaos_")
SOCK = os.path.join(WORKDIR, "daemon.sock")
JOURNAL = os.path.join(WORKDIR, "serve.journal")


def free_port():
    s = socket.socket()
    s.bind(("127.0.0.1", 0))
    port = s.getsockname()[1]
    s.close()
    return port


DAEMON_PORT = free_port()


def wait_tcp(port, deadline=20.0):
    end = time.time() + deadline
    while time.time() < end:
        try:
            s = socket.create_connection(("127.0.0.1", port), timeout=1.0)
            s.close()
            return
        except OSError:
            time.sleep(0.05)
    raise SystemExit(f"port {port} did not come up within {deadline}s")


def start_daemon():
    proc = subprocess.Popen(
        [MR, "serve", "--socket", SOCK, "--journal", JOURNAL,
         "--listen", f"127.0.0.1:{DAEMON_PORT}", "--token", TOKEN],
        stderr=subprocess.DEVNULL,
    )
    wait_tcp(DAEMON_PORT)
    return proc


def start_proxy():
    log = open(os.path.join(WORKDIR, "chaos.log"), "w+")
    proc = subprocess.Popen(
        [MR, "chaos", "--listen", "127.0.0.1:0",
         "--upstream", f"127.0.0.1:{DAEMON_PORT}", "--seed", str(SEED)],
        stderr=log,
    )
    deadline = time.time() + 20.0
    while time.time() < deadline:
        log.seek(0)
        m = re.search(r"tcp port (\d+)", log.read())
        if m:
            port = int(m.group(1))
            wait_tcp(port)
            return proc, port
        if proc.poll() is not None:
            raise SystemExit(f"proxy exited early with {proc.returncode}")
        time.sleep(0.05)
    raise SystemExit("proxy did not announce its port within 20s")


def rpc_via(port, obj, retries=40, timeout=30.0):
    """One request through the chaos proxy: fresh authenticated
    connection per attempt, jittered backoff between attempts, honoring
    the daemon's retry_after_ms backpressure hint.  Every request we
    send is idempotent (submits carry ids), so retrying is safe."""
    for attempt in range(retries):
        try:
            s = socket.create_connection(("127.0.0.1", port), timeout=timeout)
            f = s.makefile("rwb")
            for req in ({"op": "auth", "token": TOKEN}, obj):
                f.write((json.dumps(req) + "\n").encode())
                f.flush()
                line = f.readline()
                if not line:
                    raise ConnectionError("connection dropped")
                r = json.loads(line)
                if not r.get("ok"):
                    if "retry_after_ms" in r:
                        time.sleep(r["retry_after_ms"] / 1000.0)
                        raise ConnectionError("daemon busy")
                    raise ConnectionError(f"refused: {r.get('error')}")
            s.close()
            return r
        except (ConnectionError, OSError, ValueError):
            time.sleep(min(2.0, 0.02 * (2 ** min(attempt, 6))
                           * (0.5 + random.random())))
    raise SystemExit(f"no successful reply after {retries} attempts: {obj}")


def spec_text(path):
    with open(path) as f:
        return f.read()


def make_jobs():
    """~200 mixed jobs, keyed by deterministic ids for idempotent
    resubmission across faults and the daemon restart."""
    jobs = {}

    def add(kind, job, path):
        jobs[f"chaos-{len(jobs)}"] = (kind, job, path)

    texts = [spec_text(p) for p in SPECS]
    for i in range(160):
        add(
            "refine",
            {
                "kind": "refine",
                "spec": texts[i % 2],
                "model": f"model{1 + i % 4}",
                "parts": 2,
                "seed": 42 + (i // 8) % 2,
            },
            SPECS[i % 2],
        )
    for i in range(30):
        add(
            "lint",
            {
                "kind": "lint",
                "spec": texts[i % 2],
                "file": SPECS[i % 2],
                "json": True,
            },
            SPECS[i % 2],
        )
    for i in range(6):
        add(
            "explore",
            {
                "kind": "explore",
                "spec": texts[i % 2],
                "seeds": [1],
                "models": ["model2"],
                "steps": 200,
                "json": True,
            },
            SPECS[i % 2],
        )
    for i in range(4):
        add(
            "faults",
            {
                "kind": "faults",
                "spec": texts[i % 2],
                "model": "model2",
                "seeds": 2,
                "json": True,
            },
            SPECS[i % 2],
        )
    return jobs


def submit_some(port, ids, jobs, submitted):
    for job_id in ids:
        _kind, job, _path = jobs[job_id]
        try:
            r = rpc_via(port, {"op": "submit", "id": job_id, "job": job},
                        retries=12, timeout=10.0)
            if r.get("ok"):
                submitted.append(job_id)
        except SystemExit:
            # mid-load the daemon is SIGTERMed: late submits may never
            # land; phase 2 resubmits everything
            return


def cold_refine(spec_path, model, parts, seed):
    return subprocess.run(
        [MR, "refine", "-q", "-m", model[-1], "-p", str(parts),
         "--seed", str(seed), spec_path],
        check=True, capture_output=True,
    ).stdout.decode()


def cold_lint(spec_path):
    r = subprocess.run(
        [MR, "lint", "--json", spec_path], capture_output=True
    )
    return r.stdout.decode()


def main():
    jobs = make_jobs()
    ids = sorted(jobs, key=lambda s: int(s.split("-")[1]))
    print(f"job mix: {len(ids)} jobs through chaos proxy (seed {SEED})")

    # Phase 1: submits through the fault-injecting proxy, then SIGTERM
    # (graceful drain) mid-load.
    daemon = start_daemon()
    proxy, proxy_port = start_proxy()
    submitted = []
    n_threads = 8
    slices = [ids[i::n_threads] for i in range(n_threads)]
    threads = [
        threading.Thread(target=submit_some,
                         args=(proxy_port, s, jobs, submitted))
        for s in slices
    ]
    for t in threads:
        t.start()
    deadline = time.time() + 30.0
    while len(submitted) < 60 and any(t.is_alive() for t in threads) \
            and time.time() < deadline:
        time.sleep(0.002)
    os.kill(daemon.pid, signal.SIGTERM)
    rc = daemon.wait(timeout=30)
    assert rc == 0, f"drained daemon exited {rc}, want 0"
    for t in threads:
        t.join()
    print(f"SIGTERM after {len(submitted)} acknowledged submits; "
          f"daemon drained and exited 0")

    # Phase 2: restart on the same journal and port; resubmit everything
    # through the (still faulty) proxy, then wait every job out.
    daemon = start_daemon()
    for job_id in ids:
        r = rpc_via(proxy_port,
                    {"op": "submit", "id": job_id, "job": jobs[job_id][1]})
        assert r.get("ok"), f"{job_id}: resubmit failed: {r}"
    states, outputs, metas, replayed = {}, {}, {}, 0
    for job_id in ids:
        r = rpc_via(proxy_port,
                    {"op": "result", "id": job_id, "wait": True})
        assert r.get("ok"), f"{job_id}: result failed: {r}"
        states[job_id] = r["state"]
        outputs[job_id] = r.get("output", "")
        metas[job_id] = r.get("meta", {})
        replayed += bool(r.get("replayed"))
    stats = rpc_via(proxy_port, {"op": "stats"})
    proxy.terminate()
    proxy.wait(timeout=10)
    # shut the daemon down directly (not through the proxy): the
    # shutdown op is not idempotent, so it gets a clean transport
    s = socket.create_connection(("127.0.0.1", DAEMON_PORT), timeout=10.0)
    f = s.makefile("rwb")
    for req in ({"op": "auth", "token": TOKEN}, {"op": "shutdown"}):
        f.write((json.dumps(req) + "\n").encode())
        f.flush()
        f.readline()
    s.close()
    rc = daemon.wait(timeout=30)
    assert rc == 0, f"daemon exited {rc} after shutdown, want 0"

    failed = {i: s for i, s in states.items() if s != "done"}
    assert not failed, f"jobs did not complete: {failed}"
    print(f"all {len(ids)} jobs done after restart "
          f"({replayed} served from the journal)")

    # Byte-identity of served refine/lint results against the cold CLI:
    # transport chaos must never corrupt or fork a result.
    cli_cache = {}
    checked = 0
    for job_id in ids:
        kind, job, spec_path = jobs[job_id]
        if kind == "refine":
            key = (spec_path, job["model"], job["parts"], job["seed"])
            if key not in cli_cache:
                cli_cache[key] = cold_refine(
                    spec_path, job["model"], job["parts"], job["seed"])
            assert outputs[job_id] == cli_cache[key], \
                f"{job_id}: served refine differs from cold CLI"
            checked += 1
        elif kind == "lint":
            key = ("lint", job["file"])
            if key not in cli_cache:
                cli_cache[key] = cold_lint(job["file"])
            assert outputs[job_id] == cli_cache[key], \
                f"{job_id}: served lint differs from cold CLI"
            checked += 1
        elif kind == "explore":
            cov = metas[job_id].get("coverage")
            assert cov == 1.0, f"{job_id}: explore coverage {cov} != 1.0"
    print(f"{checked} refine/lint results bit-identical to the cold CLI "
          f"under transport chaos; explore jobs at coverage 1.0")
    srv = stats.get("server", {})
    print("serve chaos ok:", json.dumps(
        {**{k: stats[k] for k in ("jobs", "done", "batches") if k in stats},
         **{k: srv[k] for k in ("connections_total", "auth_failures",
                                "reaped_timeouts", "accept_errors")
            if k in srv}}))


if __name__ == "__main__":
    main()
