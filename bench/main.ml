(** Benchmark harness: regenerates every table and figure of the paper's
    evaluation (Section 5) on the reconstructed medical workload.

    - Figure 9: required bus transfer rate (Mbit/s) of every bus, for the
      three designs under the four implementation models, in the paper's
      bus layout (b1..b6).
    - Figure 10: size of the refined specification (lines) and the CPU
      time of the refinement.
    - The derived claims: specification growth ratio, per-design model
      ranking by maximum bus rate, bus-count bounds per model.
    - Ablation: profiled vs uniform channel rates.
    - Design-space exploration throughput: candidates evaluated per
      second at 1 vs N domains, and the memoization hit rate of a
      repeated sweep.
    - Bechamel micro-benchmarks of the refiner, the access-graph
      derivation, the partitioners and the simulator. *)

open Workloads

let allocation = Designs.allocation

let graph = Medical.graph
let spec = Medical.spec

(* ------------------------------------------------------------------ *)
(* Figure 9: bus transfer rates                                        *)
(* ------------------------------------------------------------------ *)

type bus_cell = { cell_label : string; cell_rate : float }

(* Rates of the buses of one (design, model) pair, in the paper's column
   layout for p = 2.  Model4's three chain segments carry the same
   traffic, hence the single "b2=b3=b4" figure, exactly as printed in the
   paper's table. *)
let bus_rates design model =
  let part = design.Designs.d_partition in
  let env = Estimate.Rates.make_env spec allocation part in
  let plan = Core.Bus_plan.build model graph part in
  let rate edges = Estimate.Rates.bus_rate_mbps env edges in
  let find role =
    match
      List.find_opt
        (fun (b : Core.Bus_plan.bus) ->
          Core.Bus_plan.equal_role b.Core.Bus_plan.bus_role role)
        plan.Core.Bus_plan.bp_buses
    with
    | Some b -> rate b.Core.Bus_plan.bus_edges
    | None -> 0.0
  in
  match model with
  | Core.Model.Model1 ->
    [ { cell_label = "b1"; cell_rate = find Core.Bus_plan.Shared_global } ]
  | Core.Model.Model2 ->
    [
      { cell_label = "b1"; cell_rate = find (Core.Bus_plan.Local 0) };
      { cell_label = "b2"; cell_rate = find Core.Bus_plan.Shared_global };
      { cell_label = "b3"; cell_rate = find (Core.Bus_plan.Local 1) };
    ]
  | Core.Model.Model3 ->
    [
      { cell_label = "b1"; cell_rate = find (Core.Bus_plan.Local 0) };
      { cell_label = "b2";
        cell_rate = find (Core.Bus_plan.Dedicated { master = 0; mem = 0 }) };
      { cell_label = "b3";
        cell_rate = find (Core.Bus_plan.Dedicated { master = 0; mem = 1 }) };
      { cell_label = "b4";
        cell_rate = find (Core.Bus_plan.Dedicated { master = 1; mem = 1 }) };
      { cell_label = "b5";
        cell_rate = find (Core.Bus_plan.Dedicated { master = 1; mem = 0 }) };
      { cell_label = "b6"; cell_rate = find (Core.Bus_plan.Local 1) };
    ]
  | Core.Model.Model4 ->
    [
      { cell_label = "b1"; cell_rate = find (Core.Bus_plan.Local 0) };
      { cell_label = "b2=b3=b4"; cell_rate = find Core.Bus_plan.Chain_inter };
      { cell_label = "b5"; cell_rate = find (Core.Bus_plan.Local 1) };
    ]

let fmt_rates cells =
  String.concat ", "
    (List.map (fun c -> Printf.sprintf "%.0f" c.cell_rate) cells)

let figure9 () =
  print_endline "";
  print_endline
    "== Figure 9: bus transfer rates (Mbit/s) in three designs, four models ==";
  Printf.printf "%-22s | %-9s | %-22s | %-38s | %-18s\n" "Design" "Model1 b1"
    "Model2 b1,b2,b3" "Model3 b1,b2,b3,b4,b5,b6" "Model4 b1,b2=b3=b4,b5";
  List.iter
    (fun d ->
      Printf.printf "%-22s | %-9s | %-22s | %-38s | %-18s\n"
        (d.Designs.d_name ^ " " ^ d.Designs.d_description)
        (fmt_rates (bus_rates d Core.Model.Model1))
        (fmt_rates (bus_rates d Core.Model.Model2))
        (fmt_rates (bus_rates d Core.Model.Model3))
        (fmt_rates (bus_rates d Core.Model.Model4)))
    Designs.all

(* Structural identities the paper's table obeys (up to rounding); we
   print them as a self-check. *)
let identities () =
  print_endline "";
  print_endline "== Rate identities (consistency of the four models) ==";
  List.iter
    (fun d ->
      let get m = bus_rates d m in
      let m1 = get Core.Model.Model1 and m2 = get Core.Model.Model2 in
      let m3 = get Core.Model.Model3 and m4 = get Core.Model.Model4 in
      let r cells i = (List.nth cells i).cell_rate in
      let close a b = Float.abs (a -. b) < 1e-6 *. (1.0 +. Float.abs a) in
      let checks =
        [
          ("M1.b1 = M2.b1+b2+b3", close (r m1 0) (r m2 0 +. r m2 1 +. r m2 2));
          ( "M2.b2 = M3.b2+b3+b4+b5",
            close (r m2 1) (r m3 1 +. r m3 2 +. r m3 3 +. r m3 4) );
          ("M2.b1 = M3.b1", close (r m2 0) (r m3 0));
          ("M2.b3 = M3.b6", close (r m2 2) (r m3 5));
          ("M4.b1 = M3.b1+b2", close (r m4 0) (r m3 0 +. r m3 1));
          ("M4.b5 = M3.b6+b4", close (r m4 2) (r m3 5 +. r m3 3));
          ("M4.chain = M3.b3+b5", close (r m4 1) (r m3 2 +. r m3 4));
        ]
      in
      Printf.printf "%-10s %s\n" d.Designs.d_name
        (String.concat "  "
           (List.map
              (fun (name, ok) ->
                Printf.sprintf "[%s %s]" name (if ok then "ok" else "VIOLATED"))
              checks)))
    Designs.all

(* ------------------------------------------------------------------ *)
(* Figure 10: refined size and refinement CPU time                     *)
(* ------------------------------------------------------------------ *)

let time_of f =
  (* Median CPU time of several runs, in milliseconds. *)
  let runs = 5 in
  let samples =
    List.init runs (fun _ ->
        let t0 = Sys.time () in
        ignore (Sys.opaque_identity (f ()));
        (Sys.time () -. t0) *. 1000.0)
  in
  List.nth (List.sort compare samples) (runs / 2)

let figure10 () =
  print_endline "";
  print_endline
    "== Figure 10: lines of refined specification / refinement CPU time ==";
  let original_lines = Spec.Printer.line_count spec in
  Printf.printf "original specification: %d lines\n" original_lines;
  Printf.printf "%-22s" "Design";
  List.iter (fun m -> Printf.printf " | %-16s" (Core.Model.name m)) Core.Model.all;
  print_newline ();
  List.iter
    (fun d ->
      Printf.printf "%-22s" (d.Designs.d_name ^ " " ^ d.Designs.d_description);
      List.iter
        (fun m ->
          let refined = Core.Refiner.refine spec graph d.Designs.d_partition m in
          let lines = Spec.Printer.line_count refined.Core.Refiner.rf_program in
          let ms =
            time_of (fun () ->
                Core.Refiner.refine spec graph d.Designs.d_partition m)
          in
          Printf.printf " | %4d ln %6.2fms" lines ms)
        Core.Model.all;
      print_newline ())
    Designs.all;
  print_endline "";
  print_endline "-- growth ratio (refined / original lines) --";
  List.iter
    (fun d ->
      Printf.printf "%-10s" d.Designs.d_name;
      List.iter
        (fun m ->
          let refined = Core.Refiner.refine spec graph d.Designs.d_partition m in
          Printf.printf "  %s=%.1fx" (Core.Model.name m)
            (Core.Metrics.growth ~original:spec
               ~refined:refined.Core.Refiner.rf_program))
        Core.Model.all;
      print_newline ())
    Designs.all

(* ------------------------------------------------------------------ *)
(* Model ranking per design (the paper's qualitative conclusions)      *)
(* ------------------------------------------------------------------ *)

let max_rate cells =
  List.fold_left (fun acc c -> Float.max acc c.cell_rate) 0.0 cells

let winners () =
  print_endline "";
  print_endline
    "== Model ranking by maximum required bus rate (lower is better) ==";
  List.iter
    (fun d ->
      let scored =
        List.map (fun m -> (m, max_rate (bus_rates d m))) Core.Model.all
      in
      let sorted = List.sort (fun (_, a) (_, b) -> Float.compare a b) scored in
      Printf.printf "%-10s %s\n"
        (d.Designs.d_name ^ ":")
        (String.concat " < "
           (List.map
              (fun (m, r) -> Printf.sprintf "%s(%.0f)" (Core.Model.name m) r)
              sorted)))
    Designs.all

(* ------------------------------------------------------------------ *)
(* Bus-count sweep: instantiated buses vs the Section 3 bounds          *)
(* ------------------------------------------------------------------ *)

let bus_count_sweep () =
  print_endline "";
  print_endline
    "== Bus-count sweep: instantiated buses vs model bound (p partitions) ==";
  Printf.printf "%-4s" "p";
  List.iter
    (fun m -> Printf.printf " | %s used/bound" (Core.Model.name m))
    Core.Model.all;
  print_newline ();
  List.iter
    (fun p ->
      let cfg =
        {
          Generator.default_config with
          gen_seed = 100 + p;
          gen_vars = 4 * p;
          gen_leaves = 4 * p;
        }
      in
      let prog = Generator.program cfg in
      let g = Agraph.Access_graph.of_program prog in
      let part = Generator.random_partition ~seed:p g ~n_parts:p in
      Printf.printf "%-4d" p;
      List.iter
        (fun m ->
          let r = Core.Refiner.refine prog g part m in
          Printf.printf " | %2d/%-2d              "
            (List.length r.Core.Refiner.rf_buses)
            (Core.Model.max_buses m ~p))
        Core.Model.all;
      print_newline ())
    [ 2; 3; 4; 5; 6 ]

(* ------------------------------------------------------------------ *)
(* Ablation: profiled vs uniform channel rates                         *)
(* ------------------------------------------------------------------ *)

let ablation_rates () =
  print_endline "";
  print_endline
    "== Ablation: model ranking under profiled vs uniform channel counts ==";
  let ranking graph' =
    List.map
      (fun d ->
        let part = d.Designs.d_partition in
        let env = Estimate.Rates.make_env spec allocation part in
        let score m =
          let plan = Core.Bus_plan.build m graph' part in
          List.fold_left
            (fun acc (b : Core.Bus_plan.bus) ->
              Float.max acc
                (Estimate.Rates.bus_rate_mbps env b.Core.Bus_plan.bus_edges))
            0.0 plan.Core.Bus_plan.bp_buses
        in
        let sorted =
          List.sort (fun a b -> Float.compare (score a) (score b)) Core.Model.all
        in
        (d.Designs.d_name, List.map Core.Model.name sorted))
      Designs.all
  in
  let profiled = ranking graph in
  let uniform =
    ranking (Agraph.Access_graph.of_program ~while_iterations:1 spec)
  in
  List.iter2
    (fun (d, rp) (_, ru) ->
      Printf.printf "%-10s profiled: %-35s uniform: %-35s %s\n" d
        (String.concat " < " rp)
        (String.concat " < " ru)
        (if rp = ru then "(same)" else "(differs)"))
    profiled uniform

(* ------------------------------------------------------------------ *)
(* Ablation: four-phase vs two-phase bus protocol                      *)
(* ------------------------------------------------------------------ *)

let ablation_protocol () =
  print_endline "";
  print_endline
    "== Ablation: four-phase (Fig 5d) vs two-phase handshake (simulated deltas) ==";
  List.iter
    (fun d ->
      Printf.printf "%-10s" d.Designs.d_name;
      List.iter
        (fun m ->
          let deltas protocol =
            let options = { Core.Refiner.default_options with protocol } in
            let r =
              Core.Refiner.refine ~options spec graph d.Designs.d_partition m
            in
            (Sim.Engine.run r.Core.Refiner.rf_program).Sim.Engine.r_deltas
          in
          let four = deltas Core.Protocol.Four_phase in
          let two = deltas Core.Protocol.Two_phase in
          Printf.printf "  %s: %d -> %d (%.2fx)" (Core.Model.name m) four two
            (float_of_int four /. float_of_int (max 1 two)))
        Core.Model.all;
      print_newline ())
    Designs.all

(* ------------------------------------------------------------------ *)
(* Design-space exploration: parallel throughput and cache hit rate    *)
(* ------------------------------------------------------------------ *)

let explore_bench () =
  print_endline "";
  print_endline
    "== Explore: candidates/second at 1 vs N domains, cache hit rate ==";
  let config =
    {
      Explore.Sweep.default_config with
      Explore.Sweep.seeds = [ 1; 2; 3 ];
      steps = 1500;
    }
  in
  let n_candidates =
    List.length
      (Explore.Candidate.enumerate ~n_parts:config.Explore.Sweep.n_parts
         ~steps:config.Explore.Sweep.steps ~seeds:config.Explore.Sweep.seeds
         ~models:config.Explore.Sweep.models ())
  in
  let sweep_at ?cache jobs =
    let t0 = Unix.gettimeofday () in
    let sw =
      Explore.Sweep.run ?cache { config with Explore.Sweep.jobs } spec
    in
    let dt = Unix.gettimeofday () -. t0 in
    (sw, dt)
  in
  let report label (sw, dt) =
    Printf.printf
      "%-24s %5.2fs  %6.1f candidates/s  cache %d hits / %d misses\n" label dt
      (float_of_int (List.length sw.Explore.Sweep.sw_results) /. dt)
      sw.Explore.Sweep.sw_hits sw.Explore.Sweep.sw_misses
  in
  Printf.printf "candidate space: %d candidates (3 seeds x 3 biases x 4 models)\n"
    n_candidates;
  let cold1 = sweep_at 1 in
  report "cold, --jobs 1" cold1;
  let cold4 = sweep_at 4 in
  report "cold, --jobs 4" cold4;
  let sw1, dt1 = cold1 and sw4, dt4 = cold4 in
  Printf.printf "speedup (1 -> 4 domains): %.2fx on %d cores\n" (dt1 /. dt4)
    (Explore.Pool.default_jobs ());
  (* Repeated sweep through one shared cache: the annealing re-runs but
     every refine->check->quality tail must hit. *)
  let cache = Explore.Cache.create () in
  let _warm = Explore.Sweep.run ~cache config spec in
  Explore.Cache.reset_stats cache;
  let repeat, _ = sweep_at ~cache 1 in
  Printf.printf "repeated sweep hit rate: %.0f%% (%d hits / %d misses)\n"
    (100.0
    *. float_of_int repeat.Explore.Sweep.sw_hits
    /. float_of_int
         (max 1 (repeat.Explore.Sweep.sw_hits + repeat.Explore.Sweep.sw_misses)))
    repeat.Explore.Sweep.sw_hits repeat.Explore.Sweep.sw_misses;
  (* Determinism spot-check: the frontiers at 1 and 4 domains agree. *)
  let labels sw =
    List.map
      (fun (r : Explore.Evaluate.result) ->
        Explore.Candidate.label r.Explore.Evaluate.r_candidate)
      sw.Explore.Sweep.sw_frontier
  in
  Printf.printf "frontiers identical across domain counts: %b\n"
    (labels sw1 = labels sw4)

(* ------------------------------------------------------------------ *)
(* Fault campaigns: survival under injection, hardened vs unhardened    *)
(* ------------------------------------------------------------------ *)

let faults_bench () =
  print_endline "";
  print_endline
    "== Faults: campaign robustness and cost of hardening (2 seeds/class) ==";
  let config =
    { Faults.Campaign.default_config with Faults.Campaign.cf_seeds = 2 }
  in
  let part = (List.hd Designs.all).Designs.d_partition in
  List.iter
    (fun m ->
      let campaign harden =
        let options = { Core.Refiner.default_options with harden } in
        let r = Core.Refiner.refine ~options spec graph part m in
        let deltas =
          (Sim.Engine.run r.Core.Refiner.rf_program).Sim.Engine.r_deltas
        in
        let t0 = Unix.gettimeofday () in
        let report = Faults.Campaign.run ~config r in
        (report, deltas, Unix.gettimeofday () -. t0)
      in
      let plain, d_plain, t_plain = campaign false in
      let hard, d_hard, t_hard = campaign true in
      Printf.printf
        "%-7s robustness %.3f -> %.3f  fault-free deltas %d -> %d (%.2fx)  \
         campaign %.2fs -> %.2fs\n"
        (Core.Model.name m) plain.Faults.Campaign.rp_robustness
        hard.Faults.Campaign.rp_robustness d_plain d_hard
        (float_of_int d_hard /. float_of_int (max 1 d_plain))
        t_plain t_hard)
    Core.Model.all

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                            *)
(* ------------------------------------------------------------------ *)

let bechamel_tests () =
  let open Bechamel in
  let refine_tests =
    List.concat_map
      (fun d ->
        List.map
          (fun m ->
            Test.make
              ~name:
                (Printf.sprintf "refine/%s/%s" d.Designs.d_name
                   (Core.Model.name m))
              (Staged.stage (fun () ->
                   Core.Refiner.refine spec graph d.Designs.d_partition m)))
          Core.Model.all)
      Designs.all
  in
  let other_tests =
    [
      Test.make ~name:"graph/medical"
        (Staged.stage (fun () -> Agraph.Access_graph.of_program spec));
      Test.make ~name:"partition/greedy"
        (Staged.stage (fun () -> Partitioning.Greedy.run graph ~n_parts:2));
      Test.make ~name:"partition/kl"
        (Staged.stage (fun () ->
             Partitioning.Kl.run_from_scratch graph ~n_parts:2));
      Test.make ~name:"partition/clustering"
        (Staged.stage (fun () -> Partitioning.Clustering.run graph ~n_parts:2));
      Test.make ~name:"partition/annealing"
        (Staged.stage (fun () ->
             Partitioning.Annealing.run
               ~config:{ Partitioning.Annealing.default_config with steps = 500 }
               graph ~n_parts:2));
      Test.make ~name:"simulate/original"
        (Staged.stage (fun () -> Sim.Engine.run spec));
      Test.make ~name:"simulate/refined-m2"
        (let refined =
           Core.Refiner.refine spec graph Designs.design1.Designs.d_partition
             Core.Model.Model2
         in
         Staged.stage (fun () -> Sim.Engine.run refined.Core.Refiner.rf_program));
      Test.make ~name:"simulate/refined-m2-polling"
        (let refined =
           Core.Refiner.refine spec graph Designs.design1.Designs.d_partition
             Core.Model.Model2
         in
         Staged.stage (fun () ->
             Sim.Reference.run refined.Core.Refiner.rf_program));
      Test.make ~name:"print/refined-m4"
        (let refined =
           Core.Refiner.refine spec graph Designs.design3.Designs.d_partition
             Core.Model.Model4
         in
         Staged.stage (fun () ->
             Spec.Printer.program_to_string refined.Core.Refiner.rf_program));
      Test.make ~name:"parse/medical"
        (let text = Spec.Printer.program_to_string spec in
         Staged.stage (fun () -> Spec.Parser.program_of_string_exn text));
    ]
  in
  Test.make_grouped ~name:"coref" (refine_tests @ other_tests)

let run_bechamel () =
  let open Bechamel in
  let open Toolkit in
  print_endline "";
  print_endline "== Bechamel micro-benchmarks (time per run) ==";
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.25) ~kde:None () in
  let raw = Benchmark.all cfg instances (bechamel_tests ()) in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let ns =
          match Analyze.OLS.estimates ols with
          | Some [ est ] -> est
          | Some _ | None -> Float.nan
        in
        (name, ns) :: acc)
      results []
  in
  List.iter
    (fun (name, ns) ->
      if ns >= 1e6 then Printf.printf "%-32s %10.3f ms/run\n" name (ns /. 1e6)
      else Printf.printf "%-32s %10.3f us/run\n" name (ns /. 1e3))
    (List.sort (fun (a, _) (b, _) -> String.compare a b) rows)

(* ------------------------------------------------------------------ *)
(* Appendix: the same comparison on a second workload                  *)
(* ------------------------------------------------------------------ *)

let workload_appendix name spec graph part =
  print_endline "";
  Printf.printf "== Appendix: %s, same comparison ==\n" name;
  let env = Estimate.Rates.make_env spec allocation part in
  let report = Partitioning.Classify.report graph part in
  Printf.printf
    "%s: %d lines, %d channels, %d local / %d global variables\n" name
    (Spec.Printer.line_count spec)
    (Agraph.Access_graph.channel_count graph)
    (List.length report.Partitioning.Classify.locals)
    (List.length report.Partitioning.Classify.globals);
  List.iter
    (fun m ->
      let plan = Core.Bus_plan.build m graph part in
      let rates =
        List.filter_map
          (fun (b : Core.Bus_plan.bus) ->
            match b.Core.Bus_plan.bus_edges with
            | [] -> None
            | edges ->
              Some
                (Printf.sprintf "%s=%.0f"
                   (Core.Bus_plan.role_label b.Core.Bus_plan.bus_role)
                   (Estimate.Rates.bus_rate_mbps env edges)))
          plan.Core.Bus_plan.bp_buses
      in
      let refined = Core.Refiner.refine spec graph part m in
      Printf.printf "  %-7s %4d lines  rates [%s]\n" (Core.Model.name m)
        (Spec.Printer.line_count refined.Core.Refiner.rf_program)
        (String.concat ", " rates))
    Core.Model.all

(* ------------------------------------------------------------------ *)
(* --json: the simulation-kernel benchmark, machine-readable            *)
(* ------------------------------------------------------------------ *)

(* A compact perf snapshot (BENCH_sim.json) tracking the event-driven
   kernel against the retained polling kernel: per-run simulation time,
   fault-campaign wall clock, and explore-sweep throughput.  CI uploads
   it on every run so the trajectory is visible across PRs. *)

(* Per-run wall time in microseconds: warm up (which also primes the
   engine's session cache, the steady state every real caller sees),
   then amortize over enough runs to dwarf timer noise. *)
let us_per_run f =
  for _ = 1 to 3 do
    ignore (Sys.opaque_identity (f ()))
  done;
  let t0 = Unix.gettimeofday () in
  let n = ref 0 in
  while Unix.gettimeofday () -. t0 < 0.3 do
    ignore (Sys.opaque_identity (f ()));
    incr n
  done;
  (Unix.gettimeofday () -. t0) *. 1e6 /. float_of_int (max 1 !n)

let seconds_of f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let bench_json out_path =
  (* -- simulate: both kernels on the same programs ------------------- *)
  let refined m =
    (Core.Refiner.refine spec graph Designs.design1.Designs.d_partition m)
      .Core.Refiner.rf_program
  in
  let sim_cases =
    [
      ("original", spec);
      ("refined-m2", refined Core.Model.Model2);
      ("refined-m4", refined Core.Model.Model4);
    ]
  in
  let sim_identical = ref true in
  let sim_rows =
    List.map
      (fun (name, p) ->
        (* Gate before timing: one fully traced run per backend must be
           bit-identical across the VM, the tree-walker and the polling
           oracle, or the benchmark exits nonzero — a fast kernel that
           drifts observably is a regression, not a win. *)
        let traced =
          { Sim.Engine.default_config with Sim.Engine.trace_signals = true }
        in
        let vm_r = Sim.Engine.run ~config:traced p in
        let same =
          vm_r = Sim.Engine.run ~config:traced ~backend:`Treewalk p
          && vm_r = Sim.Reference.run ~config:traced p
        in
        if not same then sim_identical := false;
        let engine_vm = us_per_run (fun () -> Sim.Engine.run p) in
        let engine_tree =
          us_per_run (fun () -> Sim.Engine.run ~backend:`Treewalk p)
        in
        let polling = us_per_run (fun () -> Sim.Reference.run p) in
        Printf.printf
          "simulate/%-12s vm %8.1f us  tree %8.1f us  polling %8.1f us  \
           (vm %.2fx over tree, %.2fx over polling)  observables %s\n"
          name engine_vm engine_tree polling (engine_tree /. engine_vm)
          (polling /. engine_vm)
          (if same then "identical" else "DIVERGED");
        (* engine_us/speedup keep their historical meaning (the default
           engine backend vs the polling kernel) for trend continuity. *)
        Printf.sprintf
          "{\"name\":\"%s\",\"engine_vm_us\":%.1f,\"engine_tree_us\":%.1f,\
           \"vm_speedup\":%.2f,\"engine_us\":%.1f,\"polling_us\":%.1f,\
           \"speedup\":%.2f,\"observables_identical\":%b}"
          name engine_vm engine_tree
          (engine_tree /. engine_vm)
          engine_vm polling (polling /. engine_vm) same)
      sim_cases
  in
  let sim_identical = !sim_identical in
  (* -- lint: full registry sweep, flow-insensitive vs flow-sensitive -- *)
  let lint_rows =
    List.map
      (fun (name, p) ->
        let row flow =
          let n = List.length (Lint.Registry.run ~flow p) in
          (* The flow summary cache is primed by the warm-up runs, so
             this measures the steady state a serve daemon or repeated
             CLI sweep sees. *)
          let us = us_per_run (fun () -> Lint.Registry.run ~flow p) in
          (n, us, float_of_int n /. us *. 1e6)
        in
        let off_n, off_us, off_rate = row false in
        let on_n, on_us, on_rate = row true in
        Printf.printf
          "lint/%-15s flow off %8.1f us (%d diags, %7.0f/s)  flow on \
           %8.1f us (%d diags, %7.0f/s)\n"
          name off_us off_n off_rate on_us on_n on_rate;
        Printf.sprintf
          "{\"name\":\"%s\",\"flow_off_us\":%.1f,\"flow_off_diags\":%d,\
           \"flow_off_diags_per_s\":%.0f,\"flow_on_us\":%.1f,\
           \"flow_on_diags\":%d,\"flow_on_diags_per_s\":%.0f}"
          name off_us off_n off_rate on_us on_n on_rate)
      [ ("medical", spec); ("refined-m2", refined Core.Model.Model2) ]
  in
  (* -- faults: the mrefine-faults campaign under both kernels -------- *)
  let fault_config =
    { Faults.Campaign.default_config with Faults.Campaign.cf_seeds = 4 }
  in
  let fault_design =
    Core.Refiner.refine spec graph Designs.design1.Designs.d_partition
      Core.Model.Model2
  in
  let engine_report, engine_s =
    seconds_of (fun () -> Faults.Campaign.run ~config:fault_config fault_design)
  in
  let polling_report, polling_s =
    seconds_of (fun () ->
        Faults.Campaign.run ~config:fault_config
          ~simulate:(fun ~config ~hooks ?ordering p ->
            Sim.Reference.run ~config ~hooks ?ordering p)
          fault_design)
  in
  let classifications rp =
    List.map
      (fun rn ->
        (rn.Faults.Campaign.run_seed, rn.Faults.Campaign.run_class,
         rn.Faults.Campaign.run_outcome))
      rp.Faults.Campaign.rp_runs
  in
  let match_ok = classifications engine_report = classifications polling_report in
  Printf.printf
    "faults/medical-m2    engine %6.2f s   polling %6.2f s   (%.2fx)  \
     classifications %s\n"
    engine_s polling_s (polling_s /. engine_s)
    (if match_ok then "identical" else "DIVERGED");
  let faults_row =
    Printf.sprintf
      "{\"workload\":\"medical\",\"model\":\"model2\",\"seeds\":%d,\
       \"engine_s\":%.3f,\"polling_s\":%.3f,\"speedup\":%.2f,\
       \"robustness\":%.3f,\"classifications_match\":%b}"
      fault_config.Faults.Campaign.cf_seeds engine_s polling_s
      (polling_s /. engine_s)
      engine_report.Faults.Campaign.rp_robustness match_ok
  in
  (* -- explore: sweep throughput (simulation-bound via cosim/quality) -- *)
  let explore_config =
    {
      Explore.Sweep.default_config with
      Explore.Sweep.seeds = [ 1; 2 ];
      steps = 800;
      jobs = 1;
    }
  in
  let cache = Explore.Cache.create () in
  let cold, cold_s =
    seconds_of (fun () -> Explore.Sweep.run ~cache explore_config spec)
  in
  Explore.Cache.reset_stats cache;
  let warm, _ = seconds_of (fun () -> Explore.Sweep.run ~cache explore_config spec) in
  let n_results = List.length cold.Explore.Sweep.sw_results in
  let hit_rate =
    float_of_int warm.Explore.Sweep.sw_hits
    /. float_of_int
         (max 1 (warm.Explore.Sweep.sw_hits + warm.Explore.Sweep.sw_misses))
  in
  Printf.printf
    "explore/medical      cold %6.2f s  (%.1f candidates/s)  warm hit rate \
     %.0f%%\n"
    cold_s
    (float_of_int n_results /. cold_s)
    (100.0 *. hit_rate);
  let explore_row =
    Printf.sprintf
      "{\"seeds\":[1,2],\"steps\":%d,\"candidates\":%d,\"cold_s\":%.3f,\
       \"candidates_per_s\":%.1f,\"warm_hit_rate\":%.3f}"
      explore_config.Explore.Sweep.steps n_results cold_s
      (float_of_int n_results /. cold_s)
      hit_rate
  in
  (* -- checkpoint: fsynced journal append and replay throughput ------- *)
  let checkpoint_row =
    let dir = Filename.temp_file "coref_bench_journal" ".d" in
    Sys.remove dir;
    Sys.mkdir dir 0o755;
    let path = Filename.concat dir "bench.journal" in
    let meta = Checkpoint.Journal.meta_digest [ "bench-journal" ] in
    let blob = String.make 256 'x' in
    let n = 200 in
    let j = Checkpoint.Journal.open_ ~path ~meta in
    let (), append_s =
      seconds_of (fun () ->
          for i = 1 to n do
            Checkpoint.Journal.append j ~key:(Printf.sprintf "k%d" i) blob
          done)
    in
    Checkpoint.Journal.close j;
    let replayed, replay_s =
      seconds_of (fun () ->
          let j = Checkpoint.Journal.open_ ~path ~meta in
          let n = Checkpoint.Journal.length j in
          Checkpoint.Journal.close j;
          n)
    in
    Printf.printf
      "checkpoint/journal   %d fsynced appends %6.2f s (%.0f/s)  replay \
       %6.3f s  (%d entries)\n"
      n append_s
      (float_of_int n /. append_s)
      replay_s replayed;
    Printf.sprintf
      "{\"appends\":%d,\"append_s\":%.3f,\"appends_per_s\":%.0f,\
       \"replay_s\":%.3f,\"replayed\":%d}"
      n append_s
      (float_of_int n /. append_s)
      replay_s replayed
  in
  (* -- litmus: the weak-memory suite across orderings, both kernels --- *)
  let litmus_row, litmus_ok =
    let cfg = Litmus.Suite.default_config () in
    let rp, suite_s = seconds_of (fun () -> Litmus.Suite.run cfg) in
    let n = List.length rp.Litmus.Suite.rp_entries in
    let ok =
      rp.Litmus.Suite.rp_forbidden = 0
      && rp.Litmus.Suite.rp_corruption = 0
      && rp.Litmus.Suite.rp_kernel_mismatches = 0
    in
    Printf.printf
      "litmus/suite         %d entries %6.2f s (%.0f runs/s, both kernels)  \
       %d weak-allowed  %s\n"
      n suite_s
      (float_of_int n /. suite_s)
      rp.Litmus.Suite.rp_weak_allowed
      (if ok then "clean" else "BROKEN");
    ( Printf.sprintf
        "{\"entries\":%d,\"suite_s\":%.3f,\"runs_per_s\":%.0f,\
         \"sc_consistent\":%d,\"weak_allowed\":%d,\"forbidden\":%d,\
         \"deadlock\":%d,\"corruption\":%d,\"kernel_mismatches\":%d}"
        n suite_s
        (float_of_int n /. suite_s)
        rp.Litmus.Suite.rp_sc_consistent rp.Litmus.Suite.rp_weak_allowed
        rp.Litmus.Suite.rp_forbidden rp.Litmus.Suite.rp_deadlock
        rp.Litmus.Suite.rp_corruption rp.Litmus.Suite.rp_kernel_mismatches,
      ok )
  in
  (* -- serve: warm daemon requests vs cold CLI invocations ----------- *)
  let serve_row, serve_identical =
    let write_file path text =
      let oc = open_out_bin path in
      output_string oc text;
      close_out oc
    in
    let read_file path =
      let ic = open_in_bin path in
      let text = really_input_string ic (in_channel_length ic) in
      close_in ic;
      text
    in
    let percentile_ms p lats =
      let a = Array.of_list lats in
      Array.sort compare a;
      let n = Array.length a in
      1e3 *. a.(max 0 (min (n - 1) (int_of_float (p *. float_of_int (n - 1)))))
    in
    let mean lats =
      List.fold_left ( +. ) 0.0 lats /. float_of_int (List.length lats)
    in
    let spec_text = Spec.Printer.program_to_string spec in
    let spec_file = Filename.temp_file "coref_bench_spec" ".sc" in
    write_file spec_file spec_text;
    (* Cold: one full CLI process per request, the pre-daemon baseline. *)
    let mrefine =
      Filename.concat (Filename.dirname Sys.executable_name) "../bin/mrefine.exe"
    in
    let out_file = Filename.temp_file "coref_bench_refined" ".sc" in
    let cold_cmd =
      Printf.sprintf "%s refine -q -p 2 %s > %s" (Filename.quote mrefine)
        (Filename.quote spec_file) (Filename.quote out_file)
    in
    let cold_once () =
      if Sys.command cold_cmd <> 0 then failwith "bench: cold mrefine failed"
    in
    let n_cold = 8 and n_warm = 64 in
    let cold_lats =
      List.init n_cold (fun _ -> snd (seconds_of cold_once))
    in
    let cold_output = read_file out_file in
    (* Warm: the same request served over a socket by a live daemon with
       its elaboration and result caches hot. *)
    let session = Serve.Session.create () in
    let scheduler = Serve.Scheduler.create session in
    let socket = Filename.temp_file "coref_bench_serve" ".sock" in
    Sys.remove socket;
    let server =
      Serve.Server.start
        ~listen:(Serve.Server.Tcp { host = "127.0.0.1"; port = 0 })
        ~socket scheduler
    in
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_UNIX socket);
    let conn_in = Unix.in_channel_of_descr fd in
    let conn_out = Unix.out_channel_of_descr fd in
    let roundtrip_on conn_in conn_out line =
      output_string conn_out line;
      output_char conn_out '\n';
      flush conn_out;
      match Serve.Protocol.parse (input_line conn_in) with
      | Ok j -> j
      | Error msg -> failwith ("bench: bad serve reply: " ^ msg)
    in
    let roundtrip = roundtrip_on conn_in conn_out in
    let submit_line =
      Serve.Protocol.to_string
        (Serve.Protocol.Obj
           [
             ("op", Serve.Protocol.String "submit");
             ( "job",
               Serve.Protocol.Obj
                 [
                   ("kind", Serve.Protocol.String "refine");
                   ("spec", Serve.Protocol.String spec_text);
                   ("parts", Serve.Protocol.Int 2);
                 ] );
           ])
    in
    let field name reply =
      match Serve.Protocol.string_field name reply with
      | Ok v -> v
      | Error _ -> failwith ("bench: serve reply missing " ^ name)
    in
    let request_on roundtrip () =
      let id = field "id" (roundtrip submit_line) in
      let result =
        roundtrip
          (Serve.Protocol.to_string
             (Serve.Protocol.Obj
                [
                  ("op", Serve.Protocol.String "result");
                  ("id", Serve.Protocol.String id);
                  ("wait", Serve.Protocol.Bool true);
                ]))
      in
      if field "state" result <> "done" then
        failwith ("bench: served job not done: " ^ field "state" result);
      field "output" result
    in
    let request = request_on roundtrip in
    ignore (request ());
    (* prime the daemon's caches *)
    let warm = List.init n_warm (fun _ -> seconds_of request) in
    let warm_output = fst (List.hd warm) in
    let warm_lats = List.map snd warm in
    (* Warm over TCP: the same hot daemon, with the loopback TCP stack
       in the path instead of a Unix socket. *)
    let tcp_port =
      match Serve.Server.tcp_port server with
      | Some p -> p
      | None -> failwith "bench: serve daemon bound no TCP port"
    in
    let tcp_fd =
      match
        Serve.Server.connect_endpoint
          (Serve.Server.Tcp { host = "127.0.0.1"; port = tcp_port })
      with
      | Ok fd -> fd
      | Error msg -> failwith ("bench: tcp connect failed: " ^ msg)
    in
    let tcp_in = Unix.in_channel_of_descr tcp_fd in
    let tcp_out = Unix.out_channel_of_descr tcp_fd in
    let tcp_request = request_on (roundtrip_on tcp_in tcp_out) in
    ignore (tcp_request ());
    let tcp = List.init n_warm (fun _ -> seconds_of tcp_request) in
    let tcp_output = fst (List.hd tcp) in
    let tcp_lats = List.map snd tcp in
    let stats = Serve.Session.stats session in
    let elab_hit_rate =
      float_of_int stats.Serve.Session.st_elab_hits
      /. float_of_int
           (max 1
              (stats.Serve.Session.st_elab_hits
             + stats.Serve.Session.st_elab_misses))
    in
    close_out_noerr conn_out;
    close_out_noerr tcp_out;
    Serve.Server.stop server;
    Serve.Server.run server;
    let identical =
      String.equal warm_output cold_output
      && String.equal tcp_output cold_output
    in
    let cold_rps = 1.0 /. mean cold_lats in
    let warm_rps = 1.0 /. mean warm_lats in
    let warm_tcp_rps = 1.0 /. mean tcp_lats in
    Printf.printf
      "serve/refine         cold %6.1f req/s  warm %8.1f req/s  (%.1fx)  \
       p50 %.2f ms  p95 %.2f ms  tcp %8.1f req/s  p50 %.2f ms  \
       elab hits %.0f%%  results %s\n"
      cold_rps warm_rps (warm_rps /. cold_rps)
      (percentile_ms 0.50 warm_lats)
      (percentile_ms 0.95 warm_lats)
      warm_tcp_rps
      (percentile_ms 0.50 tcp_lats)
      (100.0 *. elab_hit_rate)
      (if identical then "identical" else "DIVERGED");
    ( Printf.sprintf
        "{\"requests\":%d,\"cold_rps\":%.1f,\"warm_rps\":%.1f,\
         \"speedup\":%.1f,\"cold_p50_ms\":%.2f,\"cold_p95_ms\":%.2f,\
         \"warm_p50_ms\":%.2f,\"warm_p95_ms\":%.2f,\
         \"warm_tcp_rps\":%.1f,\"tcp_p50_ms\":%.2f,\"tcp_p95_ms\":%.2f,\
         \"elab_hit_rate\":%.3f,\"results_identical\":%b}"
        n_warm cold_rps warm_rps (warm_rps /. cold_rps)
        (percentile_ms 0.50 cold_lats)
        (percentile_ms 0.95 cold_lats)
        (percentile_ms 0.50 warm_lats)
        (percentile_ms 0.95 warm_lats)
        warm_tcp_rps
        (percentile_ms 0.50 tcp_lats)
        (percentile_ms 0.95 tcp_lats)
        elab_hit_rate identical,
      identical )
  in
  let json =
    Printf.sprintf
      "{\"schema\":\"coref-bench-sim-1\",\"simulate\":[%s],\"lint\":[%s],\
       \"faults\":%s,\"explore\":%s,\"checkpoint\":%s,\"litmus\":%s,\
       \"serve\":%s}\n"
      (String.concat "," sim_rows)
      (String.concat "," lint_rows)
      faults_row explore_row checkpoint_row litmus_row serve_row
  in
  let oc = open_out out_path in
  output_string oc json;
  close_out oc;
  Printf.printf "wrote %s\n" out_path;
  if not (sim_identical && match_ok && serve_identical && litmus_ok) then
    exit 1

let () =
  let argv = Array.to_list Sys.argv in
  if List.mem "--json" argv then begin
    let rec out = function
      | "-o" :: path :: _ -> path
      | _ :: rest -> out rest
      | [] -> "BENCH_sim.json"
    in
    bench_json (out argv);
    exit 0
  end;
  Printf.printf
    "Model Refinement for Hardware-Software Codesign — benchmark harness\n";
  Printf.printf
    "(workload: reconstructed medical system, %d behaviors / %d variables / %d channels)\n"
    (List.length Medical.leaf_names)
    (List.length Medical.variable_names)
    (Agraph.Access_graph.channel_count graph);
  figure9 ();
  identities ();
  figure10 ();
  winners ();
  bus_count_sweep ();
  ablation_rates ();
  ablation_protocol ();
  explore_bench ();
  faults_bench ();
  workload_appendix "elevator controller" Elevator.spec Elevator.graph
    Elevator.partition;
  workload_appendix "4-tap FIR filter (arrays)" Fir.spec Fir.graph
    Fir.partition;
  run_bechamel ();
  print_endline "";
  print_endline "done."
