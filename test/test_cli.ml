(** Integration tests driving the [mrefine] command-line binary end to
    end: every subcommand, on the shipped textual specifications. *)

open Helpers

let mrefine = "../bin/mrefine.exe"
let spec name = "../examples/specs/" ^ name

let run args =
  let cmd = Filename.quote_command mrefine args ^ " 2>&1" in
  let ic = Unix.open_process_in cmd in
  let buf = Buffer.create 512 in
  (try
     while true do
       Buffer.add_channel buf ic 1
     done
   with End_of_file -> ());
  let status = Unix.close_process_in ic in
  let code = match status with Unix.WEXITED n -> n | _ -> 255 in
  (code, Buffer.contents buf)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let expect_ok args frags =
  let code, out = run args in
  if code <> 0 then Alcotest.failf "exit %d:\n%s" code out;
  List.iter
    (fun frag ->
      Alcotest.(check bool)
        (Printf.sprintf "output mentions %S" frag)
        true (contains ~sub:frag out))
    frags

let expect_fail args frags =
  let code, out = run args in
  Alcotest.(check bool) "non-zero exit" true (code <> 0);
  List.iter
    (fun frag ->
      Alcotest.(check bool)
        (Printf.sprintf "error mentions %S" frag)
        true (contains ~sub:frag out))
    frags

let fig1_assign = "A=0,B=1,C=0,x=1"

let test_parse () =
  expect_ok [ "parse"; spec "medical.sc" ] [ "medical"; "lines" ];
  expect_ok [ "parse"; spec "fig1.sc" ] [ "fig1" ]

let test_graph () =
  expect_ok [ "graph"; spec "fig1.sc" ]
    [ "objects: A, B, C"; "variables: x"; "data channels: 5" ];
  expect_ok [ "graph"; spec "fig1.sc"; "--dot" ] [ "digraph"; "shape=box" ]

let test_partition_algos () =
  List.iter
    (fun algo ->
      expect_ok
        [ "partition"; spec "medical.sc"; "--algo"; algo ]
        [ "local variables:"; "global variables:"; "cross-partition" ])
    [ "greedy"; "kl"; "annealing"; "clustering" ]

let test_partition_manual () =
  expect_ok
    [ "partition"; spec "fig1.sc"; "--assign"; fig1_assign ]
    [ "P0: behaviors {A, C}"; "P1: behaviors {B}"; "global variables: x" ]

let test_refine () =
  expect_ok
    [ "refine"; spec "fig1.sc"; "--assign"; fig1_assign; "--model"; "2" ]
    [ "program fig1_model2"; "B_NEW"; "MST_send"; "servers" ];
  expect_ok
    [ "refine"; spec "fig1.sc"; "--assign"; fig1_assign; "--model"; "4"; "-q" ]
    [ "BIF_out" ]

let test_refine_roundtrips_through_cli () =
  (* The refined output is itself a valid input for the tool. *)
  let tmp = Filename.temp_file "coref_cli" ".sc" in
  expect_ok
    [ "refine"; spec "fig1.sc"; "--assign"; fig1_assign; "--model"; "3";
      "-q"; "-o"; tmp ]
    [ "wrote" ];
  expect_ok [ "parse"; tmp ] [ "fig1_model3" ];
  expect_ok [ "typecheck"; tmp ] [ "well typed" ];
  expect_ok [ "simulate"; tmp ] [ "outcome: completed"; "emit B = 8" ];
  Sys.remove tmp

let test_simulate () =
  expect_ok
    [ "simulate"; spec "fig1.sc" ]
    [ "outcome: completed"; "emit A = 3"; "emit B = 8"; "final x = 8" ]

let test_cosim_all_models () =
  List.iter
    (fun model ->
      expect_ok
        [ "cosim"; spec "fig1.sc"; "--assign"; fig1_assign; "--model"; model ]
        [ "equivalent" ])
    [ "1"; "2"; "3"; "4" ]

let test_typecheck () =
  expect_ok [ "typecheck"; spec "medical.sc" ] [ "well typed" ]

let test_export_c () =
  expect_ok
    [ "export"; spec "pingpong.sc"; "-b"; "c" ]
    [ "#include <stdio.h>"; "int main(void)"; "coref_emit" ]

let test_export_vhdl () =
  expect_ok
    [ "export"; spec "medical.sc"; "-b"; "vhdl" ]
    [ "entity medical is"; "architecture behavioral" ];
  expect_ok
    [ "export"; spec "fig1.sc"; "-b"; "vhdl"; "--refine"; "--assign";
      fig1_assign; "--model"; "2" ]
    [ "signal bus_"; ": process" ]

let test_quality_real () =
  expect_ok
    [ "quality"; spec "fig1.sc"; "--assign"; fig1_assign; "--model"; "2" ]
    [ "Intel8086"; "gates"; "pins"; "Gmem" ]

let test_fir_and_elevator_specs () =
  expect_ok [ "typecheck"; spec "fir.sc" ] [ "well typed" ];
  expect_ok [ "simulate"; spec "fir.sc" ] [ "outcome: completed"; "emit energy" ];
  expect_ok
    [ "cosim"; spec "fir.sc"; "--algo"; "kl"; "--model"; "3" ]
    [ "equivalent" ];
  expect_ok
    [ "cosim"; spec "elevator.sc"; "--algo"; "greedy"; "--model"; "2";
      "--protocol"; "two-phase" ]
    [ "equivalent" ];
  expect_ok [ "export"; spec "fir.sc"; "-b"; "c" ] [ "long long v_coeff[4]" ]

let test_explore () =
  expect_ok
    [ "explore"; spec "fig2.sc"; "--seeds"; "1"; "--steps"; "400";
      "--no-cache"; "--jobs"; "2" ]
    [ "design-space sweep: 12 candidates"; "Pareto frontier" ];
  expect_ok
    [ "explore"; spec "fig2.sc"; "--seeds"; "1"; "--steps"; "400";
      "--no-cache"; "--models"; "2,4"; "--biases"; "local"; "--json" ]
    [ "\"candidates\":2"; "\"pareto\":[{"; "\"model\":\"Model2\"" ];
  expect_fail
    [ "explore"; spec "fig2.sc"; "--models"; "9" ]
    [ "unknown model" ]

let fixture name = "fixtures/" ^ name

let test_lint () =
  (* Shipped specs are clean; the command exits 0. *)
  expect_ok [ "lint"; spec "medical.sc" ] [ "0 error(s)" ];
  (* A seeded race is a warning pre-refinement (exit 0) and an error
     with --phase post (exit 1). *)
  expect_ok
    [ "lint"; fixture "lint_race.sc" ]
    [ "warning[RACE001]"; "shared" ];
  expect_fail
    [ "lint"; fixture "lint_race.sc"; "--phase"; "post" ]
    [ "error[RACE001]" ];
  (* The other two seeded defects, each with its stable code. *)
  expect_fail
    [ "lint"; fixture "lint_handshake.sc" ]
    [ "error[PROTO002]"; "go_start"; "error[PROTO003]"; "go_done" ];
  expect_fail
    [ "lint"; fixture "lint_arbiter.sc"; "--phase"; "post" ]
    [ "error[CONT001]"; "b1_addr"; "arbitration" ]

let test_lint_filters_and_json () =
  (* Severity filtering: the pre-phase race warning disappears at
     --severity error, so the run is clean. *)
  expect_ok
    [ "lint"; fixture "lint_race.sc"; "--severity"; "error" ]
    [ "0 error(s)" ];
  (* Code filtering keeps only the requested diagnostics. *)
  let _, out =
    run [ "lint"; fixture "lint_handshake.sc"; "--code"; "PROTO003" ]
  in
  Alcotest.(check bool) "kept code present" true
    (contains ~sub:"PROTO003" out);
  Alcotest.(check bool) "other code filtered" false
    (contains ~sub:"PROTO002" out);
  expect_fail
    [ "lint"; fixture "lint_race.sc"; "--phase"; "post"; "--json" ]
    [ {|"code":"RACE001"|}; {|"severity":"error"|}; {|"errors":1|} ];
  expect_ok [ "lint"; "--list-codes" ]
    [ "RACE001"; "PROTO002"; "CONT001"; "WIDTH001"; "TYPE001" ]

let test_explore_resilience () =
  (* A zero deadline times every candidate out; the sweep still completes
     and reports the degradation instead of hanging or aborting. *)
  expect_ok
    [ "explore"; spec "fig2.sc"; "--seeds"; "1"; "--steps"; "400";
      "--no-cache"; "--deadline"; "0" ]
    [ "FAILED[timeout]"; "coverage 0.0%"; "failures: timeout=12" ]

let test_explore_resume () =
  let dir = Filename.temp_file "coref_cli_resume" ".d" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let journal = Filename.concat dir "sweep.journal" in
  expect_ok
    [ "explore"; spec "fig2.sc"; "--seeds"; "1"; "--steps"; "400";
      "--no-cache"; "--resume"; journal; "--json" ]
    [ "\"replayed\":0"; "\"coverage\":1.0000" ];
  (* Rerunning against the journal replays every candidate. *)
  expect_ok
    [ "explore"; spec "fig2.sc"; "--seeds"; "1"; "--steps"; "400";
      "--no-cache"; "--resume"; journal; "--json" ]
    [ "\"replayed\":12"; "\"coverage\":1.0000" ];
  (* A journal written under different search parameters must refuse. *)
  expect_fail
    [ "explore"; spec "fig2.sc"; "--seeds"; "1"; "--steps"; "500";
      "--no-cache"; "--resume"; journal ]
    [ "different specification or configuration" ]

let test_lint_severity_overrides () =
  (* Silencing the seeded race makes even the post-phase run clean. *)
  expect_ok
    [ "lint"; fixture "lint_race.sc"; "--phase"; "post";
      "--severity-override"; "RACE001=off" ]
    [ "0 error(s)" ];
  (* Demoting it keeps it visible but non-fatal. *)
  expect_ok
    [ "lint"; fixture "lint_race.sc"; "--phase"; "post";
      "--severity-override"; "RACE001=warning" ]
    [ "warning[RACE001]" ];
  (* Promoting it turns the clean pre-phase run into a failure. *)
  expect_fail
    [ "lint"; fixture "lint_race.sc";
      "--severity-override"; "RACE001=error" ]
    [ "error[RACE001]" ];
  (* Malformed overrides are rejected up front. *)
  expect_fail
    [ "lint"; fixture "lint_race.sc"; "--severity-override"; "NOPE=off" ]
    [ "unknown diagnostic code" ];
  expect_fail
    [ "lint"; fixture "lint_race.sc"; "--severity-override"; "RACE001=loud" ]
    [ "level must be" ]

let test_demo () =
  expect_ok [ "demo" ]
    [ "medical system: 147 lines, 52 channels"; "cosim ok" ]

let test_errors () =
  expect_fail [ "parse"; "/nonexistent.sc" ] [];
  expect_fail
    [ "refine"; spec "fig1.sc"; "--assign"; "A=0" ]
    [ "unassigned" ];
  expect_fail
    [ "refine"; spec "fig1.sc"; "--assign"; "A=0,B=9,C=0,x=1" ]
    [];
  expect_fail
    [ "cosim"; spec "fig1.sc"; "--assign"; "nope=1" ]
    [ "unknown object" ]

let () =
  Alcotest.run "cli"
    [
      ( "subcommands",
        [
          tc "parse" test_parse;
          tc "graph" test_graph;
          tc "partition algos" test_partition_algos;
          tc "partition manual" test_partition_manual;
          tc "refine" test_refine;
          tc "refined output round-trips" test_refine_roundtrips_through_cli;
          tc "simulate" test_simulate;
          tc "cosim all models" test_cosim_all_models;
          tc "typecheck" test_typecheck;
          tc "export c" test_export_c;
          tc "export vhdl" test_export_vhdl;
          tc "quality" test_quality_real;
          tc "fir/elevator specs" test_fir_and_elevator_specs;
          tc "explore" test_explore;
          tc "explore resilience" test_explore_resilience;
          tc "explore resume" test_explore_resume;
          tc "lint" test_lint;
          tc "lint filters and json" test_lint_filters_and_json;
          tc "lint severity overrides" test_lint_severity_overrides;
          tc "demo" test_demo;
          tc "errors" test_errors;
        ] );
    ]
