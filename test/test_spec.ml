(** Unit and property tests for the [spec] library: expressions,
    statements, behaviors, programs, lexer, parser and printer. *)

open Spec
open Spec.Ast
open Helpers

(* --- expressions -------------------------------------------------------- *)

let test_eval_arith () =
  check_value "add" (vint 7) (eval_with [] Expr.(int 3 + int 4));
  check_value "sub" (vint (-1)) (eval_with [] Expr.(int 3 - int 4));
  check_value "mul" (vint 12) (eval_with [] Expr.(int 3 * int 4));
  check_value "div" (vint 2) (eval_with [] Expr.(int 9 / int 4));
  check_value "mod" (vint 1) (eval_with [] Expr.(int 9 mod int 4));
  check_value "neg" (vint (-5)) (eval_with [] (Expr.neg (Expr.int 5)))

let test_eval_compare () =
  check_value "lt" (vbool true) (eval_with [] Expr.(int 1 < int 2));
  check_value "le" (vbool true) (eval_with [] Expr.(int 2 <= int 2));
  check_value "gt" (vbool false) (eval_with [] Expr.(int 1 > int 2));
  check_value "ge" (vbool false) (eval_with [] Expr.(int 1 >= int 2));
  check_value "eq" (vbool true) (eval_with [] Expr.(int 3 = int 3));
  check_value "neq" (vbool true) (eval_with [] Expr.(int 3 <> int 4));
  check_value "eq-bool" (vbool true) (eval_with [] Expr.(tru = tru))

let test_eval_bool () =
  check_value "and" (vbool false) (eval_with [] Expr.(tru && fls));
  check_value "or" (vbool true) (eval_with [] Expr.(fls || tru));
  check_value "not" (vbool false) (eval_with [] (Expr.not_ Expr.tru))

let test_eval_refs () =
  let env = [ ("x", vint 5); ("b", vbool true) ] in
  check_value "ref" (vint 5) (eval_with env (Expr.ref_ "x"));
  check_value "mix" (vint 11) (eval_with env Expr.(ref_ "x" * int 2 + int 1));
  Alcotest.check_raises "unbound" (Expr.Eval_error "unbound reference y")
    (fun () -> ignore (eval_with env (Expr.ref_ "y")))

let test_eval_shortcircuit () =
  (* The right operand must not be evaluated when the left decides. *)
  let env = [ ("x", vint 0) ] in
  check_value "and-short" (vbool false)
    (eval_with env Expr.(fls && (ref_ "missing" = int 1)));
  check_value "or-short" (vbool true)
    (eval_with env Expr.(tru || (ref_ "missing" = int 1)))

let test_eval_div_zero () =
  Alcotest.check_raises "div0" (Expr.Eval_error "division by zero") (fun () ->
      ignore (eval_with [] Expr.(int 1 / int 0)));
  Alcotest.check_raises "mod0" (Expr.Eval_error "modulo by zero") (fun () ->
      ignore (eval_with [] Expr.(int 1 mod int 0)))

let test_eval_type_errors () =
  Alcotest.check_raises "bool+int" (Expr.Eval_error "expected an integer value")
    (fun () -> ignore (eval_with [] Expr.(tru + int 1)));
  Alcotest.check_raises "int-and" (Expr.Eval_error "expected a boolean value")
    (fun () -> ignore (eval_with [] Expr.(int 1 && tru)))

let test_eval_const () =
  Alcotest.(check (option value_testable))
    "const" (Some (vint 5))
    (Expr.eval_const Expr.(int 2 + int 3));
  Alcotest.(check (option value_testable))
    "non-const" None
    (Expr.eval_const Expr.(ref_ "x" + int 3))

let test_refs_order () =
  Alcotest.(check (list string))
    "order, dedup" [ "a"; "b"; "c" ]
    (Expr.refs Expr.(ref_ "a" + ref_ "b" + ref_ "a" * ref_ "c"))

let test_rename_subst () =
  let e = Expr.(ref_ "x" + ref_ "y") in
  check_expr "rename"
    Expr.(ref_ "x1" + ref_ "y1")
    (Expr.rename (fun s -> s ^ "1") e);
  check_expr "subst" Expr.(int 9 + ref_ "y") (Expr.subst "x" (Expr.int 9) e)

let test_expr_size () =
  Alcotest.(check int) "size" 5 (Expr.size Expr.(ref_ "x" + int 1 * int 2))

(* Printing with minimal parentheses must re-parse to the same tree. *)
let test_pp_parse_units () =
  let cases =
    [
      Expr.(int 1 + int 2 * int 3);
      Expr.((int 1 + int 2) * int 3);
      Expr.(int 1 - (int 2 - int 3));
      Expr.(int 1 - int 2 - int 3);
      Expr.(neg (ref_ "x") + int 1);
      Expr.(not_ (ref_ "b" && ref_ "c"));
      Expr.(not_ (ref_ "b") && ref_ "c");
      Expr.((ref_ "x" < int 3) || (ref_ "y" >= int 4 && ref_ "b"));
      Expr.(ref_ "x" mod int 7 = int 0);
      Expr.(neg (neg (int 3)));
    ]
  in
  List.iter
    (fun e ->
      let text = Expr.to_string e in
      check_expr text e (Parser.expr_of_string_exn text))
    cases

(* qcheck: random expressions round-trip through print + parse. *)
let gen_expr =
  let open QCheck.Gen in
  let leaf =
    oneof
      [
        map Expr.int (int_range 0 100);
        map Expr.ref_ (oneofl [ "x"; "y"; "zz" ]);
        return Expr.tru;
        return Expr.fls;
      ]
  in
  sized
  @@ fix (fun self n ->
         if n <= 0 then leaf
         else
           oneof
             [
               leaf;
               map2
                 (fun a b -> Expr.(a + b))
                 (self (n / 2)) (self (n / 2));
               map2 (fun a b -> Expr.(a - b)) (self (n / 2)) (self (n / 2));
               map2 (fun a b -> Expr.(a * b)) (self (n / 2)) (self (n / 2));
               map2 (fun a b -> Expr.(a < b)) (self (n / 2)) (self (n / 2));
               map2 (fun a b -> Expr.(a = b)) (self (n / 2)) (self (n / 2));
               map2 (fun a b -> Expr.(a && b)) (self (n / 2)) (self (n / 2));
               map2 (fun a b -> Expr.(a || b)) (self (n / 2)) (self (n / 2));
               map Expr.neg (self (n - 1));
               map Expr.not_ (self (n - 1));
             ])

let prop_expr_roundtrip =
  QCheck.Test.make ~count:500 ~name:"expr print/parse roundtrip"
    (QCheck.make gen_expr ~print:Expr.to_string)
    (fun e -> Ast.equal_expr e (Parser.expr_of_string_exn (Expr.to_string e)))

(* --- statements --------------------------------------------------------- *)

let sample_stmts =
  Parser.stmts_of_string_exn
    "x := y + 1; s <= x; if x > 0 then z := 1; elsif x < 0 then z := 2; else \
     z := 3; end if; while z < 9 do z := z + w; end while; for i := 0 to 3 \
     do acc := acc + i; end for; wait until s = true; call p(x, out r); emit \
     \"t\" z; skip;"

let test_stmt_reads () =
  Alcotest.(check (list string))
    "reads" [ "y"; "x"; "z"; "w"; "acc"; "i"; "s" ]
    (Stmt.reads sample_stmts)

let test_stmt_writes () =
  Alcotest.(check (list string))
    "writes" [ "x"; "z"; "i"; "acc"; "r" ]
    (Stmt.writes sample_stmts)

let test_stmt_signal_writes () =
  Alcotest.(check (list string)) "sig writes" [ "s" ] (Stmt.signal_writes sample_stmts)

let test_stmt_calls () =
  Alcotest.(check (list string)) "calls" [ "p" ] (Stmt.calls sample_stmts)

let test_stmt_count () =
  (* assign + sassign + if + 3 branch assigns + while + 1 + for + 1 + wait
     + call + emit + skip = 14 *)
  Alcotest.(check int) "count" 14 (Stmt.count sample_stmts)

let test_stmt_rename () =
  let renamed = Stmt.rename_refs (fun s -> s ^ "_r") sample_stmts in
  Alcotest.(check (list string))
    "renamed writes" [ "x_r"; "z_r"; "i_r"; "acc_r"; "r_r" ]
    (Stmt.writes renamed);
  Alcotest.(check bool) "old gone" false (Stmt.uses_name "x" renamed)

let test_stmt_map_stmts () =
  (* Replace every skip with two skips, bottom-up. *)
  let stmts = [ Skip; While (Expr.tru, [ Skip ]) ] in
  let doubled =
    Stmt.map_stmts (function Skip -> [ Skip; Skip ] | s -> [ s ]) stmts
  in
  Alcotest.(check int) "spliced" 5 (Stmt.count doubled)

let test_stmt_map_exprs () =
  let stmts = Parser.stmts_of_string_exn "x := y; z := y + y;" in
  let swapped = Stmt.map_exprs (Expr.subst "y" (Expr.int 0)) stmts in
  Alcotest.(check (list string)) "no more y" [] (Stmt.reads swapped)

let test_fold_exprs_order () =
  let stmts = Parser.stmts_of_string_exn "a := 1; b := 2; c := 3;" in
  let consts =
    Stmt.fold_exprs
      (fun acc e -> match Expr.eval_const e with Some (VInt n) -> n :: acc | _ -> acc)
      [] stmts
  in
  Alcotest.(check (list int)) "source order" [ 3; 2; 1 ] consts

(* --- behaviors ---------------------------------------------------------- *)

let tree =
  Behavior.seq "root"
    [
      Behavior.arm (Behavior.leaf "a" [ Skip ]);
      Behavior.arm
        (Behavior.par "p"
           [ Behavior.leaf "b" [ Skip ]; Behavior.leaf ~vars:[ Builder.int_var "v" ] "c" [] ]);
    ]

let test_behavior_names () =
  Alcotest.(check (list string))
    "preorder" [ "root"; "a"; "p"; "b"; "c" ] (Behavior.names tree)

let test_behavior_find () =
  Alcotest.(check bool) "found" true (Behavior.find "c" tree <> None);
  Alcotest.(check bool) "missing" true (Behavior.find "zz" tree = None)

let test_behavior_parent () =
  (match Behavior.parent_of "b" tree with
  | Some p -> Alcotest.(check string) "parent" "p" p.b_name
  | None -> Alcotest.fail "no parent");
  Alcotest.(check bool) "root has none" true (Behavior.parent_of "root" tree = None)

let test_behavior_counts () =
  Alcotest.(check int) "behaviors" 5 (Behavior.behavior_count tree);
  Alcotest.(check int) "stmts" 2 (Behavior.stmt_count tree);
  Alcotest.(check int) "depth" 3 (Behavior.depth tree)

let test_behavior_replace () =
  let replaced = Behavior.replace "b" (Behavior.leaf "b2" [ Skip; Skip ]) tree in
  Alcotest.(check (list string))
    "renamed" [ "root"; "a"; "p"; "b2"; "c" ] (Behavior.names replaced);
  Alcotest.check_raises "missing" Not_found (fun () ->
      ignore (Behavior.replace "zz" tree tree))

let test_behavior_all_var_decls () =
  Alcotest.(check (list (pair string string)))
    "decls" [ ("c", "v") ]
    (List.map (fun (b, v) -> (b, v.v_name)) (Behavior.all_var_decls tree))

let test_transition_conds () =
  let b =
    Behavior.seq "s"
      [
        Behavior.arm (Behavior.leaf "x" [])
          ~transitions:[ Builder.goto ~cond:Expr.(ref_ "v" > int 1) "y" ];
        Behavior.arm (Behavior.leaf "y" []);
      ]
  in
  Alcotest.(check int) "one cond" 1 (List.length (Behavior.transition_conds b))

(* --- programs ----------------------------------------------------------- *)

let test_validate_ok () =
  ignore (Program.validate_exn Workloads.Smallspecs.fig1);
  ignore (Program.validate_exn Workloads.Smallspecs.fig2);
  ignore (Program.validate_exn Workloads.Medical.spec)

let expect_invalid name p =
  match Program.validate p with
  | Ok () -> Alcotest.failf "%s: expected validation failure" name
  | Error msgs -> Alcotest.(check bool) name true (msgs <> [])

let test_validate_unbound_ref () =
  expect_invalid "unbound"
    (Program.make "p" (Behavior.leaf "l" [ Assign ("x", Expr.int 1) ]))

let test_validate_dup_behavior () =
  expect_invalid "dup"
    (Program.make "p"
       (Behavior.seq "t"
          [
            Behavior.arm (Behavior.leaf "a" []);
            Behavior.arm (Behavior.leaf "a" []);
          ]))

let test_validate_bad_transition () =
  expect_invalid "bad goto"
    (Program.make "p"
       (Behavior.seq "t"
          [
            Behavior.arm (Behavior.leaf "a" [])
              ~transitions:[ Builder.goto "nowhere" ];
          ]))

let test_validate_bad_call () =
  let proc = Builder.proc "f" ~params:[ Builder.param_in "a" (TInt 8) ] [] in
  expect_invalid "arity"
    (Program.make ~procs:[ proc ] "p"
       (Behavior.leaf "l" [ Call ("f", []) ]));
  expect_invalid "unknown proc"
    (Program.make "p" (Behavior.leaf "l" [ Call ("g", []) ]));
  let proc_out = Builder.proc "h" ~params:[ Builder.param_out "o" (TInt 8) ] [] in
  expect_invalid "expr to out"
    (Program.make ~procs:[ proc_out ] "p"
       (Behavior.leaf "l" [ Call ("h", [ Arg_expr (Expr.int 1) ]) ]))

let test_validate_scoping () =
  (* A local declaration makes the name visible in the subtree only. *)
  let p =
    Program.make "p"
      (Behavior.seq "t"
         [
           Behavior.arm
             (Behavior.leaf ~vars:[ Builder.int_var "loc" ] "a"
                [ Assign ("loc", Expr.int 1) ]);
           Behavior.arm (Behavior.leaf "b" [ Assign ("loc", Expr.int 2) ]);
         ])
  in
  expect_invalid "sibling cannot see local" p

let test_validate_server_exists () =
  expect_invalid "ghost server"
    (Program.make ~servers:[ "ghost" ] "p" (Behavior.leaf "l" []))

let test_lookup () =
  let p = Workloads.Smallspecs.fig1 in
  Alcotest.(check bool) "var x" true (Program.lookup_var p "x" <> None);
  Alcotest.(check bool) "no var y" true (Program.lookup_var p "y" = None);
  Alcotest.(check bool) "behavior B" true (Program.lookup_behavior p "B" <> None)

(* --- lexer -------------------------------------------------------------- *)

let test_lexer_tokens () =
  let toks = Lexer.tokenize "x := 12 + y; -- comment\nwhile" in
  let kinds = List.map (fun t -> t.Lexer.tok) toks in
  Alcotest.(check int) "count" 8 (List.length kinds);
  Alcotest.(check bool) "assign" true (List.mem Lexer.ASSIGN kinds);
  Alcotest.(check bool) "kw while" true (List.mem (Lexer.KW "while") kinds);
  Alcotest.(check bool) "eof" true (List.mem Lexer.EOF kinds)

let test_lexer_line_numbers () =
  let toks = Lexer.tokenize "a\nb\nc" in
  let lines =
    List.filter_map
      (fun t -> match t.Lexer.tok with Lexer.IDENT _ -> Some t.Lexer.lnum | _ -> None)
      toks
  in
  Alcotest.(check (list int)) "lines" [ 1; 2; 3 ] lines

let test_lexer_string () =
  let toks = Lexer.tokenize "\"he\\\"llo\"" in
  match (List.hd toks).Lexer.tok with
  | Lexer.STRING s -> Alcotest.(check string) "escaped" "he\"llo" s
  | _ -> Alcotest.fail "expected string token"

let test_lexer_errors () =
  Alcotest.check_raises "illegal char" (Lexer.Lex_error ("illegal character '@'", 1))
    (fun () -> ignore (Lexer.tokenize "@"));
  Alcotest.check_raises "unterminated" (Lexer.Lex_error ("unterminated string", 1))
    (fun () -> ignore (Lexer.tokenize "\"abc"))

let test_lexer_two_char_ops () =
  let kinds src = List.map (fun t -> t.Lexer.tok) (Lexer.tokenize src) in
  Alcotest.(check bool) "le" true (List.mem Lexer.LE (kinds "a <= b"));
  Alcotest.(check bool) "ge" true (List.mem Lexer.GE (kinds "a >= b"));
  Alcotest.(check bool) "neq" true (List.mem Lexer.NEQ (kinds "a /= b"));
  Alcotest.(check bool) "arrow" true (List.mem Lexer.ARROW (kinds "a -> b"))

(* --- parser + printer ---------------------------------------------------- *)

let test_program_roundtrip () =
  List.iter
    (fun p ->
      let text = Printer.program_to_string p in
      let p' = Parser.program_of_string_exn text in
      Alcotest.check program_testable p.p_name p p')
    [
      Workloads.Smallspecs.fig1; Workloads.Smallspecs.fig2;
      Workloads.Smallspecs.ping_pong; Workloads.Medical.spec;
    ]

let test_refined_roundtrip () =
  (* The refined output (signals, procedures, servers, par, protocol
     calls) must also round-trip. *)
  let r =
    refine Workloads.Smallspecs.fig2 Workloads.Smallspecs.fig2_partition
      Core.Model.Model4
  in
  let p = r.Core.Refiner.rf_program in
  let p' = Parser.program_of_string_exn (Printer.program_to_string p) in
  Alcotest.check program_testable "roundtrip" p p'

let prop_generated_roundtrip =
  QCheck.Test.make ~count:50 ~name:"generated program roundtrip"
    QCheck.(make Gen.(map (fun seed ->
        { Workloads.Generator.default_config with gen_seed = seed })
        (int_range 1 10_000)))
    (fun cfg ->
      let p = Workloads.Generator.program cfg in
      let p' = Parser.program_of_string_exn (Printer.program_to_string p) in
      Ast.equal_program p p')

let test_parse_errors () =
  let bad src =
    match Parser.program_of_string src with
    | Ok _ -> Alcotest.failf "expected parse error for %S" src
    | Error msg -> Alcotest.(check bool) "mentions line" true
        (String.length msg > 0)
  in
  bad "program p is end";
  bad "program p is behavior b : leaf is begin x = 1; end behavior end program";
  bad "program p is behavior b : oops is begin end behavior end program";
  bad "";
  bad "program p is behavior b : leaf is begin skip; end behavior end program trailing"

let test_located_parse () =
  let src =
    "program locs is\n\
    \  var g : int<8> := 0;\n\
    \  signal s : bool := false;\n\
    \  procedure helper (a : in int<8>) is\n\
    \  begin\n\
    \    g := a;\n\
    \  end procedure;\n\
    \  behavior TOP : seq is\n\
    \    var local : int<8>;\n\
    \  begin\n\
    \    behavior INNER : leaf is\n\
    \    begin\n\
    \      local := 1;\n\
    \    end behavior\n\
    \    -> complete;\n\
    \  end behavior\n\
    end program\n"
  in
  match Parser.program_of_string_located src with
  | Error msg -> Alcotest.fail msg
  | Ok (p, locs) ->
    (* The located parse must agree with the plain one. *)
    (match Parser.program_of_string src with
    | Ok p' -> Alcotest.(check bool) "same program" true (Ast.equal_program p p')
    | Error msg -> Alcotest.fail msg);
    let line table name =
      List.assoc_opt name table
    in
    Alcotest.(check (option int)) "program var" (Some 2)
      (line locs.Parser.loc_decls "g");
    Alcotest.(check (option int)) "signal" (Some 3)
      (line locs.Parser.loc_decls "s");
    Alcotest.(check (option int)) "procedure" (Some 4)
      (line locs.Parser.loc_procedures "helper");
    Alcotest.(check (option int)) "top behavior" (Some 8)
      (line locs.Parser.loc_behaviors "TOP");
    Alcotest.(check (option int)) "behavior var" (Some 9)
      (line locs.Parser.loc_decls "local");
    Alcotest.(check (option int)) "nested behavior" (Some 11)
      (line locs.Parser.loc_behaviors "INNER");
    (* Path resolution: the deepest resolvable element wins. *)
    Alcotest.(check (option int)) "path deepest" (Some 11)
      (Parser.line_of_path locs [ "TOP"; "INNER" ]);
    Alcotest.(check (option int)) "procedure marker" (Some 4)
      (Parser.line_of_path locs [ "TOP"; "procedure helper" ]);
    Alcotest.(check (option int)) "unknown tail falls back" (Some 8)
      (Parser.line_of_path locs [ "TOP"; "NOWHERE" ]);
    Alcotest.(check (option int)) "nothing resolvable" None
      (Parser.line_of_path locs [ "NOWHERE" ])

let test_line_count () =
  let p = Workloads.Smallspecs.fig1 in
  let lines =
    String.split_on_char '\n' (Printer.program_to_string p)
    |> List.filter (fun l -> String.trim l <> "")
  in
  Alcotest.(check int) "count matches" (List.length lines) (Printer.line_count p)

let test_string_of_ty () =
  Alcotest.(check string) "bool" "bool" (Printer.string_of_ty TBool);
  Alcotest.(check string) "int" "int<12>" (Printer.string_of_ty (TInt 12));
  Alcotest.(check string) "array" "int<8>[16]"
    (Printer.string_of_ty (TArray (8, 16)))

let test_array_syntax_roundtrip () =
  let cases =
    [ "x[0] := y[i + 1] + 2;"; "emit \"t\" a[b[0]];";
      "if a[3] > 0 then a[3] := a[3] - 1; end if;" ]
  in
  List.iter
    (fun src ->
      let stmts = Parser.stmts_of_string_exn src in
      let printed = Printer.stmts_to_string stmts in
      Alcotest.(check bool) src true
        (stmts = Parser.stmts_of_string_exn printed))
    cases;
  (* whole program with an array declaration *)
  let prog =
    Program.make
      ~vars:[ Builder.var "a" (TArray (16, 4)) ~init:(VInt 1) ]
      "arr"
      (Behavior.leaf ~vars:[ Builder.int_var "i" ] "L"
         (Parser.stmts_of_string_exn
            "for i := 0 to 3 do a[i] := i * 2; end for; emit \"last\" a[3];"))
  in
  let prog = Program.validate_exn prog in
  let p' = Parser.program_of_string_exn (Printer.program_to_string prog) in
  Alcotest.check program_testable "program roundtrip" prog p'

let test_array_fir_roundtrip () =
  let p = Workloads.Fir.spec in
  let p' = Parser.program_of_string_exn (Printer.program_to_string p) in
  Alcotest.check program_testable "fir" p p'

(* --- analysis ------------------------------------------------------------ *)

let test_analysis_accesses () =
  let p = Workloads.Smallspecs.fig1 in
  let accs = Analysis.accesses_of p "B" in
  (* B: x := x + 5 and emit; read + write of x. *)
  Alcotest.(check int) "two kinds" 2 (List.length accs);
  List.iter
    (fun a -> Alcotest.(check string) "var" "x" a.Analysis.ac_var)
    accs

let test_analysis_toc_attribution () =
  (* Transition conditions of arm A are charged to A (Figure 6). *)
  let p = Workloads.Smallspecs.fig1 in
  let a_reads =
    List.filter
      (fun a -> a.Analysis.ac_kind = Analysis.Read)
      (Analysis.accesses_of p "A")
  in
  Alcotest.(check bool) "A reads x (via conds and emit)" true
    (List.exists (fun a -> a.Analysis.ac_var = "x") a_reads)

let test_analysis_loop_weighting () =
  let p =
    Program.make
      ~vars:[ Builder.int_var "v" ]
      "p"
      (Behavior.leaf "l"
         (Parser.stmts_of_string_exn
            "for q := 0 to 3 do v := v + 1; end for;"
          |> fun stmts ->
          stmts))
  in
  (* The for body executes 4 times: v read and written 4 times each.
     [q] is undeclared at program level, so only v is counted. *)
  let p =
    { p with
      p_top =
        { p.p_top with
          b_vars = [ Builder.int_var "q" ] } }
  in
  let accs = Analysis.accesses_of p "l" in
  List.iter
    (fun a -> Alcotest.(check int) "4x" 4 a.Analysis.ac_count)
    accs;
  Alcotest.(check int) "two entries" 2 (List.length accs)

let test_analysis_while_weighting () =
  let p =
    Program.make
      ~vars:[ Builder.int_var "v" ]
      "p"
      (Behavior.leaf "l"
         [ While (Expr.(ref_ "v" < int 10), [ Assign ("v", Expr.(ref_ "v" + int 1)) ]) ])
  in
  let accs = Analysis.behavior_accesses ~while_iterations:5 p in
  let l_accs = List.assoc "l" accs in
  let writes = List.find (fun a -> a.Analysis.ac_kind = Analysis.Write) l_accs in
  Alcotest.(check int) "5 writes" 5 writes.Analysis.ac_count

let test_analysis_shadowing () =
  let p =
    Program.make
      ~vars:[ Builder.int_var "v" ]
      "p"
      (Behavior.leaf ~vars:[ Builder.int_var "v" ] "l"
         [ Assign ("v", Expr.int 1) ])
  in
  Alcotest.(check int) "shadowed: no accesses" 0
    (List.length (Analysis.accesses_of p "l"))

let test_var_users () =
  let users = Analysis.var_users Workloads.Smallspecs.fig1 in
  Alcotest.(check (list string)) "x users" [ "A"; "B"; "C" ]
    (List.assoc "x" users)

let () =
  Alcotest.run "spec"
    [
      ( "expr",
        [
          tc "arith" test_eval_arith;
          tc "compare" test_eval_compare;
          tc "bool" test_eval_bool;
          tc "refs" test_eval_refs;
          tc "short-circuit" test_eval_shortcircuit;
          tc "div-by-zero" test_eval_div_zero;
          tc "type errors" test_eval_type_errors;
          tc "eval_const" test_eval_const;
          tc "refs order" test_refs_order;
          tc "rename/subst" test_rename_subst;
          tc "size" test_expr_size;
          tc "pp/parse units" test_pp_parse_units;
          QCheck_alcotest.to_alcotest prop_expr_roundtrip;
        ] );
      ( "stmt",
        [
          tc "reads" test_stmt_reads;
          tc "writes" test_stmt_writes;
          tc "signal writes" test_stmt_signal_writes;
          tc "calls" test_stmt_calls;
          tc "count" test_stmt_count;
          tc "rename" test_stmt_rename;
          tc "map_stmts splice" test_stmt_map_stmts;
          tc "map_exprs" test_stmt_map_exprs;
          tc "fold order" test_fold_exprs_order;
        ] );
      ( "behavior",
        [
          tc "names" test_behavior_names;
          tc "find" test_behavior_find;
          tc "parent" test_behavior_parent;
          tc "counts" test_behavior_counts;
          tc "replace" test_behavior_replace;
          tc "var decls" test_behavior_all_var_decls;
          tc "transition conds" test_transition_conds;
        ] );
      ( "program",
        [
          tc "validate workloads" test_validate_ok;
          tc "unbound ref" test_validate_unbound_ref;
          tc "duplicate behavior" test_validate_dup_behavior;
          tc "bad transition" test_validate_bad_transition;
          tc "bad call" test_validate_bad_call;
          tc "scoping" test_validate_scoping;
          tc "server exists" test_validate_server_exists;
          tc "lookup" test_lookup;
        ] );
      ( "lexer",
        [
          tc "tokens" test_lexer_tokens;
          tc "line numbers" test_lexer_line_numbers;
          tc "strings" test_lexer_string;
          tc "errors" test_lexer_errors;
          tc "two-char ops" test_lexer_two_char_ops;
        ] );
      ( "parser/printer",
        [
          tc "workload roundtrip" test_program_roundtrip;
          tc "refined roundtrip" test_refined_roundtrip;
          QCheck_alcotest.to_alcotest prop_generated_roundtrip;
          tc "parse errors" test_parse_errors;
          tc "located parse" test_located_parse;
          tc "line count" test_line_count;
          tc "string_of_ty" test_string_of_ty;
          tc "array syntax roundtrip" test_array_syntax_roundtrip;
          tc "fir roundtrip" test_array_fir_roundtrip;
        ] );
      ( "analysis",
        [
          tc "accesses" test_analysis_accesses;
          tc "TOC attribution" test_analysis_toc_attribution;
          tc "loop weighting" test_analysis_loop_weighting;
          tc "while weighting" test_analysis_while_weighting;
          tc "shadowing" test_analysis_shadowing;
          tc "var users" test_var_users;
        ] );
    ]
