(** Tests for the fault-injection subsystem: the engine's injection
    hooks, the enriched deadlock report, campaign determinism, and the
    hardened protocol's survival guarantees. *)

open Spec
open Helpers

(* --- a tiny handshake pair for the hook unit tests --------------------- *)

(* A raises [go], waits for [ack], emits OK; B acks [go].  C is an
   activity generator: it keeps the delta clock advancing so delayed
   updates have commits to ride on. *)
let handshake_spec ~activity =
  let a =
    Behavior.leaf "A"
      (Parser.stmts_of_string_exn
         "go <= true; wait until ack; emit \"OK\" 1;")
  in
  let b =
    Behavior.leaf "B"
      (Parser.stmts_of_string_exn "wait until go; ack <= true;")
  in
  let c =
    Behavior.leaf ~vars:[ Builder.bool_var ~init:false "t" ] "C"
      (Parser.stmts_of_string_exn
         "for i := 1 to 30 do t := not t; tick <= t; wait until tick = t; \
          end for;")
  in
  let children = [ a; b ] @ if activity then [ c ] else [] in
  Program.validate_exn
    (Program.make
       ~vars:[ Builder.int_var ~width:8 ~init:0 "i" ]
       ~signals:
         [
           Builder.bool_signal ~init:false "go";
           Builder.bool_signal ~init:false "ack";
           Builder.bool_signal ~init:false "tick";
         ]
       "handshake"
       (Behavior.par "TOP" children))

let test_drop_update_deadlocks () =
  let p = handshake_spec ~activity:false in
  (* Fault-free: completes. *)
  ignore (run_ok p);
  let hooks =
    Faults.Inject.hooks
      [ Faults.Fault.Drop_update { du_signal = "go"; du_occurrence = 1 } ]
  in
  let r = Sim.Engine.run ~hooks p in
  match r.Sim.Engine.r_outcome with
  | Sim.Engine.Deadlock msgs ->
    (* The enriched report names the signal each process waits on. *)
    let contains s sub =
      let n = String.length sub in
      let rec go i =
        i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
      in
      go 0
    in
    Alcotest.(check bool) "report names the dropped signal" true
      (List.exists (fun m -> contains m "go") msgs)
  | o ->
    Alcotest.failf "expected deadlock, got %s"
      (Sim.Engine.outcome_to_string o)

let test_delay_update_delivers () =
  let p = handshake_spec ~activity:true in
  let hooks =
    Faults.Inject.hooks
      [
        Faults.Fault.Delay_update
          { dl_signal = "go"; dl_occurrence = 1; dl_deltas = 5 };
      ]
  in
  let r = Sim.Engine.run ~hooks p in
  begin match r.Sim.Engine.r_outcome with
  | Sim.Engine.Completed -> ()
  | o ->
    Alcotest.failf "expected completion, got %s"
      (Sim.Engine.outcome_to_string o)
  end;
  Alcotest.(check int) "OK still emitted" 1
    (List.length (trace_values "OK" r))

let test_stuck_at_forces_value () =
  let p = handshake_spec ~activity:false in
  (* [ack] stuck low from the start: A never sees the acknowledgment. *)
  let hooks =
    Faults.Inject.hooks
      [
        Faults.Fault.Stuck_at
          { st_signal = "ack"; st_value = Ast.VBool false; st_delta = 0 };
      ]
  in
  let r = Sim.Engine.run ~hooks p in
  begin match r.Sim.Engine.r_outcome with
  | Sim.Engine.Deadlock _ -> ()
  | o ->
    Alcotest.failf "expected deadlock, got %s"
      (Sim.Engine.outcome_to_string o)
  end;
  Alcotest.(check int) "OK never emitted" 0
    (List.length (trace_values "OK" r))

let test_counting_hooks () =
  let p = handshake_spec ~activity:false in
  let hooks, occurrences = Faults.Inject.counting () in
  ignore (Sim.Engine.run ~hooks p);
  let count s = Option.value ~default:0 (Hashtbl.find_opt occurrences s) in
  Alcotest.(check bool) "go committed once" true (count "go" >= 1);
  Alcotest.(check bool) "ack committed once" true (count "ack" >= 1)

(* --- campaigns against the medical workload ---------------------------- *)

let medical_refined ~harden model =
  let options = { Core.Refiner.default_options with harden } in
  refine ~options Workloads.Medical.spec
    (List.hd Workloads.Designs.all).Workloads.Designs.d_partition model

let small_config =
  {
    Faults.Campaign.default_config with
    Faults.Campaign.cf_seeds = 4;
  }

let test_campaign_deterministic () =
  let r = medical_refined ~harden:false Core.Model.Model2 in
  let strip report =
    List.map
      (fun rn ->
        Printf.sprintf "%d/%s/%s/%d" rn.Faults.Campaign.run_seed
          (Faults.Fault.cls_name rn.Faults.Campaign.run_class)
          (Faults.Campaign.outcome_name rn.Faults.Campaign.run_outcome)
          rn.Faults.Campaign.run_deltas)
      report.Faults.Campaign.rp_runs
  in
  let a = Faults.Campaign.run ~config:small_config r in
  let b = Faults.Campaign.run ~config:small_config r in
  Alcotest.(check (list string)) "identical runs" (strip a) (strip b);
  Alcotest.(check (float 0.0))
    "identical robustness" a.Faults.Campaign.rp_robustness
    b.Faults.Campaign.rp_robustness

let test_hardening_improves_survival () =
  List.iter
    (fun model ->
      let plain =
        Faults.Campaign.run ~config:small_config
          (medical_refined ~harden:false model)
      in
      let hard =
        Faults.Campaign.run ~config:small_config
          (medical_refined ~harden:true model)
      in
      Alcotest.(check bool)
        "hardened report flagged" true hard.Faults.Campaign.rp_hardened;
      (* Strictly higher survival for the classes the watchdog and TMR
         target, and overall. *)
      List.iter
        (fun cls ->
          let s_plain = Faults.Campaign.survival_fraction plain cls in
          let s_hard = Faults.Campaign.survival_fraction hard cls in
          if not (s_hard > s_plain) then
            Alcotest.failf "%s %s: hardened %.3f <= unhardened %.3f"
              (Core.Model.name model) (Faults.Fault.cls_name cls) s_hard
              s_plain)
        [ Faults.Fault.Drop_handshake; Faults.Fault.Bit_flip ];
      Alcotest.(check bool)
        "overall robustness strictly higher" true
        (hard.Faults.Campaign.rp_robustness
        > plain.Faults.Campaign.rp_robustness);
      (* The hardened design never corrupts silently: it survives,
         recovers, or fail-stops into an honest deadlock. *)
      List.iter
        (fun rn ->
          match rn.Faults.Campaign.run_outcome with
          | Faults.Campaign.Silent_corruption ->
            Alcotest.failf "%s seed %d %s: silent corruption under --harden"
              (Core.Model.name model) rn.Faults.Campaign.run_seed
              (Faults.Fault.cls_name rn.Faults.Campaign.run_class)
          | _ -> ())
        hard.Faults.Campaign.rp_runs)
    [ Core.Model.Model2; Core.Model.Model4 ]

let test_hardened_cosim_equivalent () =
  (* Hardening must not change fault-free observable behavior. *)
  List.iter
    (fun model ->
      let r = medical_refined ~harden:true model in
      let v =
        Sim.Cosim.check
          ~ignore_prefixes:Core.Protocol.reserved_tag_prefixes
          ~original:Workloads.Medical.spec
          ~refined:r.Core.Refiner.rf_program ()
      in
      if not v.Sim.Cosim.v_equivalent then
        Alcotest.failf "%s hardened not equivalent: %s"
          (Core.Model.name model)
          (String.concat "; " v.Sim.Cosim.v_problems))
    Core.Model.all

let test_report_rendering () =
  let r = medical_refined ~harden:true Core.Model.Model2 in
  let config =
    { small_config with Faults.Campaign.cf_seeds = 2 }
  in
  let report = Faults.Campaign.run ~config r in
  let text = Faults.Campaign.to_text report in
  Alcotest.(check bool) "text mentions design" true
    (String.length text > 0);
  let json = Faults.Campaign.to_json report in
  (* Every run appears in the JSON. *)
  Alcotest.(check bool) "json has runs" true
    (String.length json > String.length text)

(* --- resilience: cancellation, deadlines, resume ------------------------ *)

let test_classify_cancelled_is_timed_out () =
  let r = medical_refined ~harden:false Core.Model.Model2 in
  let golden = Sim.Engine.run r.Core.Refiner.rf_program in
  let cancelled = { golden with Sim.Engine.r_outcome = Sim.Engine.Cancelled } in
  (match Faults.Campaign.classify ~storage:[] ~golden cancelled with
  | Faults.Campaign.Timed_out -> ()
  | o ->
    Alcotest.failf "expected timed-out, got %s"
      (Faults.Campaign.outcome_name o));
  Alcotest.(check string) "named" "timed-out"
    (Faults.Campaign.outcome_name Faults.Campaign.Timed_out)

let test_campaign_deadline_on_golden_refuses () =
  let r = medical_refined ~harden:false Core.Model.Model2 in
  let config =
    { small_config with Faults.Campaign.cf_deadline_s = Some 0.0 }
  in
  match Faults.Campaign.run ~config r with
  | _ -> Alcotest.fail "an expired deadline must cancel the golden run"
  | exception Faults.Campaign.Campaign_error _ -> ()

(* A simulate wrapper that runs the golden (first) simulation for real,
   then reports every injected run as cancelled — the shape a deadline
   firing right after the golden run produces. *)
let cancel_after_golden () =
  let calls = ref 0 in
  let simulate ~config ~hooks ?ordering p =
    incr calls;
    let r = Sim.Engine.run ~config ~hooks ?ordering p in
    if !calls = 1 then r
    else { r with Sim.Engine.r_outcome = Sim.Engine.Cancelled }
  in
  (simulate, calls)

let campaign_fingerprint report =
  List.map
    (fun rn ->
      Printf.sprintf "%d/%s/%s/%d" rn.Faults.Campaign.run_seed
        (Faults.Fault.cls_name rn.Faults.Campaign.run_class)
        (Faults.Campaign.outcome_name rn.Faults.Campaign.run_outcome)
        rn.Faults.Campaign.run_deltas)
    report.Faults.Campaign.rp_runs

let fresh_journal_path () =
  let dir = Filename.temp_file "coref_faults" ".d" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Filename.concat dir "campaign.journal"

let test_campaign_timeouts_degrade_not_abort () =
  let r = medical_refined ~harden:false Core.Model.Model2 in
  let config = { small_config with Faults.Campaign.cf_seeds = 2 } in
  let path = fresh_journal_path () in
  let meta = Faults.Campaign.journal_meta config r in
  let j = Checkpoint.Journal.open_ ~path ~meta in
  let simulate, _ = cancel_after_golden () in
  let report = Faults.Campaign.run ~config ~simulate ~journal:j r in
  Alcotest.(check bool) "campaign completes" true
    (report.Faults.Campaign.rp_runs <> []);
  List.iter
    (fun rn ->
      match rn.Faults.Campaign.run_outcome with
      | Faults.Campaign.Timed_out -> ()
      | o ->
        Alcotest.failf "expected timed-out, got %s"
          (Faults.Campaign.outcome_name o))
    report.Faults.Campaign.rp_runs;
  Alcotest.(check (float 0.0)) "no run counted robust" 0.0
    report.Faults.Campaign.rp_robustness;
  (* Timed-out runs are transient: nothing may be journaled, so a later
     unhurried campaign retries every run. *)
  Alcotest.(check int) "nothing journaled" 0 (Checkpoint.Journal.length j);
  Checkpoint.Journal.close j;
  let j2 = Checkpoint.Journal.open_ ~path ~meta in
  let healthy = Faults.Campaign.run ~config ~journal:j2 r in
  Checkpoint.Journal.close j2;
  Alcotest.(check (list string)) "retried to the definitive report"
    (campaign_fingerprint (Faults.Campaign.run ~config r))
    (campaign_fingerprint healthy)

let test_campaign_kill_resume_round_trip () =
  let r = medical_refined ~harden:true Core.Model.Model2 in
  let config = { small_config with Faults.Campaign.cf_seeds = 2 } in
  let meta = Faults.Campaign.journal_meta config r in
  (* Reference: one full campaign, journaled. *)
  let full_path = fresh_journal_path () in
  let jf = Checkpoint.Journal.open_ ~path:full_path ~meta in
  let full = Faults.Campaign.run ~config ~journal:jf r in
  let n_runs = List.length full.Faults.Campaign.rp_runs in
  Alcotest.(check int) "every definitive run journaled" n_runs
    (Checkpoint.Journal.length jf);
  let recorded = Checkpoint.Journal.entries jf in
  Checkpoint.Journal.close jf;
  (* Model a SIGKILL after 3 completed runs: a journal holding a prefix. *)
  let part_path = fresh_journal_path () in
  let jp = Checkpoint.Journal.open_ ~path:part_path ~meta in
  List.iteri
    (fun i (key, blob) ->
      if i < 3 then Checkpoint.Journal.append jp ~key blob)
    recorded;
  Checkpoint.Journal.close jp;
  let jr = Checkpoint.Journal.open_ ~path:part_path ~meta in
  (* Resume with a healthy simulator, counting how many runs actually
     re-simulate: the replayed 3 must not. *)
  let calls = ref 0 in
  let simulate ~config ~hooks ?ordering p =
    incr calls;
    Sim.Engine.run ~config ~hooks ?ordering p
  in
  let resumed = Faults.Campaign.run ~config ~simulate ~journal:jr r in
  Checkpoint.Journal.close jr;
  Alcotest.(check (list string)) "resumed report identical"
    (campaign_fingerprint full)
    (campaign_fingerprint resumed);
  Alcotest.(check (float 0.0)) "identical robustness"
    full.Faults.Campaign.rp_robustness
    resumed.Faults.Campaign.rp_robustness;
  Alcotest.(check int) "only the remainder re-simulated"
    (1 + (n_runs - 3)) (* golden + the non-replayed runs *)
    !calls

let test_campaign_journal_meta_binds_config () =
  let r = medical_refined ~harden:false Core.Model.Model2 in
  let config = { small_config with Faults.Campaign.cf_seeds = 2 } in
  let path = fresh_journal_path () in
  let j =
    Checkpoint.Journal.open_ ~path
      ~meta:(Faults.Campaign.journal_meta config r)
  in
  Checkpoint.Journal.close j;
  let other = { config with Faults.Campaign.cf_seeds = 3 } in
  match
    Checkpoint.Journal.open_ ~path
      ~meta:(Faults.Campaign.journal_meta other r)
  with
  | _ -> Alcotest.fail "a different configuration must refuse the journal"
  | exception Checkpoint.Journal.Journal_error _ -> ()

(* --- qcheck: a dropped done-edge never silently corrupts ---------------- *)

(* Refined fig1, hardened: any single dropped [*_done] handshake update
   either recovers (watchdog redrive) or fail-stops into a deadlock —
   never a silently corrupted completion. *)
let prop_dropped_done_never_corrupts =
  let r =
    let options = { Core.Refiner.default_options with harden = true } in
    let p = Workloads.Smallspecs.fig1 in
    let g = Agraph.Access_graph.of_program p in
    Core.Refiner.refine ~options p g Workloads.Smallspecs.fig1_partition
      Core.Model.Model2
  in
  let program = r.Core.Refiner.rf_program in
  let hooks, occurrences = Faults.Inject.counting () in
  let golden = Sim.Engine.run ~hooks program in
  (match golden.Sim.Engine.r_outcome with
  | Sim.Engine.Completed -> ()
  | o ->
    failwith ("golden fig1 run: " ^ Sim.Engine.outcome_to_string o));
  let targets = Faults.Campaign.enumerate r occurrences in
  let has_suffix suffix s =
    let ls = String.length suffix and l = String.length s in
    l >= ls && String.sub s (l - ls) ls = suffix
  in
  let dones =
    List.filter (has_suffix "_done") targets.Faults.Campaign.tg_handshakes
  in
  assert (dones <> []);
  let budget =
    {
      Sim.Engine.default_config with
      Sim.Engine.max_deltas = (golden.Sim.Engine.r_deltas * 10) + 50_000;
    }
  in
  QCheck.Test.make ~count:25
    ~name:"single dropped done-edge: recover or deadlock, never corrupt"
    QCheck.(make ~print:string_of_int Gen.(int_range 0 10_000))
    (fun pick ->
      let signal = List.nth dones (pick mod List.length dones) in
      let commits =
        Option.value ~default:1 (Hashtbl.find_opt occurrences signal)
      in
      let occurrence = 1 + (pick / 7 mod commits) in
      let faulty =
        Sim.Engine.run ~config:budget
          ~hooks:
            (Faults.Inject.hooks
               [
                 Faults.Fault.Drop_update
                   { du_signal = signal; du_occurrence = occurrence };
               ])
          program
      in
      match
        Faults.Campaign.classify
          ~storage:targets.Faults.Campaign.tg_storage ~golden faulty
      with
      | Faults.Campaign.Survived | Faults.Campaign.Detected_recovered
      | Faults.Campaign.Deadlock ->
        true
      | Faults.Campaign.Silent_corruption ->
        QCheck.Test.fail_reportf "drop %s #%d: silent corruption" signal
          occurrence
      | Faults.Campaign.Step_limit ->
        QCheck.Test.fail_reportf "drop %s #%d: step limit" signal occurrence
      | Faults.Campaign.Timed_out ->
        QCheck.Test.fail_reportf "drop %s #%d: timed out" signal occurrence)

let () =
  Alcotest.run "faults"
    [
      ( "inject",
        [
          tc "dropped update deadlocks, report names signal"
            test_drop_update_deadlocks;
          tc "delayed update delivers" test_delay_update_delivers;
          tc "stuck-at forces value" test_stuck_at_forces_value;
          tc "counting hooks" test_counting_hooks;
        ] );
      ( "campaign",
        [
          tc "deterministic" test_campaign_deterministic;
          tc "hardening improves survival" test_hardening_improves_survival;
          tc "hardened cosim equivalent" test_hardened_cosim_equivalent;
          tc "report rendering" test_report_rendering;
        ] );
      ( "resilience",
        [
          tc "cancelled classifies timed-out" test_classify_cancelled_is_timed_out;
          tc "deadline on golden refuses" test_campaign_deadline_on_golden_refuses;
          tc "timeouts degrade not abort" test_campaign_timeouts_degrade_not_abort;
          tc "kill-resume round-trip" test_campaign_kill_resume_round_trip;
          tc "journal meta binds config" test_campaign_journal_meta_binds_config;
        ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_dropped_done_never_corrupts ] );
    ]
