(** Tests for the design-space exploration engine: the domain pool, the
    memoization cache and the Pareto operators directly, plus whole
    sweeps — determinism across worker counts, cache hit rates on
    repeated and persistent sweeps, and the frontier's soundness. *)

open Explore
open Helpers

(* --- pool ---------------------------------------------------------------- *)

let test_pool_matches_list_map () =
  let items = List.init 100 Fun.id in
  let f x = (x * x) + 1 in
  let expected = List.map f items in
  List.iter
    (fun jobs ->
      Alcotest.(check (list int))
        (Printf.sprintf "jobs=%d" jobs)
        expected
        (Pool.map ~jobs ~f items))
    [ 1; 2; 4; 8 ]

let test_pool_more_jobs_than_items () =
  Alcotest.(check (list int)) "3 items, 16 jobs" [ 2; 4; 6 ]
    (Pool.map ~jobs:16 ~f:(fun x -> 2 * x) [ 1; 2; 3 ])

let test_pool_empty_and_singleton () =
  Alcotest.(check (list int)) "empty" [] (Pool.map ~jobs:4 ~f:succ []);
  Alcotest.(check (list int)) "singleton" [ 8 ] (Pool.map ~jobs:4 ~f:succ [ 7 ])

let test_pool_rejects_bad_jobs () =
  Alcotest.check_raises "jobs=0" (Invalid_argument "Pool.map: jobs < 1")
    (fun () -> ignore (Pool.map ~jobs:0 ~f:succ [ 1 ]))

let test_pool_exception_is_deterministic () =
  (* Items 30 and 60 fail; the smallest-index failure must win at every
     worker count. *)
  let f x = if x = 30 || x = 60 then failwith (string_of_int x) else x in
  List.iter
    (fun jobs ->
      match Pool.map ~jobs ~f (List.init 100 Fun.id) with
      | _ -> Alcotest.fail "expected an exception"
      | exception Failure msg ->
        Alcotest.(check string)
          (Printf.sprintf "first failure wins at jobs=%d" jobs)
          "30" msg)
    [ 1; 3; 7 ]

let test_pool_iter_runs_everything () =
  let hits = Array.make 50 0 in
  Pool.iter ~jobs:4 ~f:(fun i -> hits.(i) <- hits.(i) + 1)
    (List.init 50 Fun.id);
  Alcotest.(check (list int)) "each item once" (List.init 50 (fun _ -> 1))
    (Array.to_list hits)

(* --- cache --------------------------------------------------------------- *)

let test_cache_computes_once () =
  let c = Cache.create () in
  let calls = ref 0 in
  let compute () = incr calls; 41 + 1 in
  let v1, cached1 = Cache.find_or_add c "k" compute in
  let v2, cached2 = Cache.find_or_add c "k" compute in
  Alcotest.(check int) "value" 42 v1;
  Alcotest.(check int) "same value" 42 v2;
  Alcotest.(check bool) "first is a miss" false cached1;
  Alcotest.(check bool) "second is a hit" true cached2;
  Alcotest.(check int) "computed once" 1 !calls;
  let s = Cache.stats c in
  Alcotest.(check (pair int int)) "stats" (1, 1) (s.Cache.hits, s.Cache.misses);
  Alcotest.(check (float 1e-9)) "hit rate" 0.5 (Cache.hit_rate c)

let test_cache_distinct_keys () =
  let c = Cache.create () in
  let v1, _ = Cache.find_or_add c "a" (fun () -> 1) in
  let v2, _ = Cache.find_or_add c "b" (fun () -> 2) in
  Alcotest.(check (pair int int)) "no collision" (1, 2) (v1, v2);
  Alcotest.(check bool) "mem a" true (Cache.mem c "a");
  Alcotest.(check bool) "not mem c" false (Cache.mem c "zzz")

let fresh_temp_dir () =
  let path = Filename.temp_file "coref_cache" ".d" in
  Sys.remove path;
  Sys.mkdir path 0o755;
  path

let test_cache_persists_across_instances () =
  let dir = fresh_temp_dir () in
  let calls = ref 0 in
  let compute () = incr calls; [ "deep"; "value" ] in
  let c1 = Cache.create ~dir () in
  let _ = Cache.find_or_add c1 (Cache.digest_key [ "x" ]) compute in
  (* A second process (modelled by a fresh instance) must hit on disk. *)
  let c2 = Cache.create ~dir () in
  let v, cached = Cache.find_or_add c2 (Cache.digest_key [ "x" ]) compute in
  Alcotest.(check (list string)) "round-trip" [ "deep"; "value" ] v;
  Alcotest.(check bool) "disk hit" true cached;
  Alcotest.(check int) "computed once across instances" 1 !calls

let test_cache_tolerates_corrupt_files () =
  let dir = fresh_temp_dir () in
  let key = Cache.digest_key [ "corrupt" ] in
  let oc = open_out_bin (Filename.concat dir (key ^ ".memo")) in
  output_string oc "not a cache entry";
  close_out oc;
  let c = Cache.create ~dir () in
  let v, cached = Cache.find_or_add c key (fun () -> 7) in
  Alcotest.(check int) "recomputed" 7 v;
  Alcotest.(check bool) "treated as miss" false cached

let test_cache_tolerates_corrupt_blob () =
  (* A version-valid file whose marshalled payload is damaged (truncated
     on disk, bit rot) must read as a miss, not raise — and the damaged
     file must be replaced by the recomputed value. *)
  let dir = fresh_temp_dir () in
  let key = Cache.digest_key [ "corrupt-blob" ] in
  let c0 = Cache.create ~dir () in
  let v0, _ = Cache.find_or_add c0 key (fun () -> 41) in
  Alcotest.(check int) "initial value" 41 v0;
  let path = Filename.concat dir (key ^ ".memo") in
  let ic = open_in_bin path in
  let data = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let oc = open_out_bin path in
  output_string oc (String.sub data 0 (String.length data - 4));
  close_out oc;
  let c1 = Cache.create ~dir () in
  let v1, cached1 = Cache.find_or_add c1 key (fun () -> 7) in
  Alcotest.(check int) "recomputed" 7 v1;
  Alcotest.(check bool) "treated as miss" false cached1;
  let c2 = Cache.create ~dir () in
  let v2, cached2 = Cache.find_or_add c2 key (fun () -> 9) in
  Alcotest.(check int) "repaired on disk" 7 v2;
  Alcotest.(check bool) "hit after repair" true cached2

let test_cache_concurrent_hammer () =
  (* Many domains racing on few keys: every returned value must be right
     and the totals must balance. *)
  let c = Cache.create () in
  let keys = List.init 8 string_of_int in
  let work = List.concat (List.init 25 (fun _ -> keys)) in
  let results =
    Pool.map ~jobs:4
      ~f:(fun k -> fst (Cache.find_or_add c k (fun () -> int_of_string k)))
      work
  in
  List.iter2
    (fun k v -> Alcotest.(check int) ("key " ^ k) (int_of_string k) v)
    work results;
  let s = Cache.stats c in
  Alcotest.(check int) "every lookup counted" (List.length work)
    (s.Cache.hits + s.Cache.misses)

let test_cache_reset_stats () =
  let c = Cache.create () in
  let _ = Cache.find_or_add c "k" (fun () -> 0) in
  Cache.reset_stats c;
  let s = Cache.stats c in
  Alcotest.(check (pair int int)) "zeroed" (0, 0) (s.Cache.hits, s.Cache.misses);
  Alcotest.(check bool) "entry kept" true (snd (Cache.find_or_add c "k" (fun () -> 1)))

(* --- pareto -------------------------------------------------------------- *)

let test_dominates () =
  Alcotest.(check bool) "strictly better" true
    (Pareto.dominates [| 1.0; 2.0 |] [| 2.0; 2.0 |]);
  Alcotest.(check bool) "equal does not dominate" false
    (Pareto.dominates [| 1.0; 2.0 |] [| 1.0; 2.0 |]);
  Alcotest.(check bool) "trade-off does not dominate" false
    (Pareto.dominates [| 1.0; 3.0 |] [| 2.0; 2.0 |]);
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Pareto.dominates: objective vectors of different lengths")
    (fun () -> ignore (Pareto.dominates [| 1.0 |] [| 1.0; 2.0 |]))

let test_frontier () =
  let items =
    [ ("a", [| 1.0; 4.0 |]); ("b", [| 2.0; 2.0 |]); ("c", [| 4.0; 1.0 |]);
      ("d", [| 3.0; 3.0 |]); (* dominated by b *)
      ("e", [| 2.0; 2.0 |]) (* duplicate of b: stays *) ]
  in
  let names = List.map fst (Pareto.frontier ~objectives:snd items) in
  Alcotest.(check (list string)) "non-dominated, input order"
    [ "a"; "b"; "c"; "e" ] names

let test_frontier_stability () =
  let items = [ ("x", [| 1.0 |]); ("y", [| 1.0 |]); ("z", [| 1.0 |]) ] in
  Alcotest.(check (list string)) "ties keep input order" [ "x"; "y"; "z" ]
    (List.map fst (Pareto.frontier ~objectives:snd items))

let test_sort_lexicographic () =
  let items =
    [ ("b", [| 1.0; 3.0 |]); ("c", [| 2.0; 0.0 |]); ("a", [| 1.0; 2.0 |]) ]
  in
  Alcotest.(check (list string)) "ascending lexicographic" [ "a"; "b"; "c" ]
    (List.map fst (Pareto.sort ~objectives:snd items))

let test_rank_layers () =
  let items =
    [ ("front", [| 1.0; 1.0 |]); ("mid", [| 2.0; 2.0 |]);
      ("back", [| 3.0; 3.0 |]); ("front2", [| 0.5; 4.0 |]) ]
  in
  let ranks =
    List.map (fun ((name, _), depth) -> (name, depth))
      (Pareto.rank ~objectives:snd items)
  in
  Alcotest.(check (list (pair string int)))
    "non-dominated sorting depths"
    [ ("front", 0); ("mid", 1); ("back", 2); ("front2", 0) ]
    ranks

(* --- candidates ---------------------------------------------------------- *)

let test_enumerate_order_and_count () =
  let cs =
    Candidate.enumerate ~seeds:[ 1; 2 ]
      ~models:[ Core.Model.Model1; Core.Model.Model2 ] ()
  in
  Alcotest.(check int) "2 seeds x 3 biases x 2 models" 12 (List.length cs);
  Alcotest.(check (list string)) "fixed enumeration order"
    [ "seed1/balanced/Model1"; "seed1/balanced/Model2";
      "seed1/local/Model1"; "seed1/local/Model2";
      "seed1/global/Model1"; "seed1/global/Model2";
      "seed2/balanced/Model1"; "seed2/balanced/Model2";
      "seed2/local/Model1"; "seed2/local/Model2";
      "seed2/global/Model1"; "seed2/global/Model2" ]
    (List.map Candidate.label cs);
  Alcotest.(check bool) "enumeration order agrees with compare" true
    (List.sort Candidate.compare cs = cs)

let test_bias_names_round_trip () =
  List.iter
    (fun b ->
      Alcotest.(check bool) (Candidate.bias_name b) true
        (Candidate.bias_of_string (Candidate.bias_name b) = Some b))
    Candidate.all_biases;
  Alcotest.(check bool) "unknown rejected" true
    (Candidate.bias_of_string "sideways" = None)

(* --- evaluation + sweeps ------------------------------------------------- *)

let fig2 = Workloads.Smallspecs.fig2

let small_config jobs =
  {
    Sweep.default_config with
    Sweep.seeds = [ 1; 2 ];
    steps = 600;
    jobs;
  }

let result_fingerprint (r : Evaluate.result) =
  let label = Candidate.label r.Evaluate.r_candidate in
  match r.Evaluate.r_outcome with
  | Error msg -> label ^ ":error:" ^ msg
  | Ok m ->
    Printf.sprintf "%s:%d/%d:%.6f:%.6f:%d:%d" label m.Evaluate.e_locals
      m.Evaluate.e_globals m.Evaluate.e_max_bus_rate m.Evaluate.e_growth
      m.Evaluate.e_pins m.Evaluate.e_gates

let test_sweep_independent_of_jobs () =
  let fp jobs =
    let sw = Sweep.run (small_config jobs) fig2 in
    ( List.map result_fingerprint sw.Sweep.sw_results,
      List.map result_fingerprint sw.Sweep.sw_frontier )
  in
  let seq = fp 1 in
  List.iter
    (fun jobs ->
      let par = fp jobs in
      Alcotest.(check (list string))
        (Printf.sprintf "results at jobs=%d" jobs)
        (fst seq) (fst par);
      Alcotest.(check (list string))
        (Printf.sprintf "frontier at jobs=%d" jobs)
        (snd seq) (snd par))
    [ 2; 4 ]

let test_sweep_metrics_sane () =
  let sw = Sweep.run (small_config 1) fig2 in
  Alcotest.(check int) "24 candidates" 24 (List.length sw.Sweep.sw_results);
  Alcotest.(check bool) "frontier non-empty" true (sw.Sweep.sw_frontier <> []);
  List.iter
    (fun (r : Evaluate.result) ->
      match r.Evaluate.r_outcome with
      | Error msg -> Alcotest.failf "candidate failed: %s" msg
      | Ok m ->
        Alcotest.(check bool) "check ok" true m.Evaluate.e_check_ok;
        Alcotest.(check bool) "growth > 1" true (m.Evaluate.e_growth > 1.0);
        Alcotest.(check bool) "rate >= 0" true (m.Evaluate.e_max_bus_rate >= 0.0);
        Alcotest.(check bool) "pins > 0" true (m.Evaluate.e_pins > 0);
        Alcotest.(check int) "lint-clean output" 0 m.Evaluate.e_lint_errors;
        Alcotest.(check bool) "lint warnings counted" true
          (m.Evaluate.e_lint_warnings >= 0))
    sw.Sweep.sw_results

let test_sweep_frontier_is_sound () =
  (* No kept design may be dominated by any evaluated design, and every
     dropped design must be dominated by some kept one or failed. *)
  let sw = Sweep.run (small_config 1) fig2 in
  let obj (r : Evaluate.result) =
    match r.Evaluate.r_outcome with
    | Ok m -> Sweep.objectives m
    | Error _ -> [| infinity; infinity; infinity |]
  in
  List.iter
    (fun kept ->
      List.iter
        (fun other ->
          Alcotest.(check bool) "kept design undominated" false
            (Pareto.dominates (obj other) (obj kept)))
        sw.Sweep.sw_results)
    sw.Sweep.sw_frontier;
  let on_frontier r =
    List.exists
      (fun k ->
        Candidate.equal k.Evaluate.r_candidate r.Evaluate.r_candidate)
      sw.Sweep.sw_frontier
  in
  List.iter
    (fun r ->
      if Result.is_ok r.Evaluate.r_outcome && not (on_frontier r) then
        Alcotest.(check bool)
          ("dropped design dominated: " ^ Candidate.label r.Evaluate.r_candidate)
          true
          (List.exists (fun k -> Pareto.dominates (obj k) (obj r))
             sw.Sweep.sw_frontier))
    sw.Sweep.sw_results

let test_repeated_sweep_hits_cache () =
  let cache = Cache.create () in
  let _first = Sweep.run ~cache (small_config 1) fig2 in
  let again = Sweep.run ~cache (small_config 2) fig2 in
  Alcotest.(check int) "no misses on the repeat" 0 again.Sweep.sw_misses;
  Alcotest.(check int) "every candidate hit" 24 again.Sweep.sw_hits;
  List.iter
    (fun (r : Evaluate.result) ->
      Alcotest.(check bool)
        ("cached: " ^ Candidate.label r.Evaluate.r_candidate)
        true r.Evaluate.r_cached)
    again.Sweep.sw_results

let test_persistent_sweep_across_cache_instances () =
  let dir = fresh_temp_dir () in
  let first = Sweep.run ~cache:(Cache.create ~dir ()) (small_config 1) fig2 in
  let again = Sweep.run ~cache:(Cache.create ~dir ()) (small_config 1) fig2 in
  Alcotest.(check int) "cold run misses" 24 first.Sweep.sw_misses;
  Alcotest.(check int) "warm process hits everything" 0 again.Sweep.sw_misses;
  Alcotest.(check (list string)) "identical results from disk"
    (List.map result_fingerprint first.Sweep.sw_results)
    (List.map result_fingerprint again.Sweep.sw_results)

let test_cache_key_is_content_hashed () =
  let ctx = Evaluate.make_ctx fig2 in
  let c seed model =
    { Candidate.c_seed = seed; c_bias = Partitioning.Design_search.Balanced;
      c_model = model; c_n_parts = 2; c_steps = 600 }
  in
  let digest = Evaluate.spec_digest fig2 in
  let p1 = Evaluate.partition_of ctx (c 1 Core.Model.Model1) in
  let key seed model =
    Evaluate.cache_key ~spec_digest:digest
      ~partition:(Evaluate.partition_of ctx (c seed model))
      ~model
  in
  Alcotest.(check string) "same (spec, partition, model) -> same key"
    (key 1 Core.Model.Model1) (key 1 Core.Model.Model1);
  Alcotest.(check bool) "model changes the key" true
    (key 1 Core.Model.Model1 <> key 1 Core.Model.Model2);
  Alcotest.(check bool) "spec digest changes the key" true
    (Evaluate.cache_key ~spec_digest:"other" ~partition:p1
       ~model:Core.Model.Model1
    <> key 1 Core.Model.Model1)

let test_reports_mention_frontier () =
  let sw = Sweep.run (small_config 1) fig2 in
  let text = Sweep.to_text ~top:5 sw in
  let json = Sweep.to_json sw in
  let contains ~sub s =
    let n = String.length sub and m = String.length s in
    let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
    n = 0 || go 0
  in
  Alcotest.(check bool) "text mentions the frontier" true
    (contains ~sub:"Pareto frontier" text);
  Alcotest.(check bool) "text truncates" true
    (contains ~sub:"more candidates" text);
  Alcotest.(check bool) "json has pareto" true
    (contains ~sub:"\"pareto\":[{" json);
  Alcotest.(check bool) "json has hit rate" true
    (contains ~sub:"\"hit_rate\":" json)

let () =
  Alcotest.run "explore"
    [
      ( "pool",
        [
          tc "matches List.map" test_pool_matches_list_map;
          tc "more jobs than items" test_pool_more_jobs_than_items;
          tc "empty/singleton" test_pool_empty_and_singleton;
          tc "rejects jobs<1" test_pool_rejects_bad_jobs;
          tc "deterministic failure" test_pool_exception_is_deterministic;
          tc "iter covers all" test_pool_iter_runs_everything;
        ] );
      ( "cache",
        [
          tc "computes once" test_cache_computes_once;
          tc "distinct keys" test_cache_distinct_keys;
          tc "persists across instances" test_cache_persists_across_instances;
          tc "tolerates corrupt files" test_cache_tolerates_corrupt_files;
          tc "tolerates corrupt blobs" test_cache_tolerates_corrupt_blob;
          tc "concurrent hammer" test_cache_concurrent_hammer;
          tc "reset stats" test_cache_reset_stats;
        ] );
      ( "pareto",
        [
          tc "dominates" test_dominates;
          tc "frontier" test_frontier;
          tc "frontier stability" test_frontier_stability;
          tc "lexicographic sort" test_sort_lexicographic;
          tc "rank layers" test_rank_layers;
        ] );
      ( "candidate",
        [
          tc "enumerate order/count" test_enumerate_order_and_count;
          tc "bias names round-trip" test_bias_names_round_trip;
        ] );
      ( "sweep",
        [
          tc "independent of jobs" test_sweep_independent_of_jobs;
          tc "metrics sane" test_sweep_metrics_sane;
          tc "frontier sound" test_sweep_frontier_is_sound;
          tc "repeated sweep hits cache" test_repeated_sweep_hits_cache;
          tc "persistent across processes" test_persistent_sweep_across_cache_instances;
          tc "content-hashed cache key" test_cache_key_is_content_hashed;
          tc "reports" test_reports_mention_frontier;
        ] );
    ]
