(** Tests for the design-space exploration engine: the domain pool, the
    memoization cache and the Pareto operators directly, plus whole
    sweeps — determinism across worker counts, cache hit rates on
    repeated and persistent sweeps, and the frontier's soundness. *)

open Explore
open Helpers

(* --- pool ---------------------------------------------------------------- *)

let test_pool_matches_list_map () =
  let items = List.init 100 Fun.id in
  let f x = (x * x) + 1 in
  let expected = List.map f items in
  List.iter
    (fun jobs ->
      Alcotest.(check (list int))
        (Printf.sprintf "jobs=%d" jobs)
        expected
        (Pool.map ~jobs ~f items))
    [ 1; 2; 4; 8 ]

let test_pool_more_jobs_than_items () =
  Alcotest.(check (list int)) "3 items, 16 jobs" [ 2; 4; 6 ]
    (Pool.map ~jobs:16 ~f:(fun x -> 2 * x) [ 1; 2; 3 ])

let test_pool_empty_and_singleton () =
  Alcotest.(check (list int)) "empty" [] (Pool.map ~jobs:4 ~f:succ []);
  Alcotest.(check (list int)) "singleton" [ 8 ] (Pool.map ~jobs:4 ~f:succ [ 7 ])

let test_pool_rejects_bad_jobs () =
  Alcotest.check_raises "jobs=0" (Invalid_argument "Pool.map: jobs < 1")
    (fun () -> ignore (Pool.map ~jobs:0 ~f:succ [ 1 ]))

let test_pool_exception_is_deterministic () =
  (* Items 30 and 60 fail; the smallest-index failure must win at every
     worker count. *)
  let f x = if x = 30 || x = 60 then failwith (string_of_int x) else x in
  List.iter
    (fun jobs ->
      match Pool.map ~jobs ~f (List.init 100 Fun.id) with
      | _ -> Alcotest.fail "expected an exception"
      | exception Failure msg ->
        Alcotest.(check string)
          (Printf.sprintf "first failure wins at jobs=%d" jobs)
          "30" msg)
    [ 1; 3; 7 ]

let test_pool_iter_runs_everything () =
  let hits = Array.make 50 0 in
  Pool.iter ~jobs:4 ~f:(fun i -> hits.(i) <- hits.(i) + 1)
    (List.init 50 Fun.id);
  Alcotest.(check (list int)) "each item once" (List.init 50 (fun _ -> 1))
    (Array.to_list hits)

(* --- supervised pool ----------------------------------------------------- *)

let test_try_map_reports_index () =
  let f x = if x = 3 then failwith "three" else x + 1 in
  List.iter
    (fun jobs ->
      let results = Pool.try_map ~jobs ~f (List.init 10 Fun.id) in
      List.iteri
        (fun i r ->
          match r with
          | Ok v when i <> 3 ->
            Alcotest.(check int) (Printf.sprintf "item %d" i) (i + 1) v
          | Ok _ -> Alcotest.fail "item 3 should have failed"
          | Error (e : Pool.error) ->
            Alcotest.(check int) "failing index survives" 3 e.Pool.e_index;
            (match e.Pool.e_exn with
            | Failure msg -> Alcotest.(check string) "original exn" "three" msg
            | _ -> Alcotest.fail "wrong exception");
            Alcotest.(check bool) "printable" true
              (String.length (Pool.error_to_string e) > 0))
        results)
    [ 1; 4 ]

let test_supervise_all_ok () =
  let items = List.init 30 Fun.id in
  let got = Pool.supervise ~jobs:4 ~f:(fun x -> x * 3) items in
  Alcotest.(check (list int)) "matches List.map" (List.map (fun x -> x * 3) items)
    (List.map Result.get_ok got)

let fast_supervisor retries =
  { Pool.sv_retries = retries; sv_backoff_s = 0.001; sv_max_backoff_s = 0.002 }

let test_supervise_quarantines_repeat_offender () =
  let f x = if x = 3 then failwith "always broken" else x in
  let got =
    Pool.supervise ~supervisor:(fast_supervisor 1) ~jobs:4 ~f
      (List.init 8 Fun.id)
  in
  List.iteri
    (fun i r ->
      match r with
      | Ok v when i <> 3 -> Alcotest.(check int) "other items fine" i v
      | Ok _ -> Alcotest.fail "item 3 should be quarantined"
      | Error (fl : Pool.failure) ->
        Alcotest.(check int) "quarantined index" 3 fl.Pool.f_index;
        Alcotest.(check int) "first try + 1 retry" 2 fl.Pool.f_attempts;
        Alcotest.(check bool) "exception text kept" true
          (String.length fl.Pool.f_exn > 0))
    got

let test_supervise_retries_transient_failure () =
  let attempts = Array.init 10 (fun _ -> Atomic.make 0) in
  let f i =
    let k = 1 + Atomic.fetch_and_add attempts.(i) 1 in
    if i = 5 && k = 1 then failwith "flaky" else i * 2
  in
  let got =
    Pool.supervise ~supervisor:(fast_supervisor 2) ~jobs:4 ~f
      (List.init 10 Fun.id)
  in
  Alcotest.(check (list int)) "transient failure recovered"
    (List.init 10 (fun i -> i * 2))
    (List.map Result.get_ok got);
  Alcotest.(check int) "exactly one retry" 2 (Atomic.get attempts.(5))

let test_supervise_independent_of_jobs () =
  let f x = if x mod 7 = 3 then failwith (string_of_int x) else x + 100 in
  let fingerprint jobs =
    List.map
      (function
        | Ok v -> Printf.sprintf "ok:%d" v
        | Error (fl : Pool.failure) ->
          Printf.sprintf "fail:%d:%d:%s" fl.Pool.f_index fl.Pool.f_attempts
            fl.Pool.f_exn)
      (Pool.supervise ~supervisor:(fast_supervisor 1) ~jobs ~f
         (List.init 40 Fun.id))
  in
  let seq = fingerprint 1 in
  List.iter
    (fun jobs ->
      Alcotest.(check (list string))
        (Printf.sprintf "jobs=%d" jobs)
        seq (fingerprint jobs))
    [ 2; 4 ]

let test_backoff_delay_doubles_and_caps () =
  let sv =
    { Pool.sv_retries = 8; sv_backoff_s = 0.05; sv_max_backoff_s = 1.0 }
  in
  Alcotest.(check (float 1e-9)) "first" 0.05 (Pool.backoff_delay sv 1);
  Alcotest.(check (float 1e-9)) "doubles" 0.1 (Pool.backoff_delay sv 2);
  Alcotest.(check (float 1e-9)) "doubles again" 0.2 (Pool.backoff_delay sv 3);
  Alcotest.(check (float 1e-9)) "capped" 1.0 (Pool.backoff_delay sv 6)

(* --- cache --------------------------------------------------------------- *)

let test_cache_computes_once () =
  let c = Cache.create () in
  let calls = ref 0 in
  let compute () = incr calls; 41 + 1 in
  let v1, cached1 = Cache.find_or_add c "k" compute in
  let v2, cached2 = Cache.find_or_add c "k" compute in
  Alcotest.(check int) "value" 42 v1;
  Alcotest.(check int) "same value" 42 v2;
  Alcotest.(check bool) "first is a miss" false cached1;
  Alcotest.(check bool) "second is a hit" true cached2;
  Alcotest.(check int) "computed once" 1 !calls;
  let s = Cache.stats c in
  Alcotest.(check (pair int int)) "stats" (1, 1) (s.Cache.hits, s.Cache.misses);
  Alcotest.(check (float 1e-9)) "hit rate" 0.5 (Cache.hit_rate c)

let test_cache_distinct_keys () =
  let c = Cache.create () in
  let v1, _ = Cache.find_or_add c "a" (fun () -> 1) in
  let v2, _ = Cache.find_or_add c "b" (fun () -> 2) in
  Alcotest.(check (pair int int)) "no collision" (1, 2) (v1, v2);
  Alcotest.(check bool) "mem a" true (Cache.mem c "a");
  Alcotest.(check bool) "not mem c" false (Cache.mem c "zzz")

let fresh_temp_dir () =
  let path = Filename.temp_file "coref_cache" ".d" in
  Sys.remove path;
  Sys.mkdir path 0o755;
  path

let test_cache_persists_across_instances () =
  let dir = fresh_temp_dir () in
  let calls = ref 0 in
  let compute () = incr calls; [ "deep"; "value" ] in
  let c1 = Cache.create ~dir () in
  let _ = Cache.find_or_add c1 (Cache.digest_key [ "x" ]) compute in
  (* A second process (modelled by a fresh instance) must hit on disk. *)
  let c2 = Cache.create ~dir () in
  let v, cached = Cache.find_or_add c2 (Cache.digest_key [ "x" ]) compute in
  Alcotest.(check (list string)) "round-trip" [ "deep"; "value" ] v;
  Alcotest.(check bool) "disk hit" true cached;
  Alcotest.(check int) "computed once across instances" 1 !calls

let test_cache_tolerates_corrupt_files () =
  let dir = fresh_temp_dir () in
  let key = Cache.digest_key [ "corrupt" ] in
  let oc = open_out_bin (Filename.concat dir (key ^ ".memo")) in
  output_string oc "not a cache entry";
  close_out oc;
  let c = Cache.create ~dir () in
  let v, cached = Cache.find_or_add c key (fun () -> 7) in
  Alcotest.(check int) "recomputed" 7 v;
  Alcotest.(check bool) "treated as miss" false cached

let test_cache_tolerates_corrupt_blob () =
  (* A version-valid file whose marshalled payload is damaged (truncated
     on disk, bit rot) must read as a miss, not raise — and the damaged
     file must be replaced by the recomputed value. *)
  let dir = fresh_temp_dir () in
  let key = Cache.digest_key [ "corrupt-blob" ] in
  let c0 = Cache.create ~dir () in
  let v0, _ = Cache.find_or_add c0 key (fun () -> 41) in
  Alcotest.(check int) "initial value" 41 v0;
  let path = Filename.concat dir (key ^ ".memo") in
  let ic = open_in_bin path in
  let data = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let oc = open_out_bin path in
  output_string oc (String.sub data 0 (String.length data - 4));
  close_out oc;
  let c1 = Cache.create ~dir () in
  let v1, cached1 = Cache.find_or_add c1 key (fun () -> 7) in
  Alcotest.(check int) "recomputed" 7 v1;
  Alcotest.(check bool) "treated as miss" false cached1;
  let c2 = Cache.create ~dir () in
  let v2, cached2 = Cache.find_or_add c2 key (fun () -> 9) in
  Alcotest.(check int) "repaired on disk" 7 v2;
  Alcotest.(check bool) "hit after repair" true cached2

let test_cache_concurrent_hammer () =
  (* Many domains racing on few keys: every returned value must be right
     and the totals must balance. *)
  let c = Cache.create () in
  let keys = List.init 8 string_of_int in
  let work = List.concat (List.init 25 (fun _ -> keys)) in
  let results =
    Pool.map ~jobs:4
      ~f:(fun k -> fst (Cache.find_or_add c k (fun () -> int_of_string k)))
      work
  in
  List.iter2
    (fun k v -> Alcotest.(check int) ("key " ^ k) (int_of_string k) v)
    work results;
  let s = Cache.stats c in
  Alcotest.(check int) "every lookup counted" (List.length work)
    (s.Cache.hits + s.Cache.misses)

let test_cache_reset_stats () =
  let c = Cache.create () in
  let _ = Cache.find_or_add c "k" (fun () -> 0) in
  Cache.reset_stats c;
  let s = Cache.stats c in
  Alcotest.(check (pair int int)) "zeroed" (0, 0) (s.Cache.hits, s.Cache.misses);
  Alcotest.(check bool) "entry kept" true (snd (Cache.find_or_add c "k" (fun () -> 1)))

let test_cache_lru_entry_cap () =
  let c = Cache.create ~max_entries:2 () in
  let add k = ignore (Cache.find_or_add c k (fun () -> k)) in
  add "a";
  add "b";
  add "c";
  Alcotest.(check int) "resident capped" 2 (Cache.resident_entries c);
  Alcotest.(check int) "one eviction" 1 (Cache.evictions c);
  (* "a" is the least recently used: it must be the evicted one.  With
     no disk behind the cache, it recomputes as a miss. *)
  Alcotest.(check bool) "b survived" true
    (snd (Cache.find_or_add c "b" (fun () -> "wrong")));
  Alcotest.(check bool) "a evicted" false
    (snd (Cache.find_or_add c "a" (fun () -> "a")))

let test_cache_lru_touch_on_hit () =
  let c = Cache.create ~max_entries:2 () in
  let add k = ignore (Cache.find_or_add c k (fun () -> k)) in
  add "a";
  add "b";
  (* Touch "a" so "b" becomes the LRU victim. *)
  ignore (Cache.find_or_add c "a" (fun () -> "wrong"));
  add "c";
  Alcotest.(check bool) "a kept (recently used)" true
    (snd (Cache.find_or_add c "a" (fun () -> "wrong")));
  Alcotest.(check bool) "b evicted" false
    (snd (Cache.find_or_add c "b" (fun () -> "b")))

let test_cache_byte_cap_evicts_to_disk () =
  let dir = fresh_temp_dir () in
  let big = String.make 4096 'x' in
  let c = Cache.create ~dir ~max_bytes:6000 () in
  ignore (Cache.find_or_add c (Cache.digest_key [ "one" ]) (fun () -> big));
  ignore (Cache.find_or_add c (Cache.digest_key [ "two" ]) (fun () -> big));
  Alcotest.(check bool) "byte cap enforced" true
    (Cache.resident_bytes c <= 6000);
  Alcotest.(check bool) "evicted something" true (Cache.evictions c >= 1);
  (* The demoted entry was persisted at add time: looking it up again is
     a disk hit, not a recompute. *)
  let v, cached =
    Cache.find_or_add c (Cache.digest_key [ "one" ]) (fun () -> "recomputed")
  in
  Alcotest.(check string) "demoted value intact" big v;
  Alcotest.(check bool) "served from disk" true cached

let test_cache_rejects_bad_caps () =
  Alcotest.check_raises "entries" (Invalid_argument "Cache.create: max_entries < 1")
    (fun () -> ignore (Cache.create ~max_entries:0 ()));
  Alcotest.check_raises "bytes" (Invalid_argument "Cache.create: max_bytes < 1")
    (fun () -> ignore (Cache.create ~max_bytes:0 ()))

(* --- pareto -------------------------------------------------------------- *)

let test_dominates () =
  Alcotest.(check bool) "strictly better" true
    (Pareto.dominates [| 1.0; 2.0 |] [| 2.0; 2.0 |]);
  Alcotest.(check bool) "equal does not dominate" false
    (Pareto.dominates [| 1.0; 2.0 |] [| 1.0; 2.0 |]);
  Alcotest.(check bool) "trade-off does not dominate" false
    (Pareto.dominates [| 1.0; 3.0 |] [| 2.0; 2.0 |]);
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Pareto.dominates: objective vectors of different lengths")
    (fun () -> ignore (Pareto.dominates [| 1.0 |] [| 1.0; 2.0 |]))

let test_frontier () =
  let items =
    [ ("a", [| 1.0; 4.0 |]); ("b", [| 2.0; 2.0 |]); ("c", [| 4.0; 1.0 |]);
      ("d", [| 3.0; 3.0 |]); (* dominated by b *)
      ("e", [| 2.0; 2.0 |]) (* duplicate of b: stays *) ]
  in
  let names = List.map fst (Pareto.frontier ~objectives:snd items) in
  Alcotest.(check (list string)) "non-dominated, input order"
    [ "a"; "b"; "c"; "e" ] names

let test_frontier_stability () =
  let items = [ ("x", [| 1.0 |]); ("y", [| 1.0 |]); ("z", [| 1.0 |]) ] in
  Alcotest.(check (list string)) "ties keep input order" [ "x"; "y"; "z" ]
    (List.map fst (Pareto.frontier ~objectives:snd items))

let test_sort_lexicographic () =
  let items =
    [ ("b", [| 1.0; 3.0 |]); ("c", [| 2.0; 0.0 |]); ("a", [| 1.0; 2.0 |]) ]
  in
  Alcotest.(check (list string)) "ascending lexicographic" [ "a"; "b"; "c" ]
    (List.map fst (Pareto.sort ~objectives:snd items))

let test_rank_layers () =
  let items =
    [ ("front", [| 1.0; 1.0 |]); ("mid", [| 2.0; 2.0 |]);
      ("back", [| 3.0; 3.0 |]); ("front2", [| 0.5; 4.0 |]) ]
  in
  let ranks =
    List.map (fun ((name, _), depth) -> (name, depth))
      (Pareto.rank ~objectives:snd items)
  in
  Alcotest.(check (list (pair string int)))
    "non-dominated sorting depths"
    [ ("front", 0); ("mid", 1); ("back", 2); ("front2", 0) ]
    ranks

(* --- candidates ---------------------------------------------------------- *)

let test_enumerate_order_and_count () =
  let cs =
    Candidate.enumerate ~seeds:[ 1; 2 ]
      ~models:[ Core.Model.Model1; Core.Model.Model2 ] ()
  in
  Alcotest.(check int) "2 seeds x 3 biases x 2 models" 12 (List.length cs);
  Alcotest.(check (list string)) "fixed enumeration order"
    [ "seed1/balanced/Model1"; "seed1/balanced/Model2";
      "seed1/local/Model1"; "seed1/local/Model2";
      "seed1/global/Model1"; "seed1/global/Model2";
      "seed2/balanced/Model1"; "seed2/balanced/Model2";
      "seed2/local/Model1"; "seed2/local/Model2";
      "seed2/global/Model1"; "seed2/global/Model2" ]
    (List.map Candidate.label cs);
  Alcotest.(check bool) "enumeration order agrees with compare" true
    (List.sort Candidate.compare cs = cs)

let test_bias_names_round_trip () =
  List.iter
    (fun b ->
      Alcotest.(check bool) (Candidate.bias_name b) true
        (Candidate.bias_of_string (Candidate.bias_name b) = Some b))
    Candidate.all_biases;
  Alcotest.(check bool) "unknown rejected" true
    (Candidate.bias_of_string "sideways" = None)

(* --- evaluation + sweeps ------------------------------------------------- *)

let fig2 = Workloads.Smallspecs.fig2

let small_config jobs =
  {
    Sweep.default_config with
    Sweep.seeds = [ 1; 2 ];
    steps = 600;
    jobs;
  }

let result_fingerprint (r : Evaluate.result) =
  let label = Candidate.label r.Evaluate.r_candidate in
  match r.Evaluate.r_outcome with
  | Error f ->
    label ^ ":error:" ^ Evaluate.failure_kind f ^ ":"
    ^ Evaluate.failure_message f
  | Ok m ->
    Printf.sprintf "%s:%d/%d:%.6f:%.6f:%d:%d" label m.Evaluate.e_locals
      m.Evaluate.e_globals m.Evaluate.e_max_bus_rate m.Evaluate.e_growth
      m.Evaluate.e_pins m.Evaluate.e_gates

let test_sweep_independent_of_jobs () =
  let fp jobs =
    let sw = Sweep.run (small_config jobs) fig2 in
    ( List.map result_fingerprint sw.Sweep.sw_results,
      List.map result_fingerprint sw.Sweep.sw_frontier )
  in
  let seq = fp 1 in
  List.iter
    (fun jobs ->
      let par = fp jobs in
      Alcotest.(check (list string))
        (Printf.sprintf "results at jobs=%d" jobs)
        (fst seq) (fst par);
      Alcotest.(check (list string))
        (Printf.sprintf "frontier at jobs=%d" jobs)
        (snd seq) (snd par))
    [ 2; 4 ]

let test_sweep_metrics_sane () =
  let sw = Sweep.run (small_config 1) fig2 in
  Alcotest.(check int) "24 candidates" 24 (List.length sw.Sweep.sw_results);
  Alcotest.(check bool) "frontier non-empty" true (sw.Sweep.sw_frontier <> []);
  List.iter
    (fun (r : Evaluate.result) ->
      match r.Evaluate.r_outcome with
      | Error f ->
        Alcotest.failf "candidate failed: %s" (Evaluate.failure_message f)
      | Ok m ->
        Alcotest.(check bool) "check ok" true m.Evaluate.e_check_ok;
        Alcotest.(check bool) "growth > 1" true (m.Evaluate.e_growth > 1.0);
        Alcotest.(check bool) "rate >= 0" true (m.Evaluate.e_max_bus_rate >= 0.0);
        Alcotest.(check bool) "pins > 0" true (m.Evaluate.e_pins > 0);
        Alcotest.(check int) "lint-clean output" 0 m.Evaluate.e_lint_errors;
        Alcotest.(check bool) "lint warnings counted" true
          (m.Evaluate.e_lint_warnings >= 0))
    sw.Sweep.sw_results

let test_sweep_frontier_is_sound () =
  (* No kept design may be dominated by any evaluated design, and every
     dropped design must be dominated by some kept one or failed. *)
  let sw = Sweep.run (small_config 1) fig2 in
  let obj (r : Evaluate.result) =
    match r.Evaluate.r_outcome with
    | Ok m -> Sweep.objectives m
    | Error _ -> [| infinity; infinity; infinity |]
  in
  List.iter
    (fun kept ->
      List.iter
        (fun other ->
          Alcotest.(check bool) "kept design undominated" false
            (Pareto.dominates (obj other) (obj kept)))
        sw.Sweep.sw_results)
    sw.Sweep.sw_frontier;
  let on_frontier r =
    List.exists
      (fun k ->
        Candidate.equal k.Evaluate.r_candidate r.Evaluate.r_candidate)
      sw.Sweep.sw_frontier
  in
  List.iter
    (fun r ->
      if Result.is_ok r.Evaluate.r_outcome && not (on_frontier r) then
        Alcotest.(check bool)
          ("dropped design dominated: " ^ Candidate.label r.Evaluate.r_candidate)
          true
          (List.exists (fun k -> Pareto.dominates (obj k) (obj r))
             sw.Sweep.sw_frontier))
    sw.Sweep.sw_results

let test_repeated_sweep_hits_cache () =
  let cache = Cache.create () in
  let _first = Sweep.run ~cache (small_config 1) fig2 in
  let again = Sweep.run ~cache (small_config 2) fig2 in
  Alcotest.(check int) "no misses on the repeat" 0 again.Sweep.sw_misses;
  Alcotest.(check int) "every candidate hit" 24 again.Sweep.sw_hits;
  List.iter
    (fun (r : Evaluate.result) ->
      Alcotest.(check bool)
        ("cached: " ^ Candidate.label r.Evaluate.r_candidate)
        true r.Evaluate.r_cached)
    again.Sweep.sw_results

let test_persistent_sweep_across_cache_instances () =
  let dir = fresh_temp_dir () in
  let first = Sweep.run ~cache:(Cache.create ~dir ()) (small_config 1) fig2 in
  let again = Sweep.run ~cache:(Cache.create ~dir ()) (small_config 1) fig2 in
  Alcotest.(check int) "cold run misses" 24 first.Sweep.sw_misses;
  Alcotest.(check int) "warm process hits everything" 0 again.Sweep.sw_misses;
  Alcotest.(check (list string)) "identical results from disk"
    (List.map result_fingerprint first.Sweep.sw_results)
    (List.map result_fingerprint again.Sweep.sw_results)

let test_cache_key_is_content_hashed () =
  let ctx = Evaluate.make_ctx fig2 in
  let c seed model =
    { Candidate.c_seed = seed; c_bias = Partitioning.Design_search.Balanced;
      c_model = model; c_n_parts = 2; c_steps = 600 }
  in
  let digest = Evaluate.spec_digest fig2 in
  let p1 = Evaluate.partition_of ctx (c 1 Core.Model.Model1) in
  let key seed model =
    Evaluate.cache_key ~spec_digest:digest
      ~partition:(Evaluate.partition_of ctx (c seed model))
      ~model
  in
  Alcotest.(check string) "same (spec, partition, model) -> same key"
    (key 1 Core.Model.Model1) (key 1 Core.Model.Model1);
  Alcotest.(check bool) "model changes the key" true
    (key 1 Core.Model.Model1 <> key 1 Core.Model.Model2);
  Alcotest.(check bool) "spec digest changes the key" true
    (Evaluate.cache_key ~spec_digest:"other" ~partition:p1
       ~model:Core.Model.Model1
    <> key 1 Core.Model.Model1)

let test_reports_mention_frontier () =
  let sw = Sweep.run (small_config 1) fig2 in
  let text = Sweep.to_text ~top:5 sw in
  let json = Sweep.to_json sw in
  let contains ~sub s =
    let n = String.length sub and m = String.length s in
    let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
    n = 0 || go 0
  in
  Alcotest.(check bool) "text mentions the frontier" true
    (contains ~sub:"Pareto frontier" text);
  Alcotest.(check bool) "text truncates" true
    (contains ~sub:"more candidates" text);
  Alcotest.(check bool) "json has pareto" true
    (contains ~sub:"\"pareto\":[{" json);
  Alcotest.(check bool) "json has hit rate" true
    (contains ~sub:"\"hit_rate\":" json)

(* --- checkpoint journal -------------------------------------------------- *)

module Journal = Checkpoint.Journal

let fresh_journal_path () =
  Filename.concat (fresh_temp_dir ()) "sweep.journal"

let test_journal_round_trip () =
  let path = fresh_journal_path () in
  let j = Journal.open_ ~path ~meta:"m1" in
  Journal.append j ~key:"a" "1";
  Journal.append j ~key:"b" "2";
  Journal.append j ~key:"a" "3";
  Alcotest.(check (option string)) "last record wins" (Some "3")
    (Journal.find j "a");
  Journal.close j;
  let j2 = Journal.open_ ~path ~meta:"m1" in
  Alcotest.(check int) "2 keys after replay" 2 (Journal.length j2);
  Alcotest.(check (option string)) "a replays" (Some "3") (Journal.find j2 "a");
  Alcotest.(check (option string)) "b replays" (Some "2") (Journal.find j2 "b");
  Alcotest.(check (list (pair string string))) "entries deduped, append order"
    [ ("a", "3"); ("b", "2") ]
    (Journal.entries j2);
  Journal.close j2

let file_size path = (Unix.stat path).Unix.st_size

let test_journal_truncates_torn_tail () =
  let path = fresh_journal_path () in
  let j = Journal.open_ ~path ~meta:"m1" in
  Journal.append j ~key:"a" "1";
  Journal.append j ~key:"b" "2";
  let good = file_size path in
  Journal.append j ~key:"c" "3";
  Journal.close j;
  (* A SIGKILL mid-write leaves a torn final record: model it by cutting
     the last record short. *)
  Unix.truncate path (file_size path - 5);
  let j2 = Journal.open_ ~path ~meta:"m1" in
  Alcotest.(check int) "torn record dropped" 2 (Journal.length j2);
  Alcotest.(check (option string)) "intact prefix kept" (Some "2")
    (Journal.find j2 "b");
  Alcotest.(check int) "file truncated back to last good record" good
    (file_size path);
  (* The journal must still be appendable after recovery. *)
  Journal.append j2 ~key:"d" "4";
  Journal.close j2;
  let j3 = Journal.open_ ~path ~meta:"m1" in
  Alcotest.(check (list (pair string string))) "post-recovery appends survive"
    [ ("a", "1"); ("b", "2"); ("d", "4") ]
    (Journal.entries j3);
  Journal.close j3

let test_journal_checksum_stops_replay () =
  let path = fresh_journal_path () in
  let j = Journal.open_ ~path ~meta:"m1" in
  Journal.append j ~key:"a" "1";
  let after_a = file_size path in
  Journal.append j ~key:"b" "2";
  Journal.append j ~key:"c" "3";
  Journal.close j;
  (* Rot one byte inside b's record: replay must stop there, keeping a
     and dropping both b and the (intact) c behind it. *)
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0o644 in
  ignore (Unix.lseek fd (after_a + 21) Unix.SEEK_SET);
  ignore (Unix.write fd (Bytes.of_string "\xff") 0 1);
  Unix.close fd;
  let j2 = Journal.open_ ~path ~meta:"m1" in
  Alcotest.(check int) "replay stops at first bad record" 1
    (Journal.length j2);
  Alcotest.(check (option string)) "prefix intact" (Some "1")
    (Journal.find j2 "a");
  Alcotest.(check (option string)) "rotted record gone" None
    (Journal.find j2 "b");
  Journal.close j2

let test_journal_meta_mismatch_refuses () =
  let path = fresh_journal_path () in
  let j = Journal.open_ ~path ~meta:"m1" in
  Journal.append j ~key:"a" "1";
  Journal.close j;
  (match Journal.open_ ~path ~meta:"m2" with
  | _ -> Alcotest.fail "meta mismatch must refuse to resume"
  | exception Journal.Journal_error _ -> ());
  (* A non-journal file must be rejected, not replayed. *)
  let garbage = fresh_journal_path () in
  let oc = open_out_bin garbage in
  output_string oc "definitely not a journal";
  close_out oc;
  match Journal.open_ ~path:garbage ~meta:"m1" with
  | _ -> Alcotest.fail "garbage file must be rejected"
  | exception Journal.Journal_error _ -> ()

let test_journal_closed_append_raises () =
  let path = fresh_journal_path () in
  let j = Journal.open_ ~path ~meta:"m1" in
  Journal.close j;
  match Journal.append j ~key:"a" "1" with
  | () -> Alcotest.fail "append on a closed journal must raise"
  | exception Journal.Journal_error _ -> ()

(* --- resilience: deadlines, crashes, resume ------------------------------ *)

let test_evaluate_deadline_times_out_uncached () =
  let ctx = Evaluate.make_ctx fig2 in
  let cache = Cache.create () in
  let c =
    { Candidate.c_seed = 1; c_bias = Partitioning.Design_search.Balanced;
      c_model = Core.Model.Model1; c_n_parts = 2; c_steps = 600 }
  in
  let r = Evaluate.run ~cache ~deadline_s:0.0 ctx c in
  (match r.Evaluate.r_outcome with
  | Error (Evaluate.Timed_out _) -> ()
  | _ -> Alcotest.fail "deadline 0 must time the candidate out");
  Alcotest.(check bool) "not served from cache" false r.Evaluate.r_cached;
  Alcotest.(check bool) "timeout is transient" false
    (Evaluate.definitive r.Evaluate.r_outcome);
  (* Nothing transient may be cached: the unhurried evaluation must
     recompute from scratch and succeed. *)
  let key =
    Evaluate.cache_key
      ~spec_digest:(Evaluate.spec_digest fig2)
      ~partition:(Evaluate.partition_of ctx c)
      ~model:Core.Model.Model1
  in
  Alcotest.(check bool) "nothing cached by the timeout" false
    (Cache.mem cache key);
  let r2 = Evaluate.run ~cache ctx c in
  Alcotest.(check bool) "recomputes fine without a deadline" true
    (Result.is_ok r2.Evaluate.r_outcome)

let test_sweep_deadline_degrades_not_aborts () =
  let config = { (small_config 2) with Sweep.deadline_s = Some 0.0 } in
  let sw = Sweep.run config fig2 in
  Alcotest.(check int) "all candidates reported" 24
    (List.length sw.Sweep.sw_results);
  Alcotest.(check (float 1e-9)) "zero coverage" 0.0 sw.Sweep.sw_coverage;
  Alcotest.(check (list (pair string int))) "timeout taxonomy"
    [ ("timeout", 24) ]
    sw.Sweep.sw_failures;
  Alcotest.(check (list string)) "no frontier from timeouts" []
    (List.map result_fingerprint sw.Sweep.sw_frontier);
  let json = Sweep.to_json sw in
  let contains ~sub s =
    let n = String.length sub and m = String.length s in
    let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
    n = 0 || go 0
  in
  Alcotest.(check bool) "json coverage zero" true
    (contains ~sub:"\"coverage\":0.0000" json);
  Alcotest.(check bool) "json timeout taxonomy" true
    (contains ~sub:"\"failures\":{\"timeout\":24}" json)

let crashing_evaluate ~cache ~victim =
  let ctx = Evaluate.make_ctx fig2 in
  fun c ->
    if Candidate.label c = victim then failwith "boom"
    else Evaluate.run ~cache ctx c

let test_sweep_survives_crashing_candidate () =
  let victim = "seed1/balanced/Model1" in
  let cache = Cache.create () in
  let config =
    { (small_config 2) with Sweep.retries = 1; backoff_s = 0.001 }
  in
  let sw =
    Sweep.run ~cache ~evaluate:(crashing_evaluate ~cache ~victim) config fig2
  in
  Alcotest.(check int) "all candidates reported" 24
    (List.length sw.Sweep.sw_results);
  Alcotest.(check (float 1e-9)) "coverage excludes the crash" (23.0 /. 24.0)
    sw.Sweep.sw_coverage;
  Alcotest.(check (list (pair string int))) "crash taxonomy" [ ("crash", 1) ]
    sw.Sweep.sw_failures;
  Alcotest.(check bool) "frontier from the survivors" true
    (sw.Sweep.sw_frontier <> []);
  let crashed =
    List.find
      (fun r -> Candidate.label r.Evaluate.r_candidate = victim)
      sw.Sweep.sw_results
  in
  (match crashed.Evaluate.r_outcome with
  | Error (Evaluate.Crashed { cr_attempts; cr_exn; _ }) ->
    Alcotest.(check int) "first try + 1 retry" 2 cr_attempts;
    Alcotest.(check bool) "exception text kept" true
      (String.length cr_exn > 0)
  | _ -> Alcotest.fail "victim must surface as Crashed");
  List.iter
    (fun (r : Evaluate.result) ->
      if Candidate.label r.Evaluate.r_candidate <> victim then
        Alcotest.(check bool)
          ("survivor ok: " ^ Candidate.label r.Evaluate.r_candidate)
          true
          (Result.is_ok r.Evaluate.r_outcome))
    sw.Sweep.sw_results

let test_sweep_journals_only_definitive () =
  let victim = "seed1/balanced/Model1" in
  let cache = Cache.create () in
  let path = fresh_journal_path () in
  let config =
    { (small_config 1) with Sweep.retries = 0; backoff_s = 0.001 }
  in
  let j = Journal.open_ ~path ~meta:(Sweep.journal_meta config fig2) in
  let sw =
    Sweep.run ~cache ~journal:j
      ~evaluate:(crashing_evaluate ~cache ~victim)
      config fig2
  in
  Alcotest.(check (list (pair string int))) "crash surfaced" [ ("crash", 1) ]
    sw.Sweep.sw_failures;
  Alcotest.(check int) "crash not journaled" 23 (Journal.length j);
  Alcotest.(check bool) "victim key absent" true
    (Journal.find j victim = None);
  Journal.close j;
  (* Resuming replays the 23 definitive outcomes and retries the crash —
     now with a healthy evaluator, converging to full coverage. *)
  let j2 = Journal.open_ ~path ~meta:(Sweep.journal_meta config fig2) in
  let resumed = Sweep.run ~cache:(Cache.create ()) ~journal:j2 config fig2 in
  Journal.close j2;
  Alcotest.(check int) "replayed all definitive outcomes" 23
    resumed.Sweep.sw_replayed;
  Alcotest.(check (float 1e-9)) "full coverage after retry" 1.0
    resumed.Sweep.sw_coverage;
  Alcotest.(check (list string)) "resumed results match the crash-free run"
    (List.map result_fingerprint (Sweep.run (small_config 1) fig2).Sweep.sw_results)
    (List.map result_fingerprint resumed.Sweep.sw_results)

let test_sweep_kill_resume_round_trip () =
  let config = small_config 2 in
  let meta = Sweep.journal_meta config fig2 in
  (* The uninterrupted reference run, journaled in full. *)
  let full_path = fresh_journal_path () in
  let jf = Journal.open_ ~path:full_path ~meta in
  let full = Sweep.run ~journal:jf config fig2 in
  Alcotest.(check int) "every definitive outcome journaled" 24
    (Journal.length jf);
  Alcotest.(check int) "nothing replayed on a cold run" 0
    full.Sweep.sw_replayed;
  let recorded = Journal.entries jf in
  Journal.close jf;
  (* Model a SIGKILL after 10 completed candidates: a journal holding
     only a prefix of the records. *)
  let part_path = fresh_journal_path () in
  let jp = Journal.open_ ~path:part_path ~meta in
  List.iteri
    (fun i (key, blob) -> if i < 10 then Journal.append jp ~key blob)
    recorded;
  Journal.close jp;
  let jr = Journal.open_ ~path:part_path ~meta in
  let resumed = Sweep.run ~journal:jr config fig2 in
  Alcotest.(check int) "10 results replayed" 10 resumed.Sweep.sw_replayed;
  Alcotest.(check int) "journal caught back up" 24 (Journal.length jr);
  Journal.close jr;
  Alcotest.(check (list string)) "resumed results bit-identical"
    (List.map result_fingerprint full.Sweep.sw_results)
    (List.map result_fingerprint resumed.Sweep.sw_results);
  Alcotest.(check (list string)) "resumed frontier bit-identical"
    (List.map result_fingerprint full.Sweep.sw_frontier)
    (List.map result_fingerprint resumed.Sweep.sw_frontier);
  Alcotest.(check (float 1e-9)) "full coverage either way" 1.0
    resumed.Sweep.sw_coverage

let () =
  Alcotest.run "explore"
    [
      ( "pool",
        [
          tc "matches List.map" test_pool_matches_list_map;
          tc "more jobs than items" test_pool_more_jobs_than_items;
          tc "empty/singleton" test_pool_empty_and_singleton;
          tc "rejects jobs<1" test_pool_rejects_bad_jobs;
          tc "deterministic failure" test_pool_exception_is_deterministic;
          tc "iter covers all" test_pool_iter_runs_everything;
          tc "try_map reports index" test_try_map_reports_index;
        ] );
      ( "supervisor",
        [
          tc "all ok" test_supervise_all_ok;
          tc "quarantines repeat offender"
            test_supervise_quarantines_repeat_offender;
          tc "retries transient failure"
            test_supervise_retries_transient_failure;
          tc "independent of jobs" test_supervise_independent_of_jobs;
          tc "backoff doubles and caps" test_backoff_delay_doubles_and_caps;
        ] );
      ( "cache",
        [
          tc "computes once" test_cache_computes_once;
          tc "distinct keys" test_cache_distinct_keys;
          tc "persists across instances" test_cache_persists_across_instances;
          tc "tolerates corrupt files" test_cache_tolerates_corrupt_files;
          tc "tolerates corrupt blobs" test_cache_tolerates_corrupt_blob;
          tc "concurrent hammer" test_cache_concurrent_hammer;
          tc "reset stats" test_cache_reset_stats;
          tc "LRU entry cap" test_cache_lru_entry_cap;
          tc "LRU touch on hit" test_cache_lru_touch_on_hit;
          tc "byte cap demotes to disk" test_cache_byte_cap_evicts_to_disk;
          tc "rejects bad caps" test_cache_rejects_bad_caps;
        ] );
      ( "pareto",
        [
          tc "dominates" test_dominates;
          tc "frontier" test_frontier;
          tc "frontier stability" test_frontier_stability;
          tc "lexicographic sort" test_sort_lexicographic;
          tc "rank layers" test_rank_layers;
        ] );
      ( "candidate",
        [
          tc "enumerate order/count" test_enumerate_order_and_count;
          tc "bias names round-trip" test_bias_names_round_trip;
        ] );
      ( "sweep",
        [
          tc "independent of jobs" test_sweep_independent_of_jobs;
          tc "metrics sane" test_sweep_metrics_sane;
          tc "frontier sound" test_sweep_frontier_is_sound;
          tc "repeated sweep hits cache" test_repeated_sweep_hits_cache;
          tc "persistent across processes" test_persistent_sweep_across_cache_instances;
          tc "content-hashed cache key" test_cache_key_is_content_hashed;
          tc "reports" test_reports_mention_frontier;
        ] );
      ( "journal",
        [
          tc "round-trip" test_journal_round_trip;
          tc "truncates torn tail" test_journal_truncates_torn_tail;
          tc "checksum stops replay" test_journal_checksum_stops_replay;
          tc "meta mismatch refuses" test_journal_meta_mismatch_refuses;
          tc "closed append raises" test_journal_closed_append_raises;
        ] );
      ( "resilience",
        [
          tc "deadline times out uncached"
            test_evaluate_deadline_times_out_uncached;
          tc "sweep deadline degrades" test_sweep_deadline_degrades_not_aborts;
          tc "sweep survives crash" test_sweep_survives_crashing_candidate;
          tc "journals only definitive" test_sweep_journals_only_definitive;
          tc "kill-resume round-trip" test_sweep_kill_resume_round_trip;
        ] );
    ]
