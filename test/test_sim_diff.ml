(** Differential tests: three kernels over the same observable machinery
    ({!Sim.Runtime}).  The event-driven {!Sim.Engine} runs leaves either
    on the bytecode register VM (the default backend) or on the retained
    tree-walking interpreter; the polling {!Sim.Reference} is the
    independent scheduling oracle.  A vm/tree divergence is a compiler or
    VM bug; an engine/reference divergence is a scheduling bug.  Every
    comparison is bit-level: outcome, trace, delta and step counts, final
    values, signal trace — and for fault injection, the campaign
    classification of the faulty run. *)

open Workloads
open Helpers

let diff_config =
  { Sim.Engine.default_config with Sim.Engine.trace_signals = true }

type kernel = [ `Vm | `Tree | `Reference ]

let kernel_name = function
  | `Vm -> "engine-vm"
  | `Tree -> "engine-tree"
  | `Reference -> "reference"

(* Compare every observable field; on mismatch name the kernels and the
   first field that differs so failures are actionable. *)
let check_same label ka kb (a : Sim.Engine.result) (b : Sim.Engine.result) =
  let fail field =
    Alcotest.failf "%s: %s and %s diverge on %s (%s: %s, %s: %s)" label
      (kernel_name ka) (kernel_name kb) field (kernel_name ka)
      (Sim.Engine.outcome_to_string a.Sim.Engine.r_outcome)
      (kernel_name kb)
      (Sim.Engine.outcome_to_string b.Sim.Engine.r_outcome)
  in
  if a.Sim.Engine.r_outcome <> b.Sim.Engine.r_outcome then fail "outcome";
  if a.Sim.Engine.r_trace <> b.Sim.Engine.r_trace then fail "trace";
  if a.Sim.Engine.r_deltas <> b.Sim.Engine.r_deltas then fail "deltas";
  if a.Sim.Engine.r_steps <> b.Sim.Engine.r_steps then fail "steps";
  if a.Sim.Engine.r_final <> b.Sim.Engine.r_final then fail "final values";
  if a.Sim.Engine.r_signal_trace <> b.Sim.Engine.r_signal_trace then
    fail "signal trace"

(* Run one program under one kernel.  [hooks_of]/[ordering_of] build a
   fresh value per kernel — hooks carry mutable fault counters and an
   ordering carries FIFO state, so sharing one across kernels would leak
   the first run into the second. *)
let run_kernel ?(config = diff_config) ?hooks ?ordering (k : kernel) p =
  match k with
  | `Vm -> Sim.Engine.run ~config ?hooks ?ordering p
  | `Tree -> Sim.Engine.run ~config ?hooks ?ordering ~backend:`Treewalk p
  | `Reference -> Sim.Reference.run ~config ?hooks ?ordering p

let run_three ?config ?hooks_of ?ordering_of p =
  let get f k = match f with None -> None | Some g -> Some (g k) in
  let one k =
    run_kernel ?config ?hooks:(get hooks_of k) ?ordering:(get ordering_of k)
      k p
  in
  (one `Vm, one `Tree, one `Reference)

let check_program label ?config ?hooks_of p =
  let vm, tree, r = run_three ?config ?hooks_of p in
  check_same label `Vm `Tree vm tree;
  check_same label `Vm `Reference vm r

(* --- the four implementation models on the medical workload ------------ *)

let refined model design =
  let r =
    Core.Refiner.refine Medical.spec Medical.graph design.Designs.d_partition
      model
  in
  r.Core.Refiner.rf_program

let test_models () =
  List.iter
    (fun m ->
      check_program
        (Printf.sprintf "medical/%s" (Core.Model.name m))
        (refined m Designs.design1))
    Core.Model.all

let test_designs () =
  List.iter
    (fun d ->
      check_program
        (Printf.sprintf "medical-m3/%s" d.Designs.d_name)
        (refined Core.Model.Model3 d))
    Designs.all

(* --- the other workloads, original (unrefined) specs ------------------- *)

let test_workloads () =
  check_program "medical/original" Medical.spec;
  check_program "elevator/original" Elevator.spec;
  check_program "fir/original" Fir.spec

(* --- deadlocking and budget-limited programs --------------------------- *)

let s = Spec.Parser.stmts_of_string_exn

let test_deadlock_reports () =
  (* Two processes each waiting on a signal only the other would set, plus
     a wait on a frame variable nobody writes: the deadlock descriptions
     (including waited names and values) must match exactly. *)
  let p =
    Spec.Program.make
      ~signals:
        [ Spec.Builder.bool_signal "a"; Spec.Builder.bool_signal "b" ]
      ~vars:[ Spec.Builder.int_var ~init:0 "quiet" ]
      "dead"
      (Spec.Behavior.par "top"
         [
           Spec.Behavior.leaf "P" (s "wait until a;");
           Spec.Behavior.leaf "Q" (s "wait until b;");
           Spec.Behavior.leaf "R" (s "wait until quiet = 1;");
         ])
  in
  check_program "deadlock/three-waiters" p

let test_step_limit () =
  let p =
    Spec.Program.make
      ~signals:[ Spec.Builder.int_signal ~init:0 "tick" ]
      "spin"
      (Spec.Behavior.leaf "L"
         (s "while 0 < 1 do tick <= tick + 1; wait until tick > 1000000; end while;"))
  in
  let config =
    { diff_config with Sim.Engine.max_steps = 5_000; max_deltas = 100 }
  in
  check_program "limits/step-limit" ~config p

(* --- cooperative cancellation ------------------------------------------ *)

let test_cancellation () =
  (* Cut the run off mid-flight through the poll hook.  All three kernels
     must report Cancelled; and since both engine backends share the
     scheduler (one poll per round), the cut lands on the same round and
     the partial run must be bit-identical between them.  The reference
     kernel's rounds differ, so only its outcome is compared. *)
  let p = refined Core.Model.Model2 Designs.design1 in
  let hooks_of (_ : kernel) =
    let polls = ref 0 in
    {
      Sim.Engine.no_hooks with
      Sim.Engine.h_poll =
        Some
          (fun () ->
            incr polls;
            !polls > 40);
    }
  in
  let vm, tree, r = run_three ~hooks_of p in
  List.iter
    (fun (k, res) ->
      Alcotest.(check string)
        (kernel_name k ^ " cancelled")
        "cancelled"
        (Sim.Engine.outcome_to_string res.Sim.Engine.r_outcome))
    [ (`Vm, vm); (`Tree, tree); (`Reference, r) ];
  check_same "cancel/partial-run" `Vm `Tree vm tree

(* --- weak memory orderings --------------------------------------------- *)

let test_orderings () =
  (* A (policy, seed, program) triple must replay bit-identically on all
     three kernels.  Signals are grouped into two ports by leading
     character; everything else stays sequentially consistent. *)
  let p = refined Core.Model.Model2 Designs.design1 in
  let port_of name =
    if String.length name = 0 then None
    else if name.[0] < 'm' then Some "lo"
    else Some "hi"
  in
  List.iter
    (fun policy ->
      let ordering_of (_ : kernel) =
        Sim.Memord.make ~policy ~seed:11 ~port_of
      in
      let vm, tree, r = run_three ~ordering_of p in
      let lbl = "ordering/" ^ Sim.Memord.policy_to_string policy in
      check_same lbl `Vm `Tree vm tree;
      check_same lbl `Vm `Reference vm r)
    [ Sim.Memord.Sc; Sim.Memord.Per_port_fifo; Sim.Memord.Relaxed 2 ]

(* --- fault injection under all kernels --------------------------------- *)

let test_fault_hooks () =
  let prog = refined Core.Model.Model2 Designs.design1 in
  let golden = Sim.Engine.run ~config:diff_config prog in
  (* Pick real handshake signals from the golden run's committed updates. *)
  let committed =
    List.concat_map (fun (_, cs) -> List.map fst cs) golden.Sim.Engine.r_signal_trace
    |> List.sort_uniq compare
  in
  let pick i = List.nth committed (i mod List.length committed) in
  let fault_sets =
    [
      [ Faults.Fault.Drop_update { du_signal = pick 0; du_occurrence = 2 } ];
      [
        Faults.Fault.Delay_update
          { dl_signal = pick 1; dl_occurrence = 1; dl_deltas = 3 };
      ];
      [
        Faults.Fault.Stuck_at
          { st_signal = pick 2; st_value = Spec.Ast.VBool true; st_delta = 5 };
      ];
      [
        Faults.Fault.Drop_update { du_signal = pick 3; du_occurrence = 1 };
        Faults.Fault.Delay_update
          { dl_signal = pick 4; dl_occurrence = 2; dl_deltas = 2 };
      ];
    ]
  in
  (* Bound faulty runs like the campaign does: a dropped handshake can hang
     the design, which must classify identically, not run forever. *)
  let config =
    {
      diff_config with
      Sim.Engine.max_deltas = (golden.Sim.Engine.r_deltas * 10) + 50_000;
    }
  in
  List.iteri
    (fun i faults ->
      let vm, tree, r =
        (* hooks carry mutable occurrence counters: fresh per kernel *)
        run_three ~config
          ~hooks_of:(fun _ -> Faults.Inject.hooks faults)
          prog
      in
      check_same (Printf.sprintf "faults/set-%d" i) `Vm `Tree vm tree;
      check_same (Printf.sprintf "faults/set-%d" i) `Vm `Reference vm r;
      let classify res =
        Faults.Campaign.outcome_name
          (Faults.Campaign.classify ~storage:[] ~golden res)
      in
      Alcotest.(check string)
        (Printf.sprintf "faults/set-%d classification vm=tree" i)
        (classify tree) (classify vm);
      Alcotest.(check string)
        (Printf.sprintf "faults/set-%d classification vm=reference" i)
        (classify r) (classify vm))
    fault_sets

(* --- scheduler-level unit tests ---------------------------------------- *)

(* A waiter parked on [go] plus a ticker that commits [n] unrelated delta
   cycles before finally raising [go].  Every wait condition reads only
   signals (a condition that reads frame variables would be polled, not
   parked), so wakes are exactly countable: the ticker is woken by each
   of its [n] handshake commits, the waiter once by the [go] commit. *)
let ticker_prog n =
  let body =
    String.concat " "
      (List.init n (fun k ->
           Printf.sprintf "tick <= %d; wait until tick = %d;" k k))
    ^ " go <= true;"
  in
  Spec.Program.make
    ~signals:
      [
        Spec.Builder.bool_signal "go";
        Spec.Builder.int_signal ~init:(-1) "tick";
      ]
    ~vars:[ Spec.Builder.int_var ~init:0 "seen" ]
    "ticker"
    (Spec.Behavior.par "top"
       [
         Spec.Behavior.leaf "W" (s "wait until go = true; seen := 1;");
         Spec.Behavior.leaf "T" (s body);
       ])

let test_wait_set_wakeup () =
  let p = ticker_prog 20 in
  let r, st = Sim.Engine.run_stats ~config:diff_config p in
  Alcotest.(check string)
    "completes" "completed"
    (Sim.Engine.outcome_to_string r.Sim.Engine.r_outcome);
  Alcotest.(check (list (pair string value_testable)))
    "waiter ran" [ ("seen", Spec.Ast.VInt 1) ]
    (List.filter (fun (n, _) -> n = "seen") r.Sim.Engine.r_final);
  (* The ticker parks 20 times, the waiter once: each park is released by
     exactly one wake, triggered by the commit of a waited signal. *)
  Alcotest.(check int) "one wake per park" 21 st.Sim.Engine.st_wakes

let test_no_busy_polling () =
  (* While the ticker churns out unrelated commits, the parked waiter must
     not be revisited: with two leaves, busy-polling would activate both
     every round (about [2 * rounds] activations); the event-driven queue
     activates at most one — the woken ticker — plus the waiter's initial
     park and final wake. *)
  let p = ticker_prog 20 in
  let _, st = Sim.Engine.run_stats ~config:diff_config p in
  Alcotest.(check bool)
    (Printf.sprintf "no busy-polling (%d leaf runs in %d rounds)"
       st.Sim.Engine.st_leaf_runs st.Sim.Engine.st_rounds)
    true
    (st.Sim.Engine.st_leaf_runs < st.Sim.Engine.st_rounds)

let test_interned_id_stability () =
  (* Ids are assigned in sorted name order (last duplicate declaration
     wins), are dense, survive scheduling activity, and ascending-id
     iteration reproduces the name-sorted snapshot order. *)
  let decl ?init name = { Spec.Ast.s_name = name; s_ty = Spec.Ast.TInt 16; s_init = init } in
  let t =
    Sim.Sigtable.make
      [
        decl ~init:(Spec.Ast.VInt 7) "zeta";
        decl "alpha";
        decl ~init:(Spec.Ast.VInt 1) "mid";
        decl ~init:(Spec.Ast.VInt 2) "alpha" (* duplicate: this one wins *);
      ]
  in
  Alcotest.(check int) "dense" 3 (Sim.Sigtable.n_signals t);
  let id name =
    match Sim.Sigtable.id_of t name with
    | Some i -> i
    | None -> Alcotest.failf "no id for %s" name
  in
  Alcotest.(check (list int)) "sorted name order" [ 0; 1; 2 ]
    [ id "alpha"; id "mid"; id "zeta" ];
  List.iter
    (fun n -> Alcotest.(check string) "name_of inverts id_of" n
        (Sim.Sigtable.name_of t (id n)))
    [ "alpha"; "mid"; "zeta" ];
  Alcotest.(check (list (pair string value_testable)))
    "snapshot is name-sorted, duplicate resolved"
    [ ("alpha", Spec.Ast.VInt 2); ("mid", Spec.Ast.VInt 1); ("zeta", Spec.Ast.VInt 7) ]
    (Sim.Sigtable.snapshot t);
  (* Scheduling out of id order commits ascending and leaves ids intact. *)
  Sim.Sigtable.schedule_id t (id "zeta") (Spec.Ast.VInt 8);
  Sim.Sigtable.schedule_id t (id "alpha") (Spec.Ast.VInt 3);
  Alcotest.(check (list int)) "commit ascending" [ id "alpha"; id "zeta" ]
    (Sim.Sigtable.commit_ids t);
  Alcotest.(check (list int)) "ids stable across commits" [ 0; 1; 2 ]
    [ id "alpha"; id "mid"; id "zeta" ];
  Sim.Sigtable.reset t;
  Alcotest.(check (list (pair string value_testable)))
    "reset restores declaration values"
    [ ("alpha", Spec.Ast.VInt 2); ("mid", Spec.Ast.VInt 1); ("zeta", Spec.Ast.VInt 7) ]
    (Sim.Sigtable.snapshot t)

(* --- session reuse ------------------------------------------------------ *)

(* The engine keeps one elaborated session per (program, backend) and
   rewinds it in place between runs.  Reuse must be observationally
   invisible: repeat runs bit-identical to the first, and a clean run
   after a faulted (or step-limited, or crashed) one identical to a cold
   clean run. *)

let test_session_repeat () =
  let p = refined Core.Model.Model2 Designs.design1 in
  let cold = Sim.Engine.run ~config:diff_config p in
  for i = 1 to 3 do
    check_same
      (Printf.sprintf "session/repeat-%d" i)
      `Vm `Vm
      (Sim.Engine.run ~config:diff_config p)
      cold
  done;
  (* Alternating backends over the same program must not thrash either
     session: each is cached under its own (program, backend) key. *)
  for i = 1 to 2 do
    check_same
      (Printf.sprintf "session/alternate-%d" i)
      `Tree `Vm
      (Sim.Engine.run ~config:diff_config ~backend:`Treewalk p)
      cold;
    check_same
      (Printf.sprintf "session/alternate-back-%d" i)
      `Vm `Vm
      (Sim.Engine.run ~config:diff_config p)
      cold
  done;
  check_same "session/vs-reference" `Vm `Reference cold
    (Sim.Reference.run ~config:diff_config p)

let test_session_after_fault () =
  let p = refined Core.Model.Model2 Designs.design1 in
  let cold = Sim.Engine.run ~config:diff_config p in
  let sig0 =
    match cold.Sim.Engine.r_signal_trace with
    | (_, (name, _) :: _) :: _ -> name
    | _ -> Alcotest.fail "no committed signals"
  in
  let faults =
    [ Faults.Fault.Drop_update { du_signal = sig0; du_occurrence = 1 } ]
  in
  let config =
    { diff_config with Sim.Engine.max_deltas = (cold.Sim.Engine.r_deltas * 10) + 50_000 }
  in
  let _faulted = Sim.Engine.run ~config ~hooks:(Faults.Inject.hooks faults) p in
  (* The rewound session must carry no residue of the faulted run: no
     intercept, no poked values, no stale park state. *)
  check_same "session/clean-after-fault" `Vm `Vm
    (Sim.Engine.run ~config:diff_config p)
    cold

let test_session_after_step_limit () =
  let p = refined Core.Model.Model2 Designs.design1 in
  let cold = Sim.Engine.run ~config:diff_config p in
  let cut = { diff_config with Sim.Engine.max_steps = cold.Sim.Engine.r_steps / 3 } in
  let limited = Sim.Engine.run ~config:cut p in
  Alcotest.(check string)
    "cut mid-flight" "step limit exceeded"
    (Sim.Engine.outcome_to_string limited.Sim.Engine.r_outcome);
  check_same "session/clean-after-limit" `Vm `Vm
    (Sim.Engine.run ~config:diff_config p)
    cold

let test_session_after_run_error () =
  (* A leaf that mutates its frame and then dies on a dynamic error.  If
     a re-run saw the mutated cell — a cached session rewound without
     resetting frames, or a crashed session left in the cache — the
     guard would be skipped and the second run would complete.  It must
     fail exactly like the first, on every backend, matching the
     reference kernel. *)
  let p =
    Spec.Program.make
      ~vars:
        [
          Spec.Builder.int_var ~init:0 "flag";
          Spec.Builder.int_var ~init:0 "zero";
          Spec.Builder.int_var ~init:0 "ok";
        ]
      "crash"
      (Spec.Behavior.leaf "L"
         (s "if flag = 0 then flag := 1; ok := 1 / zero; end if; ok := 2;"))
  in
  let attempt k =
    match run_kernel k p with
    | (_ : Sim.Engine.result) ->
      Alcotest.failf "%s: run completed instead of failing" (kernel_name k)
    | exception e -> Printexc.to_string e
  in
  let first_vm = attempt `Vm in
  List.iter
    (fun k ->
      Alcotest.(check string)
        (kernel_name k ^ ": re-run fails identically (no stale frame cells)")
        (attempt k) (attempt k))
    [ `Vm; `Tree ];
  Alcotest.(check string) "backends agree on the error" (attempt `Tree)
    first_vm;
  Alcotest.(check string) "reference agrees on the error"
    (attempt `Reference) first_vm;
  (* And the crashed entries must not poison later clean runs of other
     programs through the shared cache. *)
  check_program "session/clean-after-crash" Medical.spec

(* --- qcheck: generated specs, all kernels ------------------------------ *)

let prop_kernels_agree =
  QCheck.Test.make ~count:60
    ~name:"vm backend = tree-walk backend = polling kernel"
    QCheck.(make Gen.(int_range 1 10_000))
    (fun seed ->
      let p =
        Workloads.Generator.program
          { Workloads.Generator.default_config with gen_seed = seed }
      in
      let vm, tree, r = run_three p in
      let same (a : Sim.Engine.result) (b : Sim.Engine.result) =
        a.Sim.Engine.r_outcome = b.Sim.Engine.r_outcome
        && a.Sim.Engine.r_trace = b.Sim.Engine.r_trace
        && a.Sim.Engine.r_deltas = b.Sim.Engine.r_deltas
        && a.Sim.Engine.r_steps = b.Sim.Engine.r_steps
        && a.Sim.Engine.r_final = b.Sim.Engine.r_final
        && a.Sim.Engine.r_signal_trace = b.Sim.Engine.r_signal_trace
      in
      same vm tree && same vm r)

let () =
  Alcotest.run "sim-diff"
    [
      ( "kernels",
        [
          tc "four models" test_models;
          tc "three designs" test_designs;
          tc "original workloads" test_workloads;
          tc "deadlock reports" test_deadlock_reports;
          tc "step limit" test_step_limit;
          tc "cancellation" test_cancellation;
          tc "memory orderings" test_orderings;
          tc "fault hooks" test_fault_hooks;
        ] );
      ( "scheduler",
        [
          tc "wait-set wakeup" test_wait_set_wakeup;
          tc "no busy-polling" test_no_busy_polling;
          tc "interned-id stability" test_interned_id_stability;
        ] );
      ( "sessions",
        [
          tc "repeat runs identical" test_session_repeat;
          tc "clean after faulted" test_session_after_fault;
          tc "clean after step limit" test_session_after_step_limit;
          tc "clean after run error" test_session_after_run_error;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_kernels_agree ]);
    ]
