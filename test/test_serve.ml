(** Tests for the [mrefine serve] subsystem: the JSON wire protocol
    (framing, escapes, request codec), a live socket server (malformed
    requests, concurrent submits with interleaved polls, mid-job
    cancellation), the scheduler's journal resume, and the session's
    cross-request elaboration cache. *)

let fig1_src = Spec.Printer.program_to_string Workloads.Smallspecs.fig1
let fig2_src = Spec.Printer.program_to_string Workloads.Smallspecs.fig2

let contains_sub ~sub s =
  let n = String.length sub and m = String.length s in
  let rec scan i = i + n <= m && (String.sub s i n = sub || scan (i + 1)) in
  n = 0 || scan 0

(* --- protocol ----------------------------------------------------------- *)

let test_json_round_trip () =
  let open Serve.Protocol in
  let cases =
    [
      Null;
      Bool true;
      Bool false;
      Int 0;
      Int (-42);
      Float 1.5;
      String "";
      String "plain";
      String "quote \" backslash \\ newline \n tab \t nul \x00";
      List [];
      List [ Int 1; String "two"; Null ];
      Obj [];
      Obj
        [
          ("a", Int 1);
          ("nested", Obj [ ("xs", List [ Bool false; Float 2.25 ]) ]);
        ];
    ]
  in
  List.iter
    (fun v ->
      let s = to_string v in
      Alcotest.(check bool)
        (Printf.sprintf "no raw newline in %s" s)
        false
        (String.contains s '\n');
      match parse s with
      | Ok v' ->
        Alcotest.(check string) "round-trip" s (to_string v')
      | Error msg -> Alcotest.failf "parse %s failed: %s" s msg)
    cases

let test_json_escapes_and_unicode () =
  let open Serve.Protocol in
  (match parse {|"aAé€"|} with
  | Ok (String s) -> Alcotest.(check string) "utf-8" "aA\xc3\xa9\xe2\x82\xac" s
  | _ -> Alcotest.fail "unicode escapes");
  (match parse {|"😀"|} with
  | Ok (String s) ->
    Alcotest.(check string) "surrogate pair" "\xf0\x9f\x98\x80" s
  | _ -> Alcotest.fail "surrogate pair");
  match parse {|  {"k" : [ 1 , 2.5, true, null ] }  |} with
  | Ok v ->
    Alcotest.(check string) "whitespace tolerated"
      {|{"k":[1,2.5,true,null]}|} (to_string v)
  | Error msg -> Alcotest.fail msg

let test_json_rejects_malformed () =
  let open Serve.Protocol in
  List.iter
    (fun src ->
      match parse src with
      | Ok _ -> Alcotest.failf "accepted %S" src
      | Error _ -> ())
    [
      "";
      "{";
      "[1,";
      "{\"a\":}";
      "\"unterminated";
      "tru";
      "{} trailing";
      "{\"a\":1,}";
      "nul";
      "1e";
    ]

let test_request_codec () =
  let open Serve.Protocol in
  let reqs =
    [
      Submit { sb_id = Some "j1"; sb_job = Obj [ ("kind", String "refine") ] };
      Submit { sb_id = None; sb_job = Obj [] };
      Status "j2";
      Result { rs_id = "j3"; rs_wait = true };
      Cancel "j4";
      Stats;
      Ping;
      Shutdown;
    ]
  in
  List.iter
    (fun req ->
      match request_of_json (request_to_json req) with
      | Ok req' ->
        Alcotest.(check string) "request round-trip"
          (to_string (request_to_json req))
          (to_string (request_to_json req'))
      | Error msg -> Alcotest.fail msg)
    reqs;
  (match request_of_json (Obj [ ("op", String "warp") ]) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown op accepted");
  match request_of_json (Obj [ ("op", String "status") ]) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "status without id accepted"

let test_states () =
  let open Serve.Protocol in
  List.iter
    (fun s ->
      match state_of_name (state_name s) with
      | Some s' -> Alcotest.(check bool) "state round-trip" true (s = s')
      | None -> Alcotest.fail (state_name s))
    [ Pending; Running; Done; Failed; Cancelled ];
  Alcotest.(check bool) "pending not terminal" false (terminal Pending);
  Alcotest.(check bool) "done terminal" true (terminal Done)

(* --- live server helpers ------------------------------------------------ *)

let fresh_socket_path () =
  let path = Filename.temp_file "coref_serve" ".sock" in
  Sys.remove path;
  path

(* Several tests write into sockets the server may close under them. *)
let () = Sys.set_signal Sys.sigpipe Sys.Signal_ignore

let with_server_full ?config ?listen ?journal ?(jobs = 1) f =
  let session = Serve.Session.create () in
  let scheduler = Serve.Scheduler.create ?journal ~jobs session in
  let socket = fresh_socket_path () in
  let server = Serve.Server.start ?config ?listen ~socket scheduler in
  Fun.protect
    ~finally:(fun () ->
      Serve.Server.stop server;
      Serve.Server.run server)
    (fun () -> f server socket)

let with_server ?journal ?(jobs = 1) f =
  with_server_full ?journal ~jobs (fun _server socket -> f socket)

let connect socket =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX socket);
  (Unix.in_channel_of_descr fd, Unix.out_channel_of_descr fd, fd)

let connect_tcp port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  (Unix.in_channel_of_descr fd, Unix.out_channel_of_descr fd, fd)

let send (_, oc, _) line =
  output_string oc line;
  output_char oc '\n';
  flush oc

let recv (ic, _, _) = input_line ic

let close_conn (_, _, fd) = try Unix.close fd with Unix.Unix_error _ -> ()

let roundtrip conn line =
  send conn line;
  recv conn

let reply_exn line =
  match Serve.Protocol.parse line with
  | Ok v -> v
  | Error msg -> Alcotest.failf "unreadable reply %s: %s" line msg

let reply_ok line =
  let v = reply_exn line in
  match Serve.Protocol.member "ok" v with
  | Some (Serve.Protocol.Bool b) -> (b, v)
  | _ -> Alcotest.failf "reply without ok: %s" line

let reply_string key v =
  match Serve.Protocol.member key v with
  | Some (Serve.Protocol.String s) -> s
  | _ -> Alcotest.failf "reply without %S: %s" key (Serve.Protocol.to_string v)

let submit_line ?id job_fields =
  Serve.Protocol.to_string
    (Serve.Protocol.request_to_json
       (Serve.Protocol.Submit
          { sb_id = id; sb_job = Serve.Protocol.Obj job_fields }))

let refine_job ?(src = fig1_src) () =
  [ ("kind", Serve.Protocol.String "refine");
    ("spec", Serve.Protocol.String src) ]

let await_result conn id =
  let line =
    roundtrip conn
      (Serve.Protocol.to_string
         (Serve.Protocol.request_to_json
            (Serve.Protocol.Result { rs_id = id; rs_wait = true })))
  in
  let ok, v = reply_ok line in
  Alcotest.(check bool) ("result ok for " ^ id) true ok;
  v

(* --- live server tests -------------------------------------------------- *)

let test_malformed_requests_survive_connection () =
  with_server (fun socket ->
      let conn = connect socket in
      Fun.protect ~finally:(fun () -> close_conn conn) @@ fun () ->
      List.iter
        (fun bad ->
          let ok, v = reply_ok (roundtrip conn bad) in
          Alcotest.(check bool) ("rejected: " ^ bad) false ok;
          ignore (reply_string "error" v))
        [
          "this is not json";
          "{\"op\":";
          "{\"op\":\"warp\"}";
          "{\"op\":\"status\"}";
          "{\"op\":\"submit\"}";
          "42";
        ];
      (* The same connection must still serve well-formed requests. *)
      let ok, v = reply_ok (roundtrip conn "{\"op\":\"ping\"}") in
      Alcotest.(check bool) "ping after garbage" true ok;
      match Serve.Protocol.member "pong" v with
      | Some (Serve.Protocol.Bool true) -> ()
      | _ -> Alcotest.fail "no pong")

let test_submit_runs_job () =
  with_server (fun socket ->
      let conn = connect socket in
      Fun.protect ~finally:(fun () -> close_conn conn) @@ fun () ->
      let ok, v = reply_ok (roundtrip conn (submit_line (refine_job ()))) in
      Alcotest.(check bool) "submitted" true ok;
      let id = reply_string "id" v in
      let result = await_result conn id in
      Alcotest.(check string) "done" "done" (reply_string "state" result);
      let output = reply_string "output" result in
      (* The served report must be byte-identical to the direct library
         path the CLI prints. *)
      let g = Agraph.Access_graph.of_program Workloads.Smallspecs.fig1 in
      let part = Partitioning.Greedy.run g ~n_parts:2 in
      let r =
        Core.Refiner.refine Workloads.Smallspecs.fig1 g part
          Core.Model.Model2
      in
      Alcotest.(check string) "byte-identical refine"
        (Spec.Printer.program_to_string r.Core.Refiner.rf_program)
        output)

(* A served litmus job must print exactly what the CLI prints for the
   same matrix — deterministic suite, same to_json, byte-identical. *)
let test_litmus_job_replays_cli () =
  with_server (fun socket ->
      let conn = connect socket in
      Fun.protect ~finally:(fun () -> close_conn conn) @@ fun () ->
      let job =
        [
          ("kind", Serve.Protocol.String "litmus");
          ( "shapes",
            Serve.Protocol.List
              [ Serve.Protocol.String "sb"; Serve.Protocol.String "mp" ] );
          ( "orderings",
            Serve.Protocol.List
              [ Serve.Protocol.String "sc"; Serve.Protocol.String "relaxed" ]
          );
          ("seeds", Serve.Protocol.Int 2);
          ("json", Serve.Protocol.Bool true);
        ]
      in
      let ok, v = reply_ok (roundtrip conn (submit_line job)) in
      Alcotest.(check bool) "submitted" true ok;
      let id = reply_string "id" v in
      let result = await_result conn id in
      Alcotest.(check string) "done" "done" (reply_string "state" result);
      let output = reply_string "output" result in
      let direct =
        Litmus.Suite.to_json
          (Litmus.Suite.run
             {
               Litmus.Suite.cf_shapes =
                 [
                   Litmus.Shape.store_buffering ();
                   Litmus.Shape.message_passing ();
                 ];
               cf_orderings =
                 [
                   Sim.Memord.Sc;
                   Sim.Memord.Relaxed Sim.Memord.default_window;
                 ];
               cf_seeds = 2;
               cf_faults = false;
               cf_backend = Some `Bytecode;
             })
      in
      Alcotest.(check string) "byte-identical litmus report" direct output)

(* Jobs that simulate take an optional "backend" field; "tree" selects
   the tree-walking oracle (same observables, so the same report), and
   unknown values fail the job before any work happens. *)
let test_backend_field () =
  with_server (fun socket ->
      let conn = connect socket in
      Fun.protect ~finally:(fun () -> close_conn conn) @@ fun () ->
      let litmus_job backend =
        [
          ("kind", Serve.Protocol.String "litmus");
          ("shapes", Serve.Protocol.List [ Serve.Protocol.String "sb" ]);
          ( "orderings",
            Serve.Protocol.List [ Serve.Protocol.String "sc" ] );
          ("seeds", Serve.Protocol.Int 1);
          ("json", Serve.Protocol.Bool true);
          ("backend", Serve.Protocol.String backend);
        ]
      in
      let _, v = reply_ok (roundtrip conn (submit_line (litmus_job "tree"))) in
      let id = reply_string "id" v in
      let result = await_result conn id in
      Alcotest.(check string) "tree backend runs" "done"
        (reply_string "state" result);
      let direct =
        Litmus.Suite.to_json
          (Litmus.Suite.run
             {
               Litmus.Suite.cf_shapes = [ Litmus.Shape.store_buffering () ];
               cf_orderings = [ Sim.Memord.Sc ];
               cf_seeds = 1;
               cf_faults = false;
               cf_backend = Some `Treewalk;
             })
      in
      Alcotest.(check string) "tree report matches direct run" direct
        (reply_string "output" result);
      let _, v =
        reply_ok (roundtrip conn (submit_line (litmus_job "bogus")))
      in
      let id = reply_string "id" v in
      let result = await_result conn id in
      Alcotest.(check string) "unknown backend fails" "failed"
        (reply_string "state" result);
      Alcotest.(check bool) "error names the backend" true
        (contains_sub ~sub:"bogus" (reply_string "error" result)))

let test_unknown_job_kind_fails () =
  with_server (fun socket ->
      let conn = connect socket in
      Fun.protect ~finally:(fun () -> close_conn conn) @@ fun () ->
      let _, v =
        reply_ok
          (roundtrip conn
             (submit_line
                [ ("kind", Serve.Protocol.String "transmogrify");
                  ("spec", Serve.Protocol.String fig1_src) ]))
      in
      let id = reply_string "id" v in
      let result = await_result conn id in
      Alcotest.(check string) "failed" "failed" (reply_string "state" result);
      let err = reply_string "error" result in
      Alcotest.(check bool) "mentions kind" true
        (contains_sub ~sub:"transmogrify" err))

let test_concurrent_submits_with_status_polls () =
  with_server (fun socket ->
      let n = 8 in
      let outputs = Array.make n "" in
      let workers =
        List.init n (fun i ->
            Thread.create
              (fun i ->
                let conn = connect socket in
                Fun.protect ~finally:(fun () -> close_conn conn) @@ fun () ->
                let src = if i mod 2 = 0 then fig1_src else fig2_src in
                let _, v =
                  reply_ok (roundtrip conn (submit_line (refine_job ~src ())))
                in
                let id = reply_string "id" v in
                (* Interleave status polls with the others' submits. *)
                for _ = 1 to 3 do
                  let ok, sv =
                    reply_ok
                      (roundtrip conn
                         (Printf.sprintf "{\"op\":\"status\",\"id\":%S}" id))
                  in
                  Alcotest.(check bool) "status ok" true ok;
                  let state = reply_string "state" sv in
                  Alcotest.(check bool)
                    ("known state " ^ state)
                    true
                    (Serve.Protocol.state_of_name state <> None)
                done;
                let result = await_result conn id in
                Alcotest.(check string) "done" "done"
                  (reply_string "state" result);
                outputs.(i) <- reply_string "output" result)
              i)
      in
      List.iter Thread.join workers;
      (* Identical sources produce identical served outputs. *)
      for i = 2 to n - 1 do
        Alcotest.(check string)
          (Printf.sprintf "deterministic %d" i)
          outputs.(i mod 2) outputs.(i)
      done)

let test_cancel_mid_job () =
  with_server (fun socket ->
      let conn = connect socket in
      Fun.protect ~finally:(fun () -> close_conn conn) @@ fun () ->
      (* A sweep big enough to still be running when the cancel lands. *)
      let job =
        [
          ("kind", Serve.Protocol.String "explore");
          ("spec", Serve.Protocol.String fig2_src);
          ("steps", Serve.Protocol.Int 300_000);
          ( "seeds",
            Serve.Protocol.List
              [ Serve.Protocol.Int 1; Serve.Protocol.Int 2;
                Serve.Protocol.Int 3 ] );
        ]
      in
      let _, v = reply_ok (roundtrip conn (submit_line job)) in
      let id = reply_string "id" v in
      let ok, _ =
        reply_ok
          (roundtrip conn (Printf.sprintf "{\"op\":\"cancel\",\"id\":%S}" id))
      in
      Alcotest.(check bool) "cancel accepted" true ok;
      let result = await_result conn id in
      Alcotest.(check string) "cancelled" "cancelled"
        (reply_string "state" result);
      Alcotest.(check string) "cancel message" "cancelled"
        (reply_string "error" result))

let test_idempotent_submit () =
  with_server (fun socket ->
      let conn = connect socket in
      Fun.protect ~finally:(fun () -> close_conn conn) @@ fun () ->
      let line = submit_line ~id:"stable" (refine_job ()) in
      let _, v1 = reply_ok (roundtrip conn line) in
      Alcotest.(check string) "first id" "stable" (reply_string "id" v1);
      ignore (await_result conn "stable");
      (* Resubmitting the same id returns the finished job, it does not
         enqueue a second run. *)
      let _, v2 = reply_ok (roundtrip conn line) in
      Alcotest.(check string) "same id" "stable" (reply_string "id" v2);
      Alcotest.(check string) "already done" "done" (reply_string "state" v2))

(* --- robustness: framing, auth, timeouts, disconnects ------------------- *)

let nested_int outer key v =
  match Serve.Protocol.member outer v with
  | Some inner -> (
    match Serve.Protocol.member key inner with
    | Some (Serve.Protocol.Int n) -> n
    | _ ->
      Alcotest.failf "stats without %s.%s: %s" outer key
        (Serve.Protocol.to_string v))
  | None ->
    Alcotest.failf "stats without %S: %s" outer (Serve.Protocol.to_string v)

let test_oversized_frame_rejected () =
  let config =
    { Serve.Server.default_config with cfg_max_frame_bytes = 1024 }
  in
  with_server_full ~config (fun _server socket ->
      let conn = connect socket in
      Fun.protect ~finally:(fun () -> close_conn conn) @@ fun () ->
      (* One burst over the cap: one error reply, connection survives. *)
      let ok, v = reply_ok (roundtrip conn (String.make 2000 'x')) in
      Alcotest.(check bool) "oversized rejected" false ok;
      Alcotest.(check bool) "names the limit" true
        (contains_sub ~sub:"1024" (reply_string "error" v));
      let ok, _ = reply_ok (roundtrip conn "{\"op\":\"ping\"}") in
      Alcotest.(check bool) "ping after oversized burst" true ok;
      (* An unterminated frame trickled past the cap: the error comes
         before any newline, and the eventual tail is swallowed. *)
      let _, oc, _ = conn in
      output_string oc (String.make 600 'y');
      flush oc;
      output_string oc (String.make 600 'y');
      flush oc;
      let ok, _ = reply_ok (recv conn) in
      Alcotest.(check bool) "unterminated frame rejected" false ok;
      send conn (String.make 100 'y');
      let ok, _ = reply_ok (roundtrip conn "{\"op\":\"ping\"}") in
      Alcotest.(check bool) "ping after discarded tail" true ok;
      (* The reject is visible in the stats counters. *)
      let _, v = reply_ok (roundtrip conn "{\"op\":\"stats\"}") in
      Alcotest.(check bool) "oversized counter" true
        (nested_int "server" "oversized_frames" v >= 2))

let auth_line token =
  Serve.Protocol.to_string
    (Serve.Protocol.request_to_json (Serve.Protocol.Auth token))

let test_tcp_token_auth () =
  let config =
    { Serve.Server.default_config with cfg_token = Some "sekrit" }
  in
  let listen = Serve.Server.Tcp { host = "127.0.0.1"; port = 0 } in
  with_server_full ~config ~listen (fun server socket ->
      let port =
        match Serve.Server.tcp_port server with
        | Some p -> p
        | None -> Alcotest.fail "no TCP port bound"
      in
      (* Unauthenticated request: one error reply, then the close. *)
      (let conn = connect_tcp port in
       Fun.protect ~finally:(fun () -> close_conn conn) @@ fun () ->
       let ok, v = reply_ok (roundtrip conn "{\"op\":\"ping\"}") in
       Alcotest.(check bool) "unauthenticated refused" false ok;
       Alcotest.(check bool) "names auth" true
         (contains_sub ~sub:"auth" (reply_string "error" v));
       match recv conn with
       | exception End_of_file -> ()
       | line -> Alcotest.failf "connection survived auth failure: %s" line);
      (* Wrong token: same containment. *)
      (let conn = connect_tcp port in
       Fun.protect ~finally:(fun () -> close_conn conn) @@ fun () ->
       let ok, _ = reply_ok (roundtrip conn (auth_line "wrong")) in
       Alcotest.(check bool) "wrong token refused" false ok;
       match recv conn with
       | exception End_of_file -> ()
       | line -> Alcotest.failf "connection survived bad token: %s" line);
      (* Right token: the connection serves jobs like any other. *)
      (let conn = connect_tcp port in
       Fun.protect ~finally:(fun () -> close_conn conn) @@ fun () ->
       let ok, _ = reply_ok (roundtrip conn (auth_line "sekrit")) in
       Alcotest.(check bool) "token accepted" true ok;
       let ok, v = reply_ok (roundtrip conn (submit_line (refine_job ()))) in
       Alcotest.(check bool) "submit over TCP" true ok;
       let result = await_result conn (reply_string "id" v) in
       Alcotest.(check string) "done over TCP" "done"
         (reply_string "state" result));
      (* The Unix socket stays trusted: no token needed there, and the
         failed attempts show up in the server counters. *)
      let conn = connect socket in
      Fun.protect ~finally:(fun () -> close_conn conn) @@ fun () ->
      let ok, v = reply_ok (roundtrip conn "{\"op\":\"stats\"}") in
      Alcotest.(check bool) "unix socket needs no auth" true ok;
      Alcotest.(check bool) "auth failures counted" true
        (nested_int "server" "auth_failures" v >= 2);
      Alcotest.(check bool) "accept_errors exposed" true
        (nested_int "server" "accept_errors" v >= 0))

let test_mid_job_disconnect () =
  with_server (fun socket ->
      (* Submit, then vanish before the result: the job must finish and
         stay fetchable from a fresh connection. *)
      (let conn = connect socket in
       let ok, _ =
         reply_ok (roundtrip conn (submit_line ~id:"orphan" (refine_job ())))
       in
       Alcotest.(check bool) "submitted" true ok;
       close_conn conn);
      let conn = connect socket in
      Fun.protect ~finally:(fun () -> close_conn conn) @@ fun () ->
      let result = await_result conn "orphan" in
      Alcotest.(check string) "orphan finished" "done"
        (reply_string "state" result);
      let g = Agraph.Access_graph.of_program Workloads.Smallspecs.fig1 in
      let part = Partitioning.Greedy.run g ~n_parts:2 in
      let r =
        Core.Refiner.refine Workloads.Smallspecs.fig1 g part Core.Model.Model2
      in
      Alcotest.(check string) "orphan output intact"
        (Spec.Printer.program_to_string r.Core.Refiner.rf_program)
        (reply_string "output" result))

let test_idle_timeout_reaps_connection () =
  let config =
    {
      Serve.Server.default_config with
      cfg_idle_timeout_s = Some 0.2;
      cfg_write_timeout_s = None;
    }
  in
  with_server_full ~config (fun _server socket ->
      let conn = connect socket in
      Fun.protect ~finally:(fun () -> close_conn conn) @@ fun () ->
      let ok, _ = reply_ok (roundtrip conn "{\"op\":\"ping\"}") in
      Alcotest.(check bool) "ping before idling" true ok;
      (* Sit silent past the idle timeout: the server hangs up. *)
      (match recv conn with
      | exception End_of_file -> ()
      | line -> Alcotest.failf "idle connection survived: %s" line);
      let conn2 = connect socket in
      Fun.protect ~finally:(fun () -> close_conn conn2) @@ fun () ->
      let _, v = reply_ok (roundtrip conn2 "{\"op\":\"stats\"}") in
      Alcotest.(check bool) "reap counted" true
        (nested_int "server" "reaped_timeouts" v >= 1))

let test_slow_reader_write_timeout () =
  let config =
    {
      Serve.Server.default_config with
      cfg_write_timeout_s = Some 0.2;
      cfg_idle_timeout_s = None;
    }
  in
  with_server_full ~config (fun _server socket ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      @@ fun () ->
      Unix.connect fd (Unix.ADDR_UNIX socket);
      (* Flood pings and never read a reply: the reply path fills, the
         server's writes stall past its write timeout, it reaps us.  The
         flood keeps pushing through transient fullness (its own send
         timeout outlives the server's write timeout) so it ends only
         once the server is wedged or has already hung up. *)
      (try Unix.setsockopt_float fd Unix.SO_SNDTIMEO 1.0
       with Unix.Unix_error _ -> ());
      let ping = Bytes.of_string "{\"op\":\"ping\"}\n" in
      let rec flood n =
        if n > 0 then
          match Unix.write fd ping 0 (Bytes.length ping) with
          | _ -> flood (n - 1)
          | exception
              Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
            ()
          | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _)
            ->
            ()
      in
      flood 500_000;
      (* Still not reading: consuming replies early would unblock the
         server's writes and defeat the timeout.  Give the reap time to
         fire, then drain the buffered replies down to the EOF. *)
      Thread.delay 1.0;
      (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO 5.0
       with Unix.Unix_error _ -> ());
      let buf = Bytes.create 65536 in
      let rec drain () =
        match Unix.read fd buf 0 (Bytes.length buf) with
        | 0 -> ()
        | _ -> drain ()
        | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> drain ()
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
          ->
          Alcotest.fail "slow reader never reaped"
      in
      drain ();
      let conn2 = connect socket in
      Fun.protect ~finally:(fun () -> close_conn conn2) @@ fun () ->
      let _, v = reply_ok (roundtrip conn2 "{\"op\":\"stats\"}") in
      Alcotest.(check bool) "write-timeout reap counted" true
        (nested_int "server" "reaped_timeouts" v >= 1))

(* --- chaos proxy -------------------------------------------------------- *)

let test_chaos_plan_deterministic () =
  let schedule seed =
    List.init 200 (fun i ->
        Serve.Chaos.fault_to_string (Serve.Chaos.plan ~seed i))
  in
  Alcotest.(check (list string))
    "same seed, same schedule" (schedule 42) (schedule 42);
  Alcotest.(check bool) "different seeds diverge" true
    (schedule 42 <> schedule 43);
  (* The schedule actually mixes fault kinds, not just Pass. *)
  let kinds =
    List.sort_uniq compare
      (List.map
         (fun s ->
           match String.index_opt s '(' with
           | Some i -> String.sub s 0 i
           | None -> s)
         (schedule 42))
  in
  Alcotest.(check bool) "several fault kinds" true (List.length kinds >= 4)

(* Under the chaos proxy, a client retrying idempotent submits must end
   with results byte-identical to a fault-free run — transport damage
   never corrupts or duplicates work. *)
let test_chaos_proxy_converges () =
  with_server (fun socket ->
      let proxy =
        Serve.Chaos.start
          ~listen:(Serve.Server.Tcp { host = "127.0.0.1"; port = 0 })
          ~upstream:(Serve.Server.Unix_path socket) ~seed:7 ()
      in
      Fun.protect ~finally:(fun () -> Serve.Chaos.stop proxy) @@ fun () ->
      let port =
        match Serve.Chaos.port proxy with
        | Some p -> p
        | None -> Alcotest.fail "chaos proxy has no port"
      in
      (* One attempt: fresh connection through the proxy, one request,
         one reply.  Any transport damage surfaces as None. *)
      let attempt line =
        match connect_tcp port with
        | exception Unix.Unix_error _ -> None
        | conn -> (
          Fun.protect ~finally:(fun () -> close_conn conn) @@ fun () ->
          let _, _, fd = conn in
          (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO 10.0
           with Unix.Unix_error _ -> ());
          match roundtrip conn line with
          | exception (End_of_file | Sys_error _ | Unix.Unix_error _) -> None
          | reply -> (
            match Serve.Protocol.parse reply with
            | Ok v -> (
              match Serve.Protocol.member "ok" v with
              | Some (Serve.Protocol.Bool true) -> Some v
              | _ -> None)
            | Error _ -> None))
      in
      let until_ok line =
        let deadline = Unix.gettimeofday () +. 60.0 in
        let rec go () =
          match attempt line with
          | Some v -> v
          | None ->
            if Unix.gettimeofday () > deadline then
              Alcotest.failf "no success before deadline: %s" line
            else begin
              Thread.delay 0.02;
              go ()
            end
        in
        go ()
      in
      let ids = List.init 12 (Printf.sprintf "chaos-%d") in
      List.iter
        (fun id -> ignore (until_ok (submit_line ~id (refine_job ()))))
        ids;
      let outputs =
        List.map
          (fun id ->
            let v =
              until_ok
                (Serve.Protocol.to_string
                   (Serve.Protocol.request_to_json
                      (Serve.Protocol.Result { rs_id = id; rs_wait = true })))
            in
            Alcotest.(check string)
              (id ^ " done") "done" (reply_string "state" v);
            reply_string "output" v)
          ids
      in
      let g = Agraph.Access_graph.of_program Workloads.Smallspecs.fig1 in
      let part = Partitioning.Greedy.run g ~n_parts:2 in
      let expected =
        Spec.Printer.program_to_string
          (Core.Refiner.refine Workloads.Smallspecs.fig1 g part
             Core.Model.Model2)
            .Core.Refiner.rf_program
      in
      List.iter
        (fun out ->
          Alcotest.(check string) "byte-identical under chaos" expected out)
        outputs)

(* --- scheduler journal resume ------------------------------------------- *)

let fresh_journal_path () =
  let path = Filename.temp_file "coref_serve" ".journal" in
  Sys.remove path;
  path

let test_restart_replays_done_and_resumes_inflight () =
  let path = fresh_journal_path () in
  let meta = Serve.Scheduler.journal_meta in
  (* First daemon lifetime: finish one job, record another as submitted
     but never finished (the in-flight shape a SIGKILL leaves behind). *)
  let output =
    let journal = Checkpoint.Journal.open_ ~path ~meta in
    let session = Serve.Session.create () in
    let scheduler = Serve.Scheduler.create ~journal session in
    let job =
      Serve.Protocol.Obj
        [ ("kind", Serve.Protocol.String "refine");
          ("spec", Serve.Protocol.String fig1_src) ]
    in
    (match Serve.Scheduler.submit scheduler ~id:"finished" job with
    | Ok _ -> ()
    | Error r -> Alcotest.fail r.Serve.Scheduler.rj_reason);
    let view =
      match Serve.Scheduler.result scheduler ~wait:true "finished" with
      | Some v -> v
      | None -> Alcotest.fail "job vanished"
    in
    Serve.Scheduler.shutdown scheduler;
    (* Simulate dying mid-flight: the submit record exists, no outcome. *)
    Checkpoint.Journal.append journal ~key:"spec/inflight"
      (Serve.Protocol.to_string job);
    Checkpoint.Journal.close journal;
    match (view.Serve.Scheduler.v_state, view.Serve.Scheduler.v_output) with
    | Serve.Protocol.Done, Some out -> out
    | state, _ ->
      Alcotest.failf "first run state %s" (Serve.Protocol.state_name state)
  in
  (* Second daemon lifetime over the same journal. *)
  let journal = Checkpoint.Journal.open_ ~path ~meta in
  let session = Serve.Session.create () in
  let scheduler = Serve.Scheduler.create ~journal session in
  (match Serve.Scheduler.status scheduler "finished" with
  | Some v ->
    Alcotest.(check bool) "replayed flag" true v.Serve.Scheduler.v_replayed;
    Alcotest.(check string) "replayed state" "done"
      (Serve.Protocol.state_name v.Serve.Scheduler.v_state);
    Alcotest.(check (option string)) "replayed output" (Some output)
      v.Serve.Scheduler.v_output
  | None -> Alcotest.fail "finished job lost across restart");
  (match Serve.Scheduler.result scheduler ~wait:true "inflight" with
  | Some v ->
    Alcotest.(check string) "in-flight job re-ran" "done"
      (Serve.Protocol.state_name v.Serve.Scheduler.v_state);
    Alcotest.(check (option string)) "identical output" (Some output)
      v.Serve.Scheduler.v_output
  | None -> Alcotest.fail "in-flight job not re-enqueued");
  Serve.Scheduler.shutdown scheduler;
  Checkpoint.Journal.close journal

let test_cancelled_pending_survives_restart () =
  let path = fresh_journal_path () in
  let meta = Serve.Scheduler.journal_meta in
  let journal = Checkpoint.Journal.open_ ~path ~meta in
  Checkpoint.Journal.append journal ~key:"spec/doomed"
    (Serve.Protocol.to_string
       (Serve.Protocol.Obj
          [ ("kind", Serve.Protocol.String "refine");
            ("spec", Serve.Protocol.String fig1_src) ]));
  Checkpoint.Journal.append journal ~key:"cancel/doomed" "";
  Checkpoint.Journal.close journal;
  let journal = Checkpoint.Journal.open_ ~path ~meta in
  let session = Serve.Session.create () in
  let scheduler = Serve.Scheduler.create ~journal session in
  (match Serve.Scheduler.status scheduler "doomed" with
  | Some v ->
    Alcotest.(check string) "cancelled on replay" "cancelled"
      (Serve.Protocol.state_name v.Serve.Scheduler.v_state)
  | None -> Alcotest.fail "cancelled job lost");
  Serve.Scheduler.shutdown scheduler;
  Checkpoint.Journal.close journal

let test_max_jobs_backpressure () =
  let session = Serve.Session.create () in
  let scheduler = Serve.Scheduler.create ~max_jobs:1 session in
  let job =
    Serve.Protocol.Obj
      [ ("kind", Serve.Protocol.String "refine");
        ("spec", Serve.Protocol.String fig1_src) ]
  in
  (match Serve.Scheduler.submit scheduler ~id:"one" job with
  | Ok _ -> ()
  | Error r -> Alcotest.fail r.Serve.Scheduler.rj_reason);
  (match Serve.Scheduler.submit scheduler ~id:"two" job with
  | Ok _ -> Alcotest.fail "second submit exceeded max_jobs"
  | Error r ->
    Alcotest.(check bool) "mentions full" true
      (contains_sub ~sub:"full" r.Serve.Scheduler.rj_reason);
    (* a hard table-full rejection carries no backoff hint *)
    Alcotest.(check bool) "no retry hint" true
      (r.Serve.Scheduler.rj_retry_after_ms = None));
  (* Idempotent resubmits of a retained id still work at the cap. *)
  (match Serve.Scheduler.submit scheduler ~id:"one" job with
  | Ok _ -> ()
  | Error r -> Alcotest.fail r.Serve.Scheduler.rj_reason);
  Serve.Scheduler.shutdown scheduler

let test_max_pending_backpressure () =
  let session = Serve.Session.create () in
  (* A tiny admission cap: saturating it must turn submits away with a
     retry hint, and an idempotent resubmit of an admitted id must
     bypass admission.  The cap is 4 so the queue cannot drain to below
     it in the microseconds between the saturating and the overflow
     submit. *)
  let scheduler = Serve.Scheduler.create ~jobs:1 ~max_pending:4 session in
  let job =
    Serve.Protocol.Obj
      [ ("kind", Serve.Protocol.String "refine");
        ("spec", Serve.Protocol.String fig1_src) ]
  in
  let rec fill n =
    (* saturate queue + running so depth >= max_pending *)
    if n < 64 then
      match Serve.Scheduler.submit scheduler ~id:(Printf.sprintf "f%d" n) job with
      | Ok _ -> fill (n + 1)
      | Error _ -> n
    else n
  in
  let admitted = fill 0 in
  Alcotest.(check bool) "queue saturates" true (admitted < 64);
  (match Serve.Scheduler.submit scheduler ~id:"overflow" job with
  | Ok _ -> Alcotest.fail "submit admitted past max_pending"
  | Error r ->
    Alcotest.(check bool) "mentions busy" true
      (contains_sub ~sub:"busy" r.Serve.Scheduler.rj_reason);
    (match r.Serve.Scheduler.rj_retry_after_ms with
    | Some ms ->
      Alcotest.(check bool) "hint in clamp range" true (ms >= 25 && ms <= 60_000)
    | None -> Alcotest.fail "busy rejection lost its retry hint"));
  (* Resubmitting an admitted id is idempotent even while saturated. *)
  (match Serve.Scheduler.submit scheduler ~id:"f0" job with
  | Ok _ -> ()
  | Error r -> Alcotest.fail r.Serve.Scheduler.rj_reason);
  Serve.Scheduler.shutdown scheduler

(* --- jobs: lint fix field handling -------------------------------------- *)

let test_lint_fix_fields () =
  let session = Serve.Session.create () in
  let poll () = false in
  let job fields =
    Serve.Protocol.Obj
      (("kind", Serve.Protocol.String "lint")
      :: ("spec", Serve.Protocol.String fig1_src)
      :: fields)
  in
  (* Report-only knobs conflict with fix=true: rejected, not ignored. *)
  (match
     Serve.Jobs.run ~session ~poll
       (job
          [ ("fix", Serve.Protocol.Bool true);
            ("json", Serve.Protocol.Bool true);
            ("flow", Serve.Protocol.Bool true) ])
   with
  | Ok _ -> Alcotest.fail "conflicting report fields accepted"
  | Error msg ->
    Alcotest.(check bool) "names json" true (contains_sub ~sub:"json" msg);
    Alcotest.(check bool) "names flow" true (contains_sub ~sub:"flow" msg));
  (* codes is honored, so a non-fixable code is an error. *)
  (match
     Serve.Jobs.run ~session ~poll
       (job
          [ ("fix", Serve.Protocol.Bool true);
            ("codes", Serve.Protocol.List [ Serve.Protocol.String "LIVE004" ])
          ])
   with
  | Ok _ -> Alcotest.fail "non-fixable code accepted"
  | Error msg ->
    Alcotest.(check bool) "names the code" true
      (contains_sub ~sub:"LIVE004" msg));
  (* A plain fix job runs; fig1 has nothing fixable, so no rewrite. *)
  match Serve.Jobs.run ~session ~poll (job [ ("fix", Serve.Protocol.Bool true) ]) with
  | Ok o ->
    Alcotest.(check bool) "reports changed:false" true
      (contains_sub ~sub:"\"changed\":false" o.Serve.Jobs.o_output)
  | Error msg -> Alcotest.fail msg

(* --- session ------------------------------------------------------------ *)

let test_session_elaboration_cache () =
  let session = Serve.Session.create () in
  let e1 =
    match Serve.Session.elaborate session ~source:fig1_src with
    | Ok e -> e
    | Error msg -> Alcotest.fail msg
  in
  let e2 =
    match Serve.Session.elaborate session ~source:fig1_src with
    | Ok e -> e
    | Error msg -> Alcotest.fail msg
  in
  (* Same source must come back as the same physical program — that is
     what lets the simulator's session cache rewind instead of
     re-elaborating. *)
  Alcotest.(check bool) "physically shared" true
    (e1.Serve.Session.el_program == e2.Serve.Session.el_program);
  let stats = Serve.Session.stats session in
  Alcotest.(check int) "one hit" 1 stats.Serve.Session.st_elab_hits;
  Alcotest.(check int) "one miss" 1 stats.Serve.Session.st_elab_misses;
  match Serve.Session.elaborate session ~source:"program broken" with
  | Ok _ -> Alcotest.fail "parse error accepted"
  | Error _ -> ()

let test_session_elab_lru () =
  let session = Serve.Session.create ~elab_entries:2 () in
  let specs =
    List.map
      (fun name ->
        Printf.sprintf
          "program %s is\n  var x : int<8> := 0;\n  behavior TOP : leaf is\n  \
           begin\n    x := 1;\n  end behavior\nend program\n"
          name)
      [ "p_one"; "p_two"; "p_three" ]
  in
  List.iter
    (fun src ->
      match Serve.Session.elaborate session ~source:src with
      | Ok _ -> ()
      | Error msg -> Alcotest.fail msg)
    specs;
  let stats = Serve.Session.stats session in
  Alcotest.(check int) "capped at 2" 2 stats.Serve.Session.st_elab_entries

let () =
  Alcotest.run "serve"
    [
      ( "protocol",
        [
          Alcotest.test_case "json round-trip" `Quick test_json_round_trip;
          Alcotest.test_case "escapes and unicode" `Quick
            test_json_escapes_and_unicode;
          Alcotest.test_case "rejects malformed" `Quick
            test_json_rejects_malformed;
          Alcotest.test_case "request codec" `Quick test_request_codec;
          Alcotest.test_case "states" `Quick test_states;
        ] );
      ( "server",
        [
          Alcotest.test_case "malformed requests survive the connection"
            `Quick test_malformed_requests_survive_connection;
          Alcotest.test_case "submit runs a job" `Quick test_submit_runs_job;
          Alcotest.test_case "litmus job replays the CLI bit-identically"
            `Quick test_litmus_job_replays_cli;
          Alcotest.test_case "backend field selects the leaf machine"
            `Quick test_backend_field;
          Alcotest.test_case "unknown job kind fails cleanly" `Quick
            test_unknown_job_kind_fails;
          Alcotest.test_case "concurrent submits with status polls" `Quick
            test_concurrent_submits_with_status_polls;
          Alcotest.test_case "cancel mid-job" `Quick test_cancel_mid_job;
          Alcotest.test_case "idempotent submit" `Quick test_idempotent_submit;
          Alcotest.test_case "oversized frame rejected" `Quick
            test_oversized_frame_rejected;
          Alcotest.test_case "TCP token auth" `Quick test_tcp_token_auth;
          Alcotest.test_case "mid-job disconnect" `Quick
            test_mid_job_disconnect;
          Alcotest.test_case "idle timeout reaps connection" `Quick
            test_idle_timeout_reaps_connection;
          Alcotest.test_case "slow reader write timeout" `Quick
            test_slow_reader_write_timeout;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "plan is seed-deterministic" `Quick
            test_chaos_plan_deterministic;
          Alcotest.test_case "idempotent retries converge under faults"
            `Quick test_chaos_proxy_converges;
        ] );
      ( "scheduler",
        [
          Alcotest.test_case "restart replays done, resumes in-flight"
            `Quick test_restart_replays_done_and_resumes_inflight;
          Alcotest.test_case "cancelled pending survives restart" `Quick
            test_cancelled_pending_survives_restart;
          Alcotest.test_case "max-jobs backpressure" `Quick
            test_max_jobs_backpressure;
          Alcotest.test_case "max-pending admission control" `Quick
            test_max_pending_backpressure;
        ] );
      ( "jobs",
        [
          Alcotest.test_case "lint fix field handling" `Quick
            test_lint_fix_fields;
        ] );
      ( "session",
        [
          Alcotest.test_case "elaboration cache" `Quick
            test_session_elaboration_cache;
          Alcotest.test_case "elaboration LRU cap" `Quick
            test_session_elab_lru;
        ] );
    ]
